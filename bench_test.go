package mcmgpu

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation, each driving the same experiment code as cmd/experiments, plus
// ablation benchmarks for the design choices DESIGN.md calls out.
//
// Benchmarks run the experiments at a reduced workload scale so the full
// sweep finishes in minutes; the shape-defining numbers (speedups, bandwidth
// ratios) are stable under scaling and are emitted as custom metrics.
// Regenerate the full-size tables with:
//
//	go run ./cmd/experiments -exp all

import (
	"strconv"
	"testing"

	"mcmgpu/internal/config"
	"mcmgpu/internal/runner"
)

// benchOpts trades precision for benchmark runtime. The run cache is off so
// every iteration measures real simulation work, not memo lookups.
func benchOpts() Options {
	return Options{Scale: 0.15, MaxPerCategory: 3, NoCache: true}
}

// benchExperiment runs one experiment driver per iteration.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	driver, ok := Experiments()[id]
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	opt := benchOpts()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tbl, err := driver(opt)
		if err != nil {
			b.Fatal(err)
		}
		if len(tbl.Rows) == 0 {
			b.Fatalf("experiment %s produced no rows", id)
		}
	}
}

func BenchmarkTable1(b *testing.B) { benchExperiment(b, "table1") }
func BenchmarkTable2(b *testing.B) { benchExperiment(b, "table2") }
func BenchmarkTable3(b *testing.B) { benchExperiment(b, "table3") }
func BenchmarkTable4(b *testing.B) { benchExperiment(b, "table4") }

// BenchmarkAnalytic exercises the Section 3.3.1 closed-form model.
func BenchmarkAnalytic(b *testing.B) { benchExperiment(b, "analytic") }

func BenchmarkFig2(b *testing.B)  { benchExperiment(b, "fig2") }
func BenchmarkFig4(b *testing.B)  { benchExperiment(b, "fig4") }
func BenchmarkFig6(b *testing.B)  { benchExperiment(b, "fig6") }
func BenchmarkFig7(b *testing.B)  { benchExperiment(b, "fig7") }
func BenchmarkFig9(b *testing.B)  { benchExperiment(b, "fig9") }
func BenchmarkFig10(b *testing.B) { benchExperiment(b, "fig10") }
func BenchmarkFig13(b *testing.B) { benchExperiment(b, "fig13") }
func BenchmarkFig14(b *testing.B) { benchExperiment(b, "fig14") }
func BenchmarkFig15(b *testing.B) { benchExperiment(b, "fig15") }
func BenchmarkFig16(b *testing.B) { benchExperiment(b, "fig16") }
func BenchmarkFig17(b *testing.B) { benchExperiment(b, "fig17") }

// BenchmarkHeadline reproduces the abstract's comparisons and reports the
// measured optimized-vs-baseline speedup as a custom metric.
func BenchmarkHeadline(b *testing.B) {
	opt := benchOpts()
	var speedup float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		base, err := opt.runSuite(config.BaselineMCM(), opt.suite())
		if err != nil {
			b.Fatal(err)
		}
		optRes, err := opt.runSuite(config.OptimizedMCM(), opt.suite())
		if err != nil {
			b.Fatal(err)
		}
		var gerr error
		if speedup, gerr = geomeanSpeedup(base, optRes, opt.suite()); gerr != nil {
			b.Fatal(gerr)
		}
	}
	b.ReportMetric(speedup, "speedup/baseline")
}

// --- Parallel runner benchmarks ---

// benchSuiteJobs builds the multi-config job list the runner benchmarks
// share: four systems across the trimmed suite, the shape of a typical
// figure driver.
func benchSuiteJobs() []runner.Job {
	o := benchOpts()
	cfgs := []*Config{
		config.BaselineMCM(),
		config.OptimizedMCM(),
		config.MCMWithLink(1536),
		config.MustMonolithic(128),
	}
	var jobs []runner.Job
	for _, c := range cfgs {
		for _, s := range o.suite() {
			jobs = append(jobs, runner.Job{Config: c, Spec: s, Scale: o.scale()})
		}
	}
	return jobs
}

func benchSuiteRun(b *testing.B, r *runner.Runner) {
	b.Helper()
	jobs := benchSuiteJobs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := r.Run(jobs)
		if err != nil {
			b.Fatal(err)
		}
		if len(res) != len(jobs) {
			b.Fatalf("got %d results, want %d", len(res), len(jobs))
		}
	}
}

// BenchmarkSuiteSequential is the pre-runner baseline: one worker, no cache.
func BenchmarkSuiteSequential(b *testing.B) {
	benchSuiteRun(b, &runner.Runner{Workers: 1})
}

// BenchmarkSuiteParallel fans the same job list across GOMAXPROCS workers,
// still uncached; the ratio to BenchmarkSuiteSequential is the worker-pool
// speedup on this machine.
func BenchmarkSuiteParallel(b *testing.B) {
	benchSuiteRun(b, &runner.Runner{Workers: 0})
}

// BenchmarkSuiteMemoized measures the run cache: every iteration after the
// warm-up is pure memo lookups, the cost an -exp all run pays when a figure
// driver revisits the baseline suite.
func BenchmarkSuiteMemoized(b *testing.B) {
	r := &runner.Runner{Workers: 1, Cache: runner.NewCache()}
	if _, err := r.Run(benchSuiteJobs()); err != nil {
		b.Fatal(err)
	}
	benchSuiteRun(b, r)
}

// BenchmarkSimulatorThroughput measures raw simulation speed: simulated warp
// memory operations per wall-clock second on the baseline machine.
func BenchmarkSimulatorThroughput(b *testing.B) {
	spec := MustWorkload("MiniAMR").Scaled(0.25)
	b.ResetTimer()
	var ops uint64
	for i := 0; i < b.N; i++ {
		res, err := Run(BaselineMCM(), spec)
		if err != nil {
			b.Fatal(err)
		}
		ops += res.MemOps
	}
	b.ReportMetric(float64(ops)/b.Elapsed().Seconds(), "memops/s")
}

// --- Ablation benchmarks for DESIGN.md's called-out design choices ---

// BenchmarkAblationCTAChunk sweeps the distributed scheduler's chunk
// granularity. The paper uses one contiguous chunk per GPM and notes a
// dynamic granularity could do better; finer chunks trade locality for
// balance.
func BenchmarkAblationCTAChunk(b *testing.B) {
	spec := MustWorkload("CoMD").Scaled(0.25)
	for _, chunks := range []int{1, 2, 4, 8} {
		cfg := config.OptimizedMCM()
		cfg.CTAChunksPerModule = chunks
		b.Run(benchName("chunks", chunks), func(b *testing.B) {
			var cycles uint64
			for i := 0; i < b.N; i++ {
				res, err := Run(cfg.Clone(), spec)
				if err != nil {
					b.Fatal(err)
				}
				cycles = res.Cycles
			}
			b.ReportMetric(float64(cycles), "sim-cycles")
		})
	}
}

// BenchmarkAblationTopology compares the paper's ring against a fully
// connected crossbar with the same per-GPM attachment bandwidth.
func BenchmarkAblationTopology(b *testing.B) {
	spec := MustWorkload("SSSP").Scaled(0.25)
	for _, topo := range []config.TopologyKind{config.TopoRing, config.TopoCrossbar} {
		cfg := config.BaselineMCM()
		cfg.Topology = topo
		b.Run(topo.String(), func(b *testing.B) {
			var cycles uint64
			for i := 0; i < b.N; i++ {
				res, err := Run(cfg.Clone(), spec)
				if err != nil {
					b.Fatal(err)
				}
				cycles = res.Cycles
			}
			b.ReportMetric(float64(cycles), "sim-cycles")
		})
	}
}

// BenchmarkAblationHeaderBytes sweeps request/response header overhead on
// the inter-GPM links.
func BenchmarkAblationHeaderBytes(b *testing.B) {
	spec := MustWorkload("SSSP").Scaled(0.25)
	for _, hdr := range []int{0, 32, 64} {
		cfg := config.BaselineMCM()
		cfg.Link.ReqHeaderBytes = hdr
		cfg.Link.RespHeaderBytes = hdr
		b.Run(benchName("hdr", hdr), func(b *testing.B) {
			var bw float64
			for i := 0; i < b.N; i++ {
				res, err := Run(cfg.Clone(), spec)
				if err != nil {
					b.Fatal(err)
				}
				bw = res.InterModuleGBps
			}
			b.ReportMetric(bw, "interGPM-GBps")
		})
	}
}

// BenchmarkAblationL15Policy isolates remote-only vs allocate-all on an
// irregular workload (the Section 5.1.2 design decision).
func BenchmarkAblationL15Policy(b *testing.B) {
	spec := MustWorkload("SSSP").Scaled(0.25)
	for _, pol := range []config.AllocPolicy{config.AllocRemoteOnly, config.AllocAll} {
		cfg := config.WithL15(config.BaselineMCM(), 16*MB, pol)
		b.Run(pol.String(), func(b *testing.B) {
			var cycles uint64
			for i := 0; i < b.N; i++ {
				res, err := Run(cfg.Clone(), spec)
				if err != nil {
					b.Fatal(err)
				}
				cycles = res.Cycles
			}
			b.ReportMetric(float64(cycles), "sim-cycles")
		})
	}
}

// BenchmarkAblationPageSize sweeps the first-touch page granularity; large
// pages at scaled footprints suffer first-touch races at chunk boundaries
// (see DESIGN.md's substitution notes).
func BenchmarkAblationPageSize(b *testing.B) {
	spec := MustWorkload("CFD").Scaled(0.25)
	for _, page := range []int{4 * KB, 16 * KB, 64 * KB} {
		cfg := config.OptimizedMCM()
		cfg.PageBytes = page
		b.Run(benchName("page", page/KB), func(b *testing.B) {
			var local float64
			for i := 0; i < b.N; i++ {
				res, err := Run(cfg.Clone(), spec)
				if err != nil {
					b.Fatal(err)
				}
				local = res.LocalFraction
			}
			b.ReportMetric(local*100, "local-%")
		})
	}
}

func benchName(prefix string, v int) string {
	return prefix + "-" + strconv.Itoa(v)
}

// BenchmarkAblationDynamicScheduler compares the paper's static distributed
// scheduler against the dynamic (tail-stealing) extension it suggests as
// future work, on a workload whose CTAs perform unequal amounts of work.
func BenchmarkAblationDynamicScheduler(b *testing.B) {
	// Stealing only matters when CTAs outnumber machine residency (multiple
	// waves) and perform unequal work, so the ablation uses a multi-wave,
	// heavily imbalanced kernel rather than a suite workload.
	spec := &Spec{
		Name: "imbalanced-sweep", Category: MemoryIntensive,
		Pattern: MustWorkload("MST").Pattern,
		CTAs:    16384, WarpsPerCTA: 4, // 4 waves on 16384 warp slots
		MemOpsPerWarp: 4, ComputePerMem: 12, KernelIters: 1,
		FootprintLines: 65536, LinesPerOp: 2,
		RandomFraction: 0.2, ScatterLines: 8192,
		WorkImbalance: 0.9, Seed: 7,
	}
	for _, sched := range []config.SchedulerKind{config.SchedDistributed, config.SchedDynamic} {
		cfg := config.OptimizedMCM()
		cfg.Scheduler = sched
		b.Run(sched.String(), func(b *testing.B) {
			var cycles uint64
			for i := 0; i < b.N; i++ {
				res, err := Run(cfg.Clone(), spec)
				if err != nil {
					b.Fatal(err)
				}
				cycles = res.Cycles
			}
			b.ReportMetric(float64(cycles), "sim-cycles")
		})
	}
}
