package mcmgpu

import (
	"testing"

	"mcmgpu/internal/config"
	"mcmgpu/internal/workload"
)

// TestDenseTensionSigns pins the extension's headline claim as a pair of
// signs the simulator must reproduce (CI runs this as the tension smoke):
//
//  1. The paper's optimized design (distributed scheduling + first-touch)
//     keeps its geomean win over the centralized/interleave baseline on the
//     48-application suite, but LOSES to that baseline on the full-size
//     dense 2-D workloads (tiled GEMM, flash attention) — first-touch
//     places panels where the init sweep ran, not where their consumers
//     live, and the halved L2 thrashes on the panel working set.
//  2. Re-pairing the same transistor budget with the tiled 2-D scheduler
//     and region-aware placement recovers the dense loss (beats the
//     baseline again) without giving back the suite win.
//
// Suite geomeans run at the golden scale so the engine reference runs share
// the process-wide memo cache with the golden regression; the dense cells
// always run full size because the tension is a cache-capacity effect that
// footprint scaling would dissolve.
func TestDenseTensionSigns(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates the full suite plus full-size dense workloads")
	}
	opt := Options{Scale: valScale, Workers: 4, Audit: true}
	suite := workload.Suite()
	systems := map[string]*config.Config{
		"DS+FT":          config.OptimizedMCM(),
		"Tiled2D+region": tiledRegionMCM(),
	}
	base, err := opt.runSuite(config.BaselineMCM(), suite)
	if err != nil {
		t.Fatalf("baseline suite: %v", err)
	}
	for name, cfg := range systems {
		rs, err := opt.runSuite(cfg, suite)
		if err != nil {
			t.Fatalf("%s suite: %v", name, err)
		}
		g, err := geomeanSpeedup(base, rs, suite)
		if err != nil {
			t.Fatalf("%s suite geomean: %v", name, err)
		}
		t.Logf("suite geomean %-14s %.3f", name, g)
		if g < 1 {
			t.Errorf("%s suite geomean %.3f < 1: the 48-app win regressed", name, g)
		}
	}

	full := Options{Scale: 1, Workers: 4, Audit: true}
	dense := workload.Dense()
	dBase, err := full.runSuite(config.BaselineMCM(), dense)
	if err != nil {
		t.Fatalf("baseline dense: %v", err)
	}
	dDS, err := full.runSuite(config.OptimizedMCM(), dense)
	if err != nil {
		t.Fatalf("DS+FT dense: %v", err)
	}
	dTiled, err := full.runSuite(tiledRegionMCM(), dense)
	if err != nil {
		t.Fatalf("tiled dense: %v", err)
	}
	for _, s := range dense {
		ds := dDS[s.Name].SpeedupOver(dBase[s.Name])
		td := dTiled[s.Name].SpeedupOver(dBase[s.Name])
		t.Logf("%-14s DS+FT %.3f  Tiled2D+region %.3f", s.Name, ds, td)
		if ds >= 1 {
			t.Errorf("%s: DS+FT speedup %.3f >= 1; the first-touch/panel tension vanished", s.Name, ds)
		}
		if td < 1 {
			t.Errorf("%s: Tiled2D+region speedup %.3f < 1; the recovery vanished", s.Name, td)
		}
	}
}
