package mcmgpu

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"mcmgpu/internal/faultinject"
	"mcmgpu/internal/report"
)

// faultedOpts arms a panic fault against the first workload of the quick
// suite, bypassing the shared cache so the injected failure cannot leak into
// other tests.
func faultedOpts(t *testing.T) (Options, *[]string) {
	t.Helper()
	o := quick()
	o.NoCache = true
	victim := o.suite()[0].Name
	o.Fault = faultinject.Plan{Kind: faultinject.Panic, AtEvent: 100, Workload: victim}
	var warnings []string
	o.Warnf = func(format string, args ...interface{}) {
		warnings = append(warnings, fmt.Sprintf(format, args...))
	}
	return o, &warnings
}

// TestKeepGoingRendersERRCells is the facade acceptance test for collect-
// errors mode: with a panic injected into one workload, a figure driver
// still renders its table, the failed cells show ERR, and each failure is
// reported through Warnf.
func TestKeepGoingRendersERRCells(t *testing.T) {
	o, warnings := faultedOpts(t)
	o.KeepGoing = true
	tbl, err := Fig9(o)
	if err != nil {
		t.Fatalf("KeepGoing driver aborted: %v", err)
	}
	if !strings.Contains(tbl.String(), report.ErrCell) {
		t.Fatalf("table shows no %s cell despite an injected failure:\n%s", report.ErrCell, tbl)
	}
	if len(*warnings) == 0 {
		t.Fatal("no warnings surfaced for the failed cells")
	}
	found := false
	for _, w := range *warnings {
		if strings.Contains(w, "cell failed") && strings.Contains(w, o.Fault.Workload) {
			found = true
		}
	}
	if !found {
		t.Fatalf("warnings %q do not name the faulted workload %q", *warnings, o.Fault.Workload)
	}
}

// TestFailFastAbortsExperiment asserts the default mode still fails the
// whole driver on an injected panic, with the error naming the job.
func TestFailFastAbortsExperiment(t *testing.T) {
	o, _ := faultedOpts(t)
	_, err := Fig9(o)
	if err == nil {
		t.Fatal("fail-fast driver returned a table despite an injected panic")
	}
	var jerrs JobErrors
	if !errors.As(err, &jerrs) {
		t.Fatalf("driver error %T is not JobErrors", err)
	}
	if !strings.Contains(err.Error(), o.Fault.Workload) {
		t.Fatalf("error %q does not name the faulted workload", err)
	}
}

// TestBoundedExperimentIsByteIdentical asserts untripped budgets leave a
// driver's rendered table byte-identical — the acceptance criterion that
// lets CI run every experiment under a safety net without perturbing the
// paper's numbers.
func TestBoundedExperimentIsByteIdentical(t *testing.T) {
	free := quick()
	free.NoCache = true
	want, err := Fig4(free)
	if err != nil {
		t.Fatal(err)
	}
	bounded := quick()
	bounded.NoCache = true
	bounded.MaxEvents = 1 << 62
	bounded.MaxCycles = 1 << 62
	got, err := Fig4(bounded)
	if err != nil {
		t.Fatalf("generously bounded experiment tripped: %v", err)
	}
	if want.String() != got.String() {
		t.Errorf("bounded table differs from unbounded:\n--- unbounded ---\n%s\n--- bounded ---\n%s", want, got)
	}
}

// TestRunWithFacade exercises the public bounded-run entry point.
func TestRunWithFacade(t *testing.T) {
	_, err := RunWith(BaselineMCM(), MustWorkload("CFD"), RunOptions{MaxEvents: 1000, CheckEvery: 64})
	var se *SimError
	if !errors.As(err, &se) {
		t.Fatalf("RunWith error %v is not a *SimError", err)
	}
	if se.Kind.String() != "max-events" {
		t.Fatalf("kind = %s, want max-events", se.Kind)
	}
}
