// Package metricstream parses the metrics streams written by
// internal/metrics — NDJSON sample/kernel records and the long-format CSV —
// without allocating on the per-record path. Parsed records expose []byte
// views into the caller's line buffer (or a scratch buffer reused across
// records for fields that needed unescaping), so a Record is valid only
// until the next Parse call on it.
//
// The package is the read side of the stream format contract in DESIGN.md
// §9: the parsers require the exact field order the Recorder emits, and any
// deviation is an error, never a panic (pinned by FuzzMetricsParse).
package metricstream

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// RecordType discriminates the two record shapes in a metrics stream.
type RecordType int8

const (
	// TypeSample is a periodic interval record ("type":"sample").
	TypeSample RecordType = iota
	// TypeKernel is a kernel-boundary record ("type":"kernel").
	TypeKernel
)

// String returns the on-wire type tag.
func (t RecordType) String() string {
	if t == TypeKernel {
		return "kernel"
	}
	return "sample"
}

// Resource is one per-resource slice of a record. Name and Kind alias the
// parse buffer.
type Resource struct {
	Name  []byte
	Kind  []byte
	GPM   int
	Busy  float64
	Units uint64
	Util  float64
}

// Cache is one per-cache-level slice of a record. Level aliases the parse
// buffer.
type Cache struct {
	Level  []byte
	GPM    int
	Hits   uint64
	Misses uint64
}

// Record is one parsed metrics record. An NDJSON line yields the full
// record; a CSV line yields the record prefix plus exactly one Resource or
// one Cache (the CSV export is one flat row per slice). All []byte fields
// alias either the input line or the Record's internal scratch buffer and
// are invalidated by the next Parse call.
type Record struct {
	Type      RecordType
	Config    []byte
	Workload  []byte
	Seq       int
	Kernel    int
	Start     uint64
	End       uint64
	Events    uint64
	LiveCTAs  int
	Loads     int
	Stores    int
	Resources []Resource
	Caches    []Cache

	scratch []byte // unescape target, reused across parses
}

func (r *Record) reset() {
	r.Type = TypeSample
	r.Config, r.Workload = nil, nil
	r.Seq, r.Kernel = 0, 0
	r.Start, r.End, r.Events = 0, 0, 0
	r.LiveCTAs, r.Loads, r.Stores = 0, 0, 0
	r.Resources = r.Resources[:0]
	r.Caches = r.Caches[:0]
	r.scratch = r.scratch[:0]
}

// parser is a bounds-checked cursor over one line.
type parser struct {
	b []byte
	i int
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("metricstream: "+format+" at byte %d", append(args, p.i)...)
}

// tryLit consumes the exact literal s if present, without allocating on
// mismatch — the speculative-probe variant for branches that are expected
// to fail (null checks, the type switch).
func (p *parser) tryLit(s string) bool {
	if len(p.b)-p.i < len(s) || string(p.b[p.i:p.i+len(s)]) != s {
		return false
	}
	p.i += len(s)
	return true
}

// lit consumes the exact literal s.
func (p *parser) lit(s string) error {
	if !p.tryLit(s) {
		return p.errf("expected %q", s)
	}
	return nil
}

// peek returns the next byte, or 0 at end of line.
func (p *parser) peek() byte {
	if p.i < len(p.b) {
		return p.b[p.i]
	}
	return 0
}

// str consumes a JSON string literal. Unescaped strings are returned as a
// subslice of the line; strings with escapes are decoded into scratch.
func (p *parser) str(scratch *[]byte) ([]byte, error) {
	if p.peek() != '"' {
		return nil, p.errf("expected string")
	}
	p.i++
	start := p.i
	for p.i < len(p.b) {
		switch c := p.b[p.i]; {
		case c == '"':
			s := p.b[start:p.i]
			p.i++
			return s, nil
		case c == '\\':
			return p.strSlow(start, scratch)
		default:
			p.i++
		}
	}
	return nil, p.errf("unterminated string")
}

// strSlow finishes a string containing escapes, decoding into scratch.
// start is the content start; p.i sits on the first backslash.
func (p *parser) strSlow(start int, scratch *[]byte) ([]byte, error) {
	mark := len(*scratch)
	out := append(*scratch, p.b[start:p.i]...)
	for p.i < len(p.b) {
		c := p.b[p.i]
		if c == '"' {
			p.i++
			*scratch = out
			return out[mark:], nil
		}
		if c != '\\' {
			out = append(out, c)
			p.i++
			continue
		}
		p.i++
		if p.i >= len(p.b) {
			return nil, p.errf("truncated escape")
		}
		e := p.b[p.i]
		p.i++
		switch e {
		case '"', '\\', '/':
			out = append(out, e)
		case 'b':
			out = append(out, '\b')
		case 'f':
			out = append(out, '\f')
		case 'n':
			out = append(out, '\n')
		case 'r':
			out = append(out, '\r')
		case 't':
			out = append(out, '\t')
		case 'u':
			r, err := p.hex4()
			if err != nil {
				return nil, err
			}
			if r >= 0xD800 && r < 0xDC00 {
				// Surrogate pair: require the low half.
				if p.i+1 < len(p.b) && p.b[p.i] == '\\' && p.b[p.i+1] == 'u' {
					p.i += 2
					r2, err := p.hex4()
					if err != nil {
						return nil, err
					}
					if r2 >= 0xDC00 && r2 < 0xE000 {
						r = 0x10000 + (r-0xD800)<<10 + (r2 - 0xDC00)
					} else {
						r = 0xFFFD
					}
				} else {
					r = 0xFFFD
				}
			} else if r >= 0xDC00 && r < 0xE000 {
				r = 0xFFFD
			}
			out = appendRune(out, r)
		default:
			return nil, p.errf("bad escape \\%c", e)
		}
	}
	return nil, p.errf("unterminated string")
}

// hex4 consumes four hex digits.
func (p *parser) hex4() (rune, error) {
	if len(p.b)-p.i < 4 {
		return 0, p.errf("truncated \\u escape")
	}
	var r rune
	for k := 0; k < 4; k++ {
		c := p.b[p.i+k]
		switch {
		case c >= '0' && c <= '9':
			r = r<<4 | rune(c-'0')
		case c >= 'a' && c <= 'f':
			r = r<<4 | rune(c-'a'+10)
		case c >= 'A' && c <= 'F':
			r = r<<4 | rune(c-'A'+10)
		default:
			return 0, p.errf("bad \\u escape")
		}
	}
	p.i += 4
	return r, nil
}

// appendRune is utf8.AppendRune without the import churn on old layouts.
func appendRune(dst []byte, r rune) []byte {
	switch {
	case r < 0x80:
		return append(dst, byte(r))
	case r < 0x800:
		return append(dst, 0xC0|byte(r>>6), 0x80|byte(r&0x3F))
	case r < 0x10000:
		return append(dst, 0xE0|byte(r>>12), 0x80|byte(r>>6&0x3F), 0x80|byte(r&0x3F))
	default:
		return append(dst, 0xF0|byte(r>>18), 0x80|byte(r>>12&0x3F), 0x80|byte(r>>6&0x3F), 0x80|byte(r&0x3F))
	}
}

// uint consumes a decimal uint64.
func (p *parser) uint() (uint64, error) {
	start := p.i
	var u uint64
	for p.i < len(p.b) {
		c := p.b[p.i]
		if c < '0' || c > '9' {
			break
		}
		d := uint64(c - '0')
		if u > (1<<64-1-d)/10 {
			return 0, p.errf("integer overflow")
		}
		u = u*10 + d
		p.i++
	}
	if p.i == start {
		return 0, p.errf("expected integer")
	}
	return u, nil
}

// int consumes a decimal int.
func (p *parser) int() (int, error) {
	neg := false
	if p.peek() == '-' {
		neg = true
		p.i++
	}
	u, err := p.uint()
	if err != nil {
		return 0, err
	}
	if neg {
		if u > 1<<63 {
			return 0, p.errf("integer overflow")
		}
		return int(-int64(u)), nil
	}
	if u > 1<<63-1 {
		return 0, p.errf("integer overflow")
	}
	return int(u), nil
}

// float consumes a JSON number as float64. The strconv.ParseFloat call does
// not allocate for the short slices shortest-repr floats produce.
func (p *parser) float() (float64, error) {
	start := p.i
	for p.i < len(p.b) {
		c := p.b[p.i]
		if c >= '0' && c <= '9' || c == '-' || c == '+' || c == '.' || c == 'e' || c == 'E' {
			p.i++
			continue
		}
		break
	}
	if p.i == start {
		return 0, p.errf("expected number")
	}
	v, err := strconv.ParseFloat(string(p.b[start:p.i]), 64)
	if err != nil {
		return 0, p.errf("bad number %q", p.b[start:p.i])
	}
	return v, nil
}

// ParseNDJSON parses one NDJSON metrics line into r. The field order is the
// Recorder's exact emission order (the v1 stream contract); anything else
// is an error.
func (r *Record) ParseNDJSON(line []byte) error {
	r.reset()
	p := parser{b: line}
	if err := p.lit(`{"type":"`); err != nil {
		return err
	}
	var err error
	switch {
	case p.tryLit(`sample"`):
		r.Type = TypeSample
		if err = p.lit(`,"config":`); err != nil {
			return err
		}
		if r.Config, err = p.str(&r.scratch); err != nil {
			return err
		}
		if err = p.lit(`,"workload":`); err != nil {
			return err
		}
		if r.Workload, err = p.str(&r.scratch); err != nil {
			return err
		}
		if err = p.lit(`,"seq":`); err != nil {
			return err
		}
		if r.Seq, err = p.int(); err != nil {
			return err
		}
		if err = p.lit(`,"kernel":`); err != nil {
			return err
		}
		if r.Kernel, err = p.int(); err != nil {
			return err
		}
		if err = r.parseSpan(&p); err != nil {
			return err
		}
		if err = p.lit(`,"liveCTAs":`); err != nil {
			return err
		}
		if r.LiveCTAs, err = p.int(); err != nil {
			return err
		}
		if err = p.lit(`,"loads":`); err != nil {
			return err
		}
		if r.Loads, err = p.int(); err != nil {
			return err
		}
		if err = p.lit(`,"stores":`); err != nil {
			return err
		}
		if r.Stores, err = p.int(); err != nil {
			return err
		}
	case p.tryLit(`kernel"`):
		r.Type = TypeKernel
		if err = p.lit(`,"config":`); err != nil {
			return err
		}
		if r.Config, err = p.str(&r.scratch); err != nil {
			return err
		}
		if err = p.lit(`,"workload":`); err != nil {
			return err
		}
		if r.Workload, err = p.str(&r.scratch); err != nil {
			return err
		}
		if err = p.lit(`,"kernel":`); err != nil {
			return err
		}
		if r.Kernel, err = p.int(); err != nil {
			return err
		}
		if err = r.parseSpan(&p); err != nil {
			return err
		}
	default:
		return p.errf("unknown record type")
	}
	if err = r.parseBody(&p); err != nil {
		return err
	}
	if err = p.lit("}"); err != nil {
		return err
	}
	if p.i != len(p.b) {
		return p.errf("trailing bytes")
	}
	return nil
}

// parseSpan consumes the shared start/end/events fields.
func (r *Record) parseSpan(p *parser) error {
	var err error
	if err = p.lit(`,"start":`); err != nil {
		return err
	}
	if r.Start, err = p.uint(); err != nil {
		return err
	}
	if err = p.lit(`,"end":`); err != nil {
		return err
	}
	if r.End, err = p.uint(); err != nil {
		return err
	}
	if err = p.lit(`,"events":`); err != nil {
		return err
	}
	if r.Events, err = p.uint(); err != nil {
		return err
	}
	return nil
}

// parseBody consumes the shared resources and caches arrays.
func (r *Record) parseBody(p *parser) error {
	if err := p.lit(`,"resources":`); err != nil {
		return err
	}
	if !p.tryLit(`null`) {
		if err := p.lit(`[`); err != nil {
			return err
		}
		for p.peek() != ']' {
			if len(r.Resources) > 0 {
				if err := p.lit(`,`); err != nil {
					return err
				}
			}
			var res Resource
			var err error
			if err = p.lit(`{"name":`); err != nil {
				return err
			}
			if res.Name, err = p.str(&r.scratch); err != nil {
				return err
			}
			if err = p.lit(`,"kind":`); err != nil {
				return err
			}
			if res.Kind, err = p.str(&r.scratch); err != nil {
				return err
			}
			if err = p.lit(`,"gpm":`); err != nil {
				return err
			}
			if res.GPM, err = p.int(); err != nil {
				return err
			}
			if err = p.lit(`,"busy":`); err != nil {
				return err
			}
			if res.Busy, err = p.float(); err != nil {
				return err
			}
			if err = p.lit(`,"units":`); err != nil {
				return err
			}
			if res.Units, err = p.uint(); err != nil {
				return err
			}
			if err = p.lit(`,"util":`); err != nil {
				return err
			}
			if res.Util, err = p.float(); err != nil {
				return err
			}
			if err = p.lit(`}`); err != nil {
				return err
			}
			r.Resources = append(r.Resources, res)
		}
		p.i++ // consume ']'
	}
	if err := p.lit(`,"caches":`); err != nil {
		return err
	}
	if !p.tryLit(`null`) {
		if err := p.lit(`[`); err != nil {
			return err
		}
		for p.peek() != ']' {
			if len(r.Caches) > 0 {
				if err := p.lit(`,`); err != nil {
					return err
				}
			}
			var c Cache
			var err error
			if err = p.lit(`{"level":`); err != nil {
				return err
			}
			if c.Level, err = p.str(&r.scratch); err != nil {
				return err
			}
			if err = p.lit(`,"gpm":`); err != nil {
				return err
			}
			if c.GPM, err = p.int(); err != nil {
				return err
			}
			if err = p.lit(`,"hits":`); err != nil {
				return err
			}
			if c.Hits, err = p.uint(); err != nil {
				return err
			}
			if err = p.lit(`,"misses":`); err != nil {
				return err
			}
			if c.Misses, err = p.uint(); err != nil {
				return err
			}
			if err = p.lit(`}`); err != nil {
				return err
			}
			r.Caches = append(r.Caches, c)
		}
		p.i++ // consume ']'
	}
	return nil
}

// csvCursor walks one CSV line field by field with RFC-4180 quote handling.
// Quoted fields with embedded newlines are unsupported (the stream is
// line-oriented; see DESIGN.md §9) and surface as unterminated-quote errors.
type csvCursor struct {
	b    []byte
	i    int
	n    int // fields consumed
	done bool
}

func (c *csvCursor) errf(format string, args ...any) error {
	return fmt.Errorf("metricstream: "+format+" (column %d)", append(args, c.n+1)...)
}

// field consumes the next field.
func (c *csvCursor) field(scratch *[]byte) ([]byte, error) {
	if c.done {
		return nil, c.errf("too few columns")
	}
	defer func() { c.n++ }()
	if c.i < len(c.b) && c.b[c.i] == '"' {
		return c.quoted(scratch)
	}
	rest := c.b[c.i:]
	if j := bytes.IndexByte(rest, ','); j >= 0 {
		c.i += j + 1
		return rest[:j], nil
	}
	c.i = len(c.b)
	c.done = true
	return rest, nil
}

// quoted consumes a quoted field, decoding "" into scratch when present.
func (c *csvCursor) quoted(scratch *[]byte) ([]byte, error) {
	c.i++ // opening quote
	start := c.i
	escaped := false
	for c.i < len(c.b) {
		if c.b[c.i] != '"' {
			c.i++
			continue
		}
		if c.i+1 < len(c.b) && c.b[c.i+1] == '"' {
			escaped = true
			c.i += 2
			continue
		}
		// Closing quote.
		raw := c.b[start:c.i]
		c.i++
		switch {
		case c.i >= len(c.b):
			c.done = true
		case c.b[c.i] == ',':
			c.i++
		default:
			return nil, c.errf("garbage after closing quote")
		}
		if !escaped {
			return raw, nil
		}
		mark := len(*scratch)
		out := *scratch
		for k := 0; k < len(raw); k++ {
			out = append(out, raw[k])
			if raw[k] == '"' {
				k++ // skip the doubled quote
			}
		}
		*scratch = out
		return out[mark:], nil
	}
	return nil, c.errf("unterminated quoted field")
}

// csvUint parses a CSV numeric field; empty means 0 (kernel and cache rows
// leave inapplicable columns blank).
func csvUint(f []byte, c *csvCursor) (uint64, error) {
	if len(f) == 0 {
		return 0, nil
	}
	v, err := strconv.ParseUint(string(f), 10, 64)
	if err != nil {
		return 0, c.errf("bad integer %q", f)
	}
	return v, nil
}

func csvInt(f []byte, c *csvCursor) (int, error) {
	if len(f) == 0 {
		return 0, nil
	}
	v, err := strconv.ParseInt(string(f), 10, 64)
	if err != nil {
		return 0, c.errf("bad integer %q", f)
	}
	return int(v), nil
}

func csvFloat(f []byte, c *csvCursor) (float64, error) {
	if len(f) == 0 {
		return 0, nil
	}
	v, err := strconv.ParseFloat(string(f), 64)
	if err != nil {
		return 0, c.errf("bad number %q", f)
	}
	return v, nil
}

// ParseCSV parses one long-format CSV data row into r: the record prefix
// plus exactly one Resource (kind != "cache") or one Cache (kind ==
// "cache"). The header row is not a data row; Scanner skips it.
func (r *Record) ParseCSV(line []byte) error {
	r.reset()
	c := csvCursor{b: line}
	typ, err := c.field(&r.scratch)
	if err != nil {
		return err
	}
	switch string(typ) {
	case "sample":
		r.Type = TypeSample
	case "kernel":
		r.Type = TypeKernel
	default:
		return c.errf("unknown record type %q", typ)
	}
	if r.Config, err = c.field(&r.scratch); err != nil {
		return err
	}
	if r.Workload, err = c.field(&r.scratch); err != nil {
		return err
	}
	f, err := c.field(&r.scratch)
	if err != nil {
		return err
	}
	if r.Seq, err = csvInt(f, &c); err != nil {
		return err
	}
	if f, err = c.field(&r.scratch); err != nil {
		return err
	}
	if r.Kernel, err = csvInt(f, &c); err != nil {
		return err
	}
	if f, err = c.field(&r.scratch); err != nil {
		return err
	}
	if r.Start, err = csvUint(f, &c); err != nil {
		return err
	}
	if f, err = c.field(&r.scratch); err != nil {
		return err
	}
	if r.End, err = csvUint(f, &c); err != nil {
		return err
	}
	if f, err = c.field(&r.scratch); err != nil {
		return err
	}
	if r.Events, err = csvUint(f, &c); err != nil {
		return err
	}
	if f, err = c.field(&r.scratch); err != nil {
		return err
	}
	if r.LiveCTAs, err = csvInt(f, &c); err != nil {
		return err
	}
	if f, err = c.field(&r.scratch); err != nil {
		return err
	}
	if r.Loads, err = csvInt(f, &c); err != nil {
		return err
	}
	if f, err = c.field(&r.scratch); err != nil {
		return err
	}
	if r.Stores, err = csvInt(f, &c); err != nil {
		return err
	}
	kind, err := c.field(&r.scratch)
	if err != nil {
		return err
	}
	gpmF, err := c.field(&r.scratch)
	if err != nil {
		return err
	}
	gpm, err := csvInt(gpmF, &c)
	if err != nil {
		return err
	}
	name, err := c.field(&r.scratch)
	if err != nil {
		return err
	}
	busyF, err := c.field(&r.scratch)
	if err != nil {
		return err
	}
	unitsF, err := c.field(&r.scratch)
	if err != nil {
		return err
	}
	utilF, err := c.field(&r.scratch)
	if err != nil {
		return err
	}
	hitsF, err := c.field(&r.scratch)
	if err != nil {
		return err
	}
	missesF, err := c.field(&r.scratch)
	if err != nil {
		return err
	}
	if !c.done {
		return c.errf("too many columns")
	}
	if string(kind) == "cache" {
		var cc Cache
		cc.Level = name
		cc.GPM = gpm
		if cc.Hits, err = csvUint(hitsF, &c); err != nil {
			return err
		}
		if cc.Misses, err = csvUint(missesF, &c); err != nil {
			return err
		}
		r.Caches = append(r.Caches, cc)
		return nil
	}
	var res Resource
	res.Name = name
	res.Kind = kind
	res.GPM = gpm
	if res.Busy, err = csvFloat(busyF, &c); err != nil {
		return err
	}
	if res.Units, err = csvUint(unitsF, &c); err != nil {
		return err
	}
	if res.Util, err = csvFloat(utilF, &c); err != nil {
		return err
	}
	r.Resources = append(r.Resources, res)
	return nil
}

// Format identifies a stream encoding.
type Format int8

const (
	// FormatAuto detects the encoding from the first data byte.
	FormatAuto Format = iota
	// FormatNDJSON forces NDJSON parsing.
	FormatNDJSON
	// FormatCSV forces long-format CSV parsing.
	FormatCSV
)

const gzipMagic = "\x1f\x8b"

// Scanner iterates a metrics stream record by record: transparent gzip
// (sniffed by magic bytes), format autodetection, blank-line and CSV-header
// skipping, and line-start offset tracking in the decompressed stream —
// the offsets mcmstat derives reservoir tags from.
type Scanner struct {
	s      *bufio.Scanner
	rec    Record
	format Format
	off    int64 // line start of the current record
	next   int64 // line start of the next line
	err    error
}

// NewScanner wraps r, decompressing when the stream opens with the gzip
// magic. format is FormatAuto to sniff NDJSON vs CSV from the first line.
func NewScanner(r io.Reader, format Format) (*Scanner, error) {
	br := bufio.NewReaderSize(r, 256<<10)
	if magic, _ := br.Peek(2); string(magic) == gzipMagic {
		gz, err := gzip.NewReader(br)
		if err != nil {
			return nil, fmt.Errorf("metricstream: gzip: %w", err)
		}
		r = gz
	} else {
		r = br
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 64<<20)
	sc.Split(scanKeepLines)
	return &Scanner{s: sc, format: format}, nil
}

// scanKeepLines splits on '\n' without stripping '\r' (the writers never
// emit it), so consumed bytes are always len(token)+1 and offset tracking
// stays exact.
func scanKeepLines(data []byte, atEOF bool) (int, []byte, error) {
	if j := bytes.IndexByte(data, '\n'); j >= 0 {
		return j + 1, data[:j], nil
	}
	if atEOF && len(data) > 0 {
		return len(data), data, nil
	}
	return 0, nil, nil
}

// Scan advances to the next record. It returns false at end of stream or on
// the first parse error (see Err).
func (s *Scanner) Scan() bool {
	if s.err != nil {
		return false
	}
	for s.s.Scan() {
		line := s.s.Bytes()
		start := s.next
		s.next += int64(len(line)) + 1
		if len(line) == 0 {
			continue
		}
		if s.format == FormatAuto {
			if line[0] == '{' {
				s.format = FormatNDJSON
			} else {
				s.format = FormatCSV
			}
		}
		if s.format == FormatCSV && bytes.HasPrefix(line, []byte("type,")) {
			continue // header row (possibly repeated across concatenated files)
		}
		var err error
		if s.format == FormatNDJSON {
			err = s.rec.ParseNDJSON(line)
		} else {
			err = s.rec.ParseCSV(line)
		}
		if err != nil {
			s.err = fmt.Errorf("record at offset %d: %w", start, err)
			return false
		}
		s.off = start
		return true
	}
	s.err = s.s.Err()
	return false
}

// Record returns the current record, valid until the next Scan.
func (s *Scanner) Record() *Record { return &s.rec }

// Offset returns the byte offset of the current record's line start in the
// decompressed stream.
func (s *Scanner) Offset() int64 { return s.off }

// Err returns the first error encountered, if any.
func (s *Scanner) Err() error { return s.err }

// CreateOutput creates a metrics output file, transparently
// gzip-compressing when path ends in ".gz". The bool reports whether the
// stream should be CSV-encoded (a ".csv" or ".csv.gz" name).
func CreateOutput(path string) (io.WriteCloser, bool, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, false, err
	}
	inner := strings.TrimSuffix(path, ".gz")
	csv := strings.HasSuffix(inner, ".csv")
	if inner != path {
		return &gzipFile{gz: gzip.NewWriter(f), f: f}, csv, nil
	}
	return f, csv, nil
}

// gzipFile couples a gzip writer to its backing file so one Close flushes
// and closes both.
type gzipFile struct {
	gz *gzip.Writer
	f  *os.File
}

func (g *gzipFile) Write(p []byte) (int, error) { return g.gz.Write(p) }

func (g *gzipFile) Close() error {
	err := g.gz.Close()
	if cerr := g.f.Close(); err == nil {
		err = cerr
	}
	return err
}
