package metricstream

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mcmgpu/internal/engine"
	"mcmgpu/internal/metrics"
)

// refResource etc. mirror the on-wire JSON shapes; encoding/json over these
// is the reference the allocation-free parser is compared against.
type refResource struct {
	Name  string  `json:"name"`
	Kind  string  `json:"kind"`
	GPM   int     `json:"gpm"`
	Busy  float64 `json:"busy"`
	Units uint64  `json:"units"`
	Util  float64 `json:"util"`
}

type refCache struct {
	Level  string `json:"level"`
	GPM    int    `json:"gpm"`
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
}

type refRecord struct {
	Type      string        `json:"type"`
	Config    string        `json:"config"`
	Workload  string        `json:"workload"`
	Seq       int           `json:"seq"`
	Kernel    int           `json:"kernel"`
	Start     uint64        `json:"start"`
	End       uint64        `json:"end"`
	Events    uint64        `json:"events"`
	LiveCTAs  int           `json:"liveCTAs"`
	Loads     int           `json:"loads"`
	Stores    int           `json:"stores"`
	Resources []refResource `json:"resources"`
	Caches    []refCache    `json:"caches"`
}

type tickCache struct{ hits, acc uint64 }

func (f *tickCache) Hits() uint64     { return f.hits }
func (f *tickCache) Accesses() uint64 { return f.acc }

// driveStream produces a stream exercising both record types, fractional
// floats, CSV quoting, and JSON escaping. Newlines are deliberately absent
// from names: CSV streams are line-oriented (DESIGN.md §9).
func driveStream(w io.Writer, csv bool) error {
	rec := metrics.NewRecorder(w, 4096, csv)
	link := engine.NewResource("link", 3)
	dram := engine.NewResource(`dram,0 "x"`, 7)
	cache := &tickCache{}
	rec.Begin(`cfg,with "quotes" <&>`, `wl tab\there`)
	rec.AddResource("link", 0, link.Name(), link)
	rec.AddResource("dram", 1, dram.Name(), dram)
	rec.AddCaches("l2", 0, []metrics.CacheCounters{cache})
	rec.SetStateProbe(func() metrics.State { return metrics.State{LiveCTAs: 5, InFlightLoads: 2, InFlightStores: 1} })
	link.Reserve(0, 1000)
	cache.acc, cache.hits = 30, 10
	rec.Tick(4096, 100)
	dram.Reserve(4100, 333)
	cache.acc += 7
	rec.Tick(8192, 250)
	rec.KernelBoundary(8192, 250)
	link.Reserve(9000, 50)
	rec.Tick(12288, 400)
	rec.Finish(13000, 500)
	return rec.Err()
}

// TestNDJSONRoundTrip checks every record of a real NDJSON stream against
// encoding/json field by field — both record shapes, escaped strings,
// fractional values.
func TestNDJSONRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := driveStream(&buf, false); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
	if len(lines) < 4 {
		t.Fatalf("expected several records, got %d", len(lines))
	}
	var rec Record
	sawSample, sawKernel := false, false
	for _, line := range lines {
		var want refRecord
		if err := json.Unmarshal([]byte(line), &want); err != nil {
			t.Fatal(err)
		}
		if err := rec.ParseNDJSON([]byte(line)); err != nil {
			t.Fatalf("ParseNDJSON(%q): %v", line, err)
		}
		switch want.Type {
		case "sample":
			sawSample = true
		case "kernel":
			sawKernel = true
		}
		compareRecord(t, &rec, &want, line)
	}
	if !sawSample || !sawKernel {
		t.Fatalf("stream missing a record shape: sample=%v kernel=%v", sawSample, sawKernel)
	}
}

func compareRecord(t *testing.T, got *Record, want *refRecord, line string) {
	t.Helper()
	if got.Type.String() != want.Type {
		t.Fatalf("type = %q, want %q in %q", got.Type, want.Type, line)
	}
	if string(got.Config) != want.Config || string(got.Workload) != want.Workload {
		t.Fatalf("config/workload = %q/%q, want %q/%q", got.Config, got.Workload, want.Config, want.Workload)
	}
	if got.Seq != want.Seq || got.Kernel != want.Kernel {
		t.Fatalf("seq/kernel = %d/%d, want %d/%d in %q", got.Seq, got.Kernel, want.Seq, want.Kernel, line)
	}
	if got.Start != want.Start || got.End != want.End || got.Events != want.Events {
		t.Fatalf("span mismatch in %q", line)
	}
	if got.LiveCTAs != want.LiveCTAs || got.Loads != want.Loads || got.Stores != want.Stores {
		t.Fatalf("state mismatch in %q", line)
	}
	if len(got.Resources) != len(want.Resources) {
		t.Fatalf("resources len = %d, want %d in %q", len(got.Resources), len(want.Resources), line)
	}
	for i, rr := range got.Resources {
		wr := want.Resources[i]
		if string(rr.Name) != wr.Name || string(rr.Kind) != wr.Kind || rr.GPM != wr.GPM ||
			rr.Busy != wr.Busy || rr.Units != wr.Units || rr.Util != wr.Util {
			t.Fatalf("resource %d = %+v, want %+v in %q", i, rr, wr, line)
		}
	}
	if len(got.Caches) != len(want.Caches) {
		t.Fatalf("caches len = %d, want %d in %q", len(got.Caches), len(want.Caches), line)
	}
	for i, cc := range got.Caches {
		wc := want.Caches[i]
		if string(cc.Level) != wc.Level || cc.GPM != wc.GPM || cc.Hits != wc.Hits || cc.Misses != wc.Misses {
			t.Fatalf("cache %d = %+v, want %+v in %q", i, cc, wc, line)
		}
	}
}

// TestCSVRoundTrip drives the same scenario in both encodings and checks
// that the CSV flat rows carry exactly the NDJSON records' fields.
func TestCSVRoundTrip(t *testing.T) {
	var nd, cs bytes.Buffer
	if err := driveStream(&nd, false); err != nil {
		t.Fatal(err)
	}
	if err := driveStream(&cs, true); err != nil {
		t.Fatal(err)
	}

	// Flatten the NDJSON reference into per-row expectations.
	type flatRow struct {
		ref  refRecord
		res  *refResource
		cche *refCache
	}
	var want []flatRow
	for _, line := range strings.Split(strings.TrimSuffix(nd.String(), "\n"), "\n") {
		var r refRecord
		if err := json.Unmarshal([]byte(line), &r); err != nil {
			t.Fatal(err)
		}
		for i := range r.Resources {
			want = append(want, flatRow{ref: r, res: &r.Resources[i]})
		}
		for i := range r.Caches {
			want = append(want, flatRow{ref: r, cche: &r.Caches[i]})
		}
	}

	sc, err := NewScanner(&cs, FormatAuto)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for sc.Scan() {
		if n >= len(want) {
			t.Fatalf("more CSV rows than NDJSON slices (%d)", n)
		}
		rec, w := sc.Record(), want[n]
		if rec.Type.String() != w.ref.Type || string(rec.Config) != w.ref.Config ||
			string(rec.Workload) != w.ref.Workload {
			t.Fatalf("row %d prefix mismatch: %v vs %v", n, rec, w.ref)
		}
		if rec.Start != w.ref.Start || rec.End != w.ref.End || rec.Events != w.ref.Events {
			t.Fatalf("row %d span mismatch", n)
		}
		if w.ref.Type == "sample" {
			if rec.Seq != w.ref.Seq || rec.LiveCTAs != w.ref.LiveCTAs ||
				rec.Loads != w.ref.Loads || rec.Stores != w.ref.Stores {
				t.Fatalf("row %d sample state mismatch", n)
			}
		}
		switch {
		case w.res != nil:
			if len(rec.Resources) != 1 || len(rec.Caches) != 0 {
				t.Fatalf("row %d: want one resource, got %d/%d", n, len(rec.Resources), len(rec.Caches))
			}
			rr, wr := rec.Resources[0], *w.res
			if string(rr.Name) != wr.Name || string(rr.Kind) != wr.Kind || rr.GPM != wr.GPM ||
				rr.Busy != wr.Busy || rr.Units != wr.Units || rr.Util != wr.Util {
				t.Fatalf("row %d resource = %+v, want %+v", n, rr, wr)
			}
		default:
			if len(rec.Caches) != 1 || len(rec.Resources) != 0 {
				t.Fatalf("row %d: want one cache, got %d/%d", n, len(rec.Caches), len(rec.Resources))
			}
			cc, wc := rec.Caches[0], *w.cche
			if string(cc.Level) != wc.Level || cc.GPM != wc.GPM || cc.Hits != wc.Hits || cc.Misses != wc.Misses {
				t.Fatalf("row %d cache = %+v, want %+v", n, cc, wc)
			}
		}
		n++
	}
	if sc.Err() != nil {
		t.Fatal(sc.Err())
	}
	if n != len(want) {
		t.Fatalf("scanned %d CSV rows, want %d", n, len(want))
	}
}

// TestNullArrays covers the record shape with no registered probes:
// resources and caches encode as null.
func TestNullArrays(t *testing.T) {
	var buf bytes.Buffer
	rec := metrics.NewRecorder(&buf, 4096, false)
	rec.Begin("c", "w")
	rec.Tick(4096, 10)
	if err := rec.Err(); err != nil {
		t.Fatal(err)
	}
	line := []byte(strings.TrimSuffix(buf.String(), "\n"))
	if !bytes.Contains(line, []byte(`"resources":null`)) {
		t.Fatalf("expected null resources in %q", line)
	}
	var r Record
	if err := r.ParseNDJSON(line); err != nil {
		t.Fatal(err)
	}
	if len(r.Resources) != 0 || len(r.Caches) != 0 {
		t.Fatalf("null arrays parsed as %d/%d entries", len(r.Resources), len(r.Caches))
	}
}

// TestScannerGzipAndOffsets: a gzipped stream scans identically to the
// plain one, with the same decompressed line-start offsets.
func TestScannerGzipAndOffsets(t *testing.T) {
	var plain bytes.Buffer
	if err := driveStream(&plain, false); err != nil {
		t.Fatal(err)
	}
	var gz bytes.Buffer
	zw := gzip.NewWriter(&gz)
	if _, err := zw.Write(plain.Bytes()); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}

	scan := func(r io.Reader) (offs []int64, events []uint64) {
		sc, err := NewScanner(r, FormatAuto)
		if err != nil {
			t.Fatal(err)
		}
		for sc.Scan() {
			offs = append(offs, sc.Offset())
			events = append(events, sc.Record().Events)
		}
		if sc.Err() != nil {
			t.Fatal(sc.Err())
		}
		return
	}
	pOffs, pEv := scan(bytes.NewReader(plain.Bytes()))
	gOffs, gEv := scan(bytes.NewReader(gz.Bytes()))
	if len(pOffs) == 0 {
		t.Fatal("no records scanned")
	}
	if len(pOffs) != len(gOffs) {
		t.Fatalf("record counts differ: %d vs %d", len(pOffs), len(gOffs))
	}
	for i := range pOffs {
		if pOffs[i] != gOffs[i] || pEv[i] != gEv[i] {
			t.Fatalf("record %d differs: off %d/%d events %d/%d", i, pOffs[i], gOffs[i], pEv[i], gEv[i])
		}
	}
	// Offsets must be the true line starts.
	want := int64(0)
	data := plain.Bytes()
	for i, off := range pOffs {
		if off != want {
			t.Fatalf("record %d offset = %d, want %d", i, off, want)
		}
		j := bytes.IndexByte(data[off:], '\n')
		want = off + int64(j) + 1
	}
}

// TestScannerSkipsRepeatedHeaders: concatenated CSV files (each with its
// own header) scan as one stream.
func TestScannerSkipsRepeatedHeaders(t *testing.T) {
	var one bytes.Buffer
	if err := driveStream(&one, true); err != nil {
		t.Fatal(err)
	}
	cat := append(append([]byte{}, one.Bytes()...), one.Bytes()...)
	sc, err := NewScanner(bytes.NewReader(cat), FormatAuto)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for sc.Scan() {
		n++
	}
	if sc.Err() != nil {
		t.Fatal(sc.Err())
	}
	rows := strings.Count(one.String(), "\n") - 1 // minus the header
	if n != 2*rows {
		t.Fatalf("scanned %d rows from doubled stream, want %d", n, 2*rows)
	}
}

// TestCreateOutput exercises the three name shapes the CLIs pass.
func TestCreateOutput(t *testing.T) {
	dir := t.TempDir()
	cases := []struct {
		name   string
		csv    bool
		gzcomp bool
	}{
		{"m.ndjson", false, false},
		{"m.csv", true, false},
		{"m.ndjson.gz", false, true},
		{"m.csv.gz", true, true},
	}
	for _, c := range cases {
		path := filepath.Join(dir, c.name)
		w, csv, err := CreateOutput(path)
		if err != nil {
			t.Fatal(err)
		}
		if csv != c.csv {
			t.Fatalf("%s: csv = %v, want %v", c.name, csv, c.csv)
		}
		if _, err := io.WriteString(w, "hello stream\n"); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if gz := len(raw) >= 2 && string(raw[:2]) == gzipMagic; gz != c.gzcomp {
			t.Fatalf("%s: gzip = %v, want %v", c.name, gz, c.gzcomp)
		}
		if c.gzcomp {
			zr, err := gzip.NewReader(bytes.NewReader(raw))
			if err != nil {
				t.Fatal(err)
			}
			body, err := io.ReadAll(zr)
			if err != nil {
				t.Fatal(err)
			}
			raw = body
		}
		if string(raw) != "hello stream\n" {
			t.Fatalf("%s: content %q", c.name, raw)
		}
	}
}

// TestParseErrors: malformed lines error and never panic (the fuzz target
// explores this space further).
func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"{",
		`{"type":"sample"`,
		`{"type":"bogus","config":"c"}`,
		`{"type":"sample","config":"c}`,
		`{"type":"sample","config":"c","workload":"w","seq":x}`,
		`{"type":"sample","config":"c","workload":"w","seq":1,"kernel":0,"start":0,"end":1,"events":1,"liveCTAs":0,"loads":0,"stores":0,"resources":[{"name":"n"}],"caches":null}`,
		`{"type":"sample","config":"c","workload":"w","seq":99999999999999999999999999,"kernel":0}`,
		`{"type":"sample","config":"\q","workload":"w"}`,
		`sample,c,w,1,0,0,1,1,0,0,0,link`, // too few CSV columns
		`sample,c,w,1,0,0,1,1,0,0,0,link,0,n,0,0,0,,,extra`,
		`sample,c,"unterminated,1,0,0,1,1,0,0,0,link,0,n,0,0,0,,`,
		`sample,c,w,notanum,0,0,1,1,0,0,0,link,0,n,0,0,0,,`,
		`bogus,c,w,1,0,0,1,1,0,0,0,link,0,n,0,0,0,,`,
	}
	var r Record
	for _, line := range bad {
		if strings.HasPrefix(line, "{") || line == "" {
			if err := r.ParseNDJSON([]byte(line)); err == nil {
				t.Errorf("ParseNDJSON(%q) unexpectedly succeeded", line)
			}
		}
		if !strings.HasPrefix(line, "{") {
			if err := r.ParseCSV([]byte(line)); err == nil {
				t.Errorf("ParseCSV(%q) unexpectedly succeeded", line)
			}
		}
	}
}

// TestParseAllocs pins the steady-state parse path at zero allocations per
// record for plain lines and for lines needing string unescapes.
func TestParseAllocs(t *testing.T) {
	var buf bytes.Buffer
	if err := driveStream(&buf, false); err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimSuffix(buf.Bytes(), []byte("\n")), []byte("\n"))
	var rec Record
	for _, l := range lines {
		if err := rec.ParseNDJSON(l); err != nil {
			t.Fatal(err)
		}
	}
	i := 0
	allocs := testing.AllocsPerRun(1000, func() {
		if err := rec.ParseNDJSON(lines[i%len(lines)]); err != nil {
			t.Fatal(err)
		}
		i++
	})
	if allocs != 0 {
		t.Fatalf("ParseNDJSON allocates %v/record in steady state, want 0", allocs)
	}

	var cs bytes.Buffer
	if err := driveStream(&cs, true); err != nil {
		t.Fatal(err)
	}
	rows := bytes.Split(bytes.TrimSuffix(cs.Bytes(), []byte("\n")), []byte("\n"))[1:] // skip header
	for _, l := range rows {
		if err := rec.ParseCSV(l); err != nil {
			t.Fatal(err)
		}
	}
	i = 0
	allocs = testing.AllocsPerRun(1000, func() {
		if err := rec.ParseCSV(rows[i%len(rows)]); err != nil {
			t.Fatal(err)
		}
		i++
	})
	if allocs != 0 {
		t.Fatalf("ParseCSV allocates %v/record in steady state, want 0", allocs)
	}
}

func BenchmarkParseNDJSON(b *testing.B) {
	var buf bytes.Buffer
	if err := driveStream(&buf, false); err != nil {
		b.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimSuffix(buf.Bytes(), []byte("\n")), []byte("\n"))
	var rec Record
	var total int64
	for _, l := range lines {
		total += int64(len(l)) + 1
	}
	b.SetBytes(total / int64(len(lines)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := rec.ParseNDJSON(lines[i%len(lines)]); err != nil {
			b.Fatal(err)
		}
	}
}
