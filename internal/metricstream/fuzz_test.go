package metricstream

import (
	"bytes"
	"testing"
)

// FuzzMetricsParse throws arbitrary bytes at every entry point of the
// stream layer: both single-line parsers and the full Scanner (which also
// exercises gzip sniffing and format autodetection). The property under
// test is total safety — malformed input must surface as an error, never a
// panic, out-of-range slice, or infinite loop — plus parse/re-parse
// stability: a line that parses once must parse identically again from the
// same Record (scratch reuse must not corrupt results).
func FuzzMetricsParse(f *testing.F) {
	seeds := [][]byte{
		[]byte(`{"type":"sample","config":"c","workload":"w","seq":0,"kernel":0,"start":0,"end":4096,"events":12,"liveCTAs":3,"loads":1,"stores":2,"resources":[{"name":"l0","kind":"link","gpm":0,"busy":12.5,"units":800,"util":0.75}],"caches":[{"level":"l2","gpm":0,"hits":10,"misses":2}]}`),
		[]byte(`{"type":"kernel","config":"c","workload":"w","kernel":1,"start":0,"end":8192,"events":99,"resources":null,"caches":null}`),
		[]byte(`{"type":"sample","config":"a\"b\\c","workload":" x","seq":1,"kernel":2,"start":1,"end":2,"events":3,"liveCTAs":4,"loads":5,"stores":6,"resources":[],"caches":[]}`),
		[]byte("type,config,workload,seq,kernel,start,end,events,liveCTAs,loads,stores,kind,gpm,name,busy,units,util,hits,misses"),
		[]byte(`sample,c,w,0,0,0,4096,12,3,1,2,link,0,l0,12.5,800,0.75,,`),
		[]byte(`sample,"c,x","w""q""",0,0,0,4096,12,3,1,2,cache,1,l2,,,,10,2`),
		[]byte(`kernel,c,w,,1,0,8192,99,,,,dram,0,d0,1e3,5,0.5,,`),
		[]byte(`{"type":"sample"`),
		[]byte(`{"type":"bogus","config":"c"}`),
		[]byte(`sample,c,w`),
		[]byte("\x1f\x8b\x08\x00\x00\x00\x00\x00\x00\x00"),
		[]byte("{\"type\":\"sample\",\"config\":\"\\ud83d\\ude00\",\"workload\":\"w\",\"seq\":0,\"kernel\":0,\"start\":0,\"end\":1,\"events\":0,\"liveCTAs\":0,\"loads\":0,\"stores\":0,\"resources\":[],\"caches\":[]}"),
		{},
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var r1, r2 Record
		if err := r1.ParseNDJSON(data); err == nil {
			if err := r2.ParseNDJSON(data); err != nil {
				t.Fatalf("ndjson re-parse failed: %v", err)
			}
			if err := r1.ParseNDJSON(data); err != nil {
				t.Fatalf("ndjson parse into reused record failed: %v", err)
			}
		}
		var c1 Record
		if err := c1.ParseCSV(data); err == nil {
			if err := c1.ParseCSV(data); err != nil {
				t.Fatalf("csv parse into reused record failed: %v", err)
			}
		}
		sc, err := NewScanner(bytes.NewReader(data), FormatAuto)
		if err != nil {
			return // gzip sniff rejected a truncated header: fine
		}
		lines := 0
		for sc.Scan() {
			lines++
			if lines > 1<<20 {
				t.Fatal("scanner yielded over a million records from fuzz input")
			}
			_ = sc.Record()
			_ = sc.Offset()
		}
		_ = sc.Err()
	})
}
