package core

import (
	"mcmgpu/internal/config"
	"mcmgpu/internal/energy"
	"mcmgpu/internal/engine"
	"mcmgpu/internal/sm"
)

// lineBytes is the machine-wide cache line size (Table 3: 128 B).
const lineBytes = config.LineBytes

// The memory path is staged as discrete events at each variable-latency
// boundary (arrival at the home partition, departure of the response) so
// that every bandwidth reservation is made at — or at a small constant
// offset from — current simulated time. Reserving a shared resource at a
// far-future timestamp computed synchronously (e.g. booking the response
// link transfer while still at the request's issue time) would insert the
// intervening latency as dead time in the resource's FIFO timeline and
// starve later-issued, earlier-arriving traffic.
//
// Each in-flight operation's state rides in a pooled context struct
// (loadCtx, storeCtx) scheduled through the engine's typed-event API; the
// stages below are the contexts' Dispatch kinds. This is the closure-free
// dispatch contract: a stage may read the context freely but must release it
// (putLoad/putStore) exactly once, on the path that completes the operation,
// and must not touch it afterwards.

// loadCtx event kinds.
const (
	evLoadArrive  uint8 = iota // request reached the line's home partition
	evLoadRespond              // response data departs the home module
)

// storeCtx event kinds.
const (
	evStoreArrive  uint8 = iota // store reached the line's home partition
	evStoreRelease              // line landed in the home L2; free the slot
)

// loadCtx carries one in-flight cache-line load from the point startLoad
// schedules its arrival event until the data-ready time is delivered to the
// issuing warp. Recycled through Machine.freeLoads.
type loadCtx struct {
	m    *Machine
	wc   *warpCtx   // issuing warp; receives loadComplete
	pt   *partition // the line's home partition
	line uint64
	g    int // requesting module
	next *loadCtx
}

// Dispatch implements engine.Event.
func (lc *loadCtx) Dispatch(kind uint8) {
	if kind == evLoadArrive {
		lc.m.partitionLoad(lc)
		return
	}
	lc.respond()
}

// storeCtx carries one in-flight cache-line store from startStore to the
// release of its store-buffer slot. Recycled through Machine.freeStores.
type storeCtx struct {
	m    *Machine
	sm   *sm.SM // issuing SM; owns the occupied store-buffer slot
	pt   *partition
	line uint64
	next *storeCtx
}

// Dispatch implements engine.Event.
func (sc *storeCtx) Dispatch(kind uint8) {
	if kind == evStoreArrive {
		sc.m.partitionStore(sc)
		return
	}
	sc.release()
}

// startLoad begins one cache-line load for warp wc. wc.loadComplete is
// invoked exactly once with the data-ready cycle; for cache hits and local
// accesses it is invoked synchronously with a (possibly future) timestamp,
// for remote accesses it is invoked from the response event.
func (m *Machine) startLoad(wc *warpCtx, line uint64) {
	cfg := m.cfg
	now := m.sim.Now()
	m.lineReads++
	s := wc.cta.sm

	// SM-private L1.
	if s.L1.Access(line, false).Hit {
		wc.loadComplete(now + engine.Cycle(cfg.L1.HitLatency))
		return
	}
	t := now + engine.Cycle(cfg.L1.HitLatency) // tag lookup paid on miss too

	// Module fabric toward the memory system or the module edge.
	g := s.Module()
	mod := m.mods[g]
	t = mod.xbar.Reserve(t, lineBytes) + engine.Cycle(cfg.XbarLatency)
	m.mtr.AddBytes(energy.DomainChip, lineBytes)

	// Home lookup; first touch binds the page here.
	pt := m.prts[m.amap.Partition(line, g)]
	remote := pt.module != g
	if remote {
		m.remoteAcc++
	} else {
		m.localAcc++
	}

	// Module-side L1.5 (Section 5.1): caches remote traffic (or everything,
	// under the allocate-all ablation policy). Allocation happens at miss
	// time, which models MSHR merging: concurrent accesses to an in-flight
	// line hit without issuing duplicate traffic.
	if mod.l15 != nil && (remote || cfg.L15Alloc == config.AllocAll) {
		if mod.l15.Access(line, false).Hit {
			wc.loadComplete(t + engine.Cycle(cfg.L15.HitLatency))
			return
		}
		t += L15MissPenalty
	}

	if remote {
		// Request header crosses the ring to the home module.
		hops := uint64(m.net.Hops(g, pt.module))
		t = m.net.Send(t, g, pt.module, uint64(cfg.Link.ReqHeaderBytes))
		m.mtr.AddBytes(m.linkDomain, hops*uint64(cfg.Link.ReqHeaderBytes))
	}
	lc := m.getLoad()
	lc.wc, lc.pt, lc.line, lc.g = wc, pt, line, g
	m.sim.AtEvent(t, lc, evLoadArrive)
}

// partitionLoad runs at the line's home partition when the request arrives:
// memory-side L2 lookup, DRAM fill on miss, and the response leg.
func (m *Machine) partitionLoad(lc *loadCtx) {
	cfg := m.cfg
	pt := lc.pt
	now := m.sim.Now()
	t := pt.bank.Reserve(now, lineBytes) + engine.Cycle(cfg.L2.HitLatency)
	l2 := pt.l2.Access(m.amap.CacheAddr(lc.line), false)
	if !l2.Hit {
		// The dirty victim departs as the fill arrives: both transactions
		// are booked at the device arrival time.
		if l2.NeedsWriteback {
			pt.dram.Write(now, lineBytes)
			m.mtr.AddDRAM(lineBytes)
		}
		t = pt.dram.Read(t, lineBytes)
		m.mtr.AddDRAM(lineBytes)
	}
	if pt.module == lc.g {
		wc := lc.wc
		m.putLoad(lc)
		wc.loadComplete(t)
		return
	}
	// Response departs home when the data is ready.
	m.sim.AtEvent(t, lc, evLoadRespond)
}

// respond runs at the home module when the data is ready: it books the
// response transfer back across the ring and wakes the warp at arrival.
func (lc *loadCtx) respond() {
	m := lc.m
	cfg := m.cfg
	resp := uint64(lineBytes + cfg.Link.RespHeaderBytes)
	hops := uint64(m.net.Hops(lc.pt.module, lc.g))
	arrive := m.net.Send(m.sim.Now(), lc.pt.module, lc.g, resp)
	m.mtr.AddBytes(m.linkDomain, hops*resp)
	wc := lc.wc
	m.putLoad(lc)
	wc.loadComplete(arrive)
}

// startStore begins one cache-line store. The caller has already acquired a
// store-buffer slot; the slot is released when the line lands in the home
// L2. The L1 and L1.5 are write-through (footnote 4 of the paper: required
// for software coherence): stores update them in place when present, never
// allocate, and always travel to the home partition.
func (m *Machine) startStore(s *sm.SM, line uint64) {
	cfg := m.cfg
	now := m.sim.Now()
	m.lineWrites++

	s.L1.Probe(line, true)
	t := now + engine.Cycle(cfg.L1.HitLatency)

	g := s.Module()
	mod := m.mods[g]
	t = mod.xbar.Reserve(t, lineBytes) + engine.Cycle(cfg.XbarLatency)
	m.mtr.AddBytes(energy.DomainChip, lineBytes)

	pt := m.prts[m.amap.Partition(line, g)]
	remote := pt.module != g
	if remote {
		m.remoteAcc++
	} else {
		m.localAcc++
	}

	if mod.l15 != nil && (remote || cfg.L15Alloc == config.AllocAll) {
		mod.l15.Probe(line, true)
	}

	if remote {
		payload := uint64(lineBytes + cfg.Link.ReqHeaderBytes)
		hops := uint64(m.net.Hops(g, pt.module))
		t = m.net.Send(t, g, pt.module, payload)
		m.mtr.AddBytes(m.linkDomain, hops*payload)
	}
	sc := m.getStore()
	sc.sm, sc.pt, sc.line = s, pt, line
	m.sim.AtEvent(t, sc, evStoreArrive)
}

// partitionStore absorbs a store at the home partition's write-back L2
// (write-allocate: a miss fills the line from DRAM and may evict a dirty
// victim) and then releases the issuing SM's store-buffer slot.
func (m *Machine) partitionStore(sc *storeCtx) {
	cfg := m.cfg
	pt := sc.pt
	now := m.sim.Now()
	end := pt.bank.Reserve(now, lineBytes) + engine.Cycle(cfg.L2.HitLatency)
	l2 := pt.l2.Access(m.amap.CacheAddr(sc.line), true)
	if !l2.Hit {
		pt.dram.Read(now, lineBytes) // allocate fill
		m.mtr.AddDRAM(lineBytes)
		if l2.NeedsWriteback {
			pt.dram.Write(now, lineBytes)
			m.mtr.AddDRAM(lineBytes)
		}
	}
	m.sim.AtEvent(end, sc, evStoreRelease)
}

// release frees the store-buffer slot the store occupied and resumes a warp
// parked on the full buffer, if any.
func (sc *storeCtx) release() {
	s := sc.sm
	sc.m.putStore(sc)
	if w := s.ReleaseStore(); w != nil {
		w.StoreSlotFree()
	}
}
