package core

import (
	"mcmgpu/internal/config"
	"mcmgpu/internal/energy"
	"mcmgpu/internal/engine"
	"mcmgpu/internal/sm"
)

// lineBytes is the machine-wide cache line size (Table 3: 128 B).
const lineBytes = config.LineBytes

// The memory path is staged as discrete events at each variable-latency
// boundary (arrival at the home partition, departure of the response) so
// that every bandwidth reservation is made at — or at a small constant
// offset from — current simulated time. Reserving a shared resource at a
// far-future timestamp computed synchronously (e.g. booking the response
// link transfer while still at the request's issue time) would insert the
// intervening latency as dead time in the resource's FIFO timeline and
// starve later-issued, earlier-arriving traffic.

// startLoad begins one cache-line load for a warp on SM s. complete is
// invoked exactly once with the data-ready cycle; for cache hits and local
// accesses it is invoked synchronously with a (possibly future) timestamp,
// for remote accesses it is invoked from the response event.
func (m *Machine) startLoad(s *sm.SM, line uint64, complete func(engine.Cycle)) {
	cfg := m.cfg
	now := m.sim.Now()
	m.lineReads++

	// SM-private L1.
	if s.L1.Access(line, false).Hit {
		complete(now + engine.Cycle(cfg.L1.HitLatency))
		return
	}
	t := now + engine.Cycle(cfg.L1.HitLatency) // tag lookup paid on miss too

	// Module fabric toward the memory system or the module edge.
	g := s.Module()
	mod := m.mods[g]
	t = mod.xbar.Reserve(t, lineBytes) + engine.Cycle(cfg.XbarLatency)
	m.mtr.AddBytes(energy.DomainChip, lineBytes)

	// Home lookup; first touch binds the page here.
	pt := m.prts[m.amap.Partition(line, g)]
	remote := pt.module != g
	if remote {
		m.remoteAcc++
	} else {
		m.localAcc++
	}

	// Module-side L1.5 (Section 5.1): caches remote traffic (or everything,
	// under the allocate-all ablation policy). Allocation happens at miss
	// time, which models MSHR merging: concurrent accesses to an in-flight
	// line hit without issuing duplicate traffic.
	if mod.l15 != nil && (remote || cfg.L15Alloc == config.AllocAll) {
		if mod.l15.Access(line, false).Hit {
			complete(t + engine.Cycle(cfg.L15.HitLatency))
			return
		}
		t += l15MissPenalty
	}

	if remote {
		// Request header crosses the ring to the home module.
		hops := uint64(m.net.Hops(g, pt.module))
		t = m.net.Send(t, g, pt.module, uint64(cfg.Link.ReqHeaderBytes))
		m.mtr.AddBytes(m.linkDomain, hops*uint64(cfg.Link.ReqHeaderBytes))
	}
	m.sim.At(t, func() { m.partitionLoad(pt, g, line, complete) })
}

// partitionLoad runs at the line's home partition when the request arrives:
// memory-side L2 lookup, DRAM fill on miss, and the response leg.
func (m *Machine) partitionLoad(pt *partition, g int, line uint64, complete func(engine.Cycle)) {
	cfg := m.cfg
	now := m.sim.Now()
	t := pt.bank.Reserve(now, lineBytes) + engine.Cycle(cfg.L2.HitLatency)
	l2 := pt.l2.Access(m.amap.CacheAddr(line), false)
	if !l2.Hit {
		// The dirty victim departs as the fill arrives: both transactions
		// are booked at the device arrival time.
		if l2.NeedsWriteback {
			pt.dram.Write(now, lineBytes)
			m.mtr.AddDRAM(lineBytes)
		}
		t = pt.dram.Read(t, lineBytes)
		m.mtr.AddDRAM(lineBytes)
	}
	if pt.module == g {
		complete(t)
		return
	}
	// Response departs home when the data is ready.
	m.sim.At(t, func() {
		resp := uint64(lineBytes + cfg.Link.RespHeaderBytes)
		hops := uint64(m.net.Hops(pt.module, g))
		arrive := m.net.Send(m.sim.Now(), pt.module, g, resp)
		m.mtr.AddBytes(m.linkDomain, hops*resp)
		complete(arrive)
	})
}

// startStore begins one cache-line store. The caller has already acquired a
// store-buffer slot; the slot is released when the line lands in the home
// L2. The L1 and L1.5 are write-through (footnote 4 of the paper: required
// for software coherence): stores update them in place when present, never
// allocate, and always travel to the home partition.
func (m *Machine) startStore(s *sm.SM, line uint64) {
	cfg := m.cfg
	now := m.sim.Now()
	m.lineWrites++

	s.L1.Probe(line, true)
	t := now + engine.Cycle(cfg.L1.HitLatency)

	g := s.Module()
	mod := m.mods[g]
	t = mod.xbar.Reserve(t, lineBytes) + engine.Cycle(cfg.XbarLatency)
	m.mtr.AddBytes(energy.DomainChip, lineBytes)

	pt := m.prts[m.amap.Partition(line, g)]
	remote := pt.module != g
	if remote {
		m.remoteAcc++
	} else {
		m.localAcc++
	}

	if mod.l15 != nil && (remote || cfg.L15Alloc == config.AllocAll) {
		mod.l15.Probe(line, true)
	}

	if remote {
		payload := uint64(lineBytes + cfg.Link.ReqHeaderBytes)
		hops := uint64(m.net.Hops(g, pt.module))
		t = m.net.Send(t, g, pt.module, payload)
		m.mtr.AddBytes(m.linkDomain, hops*payload)
	}
	m.sim.At(t, func() { m.partitionStore(s, pt, line) })
}

// partitionStore absorbs a store at the home partition's write-back L2
// (write-allocate: a miss fills the line from DRAM and may evict a dirty
// victim) and then releases the issuing SM's store-buffer slot.
func (m *Machine) partitionStore(s *sm.SM, pt *partition, line uint64) {
	cfg := m.cfg
	now := m.sim.Now()
	end := pt.bank.Reserve(now, lineBytes) + engine.Cycle(cfg.L2.HitLatency)
	l2 := pt.l2.Access(m.amap.CacheAddr(line), true)
	if !l2.Hit {
		pt.dram.Read(now, lineBytes) // allocate fill
		m.mtr.AddDRAM(lineBytes)
		if l2.NeedsWriteback {
			pt.dram.Write(now, lineBytes)
			m.mtr.AddDRAM(lineBytes)
		}
	}
	m.sim.At(end, func() {
		if waiter := s.ReleaseStore(); waiter != nil {
			waiter()
		}
	})
}
