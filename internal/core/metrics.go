package core

import (
	"fmt"

	"mcmgpu/internal/metrics"
)

// DefaultSampleEvery is how many event dispatches pass between polls of the
// metrics sampler hook. The poll itself is one subtraction and compare
// (emission happens only when a full cycle interval has elapsed), so this
// can be much finer than the audit cadence; finer polling tightens how far
// past the cycle interval a sample's span can stretch.
const DefaultSampleEvery = 512

// attachMetrics registers the machine's components as sampler probes and
// installs the engine sample hook. Everything registered is read-only from
// the sampler's point of view: resources via BusyThrough/Units, caches via
// their cumulative hit/access counters, and the live-state snapshot via a
// closure over the machine's counters.
func (m *Machine) attachMetrics(rec *metrics.Recorder) {
	rec.Begin(m.cfg.Name, m.spec.Name)
	for _, lk := range m.net.Links() {
		rec.AddResource("link", lk.GPM, lk.Res.Name(), lk.Res)
	}
	for _, mod := range m.mods {
		rec.AddResource("xbar", mod.id, mod.xbar.Name(), mod.xbar)
	}
	for _, p := range m.prts {
		rec.AddResource("l2bank", p.module, p.bank.Name(), p.bank)
		rec.AddResource("dram", p.module, fmt.Sprintf("dram-%d", p.id), p.dram)
	}
	for _, mod := range m.mods {
		var l1s []metrics.CacheCounters
		for _, s := range m.sms {
			if s.Module() == mod.id {
				l1s = append(l1s, s.L1)
			}
		}
		rec.AddCaches("l1", mod.id, l1s)
		if mod.l15 != nil {
			rec.AddCaches("l15", mod.id, []metrics.CacheCounters{mod.l15})
		}
		var l2s []metrics.CacheCounters
		for _, p := range m.prts {
			if p.module == mod.id {
				l2s = append(l2s, p.l2)
			}
		}
		rec.AddCaches("l2", mod.id, l2s)
	}
	rec.SetStateProbe(func() metrics.State {
		return metrics.State{
			LiveCTAs:       m.liveCTA,
			InFlightLoads:  m.liveLoads,
			InFlightStores: m.liveStores,
		}
	})
	m.sim.SetSample(DefaultSampleEvery, func() {
		rec.Tick(m.sim.Now(), m.sim.Processed())
	})
}
