package core

import (
	"fmt"

	"mcmgpu/internal/energy"
)

// Result summarizes one workload execution on one machine.
type Result struct {
	Config   string
	Workload string

	// Cycles is total execution time in GPU cycles (= ns at 1 GHz).
	Cycles uint64
	// WarpInstrs is warp instructions issued; IPC = WarpInstrs / Cycles.
	WarpInstrs uint64
	// MemOps is warp-level memory operations performed.
	MemOps uint64
	// LineReads / LineWrites are cache-line-granularity accesses.
	LineReads  uint64
	LineWrites uint64

	// InterModuleBytes is wire bytes over inter-module links (a byte per
	// link traversed), and InterModuleGBps the average rate — the paper's
	// "inter-GPM bandwidth" (Figures 7, 10, 14).
	InterModuleBytes uint64
	InterModuleGBps  float64

	// DRAMBytes is bytes moved at DRAM devices.
	DRAMBytes uint64

	// Hit rates per level (combined read+write), with the access counts the
	// denominators came from. A 0 rate with 0 accesses means the level was
	// disabled or never reached, not that it thrashed; renderers consult the
	// counts to show a dash instead of a fake 0% (see report.Rate).
	L1HitRate   float64
	L1Accesses  uint64
	L15HitRate  float64
	L15Accesses uint64
	L2HitRate   float64
	L2Accesses  uint64

	// LocalFraction is the fraction of post-L1 accesses homed in the
	// requesting module's own partitions.
	LocalFraction float64

	// MappedPages is pages bound by first-touch placement (0 under
	// interleave).
	MappedPages int

	// PeakDRAMUtil is the utilization of the busiest DRAM partition, and
	// AvgDRAMUtil the mean across partitions; their gap measures the
	// partition camping / load imbalance first-touch can introduce.
	PeakDRAMUtil float64
	AvgDRAMUtil  float64

	// MaxLinkUtil is the utilization of the busiest inter-module link.
	MaxLinkUtil float64

	// ClampedEvents counts events the engine had to clamp from a past
	// timestamp to the current cycle (engine.Sim.Clamped). A handful is
	// floating-point slop; growth proportional to the event count means a
	// causality bug is hiding behind the clamp.
	ClampedEvents uint64

	// EnergyPJ breaks down data-movement energy per Table 2 domains.
	EnergyPJ EnergyBreakdown
}

// EnergyBreakdown is data-movement energy by domain, in picojoules.
type EnergyBreakdown struct {
	Chip    float64
	Package float64
	Board   float64
	DRAM    float64
	Total   float64
}

// IPC returns warp instructions per cycle.
func (r *Result) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.WarpInstrs) / float64(r.Cycles)
}

// SpeedupOver returns this result's speedup relative to base (ratio of
// base's cycles to this run's cycles) for the same workload.
func (r *Result) SpeedupOver(base *Result) float64 {
	if r.Workload != base.Workload {
		panic(fmt.Sprintf("core: speedup across different workloads %q vs %q", r.Workload, base.Workload))
	}
	if r.Cycles == 0 {
		return 0
	}
	return float64(base.Cycles) / float64(r.Cycles)
}

// String renders a one-line summary.
func (r *Result) String() string {
	return fmt.Sprintf("%s/%s: %d cycles, IPC %.2f, inter-GPM %.0f GB/s, local %.0f%%, L2 hit %.0f%%",
		r.Config, r.Workload, r.Cycles, r.IPC(), r.InterModuleGBps,
		r.LocalFraction*100, r.L2HitRate*100)
}

// collect gathers counters from all components into a Result.
func (m *Machine) collect() *Result {
	cycles := uint64(m.sim.Now())
	r := &Result{
		Config:           m.cfg.Name,
		Workload:         m.spec.Name,
		Cycles:           cycles,
		WarpInstrs:       m.instrs,
		MemOps:           m.memOps,
		LineReads:        m.lineReads,
		LineWrites:       m.lineWrites,
		InterModuleBytes: m.net.TotalBytes(),
		MappedPages:      m.amap.MappedPages(),
		ClampedEvents:    m.sim.Clamped(),
	}
	if cycles > 0 {
		r.InterModuleGBps = float64(r.InterModuleBytes) / float64(cycles)
	}

	var l1Hits, l1Total uint64
	for _, s := range m.sms {
		l1Hits += s.L1.Hits()
		l1Total += s.L1.Accesses()
	}
	r.L1HitRate = ratio(l1Hits, l1Total)
	r.L1Accesses = l1Total

	var l15Hits, l15Total uint64
	for _, mod := range m.mods {
		if mod.l15 != nil {
			l15Hits += mod.l15.Hits()
			l15Total += mod.l15.Accesses()
		}
	}
	r.L15HitRate = ratio(l15Hits, l15Total)
	r.L15Accesses = l15Total

	var l2Hits, l2Total, dramBytes uint64
	var peak, sum float64
	for _, p := range m.prts {
		l2Hits += p.l2.Hits()
		l2Total += p.l2.Accesses()
		dramBytes += p.dram.Bytes()
		u := p.dram.Utilization(m.sim.Now())
		sum += u
		if u > peak {
			peak = u
		}
	}
	r.L2HitRate = ratio(l2Hits, l2Total)
	r.L2Accesses = l2Total
	r.DRAMBytes = dramBytes
	r.PeakDRAMUtil = peak
	r.AvgDRAMUtil = sum / float64(len(m.prts))
	r.LocalFraction = ratio(m.localAcc, m.localAcc+m.remoteAcc)
	r.MaxLinkUtil = m.net.MaxLinkUtilization(m.sim.Now())

	r.EnergyPJ = EnergyBreakdown{
		Chip:    m.mtr.DomainPJ(energy.DomainChip),
		Package: m.mtr.DomainPJ(energy.DomainPackage),
		Board:   m.mtr.DomainPJ(energy.DomainBoard),
		DRAM:    m.mtr.DRAMPJ(),
		Total:   m.mtr.TotalPJ(),
	}
	return r
}

func ratio(num, den uint64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}
