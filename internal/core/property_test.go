package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mcmgpu/internal/config"
	"mcmgpu/internal/workload"
)

// TestRandomMachineWorkloadProperty drives randomly drawn (but valid)
// machine configurations and workload shapes, checking the invariants that
// must hold for every run:
//
//   - the run terminates and executes exactly the specified work,
//   - byte counters are consistent (no inter-module traffic on one module,
//     wire bytes are a multiple of nothing but nonzero when remote traffic
//     exists),
//   - the local fraction is 1 exactly when no inter-module bytes moved,
//   - identical inputs give identical outputs (determinism).
func TestRandomMachineWorkloadProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))

		cfg := config.BaselineMCM()
		cfg.Modules = []int{1, 2, 4}[rng.Intn(3)]
		cfg.SMsPerModule = []int{8, 16, 32}[rng.Intn(3)]
		cfg.PartitionsPerModule = []int{1, 2}[rng.Intn(2)]
		cfg.WarpsPerSM = []int{16, 32, 64}[rng.Intn(3)]
		if cfg.Modules == 1 {
			cfg.Topology = config.TopoNone
		} else if rng.Intn(2) == 0 {
			cfg.Topology = config.TopoCrossbar
		}
		cfg.Link.GBps = []float64{128, 768, 3072}[rng.Intn(3)]
		if rng.Intn(2) == 0 {
			cfg = config.WithL15(cfg, []int{4, 8, 16}[rng.Intn(3)]*config.MB,
				[]config.AllocPolicy{config.AllocAll, config.AllocRemoteOnly}[rng.Intn(2)])
		}
		if rng.Intn(2) == 0 {
			cfg.Scheduler = config.SchedDistributed
			cfg.CTAChunksPerModule = 1 + rng.Intn(3)
		}
		if rng.Intn(2) == 0 {
			cfg.Placement = config.PlaceFirstTouch
		}
		if err := cfg.Validate(); err != nil {
			t.Logf("generated invalid config: %v", err)
			return false
		}

		spec := &workload.Spec{
			Name:     "prop",
			Category: workload.MemoryIntensive,
			Pattern: []workload.Pattern{
				workload.PatStreaming, workload.PatStrided, workload.PatStencil,
				workload.PatIrregular, workload.PatHotRegion, workload.PatComputeTile,
			}[rng.Intn(6)],
			CTAs:             8 + rng.Intn(64),
			WarpsPerCTA:      1 + rng.Intn(4),
			MemOpsPerWarp:    1 + rng.Intn(16),
			ComputePerMem:    rng.Intn(32),
			KernelIters:      1 + rng.Intn(2),
			FootprintLines:   4096 + uint64(rng.Intn(16384)),
			WriteFraction:    float64(rng.Intn(10)) / 10,
			LinesPerOp:       1 + rng.Intn(4),
			SharedFraction:   float64(rng.Intn(4)) / 10,
			SharedLines:      uint64(rng.Intn(512)),
			NeighborFraction: float64(rng.Intn(3)) / 10,
			RandomFraction:   float64(rng.Intn(3)) / 10,
			ScatterLines:     uint64(rng.Intn(512)),
			ReuseProb:        float64(rng.Intn(3)) / 10,
			Stride:           uint64(rng.Intn(8)),
			Seed:             uint64(seed),
		}
		if spec.SharedFraction > 0 && spec.SharedLines == 0 {
			spec.SharedLines = 64
		}
		if err := spec.Validate(); err != nil {
			// Some random draws are inconsistent (tiny footprints); skip.
			return true
		}

		run := func() *Result {
			m, err := New(cfg.Clone())
			if err != nil {
				t.Logf("New: %v", err)
				return nil
			}
			res, err := m.Run(spec)
			if err != nil {
				t.Logf("Run: %v", err)
				return nil
			}
			return res
		}
		a := run()
		if a == nil {
			return false
		}
		if a.MemOps != spec.TotalMemOps() {
			t.Logf("MemOps %d != %d", a.MemOps, spec.TotalMemOps())
			return false
		}
		if a.Cycles == 0 {
			return false
		}
		if cfg.Modules == 1 && a.InterModuleBytes != 0 {
			t.Logf("single module moved %d inter-module bytes", a.InterModuleBytes)
			return false
		}
		if (a.LocalFraction == 1) != (a.InterModuleBytes == 0) {
			t.Logf("local=%v but interModuleBytes=%d", a.LocalFraction, a.InterModuleBytes)
			return false
		}
		b := run()
		if b == nil || a.Cycles != b.Cycles || a.DRAMBytes != b.DRAMBytes ||
			a.InterModuleBytes != b.InterModuleBytes {
			t.Logf("nondeterministic run")
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
