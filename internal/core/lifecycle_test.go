package core

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"mcmgpu/internal/config"
	"mcmgpu/internal/faultinject"
	"mcmgpu/internal/workload"
)

// runWith builds a fresh machine and runs spec under opts.
func runWith(t *testing.T, cfg *config.Config, spec *workload.Spec, opts RunOptions) (*Result, error) {
	t.Helper()
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m.RunWith(spec, opts)
}

// wantSimError asserts err is a *SimError of the given kind and returns it.
func wantSimError(t *testing.T, err error, kind ErrKind) *SimError {
	t.Helper()
	if err == nil {
		t.Fatalf("run completed, want a %s SimError", kind)
	}
	var se *SimError
	if !errors.As(err, &se) {
		t.Fatalf("error %T (%v) is not a *SimError", err, err)
	}
	if se.Kind != kind {
		t.Fatalf("SimError kind = %s, want %s", se.Kind, kind)
	}
	return se
}

func TestMaxEventsTrips(t *testing.T) {
	se := wantSimError(t, secondOf(runWith(t, config.BaselineMCM(), probeSpec(nil),
		RunOptions{MaxEvents: 10_000, CheckEvery: 64})), KindMaxEvents)
	if se.Events < 10_000 {
		t.Errorf("tripped at %d events, before the 10k budget", se.Events)
	}
	// The check runs every CheckEvery dispatches, so the overshoot is bounded.
	if se.Events > 10_000+64 {
		t.Errorf("tripped at %d events, overshooting the 10k budget past the check interval", se.Events)
	}
	if se.Workload != "probe" || se.Config == "" {
		t.Errorf("SimError does not identify the run: %+v", se)
	}
	if se.Stack == "" {
		t.Error("SimError carries no stack")
	}
	if se.LiveCTAs <= 0 {
		t.Errorf("mid-run SimError reports %d live CTAs", se.LiveCTAs)
	}
}

func TestMaxCyclesTrips(t *testing.T) {
	se := wantSimError(t, secondOf(runWith(t, config.BaselineMCM(), probeSpec(nil),
		RunOptions{MaxCycles: 500, CheckEvery: 64})), KindMaxCycles)
	if uint64(se.Clock) < 500 {
		t.Errorf("tripped at cycle %d, before the 500-cycle budget", se.Clock)
	}
}

func TestWallDeadlineTrips(t *testing.T) {
	err := secondOf(runWith(t, config.BaselineMCM(), probeSpec(nil),
		RunOptions{WallDeadline: time.Now().Add(-time.Second), CheckEvery: 64}))
	wantSimError(t, err, KindWallDeadline)
}

func TestContextCancelTrips(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	se := wantSimError(t, secondOf(runWith(t, config.BaselineMCM(), probeSpec(nil),
		RunOptions{Ctx: ctx, CheckEvery: 64})), KindCanceled)
	if !errors.Is(se, context.Canceled) {
		t.Errorf("canceled SimError does not unwrap to context.Canceled (cause %v)", se.Cause)
	}
}

// TestBoundedRunIsByteIdentical is the lifecycle's determinism contract: a
// run bounded by generous, untripped limits must produce exactly the result
// an unbounded run does — the budget check observes but never mutates.
func TestBoundedRunIsByteIdentical(t *testing.T) {
	spec := probeSpec(nil)
	free := mustRun(t, config.BaselineMCM(), spec)
	bounded, err := runWith(t, config.BaselineMCM(), spec, RunOptions{
		Ctx:          context.Background(),
		MaxEvents:    1 << 62,
		MaxCycles:    1 << 62,
		WallDeadline: time.Now().Add(time.Hour),
		CheckEvery:   1, // check after every single dispatch
	})
	if err != nil {
		t.Fatalf("generously bounded run tripped: %v", err)
	}
	if !reflect.DeepEqual(free, bounded) {
		t.Fatalf("bounded-but-untripped run diverged from unbounded run:\nfree:    %+v\nbounded: %+v", free, bounded)
	}
}

// TestFaultStall proves the classic livelock — an event rescheduling itself
// at the same cycle — is caught by the event budget with a frozen clock.
func TestFaultStall(t *testing.T) {
	se := wantSimError(t, secondOf(runWith(t, config.BaselineMCM(), probeSpec(nil), RunOptions{
		Fault:      faultinject.Plan{Kind: faultinject.Stall, AtEvent: 5_000},
		MaxEvents:  50_000,
		CheckEvery: 64,
	})), KindMaxEvents)
	if se.HeapLen == 0 {
		t.Error("stalled run stopped with an empty heap; the staller should keep the queue alive")
	}
}

// TestFaultSpin proves a runaway clock — an event rescheduling itself one
// cycle ahead forever — is caught by the cycle budget. The budget is sized
// from an unbounded run so the healthy run finishes well inside it and only
// the spinning clock can trip it (the spinner advances one cycle per event,
// so an astronomical budget would take astronomically long to reach).
func TestFaultSpin(t *testing.T) {
	spec := probeSpec(nil)
	natural := mustRun(t, config.BaselineMCM(), spec)
	wantSimError(t, secondOf(runWith(t, config.BaselineMCM(), spec, RunOptions{
		Fault:      faultinject.Plan{Kind: faultinject.Spin, AtEvent: 5_000},
		MaxCycles:  natural.Cycles * 4,
		CheckEvery: 64,
	})), KindMaxCycles)
}

// TestFaultCorruptBudget proves a corrupted budget trips the next check even
// though the configured budget is effectively infinite.
func TestFaultCorruptBudget(t *testing.T) {
	wantSimError(t, secondOf(runWith(t, config.BaselineMCM(), probeSpec(nil), RunOptions{
		Fault:      faultinject.Plan{Kind: faultinject.CorruptBudget, AtEvent: 5_000},
		MaxEvents:  1 << 62,
		CheckEvery: 64,
	})), KindMaxEvents)
}

// TestFaultPanicEscapes proves the Panic kind really panics out of RunWith
// with the recognizable Injected value — containment is the runner's job.
func TestFaultPanicEscapes(t *testing.T) {
	defer func() {
		v := recover()
		if v == nil {
			t.Fatal("Panic fault did not panic")
		}
		if _, ok := v.(faultinject.Injected); !ok {
			t.Fatalf("panicked with %T (%v), want faultinject.Injected", v, v)
		}
	}()
	runWith(t, config.BaselineMCM(), probeSpec(nil), RunOptions{
		Fault:      faultinject.Plan{Kind: faultinject.Panic, AtEvent: 5_000},
		CheckEvery: 64,
	})
}

// TestFaultWorkloadFilter proves a plan scoped to another workload leaves
// the run untouched.
func TestFaultWorkloadFilter(t *testing.T) {
	spec := probeSpec(nil)
	res, err := runWith(t, config.BaselineMCM(), spec, RunOptions{
		Fault:      faultinject.Plan{Kind: faultinject.Stall, AtEvent: 0, Workload: "someone-else"},
		MaxEvents:  1 << 62,
		CheckEvery: 64,
	})
	if err != nil {
		t.Fatalf("filtered-out fault still fired: %v", err)
	}
	if !reflect.DeepEqual(res, mustRun(t, config.BaselineMCM(), spec)) {
		t.Fatal("filtered-out fault perturbed the run")
	}
}

// TestMachineRunsOnce asserts the one-shot contract survives the RunWith
// path too.
func TestMachineRunsOnce(t *testing.T) {
	m, err := New(config.BaselineMCM())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.RunWith(probeSpec(nil), RunOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.RunWith(probeSpec(nil), RunOptions{}); err == nil {
		t.Fatal("second RunWith on one machine did not error")
	}
}

// secondOf drops a (result, error) pair to its error.
func secondOf(_ *Result, err error) error { return err }
