package core

import (
	"fmt"

	"mcmgpu/internal/audit"
	"mcmgpu/internal/config"
	"mcmgpu/internal/cta"
	"mcmgpu/internal/engine"
	"mcmgpu/internal/sm"
	"mcmgpu/internal/workload"
)

// warpCtx event kinds.
const (
	evWarpStep uint8 = iota // issue the next compute block or retire
	evWarpMem               // perform the memory operation
)

// ctaCtx tracks one resident CTA until all of its warps drain. Recycled
// through Machine.freeCTAs.
type ctaCtx struct {
	idx  int
	sm   *sm.SM
	live int
	next *ctaCtx
}

// warpCtx is one warp's event-driven execution state. It is an engine.Event
// (its step/mem transitions are scheduled without closures) and an
// sm.StoreWaiter (it parks itself on a full store buffer). Recycled through
// Machine.freeWarps across CTA launches; the embedded Stream is re-seeded in
// place by launchCTA, so relaunching a warp allocates nothing.
type warpCtx struct {
	m   *Machine
	cta *ctaCtx
	st  workload.Stream
	op  workload.Op

	// In-flight memory operation state.
	lineIdx  int          // next store line to issue
	pending  int          // outstanding loads of the current op
	loadDone engine.Cycle // latest completion among them

	next *warpCtx
}

// Dispatch implements engine.Event.
func (wc *warpCtx) Dispatch(kind uint8) {
	if kind == evWarpStep {
		wc.step()
		return
	}
	wc.mem()
}

// StoreSlotFree implements sm.StoreWaiter: the warp resumes issuing the
// store lines it was parked on.
func (wc *warpCtx) StoreSlotFree() { wc.memWrite() }

// Run executes the workload on the machine: KernelIters sequential kernel
// launches with cache flushes at each kernel boundary, then collects the
// Result. Run may be called once per Machine. It is RunWith with no bounds:
// the run completes, or a programmer-invariant violation panics.
func (m *Machine) Run(spec *workload.Spec) (*Result, error) {
	return m.RunWith(spec, RunOptions{})
}

// RunWith is Run bounded by opts: the run additionally terminates — with a
// *SimError carrying a diagnosis snapshot — when a budget is exhausted, the
// wall deadline passes, or the context is canceled. With the zero RunOptions
// it is exactly Run; with limits set but not tripped, the result is
// byte-identical to an unbounded run (the budget check only observes the
// simulation).
func (m *Machine) RunWith(spec *workload.Spec, opts RunOptions) (*Result, error) {
	if m.ran {
		return nil, fmt.Errorf("core: machine %q already ran; build a new one", m.cfg.Name)
	}
	m.ran = true
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if spec.WarpsPerCTA > m.cfg.WarpsPerSM {
		return nil, fmt.Errorf("core: CTA needs %d warps, SM holds %d", spec.WarpsPerCTA, m.cfg.WarpsPerSM)
	}
	m.spec = spec
	m.opts = opts
	m.setupPlacement()
	if opts.bounded() {
		m.sim.SetCheck(opts.checkEvery(), m.checkBudgets)
	}
	if opts.Audit || audit.Forced() {
		m.aud = m.newAuditor()
		m.sim.SetAudit(DefaultAuditEvery, m.periodicAudit)
	}
	if opts.Metrics != nil {
		m.attachMetrics(opts.Metrics)
	}

	for iter := 0; iter < spec.KernelIters; iter++ {
		if iter > 0 {
			// Kernel launch overhead between convergence-loop iterations.
			m.sim.RunUntil(m.sim.Now() + KernelGapCycles)
			if err := m.sim.StopErr(); err != nil {
				return nil, err
			}
		}
		if err := m.runKernel(); err != nil {
			return nil, err
		}
		m.kernelsDone++
		// Kernel-boundary audit: the queue has drained, so the drain
		// invariants and end-to-end flow laws apply. Audited before the
		// boundary flush so the caches are checked in their populated state.
		if m.aud != nil {
			if err := m.runAudit(audit.Boundary); err != nil {
				return nil, err
			}
		}
		if opts.Metrics != nil {
			opts.Metrics.KernelBoundary(m.sim.Now(), m.sim.Processed())
		}
		m.flushKernelBoundary()
	}
	if opts.Metrics != nil {
		opts.Metrics.Finish(m.sim.Now(), m.sim.Processed())
		if err := opts.Metrics.Err(); err != nil {
			return nil, fmt.Errorf("core: metrics export: %w", err)
		}
	}
	return m.collect(), nil
}

// grid returns the kernel's CTA grid shape for the scheduler.
func (m *Machine) grid() cta.Grid {
	w, h, rp, cp := m.spec.TileGrid()
	return cta.Grid{CTAs: m.spec.CTAs, W: w, H: h, RowPanelLines: rp, ColPanelLines: cp}
}

// setupPlacement installs the region-aware page binder and, for LinearInit
// workloads, pre-binds the pages the init sweep first-touched before the
// first compute kernel.
func (m *Machine) setupPlacement() {
	if m.cfg.Placement == config.PlaceInterleave {
		return
	}
	// A throwaway scheduler instance supplies the static CTA-to-module
	// layout; the centralized scheduler has none (layout stays nil).
	layout, _ := cta.New(m.cfg, m.grid()).(cta.Layout)
	var binder func(page uint64) int
	if m.cfg.Placement == config.PlaceRegionAware && layout != nil {
		lpp := m.amap.LinesPerPage()
		spec := m.spec
		binder = func(page uint64) int { return spec.RegionHome(page*lpp, layout.Module) }
		m.amap.SetBinder(binder)
	}
	if !m.spec.LinearInit {
		return
	}
	// The init sweep wrote the footprint linearly before the first compute
	// kernel: its CTA j first-touched the j-th contiguous slice, and page
	// mappings persist. Pre-bind each page accordingly — the region-aware
	// binder overrides the sweep where it knows the owning region; pages
	// outside any region go to the module the sweep's layout ran the
	// covering CTA on. A centralized init race has no static layout, so
	// those pages spread round-robin.
	lpp := m.amap.LinesPerPage()
	pages := (m.spec.FootprintLines + lpp - 1) / lpp
	for page := uint64(0); page < pages; page++ {
		home := -1
		if binder != nil {
			home = binder(page)
		}
		if home < 0 {
			initCTA := int(page * uint64(m.spec.CTAs) / pages)
			if layout != nil {
				home = layout.Module(initCTA)
			}
			if home < 0 {
				home = int(page) % m.cfg.Modules
			}
		}
		m.amap.Prebind(page, home)
	}
}

// runKernel launches all CTAs of one kernel and drains the event queue. It
// returns the budget error that stopped the drain, if any.
func (m *Machine) runKernel() error {
	m.sched = cta.New(m.cfg, m.grid())
	// Initial fill: pass over SMs (which alternate across modules) until
	// no SM can accept another CTA. With the centralized scheduler this
	// spreads consecutive CTAs across GPMs (Figure 8a); the distributed
	// scheduler hands each module only its own contiguous chunk (Figure 8b).
	for launched := true; launched; {
		launched = false
		for _, s := range m.sms {
			if !s.CanHost(m.spec.WarpsPerCTA) {
				continue
			}
			idx := m.sched.Next(s.Module())
			if idx < 0 {
				continue
			}
			m.launchCTA(idx, s, m.sim.Now())
			launched = true
		}
	}
	m.sim.Run()
	if err := m.sim.StopErr(); err != nil {
		// A budget terminated the drain; the queue is intentionally not
		// empty, so the drained-kernel invariant below does not apply.
		return err
	}
	if m.liveCTA != 0 || m.sched.Remaining() != 0 {
		panic(fmt.Sprintf("core: kernel drained with %d live CTAs and %d unissued",
			m.liveCTA, m.sched.Remaining()))
	}
	return nil
}

// launchCTA places CTA idx on SM s and starts its warps at time at.
func (m *Machine) launchCTA(idx int, s *sm.SM, at engine.Cycle) {
	s.HostCTA(m.spec.WarpsPerCTA)
	m.liveCTA++
	cc := m.getCTA()
	cc.idx, cc.sm, cc.live = idx, s, m.spec.WarpsPerCTA
	for w := 0; w < m.spec.WarpsPerCTA; w++ {
		wc := m.getWarp()
		wc.cta = cc
		wc.st.Init(m.spec, idx, w)
		m.sim.AtEvent(at, wc, evWarpStep)
	}
}

// step issues the warp's next compute block, or retires the warp when its
// stream is exhausted.
func (wc *warpCtx) step() {
	m := wc.m
	if !wc.st.Next(&wc.op) {
		cc := wc.cta
		m.putWarp(wc) // no events reference the warp once its stream ends
		cc.live--
		if cc.live == 0 {
			m.ctaDone(cc)
		}
		return
	}
	instrs := uint64(wc.op.Compute) + 1 // the memory instruction issues too
	wc.cta.sm.CountInstrs(instrs)
	m.instrs += instrs
	t := wc.cta.sm.Issue.Reserve(m.sim.Now(), instrs)
	m.sim.AtEvent(t, wc, evWarpMem)
}

// mem performs the warp's memory operation. Loads block the warp until the
// slowest line returns; stores retire after a fixed acknowledge delay while
// their traffic drains asynchronously, subject to store-buffer backpressure.
func (wc *warpCtx) mem() {
	wc.m.memOps++
	if wc.op.Write {
		wc.lineIdx = 0
		wc.memWrite()
		return
	}
	wc.pending = wc.op.NumLines
	wc.loadDone = wc.m.sim.Now()
	for _, line := range wc.op.Lines[:wc.op.NumLines] {
		wc.m.startLoad(wc, line)
	}
}

// loadComplete joins one line of a load op; when the last line lands the
// warp resumes at the latest completion time.
func (wc *warpCtx) loadComplete(t engine.Cycle) {
	if t > wc.loadDone {
		wc.loadDone = t
	}
	wc.pending--
	if wc.pending == 0 {
		wc.m.sim.AtEvent(wc.loadDone, wc, evWarpStep)
	}
}

// memWrite issues the op's store lines. Stores retire once they enter the
// store buffer; a full buffer parks the warp until an in-flight store
// completes, which is how memory-system congestion back-pressures
// write-heavy code.
func (wc *warpCtx) memWrite() {
	m := wc.m
	s := wc.cta.sm
	for wc.lineIdx < wc.op.NumLines {
		if s.StoreFull() {
			s.AwaitStore(wc)
			return
		}
		s.AcquireStore()
		m.startStore(s, wc.op.Lines[wc.lineIdx])
		wc.lineIdx++
	}
	m.sim.AfterEvent(StoreAckCycles, wc, evWarpStep)
}

// ctaDone retires a CTA and immediately pulls the next CTA for the freed
// SM's module, as hardware does when resources free up.
func (m *Machine) ctaDone(cc *ctaCtx) {
	s := cc.sm
	m.putCTA(cc)
	s.RetireCTA(m.spec.WarpsPerCTA)
	m.liveCTA--
	idx := m.sched.Next(s.Module())
	if idx >= 0 {
		m.launchCTA(idx, s, m.sim.Now())
	}
}
