package core

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"mcmgpu/internal/audit"
	"mcmgpu/internal/config"
	"mcmgpu/internal/faultinject"
	"mcmgpu/internal/workload"
)

// auditConfigs covers the machine shapes whose conservation laws differ:
// the plain MCM (ring, interleave), the optimized MCM (L1.5 remote-only,
// first touch, distributed scheduling), a monolithic GPU (no NoC at all),
// and the board-level system (link energy in the board domain).
func auditConfigs() map[string]*config.Config {
	return map[string]*config.Config{
		"baseline-mcm": config.BaselineMCM(),
		"optimized":    config.OptimizedMCM(),
		"monolithic":   config.MustMonolithic(64),
		"multi-gpu":    config.MultiGPUOptimized(),
	}
}

// TestAuditedRunFindsNoViolations is the auditor's soundness contract: on a
// healthy machine every conservation law holds, for every machine shape.
func TestAuditedRunFindsNoViolations(t *testing.T) {
	for name, cfg := range auditConfigs() {
		if _, err := runWith(t, cfg, probeSpec(nil), RunOptions{Audit: true}); err != nil {
			t.Errorf("%s: audited run reported violations: %v", name, err)
		}
	}
}

// TestAuditedRunIsByteIdentical pins the observe-only contract: enabling the
// auditor must not change a single field of the result.
func TestAuditedRunIsByteIdentical(t *testing.T) {
	for name, cfg := range auditConfigs() {
		spec := probeSpec(nil)
		plain := mustRun(t, cfg.Clone(), spec)
		audited, err := runWith(t, cfg, spec, RunOptions{Audit: true})
		if err != nil {
			t.Fatalf("%s: audited run failed: %v", name, err)
		}
		if !reflect.DeepEqual(plain, audited) {
			t.Errorf("%s: audited run diverged from unaudited run:\nplain:   %+v\naudited: %+v",
				name, plain, audited)
		}
	}
}

// wantViolation asserts err is a KindInvariant *SimError whose cause chain
// contains a violation of the named invariant.
func wantViolation(t *testing.T, err error, invariant string) {
	t.Helper()
	se := wantSimError(t, err, KindInvariant)
	var vs audit.Violations
	if !errors.As(se, &vs) {
		t.Fatalf("invariant SimError cause is %T, want audit.Violations", se.Cause)
	}
	var v *audit.Violation
	if !errors.As(se, &v) {
		t.Fatalf("no *audit.Violation in the chain of %v", se)
	}
	for _, got := range vs {
		if got.Invariant == invariant {
			return
		}
	}
	t.Fatalf("no %q violation among %v", invariant, vs)
}

// TestCorruptCounterCaught proves, target by target, that the smallest
// possible perturbation of each audited statistic is caught by the invariant
// engineered to watch it. This is the auditor's liveness contract: a check
// that never fires proves nothing.
func TestCorruptCounterCaught(t *testing.T) {
	cases := []struct {
		target    string
		invariant string
	}{
		{faultinject.TargetLineReads, "l1-flow"},
		{faultinject.TargetLineWrites, "l2-flow"},
		{faultinject.TargetEnergyLink, "energy-bytes"},
		{faultinject.TargetEnergyDRAM, "energy-bytes"},
		{faultinject.TargetInFlight, "warp-drain"},
		{faultinject.TargetClamp, "clamp-guard"},
	}
	for _, tc := range cases {
		t.Run(tc.target, func(t *testing.T) {
			_, err := runWith(t, config.BaselineMCM(), probeSpec(nil), RunOptions{
				Audit: true,
				Fault: faultinject.Plan{
					Kind:    faultinject.CorruptCounter,
					Target:  tc.target,
					AtEvent: 5_000,
				},
				// Backstop: the clamp target keeps the queue alive forever,
				// so a missed catch must fail as max-events, not hang.
				MaxEvents:  20_000_000,
				CheckEvery: 64,
			})
			wantViolation(t, err, tc.invariant)
		})
	}
}

// TestAuditForcedByEnv proves MCMGPU_AUDIT=1 arms the auditor without
// RunOptions.Audit: the same corruption that passes silently by default is
// caught when the environment forces auditing.
func TestAuditForcedByEnv(t *testing.T) {
	fault := faultinject.Plan{
		Kind:    faultinject.CorruptCounter,
		Target:  faultinject.TargetLineReads,
		AtEvent: 5_000,
	}
	// Pin the env off for the control leg: under CI's MCMGPU_AUDIT=1 pass
	// the "unaudited" run would otherwise legitimately catch the fault.
	t.Setenv(audit.EnvVar, "")
	if _, err := runWith(t, config.BaselineMCM(), probeSpec(nil),
		RunOptions{Fault: fault, CheckEvery: 64}); err != nil {
		t.Fatalf("unaudited run surfaced the corruption anyway: %v", err)
	}
	t.Setenv(audit.EnvVar, "1")
	_, err := runWith(t, config.BaselineMCM(), probeSpec(nil),
		RunOptions{Fault: fault, CheckEvery: 64})
	wantViolation(t, err, "l1-flow")
}

// TestAuditReportsUndrainedMidKernel guards the drain invariants against
// vacuity: a machine stopped mid-kernel by an event budget really is in a
// "bad" state by boundary standards, and Machine.Audit must say so rather
// than report a clean bill.
func TestAuditReportsUndrainedMidKernel(t *testing.T) {
	m, err := New(config.BaselineMCM())
	if err != nil {
		t.Fatal(err)
	}
	_, err = m.RunWith(probeSpec(nil), RunOptions{MaxEvents: 10_000, CheckEvery: 64})
	wantSimError(t, err, KindMaxEvents)
	vs := m.Audit()
	if len(vs) == 0 {
		t.Fatal("boundary audit of a mid-kernel machine found nothing undrained")
	}
	found := false
	for _, v := range vs {
		if v.Invariant == "warp-drain" {
			found = true
		}
	}
	if !found {
		t.Fatalf("mid-kernel audit reported %v, want a warp-drain violation", vs)
	}
}

// TestAuditCleanMachine asserts Machine.Audit on a freshly built machine
// (nothing launched, nothing counted) reports nothing.
func TestAuditCleanMachine(t *testing.T) {
	m, err := New(config.BaselineMCM())
	if err != nil {
		t.Fatal(err)
	}
	if vs := m.Audit(); len(vs) != 0 {
		t.Fatalf("pristine machine audits dirty: %v", vs)
	}
}

// TestAuditViolationErrorText pins the rendered diagnosis: the stable
// "sim error" prefix, the invariant kind, and the violated law's name all
// appear, which is what the CI fault smoke greps for.
func TestAuditViolationErrorText(t *testing.T) {
	_, err := runWith(t, config.BaselineMCM(), probeSpec(nil), RunOptions{
		Audit: true,
		Fault: faultinject.Plan{
			Kind:    faultinject.CorruptCounter,
			Target:  faultinject.TargetLineReads,
			AtEvent: 5_000,
		},
		CheckEvery: 64,
	})
	se := wantSimError(t, err, KindInvariant)
	for _, want := range []string{"sim error", "invariant", "l1-flow"} {
		if !strings.Contains(se.Error(), want) {
			t.Errorf("error %q does not mention %q", se.Error(), want)
		}
	}
}

// TestAuditKernelIterations asserts the boundary audit runs per kernel, not
// only at end of run: a corruption injected during the first kernel of a
// multi-kernel run is caught before the second kernel starts.
func TestAuditKernelIterations(t *testing.T) {
	spec := probeSpec(func(s *workload.Spec) { s.KernelIters = 3 })
	firstKernel := mustRun(t, config.BaselineMCM(),
		probeSpec(func(s *workload.Spec) { s.KernelIters = 1 }))
	_, err := runWith(t, config.BaselineMCM(), spec, RunOptions{
		Audit: true,
		Fault: faultinject.Plan{
			Kind:    faultinject.CorruptCounter,
			Target:  faultinject.TargetLineWrites,
			AtEvent: 5_000,
		},
		CheckEvery: 64,
	})
	se := wantSimError(t, err, KindInvariant)
	// l2-flow is boundary-only, so the catch lands at the first kernel's
	// boundary — well before a 3-kernel run would otherwise end.
	if uint64(se.Clock) > firstKernel.Cycles+KernelGapCycles {
		t.Errorf("violation surfaced at cycle %d, after the first kernel boundary (~%d)",
			se.Clock, firstKernel.Cycles)
	}
	wantViolation(t, err, "l2-flow")
}
