package core

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"mcmgpu/internal/config"
	"mcmgpu/internal/engine"
	"mcmgpu/internal/metrics"
)

// runSampled runs the probe spec with a recorder attached and returns the
// result plus the parsed NDJSON records.
func runSampled(t *testing.T, interval engine.Cycle) (*Result, []map[string]interface{}) {
	t.Helper()
	var buf bytes.Buffer
	rec := metrics.NewRecorder(&buf, interval, false)
	m, err := New(config.BaselineMCM())
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.RunWith(probeSpec(nil), RunOptions{Metrics: rec})
	if err != nil {
		t.Fatal(err)
	}
	var recs []map[string]interface{}
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		if line == "" {
			continue
		}
		var rm map[string]interface{}
		if err := json.Unmarshal([]byte(line), &rm); err != nil {
			t.Fatalf("unparseable NDJSON line %q: %v", line, err)
		}
		recs = append(recs, rm)
	}
	return res, recs
}

// TestSampledRunByteIdentical pins the observational contract: a run with
// the metrics sampler attached produces exactly the Result an unsampled run
// does.
func TestSampledRunByteIdentical(t *testing.T) {
	plain := mustRun(t, config.BaselineMCM(), probeSpec(nil))
	sampled, recs := runSampled(t, 4096)
	if !reflect.DeepEqual(plain, sampled) {
		t.Fatalf("sampled result differs from unsampled:\nplain:   %+v\nsampled: %+v", plain, sampled)
	}
	if len(recs) == 0 {
		t.Fatal("no metrics records emitted")
	}
}

// TestMetricsRecordsWellFormed checks the stream's semantic invariants over
// a real two-kernel simulation: every utilization in [0,1], samples ordered
// and non-overlapping, per-kernel busy deltas telescoping to the whole-run
// figures, per-kernel utilization computed over kernel-elapsed cycles.
func TestMetricsRecordsWellFormed(t *testing.T) {
	res, recs := runSampled(t, 4096)

	var kernels []map[string]interface{}
	lastEnd := -1.0
	for _, rm := range recs {
		for _, rr := range rm["resources"].([]interface{}) {
			r := rr.(map[string]interface{})
			u := r["util"].(float64)
			if u < 0 || u > 1 {
				t.Fatalf("util %v out of [0,1] for %v in %v record", u, r["name"], rm["type"])
			}
			if r["busy"].(float64) < 0 {
				t.Fatalf("negative busy delta for %v", r["name"])
			}
		}
		if rm["type"] == "kernel" {
			kernels = append(kernels, rm)
			continue
		}
		if s := rm["start"].(float64); s < lastEnd {
			t.Fatalf("sample starting at %v overlaps previous ending at %v", s, lastEnd)
		}
		lastEnd = rm["end"].(float64)
	}
	// The probe spec runs KernelIters = 2.
	if len(kernels) != 2 {
		t.Fatalf("got %d kernel records, want 2", len(kernels))
	}
	k0, k1 := kernels[0], kernels[1]
	if k0["start"].(float64) != 0 {
		t.Fatalf("kernel 0 starts at %v, want 0", k0["start"])
	}
	// Kernel 1 begins where kernel 0 ended (the inter-kernel launch gap is
	// charged to the following kernel's span) and the last kernel ends at
	// the run's final cycle.
	if k1["start"].(float64) != k0["end"].(float64) {
		t.Fatalf("kernel 1 starts at %v, kernel 0 ended at %v", k1["start"], k0["end"])
	}
	if got := k1["end"].(float64); got != float64(res.Cycles) {
		t.Fatalf("kernel 1 ends at %v, want run end %d", got, res.Cycles)
	}

	// Per-kernel busy deltas and utilizations: for each resource, the two
	// kernels' busy cycles sum to the whole run's busy-through, and each
	// kernel's util equals its busy over its own elapsed cycles (clamped).
	type span struct{ busy, util, start, end float64 }
	byName := func(k map[string]interface{}) map[string]span {
		out := map[string]span{}
		for _, rr := range k["resources"].([]interface{}) {
			r := rr.(map[string]interface{})
			out[r["name"].(string)] = span{
				busy: r["busy"].(float64), util: r["util"].(float64),
				start: k["start"].(float64), end: k["end"].(float64),
			}
		}
		return out
	}
	m0, m1 := byName(k0), byName(k1)
	checked := 0
	for name, s0 := range m0 {
		s1 := m1[name]
		for _, s := range []span{s0, s1} {
			elapsed := s.end - s.start
			want := s.busy / elapsed
			if want > 1 {
				want = 1
			}
			if diff := s.util - want; diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("%s: kernel util %v, want busy/kernel-elapsed %v", name, s.util, want)
			}
		}
		if s0.busy+s1.busy > 0 {
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no resource accumulated busy cycles in either kernel")
	}
}

// TestMetricsWriteErrorFailsRun pins that a failing metrics sink surfaces as
// a run error instead of being swallowed.
func TestMetricsWriteErrorFailsRun(t *testing.T) {
	rec := metrics.NewRecorder(failWriter{}, 4096, false)
	m, err := New(config.BaselineMCM())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.RunWith(probeSpec(nil), RunOptions{Metrics: rec}); err == nil {
		t.Fatal("run with a failing metrics writer reported success")
	} else if !strings.Contains(err.Error(), "metrics export") {
		t.Fatalf("unexpected error: %v", err)
	}
}

type failWriter struct{}

func (failWriter) Write(p []byte) (int, error) {
	return 0, errWrite
}

var errWrite = &writeErr{}

type writeErr struct{}

func (*writeErr) Error() string { return "sink full" }
