package core

import (
	"context"
	"fmt"
	"runtime/debug"
	"time"

	"mcmgpu/internal/engine"
	"mcmgpu/internal/faultinject"
	"mcmgpu/internal/metrics"
)

// DefaultCheckEvery is how many event dispatches pass between budget checks
// when RunOptions does not say otherwise. The check itself is a handful of
// integer compares (plus one time.Now for wall deadlines), so at this
// interval its cost is unmeasurable against million-event runs while still
// bounding how far a runaway loop can overshoot its budget.
const DefaultCheckEvery = 4096

// RunOptions bounds one Machine run. The zero value imposes no limits and
// adds no per-event overhead: the budget check is only installed when at
// least one field is set, and an installed-but-untripped check observes the
// simulation without mutating it, so bounded runs that finish within budget
// are byte-identical to unbounded ones.
type RunOptions struct {
	// Ctx, when non-nil, cancels the run when the context is done.
	Ctx context.Context
	// MaxEvents stops the run after this many dispatched events (0 = no
	// limit).
	MaxEvents uint64
	// MaxCycles stops the run once simulated time reaches this many cycles
	// (0 = no limit).
	MaxCycles uint64
	// WallDeadline stops the run once wall-clock time passes this instant
	// (zero = no limit).
	WallDeadline time.Time
	// CheckEvery is the number of event dispatches between budget checks
	// (0 = DefaultCheckEvery).
	CheckEvery uint64
	// Fault is a deterministic fault-injection plan; the zero value injects
	// nothing. See internal/faultinject.
	Fault faultinject.Plan
	// Audit enables the invariant auditor: conservation laws are checked
	// periodically and at every kernel boundary, and a violation terminates
	// the run with a *SimError of KindInvariant wrapping the structured
	// *audit.Violation values. Auditing only observes the simulation, so an
	// audited run that finds no violations is byte-identical to an unaudited
	// one. The MCMGPU_AUDIT environment variable forces auditing on
	// regardless of this field (see internal/audit.Forced).
	Audit bool
	// Metrics, when non-nil, attaches the time-series sampler: the machine
	// registers its links, crossbars, DRAM partitions and caches as probes
	// and the recorder streams per-interval delta samples plus per-kernel
	// phase records. Sampling only observes the simulation, so a sampled
	// run's Result is byte-identical to an unsampled one. A recorder write
	// error fails the run after the simulation completes. Metrics does not
	// make a run bounded.
	Metrics *metrics.Recorder
}

// bounded reports whether any limit, context, or fault plan is set.
func (o RunOptions) bounded() bool {
	return o.Ctx != nil || o.MaxEvents > 0 || o.MaxCycles > 0 ||
		!o.WallDeadline.IsZero() || o.Fault.Enabled()
}

// checkEvery returns the effective check interval.
func (o RunOptions) checkEvery() uint64 {
	if o.CheckEvery > 0 {
		return o.CheckEvery
	}
	return DefaultCheckEvery
}

// ErrKind classifies why a bounded run was terminated.
type ErrKind uint8

const (
	// KindCanceled: the run's context was canceled.
	KindCanceled ErrKind = iota
	// KindMaxEvents: the dispatched-event budget was exhausted.
	KindMaxEvents
	// KindMaxCycles: the simulated-cycle budget was exhausted.
	KindMaxCycles
	// KindWallDeadline: the wall-clock deadline passed.
	KindWallDeadline
	// KindInvariant: the invariant auditor found a broken conservation law;
	// Cause holds the audit.Violations.
	KindInvariant
)

// String returns the kind's name.
func (k ErrKind) String() string {
	switch k {
	case KindCanceled:
		return "canceled"
	case KindMaxEvents:
		return "max-events"
	case KindMaxCycles:
		return "max-cycles"
	case KindWallDeadline:
		return "wall-deadline"
	case KindInvariant:
		return "invariant"
	}
	return fmt.Sprintf("ErrKind(%d)", int(k))
}

// SimError reports a run that was terminated by a budget, deadline, or
// cancellation rather than completing. It carries a snapshot of the machine
// at termination so a hung or runaway configuration can be diagnosed from
// the error alone, without rerunning under a debugger.
type SimError struct {
	// Kind says which limit terminated the run.
	Kind ErrKind
	// Config and Workload identify the run.
	Config, Workload string
	// Clock is simulated time at termination.
	Clock engine.Cycle
	// Events is the number of events dispatched before termination.
	Events uint64
	// HeapLen is the number of events still queued — a livelocked run shows
	// a small, steady heap; an event explosion shows a huge one.
	HeapLen int
	// LiveCTAs is the number of CTAs resident when the run stopped.
	LiveCTAs int
	// InFlight is the number of in-flight memory operations (loads plus
	// stores between issue and completion).
	InFlight int
	// Stack is the event-loop goroutine's stack at termination.
	Stack string
	// Cause is the underlying error when one exists (the context's error
	// for KindCanceled), surfaced through Unwrap for errors.Is chains.
	Cause error
}

// Error renders a one-line diagnosis; the "sim error" prefix is stable and
// grepped by CI's fault-injection smoke test. Invariant terminations append
// the broken law, since for those the cause is the diagnosis.
func (e *SimError) Error() string {
	s := fmt.Sprintf("sim error: %s on %s: %s at cycle %d (events=%d, heap=%d, liveCTAs=%d, inflight=%d)",
		e.Workload, e.Config, e.Kind, e.Clock, e.Events, e.HeapLen, e.LiveCTAs, e.InFlight)
	if e.Kind == KindInvariant && e.Cause != nil {
		s += ": " + e.Cause.Error()
	}
	return s
}

// Unwrap exposes the underlying cause (e.g. context.Canceled).
func (e *SimError) Unwrap() error { return e.Cause }

// simError builds the termination snapshot for the current machine state.
func (m *Machine) simError(kind ErrKind, cause error) *SimError {
	return &SimError{
		Kind:     kind,
		Config:   m.cfg.Name,
		Workload: m.spec.Name,
		Clock:    m.sim.Now(),
		Events:   m.sim.Processed(),
		HeapLen:  m.sim.Pending(),
		LiveCTAs: m.liveCTA,
		InFlight: m.liveLoads + m.liveStores,
		Stack:    string(debug.Stack()),
		Cause:    cause,
	}
}

// checkBudgets is the periodic stop-check the engine consults every
// CheckEvery dispatches during a bounded run. It fires the armed fault plan
// first (so injected faults are subject to the same containment they are
// meant to prove) and then tests each budget in a fixed order: events,
// cycles, wall clock, context. It never mutates simulation state unless a
// fault fires, which keeps within-budget bounded runs byte-identical to
// unbounded ones.
func (m *Machine) checkBudgets() error {
	if !m.faultFired && m.opts.Fault.Matches(m.spec.Name) &&
		m.sim.Processed() >= m.opts.Fault.AtEvent {
		m.faultFired = true
		switch m.opts.Fault.Kind {
		case faultinject.Panic:
			panic(faultinject.Injected{Plan: m.opts.Fault})
		case faultinject.Stall:
			(&faultinject.Staller{Sim: m.sim}).Start()
		case faultinject.Spin:
			(&faultinject.Staller{Sim: m.sim, Delta: 1}).Start()
		case faultinject.CorruptBudget:
			m.budgetCorrupt = true
		case faultinject.CorruptCounter:
			m.corruptCounter(m.opts.Fault.Target)
		}
	}
	if m.budgetCorrupt || (m.opts.MaxEvents > 0 && m.sim.Processed() >= m.opts.MaxEvents) {
		return m.simError(KindMaxEvents, nil)
	}
	if m.opts.MaxCycles > 0 && uint64(m.sim.Now()) >= m.opts.MaxCycles {
		return m.simError(KindMaxCycles, nil)
	}
	if !m.opts.WallDeadline.IsZero() && time.Now().After(m.opts.WallDeadline) {
		return m.simError(KindWallDeadline, nil)
	}
	if m.opts.Ctx != nil {
		if err := m.opts.Ctx.Err(); err != nil {
			return m.simError(KindCanceled, err)
		}
	}
	return nil
}
