package core

import (
	"testing"

	"mcmgpu/internal/config"
	"mcmgpu/internal/workload"
)

// TestPooledContextsResetAcrossRelaunch drives a multi-wave, store-heavy
// workload (CTAs far exceed residency, so every warp/CTA context is
// recycled many times, and store-buffer backpressure parks warps) and then
// checks that every context sitting on a free list was returned in the
// cleared state: a stale field leaking across a CTA relaunch would be
// invisible in aggregate results until it corrupted a run.
func TestPooledContextsResetAcrossRelaunch(t *testing.T) {
	spec := probeSpec(func(s *workload.Spec) {
		s.CTAs = 1024
		s.WriteFraction = 0.5
		s.KernelIters = 2
	})
	m, err := New(config.BaselineMCM())
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.MemOps != spec.TotalMemOps() {
		t.Fatalf("MemOps = %d, want %d", res.MemOps, spec.TotalMemOps())
	}

	var nWarp, nCTA, nLoad, nStore int
	for wc := m.freeWarps; wc != nil; wc = wc.next {
		nWarp++
		if wc.m != m {
			t.Fatalf("pooled warpCtx lost its machine pointer")
		}
		if wc.cta != nil || wc.pending != 0 || wc.lineIdx != 0 || wc.loadDone != 0 {
			t.Fatalf("pooled warpCtx retains state: %+v", wc)
		}
		if wc.st != (workload.Stream{}) || wc.op != (workload.Op{}) {
			t.Fatalf("pooled warpCtx retains stream/op state")
		}
	}
	for cc := m.freeCTAs; cc != nil; cc = cc.next {
		nCTA++
		if cc.sm != nil || cc.live != 0 || cc.idx != 0 {
			t.Fatalf("pooled ctaCtx retains state: %+v", cc)
		}
	}
	for lc := m.freeLoads; lc != nil; lc = lc.next {
		nLoad++
		if lc.wc != nil || lc.pt != nil || lc.line != 0 || lc.g != 0 {
			t.Fatalf("pooled loadCtx retains state: %+v", lc)
		}
	}
	for sc := m.freeStores; sc != nil; sc = sc.next {
		nStore++
		if sc.sm != nil || sc.pt != nil || sc.line != 0 {
			t.Fatalf("pooled storeCtx retains state: %+v", sc)
		}
	}
	// A drained run must have returned every context: the pools hold the
	// steady-state in-flight population, bounded by machine residency, not
	// by total work.
	if nWarp == 0 || nCTA == 0 || nLoad == 0 || nStore == 0 {
		t.Fatalf("empty pools after run: warps=%d ctas=%d loads=%d stores=%d",
			nWarp, nCTA, nLoad, nStore)
	}
	maxResident := m.cfg.TotalSMs() * m.cfg.WarpsPerSM
	if nWarp > maxResident {
		t.Fatalf("warp pool grew to %d, residency bound is %d", nWarp, maxResident)
	}

	// Pooled reuse must not perturb results: a fresh machine on the same
	// spec (its pools populated in a different order) matches exactly.
	m2, err := New(config.BaselineMCM())
	if err != nil {
		t.Fatal(err)
	}
	res2, err := m2.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles != res2.Cycles || res.DRAMBytes != res2.DRAMBytes ||
		res.InterModuleBytes != res2.InterModuleBytes {
		t.Fatalf("pooled relaunch nondeterministic: %+v vs %+v", res, res2)
	}
}

// TestLoadPathSteadyStateAllocs pins the tentpole contract: once the pools
// and the event queue have warmed, dispatching a load through the full
// remote path (L1 miss, xbar, ring, memory-side L2, DRAM, response) incurs
// zero heap allocations per event.
func TestLoadPathSteadyStateAllocs(t *testing.T) {
	m, err := New(config.BaselineMCM())
	if err != nil {
		t.Fatal(err)
	}
	cc := &ctaCtx{sm: m.sms[0], live: 1}
	wc := m.getWarp()
	wc.cta = cc

	// Issue one load and drain. pending starts at 2 so loadComplete never
	// reaches zero and never schedules the warp's next step (the warp has
	// no stream here). Large line stride defeats the L1 so every load
	// walks the full event path.
	n := uint64(0)
	issue := func() {
		n++
		wc.pending = 2
		m.startLoad(wc, (n*4099)%(1<<22))
		m.sim.Run()
	}
	for i := 0; i < 200; i++ {
		issue() // warm pools, queue backing array, resource state
	}
	allocs := testing.AllocsPerRun(200, issue)
	if allocs != 0 {
		t.Fatalf("steady-state load path allocated %v objects per load, want 0", allocs)
	}
}

// TestClampedEventsSurfaced checks the clamp counter is plumbed into the
// Result, and that a normal run does not clamp at all — the memory path
// schedules only at or after the current cycle by construction.
func TestClampedEventsSurfaced(t *testing.T) {
	res := mustRun(t, config.BaselineMCM(), probeSpec(nil))
	if res.ClampedEvents != 0 {
		t.Fatalf("baseline run clamped %d events, want 0", res.ClampedEvents)
	}
}
