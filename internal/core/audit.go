package core

import (
	"fmt"

	"mcmgpu/internal/audit"
	"mcmgpu/internal/energy"
	"mcmgpu/internal/faultinject"
)

// DefaultAuditEvery is how many event dispatches pass between periodic
// invariant audits. Periodic checks are a few dozen integer sums over the
// machine's components — heavier than the budget check but still far below
// one event's dispatch cost when amortized over this interval.
const DefaultAuditEvery = 65536

// newAuditor registers every conservation law the machine's redundant
// bookkeeping supports. Each check is named; DESIGN.md documents the full
// list with the paper-level rationale for each. Checks that hold at any
// instant (both sides of the law are updated in the same event dispatch)
// also run periodically; end-to-end flow laws that are transiently false
// while operations are in flight run only at kernel boundaries, where the
// event queue has drained.
func (m *Machine) newAuditor() *audit.Auditor {
	a := &audit.Auditor{}

	// warp-drain: at a kernel boundary nothing may be left over from the
	// kernel — no resident CTAs, no in-flight memory operations, no unissued
	// CTAs in the scheduler, and an empty event heap. A leak here means a
	// lost wakeup: some warp will sleep forever in a longer run.
	a.Register("warp-drain", audit.Boundary, func(r *audit.Reporter) {
		audit.Equal(r, "warp-drain", "machine", "live CTAs", m.liveCTA, 0)
		audit.Equal(r, "warp-drain", "machine", "in-flight loads", m.liveLoads, 0)
		audit.Equal(r, "warp-drain", "machine", "in-flight stores", m.liveStores, 0)
		audit.Equal(r, "warp-drain", "machine", "pending events", m.sim.Pending(), 0)
		if m.sched != nil {
			audit.Equal(r, "warp-drain", "machine", "unissued CTAs", m.sched.Remaining(), 0)
		}
	})

	// sm-drain: the per-SM view of the same boundary state — residency and
	// store buffers back to zero, no warp parked on a full store buffer, and
	// every launched CTA retired.
	a.Register("sm-drain", audit.Boundary, func(r *audit.Reporter) {
		for _, s := range m.sms {
			name := fmt.Sprintf("sm%d", s.ID())
			audit.Equal(r, "sm-drain", name, "resident CTAs", s.ResidentCTAs(), 0)
			audit.Equal(r, "sm-drain", name, "resident warps", s.ResidentWarps(), 0)
			audit.Equal(r, "sm-drain", name, "stores in flight", s.StoresInFlight(), 0)
			audit.Equal(r, "sm-drain", name, "parked store waiters", s.PendingStoreWaiters(), 0)
			audit.Equal(r, "sm-drain", name, "launched minus retired CTAs", s.LaunchedCTAs()-s.RetiredCTAs(), uint64(0))
		}
	})

	// cta-flow: across all SMs, exactly CTAs-per-kernel × kernels-completed
	// CTAs have been launched. The CTA scheduler (Section 5.2) may shuffle
	// which module runs which CTA, but it must hand out each index exactly
	// once.
	a.Register("cta-flow", audit.Boundary, func(r *audit.Reporter) {
		if m.spec == nil {
			return
		}
		var launched uint64
		for _, s := range m.sms {
			launched += s.LaunchedCTAs()
		}
		audit.Equal(r, "cta-flow", "machine", "CTAs launched across SMs",
			launched, uint64(m.spec.CTAs)*uint64(m.kernelsDone))
	})

	// l1-flow: every line read the machine counts performed exactly one L1
	// access, and stores never access-count the write-through L1 (they probe
	// it; see startStore). Both sides update in the same event dispatch, so
	// this holds at any instant.
	a.Register("l1-flow", audit.Periodic|audit.Boundary, func(r *audit.Reporter) {
		var reads, writes uint64
		for _, s := range m.sms {
			reads += s.L1.ReadAccesses()
			writes += s.L1.WriteAccesses()
		}
		audit.Equal(r, "l1-flow", "machine", "L1 read accesses", reads, m.lineReads)
		audit.Equal(r, "l1-flow", "machine", "L1 write accesses", writes, uint64(0))
	})

	// l2-flow: reads reaching the memory-side L2 are exactly the L1 read
	// misses not filtered by a module-side L1.5 hit, and writes reaching it
	// are exactly the issued line writes — the write-through L1/L1.5 never
	// absorb a store (footnote 4 of the paper). Transiently false while
	// operations are in flight, so boundary-only.
	a.Register("l2-flow", audit.Boundary, func(r *audit.Reporter) {
		var l1Hits uint64
		for _, s := range m.sms {
			l1Hits += s.L1.ReadHits()
		}
		var l15Hits, l15Writes uint64
		for _, mod := range m.mods {
			if mod.l15 != nil {
				l15Hits += mod.l15.ReadHits()
				l15Writes += mod.l15.WriteAccesses()
			}
		}
		var l2Reads, l2Writes uint64
		for _, p := range m.prts {
			l2Reads += p.l2.ReadAccesses()
			l2Writes += p.l2.WriteAccesses()
		}
		audit.Equal(r, "l2-flow", "machine", "L2 read accesses",
			l2Reads, m.lineReads-l1Hits-l15Hits)
		audit.Equal(r, "l2-flow", "machine", "L2 write accesses", l2Writes, m.lineWrites)
		audit.Equal(r, "l2-flow", "machine", "L1.5 write accesses", l15Writes, uint64(0))
	})

	// dram-flow: per partition, every L2 miss — read misses and the
	// write-allocate fills of write misses — performed exactly one DRAM read,
	// and every dirty eviction exactly one DRAM write. This is the law that
	// keeps the DRAM utilization curves honest against the cache model.
	a.Register("dram-flow", audit.Boundary, func(r *audit.Reporter) {
		for _, p := range m.prts {
			name := fmt.Sprintf("dram-%d", p.id)
			audit.Equal(r, "dram-flow", name, "DRAM reads vs. L2 misses",
				p.dram.Reads(), p.l2.Accesses()-p.l2.Hits())
			audit.Equal(r, "dram-flow", name, "DRAM writes vs. L2 writebacks",
				p.dram.Writes(), p.l2.Writebacks())
		}
	})

	// noc-bytes: the network's aggregate byte counter equals the sum of
	// per-link reservations (the quantity Figures 7/10/14 are computed from).
	a.Register("noc-bytes", audit.Periodic|audit.Boundary, func(r *audit.Reporter) {
		m.net.Audit(r)
	})

	// energy-bytes: the energy meter's per-domain byte counters reconcile
	// with the components that moved the bytes — chip domain vs. the GPM
	// Xbars, link domain vs. the NoC, DRAM domain vs. the partitions — and
	// the domains this machine cannot use stay zero. Section 6.2's energy
	// comparison is only as honest as this agreement.
	a.Register("energy-bytes", audit.Periodic|audit.Boundary, func(r *audit.Reporter) {
		var xbar uint64
		for _, mod := range m.mods {
			xbar += mod.xbar.Units()
		}
		audit.Equal(r, "energy-bytes", "meter", "chip-domain bytes vs. Xbar reservations",
			m.mtr.Bytes(energy.DomainChip), xbar)
		audit.Equal(r, "energy-bytes", "meter",
			fmt.Sprintf("%s-domain bytes vs. NoC wire bytes", m.linkDomain),
			m.mtr.Bytes(m.linkDomain), m.net.TotalBytes())
		unused := energy.DomainBoard
		if m.linkDomain == energy.DomainBoard {
			unused = energy.DomainPackage
		}
		audit.Equal(r, "energy-bytes", "meter",
			fmt.Sprintf("bytes in unused %s domain", unused),
			m.mtr.Bytes(unused), uint64(0))
		audit.Equal(r, "energy-bytes", "meter", "bytes in unused system domain",
			m.mtr.Bytes(energy.DomainSystem), uint64(0))
		var dram uint64
		for _, p := range m.prts {
			dram += p.dram.Bytes()
		}
		audit.Equal(r, "energy-bytes", "meter", "DRAM bytes vs. partition counters",
			m.mtr.DRAMBytes(), dram)
	})

	// dram-bytes: per partition, the device resource's reserved units equal
	// the partition's own read+write byte counters (delegated to the
	// partition).
	a.Register("dram-bytes", audit.Periodic|audit.Boundary, func(r *audit.Reporter) {
		for _, p := range m.prts {
			p.dram.Audit(r)
		}
	})

	// cache-structure: structural well-formedness of every cache instance
	// (occupancy within capacity, LRU stacks well-formed, no dirty lines in
	// write-through levels, no duplicate tags) plus the VM page table's
	// consistency. O(capacity) per cache, so boundary-only.
	a.Register("cache-structure", audit.Boundary, func(r *audit.Reporter) {
		for _, s := range m.sms {
			s.L1.Audit(r)
		}
		for _, mod := range m.mods {
			if mod.l15 != nil {
				mod.l15.Audit(r)
			}
		}
		for _, p := range m.prts {
			p.l2.Audit(r)
		}
		m.amap.Audit(r)
	})

	// sm-structure: per-SM residency and store-buffer bounds (delegated to
	// the SM). Cheap and instant-valid, so it also runs periodically.
	a.Register("sm-structure", audit.Periodic|audit.Boundary, func(r *audit.Reporter) {
		for _, s := range m.sms {
			s.Audit(r)
		}
	})

	// clamp-guard: the engine's clamped-event count stays under the
	// documented budget (audit.ClampBudget). The engine clamps past-time
	// events to now so float slop cannot wedge a run; a count growing with
	// the event count means a causality bug is hiding behind the clamp.
	a.Register("clamp-guard", audit.Periodic|audit.Boundary, func(r *audit.Reporter) {
		clamped, events := m.sim.Clamped(), m.sim.Processed()
		if budget := audit.ClampBudget(events); clamped > budget {
			r.Reportf("clamp-guard", "engine",
				"%d clamped events after %d dispatches exceeds the budget of %d",
				clamped, events, budget)
		}
	})

	return a
}

// runAudit evaluates the given audit phase and converts any violations into
// the machine's structured termination error.
func (m *Machine) runAudit(phase audit.Phase) error {
	if vs := m.aud.Run(phase); len(vs) > 0 {
		return m.simError(KindInvariant, vs)
	}
	return nil
}

// periodicAudit is the engine's audit hook: it runs the checks that stay
// valid mid-kernel.
func (m *Machine) periodicAudit() error {
	return m.runAudit(audit.Periodic)
}

// Audit evaluates every boundary-phase invariant against the machine's
// current state and returns the violations found, building the auditor on
// demand. Unlike the in-run audits this does not require a kernel boundary:
// calling it on a machine stopped mid-kernel (say, by a MaxEvents budget)
// deliberately reports the undrained in-flight state, which is how tests
// prove the drain invariants are not vacuous.
func (m *Machine) Audit() audit.Violations {
	if m.aud == nil {
		m.aud = m.newAuditor()
	}
	return m.aud.Run(audit.Boundary)
}

// corruptCounter applies a CorruptCounter fault plan: a one-count (or
// one-byte) perturbation of the targeted statistic, invisible to every
// lifecycle guard and engineered to break exactly one audited invariant.
func (m *Machine) corruptCounter(target string) {
	switch target {
	case faultinject.TargetLineReads:
		m.lineReads++
	case faultinject.TargetLineWrites:
		m.lineWrites++
	case faultinject.TargetEnergyLink:
		m.mtr.AddBytes(m.linkDomain, 1)
	case faultinject.TargetEnergyDRAM:
		m.mtr.AddDRAM(1)
	case faultinject.TargetInFlight:
		m.liveLoads++
	case faultinject.TargetClamp:
		(&faultinject.ClampStorm{Sim: m.sim}).Start()
	}
}
