package core

import "mcmgpu/internal/workload"

// Free lists for the event-path context structs. The simulator fires
// millions of events per run; allocating a context (or a closure) per event
// made the GC a first-order cost of every experiment. Instead each context
// kind is recycled through an intrusive singly linked free list on the
// Machine: get* pops a recycled struct (allocating only while the pool grows
// toward the steady-state in-flight population), put* clears the struct's
// references and pushes it back. The simulation is single threaded, so the
// lists need no locking.
//
// put* fully zeroes payload fields rather than relying on the next get* to
// overwrite them: it drops references the GC would otherwise keep alive
// through the pool, and it is what the cross-relaunch state-leak test in
// pool_test.go pins down.

// getWarp returns a warp context with m set and all other state cleared.
func (m *Machine) getWarp() *warpCtx {
	wc := m.freeWarps
	if wc == nil {
		return &warpCtx{m: m}
	}
	m.freeWarps = wc.next
	wc.next = nil
	return wc
}

func (m *Machine) putWarp(wc *warpCtx) {
	wc.cta = nil
	wc.st = workload.Stream{}
	wc.op = workload.Op{}
	wc.lineIdx = 0
	wc.pending = 0
	wc.loadDone = 0
	wc.next = m.freeWarps
	m.freeWarps = wc
}

func (m *Machine) getCTA() *ctaCtx {
	cc := m.freeCTAs
	if cc == nil {
		return &ctaCtx{}
	}
	m.freeCTAs = cc.next
	cc.next = nil
	return cc
}

func (m *Machine) putCTA(cc *ctaCtx) {
	cc.idx = 0
	cc.sm = nil
	cc.live = 0
	cc.next = m.freeCTAs
	m.freeCTAs = cc
}

func (m *Machine) getLoad() *loadCtx {
	m.liveLoads++
	lc := m.freeLoads
	if lc == nil {
		return &loadCtx{m: m}
	}
	m.freeLoads = lc.next
	lc.next = nil
	return lc
}

func (m *Machine) putLoad(lc *loadCtx) {
	m.liveLoads--
	lc.wc = nil
	lc.pt = nil
	lc.line = 0
	lc.g = 0
	lc.next = m.freeLoads
	m.freeLoads = lc
}

func (m *Machine) getStore() *storeCtx {
	m.liveStores++
	sc := m.freeStores
	if sc == nil {
		return &storeCtx{m: m}
	}
	m.freeStores = sc.next
	sc.next = nil
	return sc
}

func (m *Machine) putStore(sc *storeCtx) {
	m.liveStores--
	sc.sm = nil
	sc.pt = nil
	sc.line = 0
	sc.next = m.freeStores
	m.freeStores = sc
}
