package core

import (
	"testing"

	"mcmgpu/internal/config"
	"mcmgpu/internal/workload"
)

// probeSpec returns a small deterministic workload for machine tests.
func probeSpec(mut func(*workload.Spec)) *workload.Spec {
	s := &workload.Spec{
		Name: "probe", Category: workload.MemoryIntensive, Pattern: workload.PatStreaming,
		CTAs: 256, WarpsPerCTA: 4, MemOpsPerWarp: 16, ComputePerMem: 4,
		KernelIters: 2, FootprintLines: 65536, LinesPerOp: 1, Seed: 42,
	}
	if mut != nil {
		mut(s)
	}
	if err := s.Validate(); err != nil {
		panic(err)
	}
	return s
}

func mustRun(t *testing.T, cfg *config.Config, spec *workload.Spec) *Result {
	t.Helper()
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestRunCompletesAllWork(t *testing.T) {
	spec := probeSpec(nil)
	res := mustRun(t, config.BaselineMCM(), spec)
	if res.MemOps != spec.TotalMemOps() {
		t.Errorf("MemOps = %d, want %d", res.MemOps, spec.TotalMemOps())
	}
	wantInstrs := spec.TotalMemOps() * uint64(spec.ComputePerMem+1)
	if res.WarpInstrs != wantInstrs {
		t.Errorf("WarpInstrs = %d, want %d", res.WarpInstrs, wantInstrs)
	}
	if res.Cycles == 0 {
		t.Errorf("zero cycles")
	}
	if res.LineReads+res.LineWrites != spec.TotalMemOps()*uint64(spec.LinesPerOp) {
		t.Errorf("line accesses = %d, want %d",
			res.LineReads+res.LineWrites, spec.TotalMemOps()*uint64(spec.LinesPerOp))
	}
}

func TestDeterminism(t *testing.T) {
	spec := probeSpec(func(s *workload.Spec) { s.WriteFraction = 0.3 })
	a := mustRun(t, config.BaselineMCM(), spec)
	b := mustRun(t, config.BaselineMCM(), spec)
	if a.Cycles != b.Cycles || a.InterModuleBytes != b.InterModuleBytes || a.DRAMBytes != b.DRAMBytes {
		t.Fatalf("nondeterministic: %+v vs %+v", a, b)
	}
}

func TestMachineIsSingleUse(t *testing.T) {
	m, err := New(config.BaselineMCM())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(probeSpec(nil)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(probeSpec(nil)); err == nil {
		t.Fatalf("second Run did not fail")
	}
}

func TestInvalidSpecRejected(t *testing.T) {
	m, _ := New(config.BaselineMCM())
	bad := probeSpec(nil)
	bad.CTAs = 0
	if _, err := m.Run(bad); err == nil {
		t.Fatalf("invalid spec accepted")
	}
	m2, _ := New(config.BaselineMCM())
	wide := probeSpec(func(s *workload.Spec) { s.WarpsPerCTA = 128 })
	if _, err := m2.Run(wide); err == nil {
		t.Fatalf("CTA wider than an SM accepted")
	}
}

func TestInvalidConfigRejected(t *testing.T) {
	cfg := config.BaselineMCM()
	cfg.Modules = 0
	if _, err := New(cfg); err == nil {
		t.Fatalf("invalid config accepted")
	}
}

func TestMonolithicHasNoRemoteTraffic(t *testing.T) {
	res := mustRun(t, config.UnbuildableMonolithic(), probeSpec(nil))
	if res.InterModuleBytes != 0 {
		t.Errorf("monolithic moved %d inter-module bytes", res.InterModuleBytes)
	}
	if res.LocalFraction != 1 {
		t.Errorf("LocalFraction = %v, want 1", res.LocalFraction)
	}
	if res.EnergyPJ.Package != 0 || res.EnergyPJ.Board != 0 {
		t.Errorf("monolithic spent package/board energy: %+v", res.EnergyPJ)
	}
}

func TestInterleaveLocalFraction(t *testing.T) {
	// Fine-grain interleave homes 1/modules of traffic locally.
	res := mustRun(t, config.BaselineMCM(), probeSpec(nil))
	if res.LocalFraction < 0.2 || res.LocalFraction > 0.3 {
		t.Errorf("LocalFraction = %v, want ~0.25 under interleave", res.LocalFraction)
	}
	if res.InterModuleBytes == 0 {
		t.Errorf("no inter-module traffic under interleave")
	}
	if res.MappedPages != 0 {
		t.Errorf("interleave mapped %d pages", res.MappedPages)
	}
}

func TestFirstTouchPlusDSLocalizesStreaming(t *testing.T) {
	// A streaming workload under DS+FT keeps nearly all accesses local.
	cfg := config.WithPlacement(
		config.WithScheduler(config.BaselineMCM(), config.SchedDistributed),
		config.PlaceFirstTouch)
	res := mustRun(t, cfg, probeSpec(nil))
	if res.LocalFraction < 0.9 {
		t.Errorf("LocalFraction = %v, want > 0.9 with DS+FT on streaming", res.LocalFraction)
	}
	if res.MappedPages == 0 {
		t.Errorf("first touch mapped no pages")
	}
}

func TestFirstTouchUnderCentralizedIsWorseThanWithDS(t *testing.T) {
	// When pages span multiple consecutive CTAs' regions, FT alone
	// (centralized scheduling) scatters those CTAs across GPMs, so a page
	// bound by one CTA is remote for its neighbors. Distributed scheduling
	// co-locates them; this synergy is the crux of Section 5.3.
	shared := func(s *workload.Spec) {
		// 16-line regions inside 32-line pages: every page is shared by
		// two consecutive CTAs.
		s.FootprintLines = 4096
	}
	ft := config.WithPlacement(config.BaselineMCM(), config.PlaceFirstTouch)
	ftds := config.WithPlacement(
		config.WithScheduler(config.BaselineMCM(), config.SchedDistributed),
		config.PlaceFirstTouch)
	a := mustRun(t, ft, probeSpec(shared))
	b := mustRun(t, ftds, probeSpec(shared))
	if b.LocalFraction <= a.LocalFraction {
		t.Errorf("DS+FT local %v should beat FT-alone local %v", b.LocalFraction, a.LocalFraction)
	}
}

func TestL15RemoteOnlyCachesOnlyRemote(t *testing.T) {
	cfg := config.WithL15(config.BaselineMCM(), 16*config.MB, config.AllocRemoteOnly)
	spec := probeSpec(func(s *workload.Spec) {
		// Scattered reuse over a footprint larger than one L1 but smaller
		// than one L1.5 slice: per-SM L1s cannot absorb it, the module-side
		// cache can.
		s.Pattern = workload.PatIrregular
		s.RandomFraction = 1
		s.FootprintLines = 16384
		s.KernelIters = 1
		s.MemOpsPerWarp = 64
	})
	res := mustRun(t, cfg, spec)
	if res.L15HitRate <= 0 {
		t.Errorf("L1.5 hit rate = %v, want > 0", res.L15HitRate)
	}
	// The L1.5 reduces inter-GPM traffic vs the baseline.
	base := mustRun(t, config.BaselineMCM(), spec)
	if res.InterModuleBytes >= base.InterModuleBytes {
		t.Errorf("L1.5 did not cut traffic: %d vs %d", res.InterModuleBytes, base.InterModuleBytes)
	}
}

func TestLinkBandwidthMonotonicity(t *testing.T) {
	// More inter-GPM bandwidth never hurts a bandwidth-bound workload.
	spec := probeSpec(func(s *workload.Spec) { s.ComputePerMem = 2 })
	prev := uint64(0)
	for _, link := range []float64{384, 768, 3072} {
		res := mustRun(t, config.MCMWithLink(link), spec)
		if prev != 0 && res.Cycles > prev+prev/20 {
			t.Errorf("link %v GB/s slower (%d) than smaller link (%d)", link, res.Cycles, prev)
		}
		prev = res.Cycles
	}
}

func TestWriteHeavyProducesDRAMTraffic(t *testing.T) {
	spec := probeSpec(func(s *workload.Spec) { s.WriteFraction = 0.9 })
	res := mustRun(t, config.BaselineMCM(), spec)
	if res.LineWrites == 0 {
		t.Fatalf("no writes executed")
	}
	if res.DRAMBytes == 0 {
		t.Fatalf("write-heavy run moved no DRAM bytes")
	}
}

func TestEnergyAccounting(t *testing.T) {
	res := mustRun(t, config.BaselineMCM(), probeSpec(nil))
	e := res.EnergyPJ
	if e.Chip <= 0 || e.Package <= 0 || e.DRAM <= 0 {
		t.Errorf("missing energy components: %+v", e)
	}
	if e.Board != 0 {
		t.Errorf("on-package machine spent board energy")
	}
	sum := e.Chip + e.Package + e.Board + e.DRAM
	if diff := e.Total - sum; diff > 1 || diff < -1 {
		t.Errorf("Total %v != sum %v", e.Total, sum)
	}
}

func TestMultiGPUUsesBoardEnergy(t *testing.T) {
	res := mustRun(t, config.MultiGPUBaseline(), probeSpec(func(s *workload.Spec) {
		// Irregular traffic so some crosses the board link even with FT.
		s.Pattern = workload.PatIrregular
		s.RandomFraction = 0.8
	}))
	if res.EnergyPJ.Board <= 0 {
		t.Errorf("multi-GPU spent no board energy")
	}
	if res.EnergyPJ.Package != 0 {
		t.Errorf("multi-GPU spent package energy: %+v", res.EnergyPJ)
	}
}

func TestLimitedParallelismDoesNotScale(t *testing.T) {
	spec := probeSpec(func(s *workload.Spec) {
		s.CTAs = 64
		s.WarpsPerCTA = 2
		s.MemOpsPerWarp = 64
		s.FootprintLines = 32768
	})
	small := mustRun(t, config.MustMonolithic(128), spec)
	big := mustRun(t, config.MustMonolithic(256), spec)
	gain := float64(small.Cycles) / float64(big.Cycles)
	if gain > 1.3 {
		t.Errorf("64-CTA workload sped up %.2fx from 128->256 SMs; should plateau", gain)
	}
}

func TestHighParallelismScales(t *testing.T) {
	spec := probeSpec(func(s *workload.Spec) {
		s.CTAs = 2048
		s.ComputePerMem = 24 // compute-bound so SM count dominates
	})
	small := mustRun(t, config.MustMonolithic(64), spec)
	big := mustRun(t, config.MustMonolithic(256), spec)
	gain := float64(small.Cycles) / float64(big.Cycles)
	if gain < 2.5 {
		t.Errorf("high-parallelism compute-bound workload gained only %.2fx from 64->256 SMs", gain)
	}
}

func TestSpeedupOverPanicsAcrossWorkloads(t *testing.T) {
	a := mustRun(t, config.BaselineMCM(), probeSpec(nil))
	other := probeSpec(func(s *workload.Spec) { s.Name = "other" })
	b := mustRun(t, config.BaselineMCM(), other)
	defer func() {
		if recover() == nil {
			t.Fatalf("cross-workload speedup did not panic")
		}
	}()
	a.SpeedupOver(b)
}

func TestResultString(t *testing.T) {
	res := mustRun(t, config.BaselineMCM(), probeSpec(nil))
	if res.String() == "" || res.IPC() <= 0 {
		t.Fatalf("bad result summary: %q", res.String())
	}
}

func TestDistributedSchedulerIdlesFinishedModules(t *testing.T) {
	// With CTAs not divisible evenly, DS still completes every CTA.
	cfg := config.WithScheduler(config.BaselineMCM(), config.SchedDistributed)
	spec := probeSpec(func(s *workload.Spec) { s.CTAs = 1023 })
	res := mustRun(t, cfg, spec)
	if res.MemOps != spec.TotalMemOps() {
		t.Errorf("DS run lost work: %d vs %d", res.MemOps, spec.TotalMemOps())
	}
}
