package metrics

// Append-based record encoding: the Recorder's hot emit path. Every sample
// used to round-trip through encoding/json (reflection, interface boxing,
// one allocation per Marshal plus the record slices), which dominated the
// sampler's cost at small intervals. These helpers append the exact same
// bytes into a reused buffer instead — byte-identity with the old
// encoding/json output is pinned by TestEncodingGolden and the re-marshal
// property test, and the stream format contract lives in DESIGN.md §9.

import (
	"fmt"
	"math"
	"strconv"
	"unicode/utf8"
)

const hexDigits = "0123456789abcdef"

// jsonSafe marks the ASCII bytes encoding/json emits verbatim inside a
// string with HTML escaping on (the json.Marshal default): everything from
// 0x20 up except '"', '\\', '<', '>', '&'.
var jsonSafe = func() (t [utf8.RuneSelf]bool) {
	for b := 0x20; b < utf8.RuneSelf; b++ {
		switch byte(b) {
		case '"', '\\', '<', '>', '&':
		default:
			t[b] = true
		}
	}
	return
}()

// appendJSONString appends s as a JSON string literal with exactly
// encoding/json's escaping rules (HTML specials to \u00xx, named escapes for
// \n \r \t, \u00xx for other controls, � for invalid UTF-8, and the
// JavaScript line separators U+2028/U+2029 escaped).
func appendJSONString(dst []byte, s string) []byte {
	dst = append(dst, '"')
	start := 0
	for i := 0; i < len(s); {
		if b := s[i]; b < utf8.RuneSelf {
			if jsonSafe[b] {
				i++
				continue
			}
			dst = append(dst, s[start:i]...)
			switch b {
			case '\\', '"':
				dst = append(dst, '\\', b)
			case '\n':
				dst = append(dst, '\\', 'n')
			case '\r':
				dst = append(dst, '\\', 'r')
			case '\t':
				dst = append(dst, '\\', 't')
			default:
				// Control bytes and the HTML specials <, >, &.
				dst = append(dst, '\\', 'u', '0', '0', hexDigits[b>>4], hexDigits[b&0xF])
			}
			i++
			start = i
			continue
		}
		c, size := utf8.DecodeRuneInString(s[i:])
		if c == utf8.RuneError && size == 1 {
			dst = append(dst, s[start:i]...)
			dst = append(dst, '\\', 'u', 'f', 'f', 'f', 'd')
			i += size
			start = i
			continue
		}
		if c == '\u2028' || c == '\u2029' {
			dst = append(dst, s[start:i]...)
			dst = append(dst, '\\', 'u', '2', '0', '2', hexDigits[c&0xF])
			i += size
			start = i
			continue
		}
		i += size
	}
	dst = append(dst, s[start:]...)
	return append(dst, '"')
}

// appendJSONFloat appends f exactly as encoding/json encodes a float64:
// shortest 'f' form, switching to 'e' outside [1e-6, 1e21) with a one-digit
// exponent cleanup. NaN and infinities are unsupported, matching
// json.Marshal's error behavior.
func appendJSONFloat(dst []byte, f float64) ([]byte, error) {
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return dst, fmt.Errorf("metrics: unsupported float64 value %v", f)
	}
	abs := math.Abs(f)
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	dst = strconv.AppendFloat(dst, f, format, -1, 64)
	if format == 'e' {
		// encoding/json trims a leading zero off a two-digit negative
		// exponent: "2e-07" -> "2e-7".
		if n := len(dst); n >= 4 && dst[n-4] == 'e' && dst[n-3] == '-' && dst[n-2] == '0' {
			dst[n-2] = dst[n-1]
			dst = dst[:n-1]
		}
	}
	return dst, nil
}

// appendJSONSample appends rec as one NDJSON line (newline included),
// byte-identical to json.Marshal of sampleRecord.
func appendJSONSample(dst []byte, rec *sampleRecord) ([]byte, error) {
	dst = append(dst, `{"type":`...)
	dst = appendJSONString(dst, rec.Type)
	dst = append(dst, `,"config":`...)
	dst = appendJSONString(dst, rec.Config)
	dst = append(dst, `,"workload":`...)
	dst = appendJSONString(dst, rec.Workload)
	dst = append(dst, `,"seq":`...)
	dst = strconv.AppendInt(dst, int64(rec.Seq), 10)
	dst = append(dst, `,"kernel":`...)
	dst = strconv.AppendInt(dst, int64(rec.Kernel), 10)
	dst = append(dst, `,"start":`...)
	dst = strconv.AppendUint(dst, rec.Start, 10)
	dst = append(dst, `,"end":`...)
	dst = strconv.AppendUint(dst, rec.End, 10)
	dst = append(dst, `,"events":`...)
	dst = strconv.AppendUint(dst, rec.Events, 10)
	dst = append(dst, `,"liveCTAs":`...)
	dst = strconv.AppendInt(dst, int64(rec.LiveCTAs), 10)
	dst = append(dst, `,"loads":`...)
	dst = strconv.AppendInt(dst, int64(rec.Loads), 10)
	dst = append(dst, `,"stores":`...)
	dst = strconv.AppendInt(dst, int64(rec.Stores), 10)
	dst, err := appendJSONBody(dst, rec.Resources, rec.Caches)
	if err != nil {
		return dst, err
	}
	return append(dst, '}', '\n'), nil
}

// appendJSONKernel appends rec as one NDJSON line (newline included),
// byte-identical to json.Marshal of kernelRecord.
func appendJSONKernel(dst []byte, rec *kernelRecord) ([]byte, error) {
	dst = append(dst, `{"type":`...)
	dst = appendJSONString(dst, rec.Type)
	dst = append(dst, `,"config":`...)
	dst = appendJSONString(dst, rec.Config)
	dst = append(dst, `,"workload":`...)
	dst = appendJSONString(dst, rec.Workload)
	dst = append(dst, `,"kernel":`...)
	dst = strconv.AppendInt(dst, int64(rec.Kernel), 10)
	dst = append(dst, `,"start":`...)
	dst = strconv.AppendUint(dst, rec.Start, 10)
	dst = append(dst, `,"end":`...)
	dst = strconv.AppendUint(dst, rec.End, 10)
	dst = append(dst, `,"events":`...)
	dst = strconv.AppendUint(dst, rec.Events, 10)
	dst, err := appendJSONBody(dst, rec.Resources, rec.Caches)
	if err != nil {
		return dst, err
	}
	return append(dst, '}', '\n'), nil
}

// appendJSONBody appends the shared "resources" and "caches" arrays.
func appendJSONBody(dst []byte, res []resourceRecord, caches []cacheRecord) ([]byte, error) {
	var err error
	dst = append(dst, `,"resources":`...)
	if res == nil {
		dst = append(dst, `null`...)
	} else {
		dst = append(dst, '[')
		for i := range res {
			rr := &res[i]
			if i > 0 {
				dst = append(dst, ',')
			}
			dst = append(dst, `{"name":`...)
			dst = appendJSONString(dst, rr.Name)
			dst = append(dst, `,"kind":`...)
			dst = appendJSONString(dst, rr.Kind)
			dst = append(dst, `,"gpm":`...)
			dst = strconv.AppendInt(dst, int64(rr.GPM), 10)
			dst = append(dst, `,"busy":`...)
			if dst, err = appendJSONFloat(dst, rr.Busy); err != nil {
				return dst, err
			}
			dst = append(dst, `,"units":`...)
			dst = strconv.AppendUint(dst, rr.Units, 10)
			dst = append(dst, `,"util":`...)
			if dst, err = appendJSONFloat(dst, rr.Util); err != nil {
				return dst, err
			}
			dst = append(dst, '}')
		}
		dst = append(dst, ']')
	}
	dst = append(dst, `,"caches":`...)
	if caches == nil {
		dst = append(dst, `null`...)
	} else {
		dst = append(dst, '[')
		for i := range caches {
			cr := &caches[i]
			if i > 0 {
				dst = append(dst, ',')
			}
			dst = append(dst, `{"level":`...)
			dst = appendJSONString(dst, cr.Level)
			dst = append(dst, `,"gpm":`...)
			dst = strconv.AppendInt(dst, int64(cr.GPM), 10)
			dst = append(dst, `,"hits":`...)
			dst = strconv.AppendUint(dst, cr.Hits, 10)
			dst = append(dst, `,"misses":`...)
			dst = strconv.AppendUint(dst, cr.Misses, 10)
			dst = append(dst, '}')
		}
		dst = append(dst, ']')
	}
	return dst, nil
}

// appendCSVField appends a CSV value, quoting when the RFC-4180 specials
// require it — same policy as the old csvField, without the intermediate
// strings.
func appendCSVField(dst []byte, s string) []byte {
	quote := false
	for i := 0; i < len(s); i++ {
		if c := s[i]; c == ',' || c == '"' || c == '\n' {
			quote = true
			break
		}
	}
	if !quote {
		return append(dst, s...)
	}
	dst = append(dst, '"')
	for i := 0; i < len(s); i++ {
		if s[i] == '"' {
			dst = append(dst, '"', '"')
		} else {
			dst = append(dst, s[i])
		}
	}
	return append(dst, '"')
}

// appendCSVFloat appends v in fmt's %g form (shortest unique).
func appendCSVFloat(dst []byte, v float64) []byte {
	return strconv.AppendFloat(dst, v, 'g', -1, 64)
}

// appendCSVBody appends one long-format row per resource and per cache
// entry, each prefixed with the record columns already rendered in prefix.
func appendCSVBody(dst, prefix []byte, res []resourceRecord, caches []cacheRecord) []byte {
	for i := range res {
		rr := &res[i]
		dst = append(dst, prefix...)
		dst = append(dst, ',')
		dst = appendCSVField(dst, rr.Kind)
		dst = append(dst, ',')
		dst = strconv.AppendInt(dst, int64(rr.GPM), 10)
		dst = append(dst, ',')
		dst = appendCSVField(dst, rr.Name)
		dst = append(dst, ',')
		dst = appendCSVFloat(dst, rr.Busy)
		dst = append(dst, ',')
		dst = strconv.AppendUint(dst, rr.Units, 10)
		dst = append(dst, ',')
		dst = appendCSVFloat(dst, rr.Util)
		dst = append(dst, ',', ',', '\n')
	}
	for i := range caches {
		cr := &caches[i]
		dst = append(dst, prefix...)
		dst = append(dst, `,cache,`...)
		dst = strconv.AppendInt(dst, int64(cr.GPM), 10)
		dst = append(dst, ',')
		dst = appendCSVField(dst, cr.Level)
		dst = append(dst, `,,,,`...)
		dst = strconv.AppendUint(dst, cr.Hits, 10)
		dst = append(dst, ',')
		dst = strconv.AppendUint(dst, cr.Misses, 10)
		dst = append(dst, '\n')
	}
	return dst
}
