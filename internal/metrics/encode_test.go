package metrics

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"strings"
	"testing"

	"mcmgpu/internal/engine"
)

// TestEncodingGolden pins the stream bytes across the encoding/json ->
// append-encoder rewrite: the golden files were captured from the original
// json.Marshal/fmt implementation and the hand-rolled encoder must reproduce
// them byte for byte, including JSON HTML escaping (<...), control-byte
// escapes, CSV quoting, and fractional busy/util formatting.
func TestEncodingGolden(t *testing.T) {
	var nd bytes.Buffer
	rec := NewRecorder(&nd, 4096, false)
	drive(rec)
	driveTricky(rec)
	if err := rec.Err(); err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile("testdata/golden_stream.ndjson")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(nd.Bytes(), want) {
		t.Fatalf("NDJSON stream diverged from the encoding/json golden:\ngot:  %q\nwant: %q",
			firstDiffLine(nd.Bytes(), want), firstDiffLine(want, nd.Bytes()))
	}

	var cs bytes.Buffer
	rec2 := NewRecorder(&cs, 4096, true)
	drive(rec2)
	driveTricky(rec2)
	if err := rec2.Err(); err != nil {
		t.Fatal(err)
	}
	wantCSV, err := os.ReadFile("testdata/golden_stream.csv")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(cs.Bytes(), wantCSV) {
		t.Fatalf("CSV stream diverged from the fmt golden:\ngot:  %q\nwant: %q",
			firstDiffLine(cs.Bytes(), wantCSV), firstDiffLine(wantCSV, cs.Bytes()))
	}
}

// firstDiffLine returns the first line of a that differs from b, for
// readable failures.
func firstDiffLine(a, b []byte) string {
	al := strings.Split(string(a), "\n")
	bl := strings.Split(string(b), "\n")
	for i := range al {
		if i >= len(bl) || al[i] != bl[i] {
			return al[i]
		}
	}
	return ""
}

// TestJSONReMarshal proves the append encoder agrees with encoding/json on
// every line it emits: unmarshaling a line into the record struct and
// re-marshaling it with json.Marshal must reproduce the line exactly.
func TestJSONReMarshal(t *testing.T) {
	var nd bytes.Buffer
	rec := NewRecorder(&nd, 4096, false)
	drive(rec)
	driveTricky(rec)
	for _, line := range strings.Split(strings.TrimSpace(nd.String()), "\n") {
		var probe struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal([]byte(line), &probe); err != nil {
			t.Fatalf("unparseable line %q: %v", line, err)
		}
		var back []byte
		var err error
		switch probe.Type {
		case "sample":
			var sr sampleRecord
			if err := json.Unmarshal([]byte(line), &sr); err != nil {
				t.Fatal(err)
			}
			back, err = json.Marshal(&sr)
		case "kernel":
			var kr kernelRecord
			if err := json.Unmarshal([]byte(line), &kr); err != nil {
				t.Fatal(err)
			}
			back, err = json.Marshal(&kr)
		default:
			t.Fatalf("unknown record type %q", probe.Type)
		}
		if err != nil {
			t.Fatal(err)
		}
		if string(back) != line {
			t.Fatalf("append encoding disagrees with encoding/json:\nours:     %s\nmarshal:  %s", line, back)
		}
	}
}

// TestAppendJSONFloatMatchesMarshal sweeps the float encoder across the
// regimes encoding/json special-cases.
func TestAppendJSONFloatMatchesMarshal(t *testing.T) {
	vals := []float64{
		0, 1, -1, 0.5, 973.5833333332934, 0.00011086474501109656,
		1e-6, 9.999e-7, 1e-7, 2e-7, 1e21, 1.5e21, 9.99e20, -3.25e-9,
		1e-300, 1e300, 4096, 0.125, 1.0 / 3.0,
	}
	for _, v := range vals {
		got, err := appendJSONFloat(nil, v)
		if err != nil {
			t.Fatal(err)
		}
		want, err := json.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(want) {
			t.Fatalf("appendJSONFloat(%v) = %q, json.Marshal = %q", v, got, want)
		}
	}
}

// TestAppendJSONStringMatchesMarshal sweeps the string encoder across the
// escaping classes.
func TestAppendJSONStringMatchesMarshal(t *testing.T) {
	strs := []string{
		"", "plain", "with space", `quo"te`, `back\slash`,
		"<html>&", "tab\there", "nl\nhere", "cr\rhere", "ctrl\x01\x1f",
		"utf8 héllo ☺", "bad\xffutf8", "line sep two",
	}
	for _, s := range strs {
		got := appendJSONString(nil, s)
		want, err := json.Marshal(s)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(want) {
			t.Fatalf("appendJSONString(%q) = %s, json.Marshal = %s", s, got, want)
		}
	}
}

// emitLoop registers a realistic probe mix and returns a closure emitting
// one sample per call.
func emitLoop(rec *Recorder) func() {
	links := make([]*engine.Resource, 8)
	for i := range links {
		links[i] = engine.NewResource("link", 3)
	}
	c := &fakeCache{}
	rec.Begin("cfg", "wl")
	for i, l := range links {
		rec.AddResource("link", i%4, l.Name(), l)
	}
	rec.AddCaches("l1", 0, []CacheCounters{c})
	rec.SetStateProbe(func() State { return State{LiveCTAs: 1} })
	now := engine.Cycle(0)
	events := uint64(0)
	return func() {
		now += 4096
		events += 1000
		links[int(now/4096)%8].Reserve(now-100, 33)
		c.acc += 7
		c.hits += 3
		rec.Tick(now, events)
	}
}

// TestEmitAllocs pins the rewritten emit path at ~0 amortized allocations
// per sample for both encodings (the only remaining allocations are the
// amortized growth of the summary series and the reused buffers).
func TestEmitAllocs(t *testing.T) {
	for _, csv := range []bool{false, true} {
		rec := NewRecorder(io.Discard, 4096, csv)
		emit := emitLoop(rec)
		for i := 0; i < 512; i++ {
			emit() // warm: buffers reach steady-state capacity
		}
		allocs := testing.AllocsPerRun(2000, emit)
		if allocs > 0.05 {
			t.Errorf("csv=%v: %v allocs/sample on the emit path, want ~0", csv, allocs)
		}
		if err := rec.Err(); err != nil {
			t.Fatal(err)
		}
	}
}

func BenchmarkEmitSampleNDJSON(b *testing.B) {
	rec := NewRecorder(io.Discard, 4096, false)
	emit := emitLoop(rec)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		emit()
	}
}

func BenchmarkEmitSampleCSV(b *testing.B) {
	rec := NewRecorder(io.Discard, 4096, true)
	emit := emitLoop(rec)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		emit()
	}
}
