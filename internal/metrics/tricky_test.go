package metrics

import (
	"mcmgpu/internal/engine"
)

// driveTricky exercises the encoder's hard cases: fractional busy/util
// values (non-power-of-two bandwidths), CSV-quotable names (commas, quotes),
// and JSON-escaped names (HTML specials, backslash, control bytes).
func driveTricky(rec *Recorder) {
	link := engine.NewResource("odd-link", 3)
	dram := engine.NewResource("dram,0 \"x\"", 7)
	xbar := engine.NewResource("xb<&>\\\t1", 11)
	c := &fakeCache{}
	rec.Begin("cfg,with \"quotes\" <&>", "wl\nnewline")
	rec.AddResource("link", 0, link.Name(), link)
	rec.AddResource("dram", 1, dram.Name(), dram)
	rec.AddResource("xbar", 0, xbar.Name(), xbar)
	rec.AddCaches("l1", 0, []CacheCounters{c})
	rec.SetStateProbe(func() State { return State{LiveCTAs: 7, InFlightLoads: 0, InFlightStores: 5} })

	link.Reserve(0, 1000)
	dram.Reserve(3, 12345)
	xbar.Reserve(100, 7777)
	c.hits, c.acc = 13, 57
	rec.Tick(4099, 901)
	link.Reserve(4100, 31)
	c.hits, c.acc = 14, 99
	rec.KernelBoundary(9001, 1902)
	xbar.Reserve(9002, 5)
	rec.Tick(13101, 2905)
	rec.Finish(13103, 3001)
}
