// Package metrics is the simulator's time-series observability layer: a
// periodic sampler that rides the engine's third hook (engine.Sim.SetSample,
// alongside SetCheck/SetAudit) and exports per-interval *deltas* of the
// machine's bandwidth and cache counters as NDJSON or CSV.
//
// The sampler is strictly observational. Every quantity it reads is either a
// cumulative counter or engine.Resource.BusyThrough — which advances a
// settlement watermark but never changes reservation timing or end-of-run
// totals — so a sampled run is byte-identical to an unsampled one. That
// contract is pinned by tests in core and runner and by CI's metrics smoke
// step.
//
// Interval utilization is computed from busy-cycle deltas clipped to the
// observation interval (see engine.Resource.BusyThrough), so a saturated
// link reads 1.0 during the phase that saturates it instead of the >1
// figures the raw Reserve-time accounting would give. The emitted busy
// deltas themselves are exact: over any run they sum to the resource's
// end-of-run BusyCycles.
package metrics

import (
	"fmt"
	"io"
	"strconv"

	"mcmgpu/internal/engine"
	"mcmgpu/internal/report"
	"mcmgpu/internal/stats"
)

// DefaultInterval is the sampling interval, in cycles, when the caller does
// not choose one. At the model's 1 GHz clock this is ~4 µs of simulated
// time — fine enough to resolve kernel phases, coarse enough that a full
// experiment sweep emits megabytes, not gigabytes.
const DefaultInterval engine.Cycle = 4096

// Probe is a bandwidth-limited component the sampler reads: anything that
// can report time-clipped busy cycles and cumulative transferred units.
// engine.Resource satisfies it directly; dram.Partition delegates.
type Probe interface {
	BusyThrough(now engine.Cycle) float64
	Units() uint64
}

// CacheCounters is the slice of a cache the sampler reads. cache.Cache
// satisfies it.
type CacheCounters interface {
	Hits() uint64
	Accesses() uint64
}

// State is the instantaneous machine state attached to each sample.
type State struct {
	LiveCTAs       int
	InFlightLoads  int
	InFlightStores int
}

// probeState is one registered resource with its delta baselines: last* is
// the previous sample's settled value, k* the current kernel's start value.
type probeState struct {
	kind string
	gpm  int
	name string
	p    Probe

	lastBusy  float64
	lastUnits uint64
	kBusy     float64
	kUnits    uint64
}

// cacheState is one registered cache level within one GPM (possibly several
// physical slices, e.g. all L1s of a module) with its delta baselines.
type cacheState struct {
	level string
	gpm   int
	cs    []CacheCounters

	lastHits, lastAcc uint64
	kHits, kAcc       uint64
}

func (c *cacheState) totals() (hits, acc uint64) {
	for _, cc := range c.cs {
		hits += cc.Hits()
		acc += cc.Accesses()
	}
	return hits, acc
}

// Recorder samples one run at a time and streams records to a writer. It is
// reusable: Begin resets the per-run state, so one Recorder can serve a
// sequence of runs (the CLIs run it across every selected workload) while
// writing a single concatenated stream. It is not safe for concurrent use;
// the parallel runner gives each job its own Recorder over its own buffer.
type Recorder struct {
	w        io.Writer
	interval engine.Cycle
	csv      bool

	wroteHeader bool
	err         error

	config, workload string
	seq              int
	kernel           int
	lastCycle        engine.Cycle
	lastEvents       uint64
	kCycle           engine.Cycle
	kEvents          uint64
	resources        []*probeState
	caches           []*cacheState
	state            func() State

	sum *Summary

	// Reused encoding scratch: the emit hot path appends records into buf
	// and record fields into encRes/encCaches, so steady-state sampling
	// performs no per-sample allocations (pinned by TestEmitAllocs).
	buf           []byte
	prefixScratch []byte
	encRes        []resourceRecord
	encCache      []cacheRecord
}

// NewRecorder creates a Recorder writing to w (nil = discard) every interval
// cycles (<= 0 = DefaultInterval), as CSV when csv is set and NDJSON
// otherwise.
func NewRecorder(w io.Writer, interval engine.Cycle, csv bool) *Recorder {
	if w == nil {
		w = io.Discard
	}
	if interval <= 0 {
		interval = DefaultInterval
	}
	return &Recorder{w: w, interval: interval, csv: csv}
}

// OmitCSVHeader suppresses the CSV header row. The parallel runner sets it
// on every per-job Recorder and writes one header itself, so concatenating
// job streams yields a single well-formed CSV.
func (r *Recorder) OmitCSVHeader() { r.wroteHeader = true }

// Interval returns the sampling interval in cycles.
func (r *Recorder) Interval() engine.Cycle { return r.interval }

// Err returns the first write or encoding error, if any. core surfaces it as
// a run failure after the simulation completes.
func (r *Recorder) Err() error { return r.err }

// Begin resets the per-run state for a new (config, workload) run. The
// machine registers its probes after Begin and before the first Tick.
func (r *Recorder) Begin(config, workload string) {
	r.config, r.workload = config, workload
	r.seq, r.kernel = 0, 0
	r.lastCycle, r.lastEvents = 0, 0
	r.kCycle, r.kEvents = 0, 0
	r.resources = r.resources[:0]
	r.caches = r.caches[:0]
	r.state = nil
	r.sum = &Summary{Config: config, Workload: workload, gpmIdx: map[int]int{}}
}

// AddResource registers one bandwidth-limited component under a kind tag
// ("link", "xbar", "l2bank", "dram") attributed to a GPM.
func (r *Recorder) AddResource(kind string, gpm int, name string, p Probe) {
	r.resources = append(r.resources, &probeState{kind: kind, gpm: gpm, name: name, p: p})
	if kind == "link" {
		r.sum.addGPM(gpm)
	}
}

// AddCaches registers the physical slices of one cache level within one GPM;
// their counters are aggregated into a single per-sample entry.
func (r *Recorder) AddCaches(level string, gpm int, cs []CacheCounters) {
	if len(cs) == 0 {
		return
	}
	r.caches = append(r.caches, &cacheState{level: level, gpm: gpm, cs: cs})
}

// SetStateProbe registers the instantaneous-state callback.
func (r *Recorder) SetStateProbe(fn func() State) { r.state = fn }

// Tick is the engine sample hook's body: it emits a sample once at least one
// interval of simulated time has passed since the previous one. Samples land
// on event timestamps, so their spans are >= the interval, not exact
// multiples of it.
func (r *Recorder) Tick(now engine.Cycle, events uint64) {
	if now-r.lastCycle >= r.interval {
		r.emitSample(now, events)
	}
}

// KernelBoundary closes the current kernel: it flushes a partial sample (so
// no sample straddles a boundary) and emits one kernel record whose busy
// deltas and utilizations are computed over the kernel's own elapsed cycles.
// Resources are intentionally not Reset at kernel boundaries — all counters
// are cumulative across kernels — so per-kernel figures come from these
// deltas, never from dividing a cumulative counter by a kernel-local
// denominator.
func (r *Recorder) KernelBoundary(now engine.Cycle, events uint64) {
	r.emitSample(now, events)
	r.emitKernel(now, events)
	r.kernel++
	r.kCycle, r.kEvents = now, events
	for _, p := range r.resources {
		p.kBusy, p.kUnits = p.lastBusy, p.lastUnits
	}
	for _, c := range r.caches {
		c.kHits, c.kAcc = c.lastHits, c.lastAcc
	}
}

// Finish flushes the trailing partial sample of a run.
func (r *Recorder) Finish(now engine.Cycle, events uint64) {
	r.emitSample(now, events)
}

// resourceRecord is the per-resource slice of a sample or kernel record.
// Busy is the exact busy-cycle delta over the record's span; Util is
// Busy/span clamped to [0, 1] (sub-cycle rounding can overshoot 1 by less
// than half a cycle over the span; the clamp keeps the published series in
// range while Busy stays exact).
type resourceRecord struct {
	Name  string  `json:"name"`
	Kind  string  `json:"kind"`
	GPM   int     `json:"gpm"`
	Busy  float64 `json:"busy"`
	Units uint64  `json:"units"`
	Util  float64 `json:"util"`
}

// cacheRecord is the per-cache-level slice of a sample or kernel record.
type cacheRecord struct {
	Level  string `json:"level"`
	GPM    int    `json:"gpm"`
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
}

// sampleRecord is one NDJSON "sample" line: the deltas over [Start, End].
type sampleRecord struct {
	Type      string           `json:"type"`
	Config    string           `json:"config"`
	Workload  string           `json:"workload"`
	Seq       int              `json:"seq"`
	Kernel    int              `json:"kernel"`
	Start     uint64           `json:"start"`
	End       uint64           `json:"end"`
	Events    uint64           `json:"events"`
	LiveCTAs  int              `json:"liveCTAs"`
	Loads     int              `json:"loads"`
	Stores    int              `json:"stores"`
	Resources []resourceRecord `json:"resources"`
	Caches    []cacheRecord    `json:"caches"`
}

// kernelRecord is one NDJSON "kernel" line: one kernel's phase boundary,
// with deltas over the whole kernel span [Start, End].
type kernelRecord struct {
	Type      string           `json:"type"`
	Config    string           `json:"config"`
	Workload  string           `json:"workload"`
	Kernel    int              `json:"kernel"`
	Start     uint64           `json:"start"`
	End       uint64           `json:"end"`
	Events    uint64           `json:"events"`
	Resources []resourceRecord `json:"resources"`
	Caches    []cacheRecord    `json:"caches"`
}

// clampedUtil returns busy/elapsed clamped to [0, 1].
func clampedUtil(busy, elapsed float64) float64 {
	if elapsed <= 0 {
		return 0
	}
	u := busy / elapsed
	if u < 0 {
		return 0
	}
	if u > 1 {
		return 1
	}
	return u
}

func (r *Recorder) emitSample(now engine.Cycle, events uint64) {
	if r.err != nil || now <= r.lastCycle {
		return
	}
	elapsed := float64(now - r.lastCycle)
	r.encRes = r.encRes[:0]
	pt := point{start: r.lastCycle, end: now, utilOff: len(r.sum.utilBuf)}
	for range r.sum.gpms {
		r.sum.utilBuf = append(r.sum.utilBuf, 0)
	}
	for _, p := range r.resources {
		busy := p.p.BusyThrough(now)
		units := p.p.Units()
		rec := resourceRecord{
			Name:  p.name,
			Kind:  p.kind,
			GPM:   p.gpm,
			Busy:  busy - p.lastBusy,
			Units: units - p.lastUnits,
			Util:  clampedUtil(busy-p.lastBusy, elapsed),
		}
		p.lastBusy, p.lastUnits = busy, units
		r.encRes = append(r.encRes, rec)
		switch p.kind {
		case "link":
			if gi, ok := r.sum.gpmIdx[p.gpm]; ok && rec.Util > r.sum.utilBuf[pt.utilOff+gi] {
				r.sum.utilBuf[pt.utilOff+gi] = rec.Util
			}
		case "dram":
			pt.dramBytes += rec.Units
		}
	}
	r.encCache = r.encCache[:0]
	for _, c := range r.caches {
		hits, acc := c.totals()
		r.encCache = append(r.encCache, cacheRecord{
			Level:  c.level,
			GPM:    c.gpm,
			Hits:   hits - c.lastHits,
			Misses: (acc - c.lastAcc) - (hits - c.lastHits),
		})
		c.lastHits, c.lastAcc = hits, acc
	}
	var st State
	if r.state != nil {
		st = r.state()
	}
	rec := sampleRecord{
		Type:      "sample",
		Config:    r.config,
		Workload:  r.workload,
		Seq:       r.seq,
		Kernel:    r.kernel,
		Start:     uint64(r.lastCycle),
		End:       uint64(now),
		Events:    events - r.lastEvents,
		LiveCTAs:  st.LiveCTAs,
		Loads:     st.InFlightLoads,
		Stores:    st.InFlightStores,
		Resources: r.encRes,
		Caches:    r.encCache,
	}
	if r.csv {
		r.writeCSVSample(&rec)
	} else {
		r.writeJSONRecord(func(dst []byte) ([]byte, error) { return appendJSONSample(dst, &rec) })
	}
	r.sum.points = append(r.sum.points, pt)
	r.lastCycle, r.lastEvents = now, events
	r.seq++
}

func (r *Recorder) emitKernel(now engine.Cycle, events uint64) {
	if r.err != nil {
		return
	}
	elapsed := float64(now - r.kCycle)
	r.encRes = r.encRes[:0]
	for _, p := range r.resources {
		// emitSample just settled every probe through now (or nothing has
		// elapsed since it last did), so lastBusy is BusyThrough(now).
		r.encRes = append(r.encRes, resourceRecord{
			Name:  p.name,
			Kind:  p.kind,
			GPM:   p.gpm,
			Busy:  p.lastBusy - p.kBusy,
			Units: p.lastUnits - p.kUnits,
			Util:  clampedUtil(p.lastBusy-p.kBusy, elapsed),
		})
	}
	r.encCache = r.encCache[:0]
	for _, c := range r.caches {
		r.encCache = append(r.encCache, cacheRecord{
			Level:  c.level,
			GPM:    c.gpm,
			Hits:   c.lastHits - c.kHits,
			Misses: (c.lastAcc - c.kAcc) - (c.lastHits - c.kHits),
		})
	}
	rec := kernelRecord{
		Type:      "kernel",
		Config:    r.config,
		Workload:  r.workload,
		Kernel:    r.kernel,
		Start:     uint64(r.kCycle),
		End:       uint64(now),
		Events:    events - r.kEvents,
		Resources: r.encRes,
		Caches:    r.encCache,
	}
	if r.csv {
		r.writeCSVKernel(&rec)
	} else {
		r.writeJSONRecord(func(dst []byte) ([]byte, error) { return appendJSONKernel(dst, &rec) })
	}
}

// writeJSONRecord encodes one record into the reused buffer via enc and
// writes it as a single line.
func (r *Recorder) writeJSONRecord(enc func([]byte) ([]byte, error)) {
	buf, err := enc(r.buf[:0])
	r.buf = buf
	if err != nil {
		r.err = err
		return
	}
	if _, err := r.w.Write(buf); err != nil {
		r.err = err
	}
}

// CSVHeader is the header row of the CSV export's long format: one row per
// (record, resource-or-cache). Resource rows fill busy/units/util; cache
// rows fill hits/misses; kernel rows leave seq and the state columns empty.
const CSVHeader = "type,config,workload,seq,kernel,start,end,events,liveCTAs,loads,stores,kind,gpm,name,busy,units,util,hits,misses"

// header appends the single CSV header row if it has not been written yet.
func (r *Recorder) header(dst []byte) []byte {
	if !r.wroteHeader {
		dst = append(dst, CSVHeader...)
		dst = append(dst, '\n')
		r.wroteHeader = true
	}
	return dst
}

func (r *Recorder) writeCSVSample(rec *sampleRecord) {
	buf := r.header(r.buf[:0])
	// The record prefix columns, shared by every row of this sample.
	p := r.prefixScratch[:0]
	p = append(p, `sample,`...)
	p = appendCSVField(p, rec.Config)
	p = append(p, ',')
	p = appendCSVField(p, rec.Workload)
	p = append(p, ',')
	p = strconv.AppendInt(p, int64(rec.Seq), 10)
	p = append(p, ',')
	p = strconv.AppendInt(p, int64(rec.Kernel), 10)
	p = append(p, ',')
	p = strconv.AppendUint(p, rec.Start, 10)
	p = append(p, ',')
	p = strconv.AppendUint(p, rec.End, 10)
	p = append(p, ',')
	p = strconv.AppendUint(p, rec.Events, 10)
	p = append(p, ',')
	p = strconv.AppendInt(p, int64(rec.LiveCTAs), 10)
	p = append(p, ',')
	p = strconv.AppendInt(p, int64(rec.Loads), 10)
	p = append(p, ',')
	p = strconv.AppendInt(p, int64(rec.Stores), 10)
	r.prefixScratch = p
	buf = appendCSVBody(buf, p, rec.Resources, rec.Caches)
	r.buf = buf
	if _, err := r.w.Write(buf); err != nil {
		r.err = err
	}
}

func (r *Recorder) writeCSVKernel(rec *kernelRecord) {
	buf := r.header(r.buf[:0])
	p := r.prefixScratch[:0]
	p = append(p, `kernel,`...)
	p = appendCSVField(p, rec.Config)
	p = append(p, ',')
	p = appendCSVField(p, rec.Workload)
	p = append(p, ',', ',') // empty seq column
	p = strconv.AppendInt(p, int64(rec.Kernel), 10)
	p = append(p, ',')
	p = strconv.AppendUint(p, rec.Start, 10)
	p = append(p, ',')
	p = strconv.AppendUint(p, rec.End, 10)
	p = append(p, ',')
	p = strconv.AppendUint(p, rec.Events, 10)
	p = append(p, ',', ',', ',') // empty liveCTAs/loads/stores columns
	r.prefixScratch = p
	buf = appendCSVBody(buf, p, rec.Resources, rec.Caches)
	r.buf = buf
	if _, err := r.w.Write(buf); err != nil {
		r.err = err
	}
}

// point is one sample's compact summary retention: the per-GPM max link
// utilization (a window of Summary.utilBuf starting at utilOff) and the DRAM
// bytes moved over the span.
type point struct {
	start, end engine.Cycle
	utilOff    int
	dramBytes  uint64
}

// Summary retains a compact per-sample series for one run and renders the
// report tables: peak/mean/p95 link utilization per GPM and a DRAM bandwidth
// timeline.
type Summary struct {
	Config   string
	Workload string

	gpms   []int
	gpmIdx map[int]int
	points []point
	// utilBuf is the flat per-sample × per-GPM max-link-utilization store:
	// sample i's GPM g value lives at points[i].utilOff + gpmIdx[g]. One
	// growing buffer instead of one slice per sample keeps the emit path
	// allocation-free.
	utilBuf []float64
}

func (s *Summary) addGPM(gpm int) {
	if _, ok := s.gpmIdx[gpm]; ok {
		return
	}
	s.gpmIdx[gpm] = len(s.gpms)
	s.gpms = append(s.gpms, gpm)
}

// Summary returns the current run's summary series.
func (r *Recorder) Summary() *Summary { return r.sum }

// Tables renders the summary: a per-GPM link-utilization table (peak, mean,
// p95 of the per-sample max across the GPM's egress links) and a DRAM
// bandwidth timeline bucketed to at most 16 rows. Runs with no samples (or
// no inter-GPM links) contribute no corresponding table.
func (s *Summary) Tables() []*report.Table {
	var out []*report.Table
	if len(s.points) == 0 {
		return out
	}
	if len(s.gpms) > 0 {
		t := report.New(fmt.Sprintf("Link utilization by GPM — %s on %s", s.Workload, s.Config),
			"GPM", "Peak", "Mean", "P95")
		for gi, gpm := range s.gpms {
			xs := make([]float64, len(s.points))
			for i, p := range s.points {
				xs[i] = s.utilBuf[p.utilOff+gi]
			}
			p95 := stats.Quantile(stats.Sorted(xs), 0.95)
			t.AddRowF(gpm, stats.Max(xs), stats.Mean(xs), p95)
		}
		t.Note = "per-sample max across the GPM's egress links; interval utilization is clipped to [0,1]"
		out = append(out, t)
	}

	t := report.New(fmt.Sprintf("DRAM bandwidth timeline — %s on %s", s.Workload, s.Config),
		"Cycles", "GB/s")
	per := (len(s.points) + 15) / 16
	for i := 0; i < len(s.points); i += per {
		j := i + per
		if j > len(s.points) {
			j = len(s.points)
		}
		var bytes uint64
		for _, p := range s.points[i:j] {
			bytes += p.dramBytes
		}
		span := s.points[j-1].end - s.points[i].start
		rate := 0.0
		if span > 0 {
			rate = float64(bytes) / float64(span)
		}
		t.AddRowF(fmt.Sprintf("%d-%d", s.points[i].start, s.points[j-1].end), rate)
	}
	t.Note = "bytes moved at DRAM devices per cycle; 1 byte/cycle = 1 GB/s at the model's 1 GHz clock"
	out = append(out, t)
	return out
}
