package metrics

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"mcmgpu/internal/engine"
)

type fakeCache struct{ hits, acc uint64 }

func (f *fakeCache) Hits() uint64     { return f.hits }
func (f *fakeCache) Accesses() uint64 { return f.acc }

// drive runs a canned two-kernel scenario against a recorder: a link
// saturated over [0, 4096), idle until the kernel boundary at 8192, then a
// second kernel with a short burst.
func drive(rec *Recorder) (link, dram *engine.Resource, cache *fakeCache) {
	link = engine.NewResource("ring-cw-0", 1)
	dram = engine.NewResource("dram-0", 2)
	cache = &fakeCache{}
	rec.Begin("cfg", "wl")
	rec.AddResource("link", 0, link.Name(), link)
	rec.AddResource("dram", 0, dram.Name(), dram)
	rec.AddCaches("l1", 0, []CacheCounters{cache})
	rec.SetStateProbe(func() State { return State{LiveCTAs: 3, InFlightLoads: 2, InFlightStores: 1} })

	link.Reserve(0, 4096) // saturates [0, 4096)
	dram.Reserve(0, 1024) // busy [0, 512)
	cache.hits, cache.acc = 10, 40
	rec.Tick(4096, 1000)
	cache.hits, cache.acc = 30, 80
	rec.KernelBoundary(8192, 2000)
	link.Reserve(8192, 100)
	rec.Tick(8192+4096, 2500)
	rec.KernelBoundary(8192+4096, 3000)
	rec.Finish(8192+4096, 3000)
	return link, dram, cache
}

func TestRecorderNDJSON(t *testing.T) {
	var buf bytes.Buffer
	rec := NewRecorder(&buf, 4096, false)
	link, _, _ := drive(rec)
	if err := rec.Err(); err != nil {
		t.Fatal(err)
	}

	var samples, kernels []map[string]interface{}
	var busySum float64
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var m map[string]interface{}
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("unparseable NDJSON line %q: %v", line, err)
		}
		switch m["type"] {
		case "sample":
			samples = append(samples, m)
		case "kernel":
			kernels = append(kernels, m)
		default:
			t.Fatalf("unknown record type %v", m["type"])
		}
		for _, rr := range m["resources"].([]interface{}) {
			res := rr.(map[string]interface{})
			u := res["util"].(float64)
			if u < 0 || u > 1 {
				t.Fatalf("util %v out of [0,1] in %v record", u, m["type"])
			}
			if m["type"] == "sample" && res["name"] == "ring-cw-0" {
				busySum += res["busy"].(float64)
			}
		}
	}
	if len(kernels) != 2 {
		t.Fatalf("got %d kernel records, want 2", len(kernels))
	}
	if len(samples) < 3 {
		t.Fatalf("got %d samples, want >= 3", len(samples))
	}
	// Sample busy deltas must telescope to the drained total.
	if want := link.BusyCycles(); busySum != want {
		t.Fatalf("link busy deltas sum to %v, want BusyCycles %v", busySum, want)
	}
	// First sample covers the saturated phase: util 1.0 exactly.
	first := samples[0]
	if first["start"].(float64) != 0 || first["end"].(float64) != 4096 {
		t.Fatalf("first sample spans [%v,%v], want [0,4096]", first["start"], first["end"])
	}
	for _, rr := range first["resources"].([]interface{}) {
		res := rr.(map[string]interface{})
		if res["name"] == "ring-cw-0" && res["util"].(float64) != 1.0 {
			t.Fatalf("saturated link sample util = %v, want 1.0", res["util"])
		}
	}
	if first["liveCTAs"].(float64) != 3 || first["loads"].(float64) != 2 || first["stores"].(float64) != 1 {
		t.Fatalf("state fields wrong in %v", first)
	}
	// Cache deltas: the first sample saw 10 hits / 40 accesses, the second
	// (boundary flush) 20 more hits over 40 more accesses; misses are
	// per-interval accesses minus hits.
	c0 := samples[0]["caches"].([]interface{})[0].(map[string]interface{})
	if c0["hits"].(float64) != 10 || c0["misses"].(float64) != 30 {
		t.Fatalf("first cache delta = %v, want hits 10 misses 30", c0)
	}
	c1 := samples[1]["caches"].([]interface{})[0].(map[string]interface{})
	if c1["hits"].(float64) != 20 || c1["misses"].(float64) != 20 {
		t.Fatalf("second cache delta = %v, want hits 20 misses 20", c1)
	}
	// Kernel records use kernel-elapsed denominators: kernel 0 spans 8192
	// cycles with 4096 busy -> util 0.5.
	k0 := kernels[0]
	if k0["start"].(float64) != 0 || k0["end"].(float64) != 8192 {
		t.Fatalf("kernel 0 spans [%v,%v], want [0,8192]", k0["start"], k0["end"])
	}
	for _, rr := range k0["resources"].([]interface{}) {
		res := rr.(map[string]interface{})
		if res["name"] == "ring-cw-0" && res["util"].(float64) != 0.5 {
			t.Fatalf("kernel 0 link util = %v, want 0.5", res["util"])
		}
	}
}

func TestRecorderCSV(t *testing.T) {
	var buf bytes.Buffer
	rec := NewRecorder(&buf, 4096, true)
	drive(rec)
	if err := rec.Err(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != CSVHeader {
		t.Fatalf("first line = %q, want the CSV header", lines[0])
	}
	nCols := len(strings.Split(CSVHeader, ","))
	for i, l := range lines[1:] {
		if got := len(strings.Split(l, ",")); got != nCols {
			t.Fatalf("row %d has %d columns, want %d: %q", i+1, got, nCols, l)
		}
	}
	// A second run on the same recorder must not repeat the header.
	before := strings.Count(buf.String(), CSVHeader)
	drive(rec)
	if after := strings.Count(buf.String(), CSVHeader); after != before {
		t.Fatalf("header repeated on the second run: %d -> %d", before, after)
	}
}

func TestOmitCSVHeader(t *testing.T) {
	var buf bytes.Buffer
	rec := NewRecorder(&buf, 4096, true)
	rec.OmitCSVHeader()
	drive(rec)
	if strings.Contains(buf.String(), "type,config") {
		t.Fatal("OmitCSVHeader still wrote a header")
	}
}

func TestSummaryTables(t *testing.T) {
	rec := NewRecorder(nil, 4096, false)
	drive(rec)
	tables := rec.Summary().Tables()
	if len(tables) != 2 {
		t.Fatalf("got %d summary tables, want 2 (link util + DRAM timeline)", len(tables))
	}
	lu := tables[0]
	if len(lu.Rows) != 1 {
		t.Fatalf("link util table has %d rows, want 1 GPM", len(lu.Rows))
	}
	// Peak per-sample link util is the saturated first interval: 1.000.
	if lu.Rows[0][1] != "1.000" {
		t.Fatalf("peak link util cell = %q, want 1.000", lu.Rows[0][1])
	}
	if len(tables[1].Rows) == 0 {
		t.Fatal("DRAM timeline is empty")
	}
}

func TestRecorderNilWriter(t *testing.T) {
	rec := NewRecorder(nil, 0, false)
	if rec.Interval() != DefaultInterval {
		t.Fatalf("default interval = %d, want %d", rec.Interval(), DefaultInterval)
	}
	drive(rec) // must not panic
	if err := rec.Err(); err != nil {
		t.Fatal(err)
	}
}
