package cta

import (
	"testing"
	"testing/quick"

	"mcmgpu/internal/config"
)

func TestCentralizedGlobalOrder(t *testing.T) {
	s := NewCentralized(8)
	var got []int
	// SMs from alternating modules pull CTAs; indices must be global order.
	for m := 0; s.Remaining() > 0; m = (m + 1) % 4 {
		got = append(got, s.Next(m))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("centralized order %v, want consecutive", got)
		}
	}
	if s.Next(0) != -1 {
		t.Fatalf("exhausted scheduler returned a CTA")
	}
}

func TestCentralizedSpreadsConsecutiveCTAs(t *testing.T) {
	// Figure 8a: with round-robin pulls, consecutive CTAs land on
	// different modules.
	s := NewCentralized(8)
	mods := map[int]int{}
	for m := 0; m < 8; m++ {
		cta := s.Next(m % 4)
		mods[cta] = m % 4
	}
	if mods[0] == mods[1] && mods[1] == mods[2] && mods[2] == mods[3] {
		t.Fatalf("consecutive CTAs all on one module under centralized pulls")
	}
}

func TestDistributedContiguousChunks(t *testing.T) {
	// Figure 8b: 16 CTAs over 4 modules -> module m gets [4m, 4m+4).
	s := NewDistributed(16, 4, 1)
	for m := 0; m < 4; m++ {
		for k := 0; k < 4; k++ {
			want := 4*m + k
			if got := s.Next(m); got != want {
				t.Fatalf("module %d draw %d = %d, want %d", m, k, got, want)
			}
		}
		if got := s.Next(m); got != -1 {
			t.Fatalf("module %d overdrew: %d", m, got)
		}
	}
	if s.Remaining() != 0 {
		t.Fatalf("Remaining = %d, want 0", s.Remaining())
	}
}

func TestDistributedNoStealing(t *testing.T) {
	// A module that finishes early idles rather than stealing: the paper's
	// coarse-grain imbalance.
	s := NewDistributed(8, 2, 1)
	for i := 0; i < 4; i++ {
		s.Next(0)
	}
	if got := s.Next(0); got != -1 {
		t.Fatalf("module 0 stole CTA %d from module 1", got)
	}
	if got := s.Next(1); got != 4 {
		t.Fatalf("module 1's chunk disturbed: got %d, want 4", got)
	}
}

func TestDistributedUnevenSplit(t *testing.T) {
	// 10 CTAs over 4 modules: chunk sizes 3,3,2,2 and full coverage.
	s := NewDistributed(10, 4, 1)
	seen := map[int]bool{}
	count := 0
	for m := 0; m < 4; m++ {
		for {
			i := s.Next(m)
			if i == -1 {
				break
			}
			if seen[i] {
				t.Fatalf("CTA %d issued twice", i)
			}
			seen[i] = true
			count++
		}
	}
	if count != 10 {
		t.Fatalf("issued %d CTAs, want 10", count)
	}
}

func TestDistributedFinerChunks(t *testing.T) {
	// 2 chunks per module over 16 CTAs and 2 modules:
	// module 0 gets [0,4) and [8,12); module 1 gets [4,8) and [12,16).
	s := NewDistributed(16, 2, 2)
	var m0 []int
	for {
		i := s.Next(0)
		if i == -1 {
			break
		}
		m0 = append(m0, i)
	}
	want := []int{0, 1, 2, 3, 8, 9, 10, 11}
	if len(m0) != len(want) {
		t.Fatalf("module 0 drew %v, want %v", m0, want)
	}
	for i := range want {
		if m0[i] != want[i] {
			t.Fatalf("module 0 drew %v, want %v", m0, want)
		}
	}
}

func TestModuleLookup(t *testing.T) {
	s := NewDistributed(16, 4, 1)
	for i := 0; i < 16; i++ {
		if got, want := s.Module(i), i/4; got != want {
			t.Fatalf("Module(%d) = %d, want %d", i, got, want)
		}
	}
	if s.Module(99) != -1 {
		t.Fatalf("Module out of range did not return -1")
	}
}

func TestNewFromConfig(t *testing.T) {
	c := config.BaselineMCM()
	if _, ok := New(c, Grid1D(100)).(*Centralized); !ok {
		t.Fatalf("baseline config did not produce a centralized scheduler")
	}
	c.Scheduler = config.SchedDistributed
	if _, ok := New(c, Grid1D(100)).(*Distributed); !ok {
		t.Fatalf("distributed config did not produce a distributed scheduler")
	}
}

func TestBadShapesPanic(t *testing.T) {
	for _, f := range []func(){
		func() { NewCentralized(0) },
		func() { NewDistributed(0, 4, 1) },
		func() { NewDistributed(8, 0, 1) },
		func() { NewDistributed(8, 4, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("bad shape did not panic")
				}
			}()
			f()
		}()
	}
}

// Property: a distributed scheduler issues every CTA exactly once, chunk
// assignment and Next agree, and Remaining counts down correctly.
func TestDistributedCompleteProperty(t *testing.T) {
	f := func(nRaw uint16, modRaw, chunkRaw uint8) bool {
		n := int(nRaw)%2000 + 1
		modules := int(modRaw)%8 + 1
		chunks := int(chunkRaw)%4 + 1
		s := NewDistributed(n, modules, chunks)
		issued := make([]bool, n)
		count := 0
		for m := 0; m < modules; m++ {
			for {
				i := s.Next(m)
				if i == -1 {
					break
				}
				if i < 0 || i >= n || issued[i] {
					return false
				}
				if s.Module(i) != m {
					return false
				}
				issued[i] = true
				count++
			}
		}
		return count == n && s.Remaining() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDynamicStealsFromBusiestModule(t *testing.T) {
	// Module 0 drains its chunk of 8, then steals the tail half of module
	// 1's untouched chunk.
	d := NewDistributed(16, 2, 1)
	y := NewDynamic(d)
	for i := 0; i < 8; i++ {
		if got := y.Next(0); got != i {
			t.Fatalf("own chunk draw %d = %d", i, got)
		}
	}
	first := y.Next(0)
	if first != 12 {
		t.Fatalf("first stolen CTA = %d, want 12 (tail half of [8,16))", first)
	}
	if y.Steals() != 1 {
		t.Fatalf("Steals = %d, want 1", y.Steals())
	}
	// The thief drains its stolen range contiguously.
	for want := 13; want < 16; want++ {
		if got := y.Next(0); got != want {
			t.Fatalf("stolen draw = %d, want %d", got, want)
		}
	}
	// The victim keeps its contiguous head.
	for want := 8; want < 12; want++ {
		if got := y.Next(1); got != want {
			t.Fatalf("victim draw = %d, want %d", got, want)
		}
	}
	if y.Next(0) != -1 || y.Next(1) != -1 || y.Remaining() != 0 {
		t.Fatalf("scheduler not drained cleanly")
	}
}

func TestDynamicIssuesEveryCTAOnce(t *testing.T) {
	y := NewDynamic(NewDistributed(101, 4, 2))
	issued := make([]bool, 101)
	count := 0
	// Interleave draws so stealing happens mid-flight.
	for rounds := 0; rounds < 1000 && count < 101; rounds++ {
		for m := 0; m < 4; m++ {
			// Module 3 draws 3x as fast to force imbalance.
			draws := 1
			if m == 3 {
				draws = 3
			}
			for k := 0; k < draws; k++ {
				i := y.Next(m)
				if i == -1 {
					continue
				}
				if i < 0 || i >= 101 || issued[i] {
					t.Fatalf("CTA %d issued twice or out of range", i)
				}
				issued[i] = true
				count++
			}
		}
	}
	if count != 101 {
		t.Fatalf("issued %d CTAs, want 101", count)
	}
	if y.Remaining() != 0 {
		t.Fatalf("Remaining = %d", y.Remaining())
	}
	if y.Steals() == 0 {
		t.Fatalf("unbalanced draws caused no steals")
	}
}

func TestNewDynamicFromConfig(t *testing.T) {
	c := config.BaselineMCM()
	c.Scheduler = config.SchedDynamic
	if _, ok := New(c, Grid1D(100)).(*Dynamic); !ok {
		t.Fatalf("dynamic config did not produce a dynamic scheduler")
	}
}
