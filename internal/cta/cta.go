// Package cta implements the two CTA scheduling policies of Section 5.2:
// the baseline centralized scheduler, which hands consecutive CTA indices to
// whichever SM frees up first anywhere on the machine, and the distributed
// scheduler, which statically divides the CTA index space into contiguous
// chunks, one per module, so that neighboring CTAs — and therefore the data
// they share — stay within a GPM.
package cta

import (
	"fmt"

	"mcmgpu/internal/config"
)

// Scheduler dispenses CTA indices to modules. Implementations are not safe
// for concurrent use; the simulation is single threaded.
type Scheduler interface {
	// Next returns the next CTA index to launch on an SM of the given
	// module, or -1 if no CTA is available for it.
	Next(module int) int
	// Remaining returns the number of CTAs not yet handed out.
	Remaining() int
}

// New builds the scheduler selected by cfg for a kernel with numCTAs CTAs.
func New(cfg *config.Config, numCTAs int) Scheduler {
	switch cfg.Scheduler {
	case config.SchedCentralized:
		return NewCentralized(numCTAs)
	case config.SchedDistributed, config.SchedDynamic:
		chunks := cfg.CTAChunksPerModule
		if chunks <= 0 {
			chunks = 1
		}
		d := NewDistributed(numCTAs, cfg.Modules, chunks)
		if cfg.Scheduler == config.SchedDynamic {
			return NewDynamic(d)
		}
		return d
	}
	panic(fmt.Sprintf("cta: unknown scheduler %v", cfg.Scheduler))
}

// Centralized is the baseline policy: one global cursor over the CTA index
// space. Because SMs from every module pull from the same cursor as they
// drain, consecutive CTAs land on different GPMs (Figure 8a).
type Centralized struct {
	next int
	n    int
}

// NewCentralized returns a centralized scheduler over numCTAs CTAs.
func NewCentralized(numCTAs int) *Centralized {
	if numCTAs <= 0 {
		panic(fmt.Sprintf("cta: numCTAs = %d", numCTAs))
	}
	return &Centralized{n: numCTAs}
}

// Next implements Scheduler; the module argument is ignored.
func (c *Centralized) Next(module int) int {
	if c.next >= c.n {
		return -1
	}
	i := c.next
	c.next++
	return i
}

// Remaining implements Scheduler.
func (c *Centralized) Remaining() int { return c.n - c.next }

// chunk is a contiguous CTA index range [start, end) owned by one module.
type chunk struct {
	start, end int
	module     int
}

// Distributed divides the CTA index space into modules*chunksPerModule
// contiguous chunks assigned round-robin to modules (chunksPerModule == 1
// reproduces the paper's equal split, Figure 8b). Each module draws only
// from its own chunks; when a module's share is exhausted its SMs idle,
// which reproduces the coarse-grain load imbalance the paper observes for
// irregular applications.
type Distributed struct {
	n      int
	layout []chunk // static chunk layout, in CTA index order
	// cursor[m] indexes into perModule[m]; next[m][k] is the next unissued
	// CTA of that module's k-th chunk.
	perModule [][]int // chunk indices owned by each module
	next      []int   // next CTA index within chunk i of layout
	left      int
}

// NewDistributed returns a distributed scheduler over numCTAs CTAs for the
// given module count and chunk granularity.
func NewDistributed(numCTAs, modules, chunksPerModule int) *Distributed {
	if numCTAs <= 0 || modules <= 0 || chunksPerModule <= 0 {
		panic(fmt.Sprintf("cta: bad distributed scheduler shape n=%d modules=%d chunks=%d",
			numCTAs, modules, chunksPerModule))
	}
	d := &Distributed{
		n:         numCTAs,
		perModule: make([][]int, modules),
		left:      numCTAs,
	}
	totalChunks := modules * chunksPerModule
	base := numCTAs / totalChunks
	rem := numCTAs % totalChunks
	start := 0
	for ci := 0; ci < totalChunks; ci++ {
		size := base
		if ci < rem {
			size++
		}
		if size == 0 {
			continue
		}
		m := ci % modules
		idx := len(d.layout)
		d.layout = append(d.layout, chunk{start: start, end: start + size, module: m})
		d.next = append(d.next, start)
		d.perModule[m] = append(d.perModule[m], idx)
		start += size
	}
	return d
}

// Next implements Scheduler.
func (d *Distributed) Next(module int) int {
	for _, ci := range d.perModule[module] {
		if d.next[ci] < d.layout[ci].end {
			i := d.next[ci]
			d.next[ci]++
			d.left--
			return i
		}
	}
	return -1
}

// Remaining implements Scheduler.
func (d *Distributed) Remaining() int { return d.left }

// Module returns which module the layout assigns CTA i to, or -1 if i is
// out of range.
func (d *Distributed) Module(i int) int {
	for _, c := range d.layout {
		if i >= c.start && i < c.end {
			return c.module
		}
	}
	return -1
}

// Dynamic wraps a Distributed scheduler with tail stealing: when a module's
// own chunks drain, it takes the trailing half of the remaining range of
// the module with the most CTAs left. Contiguity is preserved on both sides
// of the split — the victim keeps its head, the thief gets a contiguous
// tail — so the locality that distributed scheduling buys survives while
// the coarse-grain imbalance the paper observes (Section 5.4) shrinks.
type Dynamic struct {
	d *Distributed
	// stolen[m] holds ranges module m has acquired by stealing.
	stolen [][][2]int
	// steals counts successful steals, for tests and reporting.
	steals int
}

// NewDynamic wraps an existing distributed layout with stealing.
func NewDynamic(d *Distributed) *Dynamic {
	return &Dynamic{d: d, stolen: make([][][2]int, len(d.perModule))}
}

// Next implements Scheduler.
func (y *Dynamic) Next(module int) int {
	if i := y.d.Next(module); i >= 0 {
		return i
	}
	// Drain previously stolen ranges.
	rs := y.stolen[module]
	for len(rs) > 0 {
		r := &rs[0]
		if r[0] < r[1] {
			i := r[0]
			r[0]++
			y.d.left--
			return i
		}
		rs = rs[1:]
		y.stolen[module] = rs
	}
	// Steal the tail half of the busiest module's largest open chunk.
	vi, remain := -1, 1 // require at least 2 remaining to split
	for ci := range y.d.layout {
		if r := y.d.layout[ci].end - y.d.next[ci]; r > remain {
			vi, remain = ci, r
		}
	}
	if vi < 0 {
		return -1
	}
	mid := y.d.next[vi] + remain/2
	start, end := mid, y.d.layout[vi].end
	y.d.layout[vi].end = mid
	y.steals++
	if start >= end {
		return -1
	}
	y.stolen[module] = append(y.stolen[module], [2]int{start + 1, end})
	y.d.left--
	return start
}

// Remaining implements Scheduler.
func (y *Dynamic) Remaining() int { return y.d.Remaining() }

// Steals returns the number of successful steals.
func (y *Dynamic) Steals() int { return y.steals }
