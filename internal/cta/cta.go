// Package cta implements the CTA scheduling policies of Section 5.2: the
// baseline centralized scheduler, which hands consecutive CTA indices to
// whichever SM frees up first anywhere on the machine, and the distributed
// scheduler, which statically divides the CTA index space into contiguous
// chunks, one per module, so that neighboring CTAs — and therefore the data
// they share — stay within a GPM. Two extensions round the family out: a
// work-stealing variant of the distributed scheduler (the dynamic group
// sizing the paper leaves as future work, Section 5.4) and a tiled 2-D
// scheduler that maps super-tiles of a 2-D CTA grid to modules so that both
// row and column reuse neighbors stay local, which 1-D contiguous chunking
// cannot provide.
package cta

import (
	"fmt"

	"mcmgpu/internal/config"
)

// Scheduler dispenses CTA indices to modules. Implementations are not safe
// for concurrent use; the simulation is single threaded.
type Scheduler interface {
	// Next returns the next CTA index to launch on an SM of the given
	// module, or -1 if no CTA is available for it.
	Next(module int) int
	// Remaining returns the number of CTAs not yet handed out.
	Remaining() int
}

// Layout is implemented by schedulers that maintain a total CTA-to-module
// ownership map. Region-aware page placement and locality reporting both
// consult it, so Module must stay correct even as scheduling mutates
// internal state (e.g. work stealing).
type Layout interface {
	// Module returns the module that issued or will issue CTA i, or -1 if
	// i is out of range.
	Module(i int) int
}

// Grid describes the shape of a kernel's CTA index space. W and H give the
// 2-D grid dimensions for workloads with 2-D reuse structure (CTA i sits at
// x = i%W, y = i/W); both zero means a flat 1-D index space. RowPanelLines
// and ColPanelLines carry the sizes of the per-row and per-column reuse
// panels so the tiled scheduler can choose a super-tile aspect ratio that
// minimizes the distinct panel data each module must fetch.
type Grid struct {
	CTAs          int
	W, H          int
	RowPanelLines uint64
	ColPanelLines uint64
}

// Grid1D returns the flat index-space grid for a kernel with n CTAs.
func Grid1D(n int) Grid { return Grid{CTAs: n} }

// normalize fills in the 1-D defaults and checks consistency.
func (g Grid) normalize() Grid {
	if g.W <= 0 || g.H <= 0 {
		g.W, g.H = g.CTAs, 1
	}
	if g.CTAs == 0 {
		g.CTAs = g.W * g.H
	}
	if g.CTAs <= 0 || g.W*g.H != g.CTAs {
		panic(fmt.Sprintf("cta: bad grid %dx%d for %d CTAs", g.W, g.H, g.CTAs))
	}
	return g
}

// New builds the scheduler selected by cfg for a kernel over the given CTA
// grid.
func New(cfg *config.Config, grid Grid) Scheduler {
	grid = grid.normalize()
	switch cfg.Scheduler {
	case config.SchedCentralized:
		return NewCentralized(grid.CTAs)
	case config.SchedDistributed, config.SchedDynamic:
		chunks := cfg.CTAChunksPerModule
		if chunks <= 0 {
			chunks = 1
		}
		d := NewDistributed(grid.CTAs, cfg.Modules, chunks)
		if cfg.Scheduler == config.SchedDynamic {
			return NewDynamic(d)
		}
		return d
	case config.SchedTiled2D:
		return NewTiled2D(grid, cfg.Modules)
	}
	panic(fmt.Sprintf("cta: unknown scheduler %v", cfg.Scheduler))
}

// Centralized is the baseline policy: one global cursor over the CTA index
// space. Because SMs from every module pull from the same cursor as they
// drain, consecutive CTAs land on different GPMs (Figure 8a).
type Centralized struct {
	next int
	n    int
}

// NewCentralized returns a centralized scheduler over numCTAs CTAs.
func NewCentralized(numCTAs int) *Centralized {
	if numCTAs <= 0 {
		panic(fmt.Sprintf("cta: numCTAs = %d", numCTAs))
	}
	return &Centralized{n: numCTAs}
}

// Next implements Scheduler; the module argument is ignored.
func (c *Centralized) Next(module int) int {
	if c.next >= c.n {
		return -1
	}
	i := c.next
	c.next++
	return i
}

// Remaining implements Scheduler.
func (c *Centralized) Remaining() int { return c.n - c.next }

// chunk is a contiguous CTA index range [start, end) owned by one module.
type chunk struct {
	start, end int
	module     int
}

// Distributed divides the CTA index space into modules*chunksPerModule
// contiguous chunks assigned round-robin to modules (chunksPerModule == 1
// reproduces the paper's equal split, Figure 8b). Each module draws only
// from its own chunks; when a module's share is exhausted its SMs idle,
// which reproduces the coarse-grain load imbalance the paper observes for
// irregular applications.
type Distributed struct {
	n      int
	layout []chunk // static chunk layout, in CTA index order
	// cursor[m] indexes into perModule[m]; next[m][k] is the next unissued
	// CTA of that module's k-th chunk.
	perModule [][]int // chunk indices owned by each module
	next      []int   // next CTA index within chunk i of layout
	left      int
}

// NewDistributed returns a distributed scheduler over numCTAs CTAs for the
// given module count and chunk granularity.
func NewDistributed(numCTAs, modules, chunksPerModule int) *Distributed {
	if numCTAs <= 0 || modules <= 0 || chunksPerModule <= 0 {
		panic(fmt.Sprintf("cta: bad distributed scheduler shape n=%d modules=%d chunks=%d",
			numCTAs, modules, chunksPerModule))
	}
	d := &Distributed{
		n:         numCTAs,
		perModule: make([][]int, modules),
		left:      numCTAs,
	}
	totalChunks := modules * chunksPerModule
	base := numCTAs / totalChunks
	rem := numCTAs % totalChunks
	start := 0
	for ci := 0; ci < totalChunks; ci++ {
		size := base
		if ci < rem {
			size++
		}
		if size == 0 {
			continue
		}
		m := ci % modules
		idx := len(d.layout)
		d.layout = append(d.layout, chunk{start: start, end: start + size, module: m})
		d.next = append(d.next, start)
		d.perModule[m] = append(d.perModule[m], idx)
		start += size
	}
	return d
}

// Next implements Scheduler.
func (d *Distributed) Next(module int) int {
	for _, ci := range d.perModule[module] {
		if d.next[ci] < d.layout[ci].end {
			i := d.next[ci]
			d.next[ci]++
			d.left--
			return i
		}
	}
	return -1
}

// Remaining implements Scheduler.
func (d *Distributed) Remaining() int { return d.left }

// Module implements Layout over the static chunk assignment.
func (d *Distributed) Module(i int) int {
	for _, c := range d.layout {
		if i >= c.start && i < c.end {
			return c.module
		}
	}
	return -1
}

// Dynamic wraps a Distributed scheduler with tail stealing: when a module's
// own chunks drain, it takes the trailing half of the remaining range of
// the module with the most CTAs left. Contiguity is preserved on both sides
// of the split — the victim keeps its head, the thief gets a contiguous
// tail — so the locality that distributed scheduling buys survives while
// the coarse-grain imbalance the paper observes (Section 5.4) shrinks.
type Dynamic struct {
	d *Distributed
	// stolen[m] holds ranges module m has acquired by stealing.
	stolen [][][2]int
	// owned logs every stolen range with its new owner. Steals shrink the
	// underlying layout (and earlier stolen ranges), so without this log
	// stolen CTA indices would fall in no chunk and Module would report -1
	// — or, for a range stolen twice, the first thief. Lookups scan
	// backward so the most recent steal wins.
	owned []chunk
	// steals counts successful steals, for tests and reporting.
	steals int
}

// NewDynamic wraps an existing distributed layout with stealing.
func NewDynamic(d *Distributed) *Dynamic {
	return &Dynamic{d: d, stolen: make([][][2]int, len(d.perModule))}
}

// Next implements Scheduler.
func (y *Dynamic) Next(module int) int {
	if i := y.d.Next(module); i >= 0 {
		return i
	}
	// Drain previously stolen ranges.
	rs := y.stolen[module]
	for len(rs) > 0 {
		r := &rs[0]
		if r[0] < r[1] {
			i := r[0]
			r[0]++
			y.d.left--
			return i
		}
		rs = rs[1:]
		y.stolen[module] = rs
	}
	// Steal the tail half of the busiest remaining range. Ranges another
	// module has already stolen are candidates too: without them a module
	// that drains late would stall while work sits queued on other
	// modules' stolen lists.
	vi, vm, remain := -1, -1, 1 // require at least 2 remaining to split
	for ci := range y.d.layout {
		if r := y.d.layout[ci].end - y.d.next[ci]; r > remain {
			vi, vm, remain = ci, -1, r
		}
	}
	for m := range y.stolen {
		if m == module {
			continue
		}
		for ri := range y.stolen[m] {
			if r := y.stolen[m][ri][1] - y.stolen[m][ri][0]; r > remain {
				vi, vm, remain = ri, m, r
			}
		}
	}
	if vi < 0 {
		return -1
	}
	var start, end int
	if vm < 0 {
		mid := y.d.next[vi] + remain/2
		start, end = mid, y.d.layout[vi].end
		y.d.layout[vi].end = mid
	} else {
		r := &y.stolen[vm][vi]
		mid := r[0] + remain/2
		start, end = mid, r[1]
		r[1] = mid
	}
	y.steals++
	y.owned = append(y.owned, chunk{start: start, end: end, module: module})
	y.stolen[module] = append(y.stolen[module], [2]int{start + 1, end})
	y.d.left--
	return start
}

// Remaining implements Scheduler.
func (y *Dynamic) Remaining() int { return y.d.Remaining() }

// Module implements Layout: the most recent steal covering i wins,
// otherwise the static layout's owner stands.
func (y *Dynamic) Module(i int) int {
	for k := len(y.owned) - 1; k >= 0; k-- {
		if c := y.owned[k]; i >= c.start && i < c.end {
			return c.module
		}
	}
	return y.d.Module(i)
}

// Steals returns the number of successful steals.
func (y *Dynamic) Steals() int { return y.steals }

// Tiled2D statically maps 2-D super-tiles of the CTA grid to modules. The
// module count is factored into an mw x mh super-tile grid chosen to
// minimize the distinct panel lines each module must fetch — the
// communication-minimizing partition for tiled GEMM — so a CTA's row
// neighbors (i±1, j) and column neighbors (i, j±1) both stay on its GPM at
// super-tile scale. On a 1-D grid (or one with no panel structure) the
// factorization degenerates to contiguous chunks along the wider axis,
// matching the distributed scheduler.
type Tiled2D struct {
	w, h   int
	mw, mh int
	cur    []int // per-module linear cursor within its super-tile
	left   int
}

// NewTiled2D returns a tiled scheduler over the grid for the given module
// count.
func NewTiled2D(g Grid, modules int) *Tiled2D {
	g = g.normalize()
	if modules <= 0 {
		panic(fmt.Sprintf("cta: modules = %d", modules))
	}
	mw, mh := tileFactor(g, modules)
	return &Tiled2D{w: g.W, h: g.H, mw: mw, mh: mh, cur: make([]int, modules), left: g.CTAs}
}

// TileFactor returns the super-tile factorization (mw, mh) a tiled
// scheduler over the grid uses: the analytic estimator mirrors it so both
// models split panels identically.
func TileFactor(g Grid, modules int) (mw, mh int) {
	return tileFactor(g.normalize(), modules)
}

// tileFactor picks the divisor pair (mw, mh) with mw*mh == modules that
// minimizes the distinct panel lines one super-tile touches:
// (H/mh)*RowPanelLines + (W/mw)*ColPanelLines. With no panels every pair
// ties and the wider axis is split, reproducing 1-D contiguous chunking.
func tileFactor(g Grid, modules int) (mw, mh int) {
	mw, mh = modules, 1
	if g.H > g.W {
		mw, mh = 1, modules
	}
	best := tileCost(g, mw, mh)
	for h := 1; h <= modules; h++ {
		if modules%h != 0 {
			continue
		}
		w := modules / h
		if c := tileCost(g, w, h); c < best {
			mw, mh, best = w, h, c
		}
	}
	return mw, mh
}

func tileCost(g Grid, mw, mh int) float64 {
	return float64(g.H)/float64(mh)*float64(g.RowPanelLines) +
		float64(g.W)/float64(mw)*float64(g.ColPanelLines)
}

// bounds returns module m's super-tile [x0,x1) x [y0,y1).
func (t *Tiled2D) bounds(m int) (x0, x1, y0, y1 int) {
	sc, sr := m%t.mw, m/t.mw
	return sc * t.w / t.mw, (sc + 1) * t.w / t.mw,
		sr * t.h / t.mh, (sr + 1) * t.h / t.mh
}

// Next implements Scheduler: each module walks its own super-tile in
// row-major order and idles when it drains, like Distributed.
func (t *Tiled2D) Next(module int) int {
	x0, x1, y0, y1 := t.bounds(module)
	tw := x1 - x0
	if c := t.cur[module]; tw > 0 && c < tw*(y1-y0) {
		t.cur[module]++
		t.left--
		return (y0+c/tw)*t.w + x0 + c%tw
	}
	return -1
}

// Remaining implements Scheduler.
func (t *Tiled2D) Remaining() int { return t.left }

// Module implements Layout.
func (t *Tiled2D) Module(i int) int {
	if i < 0 || i >= t.w*t.h {
		return -1
	}
	x, y := i%t.w, i/t.w
	for m := range t.cur {
		x0, x1, y0, y1 := t.bounds(m)
		if x >= x0 && x < x1 && y >= y0 && y < y1 {
			return m
		}
	}
	return -1
}
