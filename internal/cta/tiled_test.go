package cta

import (
	"testing"
	"testing/quick"

	"mcmgpu/internal/config"
)

func drainAll(t *testing.T, s Scheduler, modules, n int) []int {
	t.Helper()
	owner := make([]int, n)
	for i := range owner {
		owner[i] = -1
	}
	count := 0
	for progress := true; progress; {
		progress = false
		for m := 0; m < modules; m++ {
			for {
				i := s.Next(m)
				if i == -1 {
					break
				}
				if i < 0 || i >= n || owner[i] != -1 {
					t.Fatalf("CTA %d issued twice or out of range", i)
				}
				owner[i] = m
				count++
				progress = true
			}
		}
	}
	if count != n || s.Remaining() != 0 {
		t.Fatalf("issued %d of %d CTAs, Remaining = %d", count, n, s.Remaining())
	}
	return owner
}

func TestTiled2DSquareFactorization(t *testing.T) {
	// 4 modules over a 4x4 grid with symmetric panels factor as 2x2
	// super-tiles: module 0 owns x<2,y<2, module 1 x>=2,y<2, and so on.
	g := Grid{W: 4, H: 4, RowPanelLines: 100, ColPanelLines: 100}
	s := NewTiled2D(g, 4)
	owner := drainAll(t, s, 4, 16)
	for i, m := range owner {
		x, y := i%4, i/4
		want := (y/2)*2 + x/2
		if m != want {
			t.Fatalf("CTA (%d,%d) issued by module %d, want %d", x, y, m, want)
		}
		if got := s.Module(i); got != want {
			t.Fatalf("Module(%d) = %d, want %d", i, got, want)
		}
	}
}

func TestTiled2DColumnPanelsSplitAlongColumns(t *testing.T) {
	// With only column panels (attention heads), the factorization puts
	// all modules along the x axis so every panel's consumers share one
	// module.
	g := Grid{W: 8, H: 4, ColPanelLines: 100}
	s := NewTiled2D(g, 4)
	owner := drainAll(t, s, 4, 32)
	for i, m := range owner {
		x := i % 8
		if want := x / 2; m != want {
			t.Fatalf("CTA %d (head %d) issued by module %d, want %d", i, x, m, want)
		}
	}
}

func TestTiled2DDegeneratesTo1DChunks(t *testing.T) {
	// A flat grid with no panel structure splits into contiguous chunks
	// along the index space, like the distributed scheduler.
	s := NewTiled2D(Grid1D(16), 4)
	owner := drainAll(t, s, 4, 16)
	for i, m := range owner {
		if want := i / 4; m != want {
			t.Fatalf("CTA %d issued by module %d, want %d", i, m, want)
		}
	}
}

func TestTiled2DModuleTotalOverGrid(t *testing.T) {
	g := Grid{W: 7, H: 5, RowPanelLines: 64, ColPanelLines: 32}
	s := NewTiled2D(g, 6)
	for i := 0; i < 35; i++ {
		if m := s.Module(i); m < 0 || m >= 6 {
			t.Fatalf("Module(%d) = %d, out of range", i, m)
		}
	}
	if s.Module(-1) != -1 || s.Module(35) != -1 {
		t.Fatalf("out-of-range CTA index did not return -1")
	}
}

func TestNewTiled2DFromConfig(t *testing.T) {
	c := config.BaselineMCM()
	c.Scheduler = config.SchedTiled2D
	if _, ok := New(c, Grid{W: 10, H: 10}).(*Tiled2D); !ok {
		t.Fatalf("tiled2d config did not produce a tiled scheduler")
	}
}

func TestDynamicModuleTracksSteals(t *testing.T) {
	// Module 0 drains its chunk of [0,8) and steals [12,16) from module 1.
	// Module must report the thief for stolen indices and the victim for
	// the range it kept — the pre-fix code reported -1 for the former.
	d := NewDistributed(16, 2, 1)
	y := NewDynamic(d)
	for i := 0; i < 8; i++ {
		y.Next(0)
	}
	if got := y.Next(0); got != 12 {
		t.Fatalf("first stolen CTA = %d, want 12", got)
	}
	for i := 0; i < 8; i++ {
		if got := y.Module(i); got != 0 {
			t.Fatalf("Module(%d) = %d, want 0", i, got)
		}
	}
	for i := 8; i < 12; i++ {
		if got := y.Module(i); got != 1 {
			t.Fatalf("Module(%d) = %d, want victim 1", i, got)
		}
	}
	for i := 12; i < 16; i++ {
		if got := y.Module(i); got != 0 {
			t.Fatalf("Module(%d) = %d, want thief 0", i, got)
		}
	}
}

func TestDynamicStealsFromStolenRanges(t *testing.T) {
	// Module 0 drains its chunk [0,20) and steals [30,40) from module 1.
	// Module 1 then drains what it kept; its next draw must re-steal from
	// module 0's stolen list instead of idling while work remains — the
	// pre-fix scan only inspected the static layout.
	y := NewDynamic(NewDistributed(40, 2, 1))
	for i := 0; i < 20; i++ {
		y.Next(0)
	}
	if got := y.Next(0); got != 30 {
		t.Fatalf("module 0 stole %d, want 30", got)
	}
	for i := 0; i < 10; i++ {
		if got, want := y.Next(1), 20+i; got != want {
			t.Fatalf("victim draw = %d, want %d", got, want)
		}
	}
	got := y.Next(1)
	if got == -1 {
		t.Fatalf("module 1 starved while module 0 holds stolen work")
	}
	if got != 35 {
		t.Fatalf("module 1 re-stole %d, want 35 (tail half of [31,40))", got)
	}
	for i := 35; i < 40; i++ {
		if m := y.Module(i); m != 1 {
			t.Fatalf("Module(%d) = %d, want re-thief 1", i, m)
		}
	}
	// Full drain with no CTA lost or duplicated.
	seen := map[int]bool{30: true, 35: true}
	for i := 0; i < 30; i++ {
		seen[i] = true
	}
	for m := 0; m < 2; m++ {
		for {
			i := y.Next(m)
			if i == -1 {
				break
			}
			if seen[i] {
				t.Fatalf("CTA %d issued twice", i)
			}
			seen[i] = true
		}
	}
	if len(seen) != 40 || y.Remaining() != 0 {
		t.Fatalf("drained %d of 40, Remaining = %d", len(seen), y.Remaining())
	}
}

// TestSchedulerPropertyAllPolicies drives every scheduling policy with an
// adversarial, seeded module drain order and checks the scheduler contract:
// each CTA index is issued exactly once, Remaining counts down consistently,
// and for Layout implementations Module is total over [0,n), agrees with the
// issuing module, and rejects out-of-range indices.
func TestSchedulerPropertyAllPolicies(t *testing.T) {
	f := func(nRaw uint16, modRaw, chunkRaw, polRaw, wRaw uint8, seed uint64) bool {
		n := int(nRaw)%600 + 1
		modules := int(modRaw)%8 + 1
		chunks := int(chunkRaw)%4 + 1
		cfg := config.BaselineMCM()
		cfg.Modules = modules
		cfg.CTAChunksPerModule = chunks
		cfg.Scheduler = []config.SchedulerKind{
			config.SchedCentralized, config.SchedDistributed,
			config.SchedDynamic, config.SchedTiled2D,
		}[int(polRaw)%4]

		grid := Grid1D(n)
		if w := int(wRaw)%12 + 1; n%w == 0 && cfg.Scheduler == config.SchedTiled2D {
			grid = Grid{W: w, H: n / w, RowPanelLines: uint64(seed % 97), ColPanelLines: uint64(seed % 53)}
		}
		s := New(cfg, grid)

		issuer := make([]int, n)
		for i := range issuer {
			issuer[i] = -1
		}
		issued := 0
		rng := seed
		next := func() uint64 {
			rng += 0x9e3779b97f4a7c15
			z := rng
			z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
			return z ^ (z >> 27)
		}
		// Adversarial drain: random modules pull in bursts; fall back to a
		// full sweep when a burst finds nothing, stopping only when every
		// module reports empty.
		for issued < n {
			m := int(next() % uint64(modules))
			burst := int(next()%4) + 1
			got := 0
			for k := 0; k < burst; k++ {
				i := s.Next(m)
				if i == -1 {
					break
				}
				if i < 0 || i >= n || issuer[i] != -1 {
					return false
				}
				issuer[i] = m
				issued++
				got++
				if s.Remaining() != n-issued {
					return false
				}
			}
			if got == 0 {
				stuck := true
				for mm := 0; mm < modules && stuck; mm++ {
					if i := s.Next(mm); i != -1 {
						if i < 0 || i >= n || issuer[i] != -1 {
							return false
						}
						issuer[i] = mm
						issued++
						stuck = false
					}
				}
				if stuck {
					break
				}
			}
		}
		if issued != n || s.Remaining() != 0 {
			return false
		}
		lay, ok := s.(Layout)
		if !ok {
			return true
		}
		for i := 0; i < n; i++ {
			m := lay.Module(i)
			if m < 0 || m >= modules || m != issuer[i] {
				return false
			}
		}
		return lay.Module(-1) == -1 && lay.Module(n) == -1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Fatal(err)
	}
}
