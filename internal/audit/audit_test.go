package audit

import (
	"errors"
	"fmt"
	"os"
	"testing"
)

func TestRunSelectsByPhase(t *testing.T) {
	var a Auditor
	a.Register("cheap", Periodic|Boundary, func(r *Reporter) { r.Reportf("cheap", "x", "always") })
	a.Register("deep", Boundary, func(r *Reporter) { r.Reportf("deep", "y", "always") })

	per := a.Run(Periodic)
	if len(per) != 1 || per[0].Invariant != "cheap" {
		t.Fatalf("periodic pass ran %v, want only the cheap check", per)
	}
	bnd := a.Run(Boundary)
	if len(bnd) != 2 {
		t.Fatalf("boundary pass found %d violations, want both checks' 2", len(bnd))
	}
	// Registration order is preserved.
	if bnd[0].Invariant != "cheap" || bnd[1].Invariant != "deep" {
		t.Fatalf("boundary pass out of registration order: %v", bnd)
	}
}

func TestViolationsErrAndUnwrap(t *testing.T) {
	var a Auditor
	a.Register("ok", Boundary, func(*Reporter) {})
	if err := a.Run(Boundary).Err(); err != nil {
		t.Fatalf("clean pass returned non-nil error %v", err)
	}

	a.Register("bad", Boundary, func(r *Reporter) { r.Reportf("law", "comp", "got %d want %d", 3, 4) })
	err := a.Run(Boundary).Err()
	if err == nil {
		t.Fatal("violating pass returned nil error")
	}
	var v *Violation
	if !errors.As(err, &v) {
		t.Fatalf("error %T does not unwrap to *Violation", err)
	}
	if v.Invariant != "law" || v.Component != "comp" || v.Detail != "got 3 want 4" {
		t.Fatalf("violation fields %+v", v)
	}
	// Wrapping (as SimError/JobError do) must keep errors.As working.
	wrapped := fmt.Errorf("outer: %w", err)
	v = nil
	if !errors.As(wrapped, &v) || v.Invariant != "law" {
		t.Fatalf("wrapped error lost the violation: %v", wrapped)
	}
}

func TestViolationsErrorSummary(t *testing.T) {
	vs := Violations{
		{Invariant: "a", Component: "c1", Detail: "d1"},
		{Invariant: "b", Component: "c2", Detail: "d2"},
	}
	got := vs.Error()
	want := "invariant a violated at c1: d1 (and 1 more violations)"
	if got != want {
		t.Fatalf("Error() = %q, want %q", got, want)
	}
}

func TestEqualHelper(t *testing.T) {
	var r Reporter
	if !Equal(&r, "law", "comp", "bytes", uint64(5), uint64(5)) {
		t.Fatal("Equal reported a violation for equal values")
	}
	if Equal(&r, "law", "comp", "bytes", uint64(5), uint64(6)) {
		t.Fatal("Equal missed a mismatch")
	}
	vs := r.Violations()
	if len(vs) != 1 || vs[0].Detail != "bytes = 5, want 6" {
		t.Fatalf("violations = %v", vs)
	}
}

func TestClampBudget(t *testing.T) {
	cases := []struct {
		events, want uint64
	}{
		{0, ClampAllowance},
		{999_999, ClampAllowance + 99},    // just under a million: 99 from the fractional term
		{1_000_000, ClampAllowance + 100}, // exactly one million
		{10_000_000, ClampAllowance + 1000},
	}
	for _, c := range cases {
		if got := ClampBudget(c.events); got != c.want {
			t.Errorf("ClampBudget(%d) = %d, want %d", c.events, got, c.want)
		}
	}
}

func TestForced(t *testing.T) {
	for val, want := range map[string]bool{"": false, "0": false, "off": false, "1": true, "true": true, "yes": true, "on": true} {
		t.Setenv(EnvVar, val)
		if val == "" {
			os.Unsetenv(EnvVar)
		}
		if got := Forced(); got != want {
			t.Errorf("Forced() with %s=%q = %v, want %v", EnvVar, val, got, want)
		}
	}
}
