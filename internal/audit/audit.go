// Package audit implements the simulation invariant auditor: a registry of
// conservation-law checks that model components self-report into, evaluated
// at kernel boundaries (and periodically, for the checks that stay valid
// mid-kernel) against the live machine state.
//
// The motivation is silent corruption. The run lifecycle (internal/core's
// budgets and the runner's panic containment) catches loud failures — hangs,
// panics, runaway clocks — but a cycle-level NUMA model fails far more often
// quietly: a miscounted line fill or a byte double-booked on a link skews the
// very curves the paper is built on (the inter-GPM bandwidth of Figures 7, 10
// and 14, the hit rates behind Table 5) without tripping anything. The
// auditor turns the model's redundant bookkeeping into tripwires: every
// quantity that is counted in two places (bytes on the NoC vs. per-link
// reservations vs. the energy meter; accesses entering a cache level vs.
// misses leaving the level above) must agree exactly, and drained state
// (in-flight operations, resident CTAs, the event heap) must return to zero
// at every kernel boundary.
//
// Checks only observe — a registered check must never mutate model state —
// so an audited run is byte-identical to an unaudited one, which is itself
// pinned by tests. Violations surface as structured *Violation errors that
// flow through the existing SimError/JobError plumbing unchanged.
//
// Auditing is always on in tests and opt-in at runtime: the CLIs take an
// -audit flag, and setting MCMGPU_AUDIT=1 forces it for any process (see
// Forced).
package audit

import (
	"fmt"
	"os"
)

// EnvVar is the environment variable that forces auditing on for a whole
// process, equivalent to passing -audit to every CLI.
const EnvVar = "MCMGPU_AUDIT"

// Forced reports whether the environment forces auditing on. Accepted
// truthy values are "1", "true", "yes" and "on"; anything else (including
// unset) leaves auditing at the caller's choice.
func Forced() bool {
	switch os.Getenv(EnvVar) {
	case "1", "true", "yes", "on":
		return true
	}
	return false
}

// Clamp-guard threshold. The engine clamps events scheduled in the past to
// the current cycle so floating-point slop in resource timelines cannot wedge
// a run; a count that grows with the event count means a causality bug is
// hiding behind the clamp. The audited invariant allows a fixed allowance
// plus MaxClampedPerMillion clamps per million dispatched events — generous
// against slop (healthy runs clamp zero events at every tested scale) and
// hopeless against a real causality bug, which clamps per event.
const (
	// MaxClampedPerMillion is the audited ceiling on clamped events per
	// million dispatched events, beyond the fixed allowance.
	MaxClampedPerMillion = 100
	// ClampAllowance is the fixed number of clamped events tolerated
	// regardless of run length, covering startup transients in short runs.
	ClampAllowance = 16
)

// ClampBudget returns the maximum tolerated clamped-event count for a run
// that has dispatched the given number of events.
func ClampBudget(events uint64) uint64 {
	return ClampAllowance + events/1_000_000*MaxClampedPerMillion + events%1_000_000*MaxClampedPerMillion/1_000_000
}

// Phase says when a check is valid to run. Conservation laws that compare
// end-to-end flows (accesses into a level vs. misses out of the level above)
// are transiently false while operations are in flight, so they only run at
// kernel boundaries; cheap structural checks that hold at any instant also
// run periodically from the engine's audit hook.
type Phase uint8

const (
	// Periodic marks a check that holds mid-kernel and is cheap enough to
	// run every audit interval.
	Periodic Phase = 1 << iota
	// Boundary marks a check that requires a drained event queue and runs at
	// kernel boundaries and end-of-run.
	Boundary
)

// Violation is one broken invariant: which law, which component, and the
// mismatched quantities. It is an error so it can ride the SimError/JobError
// plumbing, and a structured value so tests and tools can match on the
// invariant name instead of parsing messages.
type Violation struct {
	// Invariant is the stable name of the broken law (e.g. "noc-bytes",
	// "l1-flow"); DESIGN.md documents every name.
	Invariant string
	// Component locates the violation (e.g. "dram-2", "sm17-l1", "machine").
	Component string
	// Detail states the mismatch with the observed numbers.
	Detail string
}

// Error renders the violation on one line.
func (v *Violation) Error() string {
	return fmt.Sprintf("invariant %s violated at %s: %s", v.Invariant, v.Component, v.Detail)
}

// Violations aggregates every violation found by one audit pass. A non-empty
// slice is an error whose Unwrap exposes the individual violations to
// errors.As, so `var v *audit.Violation; errors.As(err, &v)` works through
// any wrapping.
type Violations []*Violation

// Error summarizes: the first violation, plus a count when there are more.
func (vs Violations) Error() string {
	if len(vs) == 0 {
		return "audit: no violations"
	}
	if len(vs) == 1 {
		return vs[0].Error()
	}
	return fmt.Sprintf("%s (and %d more violations)", vs[0].Error(), len(vs)-1)
}

// Unwrap exposes the individual violations to errors.Is/As.
func (vs Violations) Unwrap() []error {
	out := make([]error, len(vs))
	for i, v := range vs {
		out[i] = v
	}
	return out
}

// Err returns the slice as an error, or nil when no invariant was violated —
// a typed-nil guard so callers can return it directly.
func (vs Violations) Err() error {
	if len(vs) == 0 {
		return nil
	}
	return vs
}

// Reporter collects violations during one audit pass. Component check
// methods (cache.Audit, noc.Audit, ...) append into the reporter rather than
// returning errors, so one pass gathers every broken invariant instead of
// stopping at the first.
type Reporter struct {
	vs Violations
}

// Reportf records one violation.
func (r *Reporter) Reportf(invariant, component, format string, args ...interface{}) {
	r.vs = append(r.vs, &Violation{
		Invariant: invariant,
		Component: component,
		Detail:    fmt.Sprintf(format, args...),
	})
}

// Violations returns everything reported so far.
func (r *Reporter) Violations() Violations { return r.vs }

// Equal reports a violation unless got == want, naming the quantity being
// conserved. It returns true when the invariant held, so callers can chain
// dependent checks.
func Equal[T comparable](r *Reporter, invariant, component, quantity string, got, want T) bool {
	if got == want {
		return true
	}
	r.Reportf(invariant, component, "%s = %v, want %v", quantity, got, want)
	return false
}

// check is one registered invariant.
type check struct {
	name   string
	phases Phase
	fn     func(*Reporter)
}

// Auditor is a registry of invariant checks over one machine. Build it once
// per run, Register every component's checks, then Run the appropriate phase
// from the engine's periodic hook and at each kernel boundary.
type Auditor struct {
	checks []check
}

// Register adds a named check to the given phases. Checks run in
// registration order, which keeps audit output deterministic.
func (a *Auditor) Register(name string, phases Phase, fn func(*Reporter)) {
	a.checks = append(a.checks, check{name: name, phases: phases, fn: fn})
}

// Names returns the registered check names in order, for docs and tests.
func (a *Auditor) Names() []string {
	out := make([]string, len(a.checks))
	for i, c := range a.checks {
		out[i] = c.name
	}
	return out
}

// Run evaluates every check registered for the given phase and returns the
// violations found (nil when every invariant held).
func (a *Auditor) Run(phase Phase) Violations {
	var r Reporter
	for _, c := range a.checks {
		if c.phases&phase != 0 {
			c.fn(&r)
		}
	}
	return r.vs
}
