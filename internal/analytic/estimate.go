package analytic

import (
	"fmt"
	"math"

	"mcmgpu/internal/config"
	"mcmgpu/internal/core"
	"mcmgpu/internal/cta"
	"mcmgpu/internal/noc"
	"mcmgpu/internal/workload"
)

// This file is the closed-form fast path of the simulator: an Estimator
// predicts, from a config.Config and a workload.Spec alone, the headline
// quantities the event engine measures — cycles/IPC, inter-module traffic,
// DRAM demand, hit rates per cache level, local fraction — in microseconds
// instead of seconds. The model is the paper's Section 3.3.1 bandwidth
// balance generalized into a min-of-bottlenecks roofline:
//
//	cycles = max(issue, xbar, link, L2-bank, DRAM, latency) + kernel gaps
//
// where the memory terms come from a traffic pyramid built class by class
// (own region / neighbor halo / shared hot region / scatter / uniform, per
// workload.AccessProfile), filtered through working-set hit-rate models of
// the L1, the module-side L1.5 and the memory-side L2, and split local vs
// remote by the placement and scheduling policy exactly as vm/cta home
// accesses. Machine rooflines derive from config.Config accessors, the noc
// link enumeration and the exported core timing constants, so the two
// models share one set of architectural parameters.
//
// The estimator is validated against the event engine on the golden
// experiment tables (see analytic_validation_test.go at the repository
// root) under CI-enforced relative-error and rank-correlation budgets.

// Calibration constants. These tune the closed-form model against the event
// engine on the golden tables; they are model parameters, not architecture
// (architectural constants live in config/core and are shared with the
// engine).
const (
	// dynStealRecovery is the fraction of chunk load imbalance the dynamic
	// (tail-stealing) scheduler recovers relative to static chunking.
	dynStealRecovery = 0.75
	// l1TimingEff discounts the L1's ideal wrap-revisit hit rate for timing
	// effects the closed form cannot see: a revisit only hits while the
	// line is still resident across the lap.
	l1TimingEff = 0.95
	// maxLineSpread widens the mean line latency toward the max over a
	// multi-line op (loads block on the slowest of LinesPerOp lines).
	maxLineSpread = 0.15
	// latOverlapExp blends the latency and throughput terms: parallelism
	// hides latency under bandwidth saturation, but never perfectly.
	latOverlapExp = 2.0
	// capSoftness is the exponent of the capacity discount clamp01(c/d)^s.
	// Linear (s=1) assumes re-references mix uniformly over the kernel;
	// real streams cluster them (neighbor CTAs re-touch a line soon after
	// its owner, stores precede their reloads), so a cache much smaller
	// than the working set still catches the short-distance mass.
	capSoftness = 0.5
	// l1ConflictSharpness is the exponent of the set-conflict discount
	// clamp01(slots/lines)^s on own-region L1 hits. Conflict thrashing is
	// harsher than capacity pressure: the own-region walk's re-reference
	// distance spans the whole region, so LRU within an oversubscribed set
	// group evicts lines right before their revisit.
	l1ConflictSharpness = 2.0
	// l2CyclicMargin scales the cross-kernel (cyclic re-walk) survival in
	// the L2: LRU under a cyclic stream starts evicting lines before their
	// revisit once the footprint nears capacity, so survival ramps over
	// [0, margin*capacity] instead of cliffing at capacity.
	l2CyclicMargin = 2.0
)

// Estimate is the closed-form prediction for one (config, workload, scale)
// job. Fields mirror core.Result where the engine measures the same
// quantity; they are float64 because the model predicts expectations, not
// event counts.
type Estimate struct {
	Config   string
	Workload string

	// Cycles is predicted execution time; IPC = WarpInstrs / Cycles.
	Cycles     float64
	WarpInstrs float64
	MemOps     float64
	IPC        float64

	// Predicted hit rates per level (loads, matching how the engine
	// counts: stores only probe L1/L1.5).
	L1HitRate  float64
	L15HitRate float64
	L2HitRate  float64

	// LocalFraction is the predicted fraction of post-L1 accesses homed in
	// the requesting module; RemoteFraction is its complement.
	LocalFraction  float64
	RemoteFraction float64

	// InterModuleBytes is predicted wire bytes (a byte per link traversed)
	// and InterModuleGBps the average rate over the predicted run.
	InterModuleBytes float64
	InterModuleGBps  float64

	// DRAMBytes is predicted DRAM device traffic; DRAMDemandGBps is the
	// rate it would need to sustain at the roofline-optimal runtime, i.e.
	// the demand the §3.3.1 balance argument compares link bandwidth to.
	DRAMBytes      float64
	DRAMDemandGBps float64

	// Bottleneck names the roofline term that set Cycles: one of "issue",
	// "xbar", "link", "l2bank", "dram", "latency".
	Bottleneck string
}

// Estimator predicts workload performance on one machine configuration.
// Build with NewEstimator (which precomputes the machine rooflines), then
// call Estimate per workload. Estimation is pure: no engine events, no
// randomness, no shared state — the same inputs always produce the same
// Estimate.
type Estimator struct {
	cfg *config.Config

	// Derived machine rooflines (bytes/cycle at 1 GHz).
	issueTotal  float64 // warp instrs/cycle machine-wide
	xbarGBps    float64
	l2BankGBps  float64
	dramGBps    float64
	aggLinkGBps float64 // summed unidirectional link bandwidth
	meanHops    float64 // mean links traversed between distinct modules

	l1Lines  float64 // per SM
	l15Lines float64 // per module (0 = disabled)
	l2Lines  float64 // machine-wide
}

// NewEstimator validates cfg and precomputes its rooflines. The noc is
// constructed once (no events are ever dispatched on it) so link counts and
// hop distances come from the same topology code the engine uses.
func NewEstimator(cfg *config.Config) (*Estimator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	e := &Estimator{
		cfg:        cfg,
		issueTotal: cfg.TotalIssuePerCycle(),
		xbarGBps:   cfg.TotalXbarGBps(),
		l2BankGBps: cfg.TotalL2BankGBps(),
		dramGBps:   cfg.TotalDRAMGBps(),
		l1Lines:    float64(cfg.L1.Lines()),
		l2Lines:    float64(cfg.TotalL2Bytes() / config.LineBytes),
	}
	if cfg.L15.Enabled() {
		e.l15Lines = float64(cfg.L15.Lines())
	}
	if cfg.Modules > 1 {
		net := noc.New(cfg)
		e.aggLinkGBps = net.AggregateGBps()
		e.meanHops = net.MeanHops()
	}
	return e, nil
}

// access classes, in workload.AccessProfile order.
const (
	clOwn = iota
	clNeighbor
	clShared
	clScatter
	clUniform
	clRowPanel
	clColPanel
	nClasses
)

// Estimate predicts spec's execution at the given scale (<= 0 or 1 = full
// size), mirroring how runner.Job applies scale before simulating.
func (e *Estimator) Estimate(spec *workload.Spec, scale float64) (*Estimate, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if scale > 0 && scale != 1 {
		spec = spec.Scaled(scale)
	}
	cfg := e.cfg
	if spec.WarpsPerCTA > cfg.WarpsPerSM {
		return nil, fmt.Errorf("analytic: CTA needs %d warps, SM holds %d", spec.WarpsPerCTA, cfg.WarpsPerSM)
	}

	p := spec.Profile()
	G := float64(cfg.Modules)
	K := float64(p.KernelIters)

	// ---- Work totals ---------------------------------------------------
	memOps := float64(spec.TotalMemOps())
	instrs := memOps * float64(spec.ComputePerMem+1)
	loads := p.LineAccesses * (1 - p.WriteFraction) // line loads per kernel
	stores := p.LineAccesses * p.WriteFraction      // line stores per kernel

	// ---- Occupancy -----------------------------------------------------
	totalSMs := cfg.TotalSMs()
	activeSMs := totalSMs
	if spec.CTAs < activeSMs {
		activeSMs = spec.CTAs
	}
	ctasPerSM := cfg.CTAsPerSM(spec.WarpsPerCTA)
	residentCTAs := activeSMs * ctasPerSM
	if residentCTAs > spec.CTAs {
		residentCTAs = spec.CTAs
	}
	waves := math.Ceil(float64(spec.CTAs) / float64(residentCTAs))

	share := [nClasses]float64{p.Own, p.Neighbor, p.Shared, p.Scatter, p.Uniform, p.RowPanel, p.ColPanel}

	// ---- L1 hit model ---------------------------------------------------
	// Own-region hits come from coverage: the CTA's warps walk one shared
	// sequence over the region (seq = warp*ops + i), so unit strides
	// overlap L-1 of each op's L lines and walks longer than the region
	// wrap around and revisit it. The ideal revisit rate 1 - distinct/acc
	// is discounted for write ops (stores probe but never fill, so a
	// written line costs its next load a miss) and for residency timing.
	// Random classes hit per the working-set model against their region
	// and the L1's share of capacity.
	ctasPerActiveSM := float64(residentCTAs) / float64(activeSMs)
	var h1 [nClasses]float64
	accOwnCTA := p.LineAccesses * share[clOwn] / float64(spec.CTAs)
	dOwnCTA := ownDistinctCTA(spec, &p, accOwnCTA)
	if accOwnCTA > 0 {
		// Two distinct hit mechanisms with very different residency needs.
		// Spatial overlap — consecutive ops of the shared walk re-touching
		// the previous op's lines (sub-line strides, stencil halos) — hits
		// within a few cycles of the fill, immune to conflict thrash and
		// timing. Wrap revisits — the walk lapping the region — re-reference
		// at a distance of the whole region and only hit if the region
		// survives in the SM's set slots until the next lap.
		// Spatial hits need the previous op to have been a load (stores
		// probe without filling), hence the write-fraction discount; wrap
		// revisits hit lines some earlier lap load-filled, so writes in
		// between do not cost them anything.
		ideal := clamp01(1 - dOwnCTA/accOwnCTA)
		spatial := math.Min(clamp01(1-ownNewPerLine(spec, &p)), ideal)
		wrap := (ideal - spatial) * l1TimingEff * e.l1OwnConflict(&p, ctasPerActiveSM)
		if cap := e.l1Lines / ctasPerActiveSM; dOwnCTA > cap {
			wrap *= math.Pow(clamp01(cap/dOwnCTA), capSoftness)
		}
		h1[clOwn] = spatial*(1-p.WriteFraction) + wrap
	}
	accNbCTA := loads * share[clNeighbor] / float64(spec.CTAs)
	h1[clNeighbor] = hitWorkingSet(accNbCTA, float64(p.NeighborWindowLines),
		e.l1Lines*math.Max(share[clNeighbor], 0.05)/ctasPerActiveSM)
	perSM := loads / float64(activeSMs)
	h1[clShared] = hitWorkingSet(perSM*share[clShared], float64(p.SharedRegionLines), e.l1Lines*share[clShared])
	h1[clScatter] = hitWorkingSet(perSM*share[clScatter], float64(p.ScatterRegionLines), e.l1Lines*share[clScatter])
	h1[clUniform] = hitWorkingSet(perSM*share[clUniform], float64(p.FootprintLines), e.l1Lines*share[clUniform])
	// Panel streams walk strictly increasing positions (seq = warp*ops + i),
	// so within one kernel a CTA re-touches a panel line only if its walk
	// wraps the panel: the distinct count is the access count capped at the
	// candidate window the CTA's warps can reach.
	cand := panelCandidate(spec, &p)
	for _, pc := range [2]struct {
		c     int
		panel float64
	}{{clRowPanel, float64(p.RowPanelLines)}, {clColPanel, float64(p.ColPanelLines)}} {
		if pc.panel <= 0 || share[pc.c] == 0 {
			continue
		}
		accCTA := loads * share[pc.c] / float64(spec.CTAs)
		d := math.Min(accCTA, math.Min(cand, pc.panel))
		// Lockstep walks (PatAttention) add a co-residency mechanism: SM
		// co-residents are spaced activeSMs apart in CTA id, so when that
		// spacing preserves the grid column they stream the SAME panel lines
		// in the SAME phase — one CTA's fills serve its neighbors' probes,
		// and the SM's whole probe stream shares one d-line window. GEMM's
		// k-loop skew staggers the phases, so it keeps the per-CTA model.
		n, cap1 := accCTA, e.l1Lines*share[pc.c]/ctasPerActiveSM
		if spec.Pattern == workload.PatAttention && pc.c == clColPanel &&
			spec.GridW > 0 && activeSMs%spec.GridW == 0 && ctasPerActiveSM > 1 {
			n = accCTA * ctasPerActiveSM
			cap1 = e.l1Lines * share[pc.c]
		}
		h1[pc.c] = hitWorkingSet2(n, d, cap1)
	}

	rho := p.ReuseProb
	l1Hit := rho
	for c := 0; c < nClasses; c++ {
		l1Hit += (1 - rho) * share[c] * h1[c]
	}

	// Post-L1 traffic per class, per kernel: load misses plus all stores
	// (L1/L1.5 are write-through and write-no-allocate).
	var missL1, postStores [nClasses]float64
	for c := 0; c < nClasses; c++ {
		missL1[c] = loads * (1 - rho) * share[c] * (1 - h1[c])
		postStores[c] = stores * share[c]
	}

	// ---- Placement: local probability per class ------------------------
	pLocal := e.localProb(spec, &p, residentCTAs)
	// When the page map is statically determined — LinearInit pre-binding or
	// the region-aware binder — replace the probabilistic locality laws with
	// the exact per-class page-home census, mirroring core.setupPlacement.
	homeQ := e.placementHomes(spec, &p, dOwnCTA, &pLocal)

	var postL1, localPost float64
	for c := 0; c < nClasses; c++ {
		postL1 += missL1[c] + postStores[c]
		localPost += (missL1[c] + postStores[c]) * pLocal[c]
	}
	localFrac := 1.0
	if postL1 > 0 {
		localFrac = localPost / postL1
	}

	// ---- Distinct-line universes (for L1.5/L2 working sets) ------------
	universe := e.classUniverses(spec, &p, loads)
	mwEff, mhEff := e.panelSpan(spec)

	// ---- L1.5 ----------------------------------------------------------
	// The module-side cache sees each module's share of post-L1 load
	// traffic: remote-only under the paper's policy, everything under the
	// allocate-all ablation. Stores only probe, so they neither hit-count
	// nor allocate.
	var h15 [nClasses]float64
	var l15AccK, l15HitK float64 // per kernel, machine-wide (loads)
	if e.l15Lines > 0 {
		var in [nClasses]float64
		var inTotal float64
		for c := 0; c < nClasses; c++ {
			in[c] = missL1[c]
			if cfg.L15Alloc == config.AllocRemoteOnly {
				in[c] *= 1 - pLocal[c]
			}
			inTotal += in[c]
		}
		for c := 0; c < nClasses; c++ {
			if in[c] == 0 {
				continue
			}
			// Universe of cacheable lines seen by one module: own and
			// neighbor regions belong to the module's CTAs and split
			// across modules; panels split by how many module rows or
			// columns the scheduler's partition cuts the grid into;
			// shared/scatter/uniform regions are global — every module's
			// accesses sample the whole region. Under remote-only
			// allocation the cacheable universe is cut to the remote share.
			u := universe[c]
			switch c {
			case clOwn, clNeighbor:
				u /= G
			case clRowPanel:
				u /= float64(mhEff)
			case clColPanel:
				u /= float64(mwEff)
			}
			if cfg.L15Alloc == config.AllocRemoteOnly {
				u *= 1 - pLocal[c]
			}
			n := in[c] / G
			d := classDistinct(c, n, u)
			cap15 := e.l15Lines * in[c] / inTotal
			h15[c] = hitWorkingSet2(n, d, cap15)
			l15AccK += in[c]
			l15HitK += in[c] * h15[c]
		}
	}
	l15Hit := 0.0
	if l15AccK > 0 {
		l15Hit = l15HitK / l15AccK
	}

	// ---- L2 ------------------------------------------------------------
	// Memory-side, persists across kernels: arrivals repeat KernelIters
	// times over the same distinct lines, so convergence loops are where L2
	// reuse comes from even for streaming workloads.
	var arr, l2Miss, absorbed [nClasses]float64
	var arrK, storeArrK float64
	for c := 0; c < nClasses; c++ {
		load := missL1[c]
		if e.l15Lines > 0 {
			if cfg.L15Alloc == config.AllocRemoteOnly {
				absorbed[c] = (1 - pLocal[c]) * h15[c]
			} else {
				absorbed[c] = h15[c]
			}
			load *= 1 - absorbed[c]
		}
		arr[c] = load + postStores[c]
		arrK += arr[c]
		storeArrK += postStores[c]
	}
	var l2HitRun, l2ArrRun, l2MissRun, d2Total float64
	for c := 0; c < nClasses; c++ {
		if arr[c] == 0 {
			continue
		}
		n2 := arr[c] * K
		// Distinct lines arriving per kernel: the class's distinct touched
		// lines, but never more than actually arrive — everything the L1
		// or L1.5 absorbed beyond the first touch was a re-reference.
		d2 := math.Min(classDistinct(c, p.LineAccesses*share[c], universe[c]), arr[c])
		cap2 := e.l2Lines * arr[c] / arrK
		// Reuse splits by re-reference distance. Within-kernel re-arrivals
		// (stores rewriting lines their burst just loaded, concurrent halo
		// re-touches) are short-distance and hit even a tiny L2 — but only
		// when the fill they depend on actually reached the L2. When the
		// L1.5 intercepts the class's loads, the re-arrivals face an L2
		// that never saw the line and degrade to lap distance. Cross-kernel
		// reuse re-walks the whole per-kernel footprint, the cyclic pattern
		// LRU handles worst: survival falls off around half the footprint
		// fitting, not at the full-footprint boundary.
		within := (arr[c] - d2) * K
		cross := d2 * (K - 1)
		cFactor := clamp01(cap2 / (l2CyclicMargin * d2))
		wFactor := (1 - absorbed[c]) + absorbed[c]*cFactor
		h2 := clamp01((within*wFactor + cross*cFactor) / n2)
		l2Miss[c] = n2 * (1 - h2)
		l2ArrRun += n2
		l2HitRun += n2 * h2
		l2MissRun += l2Miss[c]
		d2Total += d2
	}
	l2Hit := 0.0
	if l2ArrRun > 0 {
		l2Hit = l2HitRun / l2ArrRun
	}

	// DRAM: every L2 miss fills a line; evictions beyond capacity write
	// back their dirty share.
	evictions := math.Max(0, l2MissRun-math.Min(e.l2Lines, d2Total))
	dirtyShare := 0.0
	if arrK > 0 {
		dirtyShare = storeArrK / arrK
	}
	dramBytes := config.LineBytes * (l2MissRun + evictions*dirtyShare)

	// ---- Inter-module wire bytes ---------------------------------------
	var wireBytes float64
	if cfg.Modules > 1 {
		var remLoads, remStores float64
		for c := 0; c < nClasses; c++ {
			rl := missL1[c] * (1 - pLocal[c])
			if e.l15Lines > 0 {
				rl *= 1 - h15[c]
			}
			remLoads += rl
			remStores += postStores[c] * (1 - pLocal[c])
		}
		loadWire := float64(cfg.Link.ReqHeaderBytes) + float64(config.LineBytes+cfg.Link.RespHeaderBytes)
		storeWire := float64(config.LineBytes + cfg.Link.ReqHeaderBytes)
		wireBytes = e.meanHops * (remLoads*loadWire + remStores*storeWire) * K
	}

	// ---- Roofline terms -------------------------------------------------
	// Page-bound placement can concentrate traffic on a few modules (the
	// LinearInit sweep binds a GEMM panel's pages to one or two chunks);
	// aggregate-bandwidth rooflines then overstate the machine, so the
	// memory-side terms are derated by the hottest module's excess share.
	hot := hotspotFactor(homeQ, &arr, cfg.Modules)
	imb := e.scheduleImbalance(spec)
	terms := [6]float64{
		instrs / (float64(activeSMs) * cfg.IssuePerSM) * imb, // issue
		config.LineBytes * postL1 * K / e.xbarGBps,           // xbar
		0, // link
		config.LineBytes * l2ArrRun / e.l2BankGBps * hot,                       // l2bank
		dramBytes / e.dramGBps * hot,                                           // dram
		e.latencyTerm(spec, &p, pLocal, share, missL1, l1Hit, h15, l2Hit, imb), // latency
	}
	if e.aggLinkGBps > 0 {
		terms[2] = wireBytes / e.aggLinkGBps
	}
	names := [6]string{"issue", "xbar", "link", "l2bank", "dram", "latency"}
	tMax, bottleneck := 0.0, names[0]
	for i, t := range terms {
		if t > tMax {
			tMax, bottleneck = t, names[i]
		}
	}
	// Secondary bottlenecks add partially unhidden time: a pure max()
	// assumes perfect overlap between, say, link serialization and issue,
	// which the engine does not achieve. The p-norm blend keeps the max
	// dominant while crediting near-equal terms.
	var pnorm float64
	for _, t := range terms {
		pnorm += math.Pow(t, latOverlapExp)
	}
	cycles := math.Pow(pnorm, 1/latOverlapExp)
	cycles += (K - 1) * core.KernelGapCycles
	cycles += waves * float64(cfg.L1.HitLatency+cfg.L2.HitLatency) // pipeline ramp

	est := &Estimate{
		Config:           cfg.Name,
		Workload:         spec.Name,
		Cycles:           cycles,
		WarpInstrs:       instrs,
		MemOps:           memOps,
		IPC:              instrs / cycles,
		L1HitRate:        l1Hit,
		L15HitRate:       l15Hit,
		L2HitRate:        l2Hit,
		LocalFraction:    localFrac,
		RemoteFraction:   1 - localFrac,
		InterModuleBytes: wireBytes,
		InterModuleGBps:  wireBytes / cycles,
		DRAMBytes:        dramBytes,
		DRAMDemandGBps:   dramBytes / math.Max(tMax, 1),
		Bottleneck:       bottleneck,
	}
	return est, nil
}

// localProb returns, per access class, the probability a post-L1 access is
// homed in the requesting module's own partitions under the config's
// placement and scheduling policy.
func (e *Estimator) localProb(spec *workload.Spec, p *workload.AccessProfile, residentCTAs int) [nClasses]float64 {
	cfg := e.cfg
	uniform := 1 / float64(cfg.Modules)
	var out [nClasses]float64
	for c := range out {
		out[c] = uniform
	}
	if cfg.Modules <= 1 {
		for c := range out {
			out[c] = 1
		}
		return out
	}
	if cfg.Placement != config.PlaceFirstTouch {
		return out
	}
	// First touch binds pages to their first toucher's module. A CTA's own
	// region is local only to the extent its pages are not shared with
	// CTAs scheduled on other modules: page-granularity false sharing is
	// what makes first touch useless without distributed scheduling.
	pageLines := float64(cfg.LinesPerPage())
	region := float64(p.OwnRegionLines)
	interior := clamp01((region - pageLines) / region)
	switch cfg.Scheduler {
	case config.SchedDistributed, config.SchedDynamic:
		// Neighboring CTAs share a module, so pages spanning CTA regions
		// are still first-touched by the owning chunk — except at chunk
		// boundaries, where a page straddles two modules' regions and
		// binds to whichever side touches it first. The leaked fraction is
		// the boundary pages' share of the chunked region, which grows
		// with the chunk count: the residual NUMA traffic that makes more,
		// smaller GPMs slightly worse even in the optimized design.
		chunks := float64(cfg.Modules * maxInt(1, cfg.CTAChunksPerModule))
		totalOwn := region * float64(spec.CTAs)
		leak := clamp01(0.5 * (chunks - 1) * pageLines / math.Max(totalOwn, 1))
		if ceil := 1 - uniform; leak > ceil {
			leak = ceil
		}
		out[clOwn] = 1 - leak
		out[clNeighbor] = 1 - leak
	case config.SchedCentralized:
		// Interior pages bind to wherever the CTA first ran; the CTA
		// revisits that module only when the launch order repeats, which
		// holds for the initial fill but decays for the completion-driven
		// tail. Boundary pages are shared with neighbors on other modules
		// and effectively interleave.
		fracResident := float64(residentCTAs) / float64(spec.CTAs)
		pSame := fracResident + (1-fracResident)*uniform
		out[clOwn] = interior*pSame + (1-interior)*uniform
		out[clNeighbor] = uniform
	}
	// Shared, scatter and uniform regions are first-touched by whichever
	// module races there first, which interleaves them in expectation.
	return out
}

// placementHomes is the exact counterpart of localProb for statically
// determined page maps. When the workload is LinearInit (pages pre-bound by
// the init sweep) or the placement is region-aware (pages bound by the
// binder), the page→module map the engine will build is known in advance;
// this reconstructs it exactly as core.setupPlacement does, walks each
// class's touched lines against its consumers' modules, and overwrites
// pLocal with the resulting per-class locality. The return value is each
// class's distribution of accesses over page-home modules (for the hotspot
// derate); nil means the page map is race-determined and the probabilistic
// laws stand.
func (e *Estimator) placementHomes(spec *workload.Spec, p *workload.AccessProfile,
	dOwnCTA float64, pLocal *[nClasses]float64) *[nClasses][]float64 {

	cfg := e.cfg
	G := cfg.Modules
	if G <= 1 || cfg.Placement == config.PlaceInterleave {
		return nil
	}
	if !spec.LinearInit && cfg.Placement != config.PlaceRegionAware {
		return nil
	}

	w, h, rp, cp := spec.TileGrid()
	grid := cta.Grid{CTAs: spec.CTAs, W: w, H: h, RowPanelLines: rp, ColPanelLines: cp}
	layout, _ := cta.New(cfg, grid).(cta.Layout) // centralized → nil
	lpp := uint64(cfg.LinesPerPage())
	var binder func(page uint64) int
	if cfg.Placement == config.PlaceRegionAware && layout != nil {
		binder = func(page uint64) int { return spec.RegionHome(page*lpp, layout.Module) }
	}
	pages := (spec.FootprintLines + lpp - 1) / lpp
	homes := make([]int, pages)
	for pg := uint64(0); pg < pages; pg++ {
		home := -1
		if binder != nil {
			home = binder(pg)
		}
		if home < 0 && spec.LinearInit {
			initCTA := int(pg * uint64(spec.CTAs) / pages)
			if layout != nil {
				home = layout.Module(initCTA)
			} else {
				home = int(pg) % G
			}
		}
		homes[pg] = home // -1: bound by a runtime race, uniform in expectation
	}

	uni := 1.0 / float64(G)
	q := new([nClasses][]float64)
	var pl, count [nClasses]float64
	for c := range q {
		q[c] = make([]float64, G)
	}
	// addRange accumulates the lines [lo, hi) into class c. cons is the
	// distribution of the class's consumers over modules (nil = uniform).
	addRange := func(c int, lo, hi uint64, cons []float64) {
		if hi > spec.FootprintLines {
			hi = spec.FootprintLines
		}
		for line := lo; line < hi; line++ {
			home := homes[line/lpp]
			if home < 0 {
				for m := 0; m < G; m++ {
					q[c][m] += uni
				}
				pl[c] += uni
			} else {
				q[c][home]++
				if cons == nil {
					pl[c] += uni
				} else {
					pl[c] += cons[home]
				}
			}
			count[c]++
		}
	}

	rowBase, colBase, ownBase, perCTA := spec.Regions()
	rowWin, colWin := spec.PanelWindows()
	cons := make([]float64, G)
	if spec.GridW > 0 {
		if spec.RowPanelLines > 0 {
			span := rowWin
			for y := 0; y < spec.GridH; y++ {
				rowCons := consumerDist(cons, layout, spec.GridW, func(x int) int { return y*spec.GridW + x })
				lo := rowBase + uint64(y)*spec.RowPanelLines
				addRange(clRowPanel, lo, lo+span, rowCons)
			}
		}
		if spec.ColPanelLines > 0 {
			span := colWin
			for x := 0; x < spec.GridW; x++ {
				colCons := consumerDist(cons, layout, spec.GridH, func(y int) int { return y*spec.GridW + x })
				lo := colBase + uint64(x)*spec.ColPanelLines
				addRange(clColPanel, lo, lo+span, colCons)
			}
		}
	}
	dOwn := minU64(maxU64(1, uint64(math.Ceil(dOwnCTA))), perCTA)
	for i := 0; i < spec.CTAs; i++ {
		var ctaCons []float64
		if layout != nil {
			for m := range cons {
				cons[m] = 0
			}
			if m := layout.Module(i); m >= 0 {
				cons[m] = 1
				ctaCons = cons
			}
		}
		lo := ownBase + uint64(i)*perCTA
		addRange(clOwn, lo, lo+dOwn, ctaCons)
	}
	addRange(clShared, 0, spec.SharedLines, nil)
	addRange(clScatter, spec.SharedLines, spec.SharedLines+spec.ScatterLines, nil)
	for pg := uint64(0); pg < pages; pg++ {
		wt := float64(minU64(lpp, spec.FootprintLines-pg*lpp))
		if home := homes[pg]; home < 0 {
			for m := 0; m < G; m++ {
				q[clUniform][m] += wt * uni
			}
		} else {
			q[clUniform][home] += wt
		}
		pl[clUniform] += wt * uni
		count[clUniform] += wt
	}

	for c := range q {
		if count[c] == 0 {
			q[c] = nil
			continue
		}
		pl[c] = clamp01(pl[c] / count[c])
		for m := range q[c] {
			q[c][m] /= count[c]
		}
		pLocal[c] = pl[c]
	}
	// Halo accesses land at the edges of the own regions; their page homes
	// track the own class closely enough to share its census.
	if q[clOwn] != nil {
		q[clNeighbor] = q[clOwn]
		pLocal[clNeighbor] = pLocal[clOwn]
	}
	return q
}

// consumerDist fills buf with the module distribution of the n CTAs the
// probe enumerates under the layout; a nil layout (centralized scheduling)
// returns nil, meaning uniform.
func consumerDist(buf []float64, layout cta.Layout, n int, probe func(i int) int) []float64 {
	if layout == nil || n <= 0 {
		return nil
	}
	for m := range buf {
		buf[m] = 0
	}
	for i := 0; i < n; i++ {
		if m := layout.Module(probe(i)); m >= 0 {
			buf[m] += 1 / float64(n)
		}
	}
	return buf
}

// hotspotFactor returns how much slower the machine's memory side runs than
// its aggregate bandwidth suggests when page homes concentrate arrivals on
// few modules: the hottest module's arrival share relative to a balanced
// spread, >= 1. arr is the per-class L2 arrival traffic.
func hotspotFactor(q *[nClasses][]float64, arr *[nClasses]float64, modules int) float64 {
	if q == nil || modules <= 1 {
		return 1
	}
	per := make([]float64, modules)
	var total float64
	for c := 0; c < nClasses; c++ {
		t := arr[c]
		if t == 0 {
			continue
		}
		total += t
		if qc := q[c]; qc != nil {
			for m := range per {
				per[m] += t * qc[m]
			}
		} else {
			for m := range per {
				per[m] += t / float64(modules)
			}
		}
	}
	if total == 0 {
		return 1
	}
	maxShare := 0.0
	for _, v := range per {
		if v > maxShare {
			maxShare = v
		}
	}
	return math.Max(1, float64(modules)*maxShare/total)
}

func minU64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// l1OwnConflict returns the set-conflict factor (<= 1) on own-region L1
// revisit hits. CTA regions are contiguous slabs of OwnRegionLines at
// cta*region, and the L1 indexes sets by the low line-address bits, so the
// sets an SM's resident regions can occupy are fixed by the CTA-index
// stride between CTAs co-resident on one SM: the number of SMs drawing
// from the same scheduler cursor (every SM for the centralized policy, one
// module's SMs for the distributed/dynamic chunk). When stride*region is
// congruent to 0 modulo the set count, every resident region aliases into
// the same handful of sets and the revisit hits collapse — which is why
// the engine's L1 hit rate swings with the scheduler and the SM count even
// at identical cache geometry.
func (e *Estimator) l1OwnConflict(p *workload.AccessProfile, ctasPerActiveSM float64) float64 {
	cfg := e.cfg
	sets := cfg.L1.Lines() / cfg.L1.Ways
	region := int(p.OwnRegionLines)
	resident := int(math.Round(ctasPerActiveSM))
	if sets <= 0 || region <= 0 || resident <= 1 {
		return 1
	}
	stride := cfg.TotalSMs()
	if cfg.Scheduler != config.SchedCentralized {
		stride = cfg.SMsPerModule
	}
	span := region
	if span > sets {
		span = sets
	}
	covered := make([]bool, sets)
	slots := 0
	for j := 0; j < resident; j++ {
		base := j * stride % sets * region % sets
		for k := 0; k < span; k++ {
			if s := (base + k) % sets; !covered[s] {
				covered[s] = true
				slots++
			}
		}
	}
	need := float64(resident * region)
	if have := float64(slots * cfg.L1.Ways); have < need {
		return math.Pow(have/need, l1ConflictSharpness)
	}
	return 1
}

// classUniverses returns the machine-wide distinct-line universe of each
// access class: the denominator of every working-set hit-rate estimate.
func (e *Estimator) classUniverses(spec *workload.Spec, p *workload.AccessProfile, loads float64) [nClasses]float64 {
	var u [nClasses]float64
	accOwnCTA := p.LineAccesses * p.Own / float64(spec.CTAs)
	u[clOwn] = ownDistinctCTA(spec, p, accOwnCTA) * float64(spec.CTAs)
	accNbCTA := loads * p.Neighbor / float64(spec.CTAs)
	u[clNeighbor] = expDistinct(accNbCTA, float64(p.NeighborWindowLines)) * float64(spec.CTAs)
	u[clShared] = float64(p.SharedRegionLines)
	u[clScatter] = float64(p.ScatterRegionLines)
	u[clUniform] = float64(p.FootprintLines)
	// Panels: the CTAs along a row (column) stream a bounded candidate
	// window of their panel (the whole panel when the GEMM k-loop skew
	// staggers the walks), so the machine-wide universe is one window per
	// panel, not the full panel allocation.
	u[clRowPanel] = float64(p.GridH) * float64(p.RowPanelWindow)
	u[clColPanel] = float64(p.GridW) * float64(p.ColPanelWindow)
	for c := range u {
		if u[c] < 1 {
			u[c] = 1
		}
	}
	return u
}

// ownDistinctCTA returns the distinct own-region lines one CTA touches in
// one kernel: the deterministic coverage of its warps' shared walk. A
// unit-stride walk of acc line accesses adds min(stride, L)/L new lines per
// line accessed, a compute tile caps at the tile, an irregular walk's base
// lines are all distinct, and everything caps at the region (wrap-around).
func ownDistinctCTA(spec *workload.Spec, p *workload.AccessProfile, accOwnCTA float64) float64 {
	L := float64(p.LinesPerOp)
	if p.TileLines > 0 {
		return math.Min(float64(p.TileLines), accOwnCTA)
	}
	return math.Min(float64(p.OwnRegionLines), accOwnCTA*ownNewPerLine(spec, p)+L)
}

// ownNewPerLine returns the fraction of an own-region walk's line accesses
// that land on lines no earlier op of the walk touched (ignoring wrap): the
// spatial-overlap complement. Tiled walks re-walk their tile, so every line
// past the first pass overlaps, and irregular walks never overlap.
func ownNewPerLine(spec *workload.Spec, p *workload.AccessProfile) float64 {
	if spec.Pattern == workload.PatIrregular {
		return 1
	}
	if p.TileLines > 0 {
		acc := p.LineAccesses * p.Own / float64(spec.CTAs)
		if acc <= 0 {
			return 1
		}
		return math.Min(1, float64(p.TileLines)/acc)
	}
	L := float64(p.LinesPerOp)
	return math.Min(float64(p.StrideLines), L) / L
}

// classDistinct returns the expected distinct lines among n accesses of
// class c drawn from universe u: deterministic coverage for the structured
// own-region and panel walks, the uniform-sampling expectation for random
// classes.
func classDistinct(c int, n, u float64) float64 {
	if c == clOwn || c == clRowPanel || c == clColPanel {
		return math.Min(n, u)
	}
	return expDistinct(n, u)
}

// panelCandidate returns the panel lines one CTA's warps can reach in one
// kernel: the seq = warp*ops + i walk spans WarpsPerCTA*MemOpsPerWarp
// positions plus the multi-line op spill.
func panelCandidate(spec *workload.Spec, p *workload.AccessProfile) float64 {
	return float64(spec.WarpsPerCTA*spec.MemOpsPerWarp) + float64(p.LinesPerOp-1)
}

// panelSpan returns how many module columns (mw) and rows (mh) the config's
// scheduler splits a 2-D CTA grid into: the panel-universe divisor each
// module sees. The centralized scheduler spreads every module over the whole
// grid; distributed chunking slices grid rows; the tiled scheduler uses its
// communication-minimizing factorization.
func (e *Estimator) panelSpan(spec *workload.Spec) (mw, mh int) {
	cfg := e.cfg
	if cfg.Modules <= 1 || spec.GridW == 0 {
		return 1, 1
	}
	switch cfg.Scheduler {
	case config.SchedTiled2D:
		w, h, rp, cp := spec.TileGrid()
		return cta.TileFactor(cta.Grid{CTAs: spec.CTAs, W: w, H: h,
			RowPanelLines: rp, ColPanelLines: cp}, cfg.Modules)
	case config.SchedDistributed, config.SchedDynamic:
		return 1, cfg.Modules
	}
	return 1, 1
}

// scheduleImbalance returns the compute-side slowdown factor of the
// config's CTA scheduler under the spec's work-imbalance gradient.
func (e *Estimator) scheduleImbalance(spec *workload.Spec) float64 {
	cfg := e.cfg
	if cfg.Modules <= 1 {
		return 1
	}
	switch cfg.Scheduler {
	case config.SchedDistributed:
		chunks := cfg.Modules * maxInt(1, cfg.CTAChunksPerModule)
		return spec.ChunkImbalance(chunks)
	case config.SchedDynamic:
		chunks := cfg.Modules * maxInt(1, cfg.CTAChunksPerModule)
		imb := spec.ChunkImbalance(chunks)
		return 1 + (imb-1)*(1-dynStealRecovery)
	case config.SchedTiled2D:
		// Super-tiles are static contiguous partitions like distributed
		// chunks; the index-gradient imbalance model carries over.
		return spec.ChunkImbalance(cfg.Modules)
	}
	return 1
}

// latencyTerm is the latency-bound execution time of the whole run: waves
// of resident warps each serially issuing ops whose memory waits cannot be
// hidden when parallelism is scarce.
func (e *Estimator) latencyTerm(spec *workload.Spec, p *workload.AccessProfile,
	pLocal [nClasses]float64, share, missL1 [nClasses]float64,
	l1Hit float64, h15 [nClasses]float64, l2Hit, imb float64) float64 {

	cfg := e.cfg
	// Expected latency of one line load, weighted over the hit/miss and
	// local/remote paths the engine's startLoad walks.
	hitLat := float64(cfg.L1.HitLatency)
	missBase := float64(cfg.L1.HitLatency) + float64(cfg.XbarLatency) +
		float64(cfg.L2.HitLatency) + (1-l2Hit)*float64(cfg.DRAMLatency)

	var missTotal, missWeighted float64
	for c := 0; c < nClasses; c++ {
		m := missL1[c]
		if m == 0 {
			continue
		}
		lat := missBase
		remote := 1 - pLocal[c]
		if e.l15Lines > 0 && (cfg.L15Alloc == config.AllocAll || remote > 0) {
			probed := 1.0
			if cfg.L15Alloc == config.AllocRemoteOnly {
				probed = remote
			}
			// A probed access either short-circuits at the L1.5 hit
			// latency or pays the miss penalty on top of the full path.
			lat = lat*(1-probed*h15[c]) + probed*h15[c]*(float64(cfg.L1.HitLatency)+float64(cfg.XbarLatency)+float64(cfg.L15.HitLatency)) - lat*0
			lat += probed * (1 - h15[c]) * core.L15MissPenalty
		}
		lat += remote * 2 * e.meanHops * float64(cfg.Link.HopLatency)
		missTotal += m
		missWeighted += m * lat
	}
	missLat := missBase
	if missTotal > 0 {
		missLat = missWeighted / missTotal
	}
	loadLat := l1Hit*hitLat + (1-l1Hit)*missLat
	// Loads block on the slowest of LinesPerOp lines.
	if p.LinesPerOp > 1 {
		loadLat *= 1 + maxLineSpread*math.Log2(float64(p.LinesPerOp))
	}

	issue := float64(spec.ComputePerMem+1) / cfg.IssuePerSM
	wf := p.WriteFraction
	opLat := issue + (1-wf)*loadLat + wf*core.StoreAckCycles

	ctasPerSM := cfg.CTAsPerSM(spec.WarpsPerCTA)
	activeSMs := cfg.TotalSMs()
	if spec.CTAs < activeSMs {
		activeSMs = spec.CTAs
	}
	residentCTAs := activeSMs * ctasPerSM
	if residentCTAs > spec.CTAs {
		residentCTAs = spec.CTAs
	}
	waves := math.Ceil(float64(spec.CTAs) / float64(residentCTAs))
	return waves * p.MeanOpsPerWarp * opLat * float64(p.KernelIters) * imb
}

// hitWorkingSet estimates the hit rate of n uniform random accesses into a
// region of r distinct lines through a cache granted c lines of capacity:
// the re-reference share 1 - distinct/n, scaled down when the touched
// working set exceeds the capacity share.
func hitWorkingSet(n, r, c float64) float64 {
	if n <= 0 || r <= 0 {
		return 0
	}
	d := expDistinct(n, r)
	return hitWorkingSet2(n, d, c)
}

// hitWorkingSet2 is hitWorkingSet with the distinct-line count d already
// known.
func hitWorkingSet2(n, d, c float64) float64 {
	if n <= 0 || d <= 0 {
		return 0
	}
	h := 1 - d/n
	if h <= 0 {
		return 0
	}
	if c < d {
		h *= math.Pow(clamp01(c/d), capSoftness)
	}
	return clamp01(h)
}

// expDistinct returns the expected number of distinct lines touched by n
// uniform accesses into a region of r lines: r*(1-exp(-n/r)).
func expDistinct(n, r float64) float64 {
	if n <= 0 || r <= 0 {
		return 0
	}
	return r * (1 - math.Exp(-n/r))
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
