// Package analytic implements the closed-form on-package bandwidth model of
// Section 3.3.1: how much inter-GPM link bandwidth an MCM-GPU needs so the
// on-package network never throttles its aggregate DRAM bandwidth.
//
// The paper's reasoning for a G-module machine whose local partitions each
// provide b of DRAM bandwidth: with an average memory-side L2 hit rate of h,
// each partition's memory system supplies b/(1-h) of data bandwidth when its
// DRAM is saturated (2b in the paper's h=0.5 example). Under a statistically
// uniform address distribution, a fraction (G-1)/G of all delivered data is
// homed remotely and crosses the package. Sizing links so that expensive
// DRAM bandwidth is never the throttled resource — for any placement, not
// just the uniform average — requires a per-GPM link attachment equal to the
// aggregate DRAM bandwidth G*b: 3 TB/s for the paper's 4-GPM, 768 GB/s per
// partition example. Settings above that yield no additional performance;
// settings below expose NUMA throttling on the remote share of traffic.
package analytic

import (
	"fmt"
	"math"
)

// Model holds the parameters of the Section 3.3.1 estimate.
type Model struct {
	Modules        int     // G: number of GPMs
	PartitionGBps  float64 // b: DRAM bandwidth local to one GPM
	L2HitRate      float64 // h: average memory-side cache hit rate
	RemoteFraction float64 // fraction of traffic homed remotely; <0 means uniform (G-1)/G
}

// PaperExample returns the parameters used in the paper's walkthrough:
// a 4-GPM system with 3 TB/s aggregate DRAM and a ~50% L2 hit rate.
func PaperExample() Model {
	return Model{Modules: 4, PartitionGBps: 768, L2HitRate: 0.5, RemoteFraction: -1}
}

// ResolvedRemoteFraction resolves the remote traffic fraction the model
// actually uses: RemoteFraction when set explicitly, the uniform (G-1)/G
// otherwise. Exported so CLIs and reports render the same value the model
// computes with instead of re-deriving it by hand.
func (m Model) ResolvedRemoteFraction() float64 {
	if m.RemoteFraction >= 0 {
		return m.RemoteFraction
	}
	return float64(m.Modules-1) / float64(m.Modules)
}

// finite reports whether v is a usable number (not NaN, not ±Inf),
// mirroring config.Validate's finitePositive hardening.
func finite(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0)
}

// Validate checks the model's parameters and returns a descriptive error
// for the first problem found, in the style of config.Validate: a model
// that validates can be evaluated without producing NaN/Inf estimates.
func (m Model) Validate() error {
	switch {
	case m.Modules < 1:
		return fmt.Errorf("analytic: Modules = %d, must be >= 1", m.Modules)
	case !finite(m.PartitionGBps) || m.PartitionGBps <= 0:
		return fmt.Errorf("analytic: PartitionGBps = %v, must be positive and finite", m.PartitionGBps)
	case !finite(m.L2HitRate) || m.L2HitRate < 0 || m.L2HitRate >= 1:
		return fmt.Errorf("analytic: L2HitRate = %v, must be in [0,1)", m.L2HitRate)
	case !finite(m.RemoteFraction) || m.RemoteFraction > 1:
		return fmt.Errorf("analytic: RemoteFraction = %v, must be <= 1 and finite (< 0 selects uniform (G-1)/G)", m.RemoteFraction)
	}
	return nil
}

// AggregateDRAMGBps returns G*b, the machine's total DRAM bandwidth.
func (m Model) AggregateDRAMGBps() float64 {
	return float64(m.Modules) * m.PartitionGBps
}

// DeliveredPerPartitionGBps returns the data bandwidth one partition's
// memory system (L2 + DRAM) can deliver with its DRAM saturated: b/(1-h),
// the "2b units of bandwidth supplied from each L2 cache partition" of the
// paper's example.
func (m Model) DeliveredPerPartitionGBps() float64 {
	if m.L2HitRate >= 1 {
		return m.PartitionGBps * 1e6 // effectively unbounded; avoid Inf in reports
	}
	return m.PartitionGBps / (1 - m.L2HitRate)
}

// TotalInterGPMGBps returns the steady-state traffic crossing the package
// under the uniform-distribution scenario: the remote share of everything
// the partitions deliver.
func (m Model) TotalInterGPMGBps() float64 {
	return m.DeliveredPerPartitionGBps() * float64(m.Modules) * m.ResolvedRemoteFraction()
}

// RequiredLinkGBps returns the per-GPM link bandwidth needed so on-package
// links never throttle DRAM utilization: the aggregate DRAM bandwidth G*b
// (the paper's "link bandwidth of 4b" conclusion, 3 TB/s in the example).
func (m Model) RequiredLinkGBps() float64 {
	return m.AggregateDRAMGBps()
}

// Slowdown estimates the throughput factor (<= 1) achieved with the given
// per-GPM link bandwidth. Remote traffic is throttled in proportion to the
// link shortfall; local traffic is unaffected, so the floor is the local
// fraction.
func (m Model) Slowdown(linkGBps float64) float64 {
	need := m.RequiredLinkGBps()
	if need <= 0 || linkGBps >= need {
		return 1
	}
	rf := m.ResolvedRemoteFraction()
	return (1 - rf) + rf*(linkGBps/need)
}

// String renders the model parameters and its conclusion.
func (m Model) String() string {
	return fmt.Sprintf("G=%d b=%.0fGB/s h=%.2f remote=%.2f -> need %.0f GB/s per link",
		m.Modules, m.PartitionGBps, m.L2HitRate, m.ResolvedRemoteFraction(), m.RequiredLinkGBps())
}
