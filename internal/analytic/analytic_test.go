package analytic

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPaperExample(t *testing.T) {
	m := PaperExample()
	// "2b units of bandwidth would be supplied from each L2 cache partition"
	if got := m.DeliveredPerPartitionGBps(); got != 1536 {
		t.Errorf("delivered per partition = %v, want 1536 (2b)", got)
	}
	// "A link bandwidth of 4b would be necessary to provide 4b total DRAM
	// bandwidth" -> 3 TB/s.
	if got := m.RequiredLinkGBps(); got != 3072 {
		t.Errorf("required link = %v, want 3072 (4b = 3 TB/s)", got)
	}
	if got := m.AggregateDRAMGBps(); got != 3072 {
		t.Errorf("aggregate DRAM = %v, want 3072", got)
	}
	// Uniform remote fraction is 3/4 for 4 GPMs.
	if got := m.ResolvedRemoteFraction(); got != 0.75 {
		t.Errorf("remote fraction = %v, want 0.75", got)
	}
}

func TestSlowdownShape(t *testing.T) {
	m := PaperExample()
	// "link bandwidth settings of less than 3TB/s are expected to result in
	// performance degradation ... greater than 3TB/s are not expected to
	// yield any additional performance."
	if got := m.Slowdown(6144); got != 1 {
		t.Errorf("6 TB/s slowdown = %v, want 1 (no benefit beyond the knee)", got)
	}
	if got := m.Slowdown(3072); got != 1 {
		t.Errorf("3 TB/s slowdown = %v, want 1 (the knee)", got)
	}
	s1536 := m.Slowdown(1536)
	s768 := m.Slowdown(768)
	s384 := m.Slowdown(384)
	if !(s1536 > s768 && s768 > s384) {
		t.Errorf("slowdowns not monotone: %v %v %v", s1536, s768, s384)
	}
	// The floor is the local fraction: even a vanishing link leaves local
	// traffic flowing.
	if got := m.Slowdown(0.001); got < 0.25-1e-9 {
		t.Errorf("slowdown floor = %v, want >= 0.25", got)
	}
}

func TestRemoteFractionOverride(t *testing.T) {
	m := PaperExample()
	m.RemoteFraction = 0.1 // e.g. after first-touch placement
	if got := m.ResolvedRemoteFraction(); got != 0.1 {
		t.Fatalf("override ignored: %v", got)
	}
	// With 10% remote traffic, a 768 GB/s link costs little.
	if got := m.Slowdown(768); got < 0.9 {
		t.Errorf("slowdown with localized traffic = %v, want > 0.9", got)
	}
}

func TestFullHitRateDoesNotOverflow(t *testing.T) {
	m := PaperExample()
	m.L2HitRate = 1
	if v := m.DeliveredPerPartitionGBps(); math.IsInf(v, 0) || math.IsNaN(v) {
		t.Fatalf("delivered = %v", v)
	}
}

func TestStringMentionsConclusion(t *testing.T) {
	s := PaperExample().String()
	if s == "" {
		t.Fatalf("empty String")
	}
}

// Property: slowdown is in (0, 1], monotone nondecreasing in link bandwidth.
func TestSlowdownMonotoneProperty(t *testing.T) {
	f := func(a, b uint16) bool {
		m := PaperExample()
		x, y := float64(a), float64(b)
		if x > y {
			x, y = y, x
		}
		sx, sy := m.Slowdown(x), m.Slowdown(y)
		return sx > 0 && sy <= 1 && sx <= sy+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
