package analytic

import (
	"encoding/json"
	"reflect"
	"sync"
	"testing"
	"testing/quick"

	"mcmgpu/internal/config"
	"mcmgpu/internal/workload"
)

// Property: granting more inter-GPM link bandwidth never predicts a lower
// IPC. The link enters the estimate only through the wire-traffic roofline
// term, which shrinks as bandwidth grows, so the closed form is exactly
// monotone — a sign flip here would mean the sweep's phase 1 could steer
// phase 2 toward starved links.
func TestEstimateLinkMonotoneProperty(t *testing.T) {
	specs := workload.Suite()
	f := func(wi uint8, a, b uint16, sq uint8) bool {
		spec := specs[int(wi)%len(specs)]
		lo, hi := float64(a%8000)+64, float64(b%8000)+64
		if lo > hi {
			lo, hi = hi, lo
		}
		scale := 0.05 + float64(sq%16)/16
		ipc := func(gbps float64) float64 {
			e, err := NewEstimator(config.MCMWithLink(gbps))
			if err != nil {
				t.Fatal(err)
			}
			est, err := e.Estimate(spec, scale)
			if err != nil {
				t.Fatal(err)
			}
			return est.IPC
		}
		return ipc(hi) >= ipc(lo)-1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: a higher remote-homed traffic fraction never predicts a higher
// throughput factor at any link setting (Section 3.3.1's model).
func TestModelRemoteFractionMonotoneProperty(t *testing.T) {
	f := func(a, b uint8, link uint16) bool {
		lo, hi := float64(a)/255, float64(b)/255
		if lo > hi {
			lo, hi = hi, lo
		}
		m := PaperExample()
		gbps := float64(link)
		m.RemoteFraction = lo
		sLo := m.Slowdown(gbps)
		m.RemoteFraction = hi
		sHi := m.Slowdown(gbps)
		return sHi <= sLo+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestEstimateDeterministic: estimation is pure. The same (config,
// workload, scale) produces byte-identical output across repeated calls,
// across fresh estimators, and under concurrent use of one shared
// estimator — there is no hidden state and no engine behind it.
func TestEstimateDeterministic(t *testing.T) {
	cfg := config.OptimizedMCM()
	specs := workload.Suite()
	canon := func(e *Estimator, s *workload.Spec) []byte {
		est, err := e.Estimate(s, 0.25)
		if err != nil {
			t.Fatal(err)
		}
		data, err := json.Marshal(est)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	shared, err := NewEstimator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := make([][]byte, len(specs))
	for i, s := range specs {
		want[i] = canon(shared, s)
	}
	// Fresh estimator, reversed order: same bytes.
	fresh, err := NewEstimator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := len(specs) - 1; i >= 0; i-- {
		if got := canon(fresh, specs[i]); !reflect.DeepEqual(got, want[i]) {
			t.Fatalf("%s: fresh-estimator output differs:\n%s\n%s", specs[i].Name, got, want[i])
		}
	}
	// Concurrent use of the shared estimator: same bytes from every
	// goroutine (run with -race to also check for write races).
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i, s := range specs {
				if got := canon(shared, s); !reflect.DeepEqual(got, want[i]) {
					t.Errorf("%s: concurrent output differs", s.Name)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestModelValidate(t *testing.T) {
	if err := PaperExample().Validate(); err != nil {
		t.Fatalf("paper example: %v", err)
	}
	bad := []func(*Model){
		func(m *Model) { m.Modules = 0 },
		func(m *Model) { m.PartitionGBps = 0 },
		func(m *Model) { m.PartitionGBps = -3 },
		func(m *Model) { m.L2HitRate = 1 },
		func(m *Model) { m.L2HitRate = -0.1 },
		func(m *Model) { m.RemoteFraction = 1.5 },
	}
	for i, mutate := range bad {
		m := PaperExample()
		mutate(&m)
		if err := m.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted %+v", i, m)
		}
	}
}

// BenchmarkAnalyticEstimate measures the fast path's per-cell cost: one
// full-suite analytic evaluation of one grid configuration, the phase 1
// unit of work in cmd/sweep.
func BenchmarkAnalyticEstimate(b *testing.B) {
	e, err := NewEstimator(config.OptimizedMCM())
	if err != nil {
		b.Fatal(err)
	}
	specs := workload.Suite()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, s := range specs {
			if _, err := e.Estimate(s, 0.05); err != nil {
				b.Fatal(err)
			}
		}
	}
}
