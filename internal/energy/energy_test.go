package energy

import (
	"math"
	"testing"
)

func TestTable2Values(t *testing.T) {
	// Table 2: chip 80 fJ/b, package 0.5 pJ/b, board 10 pJ/b, system 250 pJ/b.
	cases := []struct {
		d    Domain
		pj   float64
		gbps float64
	}{
		{DomainChip, 0.08, 20000},
		{DomainPackage, 0.5, 1500},
		{DomainBoard, 10, 256},
		{DomainSystem, 250, 12.5},
	}
	for _, c := range cases {
		if got := c.d.PJPerBit(); got != c.pj {
			t.Errorf("%v PJPerBit = %v, want %v", c.d, got, c.pj)
		}
		if got := c.d.BandwidthGBps(); got != c.gbps {
			t.Errorf("%v BandwidthGBps = %v, want %v", c.d, got, c.gbps)
		}
	}
}

func TestPackageVsBoardRatio(t *testing.T) {
	// The MCM-GPU efficiency argument: on-package signaling is 20x cheaper
	// per bit than on-board signaling.
	ratio := DomainBoard.PJPerBit() / DomainPackage.PJPerBit()
	if ratio != 20 {
		t.Fatalf("board/package energy ratio = %v, want 20", ratio)
	}
}

func TestMeterAccumulation(t *testing.T) {
	m := NewMeter()
	m.AddBytes(DomainPackage, 1000)
	m.AddBytes(DomainPackage, 24)
	m.AddBytes(DomainChip, 512)
	m.AddDRAM(256)
	if got := m.Bytes(DomainPackage); got != 1024 {
		t.Fatalf("package bytes = %d, want 1024", got)
	}
	wantPkg := 1024.0 * 8 * 0.5
	if got := m.DomainPJ(DomainPackage); math.Abs(got-wantPkg) > 1e-9 {
		t.Fatalf("package energy = %v, want %v", got, wantPkg)
	}
	wantDRAM := 256.0 * 8 * DRAMPJPerBit
	if got := m.DRAMPJ(); math.Abs(got-wantDRAM) > 1e-9 {
		t.Fatalf("dram energy = %v, want %v", got, wantDRAM)
	}
	wantTotal := wantPkg + 512.0*8*0.08 + wantDRAM
	if got := m.TotalPJ(); math.Abs(got-wantTotal) > 1e-9 {
		t.Fatalf("total = %v, want %v", got, wantTotal)
	}
}

func TestMeterReset(t *testing.T) {
	m := NewMeter()
	m.AddBytes(DomainBoard, 100)
	m.AddDRAM(100)
	m.Reset()
	if m.TotalPJ() != 0 {
		t.Fatalf("Reset left energy: %v", m.TotalPJ())
	}
}

func TestDomainStrings(t *testing.T) {
	want := map[Domain]string{
		DomainChip: "chip", DomainPackage: "package",
		DomainBoard: "board", DomainSystem: "system",
	}
	for d, s := range want {
		if d.String() != s {
			t.Errorf("%d String = %q, want %q", int(d), d.String(), s)
		}
	}
}
