// Package energy implements the interconnect energy accounting of Table 2:
// approximate energy per bit for each integration domain (on-chip wires,
// on-package GRS links, on-board links, and system-level networks), plus
// DRAM access energy. The paper's efficiency argument for MCM-GPUs
// (Section 6.2) is that on-package signaling at 0.5 pJ/b replaces on-board
// signaling at 10 pJ/b; the meter makes that visible per run.
package energy

import "fmt"

// Domain identifies an integration tier from Table 2.
type Domain int

const (
	// DomainChip is on-die interconnect (GPM-Xbar traffic).
	DomainChip Domain = iota
	// DomainPackage is on-package GRS links between GPMs.
	DomainPackage
	// DomainBoard is on-board links between discrete GPUs.
	DomainBoard
	// DomainSystem is inter-node networking (not exercised by the
	// simulator but part of the published table).
	DomainSystem
	numDomains
)

// String returns the domain name.
func (d Domain) String() string {
	switch d {
	case DomainChip:
		return "chip"
	case DomainPackage:
		return "package"
	case DomainBoard:
		return "board"
	case DomainSystem:
		return "system"
	}
	return fmt.Sprintf("Domain(%d)", int(d))
}

// PJPerBit returns Table 2's approximate signaling energy for the domain.
func (d Domain) PJPerBit() float64 {
	switch d {
	case DomainChip:
		return 0.08 // 80 fJ/bit
	case DomainPackage:
		return 0.5
	case DomainBoard:
		return 10
	case DomainSystem:
		return 250
	}
	panic(fmt.Sprintf("energy: unknown domain %d", int(d)))
}

// BandwidthGBps returns Table 2's approximate per-tier bandwidth, used only
// for reporting the table itself.
func (d Domain) BandwidthGBps() float64 {
	switch d {
	case DomainChip:
		return 20000 // "10s of TB/s"
	case DomainPackage:
		return 1500
	case DomainBoard:
		return 256
	case DomainSystem:
		return 12.5
	}
	panic(fmt.Sprintf("energy: unknown domain %d", int(d)))
}

// DRAMPJPerBit approximates HBM2 access energy.
const DRAMPJPerBit = 4.0

// Meter accumulates data-movement energy for one simulation run.
type Meter struct {
	bytes [numDomains]uint64
	dram  uint64
}

// NewMeter returns an empty meter.
func NewMeter() *Meter { return &Meter{} }

// AddBytes records bytes moved over the given domain.
func (m *Meter) AddBytes(d Domain, n uint64) { m.bytes[d] += n }

// AddDRAM records bytes transferred at DRAM devices.
func (m *Meter) AddDRAM(n uint64) { m.dram += n }

// Bytes returns bytes moved over the given domain.
func (m *Meter) Bytes(d Domain) uint64 { return m.bytes[d] }

// DRAMBytes returns bytes recorded at DRAM devices. The invariant auditor
// reconciles this against the DRAM partitions' own byte counters; the energy
// numbers of Section 6.2 are only as honest as that agreement.
func (m *Meter) DRAMBytes() uint64 { return m.dram }

// DomainPJ returns the signaling energy spent in the given domain.
func (m *Meter) DomainPJ(d Domain) float64 {
	return float64(m.bytes[d]) * 8 * d.PJPerBit()
}

// DRAMPJ returns the DRAM access energy.
func (m *Meter) DRAMPJ() float64 { return float64(m.dram) * 8 * DRAMPJPerBit }

// TotalPJ returns total data-movement energy.
func (m *Meter) TotalPJ() float64 {
	total := m.DRAMPJ()
	for d := Domain(0); d < numDomains; d++ {
		total += m.DomainPJ(d)
	}
	return total
}

// Reset zeroes the meter.
func (m *Meter) Reset() {
	*m = Meter{}
}
