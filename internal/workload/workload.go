// Package workload synthesizes the 48-application suite the paper evaluates
// (Section 4): 17 memory-intensive and 16 compute-intensive high-parallelism
// applications plus 15 limited-parallelism applications, drawn from CORAL,
// Lonestar, Rodinia and NVIDIA in-house benchmarks.
//
// The original CUDA applications and the traces the authors ran are not
// available, so each application is modeled as a parameterized synthetic
// kernel. The parameters capture exactly the properties the paper's three
// optimizations exploit: available parallelism (CTA and warp counts),
// memory intensity (compute-to-memory ratio and coalescing), working-set
// size relative to the cache hierarchy, inter-CTA spatial locality
// (neighbor sharing between consecutive CTA indices), temporal reuse, and
// cross-kernel repetition from convergence loops. Access streams are
// deterministic functions of (application, CTA, warp, op), so a CTA touches
// the same pages on every kernel launch — the property first-touch
// placement and distributed scheduling exploit together (Figure 12).
package workload

import (
	"fmt"

	"mcmgpu/internal/config"
)

// Category classifies applications as the paper does.
type Category int

const (
	// MemoryIntensive applications lose >20% performance when memory
	// bandwidth is halved (Section 4) and have enough parallelism to fill a
	// 256-SM GPU.
	MemoryIntensive Category = iota
	// ComputeIntensive applications scale to 256 SMs but are bound by
	// compute throughput rather than memory bandwidth.
	ComputeIntensive
	// LimitedParallelism applications cannot fill a 256-SM GPU
	// (parallel efficiency < 25%).
	LimitedParallelism
)

// String returns the category name used in the paper's figures.
func (c Category) String() string {
	switch c {
	case MemoryIntensive:
		return "M-Intensive"
	case ComputeIntensive:
		return "C-Intensive"
	case LimitedParallelism:
		return "Lim-Parallel"
	}
	return fmt.Sprintf("Category(%d)", int(c))
}

// Pattern selects the synthetic memory access pattern.
type Pattern int

const (
	// PatStreaming touches the CTA's own region sequentially with perfect
	// coalescing (STREAM, MiniAMR).
	PatStreaming Pattern = iota
	// PatStrided walks the CTA's region with a fixed stride (SRAD, NN-Conv).
	PatStrided
	// PatStencil touches the CTA's region sequentially plus a halo in the
	// neighboring CTAs' regions (Lulesh, CoMD, CFD, Nekbone).
	PatStencil
	// PatIrregular scatters most accesses uniformly over the whole
	// footprint with poor coalescing (BFS, SSSP, MST, AMG).
	PatIrregular
	// PatHotRegion concentrates a fraction of accesses on a small shared
	// read-mostly region (Kmeans centroids, XSBench cross-section tables).
	PatHotRegion
	// PatComputeTile re-walks a small per-CTA tile with heavy compute
	// between accesses (GEMM-like compute-intensive kernels).
	PatComputeTile
	// PatGEMM2D is a tiled dense GEMM: CTA (i, j) computes one output tile
	// of C, streaming the A panel its grid row shares and the B panel its
	// grid column shares. Reuse neighbors are both (i±1, j) and (i, j±1),
	// the 2-D structure that 1-D contiguous CTA chunking cannot keep on
	// one GPM.
	PatGEMM2D
	// PatAttention is a flash-style attention kernel: CTA (head, block)
	// streams its head's K/V panel against a per-CTA query block, with
	// heads (grid columns) as the natural placement grain.
	PatAttention
)

// String returns the pattern name.
func (p Pattern) String() string {
	switch p {
	case PatStreaming:
		return "streaming"
	case PatStrided:
		return "strided"
	case PatStencil:
		return "stencil"
	case PatIrregular:
		return "irregular"
	case PatHotRegion:
		return "hot-region"
	case PatComputeTile:
		return "compute-tile"
	case PatGEMM2D:
		return "gemm-2d"
	case PatAttention:
		return "attention"
	}
	return fmt.Sprintf("Pattern(%d)", int(p))
}

// Spec describes one synthetic application.
type Spec struct {
	Name     string
	Category Category
	Pattern  Pattern

	// Parallelism.
	CTAs        int // CTAs per kernel launch
	WarpsPerCTA int

	// Work per warp per kernel launch.
	MemOpsPerWarp int
	ComputePerMem int // warp compute instructions between memory ops
	KernelIters   int // convergence-loop launches of the kernel

	// Memory behavior. FootprintLines is the model working set in cache
	// lines; PaperFootprintMB records Table 4's footprint for reporting.
	FootprintLines   uint64
	PaperFootprintMB int
	WriteFraction    float64
	LinesPerOp       int     // distinct lines touched per warp memory op (coalescing)
	SharedFraction   float64 // accesses to the shared region
	SharedLines      uint64
	NeighborFraction float64 // accesses to the adjacent CTA's region
	RandomFraction   float64 // scattered accesses (see ScatterLines)
	// ScatterLines confines RandomFraction accesses to a dedicated region
	// (e.g. a graph algorithm's visited/distance arrays) instead of the
	// whole footprint; 0 scatters over everything. Keeping scatter traffic
	// out of the CTA-partitioned data prevents it from stealing first-touch
	// page bindings that belong to the owning CTA.
	ScatterLines uint64
	ReuseProb    float64 // chance of re-touching a recently used line
	Stride       uint64  // line stride for PatStrided (0 = 1)

	// 2-D grid structure (PatGEMM2D, PatAttention): CTA i computes output
	// tile (x, y) = (i%GridW, i/GridW). Both zero for 1-D workloads;
	// when set, GridW*GridH must equal CTAs.
	GridW, GridH int
	// Panel geometry: every grid row y shares a RowPanelLines panel (the
	// GEMM A panel) and every grid column x a ColPanelLines panel (the
	// GEMM B panel; the per-head K/V panel for attention). Panels live in
	// a reserved stretch of the footprint between the scatter region and
	// the per-CTA own regions.
	RowPanelLines uint64
	ColPanelLines uint64
	// RowPanelFraction and ColPanelFraction of accesses stream the CTA's
	// row and column panels.
	RowPanelFraction float64
	ColPanelFraction float64
	// LinearInit marks workloads whose footprint is written by a linear
	// streaming sweep before the first compute kernel — a matrix fill or
	// QKV projection whose CTA j initializes the j-th contiguous slice of
	// memory. Under first-touch placement that sweep, not the compute
	// kernel, decides page homes: the simulator pre-binds every footprint
	// page to the module the init sweep's CTA layout gives it. This is the
	// init/access-layout mismatch that makes page-granularity first touch
	// misplace tiled-GEMM panels (the pages of a B panel belong to the
	// init sweep's linear chunks, not to the panel's consumers).
	LinearInit bool

	// WorkImbalance skews per-CTA work: CTA i executes MemOpsPerWarp scaled
	// by a deterministic factor in [1-W, 1+W]. The paper observes two
	// workloads whose unequal CTAs defeat coarse-grain distributed
	// scheduling (Section 5.4); this knob reproduces them and motivates the
	// dynamic (stealing) scheduler extension.
	WorkImbalance float64

	Seed uint64
}

// Validate reports the first inconsistency in the spec.
func (s *Spec) Validate() error {
	switch {
	case s.Name == "":
		return fmt.Errorf("workload: empty name")
	case s.CTAs <= 0:
		return fmt.Errorf("workload %s: CTAs = %d", s.Name, s.CTAs)
	case s.WarpsPerCTA <= 0:
		return fmt.Errorf("workload %s: WarpsPerCTA = %d", s.Name, s.WarpsPerCTA)
	case s.MemOpsPerWarp <= 0:
		return fmt.Errorf("workload %s: MemOpsPerWarp = %d", s.Name, s.MemOpsPerWarp)
	case s.ComputePerMem < 0:
		return fmt.Errorf("workload %s: ComputePerMem = %d", s.Name, s.ComputePerMem)
	case s.KernelIters <= 0:
		return fmt.Errorf("workload %s: KernelIters = %d", s.Name, s.KernelIters)
	case s.LinesPerOp <= 0 || s.LinesPerOp > MaxLinesPerOp:
		return fmt.Errorf("workload %s: LinesPerOp = %d (max %d)", s.Name, s.LinesPerOp, MaxLinesPerOp)
	case s.FootprintLines < uint64(s.CTAs)+s.SharedLines+s.ScatterLines+s.PanelLines():
		return fmt.Errorf("workload %s: footprint %d lines too small for %d CTAs + %d shared + %d scatter + %d panel",
			s.Name, s.FootprintLines, s.CTAs, s.SharedLines, s.ScatterLines, s.PanelLines())
	case s.WriteFraction < 0 || s.WriteFraction > 1:
		return fmt.Errorf("workload %s: WriteFraction = %v", s.Name, s.WriteFraction)
	case s.SharedFraction+s.NeighborFraction+s.RandomFraction+s.RowPanelFraction+s.ColPanelFraction > 1:
		return fmt.Errorf("workload %s: fractions sum to %v > 1",
			s.Name, s.SharedFraction+s.NeighborFraction+s.RandomFraction+s.RowPanelFraction+s.ColPanelFraction)
	case s.WorkImbalance < 0 || s.WorkImbalance > 1:
		return fmt.Errorf("workload %s: WorkImbalance = %v", s.Name, s.WorkImbalance)
	case (s.GridW != 0) != (s.GridH != 0):
		return fmt.Errorf("workload %s: grid %dx%d: set both dimensions or neither", s.Name, s.GridW, s.GridH)
	case s.GridW < 0 || s.GridH < 0:
		return fmt.Errorf("workload %s: negative grid %dx%d", s.Name, s.GridW, s.GridH)
	case s.GridW > 0 && s.GridW*s.GridH != s.CTAs:
		return fmt.Errorf("workload %s: grid %dx%d does not cover %d CTAs", s.Name, s.GridW, s.GridH, s.CTAs)
	case (s.RowPanelLines > 0 || s.ColPanelLines > 0) && s.GridW == 0:
		return fmt.Errorf("workload %s: panel lines need a 2-D grid", s.Name)
	case s.RowPanelFraction < 0 || s.ColPanelFraction < 0:
		return fmt.Errorf("workload %s: negative panel fraction", s.Name)
	case s.RowPanelFraction > 0 && s.RowPanelLines == 0:
		return fmt.Errorf("workload %s: RowPanelFraction %v with no row panel", s.Name, s.RowPanelFraction)
	case s.ColPanelFraction > 0 && s.ColPanelLines == 0:
		return fmt.Errorf("workload %s: ColPanelFraction %v with no column panel", s.Name, s.ColPanelFraction)
	}
	return nil
}

// PanelLines returns the total lines the row and column panels reserve.
func (s *Spec) PanelLines() uint64 {
	return uint64(s.GridH)*s.RowPanelLines + uint64(s.GridW)*s.ColPanelLines
}

// regionGeometry returns the line-address bases of the footprint layout —
// [shared][scatter][row panels][col panels][per-CTA own regions] — and the
// per-CTA own-region length. It is the single source of truth shared by the
// stream generator, the access profile, and region-aware placement.
func (s *Spec) regionGeometry() (rowBase, colBase, ownBase, perCTA uint64) {
	rowBase = s.SharedLines + s.ScatterLines
	colBase = rowBase + uint64(s.GridH)*s.RowPanelLines
	ownBase = colBase + uint64(s.GridW)*s.ColPanelLines
	perCTA = (s.FootprintLines - ownBase) / uint64(s.CTAs)
	if perCTA == 0 {
		perCTA = 1
	}
	return rowBase, colBase, ownBase, perCTA
}

// PanelWindows returns the candidate line span one kernel's CTAs can touch
// within a row panel and a column panel: the warps' shared walk covers
// WarpsPerCTA*MemOpsPerWarp positions (plus the multi-line spill), and the
// GEMM k-loop skew staggers the walks of the CTAs along the panel, widening
// the window by the stagger span. Both are capped at the panel size.
func (s *Spec) PanelWindows() (row, col uint64) {
	if s.GridW == 0 {
		return 0, 0
	}
	cand := uint64(s.WarpsPerCTA*s.MemOpsPerWarp) + uint64(s.LinesPerOp-1)
	row, col = minU64(cand, s.RowPanelLines), minU64(cand, s.ColPanelLines)
	if s.Pattern == PatGEMM2D {
		if s.GridW > 1 && s.RowPanelLines > 0 {
			skew := uint64(s.GridW-1) * maxU64(1, s.RowPanelLines/uint64(s.GridW))
			row = minU64(skew+cand, s.RowPanelLines)
		}
		if s.GridH > 1 && s.ColPanelLines > 0 {
			skew := uint64(s.GridH-1) * maxU64(1, s.ColPanelLines/uint64(s.GridH))
			col = minU64(skew+cand, s.ColPanelLines)
		}
	}
	return row, col
}

func minU64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

// Regions exposes the footprint layout to other packages (the analytic
// estimator reconstructs page homes from it): the row-panel, column-panel
// and own-region base lines plus the per-CTA own-region length.
func (s *Spec) Regions() (rowBase, colBase, ownBase, perCTA uint64) {
	return s.regionGeometry()
}

// TileGrid returns the 2-D CTA grid and panel sizes the tiled scheduler
// partitions; 1-D workloads return all zeros.
func (s *Spec) TileGrid() (w, h int, rowPanel, colPanel uint64) {
	return s.GridW, s.GridH, s.RowPanelLines, s.ColPanelLines
}

// RegionHome returns the module that region-aware placement homes the
// page-sized block starting at the given line on, or -1 for blocks outside
// the panel and own regions (shared and scatter data keep first-touch
// semantics). module is the kernel's CTA→module layout.
//
// A panel is consumed by a whole grid row (or column) of CTAs, which may
// span several modules; the home rotates deterministically across exactly
// those modules, indexed by the panel number, so panel pages spread evenly
// over their consumers instead of racing to a first toucher.
func (s *Spec) RegionHome(line uint64, module func(cta int) int) int {
	rowBase, colBase, ownBase, perCTA := s.regionGeometry()
	switch {
	case line < rowBase:
		return -1
	case line < colBase:
		y := int((line - rowBase) / s.RowPanelLines)
		return rotatedHome(y, s.GridW, func(x int) int { return module(y*s.GridW + x) })
	case line < ownBase:
		x := int((line - colBase) / s.ColPanelLines)
		return rotatedHome(x, s.GridH, func(y int) int { return module(y*s.GridW + x) })
	default:
		cta := int((line - ownBase) / perCTA)
		if cta >= s.CTAs {
			cta = s.CTAs - 1 // leftover lines past the last even division
		}
		return module(cta)
	}
}

// rotatedHome picks the (idx mod k)-th distinct module among the n CTAs the
// probe enumerates, where k is the number of distinct modules seen.
func rotatedHome(idx, n int, probe func(i int) int) int {
	var seen [32]int
	ns := 0
	for i := 0; i < n; i++ {
		m := probe(i)
		if m < 0 {
			continue
		}
		dup := false
		for j := 0; j < ns; j++ {
			if seen[j] == m {
				dup = true
				break
			}
		}
		if !dup && ns < len(seen) {
			seen[ns] = m
			ns++
		}
	}
	if ns == 0 {
		return -1
	}
	return seen[idx%ns]
}

// OpsForCTA returns the per-warp memory operation count of one CTA,
// applying the deterministic work-imbalance skew. The skew is a gradient
// over the CTA index space — CTA 0 does (1-W)x the nominal work and the
// last CTA (1+W)x — matching how imbalance arises in practice (triangular
// solves, refinement regions): correlated with position, which is exactly
// what defeats contiguous chunk scheduling. Uncorrelated per-CTA noise
// would average out over a chunk and never unbalance modules.
func (s *Spec) OpsForCTA(cta int) int {
	if s.WorkImbalance <= 0 || s.CTAs <= 1 {
		return s.MemOpsPerWarp
	}
	u := float64(cta) / float64(s.CTAs-1) // [0,1] across the index space
	f := 1 + s.WorkImbalance*(2*u-1)
	ops := int(float64(s.MemOpsPerWarp)*f + 0.5)
	if ops < 1 {
		ops = 1
	}
	return ops
}

// TotalWarps returns warps per kernel launch.
func (s *Spec) TotalWarps() int { return s.CTAs * s.WarpsPerCTA }

// TotalMemOps returns memory operations across all kernel launches,
// accounting for per-CTA work imbalance.
func (s *Spec) TotalMemOps() uint64 {
	if s.WorkImbalance <= 0 {
		return uint64(s.CTAs) * uint64(s.WarpsPerCTA) * uint64(s.MemOpsPerWarp) * uint64(s.KernelIters)
	}
	var total uint64
	for cta := 0; cta < s.CTAs; cta++ {
		total += uint64(s.OpsForCTA(cta))
	}
	return total * uint64(s.WarpsPerCTA) * uint64(s.KernelIters)
}

// ModelFootprintMB returns the model working set in MB.
func (s *Spec) ModelFootprintMB() float64 {
	return float64(s.FootprintLines) * float64(config.LineBytes) / float64(config.MB)
}

// Scaled returns a copy with per-warp work and footprint scaled by f, used
// to trade fidelity for simulation time. Parallelism (CTAs, warps) and
// locality structure are preserved. f must be positive.
func (s *Spec) Scaled(f float64) *Spec {
	if f <= 0 {
		panic(fmt.Sprintf("workload %s: non-positive scale %v", s.Name, f))
	}
	out := *s
	out.MemOpsPerWarp = maxInt(1, int(float64(s.MemOpsPerWarp)*f+0.5))
	if s.SharedLines > 0 {
		sh := uint64(float64(s.SharedLines)*f + 0.5)
		if sh < 64 {
			sh = 64
		}
		out.SharedLines = sh
	}
	if s.ScatterLines > 0 {
		sc := uint64(float64(s.ScatterLines)*f + 0.5)
		if sc < 64 {
			sc = 64
		}
		out.ScatterLines = sc
	}
	if s.RowPanelLines > 0 {
		rp := uint64(float64(s.RowPanelLines)*f + 0.5)
		if rp < 64 {
			rp = 64
		}
		out.RowPanelLines = rp
	}
	if s.ColPanelLines > 0 {
		cp := uint64(float64(s.ColPanelLines)*f + 0.5)
		if cp < 64 {
			cp = 64
		}
		out.ColPanelLines = cp
	}
	fp := uint64(float64(s.FootprintLines)*f + 0.5)
	min := uint64(s.CTAs)*2 + out.SharedLines + out.ScatterLines + out.PanelLines()
	if fp < min {
		fp = min
	}
	out.FootprintLines = fp
	return &out
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
