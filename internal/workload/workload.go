// Package workload synthesizes the 48-application suite the paper evaluates
// (Section 4): 17 memory-intensive and 16 compute-intensive high-parallelism
// applications plus 15 limited-parallelism applications, drawn from CORAL,
// Lonestar, Rodinia and NVIDIA in-house benchmarks.
//
// The original CUDA applications and the traces the authors ran are not
// available, so each application is modeled as a parameterized synthetic
// kernel. The parameters capture exactly the properties the paper's three
// optimizations exploit: available parallelism (CTA and warp counts),
// memory intensity (compute-to-memory ratio and coalescing), working-set
// size relative to the cache hierarchy, inter-CTA spatial locality
// (neighbor sharing between consecutive CTA indices), temporal reuse, and
// cross-kernel repetition from convergence loops. Access streams are
// deterministic functions of (application, CTA, warp, op), so a CTA touches
// the same pages on every kernel launch — the property first-touch
// placement and distributed scheduling exploit together (Figure 12).
package workload

import (
	"fmt"

	"mcmgpu/internal/config"
)

// Category classifies applications as the paper does.
type Category int

const (
	// MemoryIntensive applications lose >20% performance when memory
	// bandwidth is halved (Section 4) and have enough parallelism to fill a
	// 256-SM GPU.
	MemoryIntensive Category = iota
	// ComputeIntensive applications scale to 256 SMs but are bound by
	// compute throughput rather than memory bandwidth.
	ComputeIntensive
	// LimitedParallelism applications cannot fill a 256-SM GPU
	// (parallel efficiency < 25%).
	LimitedParallelism
)

// String returns the category name used in the paper's figures.
func (c Category) String() string {
	switch c {
	case MemoryIntensive:
		return "M-Intensive"
	case ComputeIntensive:
		return "C-Intensive"
	case LimitedParallelism:
		return "Lim-Parallel"
	}
	return fmt.Sprintf("Category(%d)", int(c))
}

// Pattern selects the synthetic memory access pattern.
type Pattern int

const (
	// PatStreaming touches the CTA's own region sequentially with perfect
	// coalescing (STREAM, MiniAMR).
	PatStreaming Pattern = iota
	// PatStrided walks the CTA's region with a fixed stride (SRAD, NN-Conv).
	PatStrided
	// PatStencil touches the CTA's region sequentially plus a halo in the
	// neighboring CTAs' regions (Lulesh, CoMD, CFD, Nekbone).
	PatStencil
	// PatIrregular scatters most accesses uniformly over the whole
	// footprint with poor coalescing (BFS, SSSP, MST, AMG).
	PatIrregular
	// PatHotRegion concentrates a fraction of accesses on a small shared
	// read-mostly region (Kmeans centroids, XSBench cross-section tables).
	PatHotRegion
	// PatComputeTile re-walks a small per-CTA tile with heavy compute
	// between accesses (GEMM-like compute-intensive kernels).
	PatComputeTile
)

// String returns the pattern name.
func (p Pattern) String() string {
	switch p {
	case PatStreaming:
		return "streaming"
	case PatStrided:
		return "strided"
	case PatStencil:
		return "stencil"
	case PatIrregular:
		return "irregular"
	case PatHotRegion:
		return "hot-region"
	case PatComputeTile:
		return "compute-tile"
	}
	return fmt.Sprintf("Pattern(%d)", int(p))
}

// Spec describes one synthetic application.
type Spec struct {
	Name     string
	Category Category
	Pattern  Pattern

	// Parallelism.
	CTAs        int // CTAs per kernel launch
	WarpsPerCTA int

	// Work per warp per kernel launch.
	MemOpsPerWarp int
	ComputePerMem int // warp compute instructions between memory ops
	KernelIters   int // convergence-loop launches of the kernel

	// Memory behavior. FootprintLines is the model working set in cache
	// lines; PaperFootprintMB records Table 4's footprint for reporting.
	FootprintLines   uint64
	PaperFootprintMB int
	WriteFraction    float64
	LinesPerOp       int     // distinct lines touched per warp memory op (coalescing)
	SharedFraction   float64 // accesses to the shared region
	SharedLines      uint64
	NeighborFraction float64 // accesses to the adjacent CTA's region
	RandomFraction   float64 // scattered accesses (see ScatterLines)
	// ScatterLines confines RandomFraction accesses to a dedicated region
	// (e.g. a graph algorithm's visited/distance arrays) instead of the
	// whole footprint; 0 scatters over everything. Keeping scatter traffic
	// out of the CTA-partitioned data prevents it from stealing first-touch
	// page bindings that belong to the owning CTA.
	ScatterLines uint64
	ReuseProb    float64 // chance of re-touching a recently used line
	Stride       uint64  // line stride for PatStrided (0 = 1)

	// WorkImbalance skews per-CTA work: CTA i executes MemOpsPerWarp scaled
	// by a deterministic factor in [1-W, 1+W]. The paper observes two
	// workloads whose unequal CTAs defeat coarse-grain distributed
	// scheduling (Section 5.4); this knob reproduces them and motivates the
	// dynamic (stealing) scheduler extension.
	WorkImbalance float64

	Seed uint64
}

// Validate reports the first inconsistency in the spec.
func (s *Spec) Validate() error {
	switch {
	case s.Name == "":
		return fmt.Errorf("workload: empty name")
	case s.CTAs <= 0:
		return fmt.Errorf("workload %s: CTAs = %d", s.Name, s.CTAs)
	case s.WarpsPerCTA <= 0:
		return fmt.Errorf("workload %s: WarpsPerCTA = %d", s.Name, s.WarpsPerCTA)
	case s.MemOpsPerWarp <= 0:
		return fmt.Errorf("workload %s: MemOpsPerWarp = %d", s.Name, s.MemOpsPerWarp)
	case s.ComputePerMem < 0:
		return fmt.Errorf("workload %s: ComputePerMem = %d", s.Name, s.ComputePerMem)
	case s.KernelIters <= 0:
		return fmt.Errorf("workload %s: KernelIters = %d", s.Name, s.KernelIters)
	case s.LinesPerOp <= 0 || s.LinesPerOp > MaxLinesPerOp:
		return fmt.Errorf("workload %s: LinesPerOp = %d (max %d)", s.Name, s.LinesPerOp, MaxLinesPerOp)
	case s.FootprintLines < uint64(s.CTAs)+s.SharedLines+s.ScatterLines:
		return fmt.Errorf("workload %s: footprint %d lines too small for %d CTAs + %d shared + %d scatter",
			s.Name, s.FootprintLines, s.CTAs, s.SharedLines, s.ScatterLines)
	case s.WriteFraction < 0 || s.WriteFraction > 1:
		return fmt.Errorf("workload %s: WriteFraction = %v", s.Name, s.WriteFraction)
	case s.SharedFraction+s.NeighborFraction+s.RandomFraction > 1:
		return fmt.Errorf("workload %s: fractions sum to %v > 1",
			s.Name, s.SharedFraction+s.NeighborFraction+s.RandomFraction)
	case s.WorkImbalance < 0 || s.WorkImbalance > 1:
		return fmt.Errorf("workload %s: WorkImbalance = %v", s.Name, s.WorkImbalance)
	}
	return nil
}

// OpsForCTA returns the per-warp memory operation count of one CTA,
// applying the deterministic work-imbalance skew. The skew is a gradient
// over the CTA index space — CTA 0 does (1-W)x the nominal work and the
// last CTA (1+W)x — matching how imbalance arises in practice (triangular
// solves, refinement regions): correlated with position, which is exactly
// what defeats contiguous chunk scheduling. Uncorrelated per-CTA noise
// would average out over a chunk and never unbalance modules.
func (s *Spec) OpsForCTA(cta int) int {
	if s.WorkImbalance <= 0 || s.CTAs <= 1 {
		return s.MemOpsPerWarp
	}
	u := float64(cta) / float64(s.CTAs-1) // [0,1] across the index space
	f := 1 + s.WorkImbalance*(2*u-1)
	ops := int(float64(s.MemOpsPerWarp)*f + 0.5)
	if ops < 1 {
		ops = 1
	}
	return ops
}

// TotalWarps returns warps per kernel launch.
func (s *Spec) TotalWarps() int { return s.CTAs * s.WarpsPerCTA }

// TotalMemOps returns memory operations across all kernel launches,
// accounting for per-CTA work imbalance.
func (s *Spec) TotalMemOps() uint64 {
	if s.WorkImbalance <= 0 {
		return uint64(s.CTAs) * uint64(s.WarpsPerCTA) * uint64(s.MemOpsPerWarp) * uint64(s.KernelIters)
	}
	var total uint64
	for cta := 0; cta < s.CTAs; cta++ {
		total += uint64(s.OpsForCTA(cta))
	}
	return total * uint64(s.WarpsPerCTA) * uint64(s.KernelIters)
}

// ModelFootprintMB returns the model working set in MB.
func (s *Spec) ModelFootprintMB() float64 {
	return float64(s.FootprintLines) * float64(config.LineBytes) / float64(config.MB)
}

// Scaled returns a copy with per-warp work and footprint scaled by f, used
// to trade fidelity for simulation time. Parallelism (CTAs, warps) and
// locality structure are preserved. f must be positive.
func (s *Spec) Scaled(f float64) *Spec {
	if f <= 0 {
		panic(fmt.Sprintf("workload %s: non-positive scale %v", s.Name, f))
	}
	out := *s
	out.MemOpsPerWarp = maxInt(1, int(float64(s.MemOpsPerWarp)*f+0.5))
	if s.SharedLines > 0 {
		sh := uint64(float64(s.SharedLines)*f + 0.5)
		if sh < 64 {
			sh = 64
		}
		out.SharedLines = sh
	}
	if s.ScatterLines > 0 {
		sc := uint64(float64(s.ScatterLines)*f + 0.5)
		if sc < 64 {
			sc = 64
		}
		out.ScatterLines = sc
	}
	fp := uint64(float64(s.FootprintLines)*f + 0.5)
	min := uint64(s.CTAs)*2 + out.SharedLines + out.ScatterLines
	if fp < min {
		fp = min
	}
	out.FootprintLines = fp
	return &out
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
