package workload

import (
	"testing"
	"testing/quick"
)

func TestSuiteComposition(t *testing.T) {
	all := Suite()
	if len(all) != 48 {
		t.Fatalf("suite has %d applications, want 48 (Section 4)", len(all))
	}
	if got := len(MIntensive()); got != 17 {
		t.Errorf("M-Intensive count = %d, want 17 (Table 4)", got)
	}
	if got := len(CIntensive()); got != 16 {
		t.Errorf("C-Intensive count = %d, want 16", got)
	}
	if got := len(Limited()); got != 15 {
		t.Errorf("Limited-parallelism count = %d, want 15", got)
	}
	if got := len(HighParallelism()); got != 33 {
		t.Errorf("high-parallelism count = %d, want 33", got)
	}
	seen := map[string]bool{}
	for _, s := range all {
		if seen[s.Name] {
			t.Errorf("duplicate application name %q", s.Name)
		}
		seen[s.Name] = true
		if err := s.Validate(); err != nil {
			t.Errorf("spec %s invalid: %v", s.Name, err)
		}
	}
}

func TestTable4NamesPresent(t *testing.T) {
	// Every workload in Table 4 must exist with its published footprint.
	want := map[string]int{
		"AMG": 5430, "NN-Conv": 496, "BFS": 37, "CFD": 25, "CoMD": 385,
		"Kmeans": 216, "Lulesh1": 1891, "Lulesh2": 4309, "Lulesh3": 203,
		"MiniAMR": 5407, "MnCtct": 251, "MST": 73, "Nekbone1": 1746,
		"Nekbone2": 287, "Srad-v2": 96, "SSSP": 37, "Stream": 3072,
	}
	for name, mb := range want {
		s, err := ByName(name)
		if err != nil {
			t.Errorf("missing Table 4 workload %s: %v", name, err)
			continue
		}
		if s.Category != MemoryIntensive {
			t.Errorf("%s category = %v, want M-Intensive", name, s.Category)
		}
		if s.PaperFootprintMB != mb {
			t.Errorf("%s paper footprint = %d MB, want %d", name, s.PaperFootprintMB, mb)
		}
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("nope"); err == nil {
		t.Fatalf("ByName accepted an unknown workload")
	}
}

func TestLimitedParallelismCannotFill256SMs(t *testing.T) {
	// 256 SMs x 64 warps = 16384 warp slots. Limited-parallelism apps must
	// leave most of them empty; high-parallelism apps must oversubscribe.
	for _, s := range Limited() {
		if w := s.TotalWarps(); w > 16384/4 {
			t.Errorf("%s has %d warps; too parallel for its category", s.Name, w)
		}
	}
	for _, s := range HighParallelism() {
		if w := s.TotalWarps(); w < 4096 {
			t.Errorf("%s has only %d warps; cannot fill a 256-SM GPU", s.Name, w)
		}
	}
}

func TestStreamDeterminism(t *testing.T) {
	spec, err := ByName("BFS")
	if err != nil {
		t.Fatal(err)
	}
	var a, b []uint64
	for _, dst := range []*[]uint64{&a, &b} {
		st := NewStream(spec, 7, 3)
		var op Op
		for st.Next(&op) {
			*dst = append(*dst, op.Lines[:op.NumLines]...)
		}
	}
	if len(a) == 0 {
		t.Fatalf("empty stream")
	}
	if len(a) != len(b) {
		t.Fatalf("stream lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("streams diverge at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestStreamOpCount(t *testing.T) {
	spec, err := ByName("Stream")
	if err != nil {
		t.Fatal(err)
	}
	st := NewStream(spec, 0, 0)
	var op Op
	n := 0
	for st.Next(&op) {
		n++
		if op.NumLines != spec.LinesPerOp {
			t.Fatalf("op %d touches %d lines, want %d", n, op.NumLines, spec.LinesPerOp)
		}
		if op.Compute != spec.ComputePerMem {
			t.Fatalf("op %d compute = %d, want %d", n, op.Compute, spec.ComputePerMem)
		}
	}
	if n != spec.MemOpsPerWarp {
		t.Fatalf("stream yielded %d ops, want %d", n, spec.MemOpsPerWarp)
	}
}

func TestStreamingCTAsTouchDisjointRegions(t *testing.T) {
	spec, err := ByName("Stream")
	if err != nil {
		t.Fatal(err)
	}
	touched := func(cta int) map[uint64]bool {
		m := map[uint64]bool{}
		for w := 0; w < spec.WarpsPerCTA; w++ {
			st := NewStream(spec, cta, w)
			var op Op
			for st.Next(&op) {
				for _, l := range op.Lines[:op.NumLines] {
					m[l] = true
				}
			}
		}
		return m
	}
	a := touched(10)
	b := touched(500)
	for l := range a {
		if b[l] {
			t.Fatalf("CTAs 10 and 500 share line %d under pure streaming", l)
		}
	}
}

func TestStencilNeighborsShareLines(t *testing.T) {
	spec, err := ByName("CoMD")
	if err != nil {
		t.Fatal(err)
	}
	touched := func(cta int) map[uint64]bool {
		m := map[uint64]bool{}
		for w := 0; w < spec.WarpsPerCTA; w++ {
			st := NewStream(spec, cta, w)
			var op Op
			for st.Next(&op) {
				for _, l := range op.Lines[:op.NumLines] {
					m[l] = true
				}
			}
		}
		return m
	}
	a := touched(100)
	b := touched(101)
	shared := 0
	for l := range a {
		if b[l] {
			shared++
		}
	}
	if shared == 0 {
		t.Fatalf("adjacent stencil CTAs share no lines")
	}
}

// Property: every generated line address is inside the footprint, for every
// application in the suite.
func TestAddressesInRangeProperty(t *testing.T) {
	f := func(appIdx uint8, cta uint16, warp uint8) bool {
		all := Suite()
		spec := all[int(appIdx)%len(all)]
		c := int(cta) % spec.CTAs
		w := int(warp) % spec.WarpsPerCTA
		st := NewStream(spec, c, w)
		var op Op
		for st.Next(&op) {
			for _, l := range op.Lines[:op.NumLines] {
				if l >= spec.FootprintLines {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestScaled(t *testing.T) {
	spec, err := ByName("MiniAMR")
	if err != nil {
		t.Fatal(err)
	}
	half := spec.Scaled(0.5)
	if half.MemOpsPerWarp != spec.MemOpsPerWarp/2 {
		t.Errorf("scaled ops = %d, want %d", half.MemOpsPerWarp, spec.MemOpsPerWarp/2)
	}
	if half.CTAs != spec.CTAs {
		t.Errorf("Scaled changed parallelism")
	}
	if half.FootprintLines >= spec.FootprintLines {
		t.Errorf("Scaled did not shrink footprint")
	}
	if err := half.Validate(); err != nil {
		t.Errorf("scaled spec invalid: %v", err)
	}
	// Tiny scales never produce an invalid spec.
	tiny := spec.Scaled(0.001)
	if err := tiny.Validate(); err != nil {
		t.Errorf("tiny scale invalid: %v", err)
	}
	if tiny.MemOpsPerWarp < 1 {
		t.Errorf("tiny scale produced %d ops", tiny.MemOpsPerWarp)
	}
}

func TestScaledRejectsNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("Scaled(0) did not panic")
		}
	}()
	spec := Suite()[0]
	spec.Scaled(0)
}

func TestTotalMemOps(t *testing.T) {
	s := Spec{CTAs: 10, WarpsPerCTA: 4, MemOpsPerWarp: 8, KernelIters: 3}
	if got := s.TotalMemOps(); got != 960 {
		t.Fatalf("TotalMemOps = %d, want 960", got)
	}
}

func TestWriteFractionApproximatelyHonored(t *testing.T) {
	spec, err := ByName("Streamcluster") // write fraction 0.45
	if err != nil {
		t.Fatal(err)
	}
	writes, total := 0, 0
	for c := 0; c < 32; c++ {
		st := NewStream(spec, c, 0)
		var op Op
		for st.Next(&op) {
			total++
			if op.Write {
				writes++
			}
		}
	}
	got := float64(writes) / float64(total)
	if got < 0.35 || got > 0.55 {
		t.Fatalf("observed write fraction %v, want ~0.45", got)
	}
}

func TestCategoryStrings(t *testing.T) {
	if MemoryIntensive.String() != "M-Intensive" ||
		ComputeIntensive.String() != "C-Intensive" ||
		LimitedParallelism.String() != "Lim-Parallel" {
		t.Fatalf("category strings wrong")
	}
	for _, p := range []Pattern{PatStreaming, PatStrided, PatStencil, PatIrregular, PatHotRegion, PatComputeTile} {
		if p.String() == "" {
			t.Fatalf("pattern %d has empty string", p)
		}
	}
}

func TestWorkImbalance(t *testing.T) {
	spec, err := ByName("MST")
	if err != nil {
		t.Fatal(err)
	}
	if spec.WorkImbalance <= 0 {
		t.Fatalf("MST should carry work imbalance")
	}
	// Per-CTA op counts vary but stay within [1-W, 1+W] of the nominal.
	min, max := spec.MemOpsPerWarp, spec.MemOpsPerWarp
	for cta := 0; cta < spec.CTAs; cta++ {
		ops := spec.OpsForCTA(cta)
		if ops < min {
			min = ops
		}
		if ops > max {
			max = ops
		}
	}
	if min == max {
		t.Fatalf("imbalanced workload has uniform per-CTA work (%d)", min)
	}
	lo := float64(spec.MemOpsPerWarp) * (1 - spec.WorkImbalance)
	hi := float64(spec.MemOpsPerWarp) * (1 + spec.WorkImbalance)
	if float64(min) < lo-1 || float64(max) > hi+1 {
		t.Fatalf("per-CTA ops [%d,%d] outside [%v,%v]", min, max, lo, hi)
	}
	// TotalMemOps matches what the streams actually produce.
	var produced uint64
	var op Op
	for cta := 0; cta < spec.CTAs; cta++ {
		st := NewStream(spec, cta, 0)
		for st.Next(&op) {
			produced++
		}
	}
	produced *= uint64(spec.WarpsPerCTA) * uint64(spec.KernelIters)
	if produced != spec.TotalMemOps() {
		t.Fatalf("TotalMemOps = %d, streams produce %d", spec.TotalMemOps(), produced)
	}
}

func TestOpsForCTAUniformWithoutImbalance(t *testing.T) {
	spec, err := ByName("Stream")
	if err != nil {
		t.Fatal(err)
	}
	for cta := 0; cta < 16; cta++ {
		if got := spec.OpsForCTA(cta); got != spec.MemOpsPerWarp {
			t.Fatalf("OpsForCTA(%d) = %d, want %d", cta, got, spec.MemOpsPerWarp)
		}
	}
}
