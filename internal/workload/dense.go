package workload

import "fmt"

// buildDense constructs the dense-linear-algebra extension family: a tiled
// GEMM and a flash-style attention kernel with real 2-D reuse structure.
// They are deliberately kept out of the 48-application Suite so every paper
// figure keeps its exact population; experiment drivers that study the
// scheduler×placement tension pull them from Dense instead.
//
// Both are LinearInit: their operands are written by a linear sweep (matrix
// fill, QKV projection) before the first compute kernel, so under
// first-touch placement the pages of a panel belong to the init sweep's
// contiguous chunks — a layout that matches neither the panel's consumers
// nor the tile owners. That mismatch is the mechanism by which distributed
// scheduling + first touch, tuned for the paper's 1-D suite, loses to the
// centralized/interleave baseline here.
func buildDense() []Spec {
	specs := []Spec{
		{
			// 4096^3 fp32 GEMM with 128x128 output tiles: a 32x32 CTA
			// grid. CTA (x, y) accumulates C tile (x, y) from the A panel
			// row y shares and the B panel column x shares (256 KB each).
			Name: "GEMM2D-4K", Category: ComputeIntensive, Pattern: PatGEMM2D,
			GridW: 32, GridH: 32, CTAs: 1024, WarpsPerCTA: 4,
			MemOpsPerWarp: 48, ComputePerMem: 6, KernelIters: 2,
			FootprintLines:   lines(26),
			PaperFootprintMB: 192,
			RowPanelLines:    lines(0.125),
			ColPanelLines:    lines(0.125),
			RowPanelFraction: 0.42, ColPanelFraction: 0.42,
			WriteFraction: 0.08, LinesPerOp: 1, ReuseProb: 0.05,
			LinearInit: true,
		},
		{
			// Flash-style attention: 32 heads x 48 query blocks. Each CTA
			// streams its head's 384 KB K/V panel against a per-CTA query
			// block; heads (grid columns) are the natural placement grain.
			Name: "FlashAttn-32H", Category: ComputeIntensive, Pattern: PatAttention,
			GridW: 32, GridH: 48, CTAs: 1536, WarpsPerCTA: 4,
			MemOpsPerWarp: 40, ComputePerMem: 10, KernelIters: 2,
			FootprintLines:   lines(21),
			PaperFootprintMB: 144,
			ColPanelLines:    lines(0.375),
			ColPanelFraction: 0.6,
			WriteFraction:    0.15, LinesPerOp: 1, ReuseProb: 0.1,
			LinearInit: true,
		},
	}
	for i := range specs {
		specs[i].Seed = uint64(100+i)*0x9e3779b97f4a7c15 + 1
		if err := specs[i].Validate(); err != nil {
			panic(fmt.Sprintf("workload: dense entry %d: %v", i, err))
		}
	}
	return specs
}

var dense = buildDense()

// Dense returns the dense-linear-algebra extension workloads (tiled GEMM
// and flash attention). Callers must not modify the returned specs.
func Dense() []*Spec {
	out := make([]*Spec, len(dense))
	for i := range dense {
		out[i] = &dense[i]
	}
	return out
}
