package workload

import (
	"reflect"
	"testing"
)

func TestSpecFingerprintDistinguishesSpecs(t *testing.T) {
	a, err := ByName("CFD")
	if err != nil {
		t.Fatal(err)
	}
	b, err := ByName("CoMD")
	if err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint() != a.Fingerprint() {
		t.Fatal("fingerprint not deterministic")
	}
	if a.Fingerprint() == b.Fingerprint() {
		t.Fatal("distinct specs share a fingerprint")
	}
	// A custom spec reusing a registry name must not collide with it.
	custom := *a
	custom.MemOpsPerWarp *= 2
	if custom.Fingerprint() == a.Fingerprint() {
		t.Fatal("fingerprint keyed on name only; parameter change not detected")
	}
}

// TestSpecHasNoReferenceFields locks in the property concurrent execution
// and Scaled rely on: Spec is a pure value type, so a struct copy is a deep
// copy, specs can be shared read-only across worker goroutines, and %#v
// renders the whole workload description for fingerprinting.
func TestSpecHasNoReferenceFields(t *testing.T) {
	typ := reflect.TypeOf(Spec{})
	var walk func(reflect.Type, string)
	walk = func(typ reflect.Type, path string) {
		switch typ.Kind() {
		case reflect.Ptr, reflect.Slice, reflect.Map, reflect.Chan, reflect.Func, reflect.Interface, reflect.UnsafePointer:
			t.Errorf("%s is a reference type (%v); Scaled's struct copy would alias it", path, typ.Kind())
		case reflect.Struct:
			for i := 0; i < typ.NumField(); i++ {
				f := typ.Field(i)
				walk(f.Type, path+"."+f.Name)
			}
		case reflect.Array:
			walk(typ.Elem(), path+"[]")
		}
	}
	walk(typ, "Spec")
}

// TestScaledDoesNotAliasRegistry asserts that mutating a scaled spec — as a
// worker goroutine's job setup does — can never reach back into the shared
// package-level suite registry.
func TestScaledDoesNotAliasRegistry(t *testing.T) {
	orig, err := ByName("SSSP")
	if err != nil {
		t.Fatal(err)
	}
	snapshot := *orig // value copy of the registry entry

	scaled := orig.Scaled(0.5)
	if scaled == orig {
		t.Fatal("Scaled returned the registry pointer")
	}
	// Clobber every field of the scaled copy.
	*scaled = Spec{Name: "clobbered", CTAs: 1, WarpsPerCTA: 1, MemOpsPerWarp: 1,
		KernelIters: 1, FootprintLines: 2, LinesPerOp: 1}

	reread, err := ByName("SSSP")
	if err != nil {
		t.Fatal(err)
	}
	if reread != orig {
		t.Fatal("registry no longer returns the same entry")
	}
	if !reflect.DeepEqual(*reread, snapshot) {
		t.Fatalf("registry entry changed after mutating a scaled copy:\nbefore: %+v\nafter:  %+v", snapshot, *reread)
	}

	// Suite() hands out pointers into the registry; scaling one of those and
	// mutating must leave the whole suite untouched.
	before := make([]Spec, 0, len(suite))
	for _, s := range Suite() {
		before = append(before, *s)
	}
	for _, s := range Suite() {
		sc := s.Scaled(0.25)
		sc.Seed = 999999
		sc.FootprintLines = 777777
	}
	for i, s := range Suite() {
		if !reflect.DeepEqual(*s, before[i]) {
			t.Fatalf("suite entry %d (%s) mutated via a scaled copy", i, s.Name)
		}
	}
}
