package workload

import (
	"fmt"
	"sort"
)

// lines converts megabytes to 128-byte cache lines.
func lines(mb float64) uint64 { return uint64(mb * 8192) }

// mi builds a memory-intensive spec with the suite-wide defaults.
func mi(name string, paperMB int, p Pattern, fpMB float64, ops, cpm int, wf float64, lpo, iters int) Spec {
	return Spec{
		Name: name, Category: MemoryIntensive, Pattern: p,
		CTAs: 2048, WarpsPerCTA: 4,
		MemOpsPerWarp: ops, ComputePerMem: cpm, KernelIters: iters,
		FootprintLines: lines(fpMB), PaperFootprintMB: paperMB,
		WriteFraction: wf, LinesPerOp: lpo,
	}
}

// ci builds a compute-intensive spec.
func ci(name string, p Pattern, fpMB float64, ops, cpm int, wf float64, lpo, iters int) Spec {
	return Spec{
		Name: name, Category: ComputeIntensive, Pattern: p,
		CTAs: 2048, WarpsPerCTA: 4,
		MemOpsPerWarp: ops, ComputePerMem: cpm, KernelIters: iters,
		FootprintLines: lines(fpMB),
		WriteFraction:  wf, LinesPerOp: lpo,
	}
}

// lp builds a limited-parallelism spec.
func lp(name string, p Pattern, fpMB float64, ctas, warps, ops, cpm int, wf float64, lpo, iters int) Spec {
	return Spec{
		Name: name, Category: LimitedParallelism, Pattern: p,
		CTAs: ctas, WarpsPerCTA: warps,
		MemOpsPerWarp: ops, ComputePerMem: cpm, KernelIters: iters,
		FootprintLines: lines(fpMB),
		WriteFraction:  wf, LinesPerOp: lpo,
	}
}

// buildSuite constructs the 48-application suite. Parameters are calibrated
// so that category-level behavior matches the paper: memory-intensive
// applications saturate DRAM and are sensitive to inter-GPM bandwidth,
// compute-intensive applications are bound by SM issue throughput, and
// limited-parallelism applications cannot fill 256 SMs.
func buildSuite() []Spec {
	specs := []Spec{}

	// --- 17 memory-intensive applications (Table 4). ---
	add := func(s Spec, tweak func(*Spec)) {
		if tweak != nil {
			tweak(&s)
		}
		s.Seed = uint64(len(specs))*0x9e3779b97f4a7c15 + 1
		specs = append(specs, s)
	}

	add(mi("NN-Conv", 496, PatStrided, 32, 32, 4, 0.20, 2, 2), func(s *Spec) { s.Stride = 4 })
	add(mi("Stream", 3072, PatStreaming, 48, 48, 2, 0.33, 1, 2), nil)
	add(mi("Srad-v2", 96, PatStrided, 12, 24, 6, 0.30, 2, 3), func(s *Spec) {
		s.Stride = 8
		s.NeighborFraction = 0.10
	})
	add(mi("Lulesh1", 1891, PatStencil, 24, 24, 8, 0.25, 2, 2), func(s *Spec) { s.NeighborFraction = 0.20 })
	add(mi("SSSP", 37, PatIrregular, 8, 24, 16, 0.15, 2, 2), func(s *Spec) {
		s.RandomFraction = 0.22
		s.SharedFraction = 0.25   // power-law hub vertices
		s.ScatterLines = lines(1) // distance array
		s.SharedLines = lines(1)
		s.ReuseProb = 0.10
	})
	add(mi("Lulesh2", 4309, PatStencil, 32, 32, 8, 0.25, 2, 2), func(s *Spec) { s.NeighborFraction = 0.20 })
	add(mi("MiniAMR", 5407, PatStreaming, 40, 40, 6, 0.30, 1, 2), nil)
	add(mi("Kmeans", 216, PatHotRegion, 24, 24, 10, 0.10, 1, 3), func(s *Spec) {
		s.SharedFraction = 0.40
		s.SharedLines = lines(2)
	})
	add(mi("Nekbone1", 1746, PatStencil, 24, 24, 12, 0.20, 1, 2), func(s *Spec) { s.NeighborFraction = 0.15 })
	add(mi("Lulesh3", 203, PatIrregular, 8, 16, 16, 0.25, 2, 2), func(s *Spec) {
		s.RandomFraction = 0.20
		s.SharedFraction = 0.15   // shared mesh connectivity
		s.ScatterLines = lines(1) // gather/scatter indices
		s.SharedLines = lines(1)
	})
	add(mi("BFS", 37, PatIrregular, 6, 16, 14, 0.20, 2, 3), func(s *Spec) {
		s.RandomFraction = 0.25
		s.SharedFraction = 0.25   // frontier hubs
		s.ScatterLines = lines(1) // visited bitmap + frontier
		s.SharedLines = lines(1)
		s.ReuseProb = 0.10
	})
	add(mi("MnCtct", 251, PatIrregular, 10, 16, 16, 0.25, 2, 2), func(s *Spec) {
		s.RandomFraction = 0.18
		s.SharedFraction = 0.15      // contact surface lists
		s.ScatterLines = lines(1.25) // contact pair targets
		s.SharedLines = lines(1)
		s.NeighborFraction = 0.10
	})
	add(mi("Nekbone2", 287, PatStencil, 12, 16, 12, 0.20, 1, 3), func(s *Spec) { s.NeighborFraction = 0.15 })
	add(mi("AMG", 5430, PatIrregular, 40, 24, 12, 0.20, 2, 2), func(s *Spec) {
		s.RandomFraction = 0.18
		s.SharedFraction = 0.15   // coarse-grid levels
		s.ScatterLines = lines(8) // matrix column indices
		s.SharedLines = lines(2)
	})
	add(mi("MST", 73, PatIrregular, 8, 24, 16, 0.15, 2, 2), func(s *Spec) {
		s.CTAs = 1024
		s.RandomFraction = 0.22
		s.SharedFraction = 0.25   // component roots
		s.ScatterLines = lines(1) // union-find parents
		s.SharedLines = lines(1)
		s.ReuseProb = 0.15
		s.WorkImbalance = 0.6 // component sizes vary wildly
	})
	add(mi("CFD", 25, PatStencil, 6, 16, 8, 0.25, 2, 4), func(s *Spec) {
		s.NeighborFraction = 0.25
		s.ReuseProb = 0.10
	})
	add(mi("CoMD", 385, PatStencil, 5, 16, 10, 0.20, 2, 4), func(s *Spec) {
		s.NeighborFraction = 0.30
		s.ReuseProb = 0.15
	})

	// --- 16 compute-intensive applications. ---
	add(ci("SP", PatStencil, 8, 16, 10, 0.25, 2, 4), func(s *Spec) { s.NeighborFraction = 0.30 })
	add(ci("XSBench", PatHotRegion, 16, 12, 28, 0.05, 2, 3), func(s *Spec) {
		s.SharedFraction = 0.60
		s.SharedLines = lines(1)
		s.RandomFraction = 0.15
		s.ScatterLines = lines(1.5) // nuclide grid lookups
	})
	add(ci("GEMM", PatComputeTile, 12, 12, 64, 0.15, 1, 2), nil)
	add(ci("LavaMD", PatStencil, 8, 10, 48, 0.20, 1, 2), func(s *Spec) { s.NeighborFraction = 0.25 })
	add(ci("Hotspot", PatStencil, 8, 12, 40, 0.25, 1, 3), func(s *Spec) { s.NeighborFraction = 0.20 })
	add(ci("Backprop", PatStreaming, 12, 12, 36, 0.30, 1, 2), nil)
	add(ci("Pathfinder", PatStreaming, 10, 12, 32, 0.25, 1, 2), nil)
	add(ci("BlackScholes", PatStreaming, 12, 12, 48, 0.25, 1, 2), nil)
	add(ci("Histo", PatHotRegion, 8, 12, 32, 0.50, 1, 2), func(s *Spec) {
		s.SharedFraction = 0.50
		s.SharedLines = lines(1)
	})
	add(ci("MD5Hash", PatComputeTile, 4, 8, 96, 0.05, 1, 2), nil)
	add(ci("Raytracer", PatIrregular, 12, 10, 40, 0.10, 2, 2), func(s *Spec) {
		s.RandomFraction = 0.18
		s.SharedFraction = 0.20   // BVH top levels
		s.ScatterLines = lines(3) // leaf primitive scatter
		s.SharedLines = lines(1)
	})
	add(ci("Leukocyte", PatStencil, 8, 10, 56, 0.15, 1, 2), func(s *Spec) { s.NeighborFraction = 0.20 })
	add(ci("Heartwall", PatStencil, 8, 10, 48, 0.20, 1, 2), func(s *Spec) { s.NeighborFraction = 0.20 })
	add(ci("Myocyte", PatComputeTile, 4, 8, 80, 0.10, 1, 2), nil)
	add(ci("ParticleFilter", PatHotRegion, 8, 10, 36, 0.20, 1, 2), func(s *Spec) {
		s.SharedFraction = 0.35
		s.SharedLines = lines(1)
	})
	add(ci("FFT", PatStrided, 12, 12, 40, 0.30, 1, 2), func(s *Spec) { s.Stride = 64 })

	// --- 15 limited-parallelism applications. ---
	add(lp("DWT", PatStreaming, 4, 32, 16, 48, 10, 0.30, 1, 2), nil)
	add(lp("NN", PatStreaming, 3, 24, 16, 32, 6, 0.10, 1, 3), nil)
	add(lp("Streamcluster", PatStreaming, 8, 64, 24, 48, 8, 0.45, 1, 3), nil)
	add(lp("Gaussian", PatStrided, 4, 48, 16, 32, 12, 0.30, 1, 3), func(s *Spec) { s.Stride = 16 })
	add(lp("NW", PatStencil, 4, 32, 16, 32, 10, 0.30, 1, 3), func(s *Spec) { s.NeighborFraction = 0.30 })
	add(lp("Hybridsort", PatIrregular, 8, 64, 24, 32, 8, 0.35, 2, 2), func(s *Spec) {
		s.RandomFraction = 0.20
		s.ScatterLines = lines(2) // bucket scatter
		s.WorkImbalance = 0.6     // bucket sizes are data dependent
	})
	add(lp("Mummer", PatIrregular, 8, 48, 16, 32, 16, 0.05, 2, 2), func(s *Spec) {
		s.RandomFraction = 0.25
		s.SharedFraction = 0.20   // suffix-tree upper levels
		s.ScatterLines = lines(2) // suffix links
		s.SharedLines = lines(1)
	})
	add(lp("BTree", PatIrregular, 6, 32, 16, 24, 16, 0.05, 2, 2), func(s *Spec) {
		s.RandomFraction = 0.30
		s.SharedFraction = 0.20     // root and inner nodes
		s.ScatterLines = lines(1.5) // leaf lookups
		s.SharedLines = lines(0.5)
		s.ReuseProb = 0.15
	})
	add(lp("Lud", PatStencil, 4, 40, 16, 32, 14, 0.25, 1, 3), func(s *Spec) { s.NeighborFraction = 0.20 })
	add(lp("Cell", PatStencil, 6, 64, 24, 32, 12, 0.25, 1, 2), func(s *Spec) { s.NeighborFraction = 0.25 })
	add(lp("CRC", PatComputeTile, 2, 48, 16, 24, 64, 0.05, 1, 2), nil)
	add(lp("SobolQRNG", PatStreaming, 6, 64, 16, 24, 24, 0.50, 1, 2), nil)
	add(lp("ScalarProd", PatStreaming, 6, 56, 16, 32, 16, 0.10, 1, 2), nil)
	add(lp("BilateralFilter", PatStencil, 6, 64, 24, 24, 32, 0.25, 1, 2), func(s *Spec) { s.NeighborFraction = 0.20 })
	add(lp("QRDecomp", PatStrided, 4, 32, 16, 32, 24, 0.25, 1, 3), func(s *Spec) { s.Stride = 8 })

	for i := range specs {
		if err := specs[i].Validate(); err != nil {
			panic(fmt.Sprintf("workload: suite entry %d: %v", i, err))
		}
	}
	return specs
}

var suite = buildSuite()

// Suite returns all 48 applications. Callers must not modify the returned
// specs; use Spec.Scaled or copy first.
func Suite() []*Spec {
	out := make([]*Spec, len(suite))
	for i := range suite {
		out[i] = &suite[i]
	}
	return out
}

// ByCategory returns the applications in the given category, preserving the
// paper's presentation order.
func ByCategory(c Category) []*Spec {
	var out []*Spec
	for i := range suite {
		if suite[i].Category == c {
			out = append(out, &suite[i])
		}
	}
	return out
}

// MIntensive returns the 17 memory-intensive applications of Table 4.
func MIntensive() []*Spec { return ByCategory(MemoryIntensive) }

// CIntensive returns the 16 compute-intensive applications.
func CIntensive() []*Spec { return ByCategory(ComputeIntensive) }

// Limited returns the 15 limited-parallelism applications.
func Limited() []*Spec { return ByCategory(LimitedParallelism) }

// HighParallelism returns the 33 applications that fill a 256-SM GPU.
func HighParallelism() []*Spec {
	return append(MIntensive(), CIntensive()...)
}

// ByName returns the named application — searching the 48-app suite and the
// dense extension family — or an error naming the alternatives.
func ByName(name string) (*Spec, error) {
	for i := range suite {
		if suite[i].Name == name {
			return &suite[i], nil
		}
	}
	for i := range dense {
		if dense[i].Name == name {
			return &dense[i], nil
		}
	}
	names := Names()
	sort.Strings(names)
	return nil, fmt.Errorf("workload: unknown application %q (have %v)", name, names)
}

// Names returns all application names: the 48-app suite in order, then the
// dense extension family.
func Names() []string {
	out := make([]string, 0, len(suite)+len(dense))
	for i := range suite {
		out = append(out, suite[i].Name)
	}
	for i := range dense {
		out = append(out, dense[i].Name)
	}
	return out
}
