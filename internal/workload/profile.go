package workload

// AccessProfile is the closed-form summary of a spec's access stream that
// the analytic estimator (internal/analytic) consumes: how much work one
// kernel launch performs and where its line accesses land, derived from the
// same parameters that drive Stream. Keeping the derivation here, next to
// genBase, is what keeps the estimator and the event engine reading one
// description of the workload instead of two.
type AccessProfile struct {
	// MemOpsPerKernel is warp memory operations per kernel launch
	// (imbalance-adjusted mean across CTAs).
	MemOpsPerKernel float64
	// LineAccesses is cache-line accesses per kernel launch.
	LineAccesses float64
	// MeanOpsPerWarp is the imbalance-adjusted mean of per-warp ops in one
	// kernel.
	MeanOpsPerWarp float64

	// Class shares of line accesses, summing to 1: the CTA's own region,
	// the neighbor halo, the shared hot region, the scatter region,
	// uniform accesses over the whole footprint, and the row/column panel
	// streams of 2-D grid workloads. Lane divergence (PatIrregular with
	// LinesPerOp > 1) is folded in: diverged lanes scatter, so their lines
	// count toward Scatter/Uniform rather than the base line's class.
	Own, Neighbor, Shared, Scatter, Uniform float64
	RowPanel, ColPanel                      float64

	// Region geometry, in lines.
	OwnRegionLines      uint64 // one CTA's partition of the footprint
	NeighborWindowLines uint64 // the halo edge window (regionLen/8)
	SharedRegionLines   uint64
	ScatterRegionLines  uint64
	FootprintLines      uint64
	RowPanelLines       uint64 // one grid row's shared panel
	ColPanelLines       uint64 // one grid column's shared panel
	RowPanelWindow      uint64 // panel lines a kernel's CTAs can reach (see Spec.PanelWindows)
	ColPanelWindow      uint64

	// 2-D grid shape (zero for 1-D workloads).
	GridW, GridH int

	// Own-region walk structure: the effective stride between consecutive
	// ops (1 for sequential patterns) and, for PatComputeTile, the tile the
	// warp re-walks (0 otherwise).
	StrideLines uint64
	TileLines   uint64

	ReuseProb     float64
	WriteFraction float64
	LinesPerOp    int
	KernelIters   int
}

// Profile derives the spec's access profile. The spec must be valid.
func (s *Spec) Profile() AccessProfile {
	p := AccessProfile{
		ReuseProb:      s.ReuseProb,
		WriteFraction:  s.WriteFraction,
		LinesPerOp:     s.LinesPerOp,
		KernelIters:    s.KernelIters,
		FootprintLines: s.FootprintLines,
	}
	p.MemOpsPerKernel = float64(s.TotalMemOps()) / float64(s.KernelIters)
	p.LineAccesses = p.MemOpsPerKernel * float64(s.LinesPerOp)
	p.MeanOpsPerWarp = p.MemOpsPerKernel / float64(s.TotalWarps())

	// Region geometry mirrors Stream.Init.
	_, _, _, perCTA := s.regionGeometry()
	p.OwnRegionLines = perCTA
	p.NeighborWindowLines = maxU64(1, perCTA/8)
	p.SharedRegionLines = s.SharedLines
	p.ScatterRegionLines = s.ScatterLines
	p.RowPanelLines = s.RowPanelLines
	p.ColPanelLines = s.ColPanelLines
	p.RowPanelWindow, p.ColPanelWindow = s.PanelWindows()
	p.GridW, p.GridH = s.GridW, s.GridH

	// Base-line class mix mirrors genBase's roll order. A SharedFraction
	// with no shared region falls through to the neighbor branch, exactly
	// as the stream generator's guard makes it do.
	sh, nb, rnd := s.SharedFraction, s.NeighborFraction, s.RandomFraction
	if s.SharedLines == 0 {
		nb += sh
		sh = 0
	}
	rp, cp := s.RowPanelFraction, s.ColPanelFraction
	own := 1 - sh - nb - rnd - rp - cp
	if own < 0 {
		own = 0
	}
	var sc, uni float64
	if s.ScatterLines > 0 {
		sc = rnd
	} else {
		uni = rnd
	}

	// Lane divergence: for PatIrregular only the base line follows the
	// class mix; the remaining LinesPerOp-1 lines scatter (into the scatter
	// region when one exists, over the whole footprint otherwise).
	if s.Pattern == PatIrregular && s.LinesPerOp > 1 {
		w := 1 / float64(s.LinesPerOp)
		div := 1 - w
		sh, nb, own, sc, uni, rp, cp = sh*w, nb*w, own*w, sc*w, uni*w, rp*w, cp*w
		if s.ScatterLines > 0 {
			sc += div
		} else {
			uni += div
		}
	}
	p.Shared, p.Neighbor, p.Own, p.Scatter, p.Uniform = sh, nb, own, sc, uni
	p.RowPanel, p.ColPanel = rp, cp

	// Own-region walk structure.
	p.StrideLines = 1
	switch s.Pattern {
	case PatStrided:
		if s.Stride > 0 {
			p.StrideLines = s.Stride
		}
	case PatComputeTile:
		p.TileLines = maxU64(1, perCTA/8)
	}
	return p
}

// ChunkImbalance returns the load skew a contiguous chunk partition of the
// CTA index space suffers under this spec's work-imbalance gradient: the
// busiest chunk's memory operations relative to the mean chunk, >= 1. It is
// the slowdown factor of a distributed (chunked) scheduler with no
// stealing, since modules finish when their own chunk drains.
func (s *Spec) ChunkImbalance(chunks int) float64 {
	if chunks <= 1 || s.WorkImbalance <= 0 || s.CTAs <= 1 {
		return 1
	}
	if chunks > s.CTAs {
		chunks = s.CTAs
	}
	per := (s.CTAs + chunks - 1) / chunks
	var total, maxChunk float64
	for c := 0; c < chunks; c++ {
		var ops float64
		for i := c * per; i < (c+1)*per && i < s.CTAs; i++ {
			ops += float64(s.OpsForCTA(i))
		}
		total += ops
		if ops > maxChunk {
			maxChunk = ops
		}
	}
	if total == 0 {
		return 1
	}
	return maxChunk / (total / float64(chunks))
}
