package workload

// MaxLinesPerOp bounds the number of distinct cache lines one warp memory
// operation can touch (a fully diverged warp on 128-byte lines).
const MaxLinesPerOp = 8

// Op is one warp-level step: Compute instructions followed by a memory
// operation touching NumLines cache lines.
type Op struct {
	Compute  int
	NumLines int
	Lines    [MaxLinesPerOp]uint64
	Write    bool
}

// rng is a splitmix64 generator: tiny, fast, allocation-free and
// deterministic across platforms, which keeps access streams reproducible.
type rng struct{ s uint64 }

func (r *rng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// intn returns a uniform value in [0, n). n must be positive.
func (r *rng) intn(n uint64) uint64 { return r.next() % n }

// chance returns true with probability p.
func (r *rng) chance(p float64) bool {
	if p <= 0 {
		return false
	}
	return float64(r.next()>>11)*(1.0/(1<<53)) < p
}

// Stream generates the deterministic access stream of one warp within one
// kernel launch. The stream depends only on (spec seed, CTA, warp), not on
// the kernel iteration: convergence-loop launches replay the same accesses,
// giving the cross-kernel locality of Figure 12.
type Stream struct {
	spec *Spec
	cta  int
	warp int // warp index within the CTA
	op   int
	ops  int // this CTA's per-warp op count (work imbalance)
	r    rng

	regionStart uint64
	regionLen   uint64
	ownBase     uint64 // first own-region line; everything below is reserved
	rowPanel    uint64 // base of this CTA's row panel (2-D grids)
	colPanel    uint64 // base of this CTA's column panel
	rowPhase    uint64 // k-loop skew within the row panel (PatGEMM2D)
	colPhase    uint64 // k-loop skew within the column panel

	recent  [8]uint64
	nRecent int
}

// NewStream creates the access stream for warp w of CTA c.
func NewStream(spec *Spec, cta, warp int) *Stream {
	s := new(Stream)
	s.Init(spec, cta, warp)
	return s
}

// Init resets s in place to the access stream for warp warp of CTA cta,
// discarding any prior state. It exists so pooled warp contexts can embed a
// Stream by value and be relaunched onto a new CTA without allocating.
func (s *Stream) Init(spec *Spec, cta, warp int) {
	*s = Stream{spec: spec, cta: cta, warp: warp, ops: spec.OpsForCTA(cta)}
	// Seed mixes the identifiers so distinct warps get decorrelated streams.
	s.r = rng{s: spec.Seed ^ uint64(cta)*0x9e3779b97f4a7c15 ^ uint64(warp)*0xc2b2ae3d27d4eb4f}
	rowBase, colBase, ownBase, perCTA := spec.regionGeometry()
	s.ownBase = ownBase
	s.regionStart = ownBase + uint64(cta)*perCTA
	s.regionLen = perCTA
	if spec.GridW > 0 {
		x, y := cta%spec.GridW, cta/spec.GridW
		s.rowPanel = rowBase + uint64(y)*spec.RowPanelLines
		s.colPanel = colBase + uint64(x)*spec.ColPanelLines
		// Tiled GEMM skews the k-loop so the CTAs along a panel start at
		// staggered offsets (the classic wavefront that avoids hammering one
		// operand block); attention streams K/V in order for every query
		// block, so it keeps the lockstep phase.
		if spec.Pattern == PatGEMM2D {
			if spec.GridW > 1 && spec.RowPanelLines > 0 {
				s.rowPhase = uint64(x) * maxU64(1, spec.RowPanelLines/uint64(spec.GridW))
			}
			if spec.GridH > 1 && spec.ColPanelLines > 0 {
				s.colPhase = uint64(y) * maxU64(1, spec.ColPanelLines/uint64(spec.GridH))
			}
		}
	}
}

// Next fills op with the warp's next operation and reports whether one
// remained.
func (s *Stream) Next(op *Op) bool {
	sp := s.spec
	if s.op >= s.ops {
		return false
	}
	i := s.op
	s.op++

	op.Compute = sp.ComputePerMem
	op.Write = s.r.chance(sp.WriteFraction)
	op.NumLines = sp.LinesPerOp

	// Temporal reuse: re-touch a recently used line.
	if s.nRecent > 0 && s.r.chance(sp.ReuseProb) {
		base := s.recent[int(s.r.intn(uint64(s.nRecent)))]
		for l := 0; l < op.NumLines; l++ {
			op.Lines[l] = (base + uint64(l)) % sp.FootprintLines
		}
		return true
	}

	base := s.genBase(i)
	coalesced := sp.Pattern != PatIrregular
	for l := 0; l < op.NumLines; l++ {
		var a uint64
		switch {
		case coalesced || l == 0:
			a = (base + uint64(l)) % sp.FootprintLines
		case sp.ScatterLines > 0:
			// Diverged lanes scatter within the scatter region (a graph
			// kernel's lanes chase different neighbors into the same
			// auxiliary arrays).
			a = sp.SharedLines + s.r.intn(sp.ScatterLines)
		default:
			a = s.r.intn(sp.FootprintLines)
		}
		op.Lines[l] = a
	}
	s.remember(op.Lines[0])
	return true
}

// genBase produces the base line address for op index i according to the
// spec's pattern and locality fractions.
func (s *Stream) genBase(i int) uint64 {
	sp := s.spec
	roll := float64(s.r.next()>>11) * (1.0 / (1 << 53))

	// Shared hot region.
	if roll < sp.SharedFraction && sp.SharedLines > 0 {
		return s.r.intn(sp.SharedLines)
	}
	roll -= sp.SharedFraction

	// Halo accesses into the neighboring CTA's region. The backward clamp
	// checks against the full reserved prefix (shared + scatter + panels):
	// clamping only at SharedLines would let CTA 0's "neighbor" traffic
	// leak into the scatter or panel regions.
	if roll < sp.NeighborFraction {
		dir := uint64(1)
		if s.r.next()&1 == 0 && s.cta > 0 {
			dir = ^uint64(0) // -1
		}
		nStart := s.regionStart + dir*s.regionLen
		if nStart >= sp.FootprintLines || nStart < s.ownBase {
			nStart = s.regionStart
		}
		// Halo touches the edge of the neighbor's region.
		edge := s.r.intn(maxU64(1, s.regionLen/8))
		return nStart + edge
	}
	roll -= sp.NeighborFraction

	// Panel streams: the A panel this grid row shares, then the B (or K/V)
	// panel this grid column shares. The walk position depends only on
	// (warp, op), so every CTA along the panel streams it in the same
	// phase — the lockstep k-loop of a tiled GEMM.
	if roll < sp.RowPanelFraction && sp.RowPanelLines > 0 {
		seq := s.rowPhase + uint64(s.warp)*uint64(sp.MemOpsPerWarp) + uint64(i)
		return s.rowPanel + seq%sp.RowPanelLines
	}
	roll -= sp.RowPanelFraction
	if roll < sp.ColPanelFraction && sp.ColPanelLines > 0 {
		seq := s.colPhase + uint64(s.warp)*uint64(sp.MemOpsPerWarp) + uint64(i)
		return s.colPanel + seq%sp.ColPanelLines
	}
	roll -= sp.ColPanelFraction

	// Scattered accesses: confined to the scatter region when one exists,
	// uniform over the whole footprint otherwise.
	if roll < sp.RandomFraction {
		if sp.ScatterLines > 0 {
			return sp.SharedLines + s.r.intn(sp.ScatterLines)
		}
		return s.r.intn(sp.FootprintLines)
	}

	// Own region, ordered by pattern.
	seq := uint64(s.warp)*uint64(sp.MemOpsPerWarp) + uint64(i)
	switch sp.Pattern {
	case PatStrided:
		stride := sp.Stride
		if stride == 0 {
			stride = 1
		}
		return s.regionStart + (seq*stride)%s.regionLen
	case PatComputeTile:
		// Re-walk a tile an eighth of the region (strong reuse).
		tile := maxU64(1, s.regionLen/8)
		return s.regionStart + seq%tile
	default:
		return s.regionStart + seq%s.regionLen
	}
}

func (s *Stream) remember(a uint64) {
	s.recent[s.op%len(s.recent)] = a
	if s.nRecent < len(s.recent) {
		s.nRecent++
	}
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
