package workload

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
)

// Fingerprint returns a canonical hash of the spec, including its name and
// every behavioral parameter. Run memoization keys on it rather than on the
// name alone so a custom spec that reuses a suite name is never confused
// with the registry entry. Spec holds only value-typed fields (asserted by
// TestSpecHasNoReferenceFields), so the Go-syntax rendering hashed here is a
// complete description of the workload.
func (s *Spec) Fingerprint() string {
	h := sha256.Sum256([]byte(fmt.Sprintf("%#v", *s)))
	return hex.EncodeToString(h[:16])
}
