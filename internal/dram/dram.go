// Package dram models the memory partitions attached to each GPU module:
// a fixed access latency (Table 3: 100 ns) in front of a bandwidth-limited
// device. Channel-level interleaving inside a partition is abstracted into
// the partition's aggregate bandwidth, as the paper does when it sizes
// on-package links against per-partition DRAM bandwidth.
package dram

import (
	"fmt"

	"mcmgpu/internal/audit"
	"mcmgpu/internal/engine"
)

// Partition is one DRAM partition (768 GB/s in the baseline MCM-GPU).
type Partition struct {
	id      int
	res     *engine.Resource
	latency engine.Cycle

	readBytes  uint64
	writeBytes uint64
	reads      uint64
	writes     uint64
}

// NewPartition creates partition id with the given bandwidth (GB/s, which
// equals bytes/cycle at 1 GHz) and access latency in cycles.
func NewPartition(id int, gbps float64, latency uint64) *Partition {
	return &Partition{
		id:      id,
		res:     engine.NewResource(fmt.Sprintf("dram-%d", id), gbps),
		latency: engine.Cycle(latency),
	}
}

// ID returns the partition index.
func (p *Partition) ID() int { return p.id }

// Read books a read of the given size and returns the time data is
// available: queuing + serialization on the device plus the access latency.
func (p *Partition) Read(now engine.Cycle, bytes uint64) engine.Cycle {
	p.reads++
	p.readBytes += bytes
	return p.res.Reserve(now, bytes) + p.latency
}

// Write books a write of the given size. Writes consume bandwidth but the
// caller does not usually wait on the returned completion time (GPU stores
// retire at issue).
func (p *Partition) Write(now engine.Cycle, bytes uint64) engine.Cycle {
	p.writes++
	p.writeBytes += bytes
	return p.res.Reserve(now, bytes) + p.latency
}

// Bytes returns total bytes transferred (reads + writes).
func (p *Partition) Bytes() uint64 { return p.readBytes + p.writeBytes }

// ReadBytes returns total bytes read.
func (p *Partition) ReadBytes() uint64 { return p.readBytes }

// WriteBytes returns total bytes written.
func (p *Partition) WriteBytes() uint64 { return p.writeBytes }

// Accesses returns the number of read and write requests served.
func (p *Partition) Accesses() uint64 { return p.reads + p.writes }

// Reads returns the number of read requests served. The per-direction
// accessors exist for the invariant auditor, which ties reads to L2 misses
// and writes to L2 writebacks separately.
func (p *Partition) Reads() uint64 { return p.reads }

// Writes returns the number of write requests served.
func (p *Partition) Writes() uint64 { return p.writes }

// Audit checks byte conservation into r: every byte counted by the
// read/write counters was reserved on the device resource and vice versa,
// so the device's reserved units must equal readBytes + writeBytes exactly.
func (p *Partition) Audit(r *audit.Reporter) {
	audit.Equal(r, "dram-bytes", fmt.Sprintf("dram-%d", p.id),
		"device reserved bytes", p.res.Units(), p.readBytes+p.writeBytes)
}

// Utilization returns the fraction of elapsed cycles the device was busy.
func (p *Partition) Utilization(elapsed engine.Cycle) float64 {
	return p.res.Utilization(elapsed)
}

// BusyThrough returns the device's busy cycles clipped to now (see
// engine.Resource.BusyThrough). With Units it makes the partition a metrics
// probe.
func (p *Partition) BusyThrough(now engine.Cycle) float64 {
	return p.res.BusyThrough(now)
}

// Units returns the bytes reserved on the device resource.
func (p *Partition) Units() uint64 { return p.res.Units() }

// Reset clears counters and reservations.
func (p *Partition) Reset() {
	p.res.Reset()
	p.readBytes, p.writeBytes, p.reads, p.writes = 0, 0, 0, 0
}
