package dram

import (
	"testing"
	"testing/quick"
)

func TestReadLatencyAndBandwidth(t *testing.T) {
	p := NewPartition(0, 768, 100)
	// One 768-byte read: 1 cycle serialization + 100 cycles latency.
	if got := p.Read(0, 768); got != 101 {
		t.Fatalf("read completes at %d, want 101", got)
	}
	// A queued read waits for the first transfer.
	if got := p.Read(0, 768); got != 102 {
		t.Fatalf("queued read completes at %d, want 102", got)
	}
	if p.ReadBytes() != 1536 {
		t.Fatalf("ReadBytes = %d", p.ReadBytes())
	}
	if p.Accesses() != 2 {
		t.Fatalf("Accesses = %d", p.Accesses())
	}
}

func TestWriteConsumesBandwidth(t *testing.T) {
	p := NewPartition(1, 128, 100)
	p.Write(0, 1280) // 10 cycles of device time
	if got := p.Read(0, 128); got != 111 {
		t.Fatalf("read behind write completes at %d, want 111", got)
	}
	if p.WriteBytes() != 1280 {
		t.Fatalf("WriteBytes = %d", p.WriteBytes())
	}
	if p.Bytes() != 1280+128 {
		t.Fatalf("Bytes = %d", p.Bytes())
	}
}

func TestUtilization(t *testing.T) {
	p := NewPartition(0, 768, 100)
	p.Read(0, 768*50) // 50 busy cycles
	if u := p.Utilization(100); u < 0.49 || u > 0.51 {
		t.Fatalf("Utilization = %v, want ~0.5", u)
	}
}

func TestReset(t *testing.T) {
	p := NewPartition(0, 768, 100)
	p.Read(0, 4096)
	p.Write(0, 4096)
	p.Reset()
	if p.Bytes() != 0 || p.Accesses() != 0 {
		t.Fatalf("Reset kept counters")
	}
	if got := p.Read(0, 768); got != 101 {
		t.Fatalf("Reset kept reservations: %d", got)
	}
}

// Property: a saturating stream of reads completes no faster than
// totalBytes/bandwidth, i.e. the device never exceeds its configured
// bandwidth.
func TestBandwidthCeilingProperty(t *testing.T) {
	f := func(nReq uint8, szRaw uint16) bool {
		p := NewPartition(0, 256, 10)
		sz := uint64(szRaw%2048) + 1
		var last uint64
		n := int(nReq) + 1
		for i := 0; i < n; i++ {
			last = uint64(p.Read(0, sz))
		}
		minCycles := float64(uint64(n)*sz) / 256
		return float64(last) >= minCycles
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
