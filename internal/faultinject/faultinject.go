// Package faultinject provides deterministic fault injection for the
// simulator's run lifecycle. A Plan describes one fault — a panic, an
// event-loop livelock, a runaway clock, or a corrupted run budget — armed to
// fire once a run has dispatched a chosen number of events, optionally
// restricted to a single workload. Because the event loop is deterministic,
// a plan fires at exactly the same point of the same run every time, which
// is what lets tests and CI prove that every containment path (panic
// recovery in the runner, each budget kind in core) actually triggers.
//
// Plans are plain values with no behavior of their own: internal/core
// consults the plan from its periodic budget check and performs the fault,
// so this package stays free of simulator dependencies beyond the engine.
// CLIs arm a plan from the MCMGPU_FAULT environment variable (see FromEnv);
// tests construct plans directly.
package faultinject

import (
	"fmt"
	"os"
	"strconv"
	"strings"

	"mcmgpu/internal/engine"
)

// EnvVar is the environment variable the CLIs read to arm a fault plan.
const EnvVar = "MCMGPU_FAULT"

// Kind enumerates the faults a Plan can inject.
type Kind uint8

const (
	// None is the zero value: no fault armed.
	None Kind = iota
	// Panic panics out of the event loop with an Injected value, exercising
	// the runner's recover path.
	Panic
	// Stall schedules a same-cycle self-rescheduling event: the queue never
	// drains and the clock never advances — the classic livelock only an
	// event or wall-clock budget can catch.
	Stall
	// Spin schedules a +1-cycle self-rescheduling event: the queue never
	// drains but the clock runs away, which is what a cycle budget catches.
	Spin
	// CorruptBudget zeroes the run's remaining event budget, forcing the
	// next periodic check to trip as if MaxEvents had been exceeded — even
	// when the configured budget was generous or absent. It proves the
	// budget-trip plumbing end to end without waiting out a real budget.
	CorruptBudget
	// CorruptCounter perturbs one model statistic, chosen by Plan.Target,
	// by the smallest possible amount (one count, one byte). The run
	// otherwise proceeds normally — which is the point: the perturbation is
	// invisible to every lifecycle guard and only the invariant auditor's
	// conservation laws can catch it. Each target is engineered to break
	// exactly one audited invariant, so the corrupt-counter plan family
	// proves check by check that the auditor actually fires.
	CorruptCounter

	// The store fault family targets internal/runstore's durable I/O
	// instead of the event loop. A store plan is counted in store
	// operations rather than engine events: AtEvent is the zero-based
	// sequence number of the first matching store operation the fault
	// applies to (and it keeps applying to every later matching operation),
	// and the filter after ':' restricts the fault to store keys containing
	// that substring. Store plans never match simulation runs (see
	// Matches), so arming one through MCMGPU_FAULT perturbs only the
	// durability layer under an otherwise healthy sweep — which is what
	// lets CI prove each recovery path (quarantine, rebuild, recompute)
	// fires without also corrupting the simulation it recovers.

	// StoreTornWrite makes a store write bypass the atomic
	// temp-file+rename protocol and leave a truncated file at the final
	// path — the on-disk artifact of a crash or power loss mid-write. The
	// write reports success (the corruption is silent, as it would be), so
	// only read-time SHA-256 verification or open-time index rebuild can
	// catch it.
	StoreTornWrite
	// StoreCorruptBlob flips a byte of a blob's content as it is written,
	// modeling bit rot: the file is complete and well-formed but its
	// content no longer matches the checksum it is addressed by.
	StoreCorruptBlob
	// StoreEIO fails a store read or write with an injected I/O error,
	// exercising the degrade-to-compute path: the caller must log and
	// recompute, never fail the job or serve a partial result.
	StoreEIO
	// StoreSlowIO sleeps briefly on matching store operations, modeling a
	// saturated disk; it proves timeouts and progress reporting survive a
	// slow store rather than wedging on it.
	StoreSlowIO

	// The net fault family targets the HTTP path between a sweep client and
	// its mcmserve backends instead of the event loop or the store. Net
	// plans are consumed by internal/chaosproxy, which sits in front of a
	// backend and injects the fault into matching proxied requests. AtEvent
	// is the zero-based sequence number of the first matching request the
	// fault applies to; Times bounds how many consecutive matching requests
	// it applies to (0 = every one from AtEvent on, which is how a
	// permanently black-holed backend is modeled); and the filter after ':'
	// restricts the fault to request paths containing that substring. Net
	// plans never match simulation runs or store operations, so arming one
	// perturbs only the wire — which is what lets tests prove the client's
	// retry, failover, hedging and stream-resume paths each fire without
	// also perturbing the simulations they protect.

	// NetDrop closes the TCP connection before writing any response bytes —
	// the wire artifact of a crashed backend or a broken middlebox. The
	// client sees a transport error (EOF / connection reset) and must retry.
	NetDrop
	// NetTruncate forwards the backend's response but cuts the body short
	// and closes the connection, preserving the original framing so the
	// client observes an unexpected EOF mid-body — a torn NDJSON stream or
	// a half-delivered result JSON. Decode failures must be treated as
	// retryable transport damage, never as a terminal answer.
	NetTruncate
	// Net5xx answers 503 without contacting the backend, modeling an
	// overloaded or crashing reverse proxy; the client's retry loop must
	// absorb bounded bursts.
	Net5xx
	// Net429 answers 429 with a Retry-After header without contacting the
	// backend; the client must honor the header as its backoff floor.
	Net429
	// NetLatency delays matching requests before forwarding them, modeling
	// a congested path or a struggling backend; it is what hedged requests
	// exist to race against.
	NetLatency
	// NetBlackhole accepts the connection and never answers — the failure
	// mode TCP cannot distinguish from "slow" — until the request context
	// ends or the proxy closes. Only client-side timeouts, health probes and
	// circuit breakers can route around it.
	NetBlackhole
)

// Valid corrupt-counter targets. Each names the counter internal/core
// perturbs and, in parentheses, the invariant that must catch it.
const (
	// TargetLineReads over-counts the machine's line-read counter
	// (l1-flow: L1 accesses no longer equal issued line reads).
	TargetLineReads = "line-reads"
	// TargetLineWrites over-counts the machine's line-write counter
	// (l2-flow: L2 write accesses no longer equal issued line writes).
	TargetLineWrites = "line-writes"
	// TargetEnergyLink books one phantom byte on the energy meter's link
	// domain (energy-bytes: meter vs. NoC byte reconciliation).
	TargetEnergyLink = "energy-link"
	// TargetEnergyDRAM books one phantom byte of DRAM energy
	// (energy-bytes: meter vs. DRAM partition byte reconciliation).
	TargetEnergyDRAM = "energy-dram"
	// TargetInFlight leaks one in-flight load count
	// (drain: in-flight operations nonzero at the kernel boundary).
	TargetInFlight = "inflight"
	// TargetClamp starts a ClampStorm so the clamped-event count grows with
	// the event count (clamp-guard: the ClampedEvents ratio ceiling).
	TargetClamp = "clamp"
)

// Targets lists every valid corrupt-counter target.
func Targets() []string {
	return []string{TargetLineReads, TargetLineWrites, TargetEnergyLink,
		TargetEnergyDRAM, TargetInFlight, TargetClamp}
}

// ValidTarget reports whether t names a corrupt-counter target.
func ValidTarget(t string) bool {
	for _, v := range Targets() {
		if t == v {
			return true
		}
	}
	return false
}

// String returns the kind's plan-syntax name.
func (k Kind) String() string {
	switch k {
	case None:
		return "none"
	case Panic:
		return "panic"
	case Stall:
		return "stall"
	case Spin:
		return "spin"
	case CorruptBudget:
		return "corrupt"
	case CorruptCounter:
		return "corrupt-counter"
	case StoreTornWrite:
		return "store-torn-write"
	case StoreCorruptBlob:
		return "store-corrupt-blob"
	case StoreEIO:
		return "store-eio"
	case StoreSlowIO:
		return "store-slow-io"
	case NetDrop:
		return "net-drop"
	case NetTruncate:
		return "net-truncate"
	case Net5xx:
		return "net-5xx"
	case Net429:
		return "net-429"
	case NetLatency:
		return "net-latency"
	case NetBlackhole:
		return "net-blackhole"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Plan is one armed fault. The zero value is disabled.
type Plan struct {
	// Kind selects the fault; None disables the plan.
	Kind Kind
	// AtEvent arms the fault to fire at the first periodic check after the
	// run has dispatched at least this many events. 0 fires at the first
	// check. Store kinds count store operations instead: the fault applies
	// to every matching operation whose zero-based sequence number is >=
	// AtEvent.
	AtEvent uint64
	// Workload, when non-empty, restricts the fault to runs of the workload
	// with this name; other runs are untouched. Store kinds reuse the field
	// as a store-key substring filter (see MatchesStore); net kinds reuse it
	// as a request-path substring filter (see MatchesNet).
	Workload string
	// Target selects which counter a CorruptCounter plan perturbs (one of
	// the Target* constants); empty for every other kind.
	Target string
	// Times bounds how many consecutive matching operations a net plan
	// applies to, starting at AtEvent; 0 means every matching operation from
	// AtEvent on. Only net kinds accept it (syntax "kind@N#M"): engine and
	// store faults fire once or forever by design, and silently carrying an
	// ignored count would make a plan lie about what it does.
	Times uint64
}

// Enabled reports whether the plan injects anything.
func (p Plan) Enabled() bool { return p.Kind != None }

// IsStore reports whether the plan targets the run store's durable I/O
// rather than the simulation event loop.
func (p Plan) IsStore() bool {
	switch p.Kind {
	case StoreTornWrite, StoreCorruptBlob, StoreEIO, StoreSlowIO:
		return true
	}
	return false
}

// IsNet reports whether the plan targets the HTTP path between clients and
// backends rather than the simulation event loop or the store.
func (p Plan) IsNet() bool {
	switch p.Kind {
	case NetDrop, NetTruncate, Net5xx, Net429, NetLatency, NetBlackhole:
		return true
	}
	return false
}

// Matches reports whether the plan applies to a run of the named workload.
// Store and net plans never match a simulation run: they are consumed by the
// store layer and the chaos proxy respectively (see MatchesStore and
// MatchesNet), and letting them leak into engine options would both perturb
// cache keys and hand core a fault it cannot perform.
func (p Plan) Matches(workload string) bool {
	return p.Enabled() && !p.IsStore() && !p.IsNet() && (p.Workload == "" || p.Workload == workload)
}

// MatchesStore reports whether a store plan applies to an operation on the
// given store key. The plan's filter (the part after ':') is a substring
// match so one plan can target a single entry ("...:Stream") or a whole key
// family without quoting full fingerprints.
func (p Plan) MatchesStore(key string) bool {
	return p.IsStore() && (p.Workload == "" || strings.Contains(key, p.Workload))
}

// MatchesNet reports whether a net plan applies to a request on the given
// URL path. The plan's filter (the part after ':') is a substring match so
// one plan can target one endpoint family ("net-drop@0:/watch") without
// spelling out full URLs.
func (p Plan) MatchesNet(path string) bool {
	return p.IsNet() && (p.Workload == "" || strings.Contains(path, p.Workload))
}

// FiresAt reports whether a net plan fires on the n-th (zero-based)
// matching request: n >= AtEvent and, when Times bounds the burst, within
// its window.
func (p Plan) FiresAt(n uint64) bool {
	if n < p.AtEvent {
		return false
	}
	return p.Times == 0 || n < p.AtEvent+p.Times
}

// String renders the plan in the syntax Parse accepts ("" when disabled).
func (p Plan) String() string {
	if !p.Enabled() {
		return ""
	}
	s := p.Kind.String()
	if p.Kind == CorruptCounter {
		s += "." + p.Target
	}
	s += fmt.Sprintf("@%d", p.AtEvent)
	if p.Times > 0 {
		s += fmt.Sprintf("#%d", p.Times)
	}
	if p.Workload != "" {
		s += ":" + p.Workload
	}
	return s
}

// Parse builds a Plan from its string form: kind@event[:workload], e.g.
// "panic@1000", "stall@50000:GEMM". The corrupt-counter kind carries its
// target as a suffix: "corrupt-counter.line-reads@1000". Store kinds use
// the same shape with store-operation counts and key filters:
// "store-torn-write@3", "store-eio@0:Stream". Net kinds count proxied
// requests, accept an optional burst length after '#', and filter on the
// request path: "net-drop@2#3", "net-truncate@0:/watch". An empty string is
// the disabled plan.
func Parse(s string) (Plan, error) {
	if s == "" {
		return Plan{}, nil
	}
	var p Plan
	rest := s
	if i := strings.IndexByte(rest, ':'); i >= 0 {
		p.Workload = rest[i+1:]
		rest = rest[:i]
		if p.Workload == "" {
			return Plan{}, fmt.Errorf("faultinject: %q: empty workload filter", s)
		}
	}
	kindStr, atStr, ok := strings.Cut(rest, "@")
	if !ok {
		return Plan{}, fmt.Errorf("faultinject: %q: want kind@event[:workload]", s)
	}
	switch {
	case kindStr == "panic":
		p.Kind = Panic
	case kindStr == "stall":
		p.Kind = Stall
	case kindStr == "spin":
		p.Kind = Spin
	case kindStr == "corrupt":
		p.Kind = CorruptBudget
	case kindStr == "store-torn-write":
		p.Kind = StoreTornWrite
	case kindStr == "store-corrupt-blob":
		p.Kind = StoreCorruptBlob
	case kindStr == "store-eio":
		p.Kind = StoreEIO
	case kindStr == "store-slow-io":
		p.Kind = StoreSlowIO
	case kindStr == "net-drop":
		p.Kind = NetDrop
	case kindStr == "net-truncate":
		p.Kind = NetTruncate
	case kindStr == "net-5xx":
		p.Kind = Net5xx
	case kindStr == "net-429":
		p.Kind = Net429
	case kindStr == "net-latency":
		p.Kind = NetLatency
	case kindStr == "net-blackhole":
		p.Kind = NetBlackhole
	case strings.HasPrefix(kindStr, "corrupt-counter"):
		p.Kind = CorruptCounter
		p.Target = strings.TrimPrefix(strings.TrimPrefix(kindStr, "corrupt-counter"), ".")
		if !ValidTarget(p.Target) {
			return Plan{}, fmt.Errorf("faultinject: %q: corrupt-counter target %q, want one of %s",
				s, p.Target, strings.Join(Targets(), ", "))
		}
	default:
		return Plan{}, fmt.Errorf("faultinject: %q: unknown kind %q (want panic, stall, spin, corrupt, corrupt-counter.<target>, store-torn-write, store-corrupt-blob, store-eio, store-slow-io, net-drop, net-truncate, net-5xx, net-429, net-latency or net-blackhole)", s, kindStr)
	}
	if atStr, rest, ok = strings.Cut(atStr, "#"); ok {
		if !p.IsNet() {
			return Plan{}, fmt.Errorf("faultinject: %q: burst count '#' is only valid on net kinds", s)
		}
		times, err := strconv.ParseUint(rest, 10, 64)
		if err != nil || times == 0 {
			return Plan{}, fmt.Errorf("faultinject: %q: bad burst count %q", s, rest)
		}
		p.Times = times
	}
	at, err := strconv.ParseUint(atStr, 10, 64)
	if err != nil {
		return Plan{}, fmt.Errorf("faultinject: %q: bad event count %q", s, atStr)
	}
	p.AtEvent = at
	return p, nil
}

// ParseList parses a comma-separated list of plans ("net-drop@0#1,
// net-5xx@4#2"). Empty elements are skipped, so a trailing comma is not an
// error; an empty string is the empty list.
func ParseList(s string) ([]Plan, error) {
	var plans []Plan
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		p, err := Parse(part)
		if err != nil {
			return nil, err
		}
		plans = append(plans, p)
	}
	return plans, nil
}

// FromEnv parses the plan armed through the MCMGPU_FAULT environment
// variable. An unset or empty variable yields the disabled plan.
func FromEnv() (Plan, error) {
	return Parse(os.Getenv(EnvVar))
}

// Injected is the value a Panic-kind fault panics with, so recovery layers
// and tests can recognize an injected panic unambiguously.
type Injected struct {
	Plan Plan
}

// Error makes Injected usable as an error if a recovery layer chooses to
// treat it as one.
func (i Injected) Error() string {
	return fmt.Sprintf("faultinject: injected panic (%s)", i.Plan)
}

// Staller is the self-rescheduling engine event behind the Stall and Spin
// kinds: every dispatch reschedules itself Delta cycles ahead, so the queue
// never drains. Delta == 0 freezes the clock (Stall); Delta > 0 makes it run
// away (Spin).
type Staller struct {
	Sim   *engine.Sim
	Delta engine.Cycle
}

// Dispatch implements engine.Event.
func (st *Staller) Dispatch(uint8) {
	st.Sim.AtEvent(st.Sim.Now()+st.Delta, st, 0)
}

// Start schedules the staller's first event at the current time.
func (st *Staller) Start() {
	st.Sim.AtEvent(st.Sim.Now(), st, 0)
}

// ClampStorm is the self-rescheduling event behind the corrupt-counter
// "clamp" target: every dispatch reschedules itself one cycle in the past,
// so the engine clamps one event per dispatch and the clamped-event count
// grows linearly with the event count — far past the auditor's
// ClampedEvents ratio budget. Unlike Staller it lets simulated time advance
// (the clamp pins each event to Now), so only the clamp guard catches it.
type ClampStorm struct {
	Sim *engine.Sim
}

// Dispatch implements engine.Event.
func (cs *ClampStorm) Dispatch(uint8) {
	cs.Sim.AtEvent(cs.Sim.Now()-1, cs, 0)
}

// Start schedules the storm's first event at the current time.
func (cs *ClampStorm) Start() {
	cs.Sim.AtEvent(cs.Sim.Now(), cs, 0)
}
