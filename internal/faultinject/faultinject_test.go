package faultinject

import (
	"testing"

	"mcmgpu/internal/engine"
)

func TestParseStringRoundTrip(t *testing.T) {
	cases := []string{
		"panic@1000",
		"stall@0",
		"spin@50000",
		"corrupt@42:GEMM",
		"stall@7:CFD",
	}
	for _, s := range cases {
		p, err := Parse(s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", s, err)
		}
		if !p.Enabled() {
			t.Fatalf("Parse(%q) yielded a disabled plan", s)
		}
		if got := p.String(); got != s {
			t.Errorf("round trip %q -> %q", s, got)
		}
	}
}

func TestParseEmptyIsDisabled(t *testing.T) {
	p, err := Parse("")
	if err != nil {
		t.Fatalf("Parse(\"\"): %v", err)
	}
	if p.Enabled() {
		t.Fatal("empty string parsed to an enabled plan")
	}
	if p.String() != "" {
		t.Fatalf("disabled plan renders %q, want empty", p.String())
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	for _, s := range []string{
		"panic",            // no event count
		"panic@",           // empty event count
		"panic@x",          // non-numeric event count
		"explode@100",      // unknown kind
		"stall@100:",       // empty workload filter
		"@100",             // empty kind
		"panic@-1",         // negative event count
		"none@0",           // None is not a spelled kind
	} {
		if p, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) = %+v, want error", s, p)
		}
	}
}

func TestMatches(t *testing.T) {
	if (Plan{}).Matches("CFD") {
		t.Error("disabled plan matches")
	}
	any := Plan{Kind: Panic}
	if !any.Matches("CFD") || !any.Matches("GEMM") {
		t.Error("unfiltered plan should match every workload")
	}
	scoped := Plan{Kind: Panic, Workload: "CFD"}
	if !scoped.Matches("CFD") || scoped.Matches("GEMM") {
		t.Error("scoped plan should match only its workload")
	}
}

func TestFromEnv(t *testing.T) {
	t.Setenv(EnvVar, "spin@123:NW")
	p, err := FromEnv()
	if err != nil {
		t.Fatal(err)
	}
	want := Plan{Kind: Spin, AtEvent: 123, Workload: "NW"}
	if p != want {
		t.Fatalf("FromEnv = %+v, want %+v", p, want)
	}
	t.Setenv(EnvVar, "")
	if p, err = FromEnv(); err != nil || p.Enabled() {
		t.Fatalf("empty env: %+v, %v; want disabled plan", p, err)
	}
}

// TestStallerFreezesClock asserts the Delta==0 staller keeps the queue alive
// without advancing time, and the Delta==1 variant advances it.
func TestStallerFreezesClock(t *testing.T) {
	sim := engine.New()
	st := &Staller{Sim: sim}
	st.Start()
	for i := 0; i < 100; i++ {
		if !sim.Step() {
			t.Fatal("staller let the queue drain")
		}
	}
	if sim.Now() != 0 {
		t.Fatalf("stall advanced the clock to %d", sim.Now())
	}

	sim2 := engine.New()
	sp := &Staller{Sim: sim2, Delta: 1}
	sp.Start()
	for i := 0; i < 100; i++ {
		if !sim2.Step() {
			t.Fatal("spinner let the queue drain")
		}
	}
	if sim2.Now() < 99 {
		t.Fatalf("spin advanced the clock only to %d after 100 events", sim2.Now())
	}
}

func TestInjectedError(t *testing.T) {
	inj := Injected{Plan: Plan{Kind: Panic, AtEvent: 10}}
	if inj.Error() == "" {
		t.Fatal("Injected.Error is empty")
	}
}
