package faultinject

import (
	"testing"

	"mcmgpu/internal/engine"
)

func TestParseStringRoundTrip(t *testing.T) {
	cases := []string{
		"panic@1000",
		"stall@0",
		"spin@50000",
		"corrupt@42:GEMM",
		"stall@7:CFD",
		"corrupt-counter.line-reads@1000",
		"corrupt-counter.clamp@5000:GEMM",
	}
	for _, s := range cases {
		p, err := Parse(s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", s, err)
		}
		if !p.Enabled() {
			t.Fatalf("Parse(%q) yielded a disabled plan", s)
		}
		if got := p.String(); got != s {
			t.Errorf("round trip %q -> %q", s, got)
		}
	}
}

func TestParseEmptyIsDisabled(t *testing.T) {
	p, err := Parse("")
	if err != nil {
		t.Fatalf("Parse(\"\"): %v", err)
	}
	if p.Enabled() {
		t.Fatal("empty string parsed to an enabled plan")
	}
	if p.String() != "" {
		t.Fatalf("disabled plan renders %q, want empty", p.String())
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	for _, s := range []string{
		"panic",                    // no event count
		"panic@",                   // empty event count
		"panic@x",                  // non-numeric event count
		"explode@100",              // unknown kind
		"stall@100:",               // empty workload filter
		"@100",                     // empty kind
		"panic@-1",                 // negative event count
		"none@0",                   // None is not a spelled kind
		"corrupt-counter@10",       // missing target
		"corrupt-counter.@10",      // empty target
		"corrupt-counter.bogus@10", // unknown target
		"corrupt.line-reads@10",    // target on a non-counter kind
		"panic.line-reads@10",      // target on a non-counter kind
	} {
		if p, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) = %+v, want error", s, p)
		}
	}
}

func TestMatches(t *testing.T) {
	if (Plan{}).Matches("CFD") {
		t.Error("disabled plan matches")
	}
	any := Plan{Kind: Panic}
	if !any.Matches("CFD") || !any.Matches("GEMM") {
		t.Error("unfiltered plan should match every workload")
	}
	scoped := Plan{Kind: Panic, Workload: "CFD"}
	if !scoped.Matches("CFD") || scoped.Matches("GEMM") {
		t.Error("scoped plan should match only its workload")
	}
}

func TestFromEnv(t *testing.T) {
	t.Setenv(EnvVar, "spin@123:NW")
	p, err := FromEnv()
	if err != nil {
		t.Fatal(err)
	}
	want := Plan{Kind: Spin, AtEvent: 123, Workload: "NW"}
	if p != want {
		t.Fatalf("FromEnv = %+v, want %+v", p, want)
	}
	t.Setenv(EnvVar, "")
	if p, err = FromEnv(); err != nil || p.Enabled() {
		t.Fatalf("empty env: %+v, %v; want disabled plan", p, err)
	}
}

// TestStallerFreezesClock asserts the Delta==0 staller keeps the queue alive
// without advancing time, and the Delta==1 variant advances it.
func TestStallerFreezesClock(t *testing.T) {
	sim := engine.New()
	st := &Staller{Sim: sim}
	st.Start()
	for i := 0; i < 100; i++ {
		if !sim.Step() {
			t.Fatal("staller let the queue drain")
		}
	}
	if sim.Now() != 0 {
		t.Fatalf("stall advanced the clock to %d", sim.Now())
	}

	sim2 := engine.New()
	sp := &Staller{Sim: sim2, Delta: 1}
	sp.Start()
	for i := 0; i < 100; i++ {
		if !sim2.Step() {
			t.Fatal("spinner let the queue drain")
		}
	}
	if sim2.Now() < 99 {
		t.Fatalf("spin advanced the clock only to %d after 100 events", sim2.Now())
	}
}

func TestInjectedError(t *testing.T) {
	inj := Injected{Plan: Plan{Kind: Panic, AtEvent: 10}}
	if inj.Error() == "" {
		t.Fatal("Injected.Error is empty")
	}
}

func TestCorruptCounterTargets(t *testing.T) {
	targets := Targets()
	if len(targets) == 0 {
		t.Fatal("no corrupt-counter targets declared")
	}
	for _, tgt := range targets {
		if !ValidTarget(tgt) {
			t.Errorf("ValidTarget(%q) = false for a declared target", tgt)
		}
		s := "corrupt-counter." + tgt + "@77"
		p, err := Parse(s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", s, err)
		}
		want := Plan{Kind: CorruptCounter, AtEvent: 77, Target: tgt}
		if p != want {
			t.Errorf("Parse(%q) = %+v, want %+v", s, p, want)
		}
		if got := p.String(); got != s {
			t.Errorf("round trip %q -> %q", s, got)
		}
	}
	for _, tgt := range []string{"", "bogus", "line-reads "} {
		if ValidTarget(tgt) {
			t.Errorf("ValidTarget(%q) = true", tgt)
		}
	}
}

// TestClampStormClampsEveryEvent asserts the storm forces the engine to
// clamp one event per dispatch while still letting the queue stay live.
func TestClampStormClampsEveryEvent(t *testing.T) {
	sim := engine.New()
	cs := &ClampStorm{Sim: sim}
	cs.Start()
	for i := 0; i < 100; i++ {
		if !sim.Step() {
			t.Fatal("clamp storm let the queue drain")
		}
	}
	if got := sim.Clamped(); got < 99 {
		t.Fatalf("clamp storm produced only %d clamped events after 100 steps", got)
	}
}

// TestStoreFamilyParseRoundTrip pins the store fault family's plan syntax:
// kind@op[:keyFilter] parses, renders back identically, and is classified
// as a store plan.
func TestStoreFamilyParseRoundTrip(t *testing.T) {
	cases := []struct {
		s    string
		want Plan
	}{
		{"store-torn-write@3", Plan{Kind: StoreTornWrite, AtEvent: 3}},
		{"store-corrupt-blob@0", Plan{Kind: StoreCorruptBlob}},
		{"store-eio@1:Stream", Plan{Kind: StoreEIO, AtEvent: 1, Workload: "Stream"}},
		{"store-slow-io@2:put", Plan{Kind: StoreSlowIO, AtEvent: 2, Workload: "put"}},
	}
	for _, c := range cases {
		p, err := Parse(c.s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.s, err)
		}
		if p != c.want {
			t.Errorf("Parse(%q) = %+v, want %+v", c.s, p, c.want)
		}
		if got := p.String(); got != c.s {
			t.Errorf("round trip %q -> %q", c.s, got)
		}
		if !p.IsStore() {
			t.Errorf("IsStore(%q) = false", c.s)
		}
	}
}

// TestNetFamilyParseRoundTrip pins the net fault family's plan syntax:
// kind@req[#burst][:pathFilter] parses, renders back identically, and is
// classified as a net plan.
func TestNetFamilyParseRoundTrip(t *testing.T) {
	cases := []struct {
		s    string
		want Plan
	}{
		{"net-drop@0", Plan{Kind: NetDrop}},
		{"net-drop@2#3", Plan{Kind: NetDrop, AtEvent: 2, Times: 3}},
		{"net-truncate@1#1:/watch", Plan{Kind: NetTruncate, AtEvent: 1, Times: 1, Workload: "/watch"}},
		{"net-5xx@4#2", Plan{Kind: Net5xx, AtEvent: 4, Times: 2}},
		{"net-429@0#1", Plan{Kind: Net429, Times: 1}},
		{"net-latency@3:/result", Plan{Kind: NetLatency, AtEvent: 3, Workload: "/result"}},
		{"net-blackhole@0", Plan{Kind: NetBlackhole}},
	}
	for _, c := range cases {
		p, err := Parse(c.s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.s, err)
		}
		if p != c.want {
			t.Errorf("Parse(%q) = %+v, want %+v", c.s, p, c.want)
		}
		if got := p.String(); got != c.s {
			t.Errorf("round trip %q -> %q", c.s, got)
		}
		if !p.IsNet() || p.IsStore() {
			t.Errorf("%q: IsNet=%v IsStore=%v, want net-only", c.s, p.IsNet(), p.IsStore())
		}
	}
	for _, s := range []string{
		"net-drop@0#0",  // zero-length burst
		"net-drop@0#x",  // non-numeric burst
		"panic@0#2",     // burst on an engine kind
		"store-eio@0#2", // burst on a store kind
		"net-explode@0", // unknown net kind
	} {
		if p, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) = %+v, want error", s, p)
		}
	}
}

// TestNetPlanFiresAt pins the burst window arithmetic: [AtEvent, AtEvent+
// Times) for bounded plans, [AtEvent, inf) for unbounded ones.
func TestNetPlanFiresAt(t *testing.T) {
	burst := Plan{Kind: Net5xx, AtEvent: 2, Times: 3}
	for n, want := range map[uint64]bool{0: false, 1: false, 2: true, 3: true, 4: true, 5: false, 100: false} {
		if got := burst.FiresAt(n); got != want {
			t.Errorf("burst.FiresAt(%d) = %v, want %v", n, got, want)
		}
	}
	forever := Plan{Kind: NetBlackhole, AtEvent: 1}
	for n, want := range map[uint64]bool{0: false, 1: true, 1000: true} {
		if got := forever.FiresAt(n); got != want {
			t.Errorf("forever.FiresAt(%d) = %v, want %v", n, got, want)
		}
	}
}

// TestNetPlansNeverMatchSimulationsOrStore asserts the three fault families
// stay partitioned: a net plan arms neither simulations nor store I/O, and
// its path filter is a substring match.
func TestNetPlansNeverMatchSimulationsOrStore(t *testing.T) {
	netp := Plan{Kind: NetDrop}
	if netp.Matches("Stream") || netp.MatchesStore("key") {
		t.Error("net plan leaked into a simulation or store operation")
	}
	if !netp.MatchesNet("/v1/batches") {
		t.Error("unfiltered net plan did not match a request path")
	}
	filtered := Plan{Kind: NetTruncate, Workload: "/watch"}
	if !filtered.MatchesNet("/v1/batches/b1/watch") {
		t.Error("path filter did not match")
	}
	if filtered.MatchesNet("/v1/jobs/x/result") {
		t.Error("path filter matched a foreign path")
	}
	if (Plan{Kind: Panic}).MatchesNet("/v1/batches") {
		t.Error("engine plan matched a request path")
	}
}

// TestParseList pins the comma-separated multi-plan grammar chaosproxy is
// driven by.
func TestParseList(t *testing.T) {
	plans, err := ParseList("net-drop@0#1, net-5xx@2#2,")
	if err != nil {
		t.Fatal(err)
	}
	want := []Plan{
		{Kind: NetDrop, Times: 1},
		{Kind: Net5xx, AtEvent: 2, Times: 2},
	}
	if len(plans) != len(want) {
		t.Fatalf("ParseList yielded %d plans, want %d", len(plans), len(want))
	}
	for i := range want {
		if plans[i] != want[i] {
			t.Errorf("plan %d = %+v, want %+v", i, plans[i], want[i])
		}
	}
	if plans, err := ParseList(""); err != nil || len(plans) != 0 {
		t.Fatalf("ParseList(\"\") = %v, %v; want empty, nil", plans, err)
	}
	if _, err := ParseList("net-drop@0,bogus@1"); err == nil {
		t.Fatal("ParseList accepted an unknown kind")
	}
}

// TestStorePlansNeverMatchSimulations asserts the partition between the
// two fault families: a store plan must not arm on any simulation run (it
// would perturb cache keys and hand core an unknown fault), and a
// simulation plan must not match store operations.
func TestStorePlansNeverMatchSimulations(t *testing.T) {
	store := Plan{Kind: StoreEIO, AtEvent: 0}
	if store.Matches("Stream") || store.Matches("") {
		t.Error("store plan matched a simulation run")
	}
	if !store.MatchesStore("abc|def|1") {
		t.Error("unfiltered store plan did not match a store key")
	}
	filtered := Plan{Kind: StoreTornWrite, Workload: "Stream"}
	if !filtered.MatchesStore("cfg|Stream-fp|1") {
		t.Error("substring key filter did not match")
	}
	if filtered.MatchesStore("cfg|CoMD-fp|1") {
		t.Error("key filter matched a foreign key")
	}
	sim := Plan{Kind: Panic, AtEvent: 10}
	if sim.MatchesStore("anything") {
		t.Error("simulation plan matched a store operation")
	}
	if !sim.Matches("Stream") {
		t.Error("simulation plan stopped matching runs")
	}
}
