// Package vm implements the simulator's virtual-memory layer: the mapping
// from virtual line addresses to memory partitions under the two page
// placement policies the paper studies.
//
// The baseline policy interleaves addresses across all physical DRAM
// partitions at cache-line granularity (Section 3.2). The first-touch policy
// (Section 5.3) maps each page to a memory partition local to the module
// whose SM touches it first; within that module, lines of the page are
// interleaved across the module's partitions so channel-level parallelism is
// preserved, mirroring the paper's per-partition channel interleaving.
package vm

import (
	"fmt"
	"math/bits"

	"mcmgpu/internal/audit"
	"mcmgpu/internal/config"
)

// AddressMap translates virtual line addresses to memory partitions.
// It is not safe for concurrent use.
type AddressMap struct {
	policy          config.PlacementKind
	lineBytes       int
	linesPerPage    uint64
	pageShift       uint
	partitions      int
	partsPerModule  int
	pages           map[uint64]int // page number -> owning module (first touch)
	pagesPerModule  []int
	firstTouchFills uint64
}

// NewAddressMap builds an address map for the machine described by cfg.
func NewAddressMap(cfg *config.Config) *AddressMap {
	linesPerPage := uint64(cfg.PageBytes / config.LineBytes)
	m := &AddressMap{
		policy:         cfg.Placement,
		lineBytes:      config.LineBytes,
		linesPerPage:   linesPerPage,
		pageShift:      uint(bits.TrailingZeros64(linesPerPage)),
		partitions:     cfg.TotalPartitions(),
		partsPerModule: cfg.PartitionsPerModule,
		pagesPerModule: make([]int, cfg.Modules),
	}
	if cfg.Placement == config.PlaceFirstTouch {
		m.pages = make(map[uint64]int)
	}
	return m
}

// Policy returns the placement policy in force.
func (m *AddressMap) Policy() config.PlacementKind { return m.policy }

// Partition returns the memory partition holding the given virtual line
// address. module is the module issuing the access; under first-touch
// placement an unmapped page is bound to that module's local partitions.
func (m *AddressMap) Partition(lineAddr uint64, module int) int {
	switch m.policy {
	case config.PlaceInterleave:
		return int(lineAddr % uint64(m.partitions))
	case config.PlaceFirstTouch:
		page := lineAddr >> m.pageShift
		owner, ok := m.pages[page]
		if !ok {
			owner = module
			m.pages[page] = owner
			m.pagesPerModule[owner]++
			m.firstTouchFills++
		}
		// Interleave the page's lines across the owner's partitions to keep
		// channel-level parallelism within the local memory system.
		local := int(lineAddr % uint64(m.partsPerModule))
		return owner*m.partsPerModule + local
	}
	panic(fmt.Sprintf("vm: unknown placement policy %v", m.policy))
}

// CacheAddr compacts a virtual line address into the address space a
// memory-side L2 slice should index with. Lines reaching one partition share
// their partition-selection bits (the low bits under interleave, the
// intra-module interleave bits under first touch); indexing a slice with the
// raw address would alias those bits into the set index and leave most sets
// unused. The compaction divides those bits out and is injective within a
// partition, so tags remain unambiguous.
func (m *AddressMap) CacheAddr(lineAddr uint64) uint64 {
	switch m.policy {
	case config.PlaceInterleave:
		return lineAddr / uint64(m.partitions)
	case config.PlaceFirstTouch:
		return lineAddr / uint64(m.partsPerModule)
	}
	panic(fmt.Sprintf("vm: unknown placement policy %v", m.policy))
}

// PageOwner returns the module owning the page containing lineAddr and
// whether the page has been mapped. Under interleave placement pages have no
// owner and ok is always false.
func (m *AddressMap) PageOwner(lineAddr uint64) (module int, ok bool) {
	if m.policy != config.PlaceFirstTouch {
		return 0, false
	}
	owner, ok := m.pages[lineAddr>>m.pageShift]
	return owner, ok
}

// MappedPages returns the number of pages bound by first touch.
func (m *AddressMap) MappedPages() int { return len(m.pages) }

// PagesPerModule returns, per module, how many pages first touch bound to
// it. The slice is live; callers must not modify it.
func (m *AddressMap) PagesPerModule() []int { return m.pagesPerModule }

// FirstTouchFills returns how many pages were bound by first touch. It
// equals MappedPages unless a mapping was double-filled or lost.
func (m *AddressMap) FirstTouchFills() uint64 { return m.firstTouchFills }

// Audit checks page-table consistency into r. Under first touch: every page
// fill bound exactly one page (fills == mapped pages), the per-module counts
// partition the page table (their sum == mapped pages), and every owner is a
// real module. Under interleave nothing may have been bound at all — a
// non-zero fill count there means the placement policy was misrouted.
func (m *AddressMap) Audit(r *audit.Reporter) {
	mapped := uint64(len(m.pages))
	if m.policy != config.PlaceFirstTouch {
		audit.Equal(r, "vm-pages", "vm", "first-touch fills under interleave placement", m.firstTouchFills, uint64(0))
		return
	}
	audit.Equal(r, "vm-pages", "vm", "first-touch fills", m.firstTouchFills, mapped)
	var sum uint64
	for mod, n := range m.pagesPerModule {
		if n < 0 {
			r.Reportf("vm-pages", "vm", "module %d owns %d pages (negative)", mod, n)
			continue
		}
		sum += uint64(n)
	}
	audit.Equal(r, "vm-pages", "vm", "sum of per-module page counts", sum, mapped)
	modules := len(m.pagesPerModule)
	for page, owner := range m.pages {
		if owner < 0 || owner >= modules {
			r.Reportf("vm-pages", "vm", "page %#x owned by module %d, machine has %d modules", page, owner, modules)
		}
	}
}

// Reset drops all page mappings, as when a new application starts. Page
// mappings deliberately survive kernel boundaries within an application:
// cross-kernel reuse of first-touch locality is the effect Figure 12 of the
// paper illustrates.
func (m *AddressMap) Reset() {
	if m.pages != nil {
		m.pages = make(map[uint64]int)
		for i := range m.pagesPerModule {
			m.pagesPerModule[i] = 0
		}
	}
	m.firstTouchFills = 0
}
