// Package vm implements the simulator's virtual-memory layer: the mapping
// from virtual line addresses to memory partitions under the page placement
// policies the paper and its follow-on work study.
//
// The baseline policy interleaves addresses across all physical DRAM
// partitions at cache-line granularity (Section 3.2). The first-touch policy
// (Section 5.3) maps each page to a memory partition local to the module
// whose SM touches it first; within that module, lines of the page are
// interleaved across the module's partitions so channel-level parallelism is
// preserved, mirroring the paper's per-partition channel interleaving. The
// region-aware policy consults a workload-provided binder first: a page that
// belongs to a known region (a GEMM panel, a CTA's own tile) is bound to the
// module the CTA layout says owns that region, and only pages outside any
// region fall back to first touch. Pages may also be pre-bound before the
// first kernel, modeling placement decided by an earlier init sweep.
package vm

import (
	"fmt"
	"math/bits"

	"mcmgpu/internal/audit"
	"mcmgpu/internal/config"
)

// AddressMap translates virtual line addresses to memory partitions.
// It is not safe for concurrent use.
type AddressMap struct {
	policy          config.PlacementKind
	lineBytes       int
	linesPerPage    uint64
	pageShift       uint
	partitions      int
	partsPerModule  int
	pages           map[uint64]int // page number -> owning module
	pagesPerModule  []int
	firstTouchFills uint64
	regionBinds     uint64
	prebinds        uint64
	binder          func(page uint64) int // region-aware page homes; nil = first touch only
}

// NewAddressMap builds an address map for the machine described by cfg.
func NewAddressMap(cfg *config.Config) *AddressMap {
	linesPerPage := uint64(cfg.PageBytes / config.LineBytes)
	m := &AddressMap{
		policy:         cfg.Placement,
		lineBytes:      config.LineBytes,
		linesPerPage:   linesPerPage,
		pageShift:      uint(bits.TrailingZeros64(linesPerPage)),
		partitions:     cfg.TotalPartitions(),
		partsPerModule: cfg.PartitionsPerModule,
		pagesPerModule: make([]int, cfg.Modules),
	}
	if cfg.Placement != config.PlaceInterleave {
		m.pages = make(map[uint64]int)
	}
	return m
}

// Policy returns the placement policy in force.
func (m *AddressMap) Policy() config.PlacementKind { return m.policy }

// LinesPerPage returns how many cache lines one page holds.
func (m *AddressMap) LinesPerPage() uint64 { return m.linesPerPage }

// SetBinder installs the region-aware page binder: a function returning the
// module a page should be homed on, or -1 for pages that should fall back
// to first touch. It is consulted the first time an unmapped page is
// touched. Only meaningful under PlaceRegionAware.
func (m *AddressMap) SetBinder(binder func(page uint64) int) { m.binder = binder }

// Prebind binds a page to a module before simulation, modeling placement
// already decided by an earlier phase (an init kernel's first-touch sweep).
// Pages already mapped are left untouched.
func (m *AddressMap) Prebind(page uint64, module int) {
	if m.pages == nil {
		return // interleave placement ignores page bindings
	}
	if _, ok := m.pages[page]; ok {
		return
	}
	m.pages[page] = module
	m.pagesPerModule[module]++
	m.prebinds++
}

// bind maps an unmapped page, choosing the region-aware home when the
// binder provides one and falling back to first touch by the given module.
func (m *AddressMap) bind(page uint64, module int) int {
	if m.policy == config.PlaceRegionAware && m.binder != nil {
		if home := m.binder(page); home >= 0 {
			m.pages[page] = home
			m.pagesPerModule[home]++
			m.regionBinds++
			return home
		}
	}
	m.pages[page] = module
	m.pagesPerModule[module]++
	m.firstTouchFills++
	return module
}

// Partition returns the memory partition holding the given virtual line
// address. module is the module issuing the access; under first-touch and
// region-aware placement an unmapped page is bound on the spot.
func (m *AddressMap) Partition(lineAddr uint64, module int) int {
	switch m.policy {
	case config.PlaceInterleave:
		return int(lineAddr % uint64(m.partitions))
	case config.PlaceFirstTouch, config.PlaceRegionAware:
		page := lineAddr >> m.pageShift
		owner, ok := m.pages[page]
		if !ok {
			owner = m.bind(page, module)
		}
		// Interleave the page's lines across the owner's partitions to keep
		// channel-level parallelism within the local memory system.
		local := int(lineAddr % uint64(m.partsPerModule))
		return owner*m.partsPerModule + local
	}
	panic(fmt.Sprintf("vm: unknown placement policy %v", m.policy))
}

// CacheAddr compacts a virtual line address into the address space a
// memory-side L2 slice should index with. Lines reaching one partition share
// their partition-selection bits (the low bits under interleave, the
// intra-module interleave bits under page-bound placement); indexing a slice
// with the raw address would alias those bits into the set index and leave
// most sets unused. The compaction divides those bits out and is injective
// within a partition, so tags remain unambiguous.
func (m *AddressMap) CacheAddr(lineAddr uint64) uint64 {
	switch m.policy {
	case config.PlaceInterleave:
		return lineAddr / uint64(m.partitions)
	case config.PlaceFirstTouch, config.PlaceRegionAware:
		return lineAddr / uint64(m.partsPerModule)
	}
	panic(fmt.Sprintf("vm: unknown placement policy %v", m.policy))
}

// PageOwner returns the module owning the page containing lineAddr and
// whether the page has been mapped. Under interleave placement pages have no
// owner and ok is always false.
func (m *AddressMap) PageOwner(lineAddr uint64) (module int, ok bool) {
	if m.pages == nil {
		return 0, false
	}
	owner, ok := m.pages[lineAddr>>m.pageShift]
	return owner, ok
}

// MappedPages returns the number of pages bound so far.
func (m *AddressMap) MappedPages() int { return len(m.pages) }

// PagesPerModule returns, per module, how many pages are bound to it. The
// slice is live; callers must not modify it.
func (m *AddressMap) PagesPerModule() []int { return m.pagesPerModule }

// FirstTouchFills returns how many pages were bound by raw first touch
// (excluding region binds and prebinds).
func (m *AddressMap) FirstTouchFills() uint64 { return m.firstTouchFills }

// RegionBinds returns how many pages the region-aware binder homed.
func (m *AddressMap) RegionBinds() uint64 { return m.regionBinds }

// Prebinds returns how many pages were bound before simulation.
func (m *AddressMap) Prebinds() uint64 { return m.prebinds }

// Audit checks page-table consistency into r. Under page-bound placement:
// every binding event bound exactly one page (fills + region binds +
// prebinds == mapped pages), the per-module counts partition the page table
// (their sum == mapped pages), and every owner is a real module. Under
// interleave nothing may have been bound at all — a non-zero count there
// means the placement policy was misrouted.
func (m *AddressMap) Audit(r *audit.Reporter) {
	mapped := uint64(len(m.pages))
	binds := m.firstTouchFills + m.regionBinds + m.prebinds
	if m.policy == config.PlaceInterleave {
		audit.Equal(r, "vm-pages", "vm", "page binds under interleave placement", binds, uint64(0))
		return
	}
	audit.Equal(r, "vm-pages", "vm", "page binds", binds, mapped)
	if m.policy == config.PlaceFirstTouch {
		audit.Equal(r, "vm-pages", "vm", "region binds under first-touch placement", m.regionBinds, uint64(0))
	}
	var sum uint64
	for mod, n := range m.pagesPerModule {
		if n < 0 {
			r.Reportf("vm-pages", "vm", "module %d owns %d pages (negative)", mod, n)
			continue
		}
		sum += uint64(n)
	}
	audit.Equal(r, "vm-pages", "vm", "sum of per-module page counts", sum, mapped)
	modules := len(m.pagesPerModule)
	for page, owner := range m.pages {
		if owner < 0 || owner >= modules {
			r.Reportf("vm-pages", "vm", "page %#x owned by module %d, machine has %d modules", page, owner, modules)
		}
	}
}

// Reset drops all page mappings, as when a new application starts. Page
// mappings deliberately survive kernel boundaries within an application:
// cross-kernel reuse of first-touch locality is the effect Figure 12 of the
// paper illustrates.
func (m *AddressMap) Reset() {
	if m.pages != nil {
		m.pages = make(map[uint64]int)
		for i := range m.pagesPerModule {
			m.pagesPerModule[i] = 0
		}
	}
	m.firstTouchFills = 0
	m.regionBinds = 0
	m.prebinds = 0
}
