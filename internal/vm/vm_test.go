package vm

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mcmgpu/internal/config"
)

func interleaveMap() *AddressMap {
	return NewAddressMap(config.BaselineMCM())
}

func firstTouchMap() *AddressMap {
	c := config.BaselineMCM()
	c.Placement = config.PlaceFirstTouch
	return NewAddressMap(c)
}

func TestInterleaveRoundRobin(t *testing.T) {
	m := interleaveMap()
	for i := uint64(0); i < 64; i++ {
		want := int(i % 4)
		if got := m.Partition(i, 2); got != want {
			t.Fatalf("Partition(%d) = %d, want %d", i, got, want)
		}
	}
	if m.MappedPages() != 0 {
		t.Fatalf("interleave policy mapped pages")
	}
	if _, ok := m.PageOwner(5); ok {
		t.Fatalf("interleave policy reported a page owner")
	}
}

func TestFirstTouchBindsToToucher(t *testing.T) {
	m := firstTouchMap()
	// 4 KB pages, 128 B lines: 32 lines per page. Line 0 is in page 0.
	p := m.Partition(0, 3)
	if p != 3 {
		t.Fatalf("first touch from module 3 placed page in partition %d", p)
	}
	// Any other module touching the same page still goes to module 3.
	if got := m.Partition(1, 0); got != 3 {
		t.Fatalf("second toucher moved the page: partition %d", got)
	}
	owner, ok := m.PageOwner(10)
	if !ok || owner != 3 {
		t.Fatalf("PageOwner = %d,%v; want 3,true", owner, ok)
	}
	if m.MappedPages() != 1 {
		t.Fatalf("MappedPages = %d, want 1", m.MappedPages())
	}
	if got := m.PagesPerModule()[3]; got != 1 {
		t.Fatalf("PagesPerModule[3] = %d, want 1", got)
	}
}

func TestFirstTouchDistinctPages(t *testing.T) {
	m := firstTouchMap()
	linesPerPage := uint64(4 * 1024 / 128)
	for mod := 0; mod < 4; mod++ {
		addr := uint64(mod) * linesPerPage
		if got := m.Partition(addr, mod); got != mod {
			t.Fatalf("page %d: partition %d, want %d", mod, got, mod)
		}
	}
	if m.MappedPages() != 4 {
		t.Fatalf("MappedPages = %d, want 4", m.MappedPages())
	}
}

func TestFirstTouchMultiPartitionModules(t *testing.T) {
	c := config.MultiGPUBaseline() // 2 modules x 2 partitions
	m := NewAddressMap(c)
	// Module 1 touches page 0; its lines must land in partitions 2 or 3 and
	// be interleaved across both.
	seen := map[int]bool{}
	for i := uint64(0); i < 8; i++ {
		p := m.Partition(i, 1)
		if p != 2 && p != 3 {
			t.Fatalf("line %d landed in partition %d, not module 1's partitions", i, p)
		}
		seen[p] = true
	}
	if !seen[2] || !seen[3] {
		t.Fatalf("page lines not interleaved across module partitions: %v", seen)
	}
}

func TestReset(t *testing.T) {
	m := firstTouchMap()
	m.Partition(0, 2)
	m.Reset()
	if m.MappedPages() != 0 {
		t.Fatalf("Reset kept %d pages", m.MappedPages())
	}
	if got := m.PagesPerModule()[2]; got != 0 {
		t.Fatalf("Reset kept per-module counts: %d", got)
	}
	// After reset, a different module can claim the same page.
	if got := m.Partition(0, 1); got != 1 {
		t.Fatalf("post-reset first touch = %d, want 1", got)
	}
}

// Property: partitions are always in range, and under first touch the
// mapping is stable (same line always lands in the same partition no matter
// which module asks later).
func TestPartitionStableProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		m := firstTouchMap()
		first := map[uint64]int{}
		for i := 0; i < int(n)+1; i++ {
			addr := uint64(rng.Intn(1 << 16))
			mod := rng.Intn(4)
			p := m.Partition(addr, mod)
			if p < 0 || p >= 4 {
				return false
			}
			if prev, ok := first[addr]; ok && prev != p {
				return false
			}
			first[addr] = p
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: interleave spreads any dense address range evenly: partition
// counts over N consecutive lines differ by at most 1.
func TestInterleaveBalanceProperty(t *testing.T) {
	f := func(start uint32, n uint16) bool {
		m := interleaveMap()
		counts := make([]int, 4)
		for i := uint64(0); i < uint64(n); i++ {
			counts[m.Partition(uint64(start)+i, 0)]++
		}
		min, max := counts[0], counts[0]
		for _, c := range counts[1:] {
			if c < min {
				min = c
			}
			if c > max {
				max = c
			}
		}
		return max-min <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
