package engine

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestUtilizationSaturatedMidRun is the headline regression for interval
// utilization. A saturated resource has nextFree far ahead of the clock, and
// the old implementation divided the full booked occupancy by the elapsed
// cycles: 1000 busy cycles over a 100-cycle window read as 10.0. The
// time-clipped BusyThrough must read ~1.0 and never more.
func TestUtilizationSaturatedMidRun(t *testing.T) {
	r := NewResource("link", 1)
	r.Reserve(0, 1000) // occupies [0, 1000)
	u := r.Utilization(100)
	if u > 1.0 {
		t.Fatalf("saturated resource mid-run reads %v, want <= 1.0 (old implementation read 10.0)", u)
	}
	if u < 0.99 {
		t.Fatalf("saturated resource mid-run reads %v, want ~1.0", u)
	}
	// Once the booked occupancy has drained, the value must be exactly what
	// an unsampled run reports: BusyCycles()/elapsed.
	if got, want := r.Utilization(2000), 0.5; math.Abs(got-want) > 1e-12 {
		t.Fatalf("drained Utilization = %v, want %v", got, want)
	}
	if got := r.BusyCycles(); got != 1000 {
		t.Fatalf("BusyCycles = %v, want 1000 (end-of-run totals must be untouched)", got)
	}
}

// TestBusyThroughMonotoneAcrossGaps covers the shape the naive
// busy-minus-backlog formula got wrong: a gap between reservations followed
// by a new reservation must never make BusyThrough go backwards or credit
// occupancy that has not happened yet.
func TestBusyThroughMonotoneAcrossGaps(t *testing.T) {
	r := NewResource("x", 1)
	r.Reserve(0, 10) // [0, 10)
	if got := r.BusyThrough(10); got != 10 {
		t.Fatalf("BusyThrough(10) = %v, want 10", got)
	}
	// Idle [10, 100), then a long reservation [100, 200).
	r.Reserve(100, 100)
	// Nothing of the second span has elapsed at cycle 50.
	if got := r.BusyThrough(50); got != 10 {
		t.Fatalf("BusyThrough(50) = %v, want 10 (future reservation must not credit)", got)
	}
	// Halfway through the second span.
	got := r.BusyThrough(150)
	if got < 10 || got > 60+1e-9 {
		t.Fatalf("BusyThrough(150) = %v, want in [10, 60]", got)
	}
	// Drained: exact.
	if got := r.BusyThrough(200); got != 110 {
		t.Fatalf("BusyThrough(200) = %v, want 110", got)
	}
}

// TestBusyThroughProperties is the testing/quick property test: for any
// random reservation sequence observed at any monotone sample times,
//   - BusyThrough is monotone non-decreasing,
//   - each interval's busy delta is within [0, elapsed + rounding slop], so
//     the sampler's clamped utilization is always in [0, 1],
//   - after the resource drains, the settled total equals BusyCycles()
//     exactly, and the interval deltas telescope to it.
func TestBusyThroughProperties(t *testing.T) {
	throughputs := []float64{0.5, 1, 2, 3, 768}
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := NewResource("p", throughputs[rng.Intn(len(throughputs))])

		var now Cycle
		prev := 0.0
		var sum float64
		var lastSample Cycle
		for step := 0; step < 60; step++ {
			now += Cycle(rng.Intn(50))
			if rng.Intn(3) > 0 {
				r.Reserve(now, uint64(1+rng.Intn(2000)))
			}
			if rng.Intn(2) == 0 && now > lastSample {
				got := r.BusyThrough(now)
				if got < prev {
					t.Errorf("seed %d: BusyThrough went backwards: %v after %v", seed, got, prev)
					return false
				}
				delta := got - prev
				elapsed := float64(now - lastSample)
				// toCycle rounding lets the drain branch settle up to half a
				// cycle of occupancy past the query time; beyond that slop a
				// delta must never exceed the cycles that elapsed.
				if delta > elapsed+0.5+1e-6 {
					t.Errorf("seed %d: delta %v over %v elapsed cycles (util %v > 1)",
						seed, delta, elapsed, delta/elapsed)
					return false
				}
				sum += delta
				prev = got
				lastSample = now
			}
		}
		// Drain: query at the published completion time of all occupancy.
		end := toCycle(r.nextFree)
		if end < now {
			end = now
		}
		final := r.BusyThrough(end)
		if final != r.BusyCycles() {
			t.Errorf("seed %d: drained BusyThrough = %v, want exactly BusyCycles %v",
				seed, final, r.BusyCycles())
			return false
		}
		sum += final - prev
		if math.Abs(sum-r.BusyCycles()) > 1e-9*math.Max(1, r.BusyCycles()) {
			t.Errorf("seed %d: interval deltas sum to %v, want BusyCycles %v", seed, sum, r.BusyCycles())
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestResetClearsSettlement pins that Reset restores the zero settlement
// state: a post-Reset resource reports zero utilization everywhere.
func TestResetClearsSettlement(t *testing.T) {
	r := NewResource("x", 1)
	r.Reserve(0, 100)
	r.BusyThrough(50) // advance the watermark mid-span
	r.Reset()
	if got := r.Utilization(10); got != 0 {
		t.Fatalf("post-Reset Utilization = %v, want 0", got)
	}
	if got := r.BusyThrough(10); got != 0 {
		t.Fatalf("post-Reset BusyThrough = %v, want 0", got)
	}
}
