package engine

import (
	"errors"
	"testing"
)

// TestCheckStopsRun asserts an installed check can stop Run mid-drain, with
// the queue left intact and the error reported through StopErr.
func TestCheckStopsRun(t *testing.T) {
	s := New()
	for i := Cycle(0); i < 100; i++ {
		s.At(i, func() {})
	}
	stop := errors.New("budget")
	s.SetCheck(10, func() error {
		if s.Processed() >= 50 {
			return stop
		}
		return nil
	})
	s.Run()
	if !errors.Is(s.StopErr(), stop) {
		t.Fatalf("StopErr = %v, want the check's error", s.StopErr())
	}
	if s.Pending() == 0 {
		t.Fatal("stopped run drained the queue")
	}
	if s.Processed() < 50 || s.Processed() > 60 {
		t.Fatalf("stopped after %d events, want 50..60 (check interval 10)", s.Processed())
	}
}

// TestCheckInterval asserts the check runs once per interval dispatches, not
// per event.
func TestCheckInterval(t *testing.T) {
	s := New()
	for i := Cycle(0); i < 100; i++ {
		s.At(i, func() {})
	}
	calls := 0
	s.SetCheck(25, func() error { calls++; return nil })
	s.Run()
	if calls != 4 {
		t.Fatalf("check ran %d times over 100 events at interval 25, want 4", calls)
	}
	if s.StopErr() != nil {
		t.Fatalf("untripped check set StopErr: %v", s.StopErr())
	}
}

// TestCheckRemovable asserts SetCheck(0, ...) restores the unchecked path
// and clears stale stop state.
func TestCheckRemovable(t *testing.T) {
	s := New()
	s.At(0, func() {})
	s.SetCheck(1, func() error { return errors.New("always") })
	s.Run()
	if s.StopErr() == nil {
		t.Fatal("check did not stop the run")
	}
	s.SetCheck(0, nil)
	if s.StopErr() != nil {
		t.Fatal("removing the check kept a stale StopErr")
	}
	s.At(1, func() {})
	if s.Run() != 1 {
		t.Fatal("unchecked run after removal did not drain")
	}
}

// TestCheckHonoredByRunUntil asserts RunUntil consults the check too.
func TestCheckHonoredByRunUntil(t *testing.T) {
	s := New()
	for i := Cycle(0); i < 100; i++ {
		s.At(i, func() {})
	}
	stop := errors.New("budget")
	s.SetCheck(1, func() error {
		if s.Processed() >= 10 {
			return stop
		}
		return nil
	})
	s.RunUntil(1000)
	if !errors.Is(s.StopErr(), stop) {
		t.Fatalf("RunUntil ignored the check: StopErr = %v", s.StopErr())
	}
	if s.Processed() > 20 {
		t.Fatalf("RunUntil processed %d events past the stop", s.Processed())
	}
}

// TestCheckedRunMatchesUnchecked asserts an installed-but-untripped check
// leaves the run's observable outcome identical to an unchecked run.
func TestCheckedRunMatchesUnchecked(t *testing.T) {
	trace := func(check bool) []Cycle {
		s := New()
		var got []Cycle
		for i := Cycle(0); i < 50; i++ {
			i := i
			s.At(i*3, func() {
				got = append(got, s.Now())
				if i%7 == 0 {
					s.After(2, func() { got = append(got, s.Now()) })
				}
			})
		}
		if check {
			s.SetCheck(1, func() error { return nil })
		}
		s.Run()
		return got
	}
	a, b := trace(false), trace(true)
	if len(a) != len(b) {
		t.Fatalf("checked run dispatched %d events, unchecked %d", len(b), len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d at cycle %d (unchecked) vs %d (checked)", i, a[i], b[i])
		}
	}
}

// TestAuditStopsRun asserts the audit hook can stop Run exactly as the
// budget check can, with the error surfaced through StopErr.
func TestAuditStopsRun(t *testing.T) {
	s := New()
	for i := Cycle(0); i < 100; i++ {
		s.At(i, func() {})
	}
	stop := errors.New("violation")
	s.SetAudit(10, func() error {
		if s.Processed() >= 50 {
			return stop
		}
		return nil
	})
	s.Run()
	if !errors.Is(s.StopErr(), stop) {
		t.Fatalf("StopErr = %v, want the audit's error", s.StopErr())
	}
	if s.Pending() == 0 {
		t.Fatal("stopped run drained the queue")
	}
}

// TestAuditIntervalIndependentOfCheck asserts both hooks run at their own
// intervals when installed together.
func TestAuditIntervalIndependentOfCheck(t *testing.T) {
	s := New()
	for i := Cycle(0); i < 100; i++ {
		s.At(i, func() {})
	}
	checks, audits := 0, 0
	s.SetCheck(10, func() error { checks++; return nil })
	s.SetAudit(25, func() error { audits++; return nil })
	s.Run()
	if checks != 10 || audits != 4 {
		t.Fatalf("over 100 events: %d checks (want 10), %d audits (want 4)", checks, audits)
	}
	if s.StopErr() != nil {
		t.Fatalf("untripped hooks set StopErr: %v", s.StopErr())
	}
}

// TestAuditRemovable asserts SetAudit(0, nil) restores the unhooked path.
func TestAuditRemovable(t *testing.T) {
	s := New()
	s.At(0, func() {})
	s.SetAudit(1, func() error { return errors.New("always") })
	s.Run()
	if s.StopErr() == nil {
		t.Fatal("audit did not stop the run")
	}
	s.SetAudit(0, nil)
	if s.StopErr() != nil {
		t.Fatal("removing the audit kept a stale StopErr")
	}
	s.At(1, func() {})
	if s.Run() != 1 {
		t.Fatal("unhooked run after removal did not drain")
	}
}

// TestCheckPrecedesAudit asserts that when both hooks would trip on the same
// event, the budget check's error wins — corrupted runs report the
// established budget failure, not whichever invariant the corruption hit.
func TestCheckPrecedesAudit(t *testing.T) {
	s := New()
	for i := Cycle(0); i < 10; i++ {
		s.At(i, func() {})
	}
	budget := errors.New("budget")
	s.SetCheck(1, func() error { return budget })
	s.SetAudit(1, func() error { return errors.New("violation") })
	s.Run()
	if !errors.Is(s.StopErr(), budget) {
		t.Fatalf("StopErr = %v, want the check's budget error", s.StopErr())
	}
}

// TestAuditHonoredByRunUntil asserts RunUntil consults the audit hook too.
func TestAuditHonoredByRunUntil(t *testing.T) {
	s := New()
	for i := Cycle(0); i < 100; i++ {
		s.At(i, func() {})
	}
	stop := errors.New("violation")
	s.SetAudit(1, func() error {
		if s.Processed() >= 10 {
			return stop
		}
		return nil
	})
	s.RunUntil(1000)
	if !errors.Is(s.StopErr(), stop) {
		t.Fatalf("RunUntil ignored the audit: StopErr = %v", s.StopErr())
	}
}
