package engine

// Microbenchmarks for the event-engine hot path, plus AllocsPerRun
// regression tests pinning the typed-event path at zero steady-state
// allocations. The end-to-end kernel benchmark lives at the repo root
// (BenchmarkSimulatorThroughput); these isolate the engine's own costs.

import "testing"

// nopEv is the cheapest possible typed event.
type nopEv struct{ n int }

func (e *nopEv) Dispatch(uint8) { e.n++ }

// TestTypedEventScheduleAllocFree pins the allocation-free contract of the
// typed scheduling path: once the queue's backing array has grown to its
// steady-state size, AtEvent + Step allocate nothing per event.
func TestTypedEventScheduleAllocFree(t *testing.T) {
	s := New()
	ev := &nopEv{}
	const batch = 512
	// Warm the queue's backing array to its high-water mark.
	for i := 0; i < batch; i++ {
		s.AtEvent(Cycle(i%13), ev, 0)
	}
	s.Run()
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < batch; i++ {
			s.AtEvent(s.Now()+Cycle(i%13), ev, uint8(i&1))
		}
		s.Run()
	})
	if allocs != 0 {
		t.Fatalf("typed schedule+run allocated %v objects per batch, want 0", allocs)
	}
}

// TestResourceReserveAllocFree pins Reserve/Delay as allocation-free.
func TestResourceReserveAllocFree(t *testing.T) {
	r := NewResource("x", 16)
	allocs := testing.AllocsPerRun(100, func() {
		r.Delay(0, 64)
		r.Reserve(0, 64)
	})
	if allocs != 0 {
		t.Fatalf("Reserve/Delay allocated %v objects per call pair, want 0", allocs)
	}
}

// BenchmarkHeapPushPop measures the specialized heap on the push/pop mix the
// simulator produces: a bounded queue with interleaved scheduling while
// draining, timestamps spread over a small window.
func BenchmarkHeapPushPop(b *testing.B) {
	s := New()
	ev := &nopEv{}
	const window = 1024
	for i := 0; i < window; i++ {
		s.AtEvent(Cycle(i*7%97), ev, 0)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.AtEvent(s.Now()+Cycle(i*31%211), ev, 0)
		s.Step()
	}
}

// BenchmarkTypedSchedule measures pure AtEvent cost (drained between
// batches so the heap stays at a steady size).
func BenchmarkTypedSchedule(b *testing.B) {
	s := New()
	ev := &nopEv{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.AtEvent(s.Now()+Cycle(i&255), ev, 0)
		if i&1023 == 1023 {
			s.Run()
		}
	}
	s.Run()
}

// BenchmarkClosureSchedule is the closure-form comparison point for
// BenchmarkTypedSchedule; the delta is the per-event closure+boxing cost the
// typed API removes.
func BenchmarkClosureSchedule(b *testing.B) {
	s := New()
	n := 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.At(s.Now()+Cycle(i&255), func() { n++ })
		if i&1023 == 1023 {
			s.Run()
		}
	}
	s.Run()
}

// BenchmarkResourceReserve measures the next-free-time reservation rule.
func BenchmarkResourceReserve(b *testing.B) {
	r := NewResource("dram", 768)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Reserve(Cycle(i), 128)
	}
}
