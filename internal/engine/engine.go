// Package engine provides the discrete-event simulation core used by the
// MCM-GPU model: a simulated clock, an event queue, and bandwidth-limited
// resources that model shared components (DRAM partitions, on-package links,
// crossbars, SM issue slots) via next-free-time reservation.
//
// The engine is deliberately small and deterministic: events scheduled for
// the same cycle fire in scheduling order, so a simulation with a fixed
// configuration and seed always produces identical results.
package engine

import (
	"container/heap"
	"fmt"
)

// Cycle is a point in simulated time, measured in GPU core cycles.
// The model clocks the GPU at 1 GHz (Table 3 of the paper), so one cycle is
// one nanosecond; bandwidths expressed in GB/s translate directly to
// bytes per cycle.
type Cycle uint64

type event struct {
	at  Cycle
	seq uint64
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Sim is a discrete-event simulator. The zero value is not usable; create
// one with New.
type Sim struct {
	now    Cycle
	events eventHeap
	seq    uint64
	nRun   uint64
}

// New returns an empty simulator positioned at cycle 0.
func New() *Sim {
	return &Sim{}
}

// Now returns the current simulated time.
func (s *Sim) Now() Cycle { return s.now }

// Processed returns the number of events executed so far.
func (s *Sim) Processed() uint64 { return s.nRun }

// Pending returns the number of events waiting in the queue.
func (s *Sim) Pending() int { return len(s.events) }

// At schedules fn to run at absolute time t. Scheduling in the past is an
// error in the caller; the engine clamps it to the current time so the
// simulation still makes forward progress, which keeps small floating-point
// slop in callers from wedging a run.
func (s *Sim) At(t Cycle, fn func()) {
	if t < s.now {
		t = s.now
	}
	s.seq++
	heap.Push(&s.events, event{at: t, seq: s.seq, fn: fn})
}

// After schedules fn to run delay cycles from now.
func (s *Sim) After(delay Cycle, fn func()) {
	s.At(s.now+delay, fn)
}

// Step executes the earliest pending event and reports whether one existed.
func (s *Sim) Step() bool {
	if len(s.events) == 0 {
		return false
	}
	e := heap.Pop(&s.events).(event)
	s.now = e.at
	s.nRun++
	e.fn()
	return true
}

// Run executes events until the queue drains and returns the number of
// events processed by this call.
func (s *Sim) Run() uint64 {
	start := s.nRun
	for s.Step() {
	}
	return s.nRun - start
}

// RunUntil executes events with timestamps <= limit. It returns the number
// of events processed by this call. Events beyond the limit remain queued.
func (s *Sim) RunUntil(limit Cycle) uint64 {
	start := s.nRun
	for len(s.events) > 0 && s.events[0].at <= limit {
		s.Step()
	}
	if s.now < limit && len(s.events) == 0 {
		s.now = limit
	}
	return s.nRun - start
}

// Resource models a component with finite throughput using next-free-time
// reservation: a transfer of n units occupies the resource for n*cyclesPer
// cycles starting no earlier than the later of the request time and the end
// of the previous reservation. Queuing delay under contention and bandwidth
// saturation both emerge from this rule.
//
// Resources are not safe for concurrent use; the simulation is single
// threaded by design.
type Resource struct {
	name      string
	cyclesPer float64 // cycles consumed per unit transferred
	nextFree  float64
	busy      float64 // total occupied cycles
	units     uint64  // total units transferred
	resv      uint64  // number of reservations
}

// NewResource creates a resource named name with the given throughput in
// units per cycle. A DRAM partition delivering 768 GB/s at 1 GHz is
// NewResource("dram0", 768) with bytes as the unit. unitsPerCycle must be
// positive.
func NewResource(name string, unitsPerCycle float64) *Resource {
	if unitsPerCycle <= 0 {
		panic(fmt.Sprintf("engine: resource %q: non-positive throughput %v", name, unitsPerCycle))
	}
	return &Resource{name: name, cyclesPer: 1 / unitsPerCycle}
}

// Name returns the resource's name.
func (r *Resource) Name() string { return r.name }

// Reserve books units of transfer beginning no earlier than now and returns
// the cycle at which the transfer completes. The resource is busy from
// max(now, previous completion) until the returned time.
func (r *Resource) Reserve(now Cycle, units uint64) Cycle {
	start := float64(now)
	if r.nextFree > start {
		start = r.nextFree
	}
	dur := float64(units) * r.cyclesPer
	r.nextFree = start + dur
	r.busy += dur
	r.units += units
	r.resv++
	return Cycle(r.nextFree + 0.5)
}

// Delay returns how long a reservation of units would wait plus transfer
// time if issued at now, without reserving.
func (r *Resource) Delay(now Cycle, units uint64) Cycle {
	start := float64(now)
	if r.nextFree > start {
		start = r.nextFree
	}
	end := start + float64(units)*r.cyclesPer
	return Cycle(end+0.5) - now
}

// Units returns the total units transferred through the resource.
func (r *Resource) Units() uint64 { return r.units }

// Reservations returns the number of reservations made.
func (r *Resource) Reservations() uint64 { return r.resv }

// BusyCycles returns the total cycles the resource has been occupied.
func (r *Resource) BusyCycles() float64 { return r.busy }

// Utilization returns the fraction of elapsed cycles the resource was busy.
// It reports 0 for a zero elapsed interval.
func (r *Resource) Utilization(elapsed Cycle) float64 {
	if elapsed == 0 {
		return 0
	}
	return r.busy / float64(elapsed)
}

// Reset clears reservation history but keeps the configured throughput.
func (r *Resource) Reset() {
	r.nextFree = 0
	r.busy = 0
	r.units = 0
	r.resv = 0
}
