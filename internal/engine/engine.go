// Package engine provides the discrete-event simulation core used by the
// MCM-GPU model: a simulated clock, an event queue, and bandwidth-limited
// resources that model shared components (DRAM partitions, on-package links,
// crossbars, SM issue slots) via next-free-time reservation.
//
// The engine is deliberately small and deterministic: events scheduled for
// the same cycle fire in scheduling order, so a simulation with a fixed
// configuration and seed always produces identical results.
//
// Two scheduling forms share one queue. The closure form (At/After) is
// convenient for tests and cold paths. The typed form (AtEvent/AfterEvent)
// dispatches to a long-lived receiver implementing Event with a small kind
// tag, so hot paths that fire millions of events can schedule without
// allocating a closure per event; see core's pooled warp/load/store
// contexts. Both forms share the (at, seq) total order, so mixing them
// cannot reorder anything.
package engine

import "fmt"

// Cycle is a point in simulated time, measured in GPU core cycles.
// The model clocks the GPU at 1 GHz (Table 3 of the paper), so one cycle is
// one nanosecond; bandwidths expressed in GB/s translate directly to
// bytes per cycle.
type Cycle uint64

// Event is the receiver side of the closure-free scheduling API. A receiver
// with more than one schedulable action distinguishes them by the kind tag
// it passed to AtEvent/AfterEvent. Implementations are typically pooled,
// long-lived objects, which is what makes this form allocation-free: an
// interface value holding an existing pointer does not allocate.
type Event interface {
	Dispatch(kind uint8)
}

// event is one queue entry. Exactly one of fn and ev is set.
type event struct {
	at   Cycle
	seq  uint64
	fn   func()
	ev   Event
	kind uint8
}

// before reports whether e fires ahead of o: earlier cycle first, and within
// a cycle, scheduling order (seq). This is a strict total order — no two
// events compare equal — so any correct heap pops the queue in exactly one
// sequence, which is what keeps the specialized heap byte-identical to the
// container/heap implementation it replaced.
func (e *event) before(o *event) bool {
	return e.at < o.at || (e.at == o.at && e.seq < o.seq)
}

// Sim is a discrete-event simulator. The zero value is not usable; create
// one with New.
//
// The queue is a hand-specialized 4-ary min-heap over event values with
// inlined sift-up/sift-down. Relative to container/heap this removes the
// interface{} boxing of every push/pop (one heap allocation per event) and
// the Less/Swap indirect calls; 4-ary halves the tree depth, trading a few
// extra comparisons per level for fewer cache-missing levels on the
// million-event queues the simulator builds.
type Sim struct {
	now     Cycle
	events  []event
	seq     uint64
	nRun    uint64
	clamped uint64

	// Periodic stop-check state (see SetCheck). check == nil is the common
	// case and costs one predictable branch per event in Run/RunUntil.
	check      func() error
	checkEvery uint64
	sinceCheck uint64
	stopErr    error

	// Periodic audit state (see SetAudit): a second hook with its own
	// interval, independent of the budget check so auditing can run at a
	// coarser cadence than budget enforcement (invariant sweeps walk cache
	// arrays; budget checks are a few integer compares).
	audit      func() error
	auditEvery uint64
	sinceAudit uint64

	// Periodic sample state (see SetSample): a third hook for the metrics
	// sampler. Unlike check and audit it cannot stop the loop — sampling is
	// strictly observational — so it has no error return.
	sample      func()
	sampleEvery uint64
	sinceSample uint64
}

// New returns an empty simulator positioned at cycle 0.
func New() *Sim {
	return &Sim{}
}

// Now returns the current simulated time.
func (s *Sim) Now() Cycle { return s.now }

// Processed returns the number of events executed so far.
func (s *Sim) Processed() uint64 { return s.nRun }

// Pending returns the number of events waiting in the queue.
func (s *Sim) Pending() int { return len(s.events) }

// Clamped returns the number of events that were scheduled in the past and
// clamped to the current time. A handful per run is expected floating-point
// slop in callers; a count that grows with the event count indicates a
// causality bug upstream that the clamp would otherwise hide.
func (s *Sim) Clamped() uint64 { return s.clamped }

// clamp maps a past timestamp to now (counting it) so the simulation keeps
// making forward progress; see Clamped.
func (s *Sim) clamp(t Cycle) Cycle {
	if t < s.now {
		s.clamped++
		return s.now
	}
	return t
}

// At schedules fn to run at absolute time t. Scheduling in the past is an
// error in the caller; the engine clamps it to the current time (counted by
// Clamped) so the simulation still makes forward progress, which keeps small
// floating-point slop in callers from wedging a run.
func (s *Sim) At(t Cycle, fn func()) {
	s.seq++
	s.push(event{at: s.clamp(t), seq: s.seq, fn: fn})
}

// After schedules fn to run delay cycles from now.
func (s *Sim) After(delay Cycle, fn func()) {
	s.At(s.now+delay, fn)
}

// AtEvent schedules ev.Dispatch(kind) at absolute time t. Past times are
// clamped exactly as in At. The event entry stores the receiver and tag
// inline, so scheduling allocates nothing.
func (s *Sim) AtEvent(t Cycle, ev Event, kind uint8) {
	s.seq++
	s.push(event{at: s.clamp(t), seq: s.seq, ev: ev, kind: kind})
}

// AfterEvent schedules ev.Dispatch(kind) delay cycles from now.
func (s *Sim) AfterEvent(delay Cycle, ev Event, kind uint8) {
	s.AtEvent(s.now+delay, ev, kind)
}

// push inserts e, sifting up with the hole technique: parents shift down
// into the hole and e is written once at its final slot.
func (s *Sim) push(e event) {
	h := append(s.events, e)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) >> 2
		if !e.before(&h[p]) {
			break
		}
		h[i] = h[p]
		i = p
	}
	h[i] = e
	s.events = h
}

// pop removes and returns the earliest event, sifting the displaced tail
// element down from the root.
func (s *Sim) pop() event {
	h := s.events
	top := h[0]
	n := len(h) - 1
	e := h[n]
	h[n] = event{} // release the vacated slot's fn/ev references
	h = h[:n]
	s.events = h
	if n > 0 {
		i := 0
		for {
			c := i<<2 + 1
			if c >= n {
				break
			}
			// Smallest of up to four children.
			m := c
			hi := c + 4
			if hi > n {
				hi = n
			}
			for j := c + 1; j < hi; j++ {
				if h[j].before(&h[m]) {
					m = j
				}
			}
			if !h[m].before(&e) {
				break
			}
			h[i] = h[m]
			i = m
		}
		h[i] = e
	}
	return top
}

// Step executes the earliest pending event and reports whether one existed.
func (s *Sim) Step() bool {
	if len(s.events) == 0 {
		return false
	}
	e := s.pop()
	s.now = e.at
	s.nRun++
	if e.ev != nil {
		e.ev.Dispatch(e.kind)
	} else {
		e.fn()
	}
	return true
}

// SetCheck installs fn to be consulted every interval dispatched events
// during Run and RunUntil. A non-nil return from fn stops the loop; the error
// is retrievable through StopErr until the next Run/RunUntil call. fn must
// not mutate simulation state — it may only observe (Now, Processed, Pending)
// and decide — which is what keeps a run with an installed-but-untripped
// check byte-identical to an unchecked run. Passing fn == nil or
// interval == 0 removes the check, restoring the unchecked fast path.
func (s *Sim) SetCheck(interval uint64, fn func() error) {
	if interval == 0 {
		fn = nil
	}
	s.check = fn
	s.checkEvery = interval
	s.sinceCheck = 0
	s.stopErr = nil
}

// SetAudit installs fn as a second periodic hook, consulted every interval
// dispatched events alongside (and after) the SetCheck hook. It obeys the
// same contract: fn must only observe, a non-nil return stops the loop and
// is retrievable through StopErr, and fn == nil or interval == 0 removes the
// hook. The two hooks are independent so the invariant auditor can sweep at
// a coarser cadence than the budget check without either perturbing the
// other's interval arithmetic.
func (s *Sim) SetAudit(interval uint64, fn func() error) {
	if interval == 0 {
		fn = nil
	}
	s.audit = fn
	s.auditEvery = interval
	s.sinceAudit = 0
	s.stopErr = nil
}

// SetSample installs fn as a third periodic hook, invoked every interval
// dispatched events after the SetCheck and SetAudit hooks. It is the
// engine-side attachment point for the metrics sampler: fn must only observe
// (it has no way to stop the loop and no error return), which is what keeps
// a sampled run byte-identical to an unsampled one. Passing fn == nil or
// interval == 0 removes the hook.
func (s *Sim) SetSample(interval uint64, fn func()) {
	if interval == 0 {
		fn = nil
	}
	s.sample = fn
	s.sampleEvery = interval
	s.sinceSample = 0
}

// StopErr returns the error with which an installed hook (SetCheck or
// SetAudit) stopped the most recent Run/RunUntil call, or nil if the queue
// drained (or the limit was reached) normally.
func (s *Sim) StopErr() error { return s.stopErr }

// hooked reports whether any periodic hook is installed.
func (s *Sim) hooked() bool { return s.check != nil || s.audit != nil || s.sample != nil }

// tick advances the periodic hook state by one dispatched event and reports
// whether the loop must stop. Callers only invoke it when a hook is
// installed. The budget check runs before the audit so a run that is both
// over budget and inconsistent reports the budget trip (the established
// failure mode) rather than whichever invariant the corruption reached
// first.
func (s *Sim) tick() bool {
	if s.check != nil {
		s.sinceCheck++
		if s.sinceCheck >= s.checkEvery {
			s.sinceCheck = 0
			if err := s.check(); err != nil {
				s.stopErr = err
				return true
			}
		}
	}
	if s.audit != nil {
		s.sinceAudit++
		if s.sinceAudit >= s.auditEvery {
			s.sinceAudit = 0
			if err := s.audit(); err != nil {
				s.stopErr = err
				return true
			}
		}
	}
	if s.sample != nil {
		s.sinceSample++
		if s.sinceSample >= s.sampleEvery {
			s.sinceSample = 0
			s.sample()
		}
	}
	return false
}

// Run executes events until the queue drains and returns the number of
// events processed by this call. If an installed hook (SetCheck/SetAudit)
// stops the loop, the queue is left intact and StopErr reports why.
func (s *Sim) Run() uint64 {
	start := s.nRun
	if !s.hooked() {
		for s.Step() {
		}
		return s.nRun - start
	}
	s.stopErr = nil
	for s.Step() {
		if s.tick() {
			break
		}
	}
	return s.nRun - start
}

// RunUntil executes events with timestamps <= limit. It returns the number
// of events processed by this call. Events beyond the limit remain queued.
// Installed hooks (SetCheck/SetAudit) are honored exactly as in Run.
func (s *Sim) RunUntil(limit Cycle) uint64 {
	start := s.nRun
	hooked := s.hooked()
	if hooked {
		s.stopErr = nil
	}
	for len(s.events) > 0 && s.events[0].at <= limit {
		s.Step()
		if hooked && s.tick() {
			return s.nRun - start
		}
	}
	if s.now < limit && len(s.events) == 0 {
		s.now = limit
	}
	return s.nRun - start
}

// Resource models a component with finite throughput using next-free-time
// reservation: a transfer of n units occupies the resource for n*cyclesPer
// cycles starting no earlier than the later of the request time and the end
// of the previous reservation. Queuing delay under contention and bandwidth
// saturation both emerge from this rule.
//
// Resources are not safe for concurrent use; the simulation is single
// threaded by design.
type Resource struct {
	name      string
	cyclesPer float64 // cycles consumed per unit transferred
	nextFree  float64
	busy      float64 // total occupied cycles
	units     uint64  // total units transferred
	resv      uint64  // number of reservations

	// Interval-utilization settlement state (see BusyThrough). Reserve
	// credits the full transfer duration to busy at reservation time, so on
	// a saturated resource busy runs ahead of the clock with nextFree;
	// dividing it by elapsed cycles mid-run used to report utilizations
	// far above 1. BusyThrough clips occupancy to an advancing watermark
	// instead: done is the busy time credited through mark, and tailLo is
	// where the not-yet-settled occupancy span begins. busy itself is
	// untouched, so end-of-run totals are exactly what they always were.
	done   float64 // busy cycles settled at or before mark
	mark   float64 // settlement watermark (monotone)
	tailLo float64 // start of the unsettled occupancy span
}

// NewResource creates a resource named name with the given throughput in
// units per cycle. A DRAM partition delivering 768 GB/s at 1 GHz is
// NewResource("dram0", 768) with bytes as the unit. unitsPerCycle must be
// positive.
func NewResource(name string, unitsPerCycle float64) *Resource {
	if unitsPerCycle <= 0 {
		panic(fmt.Sprintf("engine: resource %q: non-positive throughput %v", name, unitsPerCycle))
	}
	return &Resource{name: name, cyclesPer: 1 / unitsPerCycle}
}

// Name returns the resource's name.
func (r *Resource) Name() string { return r.name }

// window computes a prospective reservation's timing on the resource's
// fractional timeline: transfers start at the later of the request time and
// the end of the previous reservation, occupy dur cycles, and finish at
// end = start + dur. It is shared by Reserve and Delay so the two can never
// disagree on timing. dur is returned separately (rather than recovered as
// end-start) because busy-cycle accounting sums exact durations; the
// subtraction would reintroduce rounding error at large timestamps.
func (r *Resource) window(now Cycle, units uint64) (start, dur, end float64) {
	start = float64(now)
	if r.nextFree > start {
		start = r.nextFree
	}
	dur = float64(units) * r.cyclesPer
	return start, dur, start + dur
}

// toCycle discretizes a fractional completion time onto the cycle grid.
// Resource timelines accumulate in float64 so fractional occupancies from
// non-power-of-two bandwidths don't drift; the +0.5 rounds the published
// completion to the nearest cycle. This is the single place that rounding
// contract lives — every externally visible completion time funnels through
// it, which is what keeps Reserve and Delay mutually consistent.
func toCycle(t float64) Cycle { return Cycle(t + 0.5) }

// Reserve books units of transfer beginning no earlier than now and returns
// the cycle at which the transfer completes. The resource is busy from
// max(now, previous completion) until the returned time.
func (r *Resource) Reserve(now Cycle, units uint64) Cycle {
	start, dur, end := r.window(now, units)
	if r.busy == r.done {
		// No unsettled occupancy: this reservation begins a fresh span.
		// Occupancy already settled through mark must not be re-counted,
		// so the span cannot start before the watermark.
		r.tailLo = start
		if r.tailLo < r.mark {
			r.tailLo = r.mark
		}
	}
	r.nextFree = end
	r.busy += dur
	r.units += units
	r.resv++
	return toCycle(end)
}

// Delay returns how long a reservation of units would wait plus transfer
// time if issued at now, without reserving.
func (r *Resource) Delay(now Cycle, units uint64) Cycle {
	_, _, end := r.window(now, units)
	return toCycle(end) - now
}

// Units returns the total units transferred through the resource.
func (r *Resource) Units() uint64 { return r.units }

// Reservations returns the number of reservations made.
func (r *Resource) Reservations() uint64 { return r.resv }

// BusyCycles returns the total cycles the resource has been occupied,
// including occupancy booked beyond the current simulated time. For a
// time-clipped view use BusyThrough.
func (r *Resource) BusyCycles() float64 { return r.busy }

// BusyThrough returns the busy cycles the resource accumulated at or before
// now, advancing the settlement watermark to now. This is the quantity
// interval utilization must be computed from: Reserve credits a transfer's
// full duration to BusyCycles immediately, so on a saturated resource the
// raw total runs arbitrarily far ahead of the clock.
//
// Settlement is exact whenever now has reached the end of all booked
// occupancy (the rounding contract of toCycle decides "reached", so a
// drained run settles to exactly BusyCycles). Mid-span, occupancy is
// credited pro-rata over the unsettled span [tailLo, nextFree): exact for a
// saturated resource (the span is fully busy — the case the clipping
// exists for) and an approximation when the span has internal idle gaps.
// The approximation preserves the three properties samplers rely on:
// BusyThrough never exceeds now, it is monotone for monotone queries, and
// successive deltas never exceed the elapsed cycles between them and sum to
// BusyCycles once the resource drains.
//
// Queries at or before the current watermark return the settled value
// unchanged; interval samplers always query with monotone timestamps.
func (r *Resource) BusyThrough(now Cycle) float64 {
	t := float64(now)
	if t <= r.mark {
		return r.done
	}
	if now >= toCycle(r.nextFree) {
		// All booked occupancy is over (on the published cycle grid):
		// settle everything. Re-basing done on busy here also resyncs any
		// float drift the pro-rata branch accumulated.
		r.done = r.busy
		r.mark = t
		r.tailLo = r.nextFree
		return r.done
	}
	lo := r.tailLo
	if lo < r.mark {
		lo = r.mark
	}
	if t <= lo {
		// The unsettled span starts in the future; nothing new to credit.
		r.mark = t
		return r.done
	}
	pending := r.busy - r.done
	if pending < 0 {
		pending = 0
	}
	credit := pending * (t - lo) / (r.nextFree - lo)
	if credit > pending {
		credit = pending
	}
	r.done += credit
	r.mark = t
	r.tailLo = t
	return r.done
}

// Utilization returns the fraction of elapsed cycles the resource was busy,
// counting only occupancy at or before elapsed (see BusyThrough) — a
// saturated resource sampled mid-run reads ~1.0, never more. It reports 0
// for a zero elapsed interval. For a fully drained run the result is
// identical to BusyCycles()/elapsed.
func (r *Resource) Utilization(elapsed Cycle) float64 {
	if elapsed == 0 {
		return 0
	}
	return r.BusyThrough(elapsed) / float64(elapsed)
}

// Reset clears reservation history but keeps the configured throughput.
func (r *Resource) Reset() {
	r.nextFree = 0
	r.busy = 0
	r.units = 0
	r.resv = 0
	r.done = 0
	r.mark = 0
	r.tailLo = 0
}
