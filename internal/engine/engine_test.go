package engine

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestSimEmptyRun(t *testing.T) {
	s := New()
	if n := s.Run(); n != 0 {
		t.Fatalf("Run on empty sim processed %d events", n)
	}
	if s.Now() != 0 {
		t.Fatalf("Now = %d, want 0", s.Now())
	}
}

func TestSimOrdering(t *testing.T) {
	s := New()
	var got []int
	s.At(30, func() { got = append(got, 3) })
	s.At(10, func() { got = append(got, 1) })
	s.At(20, func() { got = append(got, 2) })
	s.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if s.Now() != 30 {
		t.Fatalf("Now = %d, want 30", s.Now())
	}
}

func TestSimSameCycleFIFO(t *testing.T) {
	s := New()
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		s.At(5, func() { got = append(got, i) })
	}
	s.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-cycle events ran out of scheduling order at %d: %v", i, got[:i+1])
		}
	}
}

func TestSimScheduleDuringRun(t *testing.T) {
	s := New()
	var got []Cycle
	s.At(10, func() {
		got = append(got, s.Now())
		s.After(5, func() { got = append(got, s.Now()) })
	})
	s.Run()
	if len(got) != 2 || got[0] != 10 || got[1] != 15 {
		t.Fatalf("got %v, want [10 15]", got)
	}
}

func TestSimPastClamped(t *testing.T) {
	s := New()
	fired := Cycle(0)
	s.At(100, func() {
		s.At(50, func() { fired = s.Now() })
	})
	s.Run()
	if fired != 100 {
		t.Fatalf("past-scheduled event fired at %d, want clamped to 100", fired)
	}
}

func TestSimClampedCounter(t *testing.T) {
	s := New()
	s.At(100, func() {
		s.At(50, func() {})            // past: clamped
		s.AtEvent(10, countEv(nil), 0) // past: clamped
		s.At(100, func() {})           // now: not clamped
		s.After(5, func() {})          // future: not clamped
	})
	if s.Clamped() != 0 {
		t.Fatalf("Clamped = %d before any past scheduling", s.Clamped())
	}
	s.Run()
	if s.Clamped() != 2 {
		t.Fatalf("Clamped = %d, want 2", s.Clamped())
	}
}

// countEv is a trivial Event recording dispatches for tests.
type countEv []uint8

func (c countEv) Dispatch(uint8) {}

// recordEv appends (id, kind, time) on dispatch.
type recordEv struct {
	s   *Sim
	id  int
	out *[][3]uint64
}

func (r *recordEv) Dispatch(kind uint8) {
	*r.out = append(*r.out, [3]uint64{uint64(r.id), uint64(kind), uint64(r.s.Now())})
}

func TestSimTypedEvents(t *testing.T) {
	s := New()
	var got [][3]uint64
	a := &recordEv{s: s, id: 1, out: &got}
	b := &recordEv{s: s, id: 2, out: &got}
	s.AtEvent(20, a, 7)
	s.AtEvent(10, b, 3)
	s.AfterEvent(10, a, 1) // same cycle as b's event, scheduled later
	s.Run()
	want := [][3]uint64{{2, 3, 10}, {1, 1, 10}, {1, 7, 20}}
	if len(got) != len(want) {
		t.Fatalf("dispatched %d events, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("dispatch %d = %v, want %v (all: %v)", i, got[i], want[i], got)
		}
	}
}

// Typed and closure events share one queue and one total order: interleaving
// the two forms at the same cycle preserves global scheduling order.
func TestSimMixedFormsSameCycleFIFO(t *testing.T) {
	s := New()
	var got []int
	for i := 0; i < 50; i++ {
		i := i
		if i%2 == 0 {
			s.At(5, func() { got = append(got, i) })
		} else {
			s.AtEvent(5, appendEv{&got, i}, 0)
		}
	}
	s.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("mixed-form same-cycle order broke at %d: %v", i, got[:i+1])
		}
	}
}

type appendEv struct {
	out *[]int
	v   int
}

func (a appendEv) Dispatch(uint8) { *a.out = append(*a.out, a.v) }

func TestSimRunUntil(t *testing.T) {
	s := New()
	count := 0
	for _, at := range []Cycle{5, 10, 15, 20} {
		s.At(at, func() { count++ })
	}
	if n := s.RunUntil(12); n != 2 {
		t.Fatalf("RunUntil(12) processed %d, want 2", n)
	}
	if count != 2 {
		t.Fatalf("count = %d, want 2", count)
	}
	if s.Pending() != 2 {
		t.Fatalf("Pending = %d, want 2", s.Pending())
	}
	s.Run()
	if count != 4 {
		t.Fatalf("count after Run = %d, want 4", count)
	}
}

func TestSimRunUntilAdvancesIdleClock(t *testing.T) {
	s := New()
	s.RunUntil(500)
	if s.Now() != 500 {
		t.Fatalf("Now = %d, want 500", s.Now())
	}
}

// Property: events always fire in nondecreasing time order regardless of the
// order they were scheduled in.
func TestSimOrderingProperty(t *testing.T) {
	f := func(times []uint16) bool {
		s := New()
		var fired []Cycle
		for _, tm := range times {
			at := Cycle(tm)
			s.At(at, func() { fired = append(fired, s.Now()) })
		}
		s.Run()
		if len(fired) != len(times) {
			return false
		}
		return sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] })
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestResourceSerialization(t *testing.T) {
	r := NewResource("link", 2) // 2 bytes/cycle
	end1 := r.Reserve(0, 100)   // occupies [0,50)
	if end1 != 50 {
		t.Fatalf("first reservation ends at %d, want 50", end1)
	}
	end2 := r.Reserve(0, 100) // queued behind the first
	if end2 != 100 {
		t.Fatalf("second reservation ends at %d, want 100", end2)
	}
	end3 := r.Reserve(200, 100) // idle gap, starts at 200
	if end3 != 250 {
		t.Fatalf("third reservation ends at %d, want 250", end3)
	}
	if r.Units() != 300 {
		t.Fatalf("Units = %d, want 300", r.Units())
	}
	if r.Reservations() != 3 {
		t.Fatalf("Reservations = %d, want 3", r.Reservations())
	}
}

func TestResourceUtilization(t *testing.T) {
	r := NewResource("dram", 768)
	r.Reserve(0, 768*100) // busy 100 cycles
	if got := r.Utilization(200); got < 0.49 || got > 0.51 {
		t.Fatalf("Utilization = %v, want ~0.5", got)
	}
	if got := r.Utilization(0); got != 0 {
		t.Fatalf("Utilization over zero interval = %v, want 0", got)
	}
}

func TestResourceDelayDoesNotReserve(t *testing.T) {
	r := NewResource("x", 1)
	d := r.Delay(0, 10)
	if d != 10 {
		t.Fatalf("Delay = %d, want 10", d)
	}
	if r.Units() != 0 || r.BusyCycles() != 0 {
		t.Fatalf("Delay mutated the resource")
	}
	end := r.Reserve(0, 10)
	if end != 10 {
		t.Fatalf("Reserve after Delay ends at %d, want 10", end)
	}
}

func TestResourceReset(t *testing.T) {
	r := NewResource("x", 4)
	r.Reserve(0, 400)
	r.Reset()
	if r.Units() != 0 || r.BusyCycles() != 0 || r.Reservations() != 0 {
		t.Fatalf("Reset did not clear counters")
	}
	if end := r.Reserve(0, 4); end != 1 {
		t.Fatalf("post-Reset reservation ends at %d, want 1", end)
	}
}

func TestResourceInvalidThroughputPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("NewResource with zero throughput did not panic")
		}
	}()
	NewResource("bad", 0)
}

// Property: completion times for a single resource are nondecreasing when
// request times are nondecreasing, and total busy time equals
// sum(units)/throughput.
func TestResourceMonotoneProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		r := NewResource("p", 16)
		now := Cycle(0)
		last := Cycle(0)
		var total uint64
		for i := 0; i < int(n); i++ {
			now += Cycle(rng.Intn(50))
			units := uint64(rng.Intn(1000) + 1)
			total += units
			end := r.Reserve(now, units)
			if end < last || end < now {
				return false
			}
			last = end
		}
		wantBusy := float64(total) / 16
		return r.BusyCycles() > wantBusy-1e-6 && r.BusyCycles() < wantBusy+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: all events scheduled for one cycle fire in exact scheduling
// order, no matter how bursts at different cycles interleave, how large the
// bursts are, or which scheduling form (closure or typed) each event uses.
// This pins the (at, seq) FIFO contract the specialized heap must preserve.
func TestSimSameCycleBurstOrderProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := New()
		n := 200 + rng.Intn(300)
		times := make([]Cycle, n)
		var order []int
		for i := 0; i < n; i++ {
			// Few distinct timestamps => large same-cycle bursts.
			at := Cycle(rng.Intn(7))
			times[i] = at
			i := i
			if i%3 == 0 {
				s.AtEvent(at, appendEv{&order, i}, 0)
			} else {
				s.At(at, func() { order = append(order, i) })
			}
		}
		s.Run()
		if len(order) != n {
			return false
		}
		// Within each timestamp, scheduling indices must ascend; across
		// timestamps, times must not decrease.
		seen := make(map[Cycle]int)
		lastAt := Cycle(0)
		for pos, idx := range order {
			at := times[idx]
			if at < lastAt {
				t.Logf("seed %d: time went backwards at pos %d", seed, pos)
				return false
			}
			lastAt = at
			if prev, ok := seen[at]; ok && idx < prev {
				t.Logf("seed %d: same-cycle order violated: idx %d after %d at t=%d", seed, idx, prev, at)
				return false
			}
			seen[at] = idx
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// The specialized heap must pop in exactly the order a reference sort of
// (at, seq) produces, including under interleaved push/pop (events scheduled
// while the queue drains).
func TestSimHeapMatchesReferenceOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	s := New()
	var got []Cycle
	var schedule func()
	remaining := 5000
	schedule = func() {
		got = append(got, s.Now())
		if remaining > 0 {
			remaining--
			// Future-dated relative to now, keeping the queue churning.
			s.After(Cycle(rng.Intn(50)), schedule)
		}
	}
	for i := 0; i < 64; i++ {
		s.At(Cycle(rng.Intn(100)), schedule)
	}
	s.Run()
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Fatalf("pop order not sorted by time")
	}
	if len(got) != 64+5000 {
		t.Fatalf("processed %d events, want %d", len(got), 64+5000)
	}
}

func BenchmarkSimScheduleRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := New()
		for j := 0; j < 1000; j++ {
			s.At(Cycle(j%97), func() {})
		}
		s.Run()
	}
}
