// Package sm models a streaming multiprocessor: an in-order issue pipeline
// with a bounded warp residency (Table 3: 64 warps per SM), a private L1
// data cache (128 KB, software-coherent, flushed at kernel boundaries), and
// CTA occupancy bookkeeping. Warp-level parallelism is modeled by letting
// every resident warp reserve issue slots on the SM's shared issue resource;
// latency hiding then emerges from the overlap of one warp's memory stall
// with other warps' issue reservations, which is exactly how the paper's
// greedy-then-round-robin scheduler behaves at steady state.
package sm

import (
	"fmt"

	"mcmgpu/internal/audit"
	"mcmgpu/internal/cache"
	"mcmgpu/internal/config"
	"mcmgpu/internal/engine"
)

// StoreBufferSlots is the per-SM store buffer depth. Stores retire from the
// warp's perspective as soon as they enter the buffer, but a warp issuing a
// store when all slots hold in-flight stores stalls until one completes.
// This is the backpressure that keeps write-heavy warps from outrunning the
// memory system.
const StoreBufferSlots = 48

// StoreWaiter is a warp parked on a full store buffer, resumed when a slot
// frees. It is an interface rather than a func() so parking is
// allocation-free: the waiter is the caller's long-lived warp context, and
// boxing an existing pointer into an interface value allocates nothing,
// where binding a method value would build a closure per park.
type StoreWaiter interface {
	StoreSlotFree()
}

// SM is one streaming multiprocessor.
type SM struct {
	id     int
	module int

	// Store buffer occupancy and warps parked waiting for a free slot.
	// waitHead indexes the FIFO front; the slice is compacted when it
	// drains so its capacity is reused instead of sliding away (a
	// [1:]-style pop would shrink the usable window and force the next
	// append to reallocate).
	storeInFlight int
	storeWaiters  []StoreWaiter
	waitHead      int

	// Issue is the SM's instruction issue bandwidth in warp instructions
	// per cycle; every resident warp reserves slots on it.
	Issue *engine.Resource
	// L1 is the SM-private data cache.
	L1 *cache.Cache

	maxWarps     int
	maxCTAs      int
	residentCTAs int
	residentWrps int

	launchedCTAs  uint64
	retiredCTAs   uint64
	instrs        uint64
	peakResidency int
}

// New builds SM id belonging to the given module.
func New(id, module int, cfg *config.Config) *SM {
	maxCTAs := cfg.MaxCTAsPerSM
	if maxCTAs <= 0 {
		maxCTAs = cfg.WarpsPerSM // effectively warp-limited
	}
	return &SM{
		id:       id,
		module:   module,
		Issue:    engine.NewResource(fmt.Sprintf("sm%d-issue", id), cfg.IssuePerSM),
		L1:       cache.New(fmt.Sprintf("sm%d-l1", id), cfg.L1.Lines(), cfg.L1.Ways, cfg.L1.WriteBack),
		maxWarps: cfg.WarpsPerSM,
		maxCTAs:  maxCTAs,
	}
}

// ID returns the SM index.
func (s *SM) ID() int { return s.id }

// Module returns the module (GPM) the SM belongs to.
func (s *SM) Module() int { return s.module }

// CanHost reports whether a CTA of the given warp count fits now.
func (s *SM) CanHost(warpsPerCTA int) bool {
	return s.residentCTAs < s.maxCTAs && s.residentWrps+warpsPerCTA <= s.maxWarps
}

// HostCTA admits a CTA of the given warp count. It panics if the CTA does
// not fit; callers must check CanHost.
func (s *SM) HostCTA(warpsPerCTA int) {
	if !s.CanHost(warpsPerCTA) {
		panic(fmt.Sprintf("sm %d: HostCTA(%d warps) with %d/%d warps and %d/%d CTAs resident",
			s.id, warpsPerCTA, s.residentWrps, s.maxWarps, s.residentCTAs, s.maxCTAs))
	}
	s.residentCTAs++
	s.residentWrps += warpsPerCTA
	s.launchedCTAs++
	if s.residentWrps > s.peakResidency {
		s.peakResidency = s.residentWrps
	}
}

// RetireCTA releases a CTA's warp slots.
func (s *SM) RetireCTA(warpsPerCTA int) {
	if s.residentCTAs <= 0 || s.residentWrps < warpsPerCTA {
		panic(fmt.Sprintf("sm %d: RetireCTA(%d) underflow", s.id, warpsPerCTA))
	}
	s.residentCTAs--
	s.residentWrps -= warpsPerCTA
	s.retiredCTAs++
}

// ResidentWarps returns the warps currently resident.
func (s *SM) ResidentWarps() int { return s.residentWrps }

// ResidentCTAs returns the CTAs currently resident.
func (s *SM) ResidentCTAs() int { return s.residentCTAs }

// PeakResidency returns the maximum warps ever resident together.
func (s *SM) PeakResidency() int { return s.peakResidency }

// CountInstrs records issued warp instructions for reporting.
func (s *SM) CountInstrs(n uint64) { s.instrs += n }

// Instrs returns warp instructions issued by this SM.
func (s *SM) Instrs() uint64 { return s.instrs }

// RetiredCTAs returns the number of CTAs completed on this SM.
func (s *SM) RetiredCTAs() uint64 { return s.retiredCTAs }

// FlushL1 invalidates the L1 at a kernel boundary (software coherence).
// The L1 is write-through in this model, so no dirty data moves.
func (s *SM) FlushL1() { s.L1.Flush() }

// StoreFull reports whether the store buffer has no free slot.
func (s *SM) StoreFull() bool { return s.storeInFlight >= StoreBufferSlots }

// AcquireStore occupies a store buffer slot. Callers must check StoreFull
// first; overflow panics to surface pipeline bugs.
func (s *SM) AcquireStore() {
	if s.StoreFull() {
		panic(fmt.Sprintf("sm %d: store buffer overflow", s.id))
	}
	s.storeInFlight++
}

// AwaitStore parks a waiter until a store buffer slot frees.
func (s *SM) AwaitStore(w StoreWaiter) {
	s.storeWaiters = append(s.storeWaiters, w)
}

// ReleaseStore frees a store buffer slot and returns the next parked waiter
// to resume, if any. The caller resumes it at the current simulated time;
// the waiter re-acquires the freed slot.
func (s *SM) ReleaseStore() StoreWaiter {
	if s.storeInFlight <= 0 {
		panic(fmt.Sprintf("sm %d: store buffer underflow", s.id))
	}
	s.storeInFlight--
	if s.waitHead == len(s.storeWaiters) {
		return nil
	}
	w := s.storeWaiters[s.waitHead]
	s.storeWaiters[s.waitHead] = nil // drop the reference for the GC
	s.waitHead++
	if s.waitHead == len(s.storeWaiters) {
		s.storeWaiters = s.storeWaiters[:0]
		s.waitHead = 0
	}
	return w
}

// StoresInFlight returns current store buffer occupancy.
func (s *SM) StoresInFlight() int { return s.storeInFlight }

// PendingStoreWaiters returns how many warps are parked waiting for a store
// buffer slot. At a kernel boundary this must be zero: a parked warp with no
// in-flight store to wake it is a lost-wakeup deadlock.
func (s *SM) PendingStoreWaiters() int { return len(s.storeWaiters) - s.waitHead }

// LaunchedCTAs returns the number of CTAs admitted to this SM.
func (s *SM) LaunchedCTAs() uint64 { return s.launchedCTAs }

// Audit reports structural invariant violations into r: residency within
// the configured caps, non-negative occupancy counters, store-buffer
// occupancy within its slots, and peak residency consistent with the cap.
// These hold at any instant, so the auditor runs them periodically; the
// boundary-only drain checks (residency back to zero between kernels) live
// in internal/core, which knows where kernel boundaries are.
func (s *SM) Audit(r *audit.Reporter) {
	name := fmt.Sprintf("sm%d", s.id)
	if s.residentCTAs < 0 || s.residentCTAs > s.maxCTAs {
		r.Reportf("sm-residency", name, "%d resident CTAs outside [0, %d]", s.residentCTAs, s.maxCTAs)
	}
	if s.residentWrps < 0 || s.residentWrps > s.maxWarps {
		r.Reportf("sm-residency", name, "%d resident warps outside [0, %d]", s.residentWrps, s.maxWarps)
	}
	if s.peakResidency > s.maxWarps {
		r.Reportf("sm-residency", name, "peak residency %d exceeds the %d-warp cap", s.peakResidency, s.maxWarps)
	}
	if s.storeInFlight < 0 || s.storeInFlight > StoreBufferSlots {
		r.Reportf("sm-store-buffer", name, "%d stores in flight outside [0, %d]", s.storeInFlight, StoreBufferSlots)
	}
	if s.retiredCTAs > s.launchedCTAs {
		r.Reportf("sm-residency", name, "retired %d CTAs but launched only %d", s.retiredCTAs, s.launchedCTAs)
	}
}
