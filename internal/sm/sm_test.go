package sm

import (
	"testing"

	"mcmgpu/internal/config"
)

func newSM(t *testing.T) *SM {
	t.Helper()
	return New(3, 1, config.BaselineMCM())
}

func TestOccupancyLimits(t *testing.T) {
	s := newSM(t)
	// 64 warp slots, CTAs of 8 warps: exactly 8 fit.
	n := 0
	for s.CanHost(8) {
		s.HostCTA(8)
		n++
	}
	if n != 8 {
		t.Fatalf("hosted %d CTAs of 8 warps, want 8", n)
	}
	if s.ResidentWarps() != 64 {
		t.Fatalf("ResidentWarps = %d, want 64", s.ResidentWarps())
	}
	s.RetireCTA(8)
	if !s.CanHost(8) {
		t.Fatalf("cannot host after retirement")
	}
	if s.PeakResidency() != 64 {
		t.Fatalf("PeakResidency = %d, want 64", s.PeakResidency())
	}
}

func TestMaxCTAsCap(t *testing.T) {
	cfg := config.BaselineMCM()
	cfg.MaxCTAsPerSM = 2
	s := New(0, 0, cfg)
	s.HostCTA(1)
	s.HostCTA(1)
	if s.CanHost(1) {
		t.Fatalf("CTA cap not enforced")
	}
}

func TestHostWithoutRoomPanics(t *testing.T) {
	s := newSM(t)
	defer func() {
		if recover() == nil {
			t.Fatalf("overcommit did not panic")
		}
	}()
	s.HostCTA(65)
}

func TestRetireUnderflowPanics(t *testing.T) {
	s := newSM(t)
	defer func() {
		if recover() == nil {
			t.Fatalf("retire underflow did not panic")
		}
	}()
	s.RetireCTA(4)
}

func TestIssueThroughput(t *testing.T) {
	s := newSM(t)
	// Issue rate is 1 instruction/cycle: 10 instructions take 10 cycles.
	if end := s.Issue.Reserve(0, 10); end != 10 {
		t.Fatalf("issue of 10 instrs ends at %d, want 10", end)
	}
	// A second warp's block queues behind the first.
	if end := s.Issue.Reserve(0, 5); end != 15 {
		t.Fatalf("queued issue ends at %d, want 15", end)
	}
}

func TestFlushL1(t *testing.T) {
	s := newSM(t)
	s.L1.Access(42, false)
	if !s.L1.Lookup(42) {
		t.Fatalf("line not cached")
	}
	s.FlushL1()
	if s.L1.Lookup(42) {
		t.Fatalf("line survived kernel-boundary flush")
	}
}

func TestCounters(t *testing.T) {
	s := newSM(t)
	s.HostCTA(4)
	s.RetireCTA(4)
	s.CountInstrs(100)
	s.CountInstrs(11)
	if s.Instrs() != 111 {
		t.Fatalf("Instrs = %d", s.Instrs())
	}
	if s.RetiredCTAs() != 1 {
		t.Fatalf("RetiredCTAs = %d", s.RetiredCTAs())
	}
	if s.ID() != 3 || s.Module() != 1 {
		t.Fatalf("identity wrong: id=%d module=%d", s.ID(), s.Module())
	}
}
