// Package noc models the inter-module interconnect: the on-package ring of
// GPM-Xbars from Section 3.2 of the paper (GRS links, 768 GB/s per link and
// 32 cycles per hop in the baseline), an optional fully connected crossbar
// used for topology ablations, and the two-node case that degenerates to a
// single bidirectional board-level link for the multi-GPU system.
//
// Every unidirectional link is an engine.Resource, so link contention and
// queuing delays under bandwidth pressure are modeled, and per-link byte
// counters provide the inter-GPM bandwidth numbers reported in Figures 7,
// 10 and 14.
package noc

import (
	"fmt"

	"mcmgpu/internal/audit"
	"mcmgpu/internal/config"
	"mcmgpu/internal/engine"
)

// Network is the inter-module interconnect. A Network with a single node
// has no links; Send panics if called on it.
type Network struct {
	topo   config.TopologyKind
	nodes  int
	hopLat engine.Cycle

	// Ring links: cw[i] goes from node i to node (i+1)%n, ccw[i] from node i
	// to node (i-1+n)%n. A two-node ring keeps only cw links (one per
	// direction between the pair) so aggregate bandwidth is 2 links, not 4.
	cw, ccw []*engine.Resource

	// Crossbar links indexed [src][dst].
	xbar [][]*engine.Resource

	// Mesh geometry and links. Node i sits at (i%meshW, i/meshW); east[i]
	// goes to i+1, west[i] to i-1, south[i] to i+meshW, north[i] to
	// i-meshW. Routing is dimension ordered (X then Y).
	meshW, meshH             int
	east, west, north, south []*engine.Resource

	// aggGBps accumulates the bandwidth of every unidirectional link as it
	// is built, so the analytic estimator's link roofline (wire bytes over
	// aggregate link capacity) derives from the same construction as the
	// simulated links instead of re-deriving per-topology link counts.
	aggGBps float64

	totalBytes uint64
	messages   uint64
}

// meshDims picks the most square w x h factorization of n with w >= h.
func meshDims(n int) (w, h int) {
	h = 1
	for d := 2; d*d <= n; d++ {
		if n%d == 0 {
			h = d
		}
	}
	return n / h, h
}

// New builds the network described by cfg. Link bandwidth is cfg.Link.GBps
// per unidirectional link; at the model's 1 GHz clock that is bytes/cycle.
func New(cfg *config.Config) *Network {
	n := &Network{
		topo:   cfg.Topology,
		nodes:  cfg.Modules,
		hopLat: engine.Cycle(cfg.Link.HopLatency),
	}
	if cfg.Modules <= 1 || cfg.Topology == config.TopoNone {
		n.topo = config.TopoNone
		return n
	}
	switch cfg.Topology {
	case config.TopoRing:
		// Link.GBps is the paper's per-link figure (Table 3: 768 GB/s per
		// link): the total bandwidth of one GPM-to-GPM physical link, split
		// equally between its two directions. Each module attaches to two
		// physical links, so its aggregate remote ingress (and egress)
		// capacity equals Link.GBps — exactly the sizing rule of the
		// paper's Section 3.3.1 analysis, where a "4b" (3 TB/s) link is
		// needed to deliver the full 4b of aggregate DRAM bandwidth.
		perDir := cfg.Link.GBps / 2
		n.cw = make([]*engine.Resource, cfg.Modules)
		for i := range n.cw {
			n.cw[i] = n.newLink(fmt.Sprintf("ring-cw-%d", i), perDir)
		}
		if cfg.Modules > 2 {
			n.ccw = make([]*engine.Resource, cfg.Modules)
			for i := range n.ccw {
				n.ccw[i] = n.newLink(fmt.Sprintf("ring-ccw-%d", i), perDir)
			}
		}
	case config.TopoCrossbar:
		// Iso-attachment-bandwidth ablation: each module's aggregate
		// ingress matches the ring's (Link.GBps), spread over its
		// (Modules-1) incoming pair links.
		perPair := cfg.Link.GBps / float64(cfg.Modules-1)
		n.xbar = make([][]*engine.Resource, cfg.Modules)
		for i := range n.xbar {
			n.xbar[i] = make([]*engine.Resource, cfg.Modules)
			for j := range n.xbar[i] {
				if i != j {
					n.xbar[i][j] = n.newLink(fmt.Sprintf("xbar-%d-%d", i, j), perPair)
				}
			}
		}
	case config.TopoMesh:
		// Mesh links carry Link.GBps split between the two directions of a
		// physical channel, like the ring.
		perDir := cfg.Link.GBps / 2
		w, h := meshDims(cfg.Modules)
		n.meshW, n.meshH = w, h
		n.east = make([]*engine.Resource, cfg.Modules)
		n.west = make([]*engine.Resource, cfg.Modules)
		n.north = make([]*engine.Resource, cfg.Modules)
		n.south = make([]*engine.Resource, cfg.Modules)
		for i := 0; i < cfg.Modules; i++ {
			x, y := i%w, i/w
			if x+1 < w {
				n.east[i] = n.newLink(fmt.Sprintf("mesh-e-%d", i), perDir)
				n.west[i+1] = n.newLink(fmt.Sprintf("mesh-w-%d", i+1), perDir)
			}
			if y+1 < h {
				n.south[i] = n.newLink(fmt.Sprintf("mesh-s-%d", i), perDir)
				n.north[i+w] = n.newLink(fmt.Sprintf("mesh-n-%d", i+w), perDir)
			}
		}
	default:
		panic(fmt.Sprintf("noc: unsupported topology %v", cfg.Topology))
	}
	return n
}

// newLink builds one unidirectional link resource and accounts its
// bandwidth toward the network's aggregate capacity.
func (n *Network) newLink(name string, gbps float64) *engine.Resource {
	n.aggGBps += gbps
	return engine.NewResource(name, gbps)
}

// Nodes returns the number of modules on the network.
func (n *Network) Nodes() int { return n.nodes }

// AggregateGBps returns the summed bandwidth of every unidirectional link
// (bytes/cycle at 1 GHz). Dividing total wire bytes (TotalBytes' quantity,
// which counts a byte once per link traversed) by this is the network-wide
// bandwidth roofline the analytic estimator uses: it automatically accounts
// for multi-hop messages consuming capacity on every intermediate link.
func (n *Network) AggregateGBps() float64 { return n.aggGBps }

// MeanHops returns the mean link count of a message between two distinct
// uniformly chosen modules, following the same min-hop routes Send takes.
// Single-module networks return 0.
func (n *Network) MeanHops() float64 {
	if n.nodes <= 1 || n.topo == config.TopoNone {
		return 0
	}
	var sum, pairs float64
	for s := 0; s < n.nodes; s++ {
		for d := 0; d < n.nodes; d++ {
			if s == d {
				continue
			}
			sum += float64(n.Hops(s, d))
			pairs++
		}
	}
	return sum / pairs
}

// Hops returns the number of links a message from src to dst traverses.
func (n *Network) Hops(src, dst int) int {
	if src == dst {
		return 0
	}
	switch n.topo {
	case config.TopoRing:
		d := dst - src
		if d < 0 {
			d += n.nodes
		}
		if rev := n.nodes - d; n.ccw != nil && rev < d {
			return rev
		}
		return d
	case config.TopoCrossbar:
		return 1
	case config.TopoMesh:
		sx, sy := src%n.meshW, src/n.meshW
		dx, dy := dst%n.meshW, dst/n.meshW
		return abs(dx-sx) + abs(dy-sy)
	}
	return 0
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// Send transfers a message of the given size from src to dst, reserving
// bandwidth on every traversed link and paying the per-hop latency, and
// returns the arrival time. Messages between a node and itself are an error
// in the caller.
func (n *Network) Send(now engine.Cycle, src, dst int, bytes uint64) engine.Cycle {
	if src == dst {
		panic(fmt.Sprintf("noc: Send from node %d to itself", src))
	}
	if n.topo == config.TopoNone {
		panic("noc: Send on a single-module machine")
	}
	n.messages++
	t := now
	switch n.topo {
	case config.TopoRing:
		d := dst - src
		if d < 0 {
			d += n.nodes
		}
		useCW := true
		if n.ccw != nil {
			rev := n.nodes - d
			// Min-hop routing; equal-distance ties alternate by source
			// parity so opposing flows balance across both directions.
			if rev < d || (rev == d && src&1 == 1) {
				useCW = false
				d = rev
			}
		}
		node := src
		for h := 0; h < d; h++ {
			var link *engine.Resource
			if useCW {
				link = n.cw[node]
				node = (node + 1) % n.nodes
			} else {
				link = n.ccw[node]
				node = (node - 1 + n.nodes) % n.nodes
			}
			t = link.Reserve(t, bytes) + n.hopLat
			n.totalBytes += bytes
		}
	case config.TopoCrossbar:
		t = n.xbar[src][dst].Reserve(t, bytes) + n.hopLat
		n.totalBytes += bytes
	case config.TopoMesh:
		// Dimension-ordered routing: X first, then Y.
		node := src
		dx := dst%n.meshW - src%n.meshW
		for dx != 0 {
			var link *engine.Resource
			if dx > 0 {
				link = n.east[node]
				node++
				dx--
			} else {
				link = n.west[node]
				node--
				dx++
			}
			t = link.Reserve(t, bytes) + n.hopLat
			n.totalBytes += bytes
		}
		dy := dst/n.meshW - node/n.meshW
		for dy != 0 {
			var link *engine.Resource
			if dy > 0 {
				link = n.south[node]
				node += n.meshW
				dy--
			} else {
				link = n.north[node]
				node -= n.meshW
				dy++
			}
			t = link.Reserve(t, bytes) + n.hopLat
			n.totalBytes += bytes
		}
	}
	return t
}

// TotalBytes returns the total bytes carried over inter-module links,
// counting a byte once per link traversed (i.e. wire bytes, the quantity
// behind the paper's inter-GPM bandwidth figures).
func (n *Network) TotalBytes() uint64 { return n.totalBytes }

// Messages returns the number of Send calls.
func (n *Network) Messages() uint64 { return n.messages }

// links returns all non-nil link resources.
func (n *Network) links() []*engine.Resource {
	var out []*engine.Resource
	for _, group := range [][]*engine.Resource{n.cw, n.ccw, n.east, n.west, n.north, n.south} {
		for _, l := range group {
			if l != nil {
				out = append(out, l)
			}
		}
	}
	for _, row := range n.xbar {
		for _, l := range row {
			if l != nil {
				out = append(out, l)
			}
		}
	}
	return out
}

// Link is one unidirectional link resource together with the module it
// egresses from, for per-GPM attribution in the metrics sampler.
type Link struct {
	GPM int
	Res *engine.Resource
}

// Links returns every link with its source module, in a deterministic order
// (ring cw/ccw, mesh east/west/north/south, then crossbar rows). Link i of a
// directional group egresses node i; crossbar link [i][j] egresses node i.
func (n *Network) Links() []Link {
	var out []Link
	for _, group := range [][]*engine.Resource{n.cw, n.ccw, n.east, n.west, n.north, n.south} {
		for i, l := range group {
			if l != nil {
				out = append(out, Link{GPM: i, Res: l})
			}
		}
	}
	for i, row := range n.xbar {
		for _, l := range row {
			if l != nil {
				out = append(out, Link{GPM: i, Res: l})
			}
		}
	}
	return out
}

// Audit checks byte conservation into r: the network-wide totalBytes counter
// (the quantity behind the paper's inter-GPM bandwidth figures) must equal
// the sum of per-link reservation units, since Send increments both for
// every link a message traverses. A mismatch means bytes were double-booked
// on a link or dropped from the total — exactly the silent skew that would
// corrupt Figures 7, 10 and 14.
func (n *Network) Audit(r *audit.Reporter) {
	var sum uint64
	for _, l := range n.links() {
		sum += l.Units()
	}
	audit.Equal(r, "noc-bytes", "noc", "sum of per-link reserved bytes", sum, n.totalBytes)
}

// MaxLinkUtilization returns the utilization of the busiest link over the
// elapsed interval.
func (n *Network) MaxLinkUtilization(elapsed engine.Cycle) float64 {
	var max float64
	for _, l := range n.links() {
		if u := l.Utilization(elapsed); u > max {
			max = u
		}
	}
	return max
}

// Reset clears byte counters and link reservations.
func (n *Network) Reset() {
	for _, l := range n.links() {
		l.Reset()
	}
	n.totalBytes = 0
	n.messages = 0
}
