package noc

import (
	"testing"
	"testing/quick"

	"mcmgpu/internal/config"
	"mcmgpu/internal/engine"
)

func ringNet() *Network {
	return New(config.BaselineMCM()) // 4-node ring, 768 GB/s, 32 cyc/hop
}

func TestHopsRing(t *testing.T) {
	n := ringNet()
	cases := []struct{ src, dst, want int }{
		{0, 0, 0}, {0, 1, 1}, {0, 2, 2}, {0, 3, 1},
		{1, 0, 1}, {2, 0, 2}, {3, 1, 2}, {3, 2, 1},
	}
	for _, c := range cases {
		if got := n.Hops(c.src, c.dst); got != c.want {
			t.Errorf("Hops(%d,%d) = %d, want %d", c.src, c.dst, got, c.want)
		}
	}
}

func TestSendLatencySingleHop(t *testing.T) {
	n := ringNet()
	// A 768 GB/s link carries 384 B/cycle per direction: 768 bytes take
	// 2 cycles of serialization + 32 cycles of hop latency.
	arrive := n.Send(0, 0, 1, 768)
	if arrive != 34 {
		t.Fatalf("arrival = %d, want 34", arrive)
	}
	if n.TotalBytes() != 768 {
		t.Fatalf("TotalBytes = %d, want 768", n.TotalBytes())
	}
}

func TestSendTwoHopsCountsWireBytesTwice(t *testing.T) {
	n := ringNet()
	arrive := n.Send(0, 0, 2, 768)
	// Two hops: 2 x (2 cycles transfer + 32 cycles hop latency).
	if arrive != 68 {
		t.Fatalf("arrival = %d, want 68", arrive)
	}
	if n.TotalBytes() != 2*768 {
		t.Fatalf("TotalBytes = %d, want %d (a byte per traversed link)", n.TotalBytes(), 2*768)
	}
}

func TestRingContention(t *testing.T) {
	n := ringNet()
	a := n.Send(0, 0, 1, 7680) // 20 cycles on link cw-0 at 384 B/cycle
	b := n.Send(0, 0, 1, 7680) // queued behind it
	if a != 52 {
		t.Fatalf("first arrival = %d, want 52", a)
	}
	if b != 72 {
		t.Fatalf("queued arrival = %d, want 72", b)
	}
}

func TestOppositeDirectionsDoNotContend(t *testing.T) {
	n := ringNet()
	a := n.Send(0, 0, 1, 7680) // cw from 0
	b := n.Send(0, 0, 3, 7680) // ccw from 0
	if a != b {
		t.Fatalf("cw and ccw sends interfered: %d vs %d", a, b)
	}
}

func TestTwoNodeRingSingleLinkPair(t *testing.T) {
	n := New(config.MultiGPUBaseline()) // 2 GPUs, 128 GB/s per direction
	if got := n.Hops(0, 1); got != 1 {
		t.Fatalf("Hops(0,1) = %d, want 1", got)
	}
	// Both directions exist and are independent.
	a := n.Send(0, 0, 1, 1280) // 10 cycles at 128 B/cyc (256 GB/s aggregate)
	b := n.Send(0, 1, 0, 1280)
	if a != b {
		t.Fatalf("directions contend on a 2-node ring: %d vs %d", a, b)
	}
	// Same direction serializes.
	c := n.Send(0, 0, 1, 1280)
	if c <= a {
		t.Fatalf("same-direction messages did not queue: %d then %d", a, c)
	}
	// Exactly 2 links exist.
	if got := len(n.links()); got != 2 {
		t.Fatalf("2-node ring has %d links, want 2", got)
	}
}

func TestCrossbar(t *testing.T) {
	cfg := config.BaselineMCM()
	cfg.Topology = config.TopoCrossbar
	n := New(cfg)
	if got := n.Hops(0, 2); got != 1 {
		t.Fatalf("crossbar Hops(0,2) = %d, want 1", got)
	}
	// Pair links carry GBps/(modules-1) = 256 B/cycle: 3 cycles + hop.
	a := n.Send(0, 0, 2, 768)
	if a != 35 {
		t.Fatalf("crossbar arrival = %d, want 35", a)
	}
	// Distinct pairs do not contend.
	b := n.Send(0, 1, 3, 768)
	if b != 35 {
		t.Fatalf("independent crossbar pair queued: %d", b)
	}
}

func TestSingleModulePanics(t *testing.T) {
	n := New(config.MustMonolithic(128))
	defer func() {
		if recover() == nil {
			t.Fatalf("Send on single-module network did not panic")
		}
	}()
	n.Send(0, 0, 0, 128)
}

func TestSelfSendPanics(t *testing.T) {
	n := ringNet()
	defer func() {
		if recover() == nil {
			t.Fatalf("self-send did not panic")
		}
	}()
	n.Send(0, 1, 1, 128)
}

func TestReset(t *testing.T) {
	n := ringNet()
	n.Send(0, 0, 1, 4096)
	n.Reset()
	if n.TotalBytes() != 0 || n.Messages() != 0 {
		t.Fatalf("Reset kept counters")
	}
	if got := n.Send(0, 0, 1, 768); got != 34 {
		t.Fatalf("links not reset: arrival %d", got)
	}
}

func TestMaxLinkUtilization(t *testing.T) {
	n := ringNet()
	n.Send(0, 0, 1, 38400) // 100 cycles on one 384 B/cycle link
	if u := n.MaxLinkUtilization(200); u < 0.49 || u > 0.51 {
		t.Fatalf("MaxLinkUtilization = %v, want ~0.5", u)
	}
}

// Property: arrival time always >= send time + hops*hopLatency, and hop
// counts are symmetric on the 4-node ring.
func TestSendLatencyLowerBoundProperty(t *testing.T) {
	f := func(src, dst uint8, sz uint16) bool {
		n := ringNet()
		s, d := int(src%4), int(dst%4)
		if s == d {
			return n.Hops(s, d) == 0
		}
		if n.Hops(s, d) != n.Hops(d, s) {
			return false
		}
		now := engine.Cycle(100)
		arrive := n.Send(now, s, d, uint64(sz)+1)
		minLat := engine.Cycle(n.Hops(s, d)) * 32
		return arrive >= now+minLat
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func meshNet(modules int) *Network {
	cfg := config.BaselineMCM()
	cfg.Modules = modules
	cfg.Topology = config.TopoMesh
	return New(cfg)
}

func TestMeshDims(t *testing.T) {
	cases := []struct{ n, w, h int }{
		{4, 2, 2}, {8, 4, 2}, {16, 4, 4}, {6, 3, 2}, {2, 2, 1},
	}
	for _, c := range cases {
		w, h := meshDims(c.n)
		if w != c.w || h != c.h {
			t.Errorf("meshDims(%d) = %dx%d, want %dx%d", c.n, w, h, c.w, c.h)
		}
	}
}

func TestMeshHops(t *testing.T) {
	n := meshNet(8) // 4x2
	cases := []struct{ src, dst, want int }{
		{0, 1, 1}, {0, 3, 3}, {0, 4, 1}, {0, 7, 4}, {3, 4, 4}, {5, 6, 1},
	}
	for _, c := range cases {
		if got := n.Hops(c.src, c.dst); got != c.want {
			t.Errorf("mesh Hops(%d,%d) = %d, want %d", c.src, c.dst, got, c.want)
		}
	}
}

func TestMeshSendXYRouting(t *testing.T) {
	n := meshNet(8) // 4x2: node 0 at (0,0), node 7 at (3,1)
	// 768 bytes at 384 B/cyc per hop = 2 cycles + 32 hop latency, 4 hops.
	arrive := n.Send(0, 0, 7, 768)
	if arrive != 4*(2+32) {
		t.Fatalf("mesh arrival = %d, want %d", arrive, 4*(2+32))
	}
	if n.TotalBytes() != 4*768 {
		t.Fatalf("TotalBytes = %d, want %d", n.TotalBytes(), 4*768)
	}
}

func TestMeshSendDisjointPathsDoNotContend(t *testing.T) {
	n := meshNet(8)
	a := n.Send(0, 0, 1, 768) // east link of 0
	b := n.Send(0, 5, 6, 768) // east link of 5
	if a != b {
		t.Fatalf("disjoint mesh paths interfered: %d vs %d", a, b)
	}
	// Same link serializes.
	c := n.Send(0, 0, 1, 768)
	if c <= a {
		t.Fatalf("same mesh link did not queue")
	}
}

// Property: mesh arrival time >= hops * hopLatency and routing stays inside
// the grid for all pairs.
func TestMeshSendProperty(t *testing.T) {
	f := func(src, dst uint8) bool {
		n := meshNet(16)
		s, d := int(src%16), int(dst%16)
		if s == d {
			return n.Hops(s, d) == 0
		}
		arrive := n.Send(100, s, d, 128)
		return arrive >= engine.Cycle(100+32*n.Hops(s, d))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
