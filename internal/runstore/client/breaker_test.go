package client

import (
	"testing"
	"time"
)

// scripted returns a breaker on a manual clock with zero jitter, so every
// transition in the test is deterministic.
func scripted(threshold int, cooldown time.Duration) (*Breaker, *time.Time) {
	now := time.Unix(1000, 0)
	b := &Breaker{
		Threshold: threshold,
		Cooldown:  cooldown,
		now:       func() time.Time { return now },
		jitter:    func(int64) int64 { return 0 },
	}
	return b, &now
}

// TestBreakerOpensAtThreshold: consecutive failures trip the breaker;
// a success along the way resets the count.
func TestBreakerOpensAtThreshold(t *testing.T) {
	b, _ := scripted(3, 2*time.Second)
	b.Record(false)
	b.Record(false)
	b.Record(true) // resets the streak
	b.Record(false)
	b.Record(false)
	if b.State() != BreakerClosed {
		t.Fatalf("state %q after 2 failures post-reset, want closed", b.State())
	}
	b.Record(false)
	if b.State() != BreakerOpen {
		t.Fatalf("state %q after 3 consecutive failures, want open", b.State())
	}
	if b.Allow() {
		t.Fatal("open breaker admitted a request")
	}
}

// TestBreakerHalfOpenSingleProbe: after the cooldown exactly one caller is
// admitted as the probe; its success closes the breaker.
func TestBreakerHalfOpenSingleProbe(t *testing.T) {
	b, now := scripted(1, 2*time.Second)
	b.Record(false) // trip
	if b.Allow() {
		t.Fatal("open breaker admitted a request before cooldown")
	}
	*now = now.Add(2*time.Second + time.Millisecond)
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state %q after cooldown, want half-open", b.State())
	}
	if !b.Allow() {
		t.Fatal("half-open breaker refused the probe")
	}
	if b.Allow() {
		t.Fatal("half-open breaker admitted a second concurrent probe")
	}
	b.Record(true)
	if b.State() != BreakerClosed || !b.Allow() {
		t.Fatalf("successful probe did not close the breaker (state %q)", b.State())
	}
}

// TestBreakerEscalatesCooldown: a failed probe re-opens with a doubled
// cooldown, capped at MaxCooldown; a success resets the escalation.
func TestBreakerEscalatesCooldown(t *testing.T) {
	b, now := scripted(1, 2*time.Second)
	b.MaxCooldown = 5 * time.Second

	wait := func(want time.Duration) {
		t.Helper()
		*now = now.Add(want - time.Millisecond)
		if b.Allow() {
			t.Fatalf("breaker reopened before its %v cooldown", want)
		}
		*now = now.Add(2 * time.Millisecond)
		if !b.Allow() {
			t.Fatalf("breaker still closed to probes after %v", want)
		}
	}

	b.Record(false) // open #1: 2s
	wait(2 * time.Second)
	b.Record(false) // probe failed → open #2: 4s
	wait(4 * time.Second)
	b.Record(false) // open #3: 8s capped to 5s
	wait(5 * time.Second)
	b.Record(true) // recovered: escalation resets
	b.Record(false)
	wait(2 * time.Second)
}

// TestBreakerJitterBounds: real (non-scripted) cooldowns carry up to 50%
// additive jitter — never shorter than the base, never more than 1.5x.
func TestBreakerJitterBounds(t *testing.T) {
	b := &Breaker{Cooldown: 2 * time.Second}
	for i := 0; i < 100; i++ {
		d := b.nextCooldown(1)
		if d < 2*time.Second || d > 3*time.Second {
			t.Fatalf("cooldown %v outside [2s, 3s]", d)
		}
	}
}

// TestBreakerZeroValue: the zero value is a working closed breaker with
// the documented defaults.
func TestBreakerZeroValue(t *testing.T) {
	var b Breaker
	if !b.Allow() || b.State() != BreakerClosed {
		t.Fatal("zero-value breaker is not a usable closed breaker")
	}
	for i := 0; i < 3; i++ {
		b.Record(false)
	}
	if b.State() != BreakerOpen {
		t.Fatalf("default threshold: state %q after 3 failures, want open", b.State())
	}
}
