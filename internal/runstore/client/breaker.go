package client

import (
	"math/rand"
	"sync"
	"time"
)

// Breaker states.
const (
	// BreakerClosed: the backend is trusted; requests flow.
	BreakerClosed = "closed"
	// BreakerOpen: the backend failed repeatedly; requests are refused
	// until the cooldown expires.
	BreakerOpen = "open"
	// BreakerHalfOpen: the cooldown expired; exactly one probe request is
	// admitted to decide whether the backend recovered.
	BreakerHalfOpen = "half-open"
)

// Breaker is a per-backend circuit breaker. A backend that fails
// Threshold consecutive requests stops receiving traffic for a cooldown;
// after the cooldown one probe request is admitted (half-open), and its
// outcome either closes the breaker or re-opens it with an escalated,
// jittered cooldown. The jitter matters in a fleet: without it, every
// client's breaker over a recovering backend reopens at the same instant
// and the stampede knocks it over again.
//
// The zero value is a usable closed breaker with defaults. All methods
// are safe for concurrent use.
type Breaker struct {
	// Threshold is how many consecutive failures open the breaker
	// (default 3).
	Threshold int
	// Cooldown is the first open interval (default 2s). Each consecutive
	// open doubles it, up to MaxCooldown.
	Cooldown time.Duration
	// MaxCooldown caps the escalation (default 30s).
	MaxCooldown time.Duration

	// now and jitter are injectable for deterministic tests; nil means
	// time.Now and a rand.Int63n over the half-cooldown.
	now    func() time.Time
	jitter func(max int64) int64

	mu      sync.Mutex
	state   string // "" means closed
	fails   int    // consecutive failures while closed
	opens   int    // consecutive opens; escalates the cooldown
	until   time.Time
	probing bool // a half-open probe is in flight
	rng     *rand.Rand
}

func (b *Breaker) threshold() int {
	if b.Threshold > 0 {
		return b.Threshold
	}
	return 3
}

func (b *Breaker) cooldownBase() time.Duration {
	if b.Cooldown > 0 {
		return b.Cooldown
	}
	return 2 * time.Second
}

func (b *Breaker) maxCooldown() time.Duration {
	if b.MaxCooldown > 0 {
		return b.MaxCooldown
	}
	return 30 * time.Second
}

func (b *Breaker) clock() time.Time {
	if b.now != nil {
		return b.now()
	}
	return time.Now()
}

// nextCooldown is the open interval after the n-th consecutive open
// (1-based): base doubled per open, capped, plus up to 50% uniform jitter.
// Called with b.mu held.
func (b *Breaker) nextCooldown(n int) time.Duration {
	d := b.cooldownBase()
	for i := 1; i < n && d < b.maxCooldown(); i++ {
		d *= 2
	}
	if d > b.maxCooldown() {
		d = b.maxCooldown()
	}
	var j int64
	if b.jitter != nil {
		j = b.jitter(int64(d) / 2)
	} else {
		if b.rng == nil {
			b.rng = rand.New(rand.NewSource(time.Now().UnixNano()))
		}
		j = b.rng.Int63n(int64(d)/2 + 1)
	}
	return d + time.Duration(j)
}

// Allow reports whether a request may be sent to this backend now. While
// open it returns false until the cooldown expires; the first Allow after
// expiry transitions to half-open and admits that single caller as the
// probe — concurrent callers keep getting false until the probe reports
// via Record.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case "", BreakerClosed:
		return true
	case BreakerOpen:
		if b.clock().Before(b.until) {
			return false
		}
		b.state = BreakerHalfOpen
		b.probing = true
		return true
	case BreakerHalfOpen:
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
	return true
}

// Record reports the outcome of a request Allow admitted. A success in
// half-open closes the breaker and resets the escalation; a failure
// re-opens it with a longer cooldown. While closed, Threshold consecutive
// failures open it.
func (b *Breaker) Record(ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if ok {
		b.state = BreakerClosed
		b.fails = 0
		b.opens = 0
		b.probing = false
		return
	}
	switch b.state {
	case "", BreakerClosed:
		b.fails++
		if b.fails >= b.threshold() {
			b.open()
		}
	case BreakerHalfOpen:
		b.open()
	case BreakerOpen:
		// A straggler from before the trip; the breaker already knows.
	}
}

// open transitions to open with the next escalated cooldown. Called with
// b.mu held.
func (b *Breaker) open() {
	b.opens++
	b.state = BreakerOpen
	b.fails = 0
	b.probing = false
	b.until = b.clock().Add(b.nextCooldown(b.opens))
}

// State returns the current breaker state, advancing open → half-open if
// the cooldown has expired (without admitting a probe).
func (b *Breaker) State() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == "" {
		return BreakerClosed
	}
	if b.state == BreakerOpen && !b.clock().Before(b.until) {
		return BreakerHalfOpen
	}
	return b.state
}
