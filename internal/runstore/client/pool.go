package client

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"time"

	"mcmgpu/internal/core"
)

// Backend is one mcmserve instance in a Pool: its client plus the circuit
// breaker guarding it.
type Backend struct {
	URL     string
	Client  *Client
	Breaker *Breaker
}

// PoolStats counts the pool's fault-handling work. All zeros on a healthy
// fleet; tests use the counters to prove failover and hedging actually
// engaged (anti-vacuity).
type PoolStats struct {
	// Failovers is how many backend shard executions failed and had their
	// jobs routed elsewhere.
	Failovers uint64
	// Resubmits is how many job submissions were replayed on a later
	// round. Content-derived job IDs make every replay idempotent.
	Resubmits uint64
	// Hedged is how many result fetches fired a hedge request against a
	// second backend because the first was slow.
	Hedged uint64
}

// Pool executes manifests across several mcmserve backends sharing one
// run store. It shards distinct jobs across healthy backends, watches
// each shard's batch, and — because job IDs are content-derived and the
// store is shared — freely resubmits any shard whose backend dies
// mid-run: the surviving backends serve already-computed cells as store
// hits, so a failover never duplicates a simulation.
//
// Health is judged per backend: a readiness probe before every round plus
// a circuit breaker that opens after repeated failures and re-admits
// traffic through single jittered probes. Slow result fetches are hedged
// against a second backend; the first answer wins.
type Pool struct {
	Backends []*Backend
	// MaxRounds bounds the submit → watch → failover loop (default 10).
	MaxRounds int
	// HedgeAfter is how long a result fetch may dawdle before a hedge
	// fires at another backend (default 2s; <= 0 with 2+ backends still
	// defaults — set Backends to one entry to disable hedging).
	HedgeAfter time.Duration
	// ProbeInterval is the background health-probe cadence while a Run is
	// in flight (default 3s).
	ProbeInterval time.Duration
	// ProbeTimeout bounds each health probe (default 2s).
	ProbeTimeout time.Duration
	// Logf, when non-nil, receives pool diagnostics.
	Logf func(format string, args ...interface{})

	mu    sync.Mutex
	stats PoolStats
}

// NewPool builds a pool over the given backend URLs. base is a template
// (nil for defaults): its Retries, Backoff, Timeout, WatchIdleTimeout
// and Logf are copied into every backend's client.
func NewPool(urls []string, base *Client) *Pool {
	if base == nil {
		base = &Client{}
	}
	p := &Pool{Logf: base.Logf}
	for _, u := range urls {
		c := &Client{
			BaseURL:          u,
			HTTP:             base.HTTP,
			Timeout:          base.Timeout,
			Retries:          base.Retries,
			Backoff:          base.Backoff,
			WatchIdleTimeout: base.WatchIdleTimeout,
			Logf:             base.Logf,
		}
		p.Backends = append(p.Backends, &Backend{URL: u, Client: c, Breaker: &Breaker{}})
	}
	return p
}

// Stats returns a snapshot of the pool's fault-handling counters.
func (p *Pool) Stats() PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

func (p *Pool) logf(format string, args ...interface{}) {
	if p.Logf != nil {
		p.Logf(format, args...)
	}
}

func (p *Pool) maxRounds() int {
	if p.MaxRounds > 0 {
		return p.MaxRounds
	}
	return 10
}

func (p *Pool) hedgeAfter() time.Duration {
	if p.HedgeAfter > 0 {
		return p.HedgeAfter
	}
	return 2 * time.Second
}

func (p *Pool) probeInterval() time.Duration {
	if p.ProbeInterval > 0 {
		return p.ProbeInterval
	}
	return 3 * time.Second
}

func (p *Pool) probeTimeout() time.Duration {
	if p.ProbeTimeout > 0 {
		return p.ProbeTimeout
	}
	return 2 * time.Second
}

// jobKey is the pool's local identity for a job request — the same
// content the server hashes into the job ID, so two requests with one key
// always map to one server-side job.
func jobKey(j JobRequest) string {
	return string(j.System) + "|" + j.Workload + "|" + strconv.FormatFloat(j.Scale, 'g', -1, 64)
}

// probe checks one backend's readiness and feeds the outcome to its
// breaker. Returns true when the backend can take work now.
func (p *Pool) probe(ctx context.Context, be *Backend) bool {
	pctx, cancel := context.WithTimeout(ctx, p.probeTimeout())
	defer cancel()
	err := be.Client.Readyz(pctx)
	be.Breaker.Record(err == nil)
	if err != nil {
		p.logf("pool: backend %s not ready: %v", be.URL, err)
	}
	return err == nil
}

// Run executes the manifest across the pool and returns manifest-ordered
// results and statuses, exactly like Client.Run: failed or canceled jobs
// leave a nil result slot, and callers inspect statuses for error
// rendering. Run fails only when jobs remain unfinished after every
// failover round — a single healthy backend is enough for it to succeed.
func (p *Pool) Run(ctx context.Context, m Manifest) ([]*core.Result, []JobStatus, error) {
	if len(p.Backends) == 0 {
		return nil, nil, fmt.Errorf("pool: no backends")
	}
	if len(m.Jobs) == 0 {
		return nil, nil, fmt.Errorf("pool: empty manifest")
	}

	// Distinct jobs in first-appearance order; the manifest may repeat a
	// cell and the server would dedupe anyway, so the pool shards each
	// distinct job exactly once.
	var keys []string
	reqs := map[string]JobRequest{}
	for _, j := range m.Jobs {
		k := jobKey(j)
		if _, ok := reqs[k]; !ok {
			keys = append(keys, k)
			reqs[k] = j
		}
	}

	var (
		mu       sync.Mutex
		statuses = map[string]JobStatus{}    // key → terminal status
		results  = map[string]*core.Result{} // key → fetched result
	)

	// Background prober: while the run is in flight, open breakers get
	// their half-open probe traffic from here, so a backend that recovers
	// mid-watch is ready for the next round or hedge without waiting for
	// round scheduling to rediscover it.
	probeCtx, stopProber := context.WithCancel(ctx)
	defer stopProber()
	go func() {
		for {
			if sleepCtx(probeCtx, p.probeInterval()) != nil {
				return
			}
			for _, be := range p.Backends {
				if be.Breaker.State() != BreakerClosed && be.Breaker.Allow() {
					p.probe(probeCtx, be)
				}
			}
		}
	}()

	for round := 0; round < p.maxRounds(); round++ {
		mu.Lock()
		var remaining []string
		for _, k := range keys {
			if _, ok := statuses[k]; !ok {
				remaining = append(remaining, k)
			}
		}
		mu.Unlock()
		if len(remaining) == 0 {
			break
		}
		if err := ctx.Err(); err != nil {
			return nil, nil, fmt.Errorf("pool: %w", err)
		}

		// Select backends: breaker must admit, readiness probe must pass.
		var ready []*Backend
		for _, be := range p.Backends {
			if !be.Breaker.Allow() {
				continue
			}
			if p.probe(ctx, be) {
				ready = append(ready, be)
			}
		}
		if len(ready) == 0 {
			d := 500 * time.Millisecond << uint(min(round, 4))
			p.logf("pool: no ready backends (round %d), retrying in %v", round, d)
			if err := sleepCtx(ctx, d); err != nil {
				return nil, nil, fmt.Errorf("pool: %w", err)
			}
			continue
		}
		if round > 0 {
			p.mu.Lock()
			p.stats.Resubmits += uint64(len(remaining))
			p.mu.Unlock()
			p.logf("pool: round %d resubmitting %d jobs across %d backends",
				round, len(remaining), len(ready))
		}

		// Shard remaining jobs round-robin and run every shard
		// concurrently: submit, watch to completion, fetch results.
		shards := make([][]string, len(ready))
		for i, k := range remaining {
			shards[i%len(ready)] = append(shards[i%len(ready)], k)
		}
		var wg sync.WaitGroup
		for bi, shard := range shards {
			if len(shard) == 0 {
				continue
			}
			wg.Add(1)
			go func(be *Backend, shard []string) {
				defer wg.Done()
				p.runShard(ctx, be, shard, reqs, m, &mu, statuses, results)
			}(ready[bi], shard)
		}
		wg.Wait()
	}

	// Assemble in manifest order.
	out := make([]*core.Result, len(m.Jobs))
	sts := make([]JobStatus, len(m.Jobs))
	var missing []string
	mu.Lock()
	for i, j := range m.Jobs {
		k := jobKey(j)
		js, ok := statuses[k]
		if !ok {
			missing = append(missing, j.Workload)
			continue
		}
		sts[i] = js
		if js.State == StateDone {
			out[i] = results[k]
		}
	}
	mu.Unlock()
	if len(missing) > 0 {
		sort.Strings(missing)
		return nil, nil, fmt.Errorf("pool: %d jobs unfinished after %d rounds (first: %s)",
			len(missing), p.maxRounds(), missing[0])
	}
	return out, sts, nil
}

// runShard runs one backend's share of a round: submit the shard
// manifest, watch the batch to completion, fetch every done job's result
// (hedged), and record terminal statuses. Any failure leaves the shard's
// unfinished jobs in remaining for the next round.
func (p *Pool) runShard(ctx context.Context, be *Backend, shard []string, reqs map[string]JobRequest, m Manifest, mu *sync.Mutex, statuses map[string]JobStatus, results map[string]*core.Result) {
	sm := Manifest{MaxEvents: m.MaxEvents, MaxCycles: m.MaxCycles, Audit: m.Audit}
	for _, k := range shard {
		sm.Jobs = append(sm.Jobs, reqs[k])
	}
	bs, err := be.Client.Submit(ctx, sm)
	if err != nil {
		p.shardFailed(be, "submit", err)
		return
	}
	final, err := be.Client.WatchBatch(ctx, bs.ID, nil)
	if err != nil {
		p.shardFailed(be, "watch", err)
		return
	}
	be.Breaker.Record(true)

	// Fetch results before recording statuses: a job is only "finished"
	// for the pool once its result is actually in hand, so a backend that
	// dies between done and fetch still fails over cleanly.
	for i, js := range final.Jobs {
		k := shard[i]
		if js.State != StateDone {
			mu.Lock()
			statuses[k] = js
			mu.Unlock()
			continue
		}
		res, err := p.fetchResult(ctx, js.ID, be)
		if err != nil {
			p.shardFailed(be, "result "+js.ID, err)
			continue
		}
		mu.Lock()
		statuses[k] = js
		results[k] = res
		mu.Unlock()
	}
}

func (p *Pool) shardFailed(be *Backend, op string, err error) {
	be.Breaker.Record(false)
	p.mu.Lock()
	p.stats.Failovers++
	p.mu.Unlock()
	p.logf("pool: backend %s %s failed, will fail over: %v", be.URL, op, err)
}

// otherReady returns a hedge candidate: any backend other than primary
// whose breaker is closed. nil when the pool has no second opinion.
func (p *Pool) otherReady(primary *Backend) *Backend {
	for _, be := range p.Backends {
		if be != primary && be.Breaker.State() == BreakerClosed {
			return be
		}
	}
	return nil
}

// fetchResult fetches one job result from primary, hedging against
// another backend when primary dawdles past HedgeAfter — every backend
// shares the store, so any of them can serve any job ID. The first
// success wins and cancels the loser; a hedge failure is never fatal
// while the other request is still in flight.
func (p *Pool) fetchResult(ctx context.Context, id string, primary *Backend) (*core.Result, error) {
	secondary := p.otherReady(primary)
	if secondary == nil {
		return primary.Client.Result(ctx, id)
	}
	fctx, cancel := context.WithCancel(ctx)
	defer cancel()
	type outcome struct {
		res *core.Result
		err error
	}
	ch := make(chan outcome, 2)
	fetch := func(be *Backend) {
		res, err := be.Client.Result(fctx, id)
		ch <- outcome{res, err}
	}
	go fetch(primary)
	inflight := 1
	hedged := false
	timer := time.NewTimer(p.hedgeAfter())
	defer timer.Stop()
	var firstErr error
	for {
		select {
		case o := <-ch:
			inflight--
			if o.err == nil {
				return o.res, nil
			}
			if firstErr == nil {
				firstErr = o.err
			}
			if !hedged {
				// Primary failed outright: fire the fallback immediately
				// rather than waiting out the hedge timer.
				hedged = true
				inflight++
				go fetch(secondary)
				continue
			}
			if inflight == 0 {
				return nil, firstErr
			}
		case <-timer.C:
			if !hedged {
				hedged = true
				inflight++
				p.mu.Lock()
				p.stats.Hedged++
				p.mu.Unlock()
				p.logf("pool: hedging result %s via %s", id, secondary.URL)
				go fetch(secondary)
			}
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}
