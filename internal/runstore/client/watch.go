package client

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// watchIdleDefault is how long a watch stream may go silent before the
// client declares it dead and reconnects. The server resends a snapshot
// every couple of seconds as a keepalive, so a healthy-but-quiet batch
// never trips this; a half-open TCP connection (backend died, no FIN)
// does.
const watchIdleDefault = 15 * time.Second

// streamClient is the HTTP client for watch streams: same transport as
// the regular client but no overall timeout, because a watch legitimately
// lasts as long as the batch runs. Liveness comes from the idle watchdog
// instead.
func (c *Client) streamClient() *http.Client {
	c.init()
	return &http.Client{Transport: c.http.Transport}
}

func (c *Client) watchIdle() time.Duration {
	if c.WatchIdleTimeout > 0 {
		return c.WatchIdleTimeout
	}
	return watchIdleDefault
}

// WatchBatch follows a batch via the server's NDJSON watch stream until
// every job is terminal, calling onUpdate (when non-nil) with each
// snapshot. It is resumable: the client tracks the last-seen state of
// every job, and after a mid-stream disconnect — a truncated line, a
// severed connection, a silent half-open socket caught by the idle
// watchdog — it reconnects with backoff and reconciles, so a job never
// regresses out of a terminal state no matter how torn the stream was.
// When the stream keeps dying without delivering a single snapshot, the
// client degrades to plain polling rather than giving up: a broken
// streaming path must not make batch completion unobservable.
//
// Non-retryable server answers (404 for an unknown batch, most 4xx)
// return a *StatusError so a multi-backend caller can fail over.
func (c *Client) WatchBatch(ctx context.Context, id string, onUpdate func(*BatchStatus)) (*BatchStatus, error) {
	c.init()
	seen := map[string]JobStatus{} // terminal states already observed
	// reconcile patches a snapshot so terminal states stick, and records
	// new ones. A reconnect can land on a server whose in-memory view is
	// behind the one that died (shared store, fresh process); trusting it
	// blindly would flip done jobs back to queued.
	reconcile := func(bs *BatchStatus) {
		done := true
		for i := range bs.Jobs {
			js := &bs.Jobs[i]
			if prev, ok := seen[js.ID]; ok && !terminal(js.State) {
				*js = prev
			}
			if terminal(js.State) {
				seen[js.ID] = *js
			} else {
				done = false
			}
		}
		if done && len(bs.Jobs) > 0 {
			bs.Done = true
		}
	}

	failures := 0 // consecutive snapshot-less connection attempts
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		last, err := c.watchOnce(ctx, id, reconcile, onUpdate)
		if last != nil && last.Done {
			return last, nil
		}
		if err != nil && !Retryable(err) {
			return nil, err
		}
		if last != nil {
			failures = 0
		} else {
			failures++
		}
		if failures > c.retries() {
			c.logf("mcmserve: watch %s: stream dead after %d attempts, polling instead", id, failures)
			return c.pollBatch(ctx, id, reconcile, onUpdate)
		}
		d := c.delay(min(failures, 3))
		c.logf("mcmserve: watch %s disconnected (%v), reconnecting in %v", id, err, d)
		if serr := sleepCtx(ctx, d); serr != nil {
			return nil, serr
		}
	}
}

// watchOnce runs one watch stream connection: it returns the last
// reconciled snapshot it decoded (nil if none arrived) and the error that
// ended the stream. A stream that ends cleanly on a done batch returns
// (final, nil).
func (c *Client) watchOnce(ctx context.Context, id string, reconcile func(*BatchStatus), onUpdate func(*BatchStatus)) (*BatchStatus, error) {
	// The watchdog cancels this request context when the stream goes
	// idle, which surfaces as a read error below — indistinguishable from
	// any other disconnect, which is the point.
	rctx, cancel := context.WithCancel(ctx)
	defer cancel()

	req, err := http.NewRequestWithContext(rctx, http.MethodGet,
		strings.TrimSuffix(c.BaseURL, "/")+"/v1/batches/"+id+"/watch", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.streamClient().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		var eb ErrorBody
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		if json.Unmarshal(data, &eb) != nil || eb.Error == "" {
			eb.Error = strings.TrimSpace(string(data))
		}
		return nil, &StatusError{Code: resp.StatusCode, Msg: eb.Error}
	}

	activity := make(chan struct{}, 1)
	watchdogDone := make(chan struct{})
	defer close(watchdogDone)
	go func() {
		idle := time.NewTimer(c.watchIdle())
		defer idle.Stop()
		for {
			select {
			case <-activity:
				if !idle.Stop() {
					<-idle.C
				}
				idle.Reset(c.watchIdle())
			case <-idle.C:
				cancel()
				return
			case <-watchdogDone:
				return
			}
		}
	}()

	dec := json.NewDecoder(resp.Body)
	var last *BatchStatus
	for {
		var bs BatchStatus
		if err := dec.Decode(&bs); err != nil {
			if err == io.EOF && last != nil && last.Done {
				return last, nil
			}
			return last, fmt.Errorf("watch stream %s: %w", id, err)
		}
		select {
		case activity <- struct{}{}:
		default:
		}
		reconcile(&bs)
		if onUpdate != nil {
			onUpdate(&bs)
		}
		last = &bs
		if bs.Done {
			return last, nil
		}
	}
}

// pollBatch is the degraded mode: plain GET polling with gentle backoff,
// same reconciliation and callbacks as the stream.
func (c *Client) pollBatch(ctx context.Context, id string, reconcile func(*BatchStatus), onUpdate func(*BatchStatus)) (*BatchStatus, error) {
	d := 100 * time.Millisecond
	for {
		bs, err := c.Batch(ctx, id)
		if err != nil {
			return nil, err
		}
		reconcile(bs)
		if onUpdate != nil {
			onUpdate(bs)
		}
		if bs.Done {
			return bs, nil
		}
		if err := sleepCtx(ctx, d); err != nil {
			return nil, err
		}
		if d < 2*time.Second {
			d *= 2
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
