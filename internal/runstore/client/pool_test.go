package client

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mcmgpu/internal/chaosproxy"
	"mcmgpu/internal/core"
	"mcmgpu/internal/faultinject"
)

// fakeStore is the shared durable tier several fake backends sit over,
// the way real mcmserve instances share one run store: any backend can
// serve any computed job ID.
type fakeStore struct {
	mu      sync.Mutex
	results map[string]*core.Result
}

func newFakeStore() *fakeStore {
	return &fakeStore{results: map[string]*core.Result{}}
}

// fakeBackend is a minimal mcmserve: content-derived job IDs, batches,
// watch streams, results served from the shared fake store. Knobs let
// tests script slow results and sudden death.
type fakeBackend struct {
	store *fakeStore
	ts    *httptest.Server

	mu      sync.Mutex
	batches map[string][]string // batch id → job ids
	jobs    map[string]fakeJob
	nbatch  int
	submits atomic.Int32

	// resultDelay stalls every result fetch — the hedge-timer trigger.
	resultDelay time.Duration
	// jobLatency is how long a job "runs" before it is done.
	jobLatency time.Duration
	// dieAfterSubmit closes the listener right after the first successful
	// submit, mid-batch — the killed-backend scenario.
	dieAfterSubmit bool
}

type fakeJob struct {
	id, workload string
	doneAt       time.Time
}

func newFakeBackend(t *testing.T, store *fakeStore) *fakeBackend {
	t.Helper()
	b := &fakeBackend{
		store:   store,
		batches: map[string][]string{},
		jobs:    map[string]fakeJob{},
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) { w.WriteHeader(200) })
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) { w.WriteHeader(200) })
	mux.HandleFunc("/v1/batches", b.handleSubmit)
	mux.HandleFunc("/v1/batches/", b.handleBatch)
	mux.HandleFunc("/v1/jobs/", b.handleJob)
	b.ts = httptest.NewServer(mux)
	t.Cleanup(b.ts.Close)
	return b
}

func fakeID(j JobRequest) string {
	sum := sha256.Sum256([]byte(jobKey(j)))
	return hex.EncodeToString(sum[:8])
}

func (b *fakeBackend) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var m Manifest
	if err := json.NewDecoder(r.Body).Decode(&m); err != nil {
		http.Error(w, `{"error":"bad manifest"}`, 400)
		return
	}
	b.mu.Lock()
	b.nbatch++
	id := fmt.Sprintf("b%d", b.nbatch)
	var ids []string
	for _, j := range m.Jobs {
		jid := fakeID(j)
		ids = append(ids, jid)
		if _, ok := b.jobs[jid]; !ok {
			b.jobs[jid] = fakeJob{id: jid, workload: j.Workload, doneAt: time.Now().Add(b.jobLatency)}
		}
	}
	b.batches[id] = ids
	b.mu.Unlock()
	b.submits.Add(1)
	json.NewEncoder(w).Encode(b.status(id))
	if b.dieAfterSubmit {
		go b.ts.CloseClientConnections()
		go b.ts.Close()
	}
}

// status materializes a batch snapshot; jobs flip to done (and their
// results land in the shared store) once their latency elapses.
func (b *fakeBackend) status(id string) *BatchStatus {
	b.mu.Lock()
	defer b.mu.Unlock()
	bs := &BatchStatus{ID: id, Done: true}
	for _, jid := range b.batches[id] {
		j := b.jobs[jid]
		js := JobStatus{ID: jid, Workload: j.workload, State: StateRunning}
		if !time.Now().Before(j.doneAt) {
			js.State = StateDone
			js.Source = SourceCompute
			b.store.mu.Lock()
			if _, ok := b.store.results[jid]; !ok {
				b.store.results[jid] = &core.Result{Workload: j.workload, Cycles: 1000}
			}
			b.store.mu.Unlock()
		} else {
			bs.Done = false
		}
		bs.Jobs = append(bs.Jobs, js)
	}
	return bs
}

func (b *fakeBackend) handleBatch(w http.ResponseWriter, r *http.Request) {
	rest := r.URL.Path[len("/v1/batches/"):]
	if n := len(rest) - len("/watch"); n > 0 && rest[n:] == "/watch" {
		id := rest[:n]
		b.mu.Lock()
		_, ok := b.batches[id]
		b.mu.Unlock()
		if !ok {
			http.Error(w, `{"error":"no such batch"}`, 404)
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		fl := w.(http.Flusher)
		enc := json.NewEncoder(w)
		for {
			bs := b.status(id)
			if enc.Encode(bs) != nil {
				return
			}
			fl.Flush()
			if bs.Done {
				return
			}
			select {
			case <-r.Context().Done():
				return
			case <-time.After(10 * time.Millisecond):
			}
		}
	}
	b.mu.Lock()
	_, ok := b.batches[rest]
	b.mu.Unlock()
	if !ok {
		http.Error(w, `{"error":"no such batch"}`, 404)
		return
	}
	json.NewEncoder(w).Encode(b.status(rest))
}

func (b *fakeBackend) handleJob(w http.ResponseWriter, r *http.Request) {
	rest := r.URL.Path[len("/v1/jobs/"):]
	if n := len(rest) - len("/result"); n > 0 && rest[n:] == "/result" {
		id := rest[:n]
		if b.resultDelay > 0 {
			select {
			case <-time.After(b.resultDelay):
			case <-r.Context().Done():
				return
			}
		}
		b.store.mu.Lock()
		res, ok := b.store.results[id]
		b.store.mu.Unlock()
		if !ok {
			http.Error(w, `{"error":"no result"}`, 404)
			return
		}
		json.NewEncoder(w).Encode(res)
		return
	}
	http.Error(w, `{"error":"no such job"}`, 404)
}

func poolManifest(n int) Manifest {
	var m Manifest
	for i := 0; i < n; i++ {
		m.Jobs = append(m.Jobs, JobRequest{
			System:   json.RawMessage(fmt.Sprintf(`{"modules":%d}`, i+1)),
			Workload: fmt.Sprintf("wl%d", i),
		})
	}
	return m
}

func fastPool(urls ...string) *Pool {
	p := NewPool(urls, &Client{Retries: 3, Backoff: 5 * time.Millisecond, WatchIdleTimeout: 2 * time.Second})
	p.ProbeTimeout = 500 * time.Millisecond
	p.ProbeInterval = 100 * time.Millisecond
	return p
}

func checkRun(t *testing.T, res []*core.Result, sts []JobStatus, err error, n int) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != n || len(sts) != n {
		t.Fatalf("%d results / %d statuses, want %d", len(res), len(sts), n)
	}
	for i := range res {
		if sts[i].State != StateDone || res[i] == nil {
			t.Fatalf("job %d: state %q result %v, want done with result", i, sts[i].State, res[i])
		}
	}
}

// TestPoolSingleBackend: the degenerate pool is just a client.
func TestPoolSingleBackend(t *testing.T) {
	b := newFakeBackend(t, newFakeStore())
	p := fastPool(b.ts.URL)
	res, sts, err := p.Run(context.Background(), poolManifest(3))
	checkRun(t, res, sts, err, 3)
	if st := p.Stats(); st.Failovers != 0 || st.Resubmits != 0 {
		t.Fatalf("healthy single-backend run reported faults: %+v", st)
	}
}

// TestPoolFailoverOnBackendDeath: a backend that accepts a shard and dies
// mid-batch loses its jobs to the survivor on the next round. The shared
// store makes the resubmission idempotent.
func TestPoolFailoverOnBackendDeath(t *testing.T) {
	store := newFakeStore()
	dying := newFakeBackend(t, store)
	dying.dieAfterSubmit = true
	dying.jobLatency = time.Hour // its jobs would never finish anyway
	healthy := newFakeBackend(t, store)
	p := fastPool(dying.ts.URL, healthy.ts.URL)
	res, sts, err := p.Run(context.Background(), poolManifest(4))
	checkRun(t, res, sts, err, 4)
	st := p.Stats()
	if st.Failovers == 0 {
		t.Fatalf("killed backend produced no failover: %+v", st)
	}
	if st.Resubmits == 0 {
		t.Fatalf("killed backend's jobs were not resubmitted: %+v", st)
	}
}

// TestPoolSurvivesChaos drives a whole run through the chaos proxy with a
// multi-fault plan — dropped submit, 5xx burst, truncated bodies, a 429 —
// and requires both a clean completion and proof that every armed fault
// actually fired.
func TestPoolSurvivesChaos(t *testing.T) {
	b := newFakeBackend(t, newFakeStore())
	// Per-endpoint filters keep the windows deterministic no matter how
	// many requests the run makes in total: the first watch connection
	// drops, the first submit gets a 429, the first two result fetches
	// 503, the fourth result fetch is truncated mid-body.
	plans, err := faultinject.ParseList(
		"net-429@0#1:/v1/batches,net-drop@0#1:/watch,net-5xx@0#2:/result,net-truncate@3#1:/result")
	if err != nil {
		t.Fatal(err)
	}
	proxy, err := chaosproxy.New(b.ts.URL, plans)
	if err != nil {
		t.Fatal(err)
	}
	proxy.Logf = t.Logf
	ts := httptest.NewServer(proxy)
	defer ts.Close()
	defer proxy.Close()

	p := fastPool(ts.URL)
	res, sts, err := p.Run(context.Background(), poolManifest(5))
	checkRun(t, res, sts, err, 5)
	st := proxy.Stats()
	for _, kind := range []string{"net-drop", "net-5xx", "net-truncate", "net-429"} {
		if st.Injected[kind] == 0 {
			t.Errorf("fault %s armed but never injected (vacuous): %+v", kind, st)
		}
	}
}

// TestPoolHedgesSlowResults: a backend that stalls result fetches gets
// hedged against its peer; the run finishes fast and Hedged counts it.
func TestPoolHedgesSlowResults(t *testing.T) {
	store := newFakeStore()
	slow := newFakeBackend(t, store)
	slow.resultDelay = 2 * time.Second
	fast := newFakeBackend(t, store)
	// Only the slow backend gets a shard: a single-job manifest keeps the
	// sharding deterministic enough to force the hedge.
	p := fastPool(slow.ts.URL, fast.ts.URL)
	p.HedgeAfter = 50 * time.Millisecond

	start := time.Now()
	res, sts, err := p.Run(context.Background(), poolManifest(2))
	checkRun(t, res, sts, err, 2)
	if el := time.Since(start); el > 1500*time.Millisecond {
		t.Fatalf("run took %v; hedging should have beaten the 2s result stall", el)
	}
	if st := p.Stats(); st.Hedged == 0 {
		t.Fatalf("slow result fetch fired no hedge: %+v", st)
	}
}

// TestPoolRoutesAroundBlackhole: one backend is fully black-holed (every
// request hangs). Probes time out, its breaker accumulates failures, and
// the run completes through the healthy peer without ever submitting to
// the black hole.
func TestPoolRoutesAroundBlackhole(t *testing.T) {
	store := newFakeStore()
	holed := newFakeBackend(t, store)
	plans, err := faultinject.ParseList("net-blackhole@0")
	if err != nil {
		t.Fatal(err)
	}
	proxy, err := chaosproxy.New(holed.ts.URL, plans)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(proxy)
	defer ts.Close()
	defer proxy.Close()
	healthy := newFakeBackend(t, store)

	p := fastPool(ts.URL, healthy.ts.URL)
	p.ProbeTimeout = 100 * time.Millisecond
	res, sts, err := p.Run(context.Background(), poolManifest(3))
	checkRun(t, res, sts, err, 3)
	if holed.submits.Load() != 0 {
		t.Fatalf("black-holed backend received %d submits", holed.submits.Load())
	}
	if st := proxy.Stats(); st.Injected["net-blackhole"] == 0 {
		t.Fatalf("blackhole armed but never exercised: %+v", st)
	}
}

// TestWatchBatchResumesAfterCuts: the watch stream is truncated mid-NDJSON
// twice; the client reconnects, reconciles, and still observes the batch
// to completion. This is the resumable-stream contract under the exact
// damage a dying connection produces.
func TestWatchBatchResumesAfterCuts(t *testing.T) {
	b := newFakeBackend(t, newFakeStore())
	b.jobLatency = 300 * time.Millisecond
	plans, err := faultinject.ParseList("net-truncate@0#2:/watch")
	if err != nil {
		t.Fatal(err)
	}
	proxy, err := chaosproxy.New(b.ts.URL, plans)
	if err != nil {
		t.Fatal(err)
	}
	proxy.Logf = t.Logf
	ts := httptest.NewServer(proxy)
	defer ts.Close()
	defer proxy.Close()

	c := &Client{BaseURL: ts.URL, Retries: 4, Backoff: 10 * time.Millisecond, Logf: t.Logf}
	bs, err := c.Submit(context.Background(), poolManifest(2))
	if err != nil {
		t.Fatal(err)
	}
	var snapshots atomic.Int32
	final, err := c.WatchBatch(context.Background(), bs.ID, func(*BatchStatus) { snapshots.Add(1) })
	if err != nil {
		t.Fatal(err)
	}
	if !final.Done {
		t.Fatalf("watch returned a non-done batch: %+v", final)
	}
	for _, js := range final.Jobs {
		if js.State != StateDone {
			t.Fatalf("job %s finished %q", js.ID, js.State)
		}
	}
	if snapshots.Load() == 0 {
		t.Fatal("watch delivered no snapshots")
	}
	if st := proxy.Stats(); st.Injected["net-truncate"] != 2 {
		t.Fatalf("want 2 truncated watch streams, got %+v", st)
	}
}

// TestWatchBatchTerminalStatesStick: after a reconnect lands on a server
// whose view is behind, jobs the client already saw finish must not
// regress to running.
func TestWatchBatchTerminalStatesStick(t *testing.T) {
	// A hand-rolled backend: first watch connection reports the job done
	// then dies; the second reports it queued (a stale view) forever. The
	// client must surface done from the first stream.
	var conns atomic.Int32
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/batches/b1/watch", func(w http.ResponseWriter, r *http.Request) {
		fl := w.(http.Flusher)
		if conns.Add(1) == 1 {
			fmt.Fprintln(w, `{"id":"b1","jobs":[{"id":"j1","state":"done"},{"id":"j2","state":"running"}],"done":false}`)
			fl.Flush()
			panic(http.ErrAbortHandler) // sever mid-stream
		}
		fmt.Fprintln(w, `{"id":"b1","jobs":[{"id":"j1","state":"queued"},{"id":"j2","state":"done"}],"done":false}`)
		fl.Flush()
		fmt.Fprintln(w, `{"id":"b1","jobs":[{"id":"j1","state":"queued"},{"id":"j2","state":"done"}],"done":true}`)
		fl.Flush()
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	c := &Client{BaseURL: ts.URL, Retries: 3, Backoff: 5 * time.Millisecond, Logf: t.Logf}
	final, err := c.WatchBatch(context.Background(), "b1", nil)
	if err != nil {
		t.Fatal(err)
	}
	if !final.Done {
		t.Fatalf("final snapshot not done: %+v", final)
	}
	for _, js := range final.Jobs {
		if js.State != StateDone {
			t.Fatalf("job %s regressed to %q after reconnect", js.ID, js.State)
		}
	}
}
