package client

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

func fastClient(url string) *Client {
	return &Client{BaseURL: url, Retries: 3, Backoff: time.Millisecond}
}

// TestRetriesTransientFailures: 5xx and transport-level flakiness retry
// until success; the submission is idempotent so this is always safe.
func TestRetriesTransientFailures(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			http.Error(w, `{"error":"transient"}`, http.StatusInternalServerError)
			return
		}
		json.NewEncoder(w).Encode(BatchStatus{ID: "b1", Done: true})
	}))
	defer ts.Close()
	bs, err := fastClient(ts.URL).Submit(context.Background(), Manifest{Jobs: []JobRequest{{Workload: "Stream"}}})
	if err != nil {
		t.Fatalf("submit did not survive transient 500s: %v", err)
	}
	if bs.ID != "b1" || calls.Load() != 3 {
		t.Fatalf("got %+v after %d calls, want b1 after 3", bs, calls.Load())
	}
}

// TestRetries429: a full queue (429) is backpressure, not failure — the
// client backs off and resubmits.
func TestRetries429(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "1")
			http.Error(w, `{"error":"queue full"}`, http.StatusTooManyRequests)
			return
		}
		json.NewEncoder(w).Encode(BatchStatus{ID: "b2", Done: true})
	}))
	defer ts.Close()
	if _, err := fastClient(ts.URL).Submit(context.Background(), Manifest{}); err != nil {
		t.Fatalf("429 was not retried: %v", err)
	}
	if calls.Load() != 2 {
		t.Fatalf("%d calls, want 2", calls.Load())
	}
}

// TestNoRetryOn4xx: client errors are deterministic — retrying a bad
// manifest cannot fix it, so the client fails at once with a StatusError.
func TestNoRetryOn4xx(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, `{"error":"bad manifest"}`, http.StatusBadRequest)
	}))
	defer ts.Close()
	_, err := fastClient(ts.URL).Submit(context.Background(), Manifest{})
	se, ok := err.(*StatusError)
	if !ok || se.Code != http.StatusBadRequest || se.Msg != "bad manifest" {
		t.Fatalf("err = %v, want StatusError 400 'bad manifest'", err)
	}
	if calls.Load() != 1 {
		t.Fatalf("4xx retried: %d calls", calls.Load())
	}
}

// TestGivesUpAfterRetries: a persistently dead server eventually surfaces
// the last failure instead of looping forever.
func TestGivesUpAfterRetries(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "down", http.StatusServiceUnavailable)
	}))
	defer ts.Close()
	c := fastClient(ts.URL)
	if _, err := c.Submit(context.Background(), Manifest{}); err == nil {
		t.Fatal("dead server did not surface an error")
	}
	if got := calls.Load(); got != int32(c.Retries)+1 {
		t.Fatalf("%d attempts, want %d", got, c.Retries+1)
	}
}

// TestBackoffGrowsWithJitter pins the retry pacing contract: delays double
// per attempt and carry up to 50% additive jitter — never shorter than the
// base, never more than 1.5x it.
func TestBackoffGrowsWithJitter(t *testing.T) {
	c := &Client{Backoff: 100 * time.Millisecond}
	c.init()
	for attempt, base := range []time.Duration{100, 200, 400, 800} {
		base *= time.Millisecond
		for i := 0; i < 50; i++ {
			d := c.delay(attempt)
			if d < base || d > base+base/2 {
				t.Fatalf("attempt %d delay %v outside [%v, %v]", attempt, d, base, base+base/2)
			}
		}
	}
}

// TestRequestTimeout: a hung server trips the per-request timeout rather
// than wedging the caller.
func TestRequestTimeout(t *testing.T) {
	block := make(chan struct{})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-block
	}))
	defer ts.Close()
	defer close(block) // LIFO: unblock the handler before ts.Close waits on it
	c := &Client{BaseURL: ts.URL, Timeout: 50 * time.Millisecond, Retries: 1, Backoff: time.Millisecond}
	start := time.Now()
	if _, err := c.Batch(context.Background(), "b1"); err == nil {
		t.Fatal("hung server did not time out")
	}
	if el := time.Since(start); el > 2*time.Second {
		t.Fatalf("timeout took %v", el)
	}
}

// TestRetryAfterFloorsBackoff: when a 429 carries Retry-After, the server's
// own estimate floors the client's next delay — a loaded server is never
// hammered faster than it asked for.
func TestRetryAfterFloorsBackoff(t *testing.T) {
	var calls atomic.Int32
	var gaps []time.Time
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gaps = append(gaps, time.Now())
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "1")
			http.Error(w, `{"error":"queue full"}`, http.StatusTooManyRequests)
			return
		}
		json.NewEncoder(w).Encode(BatchStatus{ID: "b3", Done: true})
	}))
	defer ts.Close()
	// Client backoff is 1ms; Retry-After says 1s. The gap must honor the
	// server, not the client schedule.
	if _, err := fastClient(ts.URL).Submit(context.Background(), Manifest{}); err != nil {
		t.Fatal(err)
	}
	if len(gaps) != 2 {
		t.Fatalf("%d calls, want 2", len(gaps))
	}
	if gap := gaps[1].Sub(gaps[0]); gap < time.Second {
		t.Fatalf("retry after %v, want >= 1s (Retry-After floor)", gap)
	}
}

// TestCancelAbortsBackoffSleep: a canceled context aborts an in-flight
// backoff sleep immediately — a canceled sweep must not finish a multi-
// second sleep before exiting.
func TestCancelAbortsBackoffSleep(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"down"}`, http.StatusServiceUnavailable)
	}))
	defer ts.Close()
	c := &Client{BaseURL: ts.URL, Retries: 3, Backoff: 10 * time.Second}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := c.Submit(ctx, Manifest{})
	if err == nil {
		t.Fatal("canceled submit returned success")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled in the chain", err)
	}
	if el := time.Since(start); el > 500*time.Millisecond {
		t.Fatalf("cancel took %v to abort a 10s backoff sleep", el)
	}
}

// TestTruncatedBodyRetries: a 2xx whose JSON body is cut mid-way is
// transport damage, not an answer — the client retries and succeeds.
func TestTruncatedBodyRetries(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			// Promise more bytes than delivered: the decoder sees an
			// unexpected EOF, exactly what a mid-transfer cut produces.
			w.Header().Set("Content-Length", "4096")
			w.Write([]byte(`{"id":"b4","jobs":[{"id":"tru`))
			return
		}
		json.NewEncoder(w).Encode(BatchStatus{ID: "b4", Done: true})
	}))
	defer ts.Close()
	bs, err := fastClient(ts.URL).Submit(context.Background(), Manifest{})
	if err != nil {
		t.Fatalf("truncated body was not retried: %v", err)
	}
	if bs.ID != "b4" || calls.Load() != 2 {
		t.Fatalf("got %+v after %d calls, want b4 after 2", bs, calls.Load())
	}
}

// TestProbesSingleAttempt: health probes never retry — a probe that retries
// is just a slow way to report "down".
func TestProbesSingleAttempt(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		if r.URL.Path == "/readyz" {
			w.Header().Set("Retry-After", "2")
			http.Error(w, `{"error":"draining"}`, http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer ts.Close()
	c := fastClient(ts.URL)
	if err := c.Healthz(context.Background()); err != nil {
		t.Fatalf("healthz: %v", err)
	}
	err := c.Readyz(context.Background())
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusServiceUnavailable {
		t.Fatalf("readyz err = %v, want 503 StatusError", err)
	}
	if se.RetryAfter != 2*time.Second {
		t.Fatalf("readyz RetryAfter = %v, want 2s", se.RetryAfter)
	}
	if calls.Load() != 2 {
		t.Fatalf("probes made %d requests, want 2 (no retries)", calls.Load())
	}
}
