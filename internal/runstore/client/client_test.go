package client

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

func fastClient(url string) *Client {
	return &Client{BaseURL: url, Retries: 3, Backoff: time.Millisecond}
}

// TestRetriesTransientFailures: 5xx and transport-level flakiness retry
// until success; the submission is idempotent so this is always safe.
func TestRetriesTransientFailures(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			http.Error(w, `{"error":"transient"}`, http.StatusInternalServerError)
			return
		}
		json.NewEncoder(w).Encode(BatchStatus{ID: "b1", Done: true})
	}))
	defer ts.Close()
	bs, err := fastClient(ts.URL).Submit(Manifest{Jobs: []JobRequest{{Workload: "Stream"}}})
	if err != nil {
		t.Fatalf("submit did not survive transient 500s: %v", err)
	}
	if bs.ID != "b1" || calls.Load() != 3 {
		t.Fatalf("got %+v after %d calls, want b1 after 3", bs, calls.Load())
	}
}

// TestRetries429: a full queue (429) is backpressure, not failure — the
// client backs off and resubmits.
func TestRetries429(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "1")
			http.Error(w, `{"error":"queue full"}`, http.StatusTooManyRequests)
			return
		}
		json.NewEncoder(w).Encode(BatchStatus{ID: "b2", Done: true})
	}))
	defer ts.Close()
	if _, err := fastClient(ts.URL).Submit(Manifest{}); err != nil {
		t.Fatalf("429 was not retried: %v", err)
	}
	if calls.Load() != 2 {
		t.Fatalf("%d calls, want 2", calls.Load())
	}
}

// TestNoRetryOn4xx: client errors are deterministic — retrying a bad
// manifest cannot fix it, so the client fails at once with a StatusError.
func TestNoRetryOn4xx(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, `{"error":"bad manifest"}`, http.StatusBadRequest)
	}))
	defer ts.Close()
	_, err := fastClient(ts.URL).Submit(Manifest{})
	se, ok := err.(*StatusError)
	if !ok || se.Code != http.StatusBadRequest || se.Msg != "bad manifest" {
		t.Fatalf("err = %v, want StatusError 400 'bad manifest'", err)
	}
	if calls.Load() != 1 {
		t.Fatalf("4xx retried: %d calls", calls.Load())
	}
}

// TestGivesUpAfterRetries: a persistently dead server eventually surfaces
// the last failure instead of looping forever.
func TestGivesUpAfterRetries(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "down", http.StatusServiceUnavailable)
	}))
	defer ts.Close()
	c := fastClient(ts.URL)
	if _, err := c.Submit(Manifest{}); err == nil {
		t.Fatal("dead server did not surface an error")
	}
	if got := calls.Load(); got != int32(c.Retries)+1 {
		t.Fatalf("%d attempts, want %d", got, c.Retries+1)
	}
}

// TestBackoffGrowsWithJitter pins the retry pacing contract: delays double
// per attempt and carry up to 50% additive jitter — never shorter than the
// base, never more than 1.5x it.
func TestBackoffGrowsWithJitter(t *testing.T) {
	c := &Client{Backoff: 100 * time.Millisecond}
	c.init()
	for attempt, base := range []time.Duration{100, 200, 400, 800} {
		base *= time.Millisecond
		for i := 0; i < 50; i++ {
			d := c.delay(attempt)
			if d < base || d > base+base/2 {
				t.Fatalf("attempt %d delay %v outside [%v, %v]", attempt, d, base, base+base/2)
			}
		}
	}
}

// TestRequestTimeout: a hung server trips the per-request timeout rather
// than wedging the caller.
func TestRequestTimeout(t *testing.T) {
	block := make(chan struct{})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-block
	}))
	defer ts.Close()
	defer close(block) // LIFO: unblock the handler before ts.Close waits on it
	c := &Client{BaseURL: ts.URL, Timeout: 50 * time.Millisecond, Retries: 1, Backoff: time.Millisecond}
	start := time.Now()
	if _, err := c.Batch("b1"); err == nil {
		t.Fatal("hung server did not time out")
	}
	if el := time.Since(start); el > 2*time.Second {
		t.Fatalf("timeout took %v", el)
	}
}
