// Package client is the wire protocol and HTTP client for cmd/mcmserve,
// the simulation service in front of the durable run store.
//
// The protocol is deliberately idempotent: job IDs are content-derived
// (runstore.KeyID over the job's store key), so resubmitting a manifest —
// after a timeout, a connection reset, or a server restart — can never
// duplicate work or results. That property is what lets Do retry freely
// with exponential backoff: the worst cost of a duplicate request is one
// extra store hit.
package client

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"time"

	"mcmgpu/internal/core"
)

// JobRequest is one simulation in a manifest: a full machine configuration
// (the JSON form config.WriteJSON emits and `mcmsim -dump-config` prints),
// a workload name from the registry, and a scale factor (<= 0 or 1 = full
// size).
type JobRequest struct {
	System   json.RawMessage `json:"system"`
	Workload string          `json:"workload"`
	Scale    float64         `json:"scale,omitempty"`
}

// Manifest is one batched submission. Budgets and the audit switch apply
// to every job in the batch and participate in job identity, exactly as
// they do in the local runner's store keys.
type Manifest struct {
	Jobs      []JobRequest `json:"jobs"`
	MaxEvents uint64       `json:"max_events,omitempty"`
	MaxCycles uint64       `json:"max_cycles,omitempty"`
	Audit     bool         `json:"audit,omitempty"`
}

// Job states reported by the service.
const (
	StateQueued   = "queued"
	StateRunning  = "running"
	StateDone     = "done"
	StateFailed   = "failed"
	StateCanceled = "canceled"
)

// Result sources reported for done jobs.
const (
	SourceStore   = "store"   // served from the durable store, no simulation
	SourceCompute = "compute" // simulated by this server process
)

// JobStatus is the service's view of one job.
type JobStatus struct {
	// ID is the content-derived job identity; identical submissions map to
	// the same ID on every server sharing a store.
	ID       string `json:"id"`
	State    string `json:"state"`
	Source   string `json:"source,omitempty"`
	Error    string `json:"error,omitempty"`
	Workload string `json:"workload,omitempty"`
	Config   string `json:"config,omitempty"`
}

// Done reports whether the job reached a terminal state.
func (s JobStatus) Done() bool {
	return s.State == StateDone || s.State == StateFailed || s.State == StateCanceled
}

// BatchStatus is the service's view of one submitted manifest. Jobs appear
// in manifest order.
type BatchStatus struct {
	ID   string      `json:"id"`
	Jobs []JobStatus `json:"jobs"`
	Done bool        `json:"done"`
}

// ErrorBody is the JSON error payload of every non-2xx response.
type ErrorBody struct {
	Error string `json:"error"`
}

// StatusError is a non-2xx response the client will not retry (4xx class,
// minus 429).
type StatusError struct {
	Code int
	Msg  string
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("mcmserve: HTTP %d: %s", e.Code, e.Msg)
}

// Client talks to one mcmserve instance. The zero value is not usable;
// set BaseURL. All methods are safe for concurrent use.
type Client struct {
	// BaseURL is the server root, e.g. "http://localhost:8037".
	BaseURL string
	// HTTP is the underlying client; nil means a default with Timeout as
	// the per-request bound.
	HTTP *http.Client
	// Timeout bounds each HTTP request when HTTP is nil (default 30s).
	Timeout time.Duration
	// Retries is how many times a failed request is retried (default 4).
	// Only transport errors, 429 and 5xx responses are retried; the
	// protocol's idempotence makes every retry safe.
	Retries int
	// Backoff is the first retry delay (default 100ms); each subsequent
	// retry doubles it, and every delay gets up to 50% uniform jitter so
	// synchronized clients do not stampede a recovering server.
	Backoff time.Duration
	// Logf, when non-nil, receives retry diagnostics.
	Logf func(format string, args ...interface{})

	once sync.Once
	http *http.Client
	rng  *rand.Rand
	mu   sync.Mutex // guards rng
}

func (c *Client) init() {
	c.once.Do(func() {
		c.http = c.HTTP
		if c.http == nil {
			to := c.Timeout
			if to <= 0 {
				to = 30 * time.Second
			}
			c.http = &http.Client{Timeout: to}
		}
		c.rng = rand.New(rand.NewSource(time.Now().UnixNano()))
	})
}

func (c *Client) logf(format string, args ...interface{}) {
	if c.Logf != nil {
		c.Logf(format, args...)
	}
}

func (c *Client) retries() int {
	if c.Retries > 0 {
		return c.Retries
	}
	return 4
}

// delay returns the backoff before retry attempt n (0-based), jittered.
func (c *Client) delay(n int) time.Duration {
	d := c.Backoff
	if d <= 0 {
		d = 100 * time.Millisecond
	}
	d <<= uint(n)
	c.mu.Lock()
	j := time.Duration(c.rng.Int63n(int64(d)/2 + 1))
	c.mu.Unlock()
	return d + j
}

// do performs one request with retries, decoding a 2xx JSON body into out
// (when non-nil). Transport failures, 429 and 5xx retry with exponential
// backoff + jitter; other non-2xx statuses return a *StatusError at once.
func (c *Client) do(method, path string, in, out interface{}) error {
	c.init()
	var body []byte
	if in != nil {
		var err error
		if body, err = json.Marshal(in); err != nil {
			return err
		}
	}
	var last error
	for attempt := 0; ; attempt++ {
		err := c.once2xx(method, path, body, out)
		if err == nil {
			return nil
		}
		var se *StatusError
		if errors.As(err, &se) && se.Code != http.StatusTooManyRequests && se.Code < 500 {
			return err
		}
		last = err
		if attempt >= c.retries() {
			return fmt.Errorf("mcmserve: %s %s failed after %d attempts: %w",
				method, path, attempt+1, last)
		}
		d := c.delay(attempt)
		c.logf("mcmserve: %s %s attempt %d failed (%v), retrying in %v",
			method, path, attempt+1, err, d)
		time.Sleep(d)
	}
}

func (c *Client) once2xx(method, path string, body []byte, out interface{}) error {
	req, err := http.NewRequest(method, strings.TrimSuffix(c.BaseURL, "/")+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		var eb ErrorBody
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		if json.Unmarshal(data, &eb) != nil || eb.Error == "" {
			eb.Error = strings.TrimSpace(string(data))
		}
		return &StatusError{Code: resp.StatusCode, Msg: eb.Error}
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Submit posts a manifest and returns the batch status — job IDs assigned,
// warm cells already done with SourceStore. Safe to re-call on any failure.
func (c *Client) Submit(m Manifest) (*BatchStatus, error) {
	var bs BatchStatus
	if err := c.do(http.MethodPost, "/v1/batches", m, &bs); err != nil {
		return nil, err
	}
	return &bs, nil
}

// Batch fetches the current status of a batch.
func (c *Client) Batch(id string) (*BatchStatus, error) {
	var bs BatchStatus
	if err := c.do(http.MethodGet, "/v1/batches/"+id, nil, &bs); err != nil {
		return nil, err
	}
	return &bs, nil
}

// Job fetches the current status of one job.
func (c *Client) Job(id string) (*JobStatus, error) {
	var js JobStatus
	if err := c.do(http.MethodGet, "/v1/jobs/"+id, nil, &js); err != nil {
		return nil, err
	}
	return &js, nil
}

// Result fetches the result of a done job.
func (c *Client) Result(id string) (*core.Result, error) {
	var res core.Result
	if err := c.do(http.MethodGet, "/v1/jobs/"+id+"/result", nil, &res); err != nil {
		return nil, err
	}
	return &res, nil
}

// CancelJob asks the server to cancel one job (queued jobs are dropped,
// running jobs get their context canceled).
func (c *Client) CancelJob(id string) error {
	return c.do(http.MethodPost, "/v1/jobs/"+id+"/cancel", nil, nil)
}

// CancelBatch releases a batch's claim on its jobs; a job is canceled when
// no live batch still references it.
func (c *Client) CancelBatch(id string) error {
	return c.do(http.MethodPost, "/v1/batches/"+id+"/cancel", nil, nil)
}

// Wait polls a batch until every job is terminal, with gentle backoff
// (100ms doubling to 2s), and returns the final status.
func (c *Client) Wait(id string) (*BatchStatus, error) {
	d := 100 * time.Millisecond
	for {
		bs, err := c.Batch(id)
		if err != nil {
			return nil, err
		}
		if bs.Done {
			return bs, nil
		}
		time.Sleep(d)
		if d < 2*time.Second {
			d *= 2
		}
	}
}

// Run is the high-level round trip cmd/sweep uses: submit the manifest,
// wait for the batch to finish, and fetch every done job's result. The
// returned slice is manifest-ordered; failed or canceled jobs leave a nil
// slot and contribute to the returned statuses, which callers inspect for
// error rendering.
func (c *Client) Run(m Manifest) ([]*core.Result, []JobStatus, error) {
	bs, err := c.Submit(m)
	if err != nil {
		return nil, nil, err
	}
	if bs, err = c.Wait(bs.ID); err != nil {
		return nil, nil, err
	}
	results := make([]*core.Result, len(bs.Jobs))
	for i, js := range bs.Jobs {
		if js.State != StateDone {
			continue
		}
		if results[i], err = c.Result(js.ID); err != nil {
			return nil, nil, fmt.Errorf("fetching result of job %s: %w", js.ID, err)
		}
	}
	return results, bs.Jobs, nil
}
