// Package client is the wire protocol and HTTP client for cmd/mcmserve,
// the simulation service in front of the durable run store.
//
// The protocol is deliberately idempotent: job IDs are content-derived
// (runstore.KeyID over the job's store key), so resubmitting a manifest —
// after a timeout, a connection reset, or a server restart — can never
// duplicate work or results. That property is what lets Do retry freely
// with exponential backoff: the worst cost of a duplicate request is one
// extra store hit.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"mcmgpu/internal/core"
)

// JobRequest is one simulation in a manifest: a full machine configuration
// (the JSON form config.WriteJSON emits and `mcmsim -dump-config` prints),
// a workload name from the registry, and a scale factor (<= 0 or 1 = full
// size).
type JobRequest struct {
	System   json.RawMessage `json:"system"`
	Workload string          `json:"workload"`
	Scale    float64         `json:"scale,omitempty"`
}

// Manifest is one batched submission. Budgets and the audit switch apply
// to every job in the batch and participate in job identity, exactly as
// they do in the local runner's store keys.
type Manifest struct {
	Jobs      []JobRequest `json:"jobs"`
	MaxEvents uint64       `json:"max_events,omitempty"`
	MaxCycles uint64       `json:"max_cycles,omitempty"`
	Audit     bool         `json:"audit,omitempty"`
}

// Job states reported by the service.
const (
	StateQueued   = "queued"
	StateRunning  = "running"
	StateDone     = "done"
	StateFailed   = "failed"
	StateCanceled = "canceled"
)

// terminal reports whether a job state is final.
func terminal(state string) bool {
	return state == StateDone || state == StateFailed || state == StateCanceled
}

// Result sources reported for done jobs.
const (
	SourceStore   = "store"   // served from the durable store, no simulation
	SourceCompute = "compute" // simulated by this server process
)

// JobStatus is the service's view of one job.
type JobStatus struct {
	// ID is the content-derived job identity; identical submissions map to
	// the same ID on every server sharing a store.
	ID       string `json:"id"`
	State    string `json:"state"`
	Source   string `json:"source,omitempty"`
	Error    string `json:"error,omitempty"`
	Workload string `json:"workload,omitempty"`
	Config   string `json:"config,omitempty"`
	// ErrKind classifies a failed job (runner.ErrClass values: "panic",
	// "budget", "invariant", "transient", "error").
	ErrKind string `json:"err_kind,omitempty"`
	// Attempts is how many times the server ran the job.
	Attempts int `json:"attempts,omitempty"`
	// Poisoned marks a job quarantined after exhausting the server's
	// attempt budget on deterministic failures; resubmitting it returns the
	// same structured failure instantly instead of retrying forever.
	Poisoned bool `json:"poisoned,omitempty"`
}

// Done reports whether the job reached a terminal state.
func (s JobStatus) Done() bool {
	return s.State == StateDone || s.State == StateFailed || s.State == StateCanceled
}

// BatchStatus is the service's view of one submitted manifest. Jobs appear
// in manifest order.
type BatchStatus struct {
	ID   string      `json:"id"`
	Jobs []JobStatus `json:"jobs"`
	Done bool        `json:"done"`
}

// ErrorBody is the JSON error payload of every non-2xx response.
type ErrorBody struct {
	Error string `json:"error"`
}

// StatusError is a non-2xx response. The 4xx class (minus 429) is never
// retried; 429 and 5xx are.
type StatusError struct {
	Code int
	Msg  string
	// RetryAfter is the server's Retry-After header when one was sent; the
	// retry loop honors it as the floor of its next backoff delay, so a
	// loaded server's own estimate always wins over the client's schedule.
	RetryAfter time.Duration
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("mcmserve: HTTP %d: %s", e.Code, e.Msg)
}

// Retryable reports whether err can succeed on a retry against the same
// server: transport damage (including truncated responses that fail JSON
// decoding), 429 backpressure, and 5xx. Deterministic 4xx responses are
// not retryable. The protocol's idempotence is what makes retrying always
// safe.
func Retryable(err error) bool {
	if err == nil {
		return false
	}
	var se *StatusError
	if errors.As(err, &se) {
		return se.Code == http.StatusTooManyRequests || se.Code >= 500
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	return true // transport-class: conn refused/reset, EOF, decode damage
}

// sleepCtx waits d or until ctx is done, whichever comes first — a
// canceled sweep aborts an in-flight backoff sleep immediately instead of
// finishing it.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if ctx == nil {
		time.Sleep(d)
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Client talks to one mcmserve instance. The zero value is not usable;
// set BaseURL. All methods are safe for concurrent use.
type Client struct {
	// BaseURL is the server root, e.g. "http://localhost:8037".
	BaseURL string
	// HTTP is the underlying client; nil means a default with Timeout as
	// the per-request bound.
	HTTP *http.Client
	// Timeout bounds each HTTP request when HTTP is nil (default 30s).
	Timeout time.Duration
	// Retries is how many times a failed request is retried (default 4).
	// Only transport errors, 429 and 5xx responses are retried; the
	// protocol's idempotence makes every retry safe.
	Retries int
	// Backoff is the first retry delay (default 100ms); each subsequent
	// retry doubles it, and every delay gets up to 50% uniform jitter so
	// synchronized clients do not stampede a recovering server.
	Backoff time.Duration
	// WatchIdleTimeout is how long a watch stream may go silent before
	// WatchBatch declares the connection dead and reconnects (default
	// 15s; the server keepalives every ~2s, so only a genuinely dead
	// connection trips this).
	WatchIdleTimeout time.Duration
	// Logf, when non-nil, receives retry diagnostics.
	Logf func(format string, args ...interface{})

	once sync.Once
	http *http.Client
	rng  *rand.Rand
	mu   sync.Mutex // guards rng
}

func (c *Client) init() {
	c.once.Do(func() {
		c.http = c.HTTP
		if c.http == nil {
			to := c.Timeout
			if to <= 0 {
				to = 30 * time.Second
			}
			c.http = &http.Client{Timeout: to}
		}
		c.rng = rand.New(rand.NewSource(time.Now().UnixNano()))
	})
}

func (c *Client) logf(format string, args ...interface{}) {
	if c.Logf != nil {
		c.Logf(format, args...)
	}
}

func (c *Client) retries() int {
	if c.Retries > 0 {
		return c.Retries
	}
	return 4
}

// delay returns the backoff before retry attempt n (0-based), jittered.
func (c *Client) delay(n int) time.Duration {
	d := c.Backoff
	if d <= 0 {
		d = 100 * time.Millisecond
	}
	d <<= uint(n)
	c.mu.Lock()
	j := time.Duration(c.rng.Int63n(int64(d)/2 + 1))
	c.mu.Unlock()
	return d + j
}

// do performs one request with retries, decoding a 2xx JSON body into out
// (when non-nil). Transport failures, truncated bodies, 429 and 5xx retry
// with exponential backoff + jitter (Retry-After, when the server sent
// one, floors the delay); other non-2xx statuses return a *StatusError at
// once. A done ctx aborts immediately — including out of a backoff sleep.
func (c *Client) do(ctx context.Context, method, path string, in, out interface{}) error {
	c.init()
	var body []byte
	if in != nil {
		var err error
		if body, err = json.Marshal(in); err != nil {
			return err
		}
	}
	var last error
	for attempt := 0; ; attempt++ {
		err := c.once2xx(ctx, method, path, body, out)
		if err == nil {
			return nil
		}
		if ctx != nil && ctx.Err() != nil {
			return fmt.Errorf("mcmserve: %s %s: %w", method, path, ctx.Err())
		}
		if !Retryable(err) {
			return err
		}
		last = err
		if attempt >= c.retries() {
			return fmt.Errorf("mcmserve: %s %s failed after %d attempts: %w",
				method, path, attempt+1, last)
		}
		d := c.delay(attempt)
		var se *StatusError
		if errors.As(err, &se) && se.RetryAfter > d {
			d = se.RetryAfter
		}
		c.logf("mcmserve: %s %s attempt %d failed (%v), retrying in %v",
			method, path, attempt+1, err, d)
		if serr := sleepCtx(ctx, d); serr != nil {
			return fmt.Errorf("mcmserve: %s %s: %w", method, path, serr)
		}
	}
}

func (c *Client) once2xx(ctx context.Context, method, path string, body []byte, out interface{}) error {
	if ctx == nil {
		ctx = context.Background()
	}
	req, err := http.NewRequestWithContext(ctx, method, strings.TrimSuffix(c.BaseURL, "/")+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		var eb ErrorBody
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		if json.Unmarshal(data, &eb) != nil || eb.Error == "" {
			eb.Error = strings.TrimSpace(string(data))
		}
		se := &StatusError{Code: resp.StatusCode, Msg: eb.Error}
		if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && ra > 0 {
			se.RetryAfter = time.Duration(ra) * time.Second
		}
		return se
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		// A decode failure on a 2xx is transport damage (a truncated or
		// torn body), not a server answer: report it as retryable.
		return fmt.Errorf("decoding %s %s response: %w", method, path, err)
	}
	return nil
}

// Submit posts a manifest and returns the batch status — job IDs assigned,
// warm cells already done with SourceStore. Safe to re-call on any failure.
func (c *Client) Submit(ctx context.Context, m Manifest) (*BatchStatus, error) {
	var bs BatchStatus
	if err := c.do(ctx, http.MethodPost, "/v1/batches", m, &bs); err != nil {
		return nil, err
	}
	return &bs, nil
}

// Batch fetches the current status of a batch.
func (c *Client) Batch(ctx context.Context, id string) (*BatchStatus, error) {
	var bs BatchStatus
	if err := c.do(ctx, http.MethodGet, "/v1/batches/"+id, nil, &bs); err != nil {
		return nil, err
	}
	return &bs, nil
}

// Job fetches the current status of one job.
func (c *Client) Job(ctx context.Context, id string) (*JobStatus, error) {
	var js JobStatus
	if err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &js); err != nil {
		return nil, err
	}
	return &js, nil
}

// Result fetches the result of a done job.
func (c *Client) Result(ctx context.Context, id string) (*core.Result, error) {
	var res core.Result
	if err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id+"/result", nil, &res); err != nil {
		return nil, err
	}
	return &res, nil
}

// CancelJob asks the server to cancel one job (queued jobs are dropped,
// running jobs get their context canceled).
func (c *Client) CancelJob(ctx context.Context, id string) error {
	return c.do(ctx, http.MethodPost, "/v1/jobs/"+id+"/cancel", nil, nil)
}

// CancelBatch releases a batch's claim on its jobs; a job is canceled when
// no live batch still references it.
func (c *Client) CancelBatch(ctx context.Context, id string) error {
	return c.do(ctx, http.MethodPost, "/v1/batches/"+id+"/cancel", nil, nil)
}

// probe performs one single-attempt request — no retries, no backoff —
// because a health check that retries is just a slow way to say "down".
func (c *Client) probe(ctx context.Context, path string) error {
	c.init()
	return c.once2xx(ctx, http.MethodGet, path, nil, nil)
}

// Healthz reports whether the server process is alive (GET /healthz, one
// attempt, no retries).
func (c *Client) Healthz(ctx context.Context) error {
	return c.probe(ctx, "/healthz")
}

// Readyz reports whether the server is accepting work (GET /readyz, one
// attempt, no retries). A draining or saturated server fails this while
// still passing Healthz — the signal a pool uses to route around it.
func (c *Client) Readyz(ctx context.Context) error {
	return c.probe(ctx, "/readyz")
}

// Wait polls a batch until every job is terminal, with gentle backoff
// (100ms doubling to 2s), and returns the final status.
func (c *Client) Wait(ctx context.Context, id string) (*BatchStatus, error) {
	d := 100 * time.Millisecond
	for {
		bs, err := c.Batch(ctx, id)
		if err != nil {
			return nil, err
		}
		if bs.Done {
			return bs, nil
		}
		if err := sleepCtx(ctx, d); err != nil {
			return nil, err
		}
		if d < 2*time.Second {
			d *= 2
		}
	}
}

// Run is the high-level round trip cmd/sweep uses: submit the manifest,
// wait for the batch to finish, and fetch every done job's result. The
// returned slice is manifest-ordered; failed or canceled jobs leave a nil
// slot and contribute to the returned statuses, which callers inspect for
// error rendering.
func (c *Client) Run(ctx context.Context, m Manifest) ([]*core.Result, []JobStatus, error) {
	bs, err := c.Submit(ctx, m)
	if err != nil {
		return nil, nil, err
	}
	if bs, err = c.Wait(ctx, bs.ID); err != nil {
		return nil, nil, err
	}
	results := make([]*core.Result, len(bs.Jobs))
	for i, js := range bs.Jobs {
		if js.State != StateDone {
			continue
		}
		if results[i], err = c.Result(ctx, js.ID); err != nil {
			return nil, nil, fmt.Errorf("fetching result of job %s: %w", js.ID, err)
		}
	}
	return results, bs.Jobs, nil
}
