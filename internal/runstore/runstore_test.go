package runstore

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"mcmgpu/internal/core"
	"mcmgpu/internal/faultinject"
)

// fakeResult builds a deterministic synthetic result for a key so tests
// can assert byte-identical round trips without running simulations.
func fakeResult(key string) *core.Result {
	var seed uint64
	for _, c := range []byte(key) {
		seed = seed*131 + uint64(c)
	}
	return &core.Result{
		Config:           "cfg-" + key,
		Workload:         "wl-" + key,
		Cycles:           1000 + seed%100000,
		WarpInstrs:       seed % 7777,
		MemOps:           seed % 555,
		LineReads:        seed % 333,
		LineWrites:       seed % 222,
		InterModuleBytes: seed % 999999,
		InterModuleGBps:  float64(seed%1000) / 7.0,
		DRAMBytes:        seed % 123456,
		L1HitRate:        float64(seed%997) / 997.0,
		L1Accesses:       seed % 10000,
		L2HitRate:        float64(seed%991) / 991.0,
		L2Accesses:       seed % 9000,
		LocalFraction:    float64(seed%89) / 89.0,
		PeakDRAMUtil:     float64(seed%83) / 83.0,
		AvgDRAMUtil:      float64(seed%79) / 79.0,
		MaxLinkUtil:      float64(seed%73) / 73.0,
		EnergyPJ: core.EnergyBreakdown{
			Chip: float64(seed % 311), Package: float64(seed % 313),
			Board: float64(seed % 317), DRAM: float64(seed % 331),
			Total: float64(seed%311 + seed%313 + seed%317 + seed%331),
		},
	}
}

func mustOpen(t *testing.T, dir string, opts ...Option) *Store {
	t.Helper()
	s, err := Open(dir, opts...)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return s
}

func TestPutGetRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	want := fakeResult("k1")
	if err := s.Put("k1", want, []byte("metrics-stream\n")); err != nil {
		t.Fatal(err)
	}
	got, stream, ok, err := s.Get("k1")
	if err != nil || !ok {
		t.Fatalf("Get = ok %v, err %v", ok, err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip diverged:\n got %+v\nwant %+v", got, want)
	}
	if string(stream) != "metrics-stream\n" {
		t.Fatalf("metrics stream = %q", stream)
	}
	// A miss is ok=false with no error.
	if _, _, ok, err := s.Get("absent"); ok || err != nil {
		t.Fatalf("miss = ok %v, err %v", ok, err)
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Puts != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestReopenServesPriorResults(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	want := fakeResult("persist")
	if err := s.Put("persist", want, nil); err != nil {
		t.Fatal(err)
	}
	s2 := mustOpen(t, dir)
	got, _, ok, err := s2.Get("persist")
	if err != nil || !ok {
		t.Fatalf("reopened Get = ok %v, err %v", ok, err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("reopened store served a different result")
	}
	// GetByID serves the same entry by content-derived ID.
	byID, _, ok, err := s2.GetByID(KeyID("persist"))
	if err != nil || !ok || !reflect.DeepEqual(byID, want) {
		t.Fatalf("GetByID = %+v ok %v err %v", byID, ok, err)
	}
}

func TestVersionMismatchRefused(t *testing.T) {
	dir := t.TempDir()
	mustOpen(t, dir)
	if err := os.WriteFile(filepath.Join(dir, "VERSION"), []byte("other-format-v9\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil || !strings.Contains(err.Error(), "format") {
		t.Fatalf("Open on foreign format = %v, want version error", err)
	}
}

// TestCorruptBlobQuarantinedAndRecomputable proves the corrupt-blob
// recovery path: a store whose writes were bit-flipped by the fault plan
// must detect the damage on read, quarantine it, and report a miss — never
// serve the corrupted result.
func TestCorruptBlobQuarantinedAndRecomputable(t *testing.T) {
	dir := t.TempDir()
	bad := mustOpen(t, dir, WithFault(faultinject.Plan{Kind: faultinject.StoreCorruptBlob}))
	if err := bad.Put("k", fakeResult("k"), nil); err != nil {
		t.Fatal(err)
	}
	// A fresh, fault-free store over the same directory: the read must
	// detect the mismatch.
	s := mustOpen(t, dir)
	got, _, ok, err := s.Get("k")
	if err != nil {
		t.Fatalf("corrupt blob surfaced as environmental error: %v", err)
	}
	if ok || got != nil {
		t.Fatalf("corrupt blob was served: %+v", got)
	}
	st := s.Stats()
	if st.Corrupt == 0 || st.Quarantined == 0 {
		t.Fatalf("corruption not counted: %+v", st)
	}
	q, _ := os.ReadDir(filepath.Join(dir, "quarantine"))
	if len(q) == 0 {
		t.Fatal("nothing quarantined on disk")
	}
	// The store heals: a fresh Put under the same key works and serves.
	if err := s.Put("k", fakeResult("k"), nil); err != nil {
		t.Fatal(err)
	}
	if _, _, ok, err := s.Get("k"); !ok || err != nil {
		t.Fatalf("healed Get = ok %v, err %v", ok, err)
	}
}

// TestTornWriteDetected proves the torn-write recovery path: a write
// truncated at the final path (the crash artifact) must fail verification
// on read and be quarantined, and a torn entry file must be quarantined by
// the index rebuild on Open.
func TestTornWriteDetected(t *testing.T) {
	// Op 0 of a Put is the result blob write: torn blob.
	dir := t.TempDir()
	bad := mustOpen(t, dir, WithFault(faultinject.Plan{Kind: faultinject.StoreTornWrite, AtEvent: 0}))
	if err := bad.Put("k", fakeResult("k"), nil); err != nil {
		t.Fatalf("torn write must be silent, got %v", err)
	}
	s := mustOpen(t, dir)
	if _, _, ok, err := s.Get("k"); ok || err != nil {
		t.Fatalf("torn blob Get = ok %v, err %v (must miss)", ok, err)
	}
	if s.Stats().Quarantined == 0 {
		t.Fatal("torn blob not quarantined")
	}

	// Op 1 of a metrics-free Put is the entry write: torn entry, caught by
	// the rebuild on Open.
	dir2 := t.TempDir()
	bad2 := mustOpen(t, dir2, WithFault(faultinject.Plan{Kind: faultinject.StoreTornWrite, AtEvent: 1}))
	if err := bad2.Put("k2", fakeResult("k2"), nil); err != nil {
		t.Fatal(err)
	}
	s2 := mustOpen(t, dir2)
	if s2.Len() != 0 {
		t.Fatalf("torn entry survived the index rebuild (%d entries)", s2.Len())
	}
	if s2.Stats().Quarantined == 0 {
		t.Fatal("torn entry not quarantined on open")
	}
	if _, _, ok, _ := s2.Get("k2"); ok {
		t.Fatal("torn entry was served")
	}
}

// TestEIODegradesToError proves the degrade-to-compute path: injected I/O
// errors surface as errors (so callers recompute) and never as hits or
// panics, on both read and write sides.
func TestEIODegradesToError(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	if err := s.Put("k", fakeResult("k"), nil); err != nil {
		t.Fatal(err)
	}
	eio := mustOpen(t, dir, WithFault(faultinject.Plan{Kind: faultinject.StoreEIO}))
	if _, _, ok, err := eio.Get("k"); ok || err == nil {
		t.Fatalf("EIO Get = ok %v, err %v (want error, no hit)", ok, err)
	}
	if err := eio.Put("k2", fakeResult("k2"), nil); err == nil {
		t.Fatal("EIO Put succeeded")
	}
	st := eio.Stats()
	if st.GetErrors == 0 || st.PutErrors == 0 {
		t.Fatalf("io errors not counted: %+v", st)
	}
	// The healthy store still serves the original entry — EIO did not
	// corrupt anything.
	if _, _, ok, err := s.Get("k"); !ok || err != nil {
		t.Fatalf("healthy Get after EIO session = ok %v, err %v", ok, err)
	}
}

// TestSlowIOCounted proves the slow-io fault actually delays and is
// observable (anti-vacuity for the timeout/progress story).
func TestSlowIOCounted(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, WithFault(faultinject.Plan{Kind: faultinject.StoreSlowIO}))
	if err := s.Put("k", fakeResult("k"), nil); err != nil {
		t.Fatal(err)
	}
	if _, _, ok, err := s.Get("k"); !ok || err != nil {
		t.Fatalf("slow Get = ok %v, err %v", ok, err)
	}
	if s.Stats().SlowOps == 0 {
		t.Fatal("slow-io fault never fired")
	}
}

// TestKeyFilterRestrictsFault asserts a ':filter' store plan perturbs only
// matching keys.
func TestKeyFilterRestrictsFault(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, WithFault(faultinject.Plan{Kind: faultinject.StoreEIO, Workload: "victim"}))
	if err := s.Put("victim-key", fakeResult("v"), nil); err == nil {
		t.Fatal("filtered EIO did not fire on matching key")
	}
	if err := s.Put("other-key", fakeResult("o"), nil); err != nil {
		t.Fatalf("filtered EIO fired on foreign key: %v", err)
	}
}

// TestEviction proves the size bound evicts oldest-first and keeps the
// store consistent.
func TestEviction(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, WithMaxBytes(1500))
	var keys []string
	for _, k := range []string{"a", "b", "c", "d", "e", "f"} {
		keys = append(keys, k)
		if err := s.Put(k, fakeResult(k), nil); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Evicted == 0 {
		t.Fatalf("nothing evicted under a %d-byte bound (%d bytes held)", 1500, st.Bytes)
	}
	if st.Bytes > 1500 && st.Entries > 1 {
		t.Fatalf("store over bound after eviction: %+v", st)
	}
	// Whatever survived must still verify; whatever was evicted must be a
	// clean miss. Reopen to prove the on-disk state matches the index.
	s2 := mustOpen(t, dir)
	surviving := 0
	for _, k := range keys {
		got, _, ok, err := s2.Get(k)
		if err != nil {
			t.Fatalf("Get(%s) after eviction: %v", k, err)
		}
		if ok {
			surviving++
			if !reflect.DeepEqual(got, fakeResult(k)) {
				t.Fatalf("surviving entry %s diverged", k)
			}
		}
	}
	if surviving == 0 || surviving == len(keys) {
		t.Fatalf("eviction kept %d of %d entries", surviving, len(keys))
	}
}

// TestMetricsBlobCorruptionDropsWholeEntry: a verified result with a
// corrupt metrics blob must not be half-served.
func TestMetricsBlobCorruptionDropsWholeEntry(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	if err := s.Put("k", fakeResult("k"), []byte("stream-bytes")); err != nil {
		t.Fatal(err)
	}
	// Corrupt the metrics blob on disk directly.
	var e Entry
	data, err := os.ReadFile(filepath.Join(dir, "index", KeyID("k")))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &e); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(s.blobPath(e.Metrics), []byte("tampered"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, ok, err := s.Get("k"); ok || err != nil {
		t.Fatalf("entry with corrupt metrics served: ok %v err %v", ok, err)
	}
	if s.Stats().Quarantined == 0 {
		t.Fatal("corrupt metrics blob not quarantined")
	}
}

// TestOrphanTmpFilesCleared: staging files from a crashed writer are
// discarded on Open — but only once they are old enough that no live
// writer in a concurrently-open process can still own them. A fresh
// staging file must survive, or a restarting server sharing the store
// would steal the rename source out from under a neighbor's in-flight Put.
func TestOrphanTmpFilesCleared(t *testing.T) {
	dir := t.TempDir()
	mustOpen(t, dir)
	orphan := filepath.Join(dir, "tmp", "put-orphan")
	if err := os.WriteFile(orphan, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	fresh := filepath.Join(dir, "tmp", "put-live")
	if err := os.WriteFile(fresh, []byte("in flight"), 0o644); err != nil {
		t.Fatal(err)
	}
	old := time.Now().Add(-stagingGrace - time.Minute)
	if err := os.Chtimes(orphan, old, old); err != nil {
		t.Fatal(err)
	}
	mustOpen(t, dir)
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Fatal("aged orphan staging file survived Open")
	}
	if _, err := os.Stat(fresh); err != nil {
		t.Fatalf("fresh staging file swept by Open (would break a live concurrent writer): %v", err)
	}
}

// TestConcurrentOpenFreshDir: several processes (modeled as goroutines —
// the Store shares no in-process state across Opens) racing to initialize
// one fresh directory must all succeed. This is the multi-backend
// topology's first breath: N servers started together against one empty
// shared store, every one of them durable, none degraded to memory-only.
func TestConcurrentOpenFreshDir(t *testing.T) {
	dir := t.TempDir()
	const openers = 8
	errs := make(chan error, openers)
	for i := 0; i < openers; i++ {
		go func() {
			_, err := Open(dir)
			errs <- err
		}()
	}
	for i := 0; i < openers; i++ {
		if err := <-errs; err != nil {
			t.Fatalf("concurrent Open of a fresh dir failed: %v", err)
		}
	}
}
