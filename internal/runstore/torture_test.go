package runstore

import (
	"fmt"
	"math/rand"
	"os"
	"reflect"
	"testing"

	"mcmgpu/internal/faultinject"
)

// TestCrashTorture is the crash-recovery torture loop: across many
// open/write/reopen cycles, writes are killed at randomized operation
// offsets (torn writes, bit flips, injected EIO — the whole store fault
// family), and after every cycle the reopened store must satisfy the two
// invariants the store exists for:
//
//  1. Zero corrupted reads: every Get either misses cleanly or returns a
//     result byte-identical to the one a fresh compute would produce
//     (modeled by the deterministic fakeResult generator).
//  2. The store always reopens: no sequence of injected damage may wedge
//     Open or poison the index.
//
// The seed is fixed so a failure reproduces exactly.
func TestCrashTorture(t *testing.T) {
	const (
		cycles      = 40
		keysPerCyc  = 6
		totalKeys   = 24
		maxFaultOps = 14
	)
	rng := rand.New(rand.NewSource(0xC0FFEE))
	dir := t.TempDir()

	expect := func(i int) (string, []byte) {
		key := fmt.Sprintf("torture-key-%02d", i)
		stream := []byte(fmt.Sprintf("metrics-for-%02d\nrow,1,2,3\n", i))
		return key, stream
	}

	kinds := []faultinject.Kind{
		faultinject.StoreTornWrite,
		faultinject.StoreCorruptBlob,
		faultinject.StoreEIO,
		faultinject.None, // some cycles are healthy writers
	}

	for cyc := 0; cyc < cycles; cyc++ {
		plan := faultinject.Plan{
			Kind:    kinds[rng.Intn(len(kinds))],
			AtEvent: uint64(rng.Intn(maxFaultOps)),
		}
		w, err := Open(dir, WithFault(plan))
		if err != nil {
			t.Fatalf("cycle %d: Open under plan %q: %v", cyc, plan, err)
		}
		for j := 0; j < keysPerCyc; j++ {
			key, stream := expect(rng.Intn(totalKeys))
			// Put may fail (EIO) or silently corrupt (torn/bit-flip);
			// both model a dying writer and are allowed. What is never
			// allowed is the damage being SERVED later.
			_ = w.Put(key, fakeResult(key), stream)
		}

		// "Reopen after crash": a fresh store over the same directory with
		// no faults armed. Recovery (tmp cleanup, index rebuild,
		// verify-on-read) must leave only clean state observable.
		r, err := Open(dir)
		if err != nil {
			t.Fatalf("cycle %d: reopen after plan %q: %v", cyc, plan, err)
		}
		for i := 0; i < totalKeys; i++ {
			key, stream := expect(i)
			got, gotStream, ok, err := r.Get(key)
			if err != nil {
				t.Fatalf("cycle %d key %s: environmental error from a healthy store: %v", cyc, key, err)
			}
			if !ok {
				continue // clean miss: the write died; recompute would fill it
			}
			if want := fakeResult(key); !reflect.DeepEqual(got, want) {
				t.Fatalf("cycle %d key %s (plan %q): CORRUPTED READ\n got %+v\nwant %+v",
					cyc, key, plan, got, want)
			}
			if string(gotStream) != string(stream) {
				t.Fatalf("cycle %d key %s: corrupted metrics stream %q", cyc, key, gotStream)
			}
		}
	}

	// Anti-vacuity: the torture must actually have exercised the recovery
	// machinery, not 40 healthy cycles.
	final, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Quarantine events were counted per-store-instance; prove damage
	// occurred by the artifacts it left behind.
	if n := quarantineCount(t, dir); n == 0 {
		t.Fatal("torture produced zero quarantined files — the fault plans never fired (vacuous test)")
	}
	// And the store still works end to end.
	if err := final.Put("post-torture", fakeResult("post-torture"), nil); err != nil {
		t.Fatal(err)
	}
	if _, _, ok, err := final.Get("post-torture"); !ok || err != nil {
		t.Fatalf("post-torture store broken: ok %v err %v", ok, err)
	}
}

func quarantineCount(t *testing.T, dir string) int {
	t.Helper()
	entries, err := os.ReadDir(dir + "/quarantine")
	if err != nil {
		t.Fatal(err)
	}
	return len(entries)
}
