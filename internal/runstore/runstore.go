// Package runstore is an on-disk, content-addressed result store for
// simulation jobs. It promotes the process-lifetime memo cache of
// internal/runner into durable state: results (and optionally their
// metrics streams) are stored as SHA-256-addressed blobs, and job keys —
// the same Config.Fingerprint()|Spec.Fingerprint()|scale keys the memo
// cache uses — map to blobs through small JSON entry files.
//
// The store's contract is that it never serves a torn or corrupted result:
//
//   - Every write goes through an atomic temp-file + fsync + rename
//     protocol, so a crash leaves either the old state or the new state at
//     any final path, never a prefix of the new one. Staging files live in
//     tmp/ and are discarded on Open.
//   - Every blob read is verified against the SHA-256 the blob is addressed
//     by. A mismatch — bit rot, a torn write that somehow reached the final
//     path, manual tampering — quarantines the blob and its entry and
//     reports a miss, so the caller recomputes instead of consuming bad
//     data.
//   - Open rebuilds the in-memory index by scanning the entry directory.
//     Unparseable or misnamed entries (the on-disk artifact of a crash
//     mid-entry-write under a non-atomic filesystem) are quarantined, not
//     trusted.
//   - Environmental I/O errors (EIO, permissions) are returned to the
//     caller distinctly from misses so it can degrade to recomputing; they
//     never surface as silent wrong answers.
//
// Each failure path is provable: the store consults a faultinject store
// plan (store-torn-write, store-corrupt-blob, store-eio, store-slow-io)
// and injects the corresponding damage deterministically, which is how the
// package tests and CI demonstrate that quarantine, rebuild, and
// degrade-to-compute actually fire rather than being dead code.
//
// Concurrency: one Store value is safe for concurrent use. Multiple
// processes may share a directory — writes are atomic renames and blobs
// are content-addressed, so concurrent writers of the same key converge on
// identical bytes — but eviction accounting is per-process.
package runstore

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"mcmgpu/internal/core"
	"mcmgpu/internal/faultinject"
)

// Version is the on-disk format version, recorded in the VERSION file at
// the store root. Open refuses a directory carrying a different version
// rather than guessing at its layout.
const Version = "mcmgpu-runstore-v1"

// ErrInjected is the error returned by operations failed by an armed
// store-eio fault plan. It stands in for the EIO/ENOSPC class of
// environmental failures, and callers must treat it exactly like them:
// log, count, recompute.
var ErrInjected = errors.New("runstore: injected I/O error")

// Entry is the on-disk index record mapping one job key to its blobs. The
// full key is stored (not just its hash) so Open can verify an entry file
// sits under its own KeyID and so hash collisions degrade to misses
// instead of wrong results.
type Entry struct {
	// Key is the full job key the entry stores a result for.
	Key string `json:"key"`
	// Result is the SHA-256 (hex) of the result blob.
	Result string `json:"result"`
	// Metrics is the SHA-256 (hex) of the metrics-stream blob, when the
	// result was stored with one.
	Metrics string `json:"metrics,omitempty"`
	// Size is the total blob bytes the entry accounts for (eviction).
	Size int64 `json:"size"`
	// Unix is the entry's creation time; eviction removes oldest first.
	Unix int64 `json:"unix"`
	// Sum is the SHA-256 (hex) over the other fields. It makes entry files
	// self-verifying: a bit flip that leaves the JSON parseable — flipping
	// a character inside a field name silently drops that field — is still
	// caught by the index rebuild instead of changing the entry's meaning.
	Sum string `json:"sum"`
}

// computeSum returns the checksum over the entry's semantic fields.
func (e *Entry) computeSum() string {
	h := sha256.Sum256([]byte(fmt.Sprintf("%s|%s|%s|%d|%d", e.Key, e.Result, e.Metrics, e.Size, e.Unix)))
	return hex.EncodeToString(h[:])
}

// verify reports whether the entry is internally consistent and belongs
// under the given index filename.
func (e *Entry) verify(name string) bool {
	return KeyID(e.Key) == name && e.Sum == e.computeSum()
}

// Stats counts store effectiveness and every failure-recovery event. The
// recovery counters are load-bearing: tests assert them non-zero under
// injected faults, which is what makes each recovery path provably live.
type Stats struct {
	// Hits and Misses count Get outcomes; Puts counts stored results.
	Hits, Misses, Puts uint64
	// Corrupt counts blobs or entries that failed SHA-256 or parse
	// verification; Quarantined counts files moved aside as a result.
	Corrupt, Quarantined uint64
	// GetErrors and PutErrors count environmental I/O failures (the
	// degrade-to-compute path), not verification failures.
	GetErrors, PutErrors uint64
	// SlowOps counts operations delayed by an armed store-slow-io fault.
	SlowOps uint64
	// Evicted counts entries removed by the size bound.
	Evicted uint64
	// Entries and Bytes describe the current index.
	Entries int
	Bytes   int64
}

// String renders the one-line summary the CLIs print next to the memo
// cache stats.
func (s Stats) String() string {
	return fmt.Sprintf("%d hits, %d misses, %d puts, %d entries (%d bytes), %d corrupt, %d quarantined, %d evicted, %d io errors",
		s.Hits, s.Misses, s.Puts, s.Entries, s.Bytes, s.Corrupt, s.Quarantined, s.Evicted, s.GetErrors+s.PutErrors)
}

// Store is one open run store. Construct with Open; the zero value is not
// usable.
type Store struct {
	dir      string
	logf     func(format string, args ...interface{})
	maxBytes int64
	fault    faultinject.Plan

	mu       sync.Mutex
	index    map[string]*Entry // by KeyID(entry.Key)
	bytes    int64
	qseq     uint64 // quarantine filename disambiguator
	faultOps uint64 // store-fault operation counter (under mu)
	stats    Stats
}

// Option configures Open.
type Option func(*Store)

// WithLogf routes the store's diagnostics (quarantines, degraded
// operations) to the given printf-style sink. The default discards them.
func WithLogf(f func(format string, args ...interface{})) Option {
	return func(s *Store) {
		if f != nil {
			s.logf = f
		}
	}
}

// WithMaxBytes bounds the store's blob bytes; Put evicts oldest entries
// first until under the bound. 0 (the default) means unbounded.
func WithMaxBytes(n int64) Option {
	return func(s *Store) { s.maxBytes = n }
}

// WithFault arms a store fault plan (see internal/faultinject). Non-store
// plans are ignored, so callers can pass MCMGPU_FAULT's plan through
// unconditionally.
func WithFault(p faultinject.Plan) Option {
	return func(s *Store) {
		if p.IsStore() {
			s.fault = p
		}
	}
}

// KeyID returns the store's identifier for a job key: the first 16 bytes
// of its SHA-256, hex-encoded. Entry files are named by it, and services
// use it as the public, content-derived job ID (resubmitting the same job
// yields the same ID, which is what makes resubmission idempotent).
func KeyID(key string) string {
	h := sha256.Sum256([]byte(key))
	return hex.EncodeToString(h[:16])
}

// Open opens (creating if needed) a store rooted at dir, discards staging
// files from any interrupted writer, and rebuilds the index by scanning
// the entry directory. Entries that fail verification — unparseable JSON,
// a filename that is not the KeyID of the key inside — are quarantined.
func Open(dir string, opts ...Option) (*Store, error) {
	s := &Store{
		dir:   dir,
		logf:  func(string, ...interface{}) {},
		index: map[string]*Entry{},
	}
	for _, o := range opts {
		o(s)
	}
	for _, sub := range []string{"", "tmp", "blobs", "index", "quarantine"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("runstore: %w", err)
		}
	}
	if err := s.checkVersion(); err != nil {
		return nil, err
	}
	// Staging files from a writer that died between CreateTemp and rename
	// are garbage, not data — but with several server processes sharing one
	// store, a *fresh* staging file may belong to a live writer in another
	// process, and sweeping it would steal the rename source out from under
	// a concurrent Put (or a concurrent first-open VERSION write). Only
	// files old enough that no live writer can still own them are orphans.
	if tmps, err := os.ReadDir(filepath.Join(dir, "tmp")); err == nil {
		for _, e := range tmps {
			if info, ierr := e.Info(); ierr == nil && time.Since(info.ModTime()) < stagingGrace {
				continue
			}
			os.Remove(filepath.Join(dir, "tmp", e.Name()))
		}
	}
	if err := s.rebuildIndex(); err != nil {
		return nil, err
	}
	return s, nil
}

// stagingGrace is how old a tmp/ staging file must be before Open treats
// it as a dead writer's orphan. A live writer holds a staging file for the
// duration of one write + fsync + rename — seconds at the outside — so
// anything past the grace is provably abandoned, and anything within it is
// left alone in case a concurrently-open process owns it.
const stagingGrace = 10 * time.Minute

// checkVersion validates or initializes the VERSION file.
func (s *Store) checkVersion() error {
	path := filepath.Join(s.dir, "VERSION")
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		if werr := s.writeAtomic(path, []byte(Version+"\n"), wNone); werr != nil {
			// Several processes can race to initialize a fresh directory.
			// If VERSION is in place and correct by the time our write
			// fails, a concurrent opener won the race — the store is
			// initialized, and by whom is irrelevant.
			if data, rerr := os.ReadFile(path); rerr == nil &&
				strings.TrimSpace(string(data)) == Version {
				return nil
			}
			return werr
		}
		return nil
	}
	if err != nil {
		return fmt.Errorf("runstore: %w", err)
	}
	if got := strings.TrimSpace(string(data)); got != Version {
		return fmt.Errorf("runstore: %s holds format %q, want %q", s.dir, got, Version)
	}
	return nil
}

// rebuildIndex scans index/ into memory, quarantining entries that fail
// verification. This is the crash-recovery path: a torn entry write (under
// an injected store-torn-write fault, or a real crash on a filesystem
// without atomic rename durability) surfaces here as unparseable JSON or a
// name/key mismatch, and is moved aside instead of trusted.
func (s *Store) rebuildIndex() error {
	idxDir := filepath.Join(s.dir, "index")
	files, err := os.ReadDir(idxDir)
	if err != nil {
		return fmt.Errorf("runstore: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, f := range files {
		if f.IsDir() {
			continue
		}
		path := filepath.Join(idxDir, f.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			s.logf("runstore: unreadable entry %s: %v", f.Name(), err)
			s.stats.GetErrors++
			continue
		}
		var e Entry
		if jerr := json.Unmarshal(data, &e); jerr != nil || !e.verify(f.Name()) {
			s.quarantineLocked(path, "entry failed verification on open")
			continue
		}
		s.index[f.Name()] = &e
		s.bytes += e.Size
	}
	return nil
}

func (s *Store) path(parts ...string) string {
	return filepath.Join(append([]string{s.dir}, parts...)...)
}

// blobPath fans blobs out under their first hex byte so no single
// directory grows unboundedly.
func (s *Store) blobPath(sum string) string {
	return s.path("blobs", sum[:2], sum)
}

// quarantineLocked moves a suspect file into quarantine/ under a unique
// name and counts it. Callers hold mu.
func (s *Store) quarantineLocked(path, why string) {
	s.qseq++
	dst := s.path("quarantine", fmt.Sprintf("%s.%d", filepath.Base(path), s.qseq))
	if err := os.Rename(path, dst); err != nil {
		// Removal is an acceptable fallback: the file is known-bad, and
		// leaving it in place would re-trip verification forever.
		os.Remove(path)
	}
	s.stats.Corrupt++
	s.stats.Quarantined++
	s.logf("runstore: quarantined %s: %s", filepath.Base(path), why)
}

// Fault-injection write modes (see internal/faultinject store kinds).
type wmode int

const (
	wNone    wmode = iota
	wTorn          // truncated content at the final path, no rename, silent success
	wCorrupt       // one flipped byte, otherwise normal atomic write
	wEIO           // fail the operation outright
)

// writeFault consults the armed fault plan for one write operation on key,
// advancing the operation counter when the plan matches.
func (s *Store) writeFault(key string) wmode {
	p := s.fault
	if !p.MatchesStore(key) {
		return wNone
	}
	s.mu.Lock()
	n := s.faultOps
	s.faultOps++
	slow := p.Kind == faultinject.StoreSlowIO && n >= p.AtEvent
	if slow {
		s.stats.SlowOps++
	}
	s.mu.Unlock()
	if n < p.AtEvent {
		return wNone
	}
	switch p.Kind {
	case faultinject.StoreTornWrite:
		return wTorn
	case faultinject.StoreCorruptBlob:
		return wCorrupt
	case faultinject.StoreEIO:
		return wEIO
	case faultinject.StoreSlowIO:
		time.Sleep(2 * time.Millisecond)
	}
	return wNone
}

// readFault consults the armed fault plan for one read operation on key.
// Only the eio and slow-io kinds apply to reads; the write corruptions
// count write operations exclusively so their @op indices are stable.
func (s *Store) readFault(key string) error {
	p := s.fault
	if !p.MatchesStore(key) {
		return nil
	}
	if p.Kind != faultinject.StoreEIO && p.Kind != faultinject.StoreSlowIO {
		return nil
	}
	s.mu.Lock()
	n := s.faultOps
	s.faultOps++
	fire := n >= p.AtEvent
	if fire && p.Kind == faultinject.StoreSlowIO {
		s.stats.SlowOps++
	}
	s.mu.Unlock()
	if !fire {
		return nil
	}
	if p.Kind == faultinject.StoreEIO {
		return ErrInjected
	}
	time.Sleep(2 * time.Millisecond)
	return nil
}

// writeAtomic writes data to final via the temp-file + fsync + rename
// protocol, or applies the requested injected damage instead.
func (s *Store) writeAtomic(final string, data []byte, mode wmode) error {
	switch mode {
	case wEIO:
		return ErrInjected
	case wTorn:
		// The crash artifact: a prefix of the data at the final path. The
		// write "succeeds" — real torn writes do not announce themselves.
		return os.WriteFile(final, data[:len(data)/2], 0o644)
	case wCorrupt:
		if len(data) > 0 {
			data = append([]byte(nil), data...)
			data[len(data)/2] ^= 0x40
		}
	}
	f, err := os.CreateTemp(s.path("tmp"), "put-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// putBlob stores data content-addressed, returning its hex SHA-256 and the
// bytes newly written (0 when the blob already existed — deduplication is
// what content addressing buys).
func (s *Store) putBlob(key string, data []byte) (string, int64, error) {
	sum := sha256.Sum256(data)
	hexSum := hex.EncodeToString(sum[:])
	final := s.blobPath(hexSum)
	if existing, err := os.ReadFile(final); err == nil {
		// Deduplicate only onto verified bytes: trusting an unverified
		// existing file would let a corrupted blob survive the very Put
		// that should heal it.
		if got := sha256.Sum256(existing); got == sum {
			return hexSum, 0, nil
		}
		s.mu.Lock()
		s.quarantineLocked(final, "existing blob content does not match its address")
		s.mu.Unlock()
	}
	if err := os.MkdirAll(filepath.Dir(final), 0o755); err != nil {
		return "", 0, err
	}
	if err := s.writeAtomic(final, data, s.writeFault(key)); err != nil {
		return "", 0, err
	}
	return hexSum, int64(len(data)), nil
}

// getBlob reads and verifies one blob. A verification failure quarantines
// the blob and returns errCorrupt; an environmental failure returns the
// underlying error. Missing files return os.ErrNotExist (the caller
// decides whether that is corruption — a dangling entry — or a plain
// miss).
var errCorrupt = errors.New("runstore: blob failed SHA-256 verification")

func (s *Store) getBlob(key, hexSum string) ([]byte, error) {
	if err := s.readFault(key); err != nil {
		return nil, err
	}
	path := s.blobPath(hexSum)
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	sum := sha256.Sum256(data)
	if hex.EncodeToString(sum[:]) != hexSum {
		s.mu.Lock()
		s.quarantineLocked(path, "content does not match address")
		s.mu.Unlock()
		return nil, errCorrupt
	}
	return data, nil
}

// Put stores a successful result (and optionally its metrics stream) under
// key. Errors are environmental — the caller should log and continue, the
// result it computed is still valid. Only successful results belong in the
// store: errors are either deterministic (recomputing is as cheap as
// re-reading, and a stored error could outlive the bug that produced it)
// or transient (persisting them would poison every future process), the
// same parity the in-memory cache keeps by evicting transient failures.
func (s *Store) Put(key string, res *core.Result, metricsStream []byte) error {
	if res == nil {
		return errors.New("runstore: Put of nil result")
	}
	data, err := json.Marshal(res)
	if err != nil {
		return fmt.Errorf("runstore: %w", err)
	}
	resSum, n1, err := s.putBlob(key, data)
	if err != nil {
		return s.putFailed(err)
	}
	e := &Entry{Key: key, Result: resSum, Size: n1, Unix: time.Now().Unix()}
	if len(metricsStream) > 0 {
		metSum, n2, err := s.putBlob(key, metricsStream)
		if err != nil {
			return s.putFailed(err)
		}
		e.Metrics = metSum
		e.Size += n2
	}
	e.Sum = e.computeSum()
	entryData, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("runstore: %w", err)
	}
	id := KeyID(key)
	if err := s.writeAtomic(s.path("index", id), entryData, s.writeFault(key)); err != nil {
		return s.putFailed(err)
	}
	s.mu.Lock()
	if old, ok := s.index[id]; ok {
		s.bytes -= old.Size
	}
	s.index[id] = e
	s.bytes += e.Size
	s.stats.Puts++
	s.evictLocked()
	s.mu.Unlock()
	return nil
}

func (s *Store) putFailed(err error) error {
	s.mu.Lock()
	s.stats.PutErrors++
	s.mu.Unlock()
	s.logf("runstore: put failed (store degraded, result kept in memory only): %v", err)
	return fmt.Errorf("runstore: put: %w", err)
}

// Get returns the stored result and metrics stream for key. ok reports a
// verified hit. A corrupt blob or dangling entry is quarantined and
// reported as a miss (ok false, nil error) — the caller recomputes and the
// store heals. A non-nil error is environmental (EIO class): the caller
// should log it and degrade to computing, never fail the job on it.
func (s *Store) Get(key string) (res *core.Result, metricsStream []byte, ok bool, err error) {
	return s.get(KeyID(key), key, true)
}

// GetByID is Get addressed by KeyID. Services use it to serve results by
// content-derived job ID across restarts, when the full key of a past
// submission is no longer in memory.
func (s *Store) GetByID(id string) (res *core.Result, metricsStream []byte, ok bool, err error) {
	return s.get(id, "", false)
}

func (s *Store) get(id, key string, haveKey bool) (*core.Result, []byte, bool, error) {
	s.mu.Lock()
	e, found := s.index[id]
	if found && haveKey && e.Key != key {
		// A 128-bit collision, or a tampered entry: never serve a result
		// for a different key than the caller asked about.
		found = false
	}
	if !found {
		s.stats.Misses++
		s.mu.Unlock()
		return nil, nil, false, nil
	}
	entry := *e
	s.mu.Unlock()

	data, err := s.getBlob(entry.Key, entry.Result)
	if err != nil {
		return nil, nil, false, s.getFailed(id, entry, err)
	}
	var res core.Result
	if jerr := json.Unmarshal(data, &res); jerr != nil {
		// The hash verified, so this is a format bug or a foreign blob;
		// either way the entry cannot be served. Quarantine and miss.
		s.dropEntry(id, entry, "result blob is not a valid Result")
		return nil, nil, false, nil
	}
	var stream []byte
	if entry.Metrics != "" {
		stream, err = s.getBlob(entry.Key, entry.Metrics)
		if err != nil {
			return nil, nil, false, s.getFailed(id, entry, err)
		}
	}
	s.mu.Lock()
	s.stats.Hits++
	s.mu.Unlock()
	return &res, stream, true, nil
}

// getFailed classifies a blob read failure: verification failures and
// dangling entries quarantine the entry and degrade to a miss; anything
// else is environmental and surfaces as an error for the caller to degrade
// on.
func (s *Store) getFailed(id string, e Entry, err error) error {
	if errors.Is(err, errCorrupt) {
		s.dropEntry(id, e, "blob failed verification")
		return nil
	}
	if errors.Is(err, os.ErrNotExist) {
		s.dropEntry(id, e, "entry references a missing blob")
		return nil
	}
	s.mu.Lock()
	s.stats.Misses++
	s.stats.GetErrors++
	s.mu.Unlock()
	s.logf("runstore: get failed (degrading to compute): %v", err)
	return fmt.Errorf("runstore: get: %w", err)
}

// dropEntry quarantines an entry file, removes it from the index, and
// counts the event as a corruption-recovery miss.
func (s *Store) dropEntry(id string, e Entry, why string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if cur, ok := s.index[id]; ok && cur.Key == e.Key {
		delete(s.index, id)
		s.bytes -= cur.Size
	}
	s.quarantineLocked(s.path("index", id), why)
	s.stats.Misses++
}

// evictLocked removes oldest-first entries until the store is under its
// byte bound. Blobs are deleted only when no surviving entry references
// them (content addressing means entries can share blobs). Callers hold
// mu.
func (s *Store) evictLocked() {
	if s.maxBytes <= 0 || s.bytes <= s.maxBytes {
		return
	}
	type aged struct {
		id string
		e  *Entry
	}
	order := make([]aged, 0, len(s.index))
	for id, e := range s.index {
		order = append(order, aged{id, e})
	}
	sort.Slice(order, func(a, b int) bool {
		if order[a].e.Unix != order[b].e.Unix {
			return order[a].e.Unix < order[b].e.Unix
		}
		return order[a].id < order[b].id
	})
	for _, v := range order {
		if s.bytes <= s.maxBytes || len(s.index) <= 1 {
			return
		}
		delete(s.index, v.id)
		s.bytes -= v.e.Size
		os.Remove(s.path("index", v.id))
		for _, sum := range []string{v.e.Result, v.e.Metrics} {
			if sum != "" && !s.blobReferencedLocked(sum) {
				os.Remove(s.blobPath(sum))
			}
		}
		s.stats.Evicted++
		s.logf("runstore: evicted %s (%d bytes) to stay under %d bytes", v.id, v.e.Size, s.maxBytes)
	}
}

// blobReferencedLocked reports whether any indexed entry references sum.
func (s *Store) blobReferencedLocked(sum string) bool {
	for _, e := range s.index {
		if e.Result == sum || e.Metrics == sum {
			return true
		}
	}
	return false
}

// Stats returns a snapshot of the store's counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Entries = len(s.index)
	st.Bytes = s.bytes
	return st
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Len returns the number of indexed entries.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}
