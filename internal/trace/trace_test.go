package trace

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"mcmgpu/internal/workload"
)

func smallSpec() *workload.Spec {
	s, err := workload.ByName("BFS")
	if err != nil {
		panic(err)
	}
	return s.Scaled(0.05)
}

func TestRecordShape(t *testing.T) {
	spec := smallSpec()
	tr, err := Record(spec)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Name != spec.Name {
		t.Errorf("Name = %q", tr.Name)
	}
	if len(tr.Warps) != spec.CTAs*spec.WarpsPerCTA {
		t.Fatalf("warps = %d, want %d", len(tr.Warps), spec.CTAs*spec.WarpsPerCTA)
	}
	if got, want := tr.Ops(), spec.CTAs*spec.WarpsPerCTA*spec.MemOpsPerWarp; got != want {
		t.Fatalf("Ops = %d, want %d", got, want)
	}
}

func TestRecordRejectsInvalidSpec(t *testing.T) {
	bad := *smallSpec()
	bad.CTAs = 0
	if _, err := Record(&bad); err == nil {
		t.Fatalf("invalid spec accepted")
	}
}

func TestRoundTrip(t *testing.T) {
	tr, err := Record(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	n, err := tr.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Errorf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Equal(got) {
		t.Fatalf("round trip lost data")
	}
}

func TestCompression(t *testing.T) {
	// Streaming traces delta-compress well: far below 8 bytes per line.
	spec, err := workload.ByName("Stream")
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Record(spec.Scaled(0.05))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	s := tr.Summarize()
	bytesPerLine := float64(buf.Len()) / float64(s.LineAccesses)
	if bytesPerLine > 6 {
		t.Errorf("trace encodes %.1f bytes/line; delta coding ineffective", bytesPerLine)
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("NOPE"),
		[]byte("MCMTgarbage that goes nowhere"),
	}
	for i, c := range cases {
		if _, err := Read(bytes.NewReader(c)); err == nil {
			t.Errorf("case %d: garbage accepted", i)
		}
	}
}

func TestReadRejectsWrongVersion(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString(magic)
	buf.WriteByte(99) // version uvarint
	if _, err := Read(&buf); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("wrong version accepted: %v", err)
	}
}

func TestSummarize(t *testing.T) {
	spec := smallSpec()
	tr, err := Record(spec)
	if err != nil {
		t.Fatal(err)
	}
	s := tr.Summarize()
	if s.Ops != tr.Ops() {
		t.Errorf("Ops mismatch: %d vs %d", s.Ops, tr.Ops())
	}
	if s.UniqueLines == 0 || s.UniqueLines > s.LineAccesses {
		t.Errorf("UniqueLines = %d of %d accesses", s.UniqueLines, s.LineAccesses)
	}
	if s.WriteFraction < 0.05 || s.WriteFraction > 0.5 {
		t.Errorf("WriteFraction = %v, spec says %v", s.WriteFraction, spec.WriteFraction)
	}
	if s.ReuseFactor < 1 {
		t.Errorf("ReuseFactor = %v, must be >= 1", s.ReuseFactor)
	}
	if s.FootprintMB <= 0 || s.FootprintMB > spec.ModelFootprintMB()+0.01 {
		t.Errorf("FootprintMB = %v, spec footprint %v", s.FootprintMB, spec.ModelFootprintMB())
	}
}

func TestDeterministicRecording(t *testing.T) {
	a, err := Record(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Record(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Fatalf("recording is nondeterministic")
	}
}

func TestEqualDetectsDifferences(t *testing.T) {
	a, _ := Record(smallSpec())
	b, _ := Record(smallSpec())
	b.Warps[0].Ops[0].Lines[0]++
	if a.Equal(b) {
		t.Fatalf("Equal missed a line difference")
	}
	c, _ := Record(smallSpec())
	c.Name = "other"
	if a.Equal(c) {
		t.Fatalf("Equal missed a name difference")
	}
}

// Property: zigzag coding round-trips all deltas.
func TestZigzagRoundTripProperty(t *testing.T) {
	f := func(d int64) bool { return unzigzag(zigzag(d)) == d }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: every workload in the suite records and round-trips at tiny
// scale.
func TestSuiteRoundTripProperty(t *testing.T) {
	for _, spec := range workload.Suite() {
		small := spec.Scaled(0.02)
		small.CTAs = 8 // keep traces tiny
		if small.FootprintLines < uint64(small.CTAs)*2+small.SharedLines+small.ScatterLines {
			small.FootprintLines = uint64(small.CTAs)*2 + small.SharedLines + small.ScatterLines
		}
		tr, err := Record(small)
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		var buf bytes.Buffer
		if _, err := tr.WriteTo(&buf); err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		got, err := Read(&buf)
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		if !tr.Equal(got) {
			t.Fatalf("%s: round trip lost data", spec.Name)
		}
	}
}
