// Package trace records the memory access streams of synthetic workloads in
// a compact binary format, replays them, and characterizes them. Traces
// serve three purposes: they pin down workload determinism in tests, they
// let access streams be inspected or exported for external analysis, and
// they provide the per-application characterization (working set, write
// share, reuse) that Table 4-style reporting builds on.
//
// Format (little endian):
//
//	magic "MCMT" | version u32 | name len u32 | name bytes
//	ctas u32 | warpsPerCTA u32
//	per warp: opCount u32, then per op: flags u8, numLines u8, lines varint-delta
//
// Lines are delta-encoded against the previous line address of the same
// warp, zig-zag varint, which compresses streaming patterns well.
package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"mcmgpu/internal/workload"
)

const (
	magic   = "MCMT"
	version = 1

	flagWrite = 1 << 0
)

// Op is one recorded warp memory operation.
type Op struct {
	Write bool
	Lines []uint64
}

// WarpTrace is the ordered op stream of one warp.
type WarpTrace struct {
	CTA  int
	Warp int
	Ops  []Op
}

// Trace is the recorded access stream of one kernel launch.
type Trace struct {
	Name        string
	CTAs        int
	WarpsPerCTA int
	Warps       []WarpTrace // len = CTAs * WarpsPerCTA, CTA-major
}

// Record captures the access stream of one kernel launch of spec.
// Compute counts are a fixed property of the spec, so only memory behavior
// is recorded.
func Record(spec *workload.Spec) (*Trace, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	t := &Trace{
		Name:        spec.Name,
		CTAs:        spec.CTAs,
		WarpsPerCTA: spec.WarpsPerCTA,
	}
	t.Warps = make([]WarpTrace, 0, spec.CTAs*spec.WarpsPerCTA)
	var op workload.Op
	for cta := 0; cta < spec.CTAs; cta++ {
		for w := 0; w < spec.WarpsPerCTA; w++ {
			wt := WarpTrace{CTA: cta, Warp: w, Ops: make([]Op, 0, spec.MemOpsPerWarp)}
			st := workload.NewStream(spec, cta, w)
			for st.Next(&op) {
				lines := make([]uint64, op.NumLines)
				copy(lines, op.Lines[:op.NumLines])
				wt.Ops = append(wt.Ops, Op{Write: op.Write, Lines: lines})
			}
			t.Warps = append(t.Warps, wt)
		}
	}
	return t, nil
}

// Ops returns the total number of recorded operations.
func (t *Trace) Ops() int {
	n := 0
	for i := range t.Warps {
		n += len(t.Warps[i].Ops)
	}
	return n
}

// zigzag encodes a signed delta as unsigned.
func zigzag(d int64) uint64 { return uint64(d<<1) ^ uint64(d>>63) }

// unzigzag reverses zigzag.
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// WriteTo serializes the trace. It implements io.WriterTo.
func (t *Trace) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	write := func(p []byte) error {
		m, err := bw.Write(p)
		n += int64(m)
		return err
	}
	var scratch [binary.MaxVarintLen64]byte
	writeUvarint := func(v uint64) error {
		return write(scratch[:binary.PutUvarint(scratch[:], v)])
	}
	if err := write([]byte(magic)); err != nil {
		return n, err
	}
	if err := writeUvarint(version); err != nil {
		return n, err
	}
	if err := writeUvarint(uint64(len(t.Name))); err != nil {
		return n, err
	}
	if err := write([]byte(t.Name)); err != nil {
		return n, err
	}
	if err := writeUvarint(uint64(t.CTAs)); err != nil {
		return n, err
	}
	if err := writeUvarint(uint64(t.WarpsPerCTA)); err != nil {
		return n, err
	}
	for i := range t.Warps {
		wt := &t.Warps[i]
		if err := writeUvarint(uint64(len(wt.Ops))); err != nil {
			return n, err
		}
		prev := int64(0)
		for _, op := range wt.Ops {
			flags := byte(0)
			if op.Write {
				flags |= flagWrite
			}
			if err := write([]byte{flags, byte(len(op.Lines))}); err != nil {
				return n, err
			}
			for _, l := range op.Lines {
				if err := writeUvarint(zigzag(int64(l) - prev)); err != nil {
					return n, err
				}
				prev = int64(l)
			}
		}
	}
	return n, bw.Flush()
}

// Read deserializes a trace written by WriteTo.
func Read(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	head := make([]byte, len(magic))
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if string(head) != magic {
		return nil, fmt.Errorf("trace: bad magic %q", head)
	}
	v, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: reading version: %w", err)
	}
	if v != version {
		return nil, fmt.Errorf("trace: unsupported version %d", v)
	}
	nameLen, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: reading name length: %w", err)
	}
	if nameLen > 1<<16 {
		return nil, fmt.Errorf("trace: implausible name length %d", nameLen)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, fmt.Errorf("trace: reading name: %w", err)
	}
	ctas, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: reading cta count: %w", err)
	}
	warps, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: reading warp count: %w", err)
	}
	const maxWarps = 1 << 24
	if ctas == 0 || warps == 0 || ctas*warps > maxWarps {
		return nil, fmt.Errorf("trace: implausible shape %dx%d", ctas, warps)
	}
	t := &Trace{
		Name:        string(name),
		CTAs:        int(ctas),
		WarpsPerCTA: int(warps),
		Warps:       make([]WarpTrace, 0, ctas*warps),
	}
	for cta := 0; cta < t.CTAs; cta++ {
		for w := 0; w < t.WarpsPerCTA; w++ {
			nOps, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, fmt.Errorf("trace: warp %d/%d op count: %w", cta, w, err)
			}
			if nOps > 1<<24 {
				return nil, fmt.Errorf("trace: implausible op count %d", nOps)
			}
			wt := WarpTrace{CTA: cta, Warp: w, Ops: make([]Op, 0, nOps)}
			prev := int64(0)
			for o := uint64(0); o < nOps; o++ {
				var hdr [2]byte
				if _, err := io.ReadFull(br, hdr[:]); err != nil {
					return nil, fmt.Errorf("trace: op header: %w", err)
				}
				nLines := int(hdr[1])
				if nLines == 0 || nLines > workload.MaxLinesPerOp {
					return nil, fmt.Errorf("trace: implausible line count %d", nLines)
				}
				op := Op{Write: hdr[0]&flagWrite != 0, Lines: make([]uint64, nLines)}
				for l := 0; l < nLines; l++ {
					d, err := binary.ReadUvarint(br)
					if err != nil {
						return nil, fmt.Errorf("trace: line delta: %w", err)
					}
					prev += unzigzag(d)
					if prev < 0 {
						return nil, fmt.Errorf("trace: negative line address")
					}
					op.Lines[l] = uint64(prev)
				}
				wt.Ops = append(wt.Ops, op)
			}
			t.Warps = append(t.Warps, wt)
		}
	}
	return t, nil
}

// Stats summarizes a trace.
type Stats struct {
	Ops           int
	LineAccesses  int
	UniqueLines   int
	WriteFraction float64
	// FootprintMB is unique lines times the 128-byte line size.
	FootprintMB float64
	// ReuseFactor is line accesses per unique line.
	ReuseFactor float64
}

// Summarize computes aggregate statistics for the trace.
func (t *Trace) Summarize() Stats {
	var s Stats
	seen := make(map[uint64]struct{})
	writes := 0
	for i := range t.Warps {
		for _, op := range t.Warps[i].Ops {
			s.Ops++
			if op.Write {
				writes++
			}
			for _, l := range op.Lines {
				s.LineAccesses++
				seen[l] = struct{}{}
			}
		}
	}
	s.UniqueLines = len(seen)
	if s.Ops > 0 {
		s.WriteFraction = float64(writes) / float64(s.Ops)
	}
	s.FootprintMB = float64(s.UniqueLines) * 128 / (1024 * 1024)
	if s.UniqueLines > 0 {
		s.ReuseFactor = float64(s.LineAccesses) / float64(s.UniqueLines)
	}
	return s
}

// Equal reports whether two traces are identical.
func (t *Trace) Equal(o *Trace) bool {
	if t.Name != o.Name || t.CTAs != o.CTAs || t.WarpsPerCTA != o.WarpsPerCTA || len(t.Warps) != len(o.Warps) {
		return false
	}
	for i := range t.Warps {
		a, b := &t.Warps[i], &o.Warps[i]
		if a.CTA != b.CTA || a.Warp != b.Warp || len(a.Ops) != len(b.Ops) {
			return false
		}
		for j := range a.Ops {
			if a.Ops[j].Write != b.Ops[j].Write || len(a.Ops[j].Lines) != len(b.Ops[j].Lines) {
				return false
			}
			for k := range a.Ops[j].Lines {
				if a.Ops[j].Lines[k] != b.Ops[j].Lines[k] {
					return false
				}
			}
		}
	}
	return true
}
