// Package prof wires CPU and heap profiling into the command-line tools.
// Both cmd/experiments and cmd/mcmsim expose -cpuprofile/-memprofile flags
// backed by Start; the resulting files feed `go tool pprof`, which is how
// the event-engine hot path was measured and is how future regressions get
// diagnosed without ad-hoc instrumentation.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins profiling as requested and returns a stop function to call
// once the measured work is done (defer is fine). An empty filename skips
// that profile. The CPU profile streams for the lifetime of the run; the
// heap profile is one allocation snapshot taken at stop time, after a final
// GC so it reflects live objects rather than collectable garbage.
func Start(cpuFile, memFile string) (stop func() error, err error) {
	var cpuOut *os.File
	if cpuFile != "" {
		cpuOut, err = os.Create(cpuFile)
		if err != nil {
			return nil, fmt.Errorf("prof: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuOut); err != nil {
			cpuOut.Close()
			return nil, fmt.Errorf("prof: start cpu profile: %w", err)
		}
	}
	return func() error {
		if cpuOut != nil {
			pprof.StopCPUProfile()
			if err := cpuOut.Close(); err != nil {
				return fmt.Errorf("prof: %w", err)
			}
		}
		if memFile != "" {
			out, err := os.Create(memFile)
			if err != nil {
				return fmt.Errorf("prof: %w", err)
			}
			defer out.Close()
			runtime.GC()
			if err := pprof.Lookup("allocs").WriteTo(out, 0); err != nil {
				return fmt.Errorf("prof: write heap profile: %w", err)
			}
		}
		return nil
	}, nil
}
