// Package chaosproxy is an in-process fault-injecting HTTP proxy for
// testing the client/service execution plane under network damage. It sits
// in front of one backend (an mcmserve instance, usually) and injects the
// net-* fault family from internal/faultinject into matching requests:
// dropped connections, responses truncated mid-body (mid-NDJSON included),
// synthetic 5xx/429 bursts, latency spikes, and fully black-holed requests.
//
// Faults are deterministic, not probabilistic: each plan keeps its own
// counter of matching requests and fires on a contiguous window of them
// (kind@N#M — requests N through N+M-1), so a test that arms
// "net-drop@1#2" knows exactly which requests die and can assert both that
// the damage happened (Stats) and that the client recovered. That
// determinism is what makes the anti-vacuity contract provable: every
// injected fault is counted, and a test requiring Injected["net-drop"] > 0
// cannot pass if the fault never fired.
//
// The proxy injects damage; it never invents data. Truncation forwards the
// backend's real response and cuts it short while preserving the original
// framing (Content-Length or chunked), so clients observe exactly what a
// mid-transfer connection loss produces: an unexpected EOF, never a
// plausible-but-wrong body.
package chaosproxy

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"mcmgpu/internal/faultinject"
)

// Proxy is the fault-injecting reverse proxy. Configure the public fields
// before serving; they must not change once requests are flowing.
type Proxy struct {
	// Backend is the base URL requests are forwarded to, e.g.
	// "http://127.0.0.1:8037".
	Backend string
	// Plans are the armed net-* fault plans, consulted in order: the first
	// plan that matches and fires on a request decides its fate, but every
	// matching plan's request counter advances, so plan windows are
	// positions in the same request sequence.
	Plans []faultinject.Plan
	// TruncateBytes is how many body bytes a net-truncate response forwards
	// before cutting the connection (default 120 — enough to land mid-way
	// through any status object or NDJSON line).
	TruncateBytes int
	// Latency is the delay a net-latency fault injects (default 250ms).
	Latency time.Duration
	// Logf, when non-nil, receives one line per injected fault.
	Logf func(format string, args ...interface{})

	// Transport performs the forwarding; nil means http.DefaultTransport.
	Transport http.RoundTripper

	mu       sync.Mutex
	seq      []uint64 // per-plan matching-request counters
	injected map[string]uint64
	forward  uint64

	closeOnce sync.Once
	done      chan struct{}
}

// New returns a proxy for the backend with the given plans armed. Plans
// that are not net kinds are rejected — arming a store or engine fault on
// the wire would silently do nothing.
func New(backend string, plans []faultinject.Plan) (*Proxy, error) {
	for _, p := range plans {
		if !p.IsNet() {
			return nil, fmt.Errorf("chaosproxy: plan %q is not a net fault", p)
		}
	}
	return &Proxy{
		Backend:  strings.TrimSuffix(backend, "/"),
		Plans:    plans,
		seq:      make([]uint64, len(plans)),
		injected: map[string]uint64{},
		done:     make(chan struct{}),
	}, nil
}

// Stats is a snapshot of the proxy's behavior: how many requests were
// forwarded clean and how many had each fault kind injected. Tests use it
// to prove a fault actually fired (anti-vacuity).
type Stats struct {
	Forwarded uint64
	Injected  map[string]uint64
}

// Stats returns a snapshot of the counters.
func (p *Proxy) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := Stats{Forwarded: p.forward, Injected: make(map[string]uint64, len(p.injected))}
	for k, v := range p.injected {
		out.Injected[k] = v
	}
	return out
}

// Close releases black-holed requests and stops further injection sleeps.
// Safe to call more than once.
func (p *Proxy) Close() {
	p.closeOnce.Do(func() { close(p.done) })
}

// decide advances every matching plan's counter and returns the first plan
// that fires for this request path, if any.
func (p *Proxy) decide(path string) (faultinject.Plan, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	var (
		chosen faultinject.Plan
		fire   bool
	)
	for i, plan := range p.Plans {
		if !plan.MatchesNet(path) {
			continue
		}
		n := p.seq[i]
		p.seq[i]++
		if !fire && plan.FiresAt(n) {
			chosen, fire = plan, true
		}
	}
	if fire {
		p.injected[chosen.Kind.String()]++
	} else {
		p.forward++
	}
	return chosen, fire
}

func (p *Proxy) logf(format string, args ...interface{}) {
	if p.Logf != nil {
		p.Logf(format, args...)
	}
}

func (p *Proxy) transport() http.RoundTripper {
	if p.Transport != nil {
		return p.Transport
	}
	return http.DefaultTransport
}

func (p *Proxy) truncateBytes() int {
	if p.TruncateBytes > 0 {
		return p.TruncateBytes
	}
	return 120
}

func (p *Proxy) latency() time.Duration {
	if p.Latency > 0 {
		return p.Latency
	}
	return 250 * time.Millisecond
}

// ServeHTTP implements http.Handler.
func (p *Proxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	plan, fire := p.decide(r.URL.Path)
	if fire {
		p.logf("chaosproxy: injecting %s into %s %s", plan.Kind, r.Method, r.URL.Path)
	}
	if !fire {
		p.forwardReq(w, r, false)
		return
	}
	switch plan.Kind {
	case faultinject.NetDrop:
		p.drop(w)
	case faultinject.NetTruncate:
		p.forwardReq(w, r, true)
	case faultinject.Net5xx:
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		io.WriteString(w, `{"error":"chaosproxy: injected 503"}`+"\n")
	case faultinject.Net429:
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusTooManyRequests)
		io.WriteString(w, `{"error":"chaosproxy: injected 429"}`+"\n")
	case faultinject.NetLatency:
		select {
		case <-time.After(p.latency()):
		case <-r.Context().Done():
			p.drop(w)
			return
		case <-p.done:
		}
		p.forwardReq(w, r, false)
	case faultinject.NetBlackhole:
		// Hold the request open without a byte of response until the client
		// gives up or the proxy closes — then cut the connection so not even
		// an error status escapes.
		select {
		case <-r.Context().Done():
		case <-p.done:
		}
		p.drop(w)
	default:
		p.forwardReq(w, r, false)
	}
}

// drop severs the client connection without writing a response. On a
// non-hijackable connection it falls back to http.ErrAbortHandler, which
// aborts the stream just as abruptly.
func (p *Proxy) drop(w http.ResponseWriter) {
	hj, ok := w.(http.Hijacker)
	if !ok {
		panic(http.ErrAbortHandler)
	}
	conn, _, err := hj.Hijack()
	if err != nil {
		panic(http.ErrAbortHandler)
	}
	conn.Close()
}

// forwardReq proxies the request to the backend. With truncate set, the
// response body is cut after TruncateBytes while keeping the original
// framing, so the client sees a genuine mid-transfer connection loss.
func (p *Proxy) forwardReq(w http.ResponseWriter, r *http.Request, truncate bool) {
	out, err := http.NewRequestWithContext(r.Context(), r.Method, p.Backend+r.URL.RequestURI(), r.Body)
	if err != nil {
		http.Error(w, fmt.Sprintf(`{"error":"chaosproxy: %v"}`, err), http.StatusBadGateway)
		return
	}
	out.Header = r.Header.Clone()
	resp, err := p.transport().RoundTrip(out)
	if err != nil {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusBadGateway)
		fmt.Fprintf(w, `{"error":"chaosproxy: backend: %v"}`+"\n", err)
		return
	}
	defer resp.Body.Close()
	if truncate {
		p.truncate(w, resp)
		return
	}
	for k, vs := range resp.Header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	flushCopy(w, resp.Body)
}

// flushCopy streams body to w, flushing after every read so NDJSON
// progress streams pass through the proxy live instead of buffering.
func flushCopy(w http.ResponseWriter, body io.Reader) {
	flusher, _ := w.(http.Flusher)
	buf := make([]byte, 32<<10)
	for {
		n, err := body.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
		if err != nil {
			return
		}
	}
}

// truncate writes the backend response onto the hijacked connection with
// its real framing — the original Content-Length when the backend declared
// one, chunked encoding otherwise — then closes the connection after at
// most TruncateBytes body bytes. Either framing makes the cut detectable:
// the client reads fewer bytes than promised, or a chunked stream ends
// without its terminal chunk, and both surface as an unexpected EOF.
func (p *Proxy) truncate(w http.ResponseWriter, resp *http.Response) {
	hj, ok := w.(http.Hijacker)
	if !ok {
		panic(http.ErrAbortHandler)
	}
	conn, bw, err := hj.Hijack()
	if err != nil {
		panic(http.ErrAbortHandler)
	}
	defer conn.Close()

	fmt.Fprintf(bw, "HTTP/1.1 %s\r\n", resp.Status)
	for k, vs := range resp.Header {
		switch http.CanonicalHeaderKey(k) {
		case "Content-Length", "Transfer-Encoding", "Connection":
			continue
		}
		for _, v := range vs {
			fmt.Fprintf(bw, "%s: %s\r\n", k, v)
		}
	}
	chunked := resp.ContentLength < 0
	if chunked {
		io.WriteString(bw, "Transfer-Encoding: chunked\r\n")
	} else {
		fmt.Fprintf(bw, "Content-Length: %d\r\n", resp.ContentLength)
	}
	io.WriteString(bw, "Connection: close\r\n\r\n")

	remain := p.truncateBytes()
	buf := make([]byte, 4<<10)
	for remain > 0 {
		if len(buf) > remain {
			buf = buf[:remain]
		}
		n, err := resp.Body.Read(buf)
		if n > 0 {
			remain -= n
			if chunked {
				fmt.Fprintf(bw, "%x\r\n", n)
				bw.Write(buf[:n])
				io.WriteString(bw, "\r\n")
			} else {
				bw.Write(buf[:n])
			}
			bw.Flush()
		}
		if err != nil {
			break
		}
	}
	// No terminal chunk, no remaining Content-Length bytes: the close below
	// is the fault.
	bw.Flush()
}
