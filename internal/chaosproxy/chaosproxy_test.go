package chaosproxy

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"mcmgpu/internal/faultinject"
)

// testBackend serves a fixed JSON body on /ok and a flushed NDJSON stream
// on /stream — the two response shapes the real service produces.
func testBackend() *httptest.Server {
	mux := http.NewServeMux()
	body := `{"ok":true,"pad":"` + strings.Repeat("x", 400) + `"}`
	mux.HandleFunc("/ok", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		io.WriteString(w, body)
	})
	mux.HandleFunc("/stream", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		flusher := w.(http.Flusher)
		for i := 0; i < 8; i++ {
			fmt.Fprintf(w, `{"line":%d,"pad":%q}`+"\n", i, strings.Repeat("y", 60))
			flusher.Flush()
		}
	})
	return httptest.NewServer(mux)
}

func proxyFor(t *testing.T, backend string, plans string) (*Proxy, *httptest.Server) {
	t.Helper()
	pl, err := faultinject.ParseList(plans)
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(backend, pl)
	if err != nil {
		t.Fatal(err)
	}
	p.Logf = t.Logf
	ts := httptest.NewServer(p)
	t.Cleanup(func() { ts.Close(); p.Close() })
	return p, ts
}

func TestRejectsNonNetPlans(t *testing.T) {
	if _, err := New("http://x", []faultinject.Plan{{Kind: faultinject.Panic}}); err == nil {
		t.Fatal("engine plan accepted on the wire")
	}
	if _, err := New("http://x", []faultinject.Plan{{Kind: faultinject.StoreEIO}}); err == nil {
		t.Fatal("store plan accepted on the wire")
	}
}

// TestForwardClean: with no plans armed the proxy is a transparent pipe.
func TestForwardClean(t *testing.T) {
	bk := testBackend()
	defer bk.Close()
	p, ts := proxyFor(t, bk.URL, "")
	resp, err := http.Get(ts.URL + "/ok")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil || !strings.Contains(string(data), `"ok":true`) {
		t.Fatalf("clean forward damaged the body: %v %q", err, data)
	}
	if st := p.Stats(); st.Forwarded != 1 || len(st.Injected) != 0 {
		t.Fatalf("stats %+v, want 1 forwarded, nothing injected", st)
	}
}

// TestDropSeversConnection: the faulted request dies at the transport
// layer with no response; the next one sails through.
func TestDropSeversConnection(t *testing.T) {
	bk := testBackend()
	defer bk.Close()
	p, ts := proxyFor(t, bk.URL, "net-drop@0#1")
	if _, err := http.Get(ts.URL + "/ok"); err == nil {
		t.Fatal("dropped request returned a response")
	}
	resp, err := http.Get(ts.URL + "/ok")
	if err != nil {
		t.Fatalf("request after the drop window failed: %v", err)
	}
	resp.Body.Close()
	if st := p.Stats(); st.Injected["net-drop"] != 1 {
		t.Fatalf("stats %+v, want 1 net-drop injected", st)
	}
}

// TestTruncateContentLength: a fixed-length body cut mid-way surfaces as
// an unexpected EOF, never as a short-but-clean read.
func TestTruncateContentLength(t *testing.T) {
	bk := testBackend()
	defer bk.Close()
	p, ts := proxyFor(t, bk.URL, "net-truncate@0#1")
	resp, err := http.Get(ts.URL + "/ok")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err == nil {
		t.Fatalf("truncated read reported success with %d bytes", len(data))
	}
	if len(data) == 0 || len(data) > 120 {
		t.Fatalf("forwarded %d bytes before the cut, want (0, 120]", len(data))
	}
	if st := p.Stats(); st.Injected["net-truncate"] != 1 {
		t.Fatalf("stats %+v, want 1 net-truncate injected", st)
	}
}

// TestTruncateStream: a chunked NDJSON stream cut mid-line ends in an
// unexpected EOF after some complete lines — the exact mid-stream
// disconnect the resumable watch client must survive.
func TestTruncateStream(t *testing.T) {
	bk := testBackend()
	defer bk.Close()
	_, ts := proxyFor(t, bk.URL, "net-truncate@0#1")
	resp, err := http.Get(ts.URL + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err == nil {
		t.Fatalf("truncated stream read reported success with %d bytes", len(data))
	}
	if !strings.Contains(string(data), `"line":0`) {
		t.Fatalf("no complete line made it through before the cut: %q", data)
	}
}

// TestInjected5xxAnd429: synthetic statuses come with JSON error bodies
// and, for 429, a Retry-After header; the window closes on schedule.
func TestInjected5xxAnd429(t *testing.T) {
	bk := testBackend()
	defer bk.Close()
	p, ts := proxyFor(t, bk.URL, "net-5xx@0#2,net-429@2#1")
	for i, want := range []int{503, 503, 429, 200} {
		resp, err := http.Get(ts.URL + "/ok")
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if resp.StatusCode != want {
			t.Fatalf("request %d: status %d, want %d", i, resp.StatusCode, want)
		}
		if want == 429 && resp.Header.Get("Retry-After") == "" {
			t.Fatal("injected 429 has no Retry-After")
		}
		resp.Body.Close()
	}
	st := p.Stats()
	if st.Injected["net-5xx"] != 2 || st.Injected["net-429"] != 1 || st.Forwarded != 1 {
		t.Fatalf("stats %+v, want 2x 5xx, 1x 429, 1 forwarded", st)
	}
}

// TestLatencyDelays: the spike defers the response without damaging it.
func TestLatencyDelays(t *testing.T) {
	bk := testBackend()
	defer bk.Close()
	p, ts := proxyFor(t, bk.URL, "net-latency@0#1")
	p.Latency = 80 * time.Millisecond
	start := time.Now()
	resp, err := http.Get(ts.URL + "/ok")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if el := time.Since(start); el < 80*time.Millisecond {
		t.Fatalf("latency fault delayed only %v", el)
	}
	if data, err := io.ReadAll(resp.Body); err != nil || !strings.Contains(string(data), `"ok":true`) {
		t.Fatalf("latency fault damaged the body: %v", err)
	}
}

// TestBlackholeHangs: a black-holed request never answers; only the
// client's own timeout frees it, and Close releases any stragglers.
func TestBlackholeHangs(t *testing.T) {
	bk := testBackend()
	defer bk.Close()
	p, ts := proxyFor(t, bk.URL, "net-blackhole@0")
	c := &http.Client{Timeout: 100 * time.Millisecond}
	start := time.Now()
	if _, err := c.Get(ts.URL + "/ok"); err == nil {
		t.Fatal("black-holed request returned")
	}
	if el := time.Since(start); el < 100*time.Millisecond {
		t.Fatalf("blackhole answered after only %v", el)
	}
	if st := p.Stats(); st.Injected["net-blackhole"] == 0 {
		t.Fatalf("stats %+v, want net-blackhole injected", st)
	}
}

// TestPathFilterScopesFault: a filtered plan damages only its endpoint
// family and its counter only advances on matching requests.
func TestPathFilterScopesFault(t *testing.T) {
	bk := testBackend()
	defer bk.Close()
	_, ts := proxyFor(t, bk.URL, "net-5xx@0#1:/stream")
	resp, err := http.Get(ts.URL + "/ok")
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("unfiltered path was damaged: %v %v", resp.StatusCode, err)
	}
	resp.Body.Close()
	resp, err = http.Get(ts.URL + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 503 {
		t.Fatalf("filtered path got %d, want injected 503", resp.StatusCode)
	}
	resp.Body.Close()
}
