package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func TestQuantile(t *testing.T) {
	if got := Quantile(nil, 0.5); got != 0 {
		t.Fatalf("Quantile(nil) = %v, want 0", got)
	}
	one := []float64{7}
	for _, q := range []float64{0, 0.5, 1} {
		if got := Quantile(one, q); got != 7 {
			t.Fatalf("Quantile([7], %v) = %v, want 7", q, got)
		}
	}
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {1, 5}, {0.5, 3}, {0.25, 2}, {0.75, 4}, {0.1, 1.4},
		{-1, 1}, {2, 5}, {math.NaN(), 1},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); math.Abs(got-c.want) > 1e-12 {
			t.Fatalf("Quantile(%v, %v) = %v, want %v", xs, c.q, got, c.want)
		}
	}
}

// TestQuantileAgainstSortRank cross-checks interpolation against a direct
// rank computation on random data.
func TestQuantileAgainstSortRank(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 1001)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	sort.Float64s(xs)
	for _, q := range []float64{0.05, 0.5, 0.95, 0.99} {
		got := Quantile(xs, q)
		lo := xs[int(q*float64(len(xs)-1))]
		hi := xs[int(math.Ceil(q*float64(len(xs)-1)))]
		if got < lo || got > hi {
			t.Fatalf("Quantile(q=%v) = %v outside bracketing ranks [%v, %v]", q, got, lo, hi)
		}
	}
}

// TestP2Exact pins that under five observations P² is exact.
func TestP2Exact(t *testing.T) {
	p := NewP2(0.5)
	if p.Value() != 0 {
		t.Fatalf("empty P2 value = %v, want 0", p.Value())
	}
	p.Add(3)
	p.Add(1)
	if got := p.Value(); got != 2 {
		t.Fatalf("P2 median of {1,3} = %v, want 2", got)
	}
	p.Add(2)
	p.Add(9)
	if got := p.Value(); got != 2.5 {
		t.Fatalf("P2 median of {1,2,3,9} = %v, want 2.5", got)
	}
}

// TestP2Accuracy bounds the P² estimate on known distributions: within a few
// percentile ranks of the exact quantile over 50k samples.
func TestP2Accuracy(t *testing.T) {
	dists := map[string]func(*rand.Rand) float64{
		"uniform": func(r *rand.Rand) float64 { return r.Float64() },
		"normal":  func(r *rand.Rand) float64 { return r.NormFloat64() },
		"exp":     func(r *rand.Rand) float64 { return r.ExpFloat64() },
	}
	for name, gen := range dists {
		for _, q := range []float64{0.5, 0.95, 0.99} {
			rng := rand.New(rand.NewSource(42))
			p := NewP2(q)
			xs := make([]float64, 50000)
			for i := range xs {
				x := gen(rng)
				xs[i] = x
				p.Add(x)
			}
			sort.Float64s(xs)
			est := p.Value()
			// Rank-space error bound: the estimate must sit between the
			// exact q-0.01 and q+0.01 quantiles.
			lo := Quantile(xs, q-0.01)
			hi := Quantile(xs, q+0.01)
			if est < lo || est > hi {
				t.Errorf("%s q=%v: P2 estimate %v outside exact [%v, %v] (q±0.01)", name, q, est, lo, hi)
			}
		}
	}
}

// TestReservoirExactWhenSmall: with n <= k the reservoir holds everything, so
// its quantiles are exact.
func TestReservoirExactWhenSmall(t *testing.T) {
	r := NewReservoir(64)
	for i := 0; i < 50; i++ {
		r.Add(uint64(i), float64(i))
	}
	if r.Len() != 50 {
		t.Fatalf("Len = %d, want 50", r.Len())
	}
	vals := r.Values(nil)
	if got := Quantile(vals, 0.5); got != 24.5 {
		t.Fatalf("median = %v, want 24.5", got)
	}
}

// TestReservoirOrderIndependent: the kept set is a pure function of the
// observation set, whatever the insertion order or merge partitioning.
func TestReservoirOrderIndependent(t *testing.T) {
	const n, k = 10000, 256
	vals := make([]float64, n)
	rng := rand.New(rand.NewSource(7))
	for i := range vals {
		vals[i] = rng.Float64() * 100
	}

	seq := NewReservoir(k)
	for i, v := range vals {
		seq.Add(uint64(i), v)
	}

	// Reversed insertion order.
	rev := NewReservoir(k)
	for i := n - 1; i >= 0; i-- {
		rev.Add(uint64(i), vals[i])
	}

	// Partitioned into 7 chunks merged out of order.
	parts := make([]*Reservoir, 7)
	for p := range parts {
		parts[p] = NewReservoir(k)
	}
	for i, v := range vals {
		parts[i%7].Add(uint64(i), v)
	}
	merged := NewReservoir(k)
	for _, p := range []int{3, 0, 6, 1, 5, 2, 4} {
		merged.Merge(parts[p])
	}

	a, b, c := seq.Values(nil), rev.Values(nil), merged.Values(nil)
	for i := range a {
		if a[i] != b[i] || a[i] != c[i] {
			t.Fatalf("sample diverges at %d: seq=%v rev=%v merged=%v", i, a[i], b[i], c[i])
		}
	}
}

// TestReservoirAccuracy bounds the sampling error of reservoir quantiles:
// with k=4096 over 200k uniform values, p95/p99 within ±0.015 rank.
func TestReservoirAccuracy(t *testing.T) {
	const n, k = 200000, 4096
	r := NewReservoir(k)
	rng := rand.New(rand.NewSource(11))
	xs := make([]float64, n)
	for i := range xs {
		x := rng.Float64()
		xs[i] = x
		r.Add(uint64(i), x)
	}
	sort.Float64s(xs)
	vals := r.Values(nil)
	for _, q := range []float64{0.5, 0.95, 0.99} {
		est := Quantile(vals, q)
		lo, hi := Quantile(xs, q-0.015), Quantile(xs, q+0.015)
		if est < lo || est > hi {
			t.Errorf("q=%v: reservoir estimate %v outside exact [%v, %v] (q±0.015)", q, est, lo, hi)
		}
	}
}

func TestReservoirAddAllocs(t *testing.T) {
	r := NewReservoir(128)
	for i := 0; i < 1000; i++ {
		r.Add(uint64(i), float64(i))
	}
	allocs := testing.AllocsPerRun(1000, func() {
		r.Add(12345, 0.5)
	})
	if allocs != 0 {
		t.Fatalf("Reservoir.Add allocates %v/op once full, want 0", allocs)
	}
}

// TestExactSumExact: the classic cancellation cases plain summation gets
// wrong.
func TestExactSumExact(t *testing.T) {
	var s ExactSum
	s.Add(1e16)
	s.Add(1)
	s.Add(-1e16)
	if got := s.Sum(); got != 1 {
		t.Fatalf("1e16 + 1 - 1e16 = %v, want 1", got)
	}
	s.Reset()
	for i := 0; i < 10; i++ {
		s.Add(0.1)
	}
	// The exact real sum of ten float64(0.1)s rounds to exactly 1.0;
	// naive left-to-right summation yields 0.9999999999999999.
	if got := s.Sum(); got != 1.0 {
		t.Fatalf("fsum(10 * 0.1) = %v, want exactly 1", got)
	}
	var naive float64
	for i := 0; i < 10; i++ {
		naive += 0.1
	}
	if naive == 1.0 {
		t.Fatal("naive summation unexpectedly exact; test is vacuous")
	}
}

// TestExactSumOrderIndependent: any permutation and any Merge partitioning
// produces the bit-identical rounded sum.
func TestExactSumOrderIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	vals := make([]float64, 5000)
	for i := range vals {
		// Wildly varying magnitudes to stress rounding.
		vals[i] = rng.NormFloat64() * math.Pow(10, float64(rng.Intn(20)-10))
	}
	var fwd ExactSum
	for _, v := range vals {
		fwd.Add(v)
	}
	want := fwd.Sum()

	var rev ExactSum
	for i := len(vals) - 1; i >= 0; i-- {
		rev.Add(vals[i])
	}
	if got := rev.Sum(); got != want {
		t.Fatalf("reversed sum %v != forward sum %v", got, want)
	}

	parts := make([]ExactSum, 9)
	for i, v := range vals {
		parts[i%9].Add(v)
	}
	var merged ExactSum
	for i := len(parts) - 1; i >= 0; i-- {
		merged.Merge(&parts[i])
	}
	if got := merged.Sum(); got != want {
		t.Fatalf("merged sum %v != forward sum %v", got, want)
	}
}

func TestExactSumAmortizedAllocs(t *testing.T) {
	var s ExactSum
	rng := rand.New(rand.NewSource(5))
	vals := make([]float64, 4096)
	for i := range vals {
		vals[i] = rng.NormFloat64()
	}
	for _, v := range vals {
		s.Add(v)
	}
	i := 0
	allocs := testing.AllocsPerRun(4096, func() {
		s.Add(vals[i%len(vals)])
		i++
	})
	if allocs > 0.01 {
		t.Fatalf("ExactSum.Add allocates %v/op in steady state, want ~0", allocs)
	}
}
