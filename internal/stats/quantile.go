package stats

import (
	"math"
	"sort"
)

// Quantile returns the exact q-quantile of an ascending-sorted slice using
// linear interpolation between closest ranks (the "type 7" estimator most
// tools default to): position q*(n-1), interpolated between its floor and
// ceil neighbors. q is clamped to [0, 1]; an empty slice yields 0.
//
// The input must already be sorted; passing an unsorted slice silently
// returns a meaningless value, so callers aggregate first and sort once.
func Quantile(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	if q <= 0 || math.IsNaN(q) {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[n-1]
	}
	pos := q * float64(n-1)
	i := int(pos)
	frac := pos - float64(i)
	if frac == 0 || i+1 >= n {
		return sorted[i]
	}
	return sorted[i]*(1-frac) + sorted[i+1]*frac
}

// P2 is the Jain/Chlamtac P-squared streaming quantile estimator: five
// markers tracking the running q-quantile in O(1) memory, exact until five
// observations have arrived. It is sequential — the estimate depends on
// arrival order — so the metrics aggregator only offers it in single-stream
// mode; the order-independent estimator is Reservoir.
type P2 struct {
	q       float64
	n       int
	heights [5]float64
	pos     [5]float64 // actual marker positions (1-based)
	want    [5]float64 // desired marker positions
	incr    [5]float64 // desired-position increments per observation
}

// NewP2 returns a P² estimator for the q-quantile, q in (0, 1).
func NewP2(q float64) *P2 {
	p := &P2{q: q}
	p.incr = [5]float64{0, q / 2, q, (1 + q) / 2, 1}
	return p
}

// Add feeds one observation.
func (p *P2) Add(x float64) {
	if p.n < 5 {
		p.heights[p.n] = x
		p.n++
		if p.n == 5 {
			sort.Float64s(p.heights[:])
			for i := range p.pos {
				p.pos[i] = float64(i + 1)
			}
			q := p.q
			p.want = [5]float64{1, 1 + 2*q, 1 + 4*q, 3 + 2*q, 5}
		}
		return
	}
	p.n++
	// Find the cell k containing x and update the extreme markers.
	var k int
	switch {
	case x < p.heights[0]:
		p.heights[0] = x
		k = 0
	case x >= p.heights[4]:
		p.heights[4] = x
		k = 3
	default:
		for k = 0; k < 3; k++ {
			if x < p.heights[k+1] {
				break
			}
		}
	}
	for i := k + 1; i < 5; i++ {
		p.pos[i]++
	}
	for i := range p.want {
		p.want[i] += p.incr[i]
	}
	// Adjust the three interior markers toward their desired positions.
	for i := 1; i <= 3; i++ {
		d := p.want[i] - p.pos[i]
		if (d >= 1 && p.pos[i+1]-p.pos[i] > 1) || (d <= -1 && p.pos[i-1]-p.pos[i] < -1) {
			s := 1.0
			if d < 0 {
				s = -1.0
			}
			h := p.parabolic(i, s)
			if p.heights[i-1] < h && h < p.heights[i+1] {
				p.heights[i] = h
			} else {
				p.heights[i] = p.linear(i, s)
			}
			p.pos[i] += s
		}
	}
}

func (p *P2) parabolic(i int, s float64) float64 {
	return p.heights[i] + s/(p.pos[i+1]-p.pos[i-1])*
		((p.pos[i]-p.pos[i-1]+s)*(p.heights[i+1]-p.heights[i])/(p.pos[i+1]-p.pos[i])+
			(p.pos[i+1]-p.pos[i]-s)*(p.heights[i]-p.heights[i-1])/(p.pos[i]-p.pos[i-1]))
}

func (p *P2) linear(i int, s float64) float64 {
	j := i + int(s)
	return p.heights[i] + s*(p.heights[j]-p.heights[i])/(p.pos[j]-p.pos[i])
}

// N returns the number of observations fed so far.
func (p *P2) N() int { return p.n }

// Value returns the current q-quantile estimate. Under five observations it
// is the exact quantile of what has arrived.
func (p *P2) Value() float64 {
	if p.n == 0 {
		return 0
	}
	if p.n < 5 {
		tmp := make([]float64, p.n)
		copy(tmp, p.heights[:p.n])
		sort.Float64s(tmp)
		return Quantile(tmp, p.q)
	}
	return p.heights[2]
}

// rsItem is one retained Reservoir observation: the selection hash, the
// caller's unique tag (total-order tie-break), and the value.
type rsItem struct {
	hash uint64
	tag  uint64
	v    float64
}

// Reservoir is a deterministic, order-independent, mergeable fixed-size
// sample: it keeps the k observations whose hashed tags are smallest. Because
// the kept set is a pure function of the observation *set* (each observation
// carries a unique caller-assigned tag, e.g. its byte offset in an input
// file), any partitioning of the input into parallel chunks — and any merge
// order — yields the same sample, which is what makes mcmstat's quantiles
// byte-identical across worker counts. Quantiles read from the sample carry
// the usual sampling error, O(1/sqrt(k)) in rank.
type Reservoir struct {
	k     int
	items []rsItem // max-heap on (hash, tag) once full
}

// NewReservoir returns a reservoir keeping k observations (k >= 1).
func NewReservoir(k int) *Reservoir {
	if k < 1 {
		k = 1
	}
	return &Reservoir{k: k}
}

// splitmix64 is the SplitMix64 finalizer: a cheap, high-quality bijection
// from tags to selection hashes.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// less orders items by (hash, tag): tags are unique, so the order is total
// and the bottom-k set is unambiguous.
func (a rsItem) less(b rsItem) bool {
	if a.hash != b.hash {
		return a.hash < b.hash
	}
	return a.tag < b.tag
}

// Add offers one observation under a unique tag. Allocation-free once the
// reservoir is full.
func (r *Reservoir) Add(tag uint64, v float64) {
	it := rsItem{hash: splitmix64(tag), tag: tag, v: v}
	if len(r.items) < r.k {
		r.items = append(r.items, it)
		if len(r.items) == r.k {
			r.heapify()
		}
		return
	}
	if !it.less(r.items[0]) {
		return
	}
	r.items[0] = it
	r.siftDown(0)
}

func (r *Reservoir) heapify() {
	for i := len(r.items)/2 - 1; i >= 0; i-- {
		r.siftDown(i)
	}
}

func (r *Reservoir) siftDown(i int) {
	n := len(r.items)
	for {
		l, rr := 2*i+1, 2*i+2
		big := i
		if l < n && r.items[big].less(r.items[l]) {
			big = l
		}
		if rr < n && r.items[big].less(r.items[rr]) {
			big = rr
		}
		if big == i {
			return
		}
		r.items[i], r.items[big] = r.items[big], r.items[i]
		i = big
	}
}

// Merge folds o's observations into r. Merging partial reservoirs built over
// disjoint partitions equals building one reservoir over the union.
func (r *Reservoir) Merge(o *Reservoir) {
	for _, it := range o.items {
		if len(r.items) < r.k {
			r.items = append(r.items, it)
			if len(r.items) == r.k {
				r.heapify()
			}
			continue
		}
		if it.less(r.items[0]) {
			r.items[0] = it
			r.siftDown(0)
		}
	}
}

// Len returns the number of retained observations.
func (r *Reservoir) Len() int { return len(r.items) }

// Each calls fn for every retained (tag, value) pair in unspecified order;
// the aggregator's spill path uses it to serialize the reservoir.
func (r *Reservoir) Each(fn func(tag uint64, v float64)) {
	for _, it := range r.items {
		fn(it.tag, it.v)
	}
}

// Values appends the retained values to dst and returns it sorted ascending,
// ready for Quantile.
func (r *Reservoir) Values(dst []float64) []float64 {
	for _, it := range r.items {
		dst = append(dst, it.v)
	}
	sort.Float64s(dst)
	return dst
}

// ExactSum accumulates float64 values with no rounding error: the running
// sum is held as a Shewchuk expansion of non-overlapping partials, and Sum
// rounds the exact total to the nearest float64 (math.Fsum-style, including
// the round-to-even correction). Because the expansion represents the true
// real-number sum, the result is independent of the order values were added
// in and of how they were partitioned across Merge calls — the property the
// parallel aggregator's byte-identical-across-workers contract rests on.
type ExactSum struct {
	parts []float64 // non-overlapping, increasing magnitude
}

// Add folds x into the expansion. Amortized allocation-free: the partials
// slice reaches its steady-state length (a handful of elements) quickly and
// is reused in place.
func (s *ExactSum) Add(x float64) {
	i := 0
	for _, y := range s.parts {
		if math.Abs(x) < math.Abs(y) {
			x, y = y, x
		}
		hi := x + y
		lo := y - (hi - x)
		if lo != 0 {
			s.parts[i] = lo
			i++
		}
		x = hi
	}
	s.parts = append(s.parts[:i], x)
}

// Merge folds o's partials into s; the result is the exact sum of both
// streams.
func (s *ExactSum) Merge(o *ExactSum) {
	for _, p := range o.parts {
		s.Add(p)
	}
}

// Parts returns the internal partials; the aggregator's spill path
// serializes them (Add-ing each part back reconstructs the exact state).
func (s *ExactSum) Parts() []float64 { return s.parts }

// Sum returns the exact total correctly rounded to float64.
func (s *ExactSum) Sum() float64 {
	n := len(s.parts)
	if n == 0 {
		return 0
	}
	// Sum from largest magnitude down, stopping at the first non-zero
	// residual; then apply the half-way round-to-even correction exactly as
	// CPython's math.fsum does.
	hi := s.parts[n-1]
	lo := 0.0
	j := n - 1
	for j > 0 {
		j--
		x, y := hi, s.parts[j]
		hi = x + y
		yr := hi - x
		lo = y - yr
		if lo != 0 {
			break
		}
	}
	if j > 0 && ((lo < 0 && s.parts[j-1] < 0) || (lo > 0 && s.parts[j-1] > 0)) {
		y := lo * 2
		x := hi + y
		if y == x-hi {
			hi = x
		}
	}
	return hi
}

// Reset empties the accumulator for reuse.
func (s *ExactSum) Reset() { s.parts = s.parts[:0] }
