package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(9)
	if c.Value() != 10 {
		t.Fatalf("Value = %d, want 10", c.Value())
	}
	c.Reset()
	if c.Value() != 0 {
		t.Fatalf("Value after Reset = %d, want 0", c.Value())
	}
}

func TestRatio(t *testing.T) {
	var r Ratio
	if r.Value() != 0 {
		t.Fatalf("empty ratio = %v, want 0", r.Value())
	}
	r.Observe(true)
	r.Observe(true)
	r.Observe(false)
	r.Observe(false)
	if got := r.Value(); got != 0.5 {
		t.Fatalf("Value = %v, want 0.5", got)
	}
	r.Reset()
	if r.Total != 0 || r.Hits != 0 {
		t.Fatalf("Reset did not clear")
	}
}

// TestRatioValid pins the disambiguation between "never accessed" and a true
// 0% hit rate: both return Value 0, only the latter is Valid.
func TestRatioValid(t *testing.T) {
	var never Ratio
	if never.Valid() {
		t.Fatal("empty ratio reports Valid")
	}
	var thrash Ratio
	thrash.Observe(false)
	thrash.Observe(false)
	if !thrash.Valid() {
		t.Fatal("observed ratio reports invalid")
	}
	if never.Value() != 0 || thrash.Value() != 0 {
		t.Fatal("both cases must still report Value 0")
	}
	if got := thrash.Misses(); got != 2 {
		t.Fatalf("Misses = %d, want 2", got)
	}
	thrash.Observe(true)
	if got := thrash.Misses(); got != 2 {
		t.Fatalf("Misses after a hit = %d, want 2", got)
	}
}

func TestMean(t *testing.T) {
	if got := Mean(nil); got != 0 {
		t.Fatalf("Mean(nil) = %v", got)
	}
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Fatalf("Mean = %v, want 2.5", got)
	}
}

func TestGeoMean(t *testing.T) {
	got, err := GeoMean(nil)
	if err != nil || got != 0 {
		t.Fatalf("GeoMean(nil) = %v, %v", got, err)
	}
	got, err = GeoMean([]float64{2, 8})
	if err != nil {
		t.Fatalf("GeoMean(2,8): %v", err)
	}
	if math.Abs(got-4) > 1e-12 {
		t.Fatalf("GeoMean(2,8) = %v, want 4", got)
	}
}

func TestGeoMeanRejectsNonPositive(t *testing.T) {
	for _, xs := range [][]float64{{1, 0}, {-2}, {3, 4, -1}} {
		if got, err := GeoMean(xs); err == nil {
			t.Errorf("GeoMean(%v) = %v, want error", xs, got)
		}
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if Min(xs) != -1 {
		t.Fatalf("Min = %v", Min(xs))
	}
	if Max(xs) != 7 {
		t.Fatalf("Max = %v", Max(xs))
	}
	if Min(nil) != 0 || Max(nil) != 0 {
		t.Fatalf("Min/Max of empty should be 0")
	}
}

func TestSortedDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	out := Sorted(xs)
	if !sort.Float64sAreSorted(out) {
		t.Fatalf("Sorted result not sorted: %v", out)
	}
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("Sorted mutated input: %v", xs)
	}
}

func TestGroup(t *testing.T) {
	var g Group
	g.Add("a", 2)
	g.Add("b", 8)
	if g.Len() != 2 {
		t.Fatalf("Len = %d", g.Len())
	}
	if g.Mean() != 5 {
		t.Fatalf("Mean = %v", g.Mean())
	}
	gm, err := g.GeoMean()
	if err != nil {
		t.Fatalf("GeoMean: %v", err)
	}
	if math.Abs(gm-4) > 1e-12 {
		t.Fatalf("GeoMean = %v", gm)
	}
	if s := g.String(); s != "a=2.000 b=8.000" {
		t.Fatalf("String = %q", s)
	}
}

// Property: the geometric mean lies between min and max, and equals the
// arithmetic mean only when it must (we just check the bounds).
func TestGeoMeanBoundsProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		xs := make([]float64, 0, len(raw))
		for _, r := range raw {
			xs = append(xs, float64(r)+1) // positive
		}
		if len(xs) == 0 {
			return true
		}
		gm, err := GeoMean(xs)
		return err == nil && gm >= Min(xs)-1e-9 && gm <= Max(xs)+1e-9 && gm <= Mean(xs)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
