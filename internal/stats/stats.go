// Package stats provides the small statistical toolkit used throughout the
// simulator and its experiment harness: named counters, hit-rate ratios, and
// the aggregation helpers (arithmetic mean, geometric mean) the paper uses
// when reporting per-category results.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Counter accumulates a monotonically increasing count.
type Counter struct {
	n uint64
}

// Add increments the counter by d.
func (c *Counter) Add(d uint64) { c.n += d }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.n++ }

// Value returns the accumulated count.
func (c *Counter) Value() uint64 { return c.n }

// Reset zeroes the counter.
func (c *Counter) Reset() { c.n = 0 }

// Ratio tracks a hits/total pair, e.g. a cache hit rate.
type Ratio struct {
	Hits  uint64
	Total uint64
}

// Observe records one event that either hit or missed.
func (r *Ratio) Observe(hit bool) {
	r.Total++
	if hit {
		r.Hits++
	}
}

// Value returns hits/total, or 0 when nothing was observed. Value alone
// cannot distinguish "never accessed" from a true 0% hit rate; callers
// rendering the ratio should consult Valid and show an em-dash (see
// report.RatioCell) for the former.
func (r *Ratio) Value() float64 {
	if r.Total == 0 {
		return 0
	}
	return float64(r.Hits) / float64(r.Total)
}

// Valid reports whether the ratio observed anything: a false Valid means
// Value's 0 is "no data", not "0%".
func (r *Ratio) Valid() bool { return r.Total > 0 }

// Misses returns the number of observations that did not hit.
func (r *Ratio) Misses() uint64 { return r.Total - r.Hits }

// Reset zeroes the ratio.
func (r *Ratio) Reset() { r.Hits, r.Total = 0, 0 }

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// GeoMean returns the geometric mean of xs, or 0 for an empty slice.
// All inputs must be positive; a geometric mean over non-positive values is
// meaningless. Such values used to panic mid-report, killing a whole
// experiment run over one degenerate cell; they now return a descriptive
// error for the caller to render (see report.Cell).
func GeoMean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, nil
	}
	var s float64
	for i, x := range xs {
		if x <= 0 {
			return 0, fmt.Errorf("stats: GeoMean of non-positive value %v (element %d of %d)", x, i, len(xs))
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs))), nil
}

// Min returns the smallest element of xs, or 0 for an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element of xs, or 0 for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Spearman returns the Spearman rank-correlation coefficient between a and
// b: the Pearson correlation of their rank vectors, with ties assigned
// average ranks. It is the estimator-validation metric — "does the analytic
// model order configurations the way the engine does" — so it errors on
// inputs where rank order is undefined: mismatched lengths, fewer than two
// samples, or a constant vector (zero rank variance).
func Spearman(a, b []float64) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("stats: Spearman of mismatched lengths %d and %d", len(a), len(b))
	}
	if len(a) < 2 {
		return 0, fmt.Errorf("stats: Spearman needs at least 2 samples, got %d", len(a))
	}
	ra, err := ranks(a)
	if err != nil {
		return 0, err
	}
	rb, err := ranks(b)
	if err != nil {
		return 0, err
	}
	ma, mb := Mean(ra), Mean(rb)
	var cov, va, vb float64
	for i := range ra {
		da, db := ra[i]-ma, rb[i]-mb
		cov += da * db
		va += da * da
		vb += db * db
	}
	return cov / math.Sqrt(va*vb), nil
}

// ranks returns average ranks (1-based) of xs, erroring on NaN samples and
// on constant vectors, whose rank variance is zero and whose correlation is
// therefore undefined.
func ranks(xs []float64) ([]float64, error) {
	idx := make([]int, len(xs))
	for i := range idx {
		if math.IsNaN(xs[i]) {
			return nil, fmt.Errorf("stats: Spearman of NaN sample (element %d)", i)
		}
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return xs[idx[i]] < xs[idx[j]] })
	out := make([]float64, len(xs))
	for i := 0; i < len(idx); {
		j := i
		for j < len(idx) && xs[idx[j]] == xs[idx[i]] {
			j++
		}
		avg := float64(i+j+1) / 2 // average of 1-based ranks i+1..j
		for k := i; k < j; k++ {
			out[idx[k]] = avg
		}
		i = j
	}
	if xs[idx[0]] == xs[idx[len(idx)-1]] {
		return nil, fmt.Errorf("stats: Spearman of constant vector (all samples = %v)", xs[idx[0]])
	}
	return out, nil
}

// Sorted returns a sorted copy of xs. It is used to build the paper's
// Figure 15 s-curve.
func Sorted(xs []float64) []float64 {
	out := make([]float64, len(xs))
	copy(out, xs)
	sort.Float64s(out)
	return out
}

// Group collects named float samples and aggregates them; the experiment
// harness uses one Group per workload category.
type Group struct {
	names  []string
	values []float64
}

// Add appends a named sample.
func (g *Group) Add(name string, v float64) {
	g.names = append(g.names, name)
	g.values = append(g.values, v)
}

// Len returns the number of samples.
func (g *Group) Len() int { return len(g.values) }

// Values returns the sample values in insertion order.
func (g *Group) Values() []float64 { return g.values }

// Names returns the sample names in insertion order.
func (g *Group) Names() []string { return g.names }

// Mean returns the arithmetic mean of the samples.
func (g *Group) Mean() float64 { return Mean(g.values) }

// GeoMean returns the geometric mean of the samples, erroring on
// non-positive samples exactly as the package-level GeoMean does.
func (g *Group) GeoMean() (float64, error) { return GeoMean(g.values) }

// String renders the group as "name=value" pairs for debugging.
func (g *Group) String() string {
	var b strings.Builder
	for i, n := range g.names {
		if i > 0 {
			b.WriteString(" ")
		}
		fmt.Fprintf(&b, "%s=%.3f", n, g.values[i])
	}
	return b.String()
}
