// Package config defines the architectural parameters of every system the
// paper evaluates and provides presets for each of them: the baseline and
// optimized MCM-GPU (Table 3), monolithic GPUs from 32 to 256 SMs (Figure 2),
// and the two-GPU board-level system of Section 6.
//
// A single Config describes a "machine" as a set of modules (GPMs, or whole
// GPUs in the multi-GPU case) connected by an inter-module network, each
// module owning SMs and memory partitions. A monolithic GPU is simply a
// machine with one module and no inter-module network, so all three system
// classes share one simulator.
package config

import (
	"fmt"
	"math"
)

// AllocPolicy selects which fills a module-side (L1.5) cache accepts.
type AllocPolicy int

const (
	// AllocAll caches both local and remote data.
	AllocAll AllocPolicy = iota
	// AllocRemoteOnly caches only data homed in a remote module's memory;
	// local accesses bypass the cache. This is the policy the paper selects
	// (Section 5.1.2).
	AllocRemoteOnly
)

// String returns the policy name.
func (p AllocPolicy) String() string {
	switch p {
	case AllocAll:
		return "all"
	case AllocRemoteOnly:
		return "remote-only"
	}
	return fmt.Sprintf("AllocPolicy(%d)", int(p))
}

// SchedulerKind selects the CTA scheduling policy.
type SchedulerKind int

const (
	// SchedCentralized is the baseline: a single scheduler hands consecutive
	// CTAs to whichever SM frees up first, machine-wide round-robin.
	SchedCentralized SchedulerKind = iota
	// SchedDistributed divides the CTA index space into contiguous chunks,
	// one per module, so neighboring CTAs share a GPM (Section 5.2).
	SchedDistributed
	// SchedDynamic extends SchedDistributed with tail stealing: a module
	// whose chunk drains takes the trailing half of the busiest module's
	// remaining range. This implements the dynamic group sizing the paper
	// leaves as future work (Section 5.4) to recover the load imbalance it
	// observes for CTAs with unequal work.
	SchedDynamic
	// SchedTiled2D maps 2-D super-tiles of the CTA grid to modules: the
	// grid is cut into a near-square mw x mh factorization of the module
	// count, so a CTA keeps both its row neighbors and its column
	// neighbors on the same GPM. On workloads whose reuse is 2-D (tiled
	// GEMM, attention heads) this is what 1-D contiguous chunking cannot
	// provide; on 1-D grids it degenerates to SchedDistributed.
	SchedTiled2D
)

// String returns the scheduler name.
func (s SchedulerKind) String() string {
	switch s {
	case SchedCentralized:
		return "centralized"
	case SchedDistributed:
		return "distributed"
	case SchedDynamic:
		return "dynamic"
	case SchedTiled2D:
		return "tiled2d"
	}
	return fmt.Sprintf("SchedulerKind(%d)", int(s))
}

// PlacementKind selects the page placement policy.
type PlacementKind int

const (
	// PlaceInterleave interleaves lines across all memory partitions at
	// cache-line granularity (the paper's baseline).
	PlaceInterleave PlacementKind = iota
	// PlaceFirstTouch maps each page to a memory partition of the module
	// whose SM first touches it (Section 5.3).
	PlaceFirstTouch
	// PlaceRegionAware binds a page to the module that the CTA layout says
	// owns the page's region (panel or tile), falling back to first touch
	// for pages outside any owned region. Where first touch binds a shared
	// panel to whichever module raced to it first, region-aware placement
	// derives a deterministic home from the scheduler's CTA-to-module map,
	// so it requires a static layout (not the centralized scheduler).
	PlaceRegionAware
)

// String returns the placement name.
func (p PlacementKind) String() string {
	switch p {
	case PlaceInterleave:
		return "interleave"
	case PlaceFirstTouch:
		return "first-touch"
	case PlaceRegionAware:
		return "region-aware"
	}
	return fmt.Sprintf("PlacementKind(%d)", int(p))
}

// TopologyKind selects the inter-module network topology.
type TopologyKind int

const (
	// TopoNone means a single module; there is no inter-module network.
	TopoNone TopologyKind = iota
	// TopoRing is the paper's on-package ring of GPM-Xbars.
	TopoRing
	// TopoCrossbar is a fully connected inter-module network (used for the
	// topology ablation).
	TopoCrossbar
	// TopoMesh is a 2D mesh with XY routing, the natural topology for
	// larger GPM counts; the paper notes exploring such topologies is out
	// of its scope, so this is an extension.
	TopoMesh
)

// String returns the topology name.
func (t TopologyKind) String() string {
	switch t {
	case TopoNone:
		return "none"
	case TopoRing:
		return "ring"
	case TopoCrossbar:
		return "crossbar"
	case TopoMesh:
		return "mesh"
	}
	return fmt.Sprintf("TopologyKind(%d)", int(t))
}

// CacheConfig describes one cache level. SizeBytes == 0 disables the level.
type CacheConfig struct {
	SizeBytes  int // total capacity of one instance of this cache
	LineBytes  int // cache line size
	Ways       int // set associativity
	HitLatency uint64
	WriteBack  bool // write-back (true) or write-through (false)
}

// Enabled reports whether the level exists.
func (c CacheConfig) Enabled() bool { return c.SizeBytes > 0 }

// Lines returns the number of lines the cache holds.
func (c CacheConfig) Lines() int {
	if c.LineBytes == 0 {
		return 0
	}
	return c.SizeBytes / c.LineBytes
}

// LinkConfig describes inter-module links.
type LinkConfig struct {
	GBps            float64 // bandwidth per link, per direction
	HopLatency      uint64  // cycles added per hop traversed
	ReqHeaderBytes  int     // bytes on the wire for a request (no payload)
	RespHeaderBytes int     // header bytes added to a data response
	Board           bool    // board-level link (multi-GPU) rather than on-package GRS
}

// Config is the complete description of one simulated machine.
type Config struct {
	Name string

	// Topology of compute and memory.
	Modules             int // GPMs, or whole GPUs for a board-level system
	SMsPerModule        int
	PartitionsPerModule int // memory partitions (L2 slice + DRAM) per module

	// SM parameters.
	WarpsPerSM   int     // maximum resident warps per SM (Table 3: 64)
	IssuePerSM   float64 // warp instructions issued per cycle per SM
	MaxCTAsPerSM int     // CTA residency cap per SM (0 = limited by warps only)

	// Cache hierarchy. L1 is per SM, L15 is per module, L2 is per partition.
	L1       CacheConfig
	L15      CacheConfig
	L15Alloc AllocPolicy
	L2       CacheConfig
	L2BWMult float64 // L2 bank bandwidth as a multiple of its partition's DRAM bandwidth

	// Memory system.
	DRAMGBps    float64 // per partition
	DRAMLatency uint64  // cycles (100 ns at 1 GHz per Table 3)

	// On-module interconnect (SMs to local memory and to the module edge).
	XbarGBps    float64 // per module
	XbarLatency uint64

	// Inter-module network.
	Topology TopologyKind
	Link     LinkConfig

	// Policies.
	Scheduler          SchedulerKind
	Placement          PlacementKind
	PageBytes          int
	CTAChunksPerModule int // distributed-scheduler granularity; 1 = one contiguous chunk per module
}

// TotalSMs returns the machine-wide SM count.
func (c *Config) TotalSMs() int { return c.Modules * c.SMsPerModule }

// TotalPartitions returns the machine-wide memory partition count.
func (c *Config) TotalPartitions() int { return c.Modules * c.PartitionsPerModule }

// TotalDRAMGBps returns aggregate DRAM bandwidth.
func (c *Config) TotalDRAMGBps() float64 {
	return float64(c.TotalPartitions()) * c.DRAMGBps
}

// TotalL2Bytes returns aggregate memory-side L2 capacity.
func (c *Config) TotalL2Bytes() int { return c.TotalPartitions() * c.L2.SizeBytes }

// TotalL15Bytes returns aggregate module-side cache capacity.
func (c *Config) TotalL15Bytes() int {
	if !c.L15.Enabled() {
		return 0
	}
	return c.Modules * c.L15.SizeBytes
}

// TotalIssuePerCycle returns the machine-wide instruction issue bandwidth
// in warp instructions per cycle — the compute roofline.
func (c *Config) TotalIssuePerCycle() float64 {
	return float64(c.TotalSMs()) * c.IssuePerSM
}

// TotalXbarGBps returns the aggregate on-module fabric bandwidth across all
// modules (bytes/cycle at 1 GHz).
func (c *Config) TotalXbarGBps() float64 {
	return float64(c.Modules) * c.XbarGBps
}

// TotalL2BankGBps returns the aggregate memory-side L2 bank bandwidth
// across all partitions (bytes/cycle at 1 GHz).
func (c *Config) TotalL2BankGBps() float64 {
	return c.TotalDRAMGBps() * c.L2BWMult
}

// LinesPerPage returns how many cache lines one page holds. The ratio of
// page size to a CTA's region decides how much of first-touch placement's
// benefit page-granularity false sharing destroys, so the analytic
// estimator needs it as much as the address map does.
func (c *Config) LinesPerPage() int { return c.PageBytes / LineBytes }

// CTAsPerSM returns how many CTAs of the given warp count one SM can hold
// concurrently, honoring both the warp-residency and CTA-residency caps.
func (c *Config) CTAsPerSM(warpsPerCTA int) int {
	if warpsPerCTA <= 0 {
		warpsPerCTA = 1
	}
	byWarps := c.WarpsPerSM / warpsPerCTA
	if c.MaxCTAsPerSM > 0 && c.MaxCTAsPerSM < byWarps {
		return c.MaxCTAsPerSM
	}
	return byWarps
}

// finitePositive reports whether v is a usable positive rate: NaN compares
// false against everything (so a plain v <= 0 check lets it through), and
// +Inf passes v > 0 but poisons every downstream timing computation.
func finitePositive(v float64) bool {
	return v > 0 && !math.IsInf(v, 1)
}

// Validate checks internal consistency and returns a descriptive error for
// the first problem found. A config that validates must be safe to hand to
// the simulator: every panic in core/cache/noc/cta/vm construction is
// guarded by a check here, which is what lets the config fuzzer assert
// "Validate == nil implies New does not panic".
func (c *Config) Validate() error {
	switch {
	case c.Modules <= 0:
		return fmt.Errorf("config %q: Modules = %d, must be positive", c.Name, c.Modules)
	case c.SMsPerModule <= 0:
		return fmt.Errorf("config %q: SMsPerModule = %d, must be positive", c.Name, c.SMsPerModule)
	case c.PartitionsPerModule <= 0:
		return fmt.Errorf("config %q: PartitionsPerModule = %d, must be positive", c.Name, c.PartitionsPerModule)
	case c.WarpsPerSM <= 0:
		return fmt.Errorf("config %q: WarpsPerSM = %d, must be positive", c.Name, c.WarpsPerSM)
	case !finitePositive(c.IssuePerSM):
		return fmt.Errorf("config %q: IssuePerSM = %v, must be positive and finite", c.Name, c.IssuePerSM)
	case !finitePositive(c.DRAMGBps):
		return fmt.Errorf("config %q: DRAMGBps = %v, must be positive and finite", c.Name, c.DRAMGBps)
	case !finitePositive(c.XbarGBps):
		return fmt.Errorf("config %q: XbarGBps = %v, must be positive and finite", c.Name, c.XbarGBps)
	case c.PageBytes <= 0:
		return fmt.Errorf("config %q: PageBytes = %d, must be positive", c.Name, c.PageBytes)
	case !finitePositive(c.L2BWMult):
		return fmt.Errorf("config %q: L2BWMult = %v, must be positive and finite", c.Name, c.L2BWMult)
	}
	if c.Topology < TopoNone || c.Topology > TopoMesh {
		return fmt.Errorf("config %q: unknown topology %v", c.Name, c.Topology)
	}
	if c.Scheduler < SchedCentralized || c.Scheduler > SchedTiled2D {
		return fmt.Errorf("config %q: unknown scheduler %v", c.Name, c.Scheduler)
	}
	if c.Placement < PlaceInterleave || c.Placement > PlaceRegionAware {
		return fmt.Errorf("config %q: unknown placement policy %v", c.Name, c.Placement)
	}
	// Region-aware placement derives page homes from the scheduler's static
	// CTA-to-module layout; the centralized scheduler has none.
	if c.Placement == PlaceRegionAware && c.Scheduler == SchedCentralized {
		return fmt.Errorf("config %q: region-aware placement requires a static CTA layout (distributed, dynamic or tiled2d scheduler)", c.Name)
	}
	if c.L15Alloc < AllocAll || c.L15Alloc > AllocRemoteOnly {
		return fmt.Errorf("config %q: unknown L1.5 allocation policy %v", c.Name, c.L15Alloc)
	}
	if c.Modules > 1 && c.Topology == TopoNone {
		return fmt.Errorf("config %q: %d modules but no inter-module topology", c.Name, c.Modules)
	}
	if c.Modules > 1 && !finitePositive(c.Link.GBps) {
		return fmt.Errorf("config %q: multi-module machine needs finite Link.GBps > 0, got %v", c.Name, c.Link.GBps)
	}
	if c.Link.ReqHeaderBytes < 0 || c.Link.RespHeaderBytes < 0 {
		return fmt.Errorf("config %q: negative link header bytes (req %d, resp %d)",
			c.Name, c.Link.ReqHeaderBytes, c.Link.RespHeaderBytes)
	}
	// The simulator instantiates L1 and L2 unconditionally (every SM has an
	// L1, every memory partition an L2 slice); only the module-side L1.5 is
	// optional.
	if !c.L1.Enabled() {
		return fmt.Errorf("config %q: L1 must be enabled (SizeBytes > 0)", c.Name)
	}
	if !c.L2.Enabled() {
		return fmt.Errorf("config %q: L2 must be enabled (SizeBytes > 0)", c.Name)
	}
	for _, cc := range []struct {
		name string
		c    CacheConfig
	}{{"L1", c.L1}, {"L1.5", c.L15}, {"L2", c.L2}} {
		if !cc.c.Enabled() {
			continue
		}
		if cc.c.LineBytes <= 0 {
			return fmt.Errorf("config %q: %s LineBytes = %d", c.Name, cc.name, cc.c.LineBytes)
		}
		if cc.c.Ways <= 0 {
			return fmt.Errorf("config %q: %s Ways = %d", c.Name, cc.name, cc.c.Ways)
		}
		lines := cc.c.SizeBytes / cc.c.LineBytes
		if lines < cc.c.Ways {
			return fmt.Errorf("config %q: %s holds %d lines, fewer than %d ways", c.Name, cc.name, lines, cc.c.Ways)
		}
		if lines%cc.c.Ways != 0 {
			return fmt.Errorf("config %q: %s holds %d lines, not divisible into %d ways", c.Name, cc.name, lines, cc.c.Ways)
		}
		sets := lines / cc.c.Ways
		if sets&(sets-1) != 0 {
			return fmt.Errorf("config %q: %s set count %d is not a power of two", c.Name, cc.name, sets)
		}
	}
	if c.PageBytes&(c.PageBytes-1) != 0 {
		return fmt.Errorf("config %q: PageBytes %d is not a power of two", c.Name, c.PageBytes)
	}
	// Address translation derives lines-per-page from the machine-wide line
	// size; a page smaller than a line would make that zero.
	if c.PageBytes < LineBytes {
		return fmt.Errorf("config %q: PageBytes %d is smaller than the %d-byte line", c.Name, c.PageBytes, LineBytes)
	}
	return nil
}

// Clone returns a deep copy so presets can be modified freely.
func (c *Config) Clone() *Config {
	out := *c
	return &out
}

const (
	// KB and MB are byte-size helpers.
	KB = 1024
	MB = 1024 * 1024

	// LineBytes is the cache line size used machine-wide (Table 3: 128 B).
	LineBytes = 128
)

// BaselineMCM returns the Table 3 baseline: a 4-GPM, 256-SM MCM-GPU with
// 3 TB/s aggregate DRAM bandwidth, 16 MB of memory-side L2, a 768 GB/s
// on-package ring, centralized CTA scheduling, fine-grain interleaving, and
// no L1.5 cache.
func BaselineMCM() *Config {
	return &Config{
		Name:                "mcm-baseline",
		Modules:             4,
		SMsPerModule:        64,
		PartitionsPerModule: 1,
		WarpsPerSM:          64,
		IssuePerSM:          1,
		L1: CacheConfig{
			SizeBytes:  128 * KB,
			LineBytes:  LineBytes,
			Ways:       4,
			HitLatency: 28,
		},
		L15: CacheConfig{}, // disabled
		L2: CacheConfig{
			SizeBytes:  4 * MB, // 16 MB total across 4 partitions
			LineBytes:  LineBytes,
			Ways:       16,
			HitLatency: 64,
			WriteBack:  true,
		},
		L2BWMult:    4,
		DRAMGBps:    768, // 3 TB/s total
		DRAMLatency: 100,
		XbarGBps:    4096,
		XbarLatency: 16,
		Topology:    TopoRing,
		Link: LinkConfig{
			GBps:            768,
			HopLatency:      32,
			ReqHeaderBytes:  32,
			RespHeaderBytes: 32,
		},
		Scheduler: SchedCentralized,
		Placement: PlaceInterleave,
		// 4 KB pages keep the pages-per-CTA-region ratio of the paper's
		// GB-scale footprints at this model's scaled-down footprints, so
		// first-touch page races at chunk boundaries stay as rare as they
		// would be at full scale.
		PageBytes:          4 * KB,
		CTAChunksPerModule: 1,
	}
}

// MCMWithLink returns the baseline MCM-GPU with the given per-link
// inter-GPM bandwidth in GB/s (the Figure 4 sweep).
func MCMWithLink(gbps float64) *Config {
	c := BaselineMCM()
	c.Name = fmt.Sprintf("mcm-link-%.0fGBps", gbps)
	c.Link.GBps = gbps
	return c
}

// WithL15 returns a copy of c with a module-side L1.5 cache of the given
// total capacity (split evenly across modules) and allocation policy,
// rebalancing L2 capacity in an iso-transistor manner against the 16 MB
// baseline budget: totalL15 + totalL2 = 16 MB, floored at the paper's 32 KB
// per-partition remnant. Capacities beyond 16 MB (the paper's 32 MB point)
// exceed the transistor budget and leave 32 KB of L2.
func WithL15(c *Config, totalL15Bytes int, policy AllocPolicy) *Config {
	out := c.Clone()
	perModule := totalL15Bytes / out.Modules
	out.L15 = CacheConfig{
		SizeBytes:  perModule,
		LineBytes:  LineBytes,
		Ways:       16,
		HitLatency: 44,
	}
	out.L15Alloc = policy
	budget := 16 * MB
	remain := budget - totalL15Bytes
	perPartition := remain / out.TotalPartitions()
	if perPartition < 32*KB {
		perPartition = 32 * KB
	}
	// Round down to a valid geometry: the set count must be a power of two.
	sets := perPartition / out.L2.LineBytes / out.L2.Ways
	pow := 1
	for pow*2 <= sets {
		pow *= 2
	}
	out.L2.SizeBytes = pow * out.L2.Ways * out.L2.LineBytes
	out.Name = fmt.Sprintf("%s+l15-%dMB-%s", c.Name, totalL15Bytes/MB, policy)
	return out
}

// WithScheduler returns a copy of c using the given CTA scheduler.
func WithScheduler(c *Config, s SchedulerKind) *Config {
	out := c.Clone()
	out.Scheduler = s
	out.Name = fmt.Sprintf("%s+%s", c.Name, s)
	return out
}

// WithPlacement returns a copy of c using the given page placement policy.
func WithPlacement(c *Config, p PlacementKind) *Config {
	out := c.Clone()
	out.Placement = p
	out.Name = fmt.Sprintf("%s+%s", c.Name, p)
	return out
}

// OptimizedMCM returns the paper's final design point: baseline MCM-GPU plus
// a remote-only L1.5, distributed CTA scheduling, and first-touch placement,
// with the 8 MB L1.5 / 8 MB L2 iso-transistor split that Figure 13 shows is
// best once first-touch placement keeps most traffic local.
func OptimizedMCM() *Config {
	c := WithL15(BaselineMCM(), 8*MB, AllocRemoteOnly)
	c.Scheduler = SchedDistributed
	c.Placement = PlaceFirstTouch
	c.Name = "mcm-optimized"
	return c
}

// OptimizedMCM16 returns the optimized design with the 16 MB L1.5 split
// (Figure 13's alternative bar).
func OptimizedMCM16() *Config {
	c := WithL15(BaselineMCM(), 16*MB, AllocRemoteOnly)
	c.Scheduler = SchedDistributed
	c.Placement = PlaceFirstTouch
	c.Name = "mcm-optimized-16MB"
	return c
}

// TiledRegionMCM returns the optimized MCM transistor budget (8 MB L2
// halves + 8 MB remote-only L1.5) re-paired for dense 2-D workloads: the
// tiled 2-D CTA scheduler with region-aware placement, the combination the
// tension study shows recovering the GEMM/attention loss that distributed
// scheduling + first touch suffers against the centralized baseline.
func TiledRegionMCM() *Config {
	c := OptimizedMCM()
	c.Scheduler = SchedTiled2D
	c.Placement = PlaceRegionAware
	c.Name = "mcm-tiled-region"
	return c
}

// Monolithic returns a single-die GPU with the given SM count. The memory
// system scales with SMs as in Figure 2: 384 GB/s of DRAM bandwidth and 2 MB
// of L2 per 32 SMs. SM counts above 128 are not manufacturable; the paper
// uses them as hypothetical upper bounds, and so do we. SM counts that are
// not positive multiples of 32 cannot scale the memory system and are
// rejected with an error: this is user input (CLI flags, sweep grids), not
// a programmer invariant.
func Monolithic(sms int) (*Config, error) {
	if sms <= 0 || sms%32 != 0 {
		return nil, fmt.Errorf("config: Monolithic SM count %d must be a positive multiple of 32", sms)
	}
	parts := sms / 32
	return &Config{
		Name:                fmt.Sprintf("monolithic-%dSM", sms),
		Modules:             1,
		SMsPerModule:        sms,
		PartitionsPerModule: parts,
		WarpsPerSM:          64,
		IssuePerSM:          1,
		L1: CacheConfig{
			SizeBytes:  128 * KB,
			LineBytes:  LineBytes,
			Ways:       4,
			HitLatency: 28,
		},
		L2: CacheConfig{
			SizeBytes:  2 * MB,
			LineBytes:  LineBytes,
			Ways:       16,
			HitLatency: 64,
			WriteBack:  true,
		},
		L2BWMult:           4,
		DRAMGBps:           384,
		DRAMLatency:        100,
		XbarGBps:           64 * float64(sms), // on-chip interconnect scales with die size
		XbarLatency:        16,
		Topology:           TopoNone,
		Scheduler:          SchedCentralized,
		Placement:          PlaceInterleave,
		PageBytes:          4 * KB,
		CTAChunksPerModule: 1,
	}, nil
}

// MustMonolithic is Monolithic for callers whose SM count is a known-good
// literal (tests, examples, presets); it panics on the errors Monolithic
// returns.
func MustMonolithic(sms int) *Config {
	c, err := Monolithic(sms)
	if err != nil {
		panic(err)
	}
	return c
}

// LargestBuildableMonolithic returns the 128-SM GPU the paper assumes is the
// largest die that can be manufactured.
func LargestBuildableMonolithic() *Config {
	c := MustMonolithic(128)
	c.Name = "monolithic-128SM-buildable"
	return c
}

// UnbuildableMonolithic returns the hypothetical 256-SM single-die GPU used
// as the upper bound throughout the evaluation.
func UnbuildableMonolithic() *Config {
	c := MustMonolithic(256)
	c.Name = "monolithic-256SM-unbuildable"
	return c
}

// MultiGPUBaseline returns the Section 6 board-level system: two maximally
// sized 128-SM GPUs, each with 1.5 TB/s of local DRAM and 8 MB of
// memory-side cache, joined by a 256 GB/s aggregate on-board link. The
// system is programmer-transparent and already uses distributed CTA
// scheduling and first-touch placement (the paper found round-robin
// placement performs very poorly at board-level bandwidth).
func MultiGPUBaseline() *Config {
	return &Config{
		Name:                "multi-gpu-baseline",
		Modules:             2,
		SMsPerModule:        128,
		PartitionsPerModule: 2, // 2 x 768 GB/s = 1.5 TB/s per GPU
		WarpsPerSM:          64,
		IssuePerSM:          1,
		L1: CacheConfig{
			SizeBytes:  128 * KB,
			LineBytes:  LineBytes,
			Ways:       4,
			HitLatency: 28,
		},
		L2: CacheConfig{
			SizeBytes:  4 * MB, // 8 MB per GPU
			LineBytes:  LineBytes,
			Ways:       16,
			HitLatency: 64,
			WriteBack:  true,
		},
		L2BWMult:    4,
		DRAMGBps:    768,
		DRAMLatency: 100,
		XbarGBps:    8192,
		XbarLatency: 16,
		Topology:    TopoRing, // two nodes: a single bidirectional link
		Link: LinkConfig{
			GBps:            256, // 256 GB/s aggregate: 128 GB/s per direction
			HopLatency:      250, // board-level serialization + wire latency
			ReqHeaderBytes:  32,
			RespHeaderBytes: 32,
			Board:           true,
		},
		Scheduler:          SchedDistributed,
		Placement:          PlaceFirstTouch,
		PageBytes:          4 * KB,
		CTAChunksPerModule: 1,
	}
}

// MultiGPUOptimized returns the Section 6 optimized multi-GPU: the baseline
// plus a GPU-side remote-only cache built from half of each GPU's L2 (4 MB
// remote cache + 4 MB L2 per GPU).
func MultiGPUOptimized() *Config {
	c := MultiGPUBaseline()
	c.Name = "multi-gpu-optimized"
	c.L15 = CacheConfig{
		SizeBytes:  4 * MB,
		LineBytes:  LineBytes,
		Ways:       16,
		HitLatency: 44,
	}
	c.L15Alloc = AllocRemoteOnly
	c.L2.SizeBytes = 2 * MB // 4 MB per GPU across 2 partitions
	return c
}

// MCMGPMs returns an optimized 256-SM MCM-GPU partitioned into the given
// number of GPMs (2, 4, 8 or 16), holding aggregate resources constant:
// 3 TB/s of DRAM, 16 MB of transistor budget for L2+L1.5, and 4 TB/s of
// on-chip fabric per 64 SMs. Up to 4 GPMs use the paper's ring; larger
// counts use a 2D mesh, the exploration the paper leaves as out of scope.
// Smaller GPMs are cheaper to manufacture but pay more NUMA penalty — this
// preset family quantifies that trade-off. GPM counts outside {2, 4, 8, 16}
// cannot partition the 256-SM budget evenly and are rejected with an error.
func MCMGPMs(gpms int) (*Config, error) {
	switch gpms {
	case 2, 4, 8, 16:
	default:
		return nil, fmt.Errorf("config: MCMGPMs(%d): GPM count must be 2, 4, 8 or 16", gpms)
	}
	c := BaselineMCM()
	c.Name = fmt.Sprintf("mcm-%dgpm-optimized", gpms)
	c.Modules = gpms
	c.SMsPerModule = 256 / gpms
	c.DRAMGBps = 3072 / float64(gpms)
	c.XbarGBps = 64 * float64(c.SMsPerModule) // hold per-SM fabric constant
	c.L2.SizeBytes = 8 * MB / gpms
	c.L15 = CacheConfig{
		SizeBytes:  8 * MB / gpms,
		LineBytes:  LineBytes,
		Ways:       16,
		HitLatency: 44,
	}
	c.L15Alloc = AllocRemoteOnly
	c.Scheduler = SchedDistributed
	c.Placement = PlaceFirstTouch
	if gpms > 4 {
		c.Topology = TopoMesh
	}
	return c, nil
}

// MustMCMGPMs is MCMGPMs for known-good literal GPM counts; it panics on
// the errors MCMGPMs returns.
func MustMCMGPMs(gpms int) *Config {
	c, err := MCMGPMs(gpms)
	if err != nil {
		panic(err)
	}
	return c
}
