package config

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func TestJSONRoundTripAllPresets(t *testing.T) {
	presets := []*Config{
		BaselineMCM(), OptimizedMCM(), OptimizedMCM16(),
		MustMonolithic(128), UnbuildableMonolithic(),
		MultiGPUBaseline(), MultiGPUOptimized(),
		MCMWithLink(1536),
	}
	for _, c := range presets {
		var buf bytes.Buffer
		if err := c.WriteJSON(&buf); err != nil {
			t.Fatalf("%s: write: %v", c.Name, err)
		}
		got, err := ReadJSON(&buf)
		if err != nil {
			t.Fatalf("%s: read: %v", c.Name, err)
		}
		if !reflect.DeepEqual(c, got) {
			t.Errorf("%s: round trip changed config:\nwas:  %+v\ngot:  %+v", c.Name, c, got)
		}
	}
}

func TestJSONUsesReadableEnumNames(t *testing.T) {
	var buf bytes.Buffer
	if err := OptimizedMCM().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	for _, want := range []string{`"distributed"`, `"first-touch"`, `"remote-only"`, `"ring"`} {
		if !strings.Contains(s, want) {
			t.Errorf("JSON missing readable enum %s:\n%s", want, s)
		}
	}
}

func TestReadJSONRejectsInvalid(t *testing.T) {
	cases := []string{
		`{`,                            // malformed
		`{"Modules": 0}`,               // fails validation
		`{"Bogus": 1, "Modules": 4}`,   // unknown field
		`{"Scheduler": "round-robin"}`, // unknown enum name
	}
	for i, c := range cases {
		if _, err := ReadJSON(strings.NewReader(c)); err == nil {
			t.Errorf("case %d accepted: %s", i, c)
		}
	}
}

func TestLoadSaveFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cfg.json")
	c := MultiGPUOptimized()
	if err := c.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(c, got) {
		t.Fatalf("file round trip changed config")
	}
	if _, err := LoadFile(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatalf("missing file accepted")
	}
	if err := os.WriteFile(path, []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFile(path); err == nil {
		t.Fatalf("junk file accepted")
	}
}
