package config

import (
	"reflect"
	"testing"
)

func TestFingerprintIgnoresName(t *testing.T) {
	a := BaselineMCM()
	b := BaselineMCM()
	b.Name = "something-else-entirely"
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatalf("fingerprint depends on Name: %s vs %s", a.Fingerprint(), b.Fingerprint())
	}
}

func TestFingerprintStable(t *testing.T) {
	a := BaselineMCM()
	if a.Fingerprint() != a.Fingerprint() {
		t.Fatal("fingerprint not deterministic")
	}
	if a.Fingerprint() == OptimizedMCM().Fingerprint() {
		t.Fatal("distinct presets share a fingerprint")
	}
}

// perturbLeaves visits every settable leaf field of v (recursing into
// structs), calling fn with a mutator that nudges just that leaf.
func perturbLeaves(t *testing.T, v reflect.Value, path string, fn func(path string, mutate func())) {
	t.Helper()
	for i := 0; i < v.NumField(); i++ {
		f := v.Field(i)
		name := path + v.Type().Field(i).Name
		switch f.Kind() {
		case reflect.Struct:
			perturbLeaves(t, f, name+".", fn)
		case reflect.Int, reflect.Int64:
			fn(name, func() { f.SetInt(f.Int() + 1) })
		case reflect.Uint64:
			fn(name, func() { f.SetUint(f.Uint() + 1) })
		case reflect.Float64:
			fn(name, func() { f.SetFloat(f.Float()*2 + 1) })
		case reflect.Bool:
			fn(name, func() { f.SetBool(!f.Bool()) })
		case reflect.String:
			fn(name, func() { f.SetString(f.String() + "-x") })
		default:
			t.Fatalf("field %s has unhandled kind %v; extend the perturber", name, f.Kind())
		}
	}
}

// TestFingerprintCoversEveryParameter perturbs each leaf field of Config in
// turn and asserts the fingerprint moves for every architectural parameter
// (and only stays put for Name). This keeps the fingerprint honest as fields
// are added: a new field is covered automatically, and a fingerprint that
// started skipping one would fail here.
func TestFingerprintCoversEveryParameter(t *testing.T) {
	base := BaselineMCM().Fingerprint()
	c := BaselineMCM()
	perturbLeaves(t, reflect.ValueOf(c).Elem(), "", func(path string, mutate func()) {
		fresh := BaselineMCM()
		*c = *fresh
		mutate()
		got := c.Fingerprint()
		if path == "Name" {
			if got != base {
				t.Errorf("Name perturbation changed the fingerprint")
			}
			return
		}
		if got == base {
			t.Errorf("perturbing %s did not change the fingerprint", path)
		}
	})
}

// TestConfigHasNoReferenceFields locks in the property the fingerprint and
// Clone rely on: Config is a pure value type, so a struct copy is a deep
// copy and %#v renders the whole machine description.
func TestConfigHasNoReferenceFields(t *testing.T) {
	assertValueOnly(t, reflect.TypeOf(Config{}), "Config")
}

func assertValueOnly(t *testing.T, typ reflect.Type, path string) {
	t.Helper()
	switch typ.Kind() {
	case reflect.Ptr, reflect.Slice, reflect.Map, reflect.Chan, reflect.Func, reflect.Interface, reflect.UnsafePointer:
		t.Errorf("%s is a reference type (%v); Clone and Fingerprint assume value semantics", path, typ.Kind())
	case reflect.Struct:
		for i := 0; i < typ.NumField(); i++ {
			f := typ.Field(i)
			assertValueOnly(t, f.Type, path+"."+f.Name)
		}
	case reflect.Array:
		assertValueOnly(t, typ.Elem(), path+"[]")
	}
}
