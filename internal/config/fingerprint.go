package config

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
)

// Fingerprint returns a canonical hash of every architectural parameter of
// the configuration. Two configs with the same fingerprint describe the same
// machine and must produce identical simulation results; the Name field is
// presentation-only and is deliberately excluded, so renaming a preset (as
// the experiment drivers do for display) never defeats run memoization.
//
// The canonical form is the Go-syntax rendering of a Name-cleared copy of
// the struct, which covers every field — including ones added later —
// without a hand-maintained list. Config holds only value-typed fields
// (asserted by TestConfigHasNoReferenceFields), so the rendering is a
// complete description of the machine.
func (c *Config) Fingerprint() string {
	canon := *c
	canon.Name = ""
	h := sha256.Sum256([]byte(fmt.Sprintf("%#v", canon)))
	return hex.EncodeToString(h[:16])
}
