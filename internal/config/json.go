package config

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"
)

// The enum types marshal as their string names so configuration files are
// readable and stable across reorderings of the Go constants.

var (
	allocNames = map[AllocPolicy]string{AllocAll: "all", AllocRemoteOnly: "remote-only"}
	schedNames = map[SchedulerKind]string{
		SchedCentralized: "centralized", SchedDistributed: "distributed", SchedDynamic: "dynamic",
		SchedTiled2D: "tiled2d",
	}
	placeNames = map[PlacementKind]string{
		PlaceInterleave: "interleave", PlaceFirstTouch: "first-touch", PlaceRegionAware: "region-aware",
	}
	topoNames = map[TopologyKind]string{
		TopoNone: "none", TopoRing: "ring", TopoCrossbar: "crossbar", TopoMesh: "mesh",
	}
)

func marshalName[K comparable](names map[K]string, v K) ([]byte, error) {
	n, ok := names[v]
	if !ok {
		return nil, fmt.Errorf("config: unknown enum value %v", v)
	}
	return json.Marshal(n)
}

func unmarshalName[K comparable](names map[K]string, data []byte, v *K) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	for k, n := range names {
		if n == s {
			*v = k
			return nil
		}
	}
	var opts []string
	for _, n := range names {
		opts = append(opts, n)
	}
	return fmt.Errorf("config: unknown name %q (have %s)", s, strings.Join(opts, ", "))
}

// MarshalJSON implements json.Marshaler.
func (p AllocPolicy) MarshalJSON() ([]byte, error) { return marshalName(allocNames, p) }

// UnmarshalJSON implements json.Unmarshaler.
func (p *AllocPolicy) UnmarshalJSON(b []byte) error { return unmarshalName(allocNames, b, p) }

// MarshalJSON implements json.Marshaler.
func (s SchedulerKind) MarshalJSON() ([]byte, error) { return marshalName(schedNames, s) }

// UnmarshalJSON implements json.Unmarshaler.
func (s *SchedulerKind) UnmarshalJSON(b []byte) error { return unmarshalName(schedNames, b, s) }

// MarshalJSON implements json.Marshaler.
func (p PlacementKind) MarshalJSON() ([]byte, error) { return marshalName(placeNames, p) }

// UnmarshalJSON implements json.Unmarshaler.
func (p *PlacementKind) UnmarshalJSON(b []byte) error { return unmarshalName(placeNames, b, p) }

// MarshalJSON implements json.Marshaler.
func (t TopologyKind) MarshalJSON() ([]byte, error) { return marshalName(topoNames, t) }

// UnmarshalJSON implements json.Unmarshaler.
func (t *TopologyKind) UnmarshalJSON(b []byte) error { return unmarshalName(topoNames, b, t) }

// WriteJSON serializes the configuration, indented for human editing.
func (c *Config) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(c)
}

// ReadJSON parses and validates a configuration.
func ReadJSON(r io.Reader) (*Config, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	c := new(Config)
	if err := dec.Decode(c); err != nil {
		return nil, fmt.Errorf("config: parsing JSON: %w", err)
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return c, nil
}

// LoadFile reads a configuration from a JSON file.
func LoadFile(path string) (*Config, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("config: %w", err)
	}
	defer f.Close()
	return ReadJSON(f)
}

// SaveFile writes the configuration to a JSON file.
func (c *Config) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("config: %w", err)
	}
	if err := c.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
