package config

import (
	"math"
	"strings"
	"testing"
)

func TestBaselineMatchesTable3(t *testing.T) {
	c := BaselineMCM()
	if err := c.Validate(); err != nil {
		t.Fatalf("baseline invalid: %v", err)
	}
	if got := c.TotalSMs(); got != 256 {
		t.Errorf("TotalSMs = %d, want 256", got)
	}
	if got := c.Modules; got != 4 {
		t.Errorf("Modules = %d, want 4", got)
	}
	if got := c.WarpsPerSM; got != 64 {
		t.Errorf("WarpsPerSM = %d, want 64", got)
	}
	if got := c.L1.SizeBytes; got != 128*KB {
		t.Errorf("L1 size = %d, want 128KB", got)
	}
	if got := c.TotalL2Bytes(); got != 16*MB {
		t.Errorf("total L2 = %d, want 16MB", got)
	}
	if got := c.TotalDRAMGBps(); got != 3072 {
		t.Errorf("total DRAM BW = %v GB/s, want 3072 (3 TB/s)", got)
	}
	if got := c.Link.GBps; got != 768 {
		t.Errorf("link BW = %v, want 768", got)
	}
	if got := c.Link.HopLatency; got != 32 {
		t.Errorf("hop latency = %d, want 32", got)
	}
	if got := c.DRAMLatency; got != 100 {
		t.Errorf("DRAM latency = %d, want 100 cycles (100 ns)", got)
	}
	if c.L15.Enabled() {
		t.Errorf("baseline must not have an L1.5")
	}
	if c.Scheduler != SchedCentralized || c.Placement != PlaceInterleave {
		t.Errorf("baseline policies = %v/%v, want centralized/interleave", c.Scheduler, c.Placement)
	}
}

func TestWithL15IsoTransistor(t *testing.T) {
	base := BaselineMCM()
	for _, tc := range []struct {
		totalL15  int
		wantL15PM int // per module
		wantL2PP  int // per partition
	}{
		{8 * MB, 2 * MB, 2 * MB},
		{16 * MB, 4 * MB, 32 * KB},
		{32 * MB, 8 * MB, 32 * KB},
	} {
		c := WithL15(base, tc.totalL15, AllocRemoteOnly)
		if err := c.Validate(); err != nil {
			t.Fatalf("L1.5 %dMB invalid: %v", tc.totalL15/MB, err)
		}
		if c.L15.SizeBytes != tc.wantL15PM {
			t.Errorf("L1.5 total %dMB: per-module = %d, want %d", tc.totalL15/MB, c.L15.SizeBytes, tc.wantL15PM)
		}
		if c.L2.SizeBytes != tc.wantL2PP {
			t.Errorf("L1.5 total %dMB: L2 per-partition = %d, want %d", tc.totalL15/MB, c.L2.SizeBytes, tc.wantL2PP)
		}
		if c.L15Alloc != AllocRemoteOnly {
			t.Errorf("alloc policy not preserved")
		}
	}
	// The 8+8 split is iso-transistor with the 16 MB baseline budget.
	c := WithL15(base, 8*MB, AllocRemoteOnly)
	if got := c.TotalL15Bytes() + c.TotalL2Bytes(); got != 16*MB {
		t.Errorf("8MB split total cache = %d, want 16MB", got)
	}
	// Base config must not be mutated.
	if base.L15.Enabled() {
		t.Errorf("WithL15 mutated its input")
	}
}

func TestOptimizedMCM(t *testing.T) {
	c := OptimizedMCM()
	if err := c.Validate(); err != nil {
		t.Fatalf("invalid: %v", err)
	}
	if c.Scheduler != SchedDistributed {
		t.Errorf("scheduler = %v, want distributed", c.Scheduler)
	}
	if c.Placement != PlaceFirstTouch {
		t.Errorf("placement = %v, want first-touch", c.Placement)
	}
	if c.L15Alloc != AllocRemoteOnly || !c.L15.Enabled() {
		t.Errorf("optimized MCM must have a remote-only L1.5")
	}
	if got := c.TotalL15Bytes(); got != 8*MB {
		t.Errorf("total L1.5 = %d, want 8MB", got)
	}
}

func TestMonolithicScaling(t *testing.T) {
	for _, sms := range []int{32, 64, 96, 128, 160, 192, 224, 256} {
		c, err := Monolithic(sms)
		if err != nil {
			t.Fatalf("Monolithic(%d): %v", sms, err)
		}
		if err := c.Validate(); err != nil {
			t.Fatalf("monolithic %d invalid: %v", sms, err)
		}
		if got := c.TotalSMs(); got != sms {
			t.Errorf("%d SMs: TotalSMs = %d", sms, got)
		}
		wantBW := float64(sms/32) * 384
		if got := c.TotalDRAMGBps(); got != wantBW {
			t.Errorf("%d SMs: DRAM BW = %v, want %v", sms, got, wantBW)
		}
		wantL2 := (sms / 32) * 2 * MB
		if got := c.TotalL2Bytes(); got != wantL2 {
			t.Errorf("%d SMs: L2 = %d, want %d", sms, got, wantL2)
		}
		if c.Topology != TopoNone || c.Modules != 1 {
			t.Errorf("%d SMs: monolithic must be a single module with no network", sms)
		}
	}
	// 256-SM monolithic has the same memory system as the MCM (3 TB/s, 16 MB).
	m := UnbuildableMonolithic()
	b := BaselineMCM()
	if m.TotalDRAMGBps() != b.TotalDRAMGBps() {
		t.Errorf("256-SM monolithic BW %v != MCM BW %v", m.TotalDRAMGBps(), b.TotalDRAMGBps())
	}
	if m.TotalL2Bytes() != b.TotalL2Bytes() {
		t.Errorf("256-SM monolithic L2 %v != MCM L2 %v", m.TotalL2Bytes(), b.TotalL2Bytes())
	}
}

func TestMonolithicRejectsNonMultiple(t *testing.T) {
	for _, sms := range []int{100, 0, -32, 33} {
		if c, err := Monolithic(sms); err == nil {
			t.Errorf("Monolithic(%d) = %v, want error", sms, c)
		}
	}
}

func TestMustMonolithicPanicsOnBadCount(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("MustMonolithic(100) did not panic")
		}
	}()
	MustMonolithic(100)
}

func TestMultiGPU(t *testing.T) {
	b := MultiGPUBaseline()
	if err := b.Validate(); err != nil {
		t.Fatalf("baseline multi-GPU invalid: %v", err)
	}
	if b.TotalSMs() != 256 {
		t.Errorf("TotalSMs = %d, want 256", b.TotalSMs())
	}
	if got := b.TotalDRAMGBps(); got != 3072 {
		t.Errorf("total DRAM = %v, want 3072 (equally equipped)", got)
	}
	if b.L15.Enabled() {
		t.Errorf("baseline multi-GPU must not have a remote cache")
	}
	o := MultiGPUOptimized()
	if err := o.Validate(); err != nil {
		t.Fatalf("optimized multi-GPU invalid: %v", err)
	}
	if !o.L15.Enabled() || o.L15Alloc != AllocRemoteOnly {
		t.Errorf("optimized multi-GPU needs a remote-only cache")
	}
	// Half the L2 moved: 4 MB remote cache + 4 MB L2 per GPU.
	if got := o.L15.SizeBytes; got != 4*MB {
		t.Errorf("remote cache per GPU = %d, want 4MB", got)
	}
	if got := o.PartitionsPerModule * o.L2.SizeBytes; got != 4*MB {
		t.Errorf("L2 per GPU = %d, want 4MB", got)
	}
	// Board link is far slower than the on-package link.
	if b.Link.GBps >= BaselineMCM().Link.GBps {
		t.Errorf("board link %v GB/s should be below package link", b.Link.GBps)
	}
}

func TestValidateCatchesErrors(t *testing.T) {
	cases := []struct {
		mutate func(*Config)
		want   string
	}{
		{func(c *Config) { c.Modules = 0 }, "Modules"},
		{func(c *Config) { c.SMsPerModule = -1 }, "SMsPerModule"},
		{func(c *Config) { c.WarpsPerSM = 0 }, "WarpsPerSM"},
		{func(c *Config) { c.IssuePerSM = 0 }, "IssuePerSM"},
		{func(c *Config) { c.DRAMGBps = 0 }, "DRAMGBps"},
		{func(c *Config) { c.Topology = TopoNone }, "topology"},
		{func(c *Config) { c.Link.GBps = 0 }, "Link.GBps"},
		{func(c *Config) { c.L1.Ways = 0 }, "Ways"},
		{func(c *Config) { c.L1.SizeBytes = 96 * KB }, "power of two"},
		{func(c *Config) { c.PageBytes = 3000 }, "PageBytes"},
		{func(c *Config) { c.L2BWMult = 0 }, "L2BWMult"},
		{func(c *Config) { c.IssuePerSM = math.NaN() }, "IssuePerSM"},
		{func(c *Config) { c.DRAMGBps = math.Inf(1) }, "DRAMGBps"},
		{func(c *Config) { c.XbarGBps = math.NaN() }, "XbarGBps"},
		{func(c *Config) { c.L2BWMult = math.Inf(1) }, "L2BWMult"},
		{func(c *Config) { c.Link.GBps = math.NaN() }, "Link.GBps"},
		{func(c *Config) { c.Topology = TopologyKind(99) }, "topology"},
		{func(c *Config) { c.Scheduler = SchedulerKind(-1) }, "scheduler"},
		{func(c *Config) { c.Placement = PlacementKind(7) }, "placement"},
		{func(c *Config) { c.L15Alloc = AllocPolicy(3) }, "allocation"},
		{func(c *Config) { c.Link.ReqHeaderBytes = -1 }, "header"},
		{func(c *Config) { c.Link.RespHeaderBytes = -8 }, "header"},
		{func(c *Config) { c.L1.SizeBytes = 0 }, "L1 must be enabled"},
		{func(c *Config) { c.L2.SizeBytes = 0 }, "L2 must be enabled"},
		// 768 B / 128 B = 6 lines: 6/4 = 1 set (a power of two) but 6 % 4 != 0,
		// which used to slip through Validate and panic in cache.New.
		{func(c *Config) { c.L1.SizeBytes = 768 }, "divisible"},
		{func(c *Config) { c.PageBytes = 64 }, "smaller than"},
	}
	for i, tc := range cases {
		c := BaselineMCM()
		tc.mutate(c)
		err := c.Validate()
		if err == nil {
			t.Errorf("case %d: Validate accepted a broken config", i)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("case %d: error %q does not mention %q", i, err, tc.want)
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	a := BaselineMCM()
	b := a.Clone()
	b.Link.GBps = 1
	b.L2.SizeBytes = 1 * MB
	if a.Link.GBps != 768 || a.L2.SizeBytes != 4*MB {
		t.Fatalf("Clone shares state with original")
	}
}

func TestStringers(t *testing.T) {
	if AllocRemoteOnly.String() != "remote-only" || AllocAll.String() != "all" {
		t.Errorf("AllocPolicy strings wrong")
	}
	if SchedDistributed.String() != "distributed" || SchedCentralized.String() != "centralized" {
		t.Errorf("SchedulerKind strings wrong")
	}
	if PlaceFirstTouch.String() != "first-touch" || PlaceInterleave.String() != "interleave" {
		t.Errorf("PlacementKind strings wrong")
	}
	if TopoRing.String() != "ring" || TopoNone.String() != "none" || TopoCrossbar.String() != "crossbar" {
		t.Errorf("TopologyKind strings wrong")
	}
}

func TestMCMWithLink(t *testing.T) {
	for _, bw := range []float64{384, 768, 1536, 3072, 6144} {
		c := MCMWithLink(bw)
		if err := c.Validate(); err != nil {
			t.Fatalf("link %v invalid: %v", bw, err)
		}
		if c.Link.GBps != bw {
			t.Errorf("link = %v, want %v", c.Link.GBps, bw)
		}
	}
}

func TestCacheConfigHelpers(t *testing.T) {
	cc := CacheConfig{SizeBytes: 16 * KB, LineBytes: 128, Ways: 4}
	if !cc.Enabled() {
		t.Errorf("Enabled = false")
	}
	if got := cc.Lines(); got != 128 {
		t.Errorf("Lines = %d, want 128", got)
	}
	var off CacheConfig
	if off.Enabled() || off.Lines() != 0 {
		t.Errorf("zero CacheConfig should be disabled with 0 lines")
	}
}

func TestMCMGPMs(t *testing.T) {
	for _, gpms := range []int{2, 4, 8, 16} {
		c, err := MCMGPMs(gpms)
		if err != nil {
			t.Fatalf("MCMGPMs(%d): %v", gpms, err)
		}
		if err := c.Validate(); err != nil {
			t.Fatalf("%d GPMs invalid: %v", gpms, err)
		}
		if c.TotalSMs() != 256 {
			t.Errorf("%d GPMs: SMs = %d, want 256", gpms, c.TotalSMs())
		}
		if got := c.TotalDRAMGBps(); got != 3072 {
			t.Errorf("%d GPMs: DRAM = %v, want 3072", gpms, got)
		}
		if got := c.TotalL15Bytes() + c.TotalL2Bytes(); got != 16*MB {
			t.Errorf("%d GPMs: cache budget = %d, want 16MB", gpms, got)
		}
		wantTopo := TopoRing
		if gpms > 4 {
			wantTopo = TopoMesh
		}
		if c.Topology != wantTopo {
			t.Errorf("%d GPMs: topology = %v, want %v", gpms, c.Topology, wantTopo)
		}
	}
}

func TestMCMGPMsRejectsOddCounts(t *testing.T) {
	for _, gpms := range []int{3, 0, -2, 5} {
		if c, err := MCMGPMs(gpms); err == nil {
			t.Errorf("MCMGPMs(%d) = %v, want error", gpms, c)
		}
	}
}

func TestMustMCMGPMsPanicsOnBadCount(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("MustMCMGPMs(3) did not panic")
		}
	}()
	MustMCMGPMs(3)
}
