package runner

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"mcmgpu/internal/config"
	"mcmgpu/internal/metrics"
)

// metricsJobs is a small two-config job list for sampling tests.
func metricsJobs(t *testing.T) []Job {
	t.Helper()
	return []Job{
		{Config: config.BaselineMCM(), Spec: mustSpec(t, "GEMM"), Scale: 0.05},
		{Config: config.OptimizedMCM(), Spec: mustSpec(t, "GEMM"), Scale: 0.05},
	}
}

// TestMetricsStreamDeterministic pins the assembled stream's contract: it is
// a pure function of the job list — identical for any worker count — ordered
// by job index, and the sampled results are byte-identical to unsampled ones.
func TestMetricsStreamDeterministic(t *testing.T) {
	jobs := metricsJobs(t)
	plain, err := (&Runner{Workers: 1}).Run(jobs)
	if err != nil {
		t.Fatal(err)
	}

	var want bytes.Buffer
	seq := &Runner{Workers: 1, Metrics: &MetricsOptions{W: &want}}
	wantRes, err := seq.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if want.Len() == 0 {
		t.Fatal("sampled run emitted no stream")
	}
	for i := range jobs {
		if !reflect.DeepEqual(plain[i], wantRes[i]) {
			t.Fatalf("job %d: sampled result differs from unsampled", i)
		}
	}

	for _, workers := range []int{2, 8} {
		var got bytes.Buffer
		par := &Runner{Workers: workers, Cache: NewCache(), Metrics: &MetricsOptions{W: &got}}
		if _, err := par.Run(jobs); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want.Bytes(), got.Bytes()) {
			t.Fatalf("workers=%d: stream differs from sequential (%d vs %d bytes)",
				workers, got.Len(), want.Len())
		}
	}

	// Records arrive grouped in job order: all of job 0's config first, then
	// job 1's, never interleaved.
	var seen []string
	for _, line := range strings.Split(strings.TrimSpace(want.String()), "\n") {
		var rec struct {
			Config string `json:"config"`
		}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("unparseable NDJSON line %q: %v", line, err)
		}
		if n := len(seen); n == 0 || seen[n-1] != rec.Config {
			seen = append(seen, rec.Config)
		}
	}
	wantOrder := []string{jobs[0].Config.Name, jobs[1].Config.Name}
	if !reflect.DeepEqual(seen, wantOrder) {
		t.Fatalf("stream config order %v, want %v", seen, wantOrder)
	}
}

// TestMetricsCacheKeys asserts the sampling cache semantics: a warm
// unsampled cache does not suppress sampling (distinct keys), every job slot
// streams even when the list repeats a simulation, and re-running the same
// list against the warm sampled cache emits nothing new.
func TestMetricsCacheKeys(t *testing.T) {
	base := metricsJobs(t)
	jobs := append(append([]Job{}, base...), base[0]) // duplicate job 0 at index 2
	cache := NewCache()

	// Warm the cache without sampling.
	if _, err := (&Runner{Workers: 2, Cache: cache}).Run(jobs); err != nil {
		t.Fatal(err)
	}

	var out bytes.Buffer
	r := &Runner{Workers: 2, Cache: cache, Metrics: &MetricsOptions{W: &out}}
	if _, err := r.Run(jobs); err != nil {
		t.Fatal(err)
	}
	if out.Len() == 0 {
		t.Fatal("warm unsampled cache suppressed the metrics stream")
	}

	// The duplicate occupies its own slot, so its stream appears twice: the
	// per-config record counts reflect 2x the duplicated config.
	counts := map[string]int{}
	for _, line := range strings.Split(strings.TrimSpace(out.String()), "\n") {
		var rec struct {
			Config string `json:"config"`
		}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatal(err)
		}
		counts[rec.Config]++
	}
	dup, other := jobs[0].Config.Name, jobs[1].Config.Name
	if counts[dup] != 2*counts[other] {
		t.Fatalf("duplicated job's config has %d records, other %d; want exactly 2x",
			counts[dup], counts[other])
	}

	// Same list, warm sampled cache: all slots hit, nothing streams again.
	prev := out.Len()
	if _, err := r.Run(jobs); err != nil {
		t.Fatal(err)
	}
	if out.Len() != prev {
		t.Fatalf("warm sampled re-run appended %d bytes; want 0", out.Len()-prev)
	}
}

// TestMetricsCSVSingleHeader pins that one CSV header serves the whole
// stream, even across multiple Run calls sharing the options value.
func TestMetricsCSVSingleHeader(t *testing.T) {
	jobs := metricsJobs(t)
	var out bytes.Buffer
	mo := &MetricsOptions{W: &out, CSV: true, Interval: 8192}
	r := &Runner{Workers: 2, Metrics: mo}
	if _, err := r.Run(jobs[:1]); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(jobs[1:]); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if lines[0] != metrics.CSVHeader {
		t.Fatalf("first line %q, want the CSV header", lines[0])
	}
	headers := 0
	for _, l := range lines {
		if l == metrics.CSVHeader {
			headers++
		}
	}
	if headers != 1 {
		t.Fatalf("stream contains %d header rows, want 1", headers)
	}
	if len(lines) < 3 {
		t.Fatalf("CSV stream has only %d lines", len(lines))
	}
}
