package runner

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"mcmgpu/internal/config"
	"mcmgpu/internal/workload"
)

// testJobs builds a small multi-config, multi-workload job list.
func testJobs(t *testing.T) []Job {
	t.Helper()
	specs := []*workload.Spec{
		mustSpec(t, "CFD"), mustSpec(t, "GEMM"), mustSpec(t, "NW"),
	}
	cfgs := []*config.Config{
		config.BaselineMCM(), config.OptimizedMCM(), config.Monolithic(64),
	}
	var jobs []Job
	for _, c := range cfgs {
		for _, s := range specs {
			jobs = append(jobs, Job{Config: c, Spec: s, Scale: 0.05})
		}
	}
	return jobs
}

func mustSpec(t *testing.T, name string) *workload.Spec {
	t.Helper()
	s, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestParallelMatchesSequential is the layer's correctness contract: the
// result list is a pure function of the job list, independent of worker
// count and of whether a cache is attached.
func TestParallelMatchesSequential(t *testing.T) {
	jobs := testJobs(t)
	seq := &Runner{Workers: 1}
	want, err := seq.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		for _, cache := range []*Cache{nil, NewCache()} {
			par := &Runner{Workers: workers, Cache: cache}
			got, err := par.Run(jobs)
			if err != nil {
				t.Fatal(err)
			}
			for i := range jobs {
				if !reflect.DeepEqual(want[i], got[i]) {
					t.Fatalf("workers=%d cache=%v: job %d (%s on %s) diverged:\nseq: %+v\npar: %+v",
						workers, cache != nil, i, jobs[i].Spec.Name, jobs[i].Config.Name, want[i], got[i])
				}
			}
		}
	}
}

// TestCacheAccounting asserts the memoization contract: a second identical
// suite run performs zero simulations.
func TestCacheAccounting(t *testing.T) {
	jobs := testJobs(t)
	cache := NewCache()
	r := &Runner{Workers: 4, Cache: cache}
	first, err := r.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	s := cache.Stats()
	if s.Simulations() != uint64(len(jobs)) || s.Hits != 0 {
		t.Fatalf("after first run: %+v, want %d simulations, 0 hits", s, len(jobs))
	}
	second, err := r.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	s = cache.Stats()
	if s.Simulations() != uint64(len(jobs)) {
		t.Fatalf("second identical run simulated: %+v, want simulations to stay %d", s, len(jobs))
	}
	if s.Hits != uint64(len(jobs)) {
		t.Fatalf("second run hits = %d, want %d", s.Hits, len(jobs))
	}
	if s.Entries != len(jobs) {
		t.Fatalf("entries = %d, want %d", s.Entries, len(jobs))
	}
	for i := range jobs {
		if !reflect.DeepEqual(first[i], second[i]) {
			t.Fatalf("cached result %d differs from original", i)
		}
		if first[i] == second[i] {
			t.Fatalf("cache returned an aliased pointer for job %d", i)
		}
	}
	cache.Reset()
	if s := cache.Stats(); s.Entries != 0 || s.Hits != 0 || s.Misses != 0 {
		t.Fatalf("after Reset: %+v, want all zero", s)
	}
}

// TestCacheIgnoresConfigName asserts renaming a preset (as the experiment
// drivers do for display) still hits the cache, while changing an
// architectural parameter misses.
func TestCacheIgnoresConfigName(t *testing.T) {
	spec := mustSpec(t, "CFD")
	cache := NewCache()
	r := &Runner{Workers: 1, Cache: cache}
	a := config.BaselineMCM()
	b := config.BaselineMCM()
	b.Name = "renamed-for-display"
	c := config.BaselineMCM()
	c.Link.GBps = 384
	for _, cfg := range []*config.Config{a, b, c} {
		if _, err := r.Run([]Job{{Config: cfg, Spec: spec, Scale: 0.05}}); err != nil {
			t.Fatal(err)
		}
	}
	s := cache.Stats()
	if s.Simulations() != 2 || s.Hits != 1 {
		t.Fatalf("stats = %+v, want 2 simulations (baseline + changed link) and 1 hit (rename)", s)
	}
}

// TestDuplicateJobsSingleFlight asserts concurrent duplicates of one key
// coalesce onto a single simulation.
func TestDuplicateJobsSingleFlight(t *testing.T) {
	spec := mustSpec(t, "NW")
	cfg := config.BaselineMCM()
	jobs := make([]Job, 16)
	for i := range jobs {
		jobs[i] = Job{Config: cfg, Spec: spec, Scale: 0.05}
	}
	cache := NewCache()
	r := &Runner{Workers: 8, Cache: cache}
	res, err := r.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if s := cache.Stats(); s.Simulations() != 1 {
		t.Fatalf("16 duplicate jobs ran %d simulations, want 1 (stats %+v)", s.Simulations(), s)
	}
	for i := 1; i < len(res); i++ {
		if !reflect.DeepEqual(res[0], res[i]) {
			t.Fatalf("duplicate job %d returned a different result", i)
		}
	}
}

// TestErrorPropagation asserts one failing job surfaces the lowest-indexed
// error, annotated with workload and config names, for any worker count.
func TestErrorPropagation(t *testing.T) {
	spec := mustSpec(t, "CFD")
	bad := config.BaselineMCM()
	bad.Name = "bad-config"
	bad.Modules = 0 // fails Validate inside core.New
	jobs := testJobs(t)
	jobs = append(jobs[:4:4], append([]Job{{Config: bad, Spec: spec, Scale: 0.05}}, jobs[4:]...)...)
	for _, workers := range []int{1, 4} {
		r := &Runner{Workers: workers}
		res, err := r.Run(jobs)
		if err == nil {
			t.Fatalf("workers=%d: failing job did not surface an error", workers)
		}
		if res != nil {
			t.Fatalf("workers=%d: results returned alongside error", workers)
		}
		if !strings.Contains(err.Error(), "CFD on bad-config") {
			t.Fatalf("workers=%d: error %q does not name the failing job", workers, err)
		}
	}
}

// TestErrorsAreMemoized asserts a failing key is not retried.
func TestErrorsAreMemoized(t *testing.T) {
	spec := mustSpec(t, "CFD")
	bad := config.BaselineMCM()
	bad.Modules = 0
	cache := NewCache()
	r := &Runner{Workers: 1, Cache: cache}
	var errs [2]error
	for i := range errs {
		_, errs[i] = r.Run([]Job{{Config: bad, Spec: spec, Scale: 0.05}})
		if errs[i] == nil {
			t.Fatal("bad config did not error")
		}
	}
	if !errors.Is(errs[1], errors.Unwrap(errs[0])) && errs[0].Error() != errs[1].Error() {
		t.Fatalf("memoized error differs: %v vs %v", errs[0], errs[1])
	}
	if s := cache.Stats(); s.Misses != 1 || s.Hits != 1 {
		t.Fatalf("stats = %+v, want the failure simulated once and memoized", s)
	}
}

// TestZeroValueRunner asserts the zero value works: GOMAXPROCS workers, no
// cache, empty job list allowed.
func TestZeroValueRunner(t *testing.T) {
	var r Runner
	res, err := r.Run(nil)
	if err != nil || len(res) != 0 {
		t.Fatalf("empty run: %v, %v", res, err)
	}
	got, err := r.Run([]Job{{Config: config.BaselineMCM(), Spec: mustSpec(t, "NW"), Scale: 0.05}})
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Cycles == 0 {
		t.Fatal("zero-value runner produced an empty result")
	}
}

// TestRunSuite asserts the map form keys by workload name.
func TestRunSuite(t *testing.T) {
	specs := []*workload.Spec{mustSpec(t, "CFD"), mustSpec(t, "GEMM")}
	r := &Runner{Workers: 2}
	out, err := r.RunSuite(config.BaselineMCM(), specs, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || out["CFD"] == nil || out["GEMM"] == nil {
		t.Fatalf("RunSuite map = %v", out)
	}
	if out["CFD"].Workload != "CFD" {
		t.Fatalf("result identity = %q, want CFD", out["CFD"].Workload)
	}
}
