package runner

import (
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"

	"mcmgpu/internal/audit"
	"mcmgpu/internal/config"
	"mcmgpu/internal/core"
	"mcmgpu/internal/faultinject"
	"mcmgpu/internal/workload"
)

// testJobs builds a small multi-config, multi-workload job list.
func testJobs(t *testing.T) []Job {
	t.Helper()
	specs := []*workload.Spec{
		mustSpec(t, "CFD"), mustSpec(t, "GEMM"), mustSpec(t, "NW"),
	}
	cfgs := []*config.Config{
		config.BaselineMCM(), config.OptimizedMCM(), config.MustMonolithic(64),
	}
	var jobs []Job
	for _, c := range cfgs {
		for _, s := range specs {
			jobs = append(jobs, Job{Config: c, Spec: s, Scale: 0.05})
		}
	}
	return jobs
}

func mustSpec(t *testing.T, name string) *workload.Spec {
	t.Helper()
	s, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestParallelMatchesSequential is the layer's correctness contract: the
// result list is a pure function of the job list, independent of worker
// count and of whether a cache is attached.
func TestParallelMatchesSequential(t *testing.T) {
	jobs := testJobs(t)
	seq := &Runner{Workers: 1}
	want, err := seq.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		for _, cache := range []*Cache{nil, NewCache()} {
			par := &Runner{Workers: workers, Cache: cache}
			got, err := par.Run(jobs)
			if err != nil {
				t.Fatal(err)
			}
			for i := range jobs {
				if !reflect.DeepEqual(want[i], got[i]) {
					t.Fatalf("workers=%d cache=%v: job %d (%s on %s) diverged:\nseq: %+v\npar: %+v",
						workers, cache != nil, i, jobs[i].Spec.Name, jobs[i].Config.Name, want[i], got[i])
				}
			}
		}
	}
}

// TestCacheAccounting asserts the memoization contract: a second identical
// suite run performs zero simulations.
func TestCacheAccounting(t *testing.T) {
	jobs := testJobs(t)
	cache := NewCache()
	r := &Runner{Workers: 4, Cache: cache}
	first, err := r.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	s := cache.Stats()
	if s.Simulations() != uint64(len(jobs)) || s.Hits != 0 {
		t.Fatalf("after first run: %+v, want %d simulations, 0 hits", s, len(jobs))
	}
	second, err := r.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	s = cache.Stats()
	if s.Simulations() != uint64(len(jobs)) {
		t.Fatalf("second identical run simulated: %+v, want simulations to stay %d", s, len(jobs))
	}
	if s.Hits != uint64(len(jobs)) {
		t.Fatalf("second run hits = %d, want %d", s.Hits, len(jobs))
	}
	if s.Entries != len(jobs) {
		t.Fatalf("entries = %d, want %d", s.Entries, len(jobs))
	}
	for i := range jobs {
		if !reflect.DeepEqual(first[i], second[i]) {
			t.Fatalf("cached result %d differs from original", i)
		}
		if first[i] == second[i] {
			t.Fatalf("cache returned an aliased pointer for job %d", i)
		}
	}
	cache.Reset()
	if s := cache.Stats(); s.Entries != 0 || s.Hits != 0 || s.Misses != 0 {
		t.Fatalf("after Reset: %+v, want all zero", s)
	}
}

// TestCacheIgnoresConfigName asserts renaming a preset (as the experiment
// drivers do for display) still hits the cache, while changing an
// architectural parameter misses.
func TestCacheIgnoresConfigName(t *testing.T) {
	spec := mustSpec(t, "CFD")
	cache := NewCache()
	r := &Runner{Workers: 1, Cache: cache}
	a := config.BaselineMCM()
	b := config.BaselineMCM()
	b.Name = "renamed-for-display"
	c := config.BaselineMCM()
	c.Link.GBps = 384
	for _, cfg := range []*config.Config{a, b, c} {
		if _, err := r.Run([]Job{{Config: cfg, Spec: spec, Scale: 0.05}}); err != nil {
			t.Fatal(err)
		}
	}
	s := cache.Stats()
	if s.Simulations() != 2 || s.Hits != 1 {
		t.Fatalf("stats = %+v, want 2 simulations (baseline + changed link) and 1 hit (rename)", s)
	}
}

// TestDuplicateJobsSingleFlight asserts concurrent duplicates of one key
// coalesce onto a single simulation.
func TestDuplicateJobsSingleFlight(t *testing.T) {
	spec := mustSpec(t, "NW")
	cfg := config.BaselineMCM()
	jobs := make([]Job, 16)
	for i := range jobs {
		jobs[i] = Job{Config: cfg, Spec: spec, Scale: 0.05}
	}
	cache := NewCache()
	r := &Runner{Workers: 8, Cache: cache}
	res, err := r.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if s := cache.Stats(); s.Simulations() != 1 {
		t.Fatalf("16 duplicate jobs ran %d simulations, want 1 (stats %+v)", s.Simulations(), s)
	}
	for i := 1; i < len(res); i++ {
		if !reflect.DeepEqual(res[0], res[i]) {
			t.Fatalf("duplicate job %d returned a different result", i)
		}
	}
}

// TestErrorPropagation asserts one failing job surfaces a JobErrors
// aggregate naming the failing job, while every other job still returns its
// result (the collect-errors default), for any worker count.
func TestErrorPropagation(t *testing.T) {
	spec := mustSpec(t, "CFD")
	bad := config.BaselineMCM()
	bad.Name = "bad-config"
	bad.Modules = 0 // fails Validate inside core.New
	jobs := testJobs(t)
	jobs = append(jobs[:4:4], append([]Job{{Config: bad, Spec: spec, Scale: 0.05}}, jobs[4:]...)...)
	for _, workers := range []int{1, 4} {
		r := &Runner{Workers: workers}
		res, err := r.Run(jobs)
		if err == nil {
			t.Fatalf("workers=%d: failing job did not surface an error", workers)
		}
		if !strings.Contains(err.Error(), "CFD on bad-config") {
			t.Fatalf("workers=%d: error %q does not name the failing job", workers, err)
		}
		var jerrs JobErrors
		if !errors.As(err, &jerrs) {
			t.Fatalf("workers=%d: error %T is not JobErrors", workers, err)
		}
		if len(jerrs) != 1 || jerrs[0].Index != 4 {
			t.Fatalf("workers=%d: JobErrors = %v, want exactly job 4", workers, jerrs)
		}
		for i := range jobs {
			if i == 4 {
				if res[i] != nil {
					t.Fatalf("workers=%d: failed job %d has a result", workers, i)
				}
				continue
			}
			if res[i] == nil {
				t.Fatalf("workers=%d: healthy job %d lost its result to an unrelated failure", workers, i)
			}
		}
	}
}

// TestFailFastStopsEarly asserts FailFast mode still returns an error naming
// the failing job and does not require draining the whole job list.
func TestFailFastStopsEarly(t *testing.T) {
	spec := mustSpec(t, "CFD")
	bad := config.BaselineMCM()
	bad.Name = "bad-config"
	bad.Modules = 0
	jobs := append([]Job{{Config: bad, Spec: spec, Scale: 0.05}}, testJobs(t)...)
	r := &Runner{Workers: 1, FailFast: true}
	_, err := r.Run(jobs)
	if err == nil {
		t.Fatal("FailFast run with a failing job returned nil error")
	}
	if !strings.Contains(err.Error(), "CFD on bad-config") {
		t.Fatalf("error %q does not name the failing job", err)
	}
}

// TestErrorsAreMemoized asserts a failing key is not retried.
func TestErrorsAreMemoized(t *testing.T) {
	spec := mustSpec(t, "CFD")
	bad := config.BaselineMCM()
	bad.Modules = 0
	cache := NewCache()
	r := &Runner{Workers: 1, Cache: cache}
	var errs [2]error
	for i := range errs {
		_, errs[i] = r.Run([]Job{{Config: bad, Spec: spec, Scale: 0.05}})
		if errs[i] == nil {
			t.Fatal("bad config did not error")
		}
	}
	if !errors.Is(errs[1], errors.Unwrap(errs[0])) && errs[0].Error() != errs[1].Error() {
		t.Fatalf("memoized error differs: %v vs %v", errs[0], errs[1])
	}
	if s := cache.Stats(); s.Misses != 1 || s.Hits != 1 {
		t.Fatalf("stats = %+v, want the failure simulated once and memoized", s)
	}
}

// TestPanicContainment is the acceptance test for panic recovery: an
// injected panic in one worker's job fails only that job — every other job
// still returns its result — and the error carries the panic value and a
// stack trace.
func TestPanicContainment(t *testing.T) {
	jobs := testJobs(t) // 3 configs x {CFD, GEMM, NW}
	for _, workers := range []int{1, 4} {
		r := &Runner{
			Workers: workers,
			Fault:   faultinject.Plan{Kind: faultinject.Panic, AtEvent: 100, Workload: "GEMM"},
		}
		res, err := r.Run(jobs)
		if err == nil {
			t.Fatalf("workers=%d: injected panics surfaced no error", workers)
		}
		var jerrs JobErrors
		if !errors.As(err, &jerrs) {
			t.Fatalf("workers=%d: error %T is not JobErrors", workers, err)
		}
		if len(jerrs) != 3 { // GEMM on each of the 3 configs
			t.Fatalf("workers=%d: %d failed jobs, want the 3 GEMM runs: %v", workers, len(jerrs), jerrs)
		}
		for _, je := range jerrs {
			if je.Workload != "GEMM" {
				t.Errorf("workers=%d: job %q failed; only GEMM carries the fault", workers, je.Workload)
			}
			var pe *PanicError
			if !errors.As(je, &pe) {
				t.Fatalf("workers=%d: %v does not unwrap to a *PanicError", workers, je)
			}
			if _, ok := pe.Value.(faultinject.Injected); !ok {
				t.Errorf("workers=%d: panic value %T, want faultinject.Injected", workers, pe.Value)
			}
			if !strings.Contains(pe.Stack, "safeRun") {
				t.Errorf("workers=%d: PanicError stack does not show the recovery site", workers)
			}
		}
		for i, j := range jobs {
			if j.Spec.Name == "GEMM" {
				if res[i] != nil {
					t.Errorf("workers=%d: panicked job %d has a result", workers, i)
				}
			} else if res[i] == nil {
				t.Errorf("workers=%d: healthy job %d (%s) lost its result to another job's panic",
					workers, i, j.Spec.Name)
			}
		}
	}
}

// TestTransientErrorsNotMemoized asserts a wall-deadline failure is evicted
// from the cache, so a later run without the deadline simulates fresh
// instead of replaying the stale failure.
func TestTransientErrorsNotMemoized(t *testing.T) {
	spec := mustSpec(t, "CFD")
	cfg := config.BaselineMCM()
	cache := NewCache()
	expired := &Runner{Workers: 1, Cache: cache,
		Limits: core.RunOptions{WallDeadline: time.Now().Add(-time.Second), CheckEvery: 64}}
	if _, err := expired.Run([]Job{{Config: cfg, Spec: spec, Scale: 0.05}}); err == nil {
		t.Fatal("expired deadline did not fail the job")
	}
	if s := cache.Stats(); s.Entries != 0 {
		t.Fatalf("transient failure left %d cache entries, want eviction", s.Entries)
	}
	fresh := &Runner{Workers: 1, Cache: cache}
	res, err := fresh.Run([]Job{{Config: cfg, Spec: spec, Scale: 0.05}})
	if err != nil {
		t.Fatalf("retry after transient failure: %v", err)
	}
	if res[0] == nil || res[0].Cycles == 0 {
		t.Fatal("retry after transient failure produced no result")
	}
}

// TestBudgetErrorsMemoizedSeparately asserts a deterministic budget failure
// memoizes under its own key: the failure is not re-simulated, and the
// unbounded run of the same job is untouched by it.
func TestBudgetErrorsMemoizedSeparately(t *testing.T) {
	spec := mustSpec(t, "CFD")
	cfg := config.BaselineMCM()
	cache := NewCache()
	bounded := &Runner{Workers: 1, Cache: cache,
		Limits: core.RunOptions{MaxEvents: 1000, CheckEvery: 64}}
	for i := 0; i < 2; i++ {
		_, err := bounded.Run([]Job{{Config: cfg, Spec: spec, Scale: 0.05}})
		var se *core.SimError
		if !errors.As(err, &se) || se.Kind != core.KindMaxEvents {
			t.Fatalf("run %d: error %v, want a max-events SimError", i, err)
		}
	}
	if s := cache.Stats(); s.Misses != 1 || s.Hits != 1 {
		t.Fatalf("stats = %+v, want the budget failure simulated once and memoized", cache.Stats())
	}
	free := &Runner{Workers: 1, Cache: cache}
	res, err := free.Run([]Job{{Config: cfg, Spec: spec, Scale: 0.05}})
	if err != nil {
		t.Fatalf("unbounded run poisoned by bounded key: %v", err)
	}
	if res[0] == nil {
		t.Fatal("unbounded run returned no result")
	}
}

// TestZeroValueRunner asserts the zero value works: GOMAXPROCS workers, no
// cache, empty job list allowed.
func TestZeroValueRunner(t *testing.T) {
	var r Runner
	res, err := r.Run(nil)
	if err != nil || len(res) != 0 {
		t.Fatalf("empty run: %v, %v", res, err)
	}
	got, err := r.Run([]Job{{Config: config.BaselineMCM(), Spec: mustSpec(t, "NW"), Scale: 0.05}})
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Cycles == 0 {
		t.Fatal("zero-value runner produced an empty result")
	}
}

// TestRunSuite asserts the map form keys by workload name.
func TestRunSuite(t *testing.T) {
	specs := []*workload.Spec{mustSpec(t, "CFD"), mustSpec(t, "GEMM")}
	r := &Runner{Workers: 2}
	out, err := r.RunSuite(config.BaselineMCM(), specs, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || out["CFD"] == nil || out["GEMM"] == nil {
		t.Fatalf("RunSuite map = %v", out)
	}
	if out["CFD"].Workload != "CFD" {
		t.Fatalf("result identity = %q, want CFD", out["CFD"].Workload)
	}
}

// TestAuditViolationFlowsThroughJobError proves a broken conservation law
// surfaces as a structured *audit.Violation reachable through the runner's
// JobError aggregate with plain errors.As — the plumbing CLIs and tests rely
// on to attribute an ERR cell to a specific invariant.
func TestAuditViolationFlowsThroughJobError(t *testing.T) {
	r := &Runner{
		Workers: 2,
		Limits:  core.RunOptions{Audit: true, CheckEvery: 64},
		Fault: faultinject.Plan{
			Kind:     faultinject.CorruptCounter,
			Target:   faultinject.TargetLineReads,
			AtEvent:  5_000,
			Workload: "GEMM",
		},
	}
	jobs := []Job{
		{Config: config.BaselineMCM(), Spec: mustSpec(t, "CFD"), Scale: 0.05},
		{Config: config.BaselineMCM(), Spec: mustSpec(t, "GEMM"), Scale: 0.05},
	}
	results, err := r.Run(jobs)
	if err == nil {
		t.Fatal("corrupted audited job did not fail")
	}
	if results[0] == nil {
		t.Error("unfaulted job was dragged down by its neighbor's violation")
	}
	if results[1] != nil {
		t.Error("corrupted job still produced a result")
	}
	var je *JobError
	if !errors.As(err, &je) || je.Workload != "GEMM" {
		t.Fatalf("error does not identify the corrupted job: %v", err)
	}
	var v *audit.Violation
	if !errors.As(err, &v) {
		t.Fatalf("no *audit.Violation in the error chain: %v", err)
	}
	if v.Invariant != "l1-flow" {
		t.Errorf("violation names invariant %q, want l1-flow", v.Invariant)
	}
	var se *core.SimError
	if !errors.As(err, &se) || se.Kind != core.KindInvariant {
		t.Fatalf("no KindInvariant SimError in the chain: %v", err)
	}
}

// TestAuditedJobsKeyedSeparately asserts audited and unaudited runs of the
// same job never share a cache entry: a violation memoized under the audited
// key must not poison the unaudited key, and vice versa.
func TestAuditedJobsKeyedSeparately(t *testing.T) {
	// MCMGPU_AUDIT=1 (the CI audited pass) would audit the "plain" runner
	// too, legitimately collapsing the two keys; pin it off for this test.
	t.Setenv(audit.EnvVar, "")
	cache := NewCache()
	job := Job{Config: config.BaselineMCM(), Spec: mustSpec(t, "NW"), Scale: 0.05}
	plain := &Runner{Workers: 1, Cache: cache}
	audited := &Runner{Workers: 1, Cache: cache, Limits: core.RunOptions{Audit: true}}
	if _, err := plain.Run([]Job{job}); err != nil {
		t.Fatal(err)
	}
	if _, err := audited.Run([]Job{job}); err != nil {
		t.Fatal(err)
	}
	if s := cache.Stats(); s.Misses != 2 || s.Entries != 2 {
		t.Fatalf("audited and unaudited runs shared a cache entry: %+v", s)
	}
}
