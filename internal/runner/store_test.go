package runner

import (
	"bytes"
	"reflect"
	"testing"

	"mcmgpu/internal/config"
	"mcmgpu/internal/faultinject"
	"mcmgpu/internal/runstore"
)

func mustStore(t *testing.T, dir string, opts ...runstore.Option) *runstore.Store {
	t.Helper()
	s, err := runstore.Open(dir, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestStoreWarmRunZeroSimulations is the durability contract end to end: a
// second process (modeled by a fresh store handle and a fresh memo cache
// over the same directory) re-running an identical job list performs zero
// simulations — every cell is a verified store hit — and returns results
// deep-equal to the cold run's.
func TestStoreWarmRunZeroSimulations(t *testing.T) {
	jobs := testJobs(t)
	dir := t.TempDir()

	cold := &Runner{Workers: 4, Cache: NewCache(), Store: mustStore(t, dir)}
	want, err := cold.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if st := cold.Store.Stats(); st.Puts != uint64(len(jobs)) || st.Hits != 0 {
		t.Fatalf("cold run store stats: %+v, want %d puts and 0 hits", st, len(jobs))
	}

	warm := &Runner{Workers: 4, Cache: NewCache(), Store: mustStore(t, dir)}
	got, err := warm.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("warm-store results differ from cold compute")
	}
	st := warm.Store.Stats()
	if st.Hits != uint64(len(jobs)) || st.Misses != 0 || st.Puts != 0 {
		t.Fatalf("warm run was not all store hits: %+v", st)
	}
}

// TestStoreMetricsReplayByteIdentical asserts a warm-store run with metrics
// armed emits a sample stream byte-identical to the cold run's: store hits
// replay the persisted stream instead of staying silent the way in-process
// cache hits do.
func TestStoreMetricsReplayByteIdentical(t *testing.T) {
	jobs := testJobs(t)
	dir := t.TempDir()

	var coldStream bytes.Buffer
	cold := &Runner{
		Workers: 2, Cache: NewCache(), Store: mustStore(t, dir),
		Metrics: &MetricsOptions{W: &coldStream},
	}
	want, err := cold.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if coldStream.Len() == 0 {
		t.Fatal("cold run emitted no metrics (vacuous test)")
	}

	var warmStream bytes.Buffer
	warm := &Runner{
		Workers: 2, Cache: NewCache(), Store: mustStore(t, dir),
		Metrics: &MetricsOptions{W: &warmStream},
	}
	got, err := warm.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("warm results differ from cold")
	}
	if !bytes.Equal(warmStream.Bytes(), coldStream.Bytes()) {
		t.Fatalf("warm metrics stream is not byte-identical to cold compute:\ncold %d bytes, warm %d bytes",
			coldStream.Len(), warmStream.Len())
	}
	if st := warm.Store.Stats(); st.Hits == 0 || st.Puts != 0 {
		t.Fatalf("warm metrics run did not serve from the store: %+v", st)
	}
}

// TestStoreEIODegradesToCompute proves the degrade-to-compute path: with
// every store operation failing (store-eio from op 0), the run still
// succeeds with correct results — store failures cost durability, never
// correctness.
func TestStoreEIODegradesToCompute(t *testing.T) {
	jobs := testJobs(t)
	want, err := (&Runner{Workers: 1}).Run(jobs)
	if err != nil {
		t.Fatal(err)
	}

	// Populate the directory healthily so the sick handle's Gets reach the
	// blob I/O the eio plan intercepts (an empty store would just miss).
	dir := t.TempDir()
	if _, err := (&Runner{Workers: 1, Cache: NewCache(), Store: mustStore(t, dir)}).Run(jobs); err != nil {
		t.Fatal(err)
	}

	sick := mustStore(t, dir, runstore.WithFault(faultinject.Plan{Kind: faultinject.StoreEIO}))
	r := &Runner{Workers: 4, Cache: NewCache(), Store: sick}
	got, err := r.Run(jobs)
	if err != nil {
		t.Fatalf("run failed on a sick store: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("degraded run results differ from plain compute")
	}
	st := sick.Stats()
	if st.GetErrors == 0 || st.PutErrors == 0 {
		t.Fatalf("eio plan never fired (vacuous test): %+v", st)
	}
	if st.Hits != 0 {
		t.Fatalf("sick store served a result through injected EIO: %+v", st)
	}
}

// TestStoreCorruptBlobRecomputes proves a store poisoned by bit flips is
// never believed: the warm run detects the damage, quarantines it, and
// recomputes — results identical to plain compute, zero corrupted reads.
func TestStoreCorruptBlobRecomputes(t *testing.T) {
	jobs := testJobs(t)[:3]
	dir := t.TempDir()
	want, err := (&Runner{Workers: 1}).Run(jobs)
	if err != nil {
		t.Fatal(err)
	}

	// Populate the store through a corrupting writer.
	bad := mustStore(t, dir, runstore.WithFault(faultinject.Plan{Kind: faultinject.StoreCorruptBlob}))
	if _, err := (&Runner{Workers: 1, Cache: NewCache(), Store: bad}).Run(jobs); err != nil {
		t.Fatal(err)
	}

	// A fresh process over the damaged directory must recompute everything.
	clean := mustStore(t, dir)
	r := &Runner{Workers: 2, Cache: NewCache(), Store: clean}
	got, err := r.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("corrupted store leaked into results")
	}
	if st := clean.Stats(); st.Corrupt == 0 {
		t.Fatalf("corruption never detected (vacuous test): %+v", st)
	}
}

// TestStoreNeverPersistsErrors mirrors the memo cache's transient-eviction
// parity on disk: failed jobs — deterministic or otherwise — must leave no
// store entry, so no future process can be served a stale failure.
func TestStoreNeverPersistsErrors(t *testing.T) {
	bad := config.BaselineMCM()
	bad.Name = "bad-config"
	bad.Modules = 0 // fails Validate inside core.New
	store := mustStore(t, t.TempDir())
	r := &Runner{Workers: 1, Cache: NewCache(), Store: store}
	if _, err := r.Run([]Job{{Config: bad, Spec: mustSpec(t, "CFD"), Scale: 0.05}}); err == nil {
		t.Fatal("bad config did not fail")
	}
	if n := store.Len(); n != 0 {
		t.Fatalf("failed job persisted %d store entries", n)
	}
}

// TestStoreKeySharedAcrossSlots pins the key split: the store key is slot
// independent (every occurrence of one simulation maps to one entry) while
// sampled jobs still get per-slot memo keys.
func TestStoreKeySharedAcrossSlots(t *testing.T) {
	job := Job{Config: config.BaselineMCM(), Spec: mustSpec(t, "CFD"), Scale: 0.05}
	plain := &Runner{}
	if plain.jobKey(0, job) != plain.StoreKey(job) {
		t.Fatal("unsampled memo key diverged from store key")
	}
	sampled := &Runner{Metrics: &MetricsOptions{W: &bytes.Buffer{}}}
	if sampled.StoreKey(job) == plain.StoreKey(job) {
		t.Fatal("sampling interval missing from store key")
	}
	if sampled.jobKey(0, job) == sampled.jobKey(1, job) {
		t.Fatal("sampled slots coalesced onto one memo key")
	}
	if k := sampled.jobKey(3, job); k != sampled.StoreKey(job)+"|job:3" {
		t.Fatalf("memo key %q is not store key + slot suffix", k)
	}
}
