// Package runner executes simulation jobs across a pool of goroutines and
// memoizes their results process-wide.
//
// Every simulated Machine is fully independent — one event heap, no shared
// mutable state — so a (config, workload, scale) job list is embarrassingly
// parallel. The runner fans jobs across workers and assembles results by job
// index, which makes the output a pure function of the job list: parallel
// execution is byte-identical to sequential execution. That determinism is
// the correctness contract of this layer, asserted by the package tests and
// by TestExperimentsDeterministicAcrossWorkers at the facade.
//
// The optional Cache memoizes results under a canonical fingerprint of the
// full architectural configuration plus the workload spec and scale, so an
// experiment sweep that revisits a system (every figure driver re-runs the
// baseline MCM suite) performs each distinct simulation exactly once per
// process. Entries are single-flight: concurrent requests for the same key
// share one simulation rather than racing to duplicate it.
package runner

import (
	"bytes"
	"fmt"
	"io"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"mcmgpu/internal/audit"
	"mcmgpu/internal/config"
	"mcmgpu/internal/core"
	"mcmgpu/internal/engine"
	"mcmgpu/internal/faultinject"
	"mcmgpu/internal/metrics"
	"mcmgpu/internal/runstore"
	"mcmgpu/internal/workload"
)

// Job is one simulation: a workload on a machine at a given scale.
type Job struct {
	Config *config.Config
	Spec   *workload.Spec
	// Scale multiplies per-warp work and footprints; values <= 0 or == 1
	// run the spec at full size.
	Scale float64
}

// key returns the memoization key: the architectural fingerprint of the
// machine (Name excluded), the full spec fingerprint, and the scale.
func (j Job) key() string {
	scale := j.Scale
	if scale <= 0 {
		scale = 1
	}
	return fmt.Sprintf("%s|%s|%g", j.Config.Fingerprint(), j.Spec.Fingerprint(), scale)
}

// run performs the simulation under the given bounds. The config is cloned
// so concurrent jobs sharing one *Config can never observe each other
// through it.
func (j Job) run(opts core.RunOptions) (*core.Result, error) {
	spec := j.Spec
	if j.Scale > 0 && j.Scale != 1 {
		spec = spec.Scaled(j.Scale)
	}
	m, err := core.New(j.Config.Clone())
	if err != nil {
		return nil, err
	}
	return m.RunWith(spec, opts)
}

// PanicError is a panic recovered from a simulation job, carrying the
// panicking goroutine's stack. A panic is a deterministic property of its
// (config, workload, fault) key, so PanicErrors memoize like any other
// error.
type PanicError struct {
	// Value is the value the job panicked with.
	Value interface{}
	// Stack is the panicking goroutine's stack trace.
	Stack string
}

// Error renders the panic value; the stack is kept out of the one-liner and
// available on the struct.
func (e *PanicError) Error() string { return fmt.Sprintf("panic: %v", e.Value) }

// JobError is one failed job: the job's identity plus the underlying error
// (which may be a *PanicError or a *core.SimError).
type JobError struct {
	// Index is the job's position in the Run job list.
	Index int
	// Workload and Config name the failing job.
	Workload, Config string
	// Err is the underlying failure.
	Err error
}

// Error names the failing job the way the runner always has: "workload on
// config: cause".
func (e *JobError) Error() string {
	return fmt.Sprintf("%s on %s: %v", e.Workload, e.Config, e.Err)
}

// Unwrap exposes the underlying failure to errors.Is/As.
func (e *JobError) Unwrap() error { return e.Err }

// JobErrors aggregates every failed job of one Run call, ordered by job
// index.
type JobErrors []*JobError

// Error summarizes: the lowest-indexed failure, plus a count when there are
// more.
func (es JobErrors) Error() string {
	if len(es) == 0 {
		return "runner: no job errors"
	}
	if len(es) == 1 {
		return es[0].Error()
	}
	return fmt.Sprintf("%s (and %d more failed jobs)", es[0].Error(), len(es)-1)
}

// Unwrap exposes the individual job errors to errors.Is/As.
func (es JobErrors) Unwrap() []error {
	out := make([]error, len(es))
	for i, e := range es {
		out[i] = e
	}
	return out
}

// Runner executes job lists. The zero value runs with GOMAXPROCS workers,
// no memoization, no bounds, and collect-errors semantics.
type Runner struct {
	// Workers is the goroutine pool size; <= 0 means runtime.GOMAXPROCS(0).
	// Workers == 1 is strictly sequential.
	Workers int
	// Cache, when non-nil, memoizes results across Run calls.
	Cache *Cache
	// Store, when non-nil, adds a durable tier under the in-process cache:
	// each job first consults the on-disk content-addressed store (a hit
	// skips the simulation and, when metrics are armed, replays the stored
	// sample stream), and each freshly simulated success is persisted —
	// results only; errors are never stored, mirroring how the memo cache
	// evicts transient failures. Store I/O happens inside the Cache's
	// single-flight slot, so concurrent requests for one key perform at
	// most one store read or write. Store failures degrade to compute: an
	// unreadable entry is a miss (logged by the store), never a job error.
	Store *runstore.Store
	// EstCache, when non-nil, memoizes closed-form estimates across
	// Estimates calls (see estimate.go). Predictions and simulation results
	// never share a cache: the estimate cache is typed to *analytic.Estimate
	// and keys under an "est|" prefix.
	EstCache *EstCache
	// FailFast stops claiming new jobs after the first failure. When false
	// (the default), every job runs and Run returns partial results plus a
	// JobErrors aggregate — one pathological cell degrades to an error
	// instead of aborting the sweep.
	FailFast bool
	// Limits bounds every job (budgets, wall deadline, context); the zero
	// value imposes none. Event/cycle budgets participate in the cache key;
	// wall-clock and cancellation failures are never memoized.
	Limits core.RunOptions
	// Fault is a deterministic fault-injection plan applied to the jobs it
	// matches (see faultinject.Plan.Matches); the zero value injects
	// nothing. Faulted jobs get their own cache keys, so injected failures
	// never contaminate unfaulted results.
	Fault faultinject.Plan
	// Metrics, when non-nil with a writer, attaches a time-series sampler to
	// every job. Each job samples into its own buffer; after all jobs finish
	// the buffers of successful jobs are flushed to Metrics.W in job order,
	// so the stream is identical for any Workers setting. Sampled jobs get
	// per-(key, index) cache entries — mirroring how -audit and fault plans
	// key — so every slot of a job list emits its own stream (duplicates
	// included), while re-running the same list against a warm cache
	// cache-hits and emits nothing rather than replaying streams.
	Metrics *MetricsOptions
}

// MetricsOptions configures per-job time-series sampling (see
// internal/metrics).
type MetricsOptions struct {
	// Interval is the sampling interval in cycles (0 = metrics.DefaultInterval).
	Interval uint64
	// W receives the concatenated streams of all successful jobs, in job
	// order. A nil W disables sampling.
	W io.Writer
	// CSV selects CSV output instead of NDJSON. One header row is written
	// for the whole stream regardless of how many jobs contribute.
	CSV bool

	// wroteHeader tracks the single CSV header across Run calls sharing
	// this options value. Flushing happens on the Run caller's goroutine,
	// so no lock is needed.
	wroteHeader bool
}

// interval returns the effective sampling interval.
func (mo *MetricsOptions) interval() engine.Cycle {
	if mo.Interval > 0 {
		return engine.Cycle(mo.Interval)
	}
	return metrics.DefaultInterval
}

// enabled reports whether sampling is armed.
func (mo *MetricsOptions) enabled() bool { return mo != nil && mo.W != nil }

func (r *Runner) workers() int {
	if r.Workers > 0 {
		return r.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Run executes the jobs and returns results in job order. A failing job
// leaves a nil slot in the results and contributes a *JobError to the
// returned JobErrors aggregate; every other slot is still filled unless
// FailFast cut the run short. A panic in any job (or any subsystem under
// it) is recovered into the job's error — it fails that job only.
func (r *Runner) Run(jobs []Job) ([]*core.Result, error) {
	results := make([]*core.Result, len(jobs))
	errs := make([]error, len(jobs))
	var bufs []*bytes.Buffer
	if r.Metrics.enabled() {
		bufs = make([]*bytes.Buffer, len(jobs))
	}
	n := r.workers()
	if n > len(jobs) {
		n = len(jobs)
	}
	var (
		next   atomic.Int64
		failed atomic.Bool
		wg     sync.WaitGroup
	)
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(jobs) || (r.FailFast && failed.Load()) {
					return
				}
				var buf *bytes.Buffer
				if bufs != nil {
					buf = &bytes.Buffer{}
					bufs[i] = buf
				}
				res, err := r.runJob(i, jobs[i], buf)
				if err != nil {
					errs[i] = err
					failed.Store(true)
					continue
				}
				results[i] = res
			}
		}()
	}
	wg.Wait()
	if bufs != nil {
		if err := r.flushMetrics(bufs, errs); err != nil {
			return results, fmt.Errorf("runner: metrics export: %w", err)
		}
	}
	var jerrs JobErrors
	for i, err := range errs {
		if err != nil {
			jerrs = append(jerrs, &JobError{
				Index:    i,
				Workload: jobs[i].Spec.Name,
				Config:   jobs[i].Config.Name,
				Err:      err,
			})
		}
	}
	if len(jerrs) > 0 {
		return results, jerrs
	}
	return results, nil
}

// opts returns the bounds for one job: the shared limits, plus the fault
// plan when it matches the job's workload, plus a sampler writing to buf
// when metrics are armed.
func (r *Runner) opts(j Job, buf *bytes.Buffer) core.RunOptions {
	opts := r.Limits
	if r.Fault.Matches(j.Spec.Name) {
		opts.Fault = r.Fault
	}
	if buf != nil {
		rec := metrics.NewRecorder(buf, r.Metrics.interval(), r.Metrics.CSV)
		rec.OmitCSVHeader() // the flush phase writes one header for the stream
		opts.Metrics = rec
	}
	return opts
}

// flushMetrics concatenates the per-job sample streams to Metrics.W in job
// order, skipping failed jobs (their streams are partial) and cache hits
// (their buffers are empty — the stream was emitted when the entry was
// populated). Runs on the Run caller's goroutine after all workers join.
func (r *Runner) flushMetrics(bufs []*bytes.Buffer, errs []error) error {
	if r.Metrics.CSV && !r.Metrics.wroteHeader {
		if _, err := io.WriteString(r.Metrics.W, metrics.CSVHeader+"\n"); err != nil {
			return err
		}
		r.Metrics.wroteHeader = true
	}
	for i, buf := range bufs {
		if buf == nil || errs[i] != nil {
			continue
		}
		if _, err := r.Metrics.W.Write(buf.Bytes()); err != nil {
			return err
		}
	}
	return nil
}

// StoreKey is the durable identity of one job under this runner's settings:
// the job's (config, workload, scale) fingerprint extended with whatever
// bounds change the outcome deterministically — event/cycle budgets, a
// matching fault plan, and the invariant auditor (auditing never changes a
// successful result, but it can deterministically turn a corrupted run into
// an error, so audited and unaudited runs must not share entries). When
// metrics are armed the sampling interval joins the key too, because the
// stored artifact then includes the sample stream. Wall deadlines and
// contexts are excluded — their failures depend on wall time, not the key.
//
// This is the key jobs are stored under in a Runner.Store and the key
// cmd/mcmserve derives job IDs from; it deliberately omits the per-slot
// |job:N suffix the in-process memo key carries, so every occurrence of one
// simulation in any job list, in any process, maps to one store entry.
func (r *Runner) StoreKey(j Job) string {
	k := j.key()
	if r.Limits.MaxEvents > 0 || r.Limits.MaxCycles > 0 {
		k = fmt.Sprintf("%s|me%d|mc%d", k, r.Limits.MaxEvents, r.Limits.MaxCycles)
	}
	if r.Fault.Matches(j.Spec.Name) {
		k += "|fault:" + r.Fault.String()
	}
	if r.Limits.Audit || audit.Forced() {
		k += "|audit"
	}
	if r.Metrics.enabled() {
		k += fmt.Sprintf("|metrics:%d", r.Metrics.interval())
	}
	return k
}

// jobKey is the in-process memoization key: StoreKey, plus — for sampled
// jobs only — the job index. The index keeps two occurrences of the same
// simulation in one job list from coalescing onto a single memo entry (each
// must decide independently whether its buffer streams), while repeats of
// the same index across Run calls still cache-hit and emit nothing.
func (r *Runner) jobKey(i int, j Job) string {
	k := r.StoreKey(j)
	if r.Metrics.enabled() {
		k += fmt.Sprintf("|job:%d", i)
	}
	return k
}

// safeRun executes the job with panic containment: a panic from any
// subsystem under the run is recovered into a *PanicError instead of
// killing the worker (and with it the whole sweep).
func safeRun(j Job, opts core.RunOptions) (res *core.Result, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = &PanicError{Value: p, Stack: string(debug.Stack())}
		}
	}()
	return j.run(opts)
}

func (r *Runner) runJob(i int, j Job, buf *bytes.Buffer) (*core.Result, error) {
	opts := r.opts(j, buf)
	run := func() (*core.Result, error) { return safeRun(j, opts) }
	if r.Store != nil {
		run = r.storeTier(r.StoreKey(j), buf, run)
	}
	if r.Cache == nil {
		return run()
	}
	return r.Cache.do(r.jobKey(i, j), run)
}

// storeTier wraps a job's compute function with the durable store: a clean
// hit returns the stored result (replaying its metrics stream into buf so a
// warm process emits the same bytes a cold one would); everything else —
// miss, quarantined entry, or environmental store error — falls through to
// compute, and a successful compute is persisted best-effort. Put failures
// are counted by the store and logged through its logger but never fail the
// job: durability is an optimization, the simulation result is the product.
func (r *Runner) storeTier(key string, buf *bytes.Buffer, run func() (*core.Result, error)) func() (*core.Result, error) {
	return func() (*core.Result, error) {
		if res, stream, ok, err := r.Store.Get(key); err == nil && ok {
			if buf != nil {
				buf.Write(stream)
			}
			return res, nil
		}
		res, err := run()
		if err == nil {
			var stream []byte
			if buf != nil {
				stream = buf.Bytes()
			}
			_ = r.Store.Put(key, res, stream)
		}
		return res, err
	}
}

// RunSuite executes the given workloads on one configuration and returns
// results keyed by workload name. Failed jobs are absent from the map and
// reported through the returned JobErrors, so callers in collect-errors
// mode can render the holes instead of aborting.
func (r *Runner) RunSuite(cfg *config.Config, specs []*workload.Spec, scale float64) (map[string]*core.Result, error) {
	jobs := make([]Job, len(specs))
	for i, s := range specs {
		jobs[i] = Job{Config: cfg, Spec: s, Scale: scale}
	}
	results, err := r.Run(jobs)
	out := make(map[string]*core.Result, len(specs))
	for i, s := range specs {
		if results[i] != nil {
			out[s.Name] = results[i]
		}
	}
	return out, err
}

// Stats reports cache effectiveness.
type Stats struct {
	// Hits counts requests satisfied by (or coalesced onto) an existing
	// entry; Misses counts requests that performed a simulation.
	Hits, Misses uint64
	// Entries is the number of distinct (config, workload, scale) results
	// held.
	Entries int
}

// Simulations returns how many simulations the cache actually executed.
func (s Stats) Simulations() uint64 { return s.Misses }

// Cache is a concurrency-safe, single-flight memoization table for
// simulation results. Results are returned as copies so callers can never
// alias each other through the cache.
type Cache struct {
	mu      sync.Mutex
	entries map[string]*entry
	hits    atomic.Uint64
	misses  atomic.Uint64
}

type entry struct {
	once sync.Once
	res  *core.Result
	err  error
}

// NewCache returns an empty cache.
func NewCache() *Cache {
	return &Cache{entries: map[string]*entry{}}
}

// do returns the memoized result for key, running fn at most once per key.
// Deterministic errors are memoized too: a config that fails validation (or
// deterministically panics, or exhausts an event budget) fails the same way
// on every retry, so re-running it buys nothing. Transient errors — wall
// deadlines and cancellations, whose outcome depends on wall time rather
// than the key — are returned to the requests that coalesced onto them but
// evicted immediately, so a later retry gets a fresh simulation instead of
// a poisoned entry. fn must not panic; the runner's safeRun wrapper
// guarantees this.
func (c *Cache) do(key string, fn func() (*core.Result, error)) (*core.Result, error) {
	c.mu.Lock()
	e, ok := c.entries[key]
	if !ok {
		e = &entry{}
		c.entries[key] = e
	}
	c.mu.Unlock()
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	e.once.Do(func() { e.res, e.err = fn() })
	if e.err != nil {
		if isTransient(e.err) {
			c.mu.Lock()
			// Pointer comparison: only evict this entry, never a fresh
			// replacement another goroutine already installed.
			if c.entries[key] == e {
				delete(c.entries, key)
			}
			c.mu.Unlock()
		}
		return nil, e.err
	}
	out := *e.res
	return &out, nil
}

// isTransient reports whether err depends on wall time rather than on the
// simulation key: wall-deadline trips and context cancellations can succeed
// on retry, so memoizing them would poison the cache. This is the cache's
// view of the shared Classify partition.
func isTransient(err error) bool {
	return !Classify(err).Deterministic()
}

// Stats returns a snapshot of cache effectiveness counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	n := len(c.entries)
	c.mu.Unlock()
	return Stats{Hits: c.hits.Load(), Misses: c.misses.Load(), Entries: n}
}

// Reset discards all entries and zeroes the counters.
func (c *Cache) Reset() {
	c.mu.Lock()
	c.entries = map[string]*entry{}
	c.mu.Unlock()
	c.hits.Store(0)
	c.misses.Store(0)
}

// shared is the process-wide cache used by the experiment drivers: one
// instance so repeated reference suites (the baseline MCM, the 6 TB/s
// reference, the monolithic bounds) are simulated once per process no matter
// how many experiments an invocation runs.
var shared = NewCache()

// Shared returns the process-wide run cache.
func Shared() *Cache { return shared }
