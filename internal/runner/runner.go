// Package runner executes simulation jobs across a pool of goroutines and
// memoizes their results process-wide.
//
// Every simulated Machine is fully independent — one event heap, no shared
// mutable state — so a (config, workload, scale) job list is embarrassingly
// parallel. The runner fans jobs across workers and assembles results by job
// index, which makes the output a pure function of the job list: parallel
// execution is byte-identical to sequential execution. That determinism is
// the correctness contract of this layer, asserted by the package tests and
// by TestExperimentsDeterministicAcrossWorkers at the facade.
//
// The optional Cache memoizes results under a canonical fingerprint of the
// full architectural configuration plus the workload spec and scale, so an
// experiment sweep that revisits a system (every figure driver re-runs the
// baseline MCM suite) performs each distinct simulation exactly once per
// process. Entries are single-flight: concurrent requests for the same key
// share one simulation rather than racing to duplicate it.
package runner

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"mcmgpu/internal/config"
	"mcmgpu/internal/core"
	"mcmgpu/internal/workload"
)

// Job is one simulation: a workload on a machine at a given scale.
type Job struct {
	Config *config.Config
	Spec   *workload.Spec
	// Scale multiplies per-warp work and footprints; values <= 0 or == 1
	// run the spec at full size.
	Scale float64
}

// key returns the memoization key: the architectural fingerprint of the
// machine (Name excluded), the full spec fingerprint, and the scale.
func (j Job) key() string {
	scale := j.Scale
	if scale <= 0 {
		scale = 1
	}
	return fmt.Sprintf("%s|%s|%g", j.Config.Fingerprint(), j.Spec.Fingerprint(), scale)
}

// run performs the simulation. The config is cloned so concurrent jobs
// sharing one *Config can never observe each other through it.
func (j Job) run() (*core.Result, error) {
	spec := j.Spec
	if j.Scale > 0 && j.Scale != 1 {
		spec = spec.Scaled(j.Scale)
	}
	m, err := core.New(j.Config.Clone())
	if err != nil {
		return nil, err
	}
	return m.Run(spec)
}

// Runner executes job lists. The zero value runs with GOMAXPROCS workers and
// no memoization.
type Runner struct {
	// Workers is the goroutine pool size; <= 0 means runtime.GOMAXPROCS(0).
	// Workers == 1 is strictly sequential.
	Workers int
	// Cache, when non-nil, memoizes results across Run calls.
	Cache *Cache
}

func (r *Runner) workers() int {
	if r.Workers > 0 {
		return r.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Run executes the jobs and returns results in job order. On failure it
// returns the error of the lowest-indexed failing job, annotated with the
// workload and config names; remaining unstarted jobs are abandoned.
func (r *Runner) Run(jobs []Job) ([]*core.Result, error) {
	results := make([]*core.Result, len(jobs))
	errs := make([]error, len(jobs))
	n := r.workers()
	if n > len(jobs) {
		n = len(jobs)
	}
	var (
		next   atomic.Int64
		failed atomic.Bool
		wg     sync.WaitGroup
	)
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(jobs) || failed.Load() {
					return
				}
				res, err := r.runJob(jobs[i])
				if err != nil {
					errs[i] = err
					failed.Store(true)
					return
				}
				results[i] = res
			}
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("%s on %s: %w", jobs[i].Spec.Name, jobs[i].Config.Name, err)
		}
	}
	return results, nil
}

func (r *Runner) runJob(j Job) (*core.Result, error) {
	if r.Cache == nil {
		return j.run()
	}
	return r.Cache.do(j.key(), j.run)
}

// RunSuite executes the given workloads on one configuration and returns
// results keyed by workload name.
func (r *Runner) RunSuite(cfg *config.Config, specs []*workload.Spec, scale float64) (map[string]*core.Result, error) {
	jobs := make([]Job, len(specs))
	for i, s := range specs {
		jobs[i] = Job{Config: cfg, Spec: s, Scale: scale}
	}
	results, err := r.Run(jobs)
	if err != nil {
		return nil, err
	}
	out := make(map[string]*core.Result, len(specs))
	for i, s := range specs {
		out[s.Name] = results[i]
	}
	return out, nil
}

// Stats reports cache effectiveness.
type Stats struct {
	// Hits counts requests satisfied by (or coalesced onto) an existing
	// entry; Misses counts requests that performed a simulation.
	Hits, Misses uint64
	// Entries is the number of distinct (config, workload, scale) results
	// held.
	Entries int
}

// Simulations returns how many simulations the cache actually executed.
func (s Stats) Simulations() uint64 { return s.Misses }

// Cache is a concurrency-safe, single-flight memoization table for
// simulation results. Results are returned as copies so callers can never
// alias each other through the cache.
type Cache struct {
	mu      sync.Mutex
	entries map[string]*entry
	hits    atomic.Uint64
	misses  atomic.Uint64
}

type entry struct {
	once sync.Once
	res  *core.Result
	err  error
}

// NewCache returns an empty cache.
func NewCache() *Cache {
	return &Cache{entries: map[string]*entry{}}
}

// do returns the memoized result for key, running fn at most once per key.
// Errors are memoized too: a config that fails validation fails the same way
// on every retry, so re-running it buys nothing.
func (c *Cache) do(key string, fn func() (*core.Result, error)) (*core.Result, error) {
	c.mu.Lock()
	e, ok := c.entries[key]
	if !ok {
		e = &entry{}
		c.entries[key] = e
	}
	c.mu.Unlock()
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	e.once.Do(func() { e.res, e.err = fn() })
	if e.err != nil {
		return nil, e.err
	}
	out := *e.res
	return &out, nil
}

// Stats returns a snapshot of cache effectiveness counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	n := len(c.entries)
	c.mu.Unlock()
	return Stats{Hits: c.hits.Load(), Misses: c.misses.Load(), Entries: n}
}

// Reset discards all entries and zeroes the counters.
func (c *Cache) Reset() {
	c.mu.Lock()
	c.entries = map[string]*entry{}
	c.mu.Unlock()
	c.hits.Store(0)
	c.misses.Store(0)
}

// shared is the process-wide cache used by the experiment drivers: one
// instance so repeated reference suites (the baseline MCM, the 6 TB/s
// reference, the monolithic bounds) are simulated once per process no matter
// how many experiments an invocation runs.
var shared = NewCache()

// Shared returns the process-wide run cache.
func Shared() *Cache { return shared }
