package runner

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"mcmgpu/internal/core"
)

// TestClassify pins the error partition the cache, store, and service all
// share: wall-time failures (canceled, deadline) are non-deterministic and
// must never be memoized or quarantined; everything else is a property of
// the job key.
func TestClassify(t *testing.T) {
	sim := func(k core.ErrKind) error { return &core.SimError{Kind: k} }
	cases := []struct {
		err  error
		want ErrClass
		det  bool
	}{
		{nil, ClassNone, false},
		{context.Canceled, ClassCanceled, false},
		{context.DeadlineExceeded, ClassTransient, false},
		{sim(core.KindCanceled), ClassCanceled, false},
		{sim(core.KindWallDeadline), ClassTransient, false},
		{sim(core.KindMaxEvents), ClassBudget, true},
		{sim(core.KindMaxCycles), ClassBudget, true},
		{sim(core.KindInvariant), ClassInvariant, true},
		{&PanicError{Value: "boom"}, ClassPanic, true},
		{errors.New("bad config"), ClassError, true},
		// Wrapped errors classify through errors.As/Is chains.
		{fmt.Errorf("job 3: %w", sim(core.KindMaxEvents)), ClassBudget, true},
		{fmt.Errorf("wrap: %w", context.Canceled), ClassCanceled, false},
		{&JobError{Index: 1, Err: &PanicError{Value: "x"}}, ClassPanic, true},
	}
	for _, c := range cases {
		if got := Classify(c.err); got != c.want {
			t.Errorf("Classify(%v) = %q, want %q", c.err, got, c.want)
		}
		if got := Classify(c.err).Deterministic(); got != c.det {
			t.Errorf("Classify(%v).Deterministic() = %v, want %v", c.err, got, c.det)
		}
	}
}
