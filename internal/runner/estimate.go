package runner

import (
	"sync"

	"mcmgpu/internal/analytic"
	"mcmgpu/internal/config"
)

// This file is the runner's analytic fast path: the same Job values that
// Run simulates can be evaluated through the closed-form estimator
// (internal/analytic) in microseconds instead of seconds. Estimates share
// the simulation cache's fingerprint-derived keys under an "est|" prefix —
// one key derivation for both execution paths — but live in their own typed
// cache, so a two-phase sweep that estimates the whole grid and then
// simulates the survivors never confuses a prediction with a measurement.

// Estimate evaluates the job through the closed-form estimator. It is pure:
// no engine events, no randomness, no shared state.
func (j Job) Estimate() (*analytic.Estimate, error) {
	e, err := analytic.NewEstimator(j.Config)
	if err != nil {
		return nil, err
	}
	scale := j.Scale
	if scale <= 0 {
		scale = 1
	}
	return e.Estimate(j.Spec, scale)
}

// estKey is the estimate-cache key: the simulation key under an "est|"
// prefix. Run bounds, fault plans and metrics sampling do not apply to the
// closed form, so they are deliberately absent.
func (j Job) estKey() string { return "est|" + j.key() }

// Estimates evaluates every job through the closed-form estimator and
// returns predictions in job order, mirroring Run's contract: a failing job
// leaves a nil slot and contributes a *JobError to the JobErrors aggregate.
// Evaluation is sequential — the estimator is orders of magnitude faster
// than simulation, so fanning it across workers would cost more than it
// buys — and estimators are built once per distinct *Config in the list.
func (r *Runner) Estimates(jobs []Job) ([]*analytic.Estimate, error) {
	out := make([]*analytic.Estimate, len(jobs))
	ests := map[*config.Config]*analytic.Estimator{}
	var jerrs JobErrors
	for i, j := range jobs {
		est, err := r.estimateJob(j, ests)
		if err != nil {
			jerrs = append(jerrs, &JobError{
				Index:    i,
				Workload: j.Spec.Name,
				Config:   j.Config.Name,
				Err:      err,
			})
			if r.FailFast {
				break
			}
			continue
		}
		out[i] = est
	}
	if len(jerrs) > 0 {
		return out, jerrs
	}
	return out, nil
}

func (r *Runner) estimateJob(j Job, ests map[*config.Config]*analytic.Estimator) (*analytic.Estimate, error) {
	eval := func() (*analytic.Estimate, error) {
		e, ok := ests[j.Config]
		if !ok {
			var err error
			if e, err = analytic.NewEstimator(j.Config); err != nil {
				return nil, err
			}
			ests[j.Config] = e
		}
		scale := j.Scale
		if scale <= 0 {
			scale = 1
		}
		return e.Estimate(j.Spec, scale)
	}
	if r.EstCache == nil {
		return eval()
	}
	return r.EstCache.do(j.estKey(), eval)
}

// EstCache memoizes closed-form estimates. Like the simulation Cache it
// returns copies and memoizes deterministic errors; unlike it there is no
// single-flight machinery, because an estimate costs microseconds.
type EstCache struct {
	mu      sync.Mutex
	entries map[string]estEntry
	hits    uint64
	misses  uint64
}

type estEntry struct {
	est *analytic.Estimate
	err error
}

// NewEstCache returns an empty estimate cache.
func NewEstCache() *EstCache {
	return &EstCache{entries: map[string]estEntry{}}
}

// do returns the memoized estimate for key, evaluating fn on first request.
func (c *EstCache) do(key string, fn func() (*analytic.Estimate, error)) (*analytic.Estimate, error) {
	c.mu.Lock()
	e, ok := c.entries[key]
	if ok {
		c.hits++
		c.mu.Unlock()
	} else {
		c.misses++
		c.mu.Unlock()
		e.est, e.err = fn()
		c.mu.Lock()
		c.entries[key] = e
		c.mu.Unlock()
	}
	if e.err != nil {
		return nil, e.err
	}
	out := *e.est
	return &out, nil
}

// Stats returns a snapshot of estimate-cache effectiveness counters.
func (c *EstCache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{Hits: c.hits, Misses: c.misses, Entries: len(c.entries)}
}

// Reset discards all entries and zeroes the counters.
func (c *EstCache) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = map[string]estEntry{}
	c.hits, c.misses = 0, 0
}

// estSharedCache is the process-wide estimate cache, the analytic twin of
// the shared simulation cache.
var estSharedCache = NewEstCache()

// SharedEstimates returns the process-wide estimate cache.
func SharedEstimates() *EstCache { return estSharedCache }
