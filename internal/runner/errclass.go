package runner

import (
	"context"
	"errors"

	"mcmgpu/internal/core"
)

// ErrClass partitions job failures by what a caller holding the job's key —
// the memo cache, the durable store, or a service deciding whether to retry
// a cell — should do about them. The partition the whole stack agrees on:
//
//   - ClassCanceled and ClassTransient depend on wall time, not on the job
//     key: a retry can succeed, so nothing may memoize or quarantine them.
//   - Every other class is a deterministic property of the key: the same
//     job fails the same way on every attempt, so retrying buys nothing and
//     a service should quarantine the cell after a bounded attempt budget
//     instead of looping on it.
type ErrClass string

const (
	// ClassNone is the classification of a nil error.
	ClassNone ErrClass = ""
	// ClassCanceled: the run's context was canceled. Terminal for this
	// request, meaningless for the key.
	ClassCanceled ErrClass = "canceled"
	// ClassTransient: a wall-clock deadline tripped. A retry on a faster or
	// less loaded machine can succeed.
	ClassTransient ErrClass = "transient"
	// ClassPanic: the simulation panicked (recovered into a *PanicError).
	ClassPanic ErrClass = "panic"
	// ClassBudget: an event or cycle budget was exhausted.
	ClassBudget ErrClass = "budget"
	// ClassInvariant: the invariant auditor found a broken conservation law.
	ClassInvariant ErrClass = "invariant"
	// ClassError: any other deterministic failure (config validation, an
	// unknown workload, a malformed spec).
	ClassError ErrClass = "error"
)

// Deterministic reports whether the class is a property of the job key —
// i.e. whether the same job must fail the same way on every retry.
func (c ErrClass) Deterministic() bool {
	switch c {
	case ClassNone, ClassCanceled, ClassTransient:
		return false
	}
	return true
}

// Classify maps a job failure onto its ErrClass. It understands the error
// shapes this package produces — *PanicError, *core.SimError, raw context
// errors — and files everything else under ClassError.
func Classify(err error) ErrClass {
	if err == nil {
		return ClassNone
	}
	var pe *PanicError
	if errors.As(err, &pe) {
		return ClassPanic
	}
	var se *core.SimError
	if errors.As(err, &se) {
		switch se.Kind {
		case core.KindCanceled:
			return ClassCanceled
		case core.KindWallDeadline:
			return ClassTransient
		case core.KindMaxEvents, core.KindMaxCycles:
			return ClassBudget
		case core.KindInvariant:
			return ClassInvariant
		}
		return ClassError
	}
	if errors.Is(err, context.Canceled) {
		return ClassCanceled
	}
	if errors.Is(err, context.DeadlineExceeded) {
		return ClassTransient
	}
	return ClassError
}
