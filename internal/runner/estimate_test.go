package runner

import (
	"reflect"
	"strings"
	"testing"

	"mcmgpu/internal/config"
	"mcmgpu/internal/workload"
)

// TestEstimatesMatchDirect: Runner.Estimates is the batched form of
// Job.Estimate — same predictions, job order preserved, cache irrelevant to
// the values.
func TestEstimatesMatchDirect(t *testing.T) {
	jobs := testJobs(t)
	for _, cache := range []*EstCache{nil, NewEstCache()} {
		r := &Runner{EstCache: cache}
		got, err := r.Estimates(jobs)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(jobs) {
			t.Fatalf("got %d estimates for %d jobs", len(got), len(jobs))
		}
		for i, j := range jobs {
			want, err := j.Estimate()
			if err != nil {
				t.Fatal(err)
			}
			if got[i] == nil || !reflect.DeepEqual(*got[i], *want) {
				t.Errorf("job %d (%s on %s): batched estimate diverges from direct",
					i, j.Spec.Name, j.Config.Name)
			}
		}
	}
}

// TestEstCacheMemoizes: a second pass over the same job list is all hits,
// and the returned estimates are copies — mutating one never contaminates
// the cache.
func TestEstCacheMemoizes(t *testing.T) {
	jobs := testJobs(t)
	cache := NewEstCache()
	r := &Runner{EstCache: cache}
	first, err := r.Estimates(jobs)
	if err != nil {
		t.Fatal(err)
	}
	st := cache.Stats()
	if st.Misses != uint64(len(jobs)) || st.Hits != 0 {
		t.Fatalf("cold pass: hits=%d misses=%d, want 0/%d", st.Hits, st.Misses, len(jobs))
	}
	first[0].IPC = -1 // must not reach the cache
	second, err := r.Estimates(jobs)
	if err != nil {
		t.Fatal(err)
	}
	st = cache.Stats()
	if st.Hits != uint64(len(jobs)) || st.Misses != uint64(len(jobs)) {
		t.Fatalf("warm pass: hits=%d misses=%d, want %d/%d", st.Hits, st.Misses, len(jobs), len(jobs))
	}
	if second[0].IPC <= 0 {
		t.Fatal("cached estimate was contaminated by caller mutation")
	}
	cache.Reset()
	if st := cache.Stats(); st.Entries != 0 || st.Hits != 0 || st.Misses != 0 {
		t.Fatalf("after Reset: %+v", st)
	}
}

// TestEstKeyDisjointFromSimKey: the estimate key is the simulation key under
// an "est|" prefix, so the two cache namespaces can never collide.
func TestEstKeyDisjointFromSimKey(t *testing.T) {
	j := Job{Config: config.BaselineMCM(), Spec: mustSpec(t, "GEMM"), Scale: 0.05}
	ek, sk := j.estKey(), j.key()
	if !strings.HasPrefix(ek, "est|") || strings.TrimPrefix(ek, "est|") != sk {
		t.Fatalf("estKey %q does not wrap key %q", ek, sk)
	}
}

// TestEstimatesBadJob: an invalid job leaves a nil slot and a JobError,
// without aborting the rest of the list.
func TestEstimatesBadJob(t *testing.T) {
	bad := config.BaselineMCM()
	bad.Name = "broken"
	bad.Modules = 0
	jobs := []Job{
		{Config: config.BaselineMCM(), Spec: mustSpec(t, "GEMM"), Scale: 0.05},
		{Config: bad, Spec: mustSpec(t, "GEMM"), Scale: 0.05},
		{Config: config.OptimizedMCM(), Spec: mustSpec(t, "CFD"), Scale: 0.05},
	}
	r := &Runner{EstCache: NewEstCache()}
	got, err := r.Estimates(jobs)
	var jerrs JobErrors
	if !asJobErrors(err, &jerrs) || len(jerrs) != 1 || jerrs[0].Index != 1 {
		t.Fatalf("err = %v, want one JobError at index 1", err)
	}
	if got[0] == nil || got[1] != nil || got[2] == nil {
		t.Fatalf("slots = [%v %v %v], want [est nil est]", got[0], got[1], got[2])
	}
	// The error is deterministic, so it memoizes like a result does.
	if _, err := r.Estimates(jobs[1:2]); err == nil {
		t.Fatal("memoized error pass: want error, got nil")
	}
}

func asJobErrors(err error, out *JobErrors) bool {
	je, ok := err.(JobErrors)
	if ok {
		*out = je
	}
	return ok
}

// TestEstimateScaleDefaults: Scale <= 0 means full scale, matching Job.run.
func TestEstimateScaleDefaults(t *testing.T) {
	spec := mustSpec(t, "NW")
	a := Job{Config: config.BaselineMCM(), Spec: spec}
	b := Job{Config: config.BaselineMCM(), Spec: spec, Scale: 1}
	ea, err := a.Estimate()
	if err != nil {
		t.Fatal(err)
	}
	eb, err := b.Estimate()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(*ea, *eb) {
		t.Fatal("Scale 0 and Scale 1 estimates differ")
	}
	var w workload.Spec // zero spec is invalid: Estimate must error, not panic
	if _, err := (Job{Config: config.BaselineMCM(), Spec: &w}).Estimate(); err == nil {
		t.Fatal("zero spec: want error")
	}
}
