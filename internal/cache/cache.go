// Package cache implements the set-associative cache model shared by all
// three levels of the MCM-GPU hierarchy: the per-SM L1, the module-side L1.5
// introduced in Section 5.1 of the paper, and the memory-side L2.
//
// The model tracks full set/way state with true LRU replacement, so hit
// rates, capacity effects of the iso-transistor L1.5/L2 rebalancing, and the
// cost of flushing at kernel boundaries are measured rather than assumed.
// Timing is handled by the caller; this package only answers hit/miss and
// eviction questions.
package cache

import (
	"fmt"
	"math/bits"

	"mcmgpu/internal/audit"
	"mcmgpu/internal/stats"
)

// Line state flags.
const (
	flagValid = 1 << iota
	flagDirty
)

type line struct {
	tag   uint64
	flags uint8
}

// Cache is a set-associative cache with true LRU replacement.
// Ways within a set are kept in recency order (index 0 = MRU), which is
// cheap for the small associativities used here (4–16 ways).
type Cache struct {
	name      string
	sets      [][]line
	setMask   uint64
	setShift  uint
	ways      int
	writeBack bool

	reads      stats.Ratio
	writes     stats.Ratio
	evictions  stats.Counter
	writebacks stats.Counter
	flushes    stats.Counter
}

// New creates a cache holding the given number of lines with the given
// associativity. The line count must yield a power-of-two set count.
// Addresses passed to the cache are line addresses (byte address divided by
// the line size); the cache itself is agnostic to the line size.
func New(name string, lines, ways int, writeBack bool) *Cache {
	if lines <= 0 || ways <= 0 || lines%ways != 0 {
		panic(fmt.Sprintf("cache %q: bad geometry lines=%d ways=%d", name, lines, ways))
	}
	nSets := lines / ways
	if nSets&(nSets-1) != 0 {
		panic(fmt.Sprintf("cache %q: set count %d not a power of two", name, nSets))
	}
	sets := make([][]line, nSets)
	backing := make([]line, lines)
	for i := range sets {
		sets[i] = backing[i*ways : (i+1)*ways : (i+1)*ways]
	}
	return &Cache{
		name:      name,
		sets:      sets,
		setMask:   uint64(nSets - 1),
		setShift:  uint(bits.TrailingZeros(uint(nSets))),
		ways:      ways,
		writeBack: writeBack,
	}
}

// Name returns the cache's name.
func (c *Cache) Name() string { return c.name }

// Sets returns the number of sets.
func (c *Cache) Sets() int { return len(c.sets) }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

// Result describes the outcome of an access.
type Result struct {
	Hit bool
	// Evicted reports that a valid line was displaced to make room.
	Evicted bool
	// WritebackAddr is the line address of a dirty victim that must be
	// written to the next level; valid only when NeedsWriteback is true.
	WritebackAddr  uint64
	NeedsWriteback bool
}

func (c *Cache) set(addr uint64) []line { return c.sets[addr&c.setMask] }
func (c *Cache) tag(addr uint64) uint64 { return addr >> c.setShift }

// touch moves way i of set s to the MRU position.
func touch(s []line, i int) {
	if i == 0 {
		return
	}
	l := s[i]
	copy(s[1:i+1], s[0:i])
	s[0] = l
}

// Lookup probes the cache without modifying replacement state or statistics.
func (c *Cache) Lookup(addr uint64) bool {
	s := c.set(addr)
	t := c.tag(addr)
	for i := range s {
		if s[i].flags&flagValid != 0 && s[i].tag == t {
			return true
		}
	}
	return false
}

// Access performs a read or write access to the given line address,
// allocating on miss. On a write to a write-back cache the line is marked
// dirty; a write-through cache never holds dirty lines (the caller forwards
// the write downstream). The returned Result reports any dirty victim that
// must be written back.
func (c *Cache) Access(addr uint64, write bool) Result {
	s := c.set(addr)
	t := c.tag(addr)
	for i := range s {
		if s[i].flags&flagValid != 0 && s[i].tag == t {
			touch(s, i)
			if write {
				if c.writeBack {
					s[0].flags |= flagDirty
				}
				c.writes.Observe(true)
			} else {
				c.reads.Observe(true)
			}
			return Result{Hit: true}
		}
	}
	// Miss: fill into the LRU way.
	if write {
		c.writes.Observe(false)
	} else {
		c.reads.Observe(false)
	}
	return c.fill(s, addr&c.setMask, t, write)
}

// Probe performs a read or write access without allocating on miss. It is
// used for allocation-policy filtering (e.g. local accesses bypassing a
// remote-only L1.5 must not disturb its contents or statistics).
func (c *Cache) Probe(addr uint64, write bool) bool {
	s := c.set(addr)
	t := c.tag(addr)
	for i := range s {
		if s[i].flags&flagValid != 0 && s[i].tag == t {
			touch(s, i)
			if write && c.writeBack {
				s[0].flags |= flagDirty
			}
			return true
		}
	}
	return false
}

// fill inserts tag t into set s (whose index is setIdx) as MRU, evicting the
// LRU way. The victim's line address is reconstructed from its tag and the
// shared set index.
func (c *Cache) fill(s []line, setIdx, t uint64, write bool) Result {
	var res Result
	victim := s[len(s)-1]
	if victim.flags&flagValid != 0 {
		res.Evicted = true
		c.evictions.Inc()
		if victim.flags&flagDirty != 0 {
			res.NeedsWriteback = true
			res.WritebackAddr = victim.tag<<c.setShift | setIdx
			c.writebacks.Inc()
		}
	}
	copy(s[1:], s[:len(s)-1])
	nl := line{tag: t, flags: flagValid}
	if write && c.writeBack {
		nl.flags |= flagDirty
	}
	s[0] = nl
	return res
}

// Flush invalidates the entire cache and returns the line addresses of all
// dirty lines (write-back caches only). The paper flushes L1 and L1.5 at
// kernel boundaries to implement software coherence.
func (c *Cache) Flush() []uint64 {
	c.flushes.Inc()
	var dirty []uint64
	for si := range c.sets {
		s := c.sets[si]
		for i := range s {
			if s[i].flags&flagValid != 0 && s[i].flags&flagDirty != 0 {
				dirty = append(dirty, s[i].tag<<c.setShift|uint64(si))
			}
			s[i] = line{}
		}
	}
	return dirty
}

// Invalidate removes a single line if present, returning whether it was
// dirty.
func (c *Cache) Invalidate(addr uint64) (present, dirty bool) {
	s := c.set(addr)
	t := c.tag(addr)
	for i := range s {
		if s[i].flags&flagValid != 0 && s[i].tag == t {
			dirty = s[i].flags&flagDirty != 0
			copy(s[i:], s[i+1:])
			s[len(s)-1] = line{}
			return true, dirty
		}
	}
	return false, false
}

// Occupancy returns the number of valid lines.
func (c *Cache) Occupancy() int {
	n := 0
	for _, s := range c.sets {
		for i := range s {
			if s[i].flags&flagValid != 0 {
				n++
			}
		}
	}
	return n
}

// HitRate returns the combined read+write hit rate.
func (c *Cache) HitRate() float64 {
	total := c.reads.Total + c.writes.Total
	if total == 0 {
		return 0
	}
	return float64(c.reads.Hits+c.writes.Hits) / float64(total)
}

// ReadHitRate returns the read hit rate.
func (c *Cache) ReadHitRate() float64 { return c.reads.Value() }

// Accesses returns the total number of Access calls.
func (c *Cache) Accesses() uint64 { return c.reads.Total + c.writes.Total }

// Hits returns the total number of hits across reads and writes.
func (c *Cache) Hits() uint64 { return c.reads.Hits + c.writes.Hits }

// ReadAccesses returns the number of read Access calls. The per-direction
// accessors exist for the invariant auditor: access-flow conservation
// (misses leaving one level = demand entering the next) holds separately
// for reads and writes, and combining them would let a read undercount hide
// behind a write overcount.
func (c *Cache) ReadAccesses() uint64 { return c.reads.Total }

// ReadHits returns the number of read hits.
func (c *Cache) ReadHits() uint64 { return c.reads.Hits }

// WriteAccesses returns the number of write Access calls.
func (c *Cache) WriteAccesses() uint64 { return c.writes.Total }

// WriteHits returns the number of write hits.
func (c *Cache) WriteHits() uint64 { return c.writes.Hits }

// Evictions returns the number of valid lines displaced.
func (c *Cache) Evictions() uint64 { return c.evictions.Value() }

// Writebacks returns the number of dirty victims produced.
func (c *Cache) Writebacks() uint64 { return c.writebacks.Value() }

// Audit reports structural invariant violations into r: more valid lines
// than capacity, a malformed LRU stack (a valid way behind an invalid one —
// fill always inserts at MRU and Invalidate compacts, so valid ways form a
// prefix of every set), duplicate tags within a set, dirty lines in a
// write-through cache (footnote 4 of the paper: L1/L1.5 must be
// write-through for software coherence, so a dirty line there means lost
// coherence), and hit counters exceeding access counters.
func (c *Cache) Audit(r *audit.Reporter) {
	occ := 0
	for si, s := range c.sets {
		invalidAt := -1
		for i := range s {
			if s[i].flags&flagValid == 0 {
				if invalidAt < 0 {
					invalidAt = i
				}
				continue
			}
			occ++
			if invalidAt >= 0 {
				r.Reportf("cache-lru", c.name,
					"set %d: valid line in way %d behind invalid way %d; the LRU stack must keep valid ways as a prefix", si, i, invalidAt)
			}
			if s[i].flags&flagDirty != 0 && !c.writeBack {
				r.Reportf("cache-write-through", c.name,
					"set %d way %d holds a dirty line in a write-through cache", si, i)
			}
			for j := 0; j < i; j++ {
				if s[j].flags&flagValid != 0 && s[j].tag == s[i].tag {
					r.Reportf("cache-dup-tag", c.name,
						"set %d: tag %#x present in ways %d and %d", si, s[i].tag, j, i)
				}
			}
		}
	}
	capacity := len(c.sets) * c.ways
	if occ > capacity {
		r.Reportf("cache-occupancy", c.name, "%d valid lines exceed capacity %d", occ, capacity)
	}
	if c.reads.Hits > c.reads.Total {
		r.Reportf("cache-counters", c.name, "read hits %d exceed read accesses %d", c.reads.Hits, c.reads.Total)
	}
	if c.writes.Hits > c.writes.Total {
		r.Reportf("cache-counters", c.name, "write hits %d exceed write accesses %d", c.writes.Hits, c.writes.Total)
	}
}

// ResetStats clears statistics but preserves contents.
func (c *Cache) ResetStats() {
	c.reads.Reset()
	c.writes.Reset()
	c.evictions.Reset()
	c.writebacks.Reset()
	c.flushes.Reset()
}
