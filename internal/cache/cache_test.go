package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBasicHitMiss(t *testing.T) {
	c := New("l1", 16, 4, false) // 4 sets x 4 ways
	if r := c.Access(0, false); r.Hit {
		t.Fatalf("cold access hit")
	}
	if r := c.Access(0, false); !r.Hit {
		t.Fatalf("second access missed")
	}
	if c.HitRate() != 0.5 {
		t.Fatalf("HitRate = %v, want 0.5", c.HitRate())
	}
	if c.Occupancy() != 1 {
		t.Fatalf("Occupancy = %d, want 1", c.Occupancy())
	}
}

func TestLRUEviction(t *testing.T) {
	c := New("l1", 8, 2, false) // 4 sets x 2 ways
	// Addresses 0, 4, 8 map to set 0 (mask 3).
	c.Access(0, false)
	c.Access(4, false)
	c.Access(0, false)      // 0 becomes MRU
	r := c.Access(8, false) // evicts LRU = 4
	if !r.Evicted {
		t.Fatalf("expected eviction")
	}
	if !c.Lookup(0) {
		t.Fatalf("LRU policy evicted the MRU line")
	}
	if c.Lookup(4) {
		t.Fatalf("line 4 should have been evicted")
	}
	if !c.Lookup(8) {
		t.Fatalf("line 8 should be resident")
	}
}

func TestWritebackVictim(t *testing.T) {
	c := New("l2", 8, 2, true) // write-back
	c.Access(0, true)          // dirty
	c.Access(4, false)
	r := c.Access(8, false) // evicts 0, which is dirty
	if !r.NeedsWriteback {
		t.Fatalf("dirty victim not reported")
	}
	if r.WritebackAddr != 0 {
		t.Fatalf("WritebackAddr = %d, want 0", r.WritebackAddr)
	}
	if c.Writebacks() != 1 {
		t.Fatalf("Writebacks = %d, want 1", c.Writebacks())
	}
}

func TestWritebackAddrReconstruction(t *testing.T) {
	c := New("l2", 64, 2, true) // 32 sets
	// Three addresses in set 5 with distinct tags.
	a1 := uint64(5 + 32)
	a2 := uint64(5 + 64)
	a3 := uint64(5 + 96)
	c.Access(a1, true)
	c.Access(a2, true)
	r := c.Access(a3, true)
	if !r.NeedsWriteback || r.WritebackAddr != a1 {
		t.Fatalf("WritebackAddr = %d, want %d", r.WritebackAddr, a1)
	}
}

func TestWriteThroughNeverDirty(t *testing.T) {
	c := New("l15", 8, 2, false)
	c.Access(0, true)
	c.Access(4, true)
	r := c.Access(8, true)
	if r.NeedsWriteback {
		t.Fatalf("write-through cache produced a writeback")
	}
	if dirty := c.Flush(); len(dirty) != 0 {
		t.Fatalf("write-through flush returned %d dirty lines", len(dirty))
	}
}

func TestFlush(t *testing.T) {
	c := New("l2", 16, 4, true)
	addrs := []uint64{1, 2, 3, 17}
	for _, a := range addrs {
		c.Access(a, true)
	}
	c.Access(5, false) // clean line
	dirty := c.Flush()
	if len(dirty) != len(addrs) {
		t.Fatalf("Flush returned %d dirty lines, want %d", len(dirty), len(addrs))
	}
	seen := map[uint64]bool{}
	for _, a := range dirty {
		seen[a] = true
	}
	for _, a := range addrs {
		if !seen[a] {
			t.Fatalf("dirty line %d missing from flush set %v", a, dirty)
		}
	}
	if c.Occupancy() != 0 {
		t.Fatalf("Occupancy after flush = %d", c.Occupancy())
	}
	if c.Lookup(1) {
		t.Fatalf("line survived flush")
	}
}

func TestInvalidate(t *testing.T) {
	c := New("l1", 16, 4, true)
	c.Access(7, true)
	present, dirty := c.Invalidate(7)
	if !present || !dirty {
		t.Fatalf("Invalidate(7) = %v,%v; want true,true", present, dirty)
	}
	present, _ = c.Invalidate(7)
	if present {
		t.Fatalf("line present after invalidation")
	}
	if c.Lookup(7) {
		t.Fatalf("Lookup finds invalidated line")
	}
}

func TestProbeDoesNotAllocate(t *testing.T) {
	c := New("l15", 16, 4, false)
	if c.Probe(9, false) {
		t.Fatalf("probe hit in empty cache")
	}
	if c.Occupancy() != 0 {
		t.Fatalf("Probe allocated")
	}
	if c.Accesses() != 0 {
		t.Fatalf("Probe counted as access")
	}
	c.Access(9, false)
	if !c.Probe(9, false) {
		t.Fatalf("probe missed resident line")
	}
}

func TestBadGeometryPanics(t *testing.T) {
	for _, tc := range []struct{ lines, ways int }{{0, 1}, {8, 3}, {24, 2}, {8, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(lines=%d, ways=%d) did not panic", tc.lines, tc.ways)
				}
			}()
			New("bad", tc.lines, tc.ways, false)
		}()
	}
}

// referenceCache is a trivially correct LRU model used to validate Cache.
type referenceCache struct {
	sets  int
	ways  int
	order map[uint64][]uint64 // set -> addresses, MRU first
}

func newReference(lines, ways int) *referenceCache {
	return &referenceCache{sets: lines / ways, ways: ways, order: map[uint64][]uint64{}}
}

func (r *referenceCache) access(addr uint64) bool {
	set := addr % uint64(r.sets)
	lst := r.order[set]
	for i, a := range lst {
		if a == addr {
			copy(lst[1:i+1], lst[0:i])
			lst[0] = addr
			return true
		}
	}
	lst = append([]uint64{addr}, lst...)
	if len(lst) > r.ways {
		lst = lst[:r.ways]
	}
	r.order[set] = lst
	return false
}

// Property: Cache agrees exactly with the reference LRU model on a random
// access stream, for several geometries.
func TestLRUMatchesReferenceProperty(t *testing.T) {
	f := func(seed int64, n uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		geoms := []struct{ lines, ways int }{{16, 4}, {64, 16}, {32, 1}, {8, 8}}
		g := geoms[rng.Intn(len(geoms))]
		c := New("sut", g.lines, g.ways, false)
		ref := newReference(g.lines, g.ways)
		for i := 0; i < int(n); i++ {
			addr := uint64(rng.Intn(4 * g.lines))
			got := c.Access(addr, rng.Intn(2) == 0).Hit
			want := ref.access(addr)
			if got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: occupancy never exceeds capacity and a working set no larger
// than one set's ways (all mapping to the same set) never misses after the
// first touch.
func TestSetResidencyProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := New("sut", 64, 4, false) // 16 sets x 4 ways
		// 4 addresses that all map to set 3.
		addrs := []uint64{3, 3 + 16, 3 + 32, 3 + 48}
		for _, a := range addrs {
			c.Access(a, false)
		}
		for i := 0; i < 100; i++ {
			a := addrs[rng.Intn(len(addrs))]
			if !c.Access(a, false).Hit {
				return false
			}
		}
		return c.Occupancy() <= 64
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestResetStats(t *testing.T) {
	c := New("l1", 16, 4, false)
	c.Access(1, false)
	c.Access(1, false)
	c.ResetStats()
	if c.Accesses() != 0 || c.HitRate() != 0 {
		t.Fatalf("stats survived reset")
	}
	if !c.Lookup(1) {
		t.Fatalf("ResetStats cleared contents")
	}
}

func BenchmarkAccess(b *testing.B) {
	c := New("l2", 32768, 16, true)
	rng := rand.New(rand.NewSource(1))
	addrs := make([]uint64, 4096)
	for i := range addrs {
		addrs[i] = uint64(rng.Intn(65536))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(addrs[i%len(addrs)], i%4 == 0)
	}
}
