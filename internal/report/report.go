// Package report renders the experiment harness's output: fixed-width ASCII
// tables for the terminal and CSV for plotting, in the spirit of the
// paper's tables and figure series.
package report

import (
	"fmt"
	"io"
	"strconv"
	"strings"

	"mcmgpu/internal/stats"
)

// Table is a simple column-oriented table.
type Table struct {
	Title   string
	Note    string
	Headers []string
	Rows    [][]string
}

// New creates an empty table with the given title and column headers.
func New(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// ErrCell is the cell rendered for a value that could not be computed — a
// failed simulation, a degenerate aggregate. Rendering failures as cells
// instead of aborting is what lets one pathological (config, workload) pair
// degrade a single table entry rather than kill a whole experiment sweep.
const ErrCell = "ERR"

// Dash is the cell rendered for a value that is undefined rather than
// failed: a hit rate of a cache that was never accessed, a utilization over
// an empty interval. It is visually distinct from both a computed 0.000
// (real data) and ErrCell (a failure).
const Dash = "—"

// Cell returns v for AddRowF unless err is non-nil, in which case it
// returns ErrCell. It is the one-line adapter between (value, error)
// aggregates (e.g. stats.GeoMean) and table rows.
func Cell(v interface{}, err error) interface{} {
	if err != nil {
		return ErrCell
	}
	return v
}

// Rate returns v for AddRowF when valid, and Dash otherwise. It is how
// tables distinguish "this cache was disabled / never accessed" from a true
// 0% hit rate, which Value-style accessors conflate.
func Rate(v float64, valid bool) interface{} {
	if !valid {
		return Dash
	}
	return v
}

// RatioCell renders a stats.Ratio: its value when it observed anything,
// Dash when it never did.
func RatioCell(r stats.Ratio) interface{} { return Rate(r.Value(), r.Valid()) }

// AddRow appends a row; cells beyond the header count are rejected.
func (t *Table) AddRow(cells ...string) {
	if len(cells) > len(t.Headers) {
		panic(fmt.Sprintf("report: row with %d cells in a %d-column table", len(cells), len(t.Headers)))
	}
	row := make([]string, len(t.Headers))
	copy(row, cells)
	t.Rows = append(t.Rows, row)
}

// AddRowF appends a row formatting each value: strings verbatim, floats
// with 3 significant decimals, ints plainly.
func (t *Table) AddRowF(cells ...interface{}) {
	out := make([]string, 0, len(cells))
	for _, c := range cells {
		out = append(out, formatCell(c))
	}
	t.AddRow(out...)
}

func formatCell(c interface{}) string {
	switch v := c.(type) {
	case string:
		return v
	case float64:
		return strconv.FormatFloat(v, 'f', 3, 64)
	case float32:
		return strconv.FormatFloat(float64(v), 'f', 3, 64)
	case int:
		return strconv.Itoa(v)
	case int64:
		return strconv.FormatInt(v, 10)
	case uint64:
		return strconv.FormatUint(v, 10)
	case error:
		return ErrCell
	case fmt.Stringer:
		return v.String()
	default:
		return fmt.Sprint(v)
	}
}

// WriteText renders the table with aligned columns.
func (t *Table) WriteText(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
	if t.Note != "" {
		fmt.Fprintf(&b, "note: %s\n", t.Note)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteCSV renders the table as CSV (RFC-4180 quoting for commas/quotes).
func (t *Table) WriteCSV(w io.Writer) error {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			b.WriteString(c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	for _, r := range t.Rows {
		writeRow(r)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// String renders the text form.
func (t *Table) String() string {
	var b strings.Builder
	if err := t.WriteText(&b); err != nil {
		return err.Error()
	}
	return b.String()
}
