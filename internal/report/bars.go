package report

import (
	"fmt"
	"io"
	"strings"
)

// BarChart renders a horizontal ASCII bar chart, the terminal equivalent of
// the paper's bar figures. Values must be non-negative; bars scale to the
// maximum value.
type BarChart struct {
	Title  string
	Unit   string
	Width  int // bar width in characters; 0 means 40
	labels []string
	values []float64
}

// NewBarChart creates an empty chart.
func NewBarChart(title, unit string) *BarChart {
	return &BarChart{Title: title, Unit: unit}
}

// Add appends one bar.
func (b *BarChart) Add(label string, value float64) {
	if value < 0 {
		panic(fmt.Sprintf("report: negative bar value %v for %q", value, label))
	}
	b.labels = append(b.labels, label)
	b.values = append(b.values, value)
}

// Len returns the number of bars.
func (b *BarChart) Len() int { return len(b.values) }

// WriteText renders the chart.
func (b *BarChart) WriteText(w io.Writer) error {
	width := b.Width
	if width <= 0 {
		width = 40
	}
	var max float64
	labelW := 0
	for i, l := range b.labels {
		if b.values[i] > max {
			max = b.values[i]
		}
		if len(l) > labelW {
			labelW = len(l)
		}
	}
	var sb strings.Builder
	if b.Title != "" {
		fmt.Fprintf(&sb, "%s\n", b.Title)
	}
	for i, l := range b.labels {
		n := 0
		if max > 0 {
			n = int(b.values[i]/max*float64(width) + 0.5)
		}
		fmt.Fprintf(&sb, "%-*s |%s%s %.3g%s\n",
			labelW, l,
			strings.Repeat("#", n), strings.Repeat(" ", width-n),
			b.values[i], b.Unit)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// String renders the text form.
func (b *BarChart) String() string {
	var sb strings.Builder
	if err := b.WriteText(&sb); err != nil {
		return err.Error()
	}
	return sb.String()
}

// BarsFromTable builds a chart from one numeric column of a table, using
// another column for labels. It is how cmd/experiments turns figure tables
// into terminal bar plots.
func BarsFromTable(t *Table, labelCol, valueCol int, unit string) (*BarChart, error) {
	if labelCol < 0 || labelCol >= len(t.Headers) || valueCol < 0 || valueCol >= len(t.Headers) {
		return nil, fmt.Errorf("report: columns %d,%d out of range for %d-column table",
			labelCol, valueCol, len(t.Headers))
	}
	b := NewBarChart(t.Title, unit)
	for _, row := range t.Rows {
		var v float64
		if _, err := fmt.Sscan(row[valueCol], &v); err != nil {
			return nil, fmt.Errorf("report: row %q column %d is not numeric: %w",
				row[labelCol], valueCol, err)
		}
		if v < 0 {
			v = 0
		}
		b.Add(row[labelCol], v)
	}
	return b, nil
}
