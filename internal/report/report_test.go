package report

import (
	"strings"
	"testing"

	"mcmgpu/internal/stats"
)

// TestRateAndRatioCell pins the never-accessed vs true-0% rendering split:
// an invalid ratio renders Dash, a thrashing one renders 0.000.
func TestRateAndRatioCell(t *testing.T) {
	tb := New("Demo", "case", "rate")
	var never, thrash stats.Ratio
	thrash.Observe(false)
	tb.AddRowF("disabled", RatioCell(never))
	tb.AddRowF("thrashing", RatioCell(thrash))
	tb.AddRowF("half", Rate(0.5, true))
	if got := tb.Rows[0][1]; got != Dash {
		t.Fatalf("never-accessed cell = %q, want %q", got, Dash)
	}
	if got := tb.Rows[1][1]; got != "0.000" {
		t.Fatalf("thrashing cell = %q, want 0.000", got)
	}
	if got := tb.Rows[2][1]; got != "0.500" {
		t.Fatalf("valid rate cell = %q, want 0.500", got)
	}
}

func TestTextAlignment(t *testing.T) {
	tb := New("Demo", "name", "value")
	tb.AddRow("a", "1")
	tb.AddRow("longer-name", "2.5")
	out := tb.String()
	if !strings.Contains(out, "Demo") {
		t.Errorf("title missing:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// Title, header, separator, two rows.
	if len(lines) != 5 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[1], "name") {
		t.Errorf("header line wrong: %q", lines[1])
	}
	// Columns aligned: "value" column starts at the same offset everywhere.
	idx := strings.Index(lines[1], "value")
	if lines[3][idx:idx+1] != "1" || lines[4][idx:idx+3] != "2.5" {
		t.Errorf("columns not aligned:\n%s", out)
	}
}

func TestNote(t *testing.T) {
	tb := New("T", "a")
	tb.Note = "paper reports 22.8%"
	tb.AddRow("x")
	if !strings.Contains(tb.String(), "note: paper reports 22.8%") {
		t.Errorf("note missing:\n%s", tb.String())
	}
}

func TestAddRowF(t *testing.T) {
	tb := New("T", "s", "f", "i", "u")
	tb.AddRowF("x", 1.23456, 42, uint64(7))
	row := tb.Rows[0]
	if row[0] != "x" || row[1] != "1.235" || row[2] != "42" || row[3] != "7" {
		t.Fatalf("formatted row = %v", row)
	}
}

func TestRowTooWidePanics(t *testing.T) {
	tb := New("T", "only")
	defer func() {
		if recover() == nil {
			t.Fatalf("wide row did not panic")
		}
	}()
	tb.AddRow("a", "b")
}

func TestShortRowPadded(t *testing.T) {
	tb := New("T", "a", "b")
	tb.AddRow("x")
	if len(tb.Rows[0]) != 2 || tb.Rows[0][1] != "" {
		t.Fatalf("short row not padded: %v", tb.Rows[0])
	}
}

func TestCSVQuoting(t *testing.T) {
	tb := New("T", "name", "desc")
	tb.AddRow("a,b", `say "hi"`)
	var b strings.Builder
	if err := tb.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	want := "name,desc\n\"a,b\",\"say \"\"hi\"\"\"\n"
	if b.String() != want {
		t.Fatalf("csv = %q, want %q", b.String(), want)
	}
}
