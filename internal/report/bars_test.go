package report

import (
	"strings"
	"testing"
)

func TestBarChartRendering(t *testing.T) {
	b := NewBarChart("Speedups", "x")
	b.Width = 10
	b.Add("baseline", 1)
	b.Add("optimized", 2)
	out := b.String()
	if !strings.Contains(out, "Speedups") {
		t.Errorf("title missing:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	// The max value fills the width; the half value fills half.
	if !strings.Contains(lines[2], strings.Repeat("#", 10)) {
		t.Errorf("max bar not full width: %q", lines[2])
	}
	if !strings.Contains(lines[1], "#####") || strings.Contains(lines[1], "######") {
		t.Errorf("half bar wrong: %q", lines[1])
	}
	if !strings.Contains(lines[1], "1x") || !strings.Contains(lines[2], "2x") {
		t.Errorf("values/units missing:\n%s", out)
	}
}

func TestBarChartEmptyAndZero(t *testing.T) {
	b := NewBarChart("", "")
	if b.Len() != 0 || b.String() != "" {
		t.Fatalf("empty chart rendered %q", b.String())
	}
	b.Add("z", 0)
	if !strings.Contains(b.String(), "z") {
		t.Fatalf("zero-value bar missing")
	}
}

func TestBarChartRejectsNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("negative bar accepted")
		}
	}()
	NewBarChart("t", "").Add("bad", -1)
}

func TestBarsFromTable(t *testing.T) {
	tb := New("Fig", "Workload", "Speedup")
	tb.AddRow("CoMD", "2.031")
	tb.AddRow("CFD", "1.997")
	b, err := BarsFromTable(tb, 0, 1, "x")
	if err != nil {
		t.Fatal(err)
	}
	if b.Len() != 2 {
		t.Fatalf("bars = %d", b.Len())
	}
	if !strings.Contains(b.String(), "CoMD") {
		t.Fatalf("labels lost:\n%s", b.String())
	}
	// Bad column indices and non-numeric cells error.
	if _, err := BarsFromTable(tb, 0, 9, ""); err == nil {
		t.Errorf("out-of-range column accepted")
	}
	tb.AddRow("junk", "not-a-number")
	if _, err := BarsFromTable(tb, 0, 1, ""); err == nil {
		t.Errorf("non-numeric cell accepted")
	}
}
