package extsort

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"testing"
)

func collect(t *testing.T, s *Sorter) []string {
	t.Helper()
	it, err := s.Sort()
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for it.Next() {
		out = append(out, string(it.Bytes()))
	}
	if it.Err() != nil {
		t.Fatal(it.Err())
	}
	return out
}

// TestInMemory: small inputs never touch disk and come back sorted.
func TestInMemory(t *testing.T) {
	s := New(t.TempDir(), 1<<20, bytes.Compare)
	in := []string{"pear", "apple", "zuc", "apple", "fig", ""}
	for _, v := range in {
		if err := s.Add([]byte(v)); err != nil {
			t.Fatal(err)
		}
	}
	if s.Spilled() != 0 {
		t.Fatalf("spilled %d runs for tiny input", s.Spilled())
	}
	got := collect(t, s)
	want := append([]string(nil), in...)
	sort.Strings(want)
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("got %q, want %q", got, want)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestSpillMergeMatchesInMemory: the same record set sorted with a tiny
// memory bound (forcing many runs) equals the single in-memory sort, and
// the spill files respect the bound.
func TestSpillMergeMatchesInMemory(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	var recs [][]byte
	for i := 0; i < 20000; i++ {
		n := rng.Intn(40)
		b := make([]byte, n)
		for j := range b {
			b[j] = byte('a' + rng.Intn(6))
		}
		recs = append(recs, b)
	}

	dir := t.TempDir()
	big := New(dir, 64<<20, bytes.Compare)
	small := New(dir, 1<<16, bytes.Compare) // 64 KiB: forces many spills
	for _, r := range recs {
		if err := big.Add(r); err != nil {
			t.Fatal(err)
		}
		if err := small.Add(r); err != nil {
			t.Fatal(err)
		}
	}
	if small.Spilled() < 4 {
		t.Fatalf("expected several spilled runs, got %d", small.Spilled())
	}
	a, b := collect(t, big), collect(t, small)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("record %d differs: %q vs %q", i, a[i], b[i])
		}
	}
	if err := big.Close(); err != nil {
		t.Fatal(err)
	}
	if err := small.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestStableAcrossSpills: records comparing equal under a key-prefix
// comparator come back in insertion order even when split across runs.
func TestStableAcrossSpills(t *testing.T) {
	// Compare only the first byte: payload after it records insertion order.
	cmp := func(a, b []byte) int { return bytes.Compare(a[:1], b[:1]) }
	s := New(t.TempDir(), 1<<16, cmp)
	const n = 9000
	for i := 0; i < n; i++ {
		rec := fmt.Sprintf("%c:%06d:%s", 'a'+byte(i%3), i, string(make([]byte, 20)))
		if err := s.Add([]byte(rec)); err != nil {
			t.Fatal(err)
		}
	}
	if s.Spilled() == 0 {
		t.Fatal("expected spills")
	}
	got := collect(t, s)
	if len(got) != n {
		t.Fatalf("got %d records, want %d", len(got), n)
	}
	lastSeq := map[byte]int{'a': -1, 'b': -1, 'c': -1}
	for i, r := range got {
		if i > 0 && r[0] < got[i-1][0] {
			t.Fatalf("unsorted at %d: %q after %q", i, r[:8], got[i-1][:8])
		}
		var seq int
		fmt.Sscanf(r[2:8], "%d", &seq)
		if seq <= lastSeq[r[0]] {
			t.Fatalf("stability violated for key %c: seq %d after %d", r[0], seq, lastSeq[r[0]])
		}
		lastSeq[r[0]] = seq
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestCloseRemovesTempFiles: no extsort droppings survive Close.
func TestCloseRemovesTempFiles(t *testing.T) {
	dir := t.TempDir()
	s := New(dir, 1<<16, bytes.Compare)
	for i := 0; i < 10000; i++ {
		if err := s.Add([]byte(fmt.Sprintf("record-%08d", i))); err != nil {
			t.Fatal(err)
		}
	}
	it, err := s.Sort()
	if err != nil {
		t.Fatal(err)
	}
	for it.Next() {
	}
	if it.Err() != nil {
		t.Fatal(it.Err())
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	left, err := filepath.Glob(filepath.Join(dir, "extsort-*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(left) != 0 {
		t.Fatalf("temp files left behind: %v", left)
	}
	if err := s.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
}

// TestMemoryBoundRespected: buffered bytes never exceed the configured
// limit (checked via the spill sizes: each run is at most the limit).
func TestMemoryBoundRespected(t *testing.T) {
	dir := t.TempDir()
	const limit = 1 << 16
	s := New(dir, limit, bytes.Compare)
	rec := make([]byte, 100)
	for i := 0; i < 5000; i++ {
		copy(rec, fmt.Sprintf("%08d", i))
		if err := s.Add(rec); err != nil {
			t.Fatal(err)
		}
		if got := len(s.buf) + recOverhead*len(s.offs); got > limit {
			t.Fatalf("buffered %d bytes, limit %d", got, limit)
		}
	}
	runs, _ := filepath.Glob(filepath.Join(dir, "extsort-*"))
	for _, r := range runs {
		st, err := os.Stat(r)
		if err != nil {
			t.Fatal(err)
		}
		// A run holds at most one memory-load of records (+ framing).
		if st.Size() > limit+limit/8 {
			t.Fatalf("run %s is %d bytes, over the %d bound", r, st.Size(), limit)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}
