// Package extsort sorts arbitrarily many variable-length []byte records
// under a fixed memory bound: records accumulate in one flat in-memory
// buffer, spill to sorted temp-file runs (uvarint length-framed) when the
// bound is hit, and stream back merged through a loser-free k-way heap.
//
// mcmstat's group-by rides on it: when the distinct-group table outgrows
// -mem, each (encoded key, serialized aggregate) pair becomes a record
// here, and because the aggregate merge operations are commutative the
// run partitioning never affects the merged result.
package extsort

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"sort"
)

// Compare orders two records. It must be a total order on record bytes;
// equal records are yielded in insertion order (stable).
type Compare func(a, b []byte) int

// recOff locates one record inside the Sorter's flat buffer.
type recOff struct {
	off, n int
}

// recOverhead approximates the bookkeeping bytes per buffered record when
// checking the memory bound.
const recOverhead = 16

// Sorter accumulates records and spills sorted runs once buffered bytes
// exceed the memory limit.
type Sorter struct {
	dir   string
	limit int
	cmp   Compare

	buf  []byte
	offs []recOff
	runs []*os.File

	spillBuf *bufio.Writer
	varint   [binary.MaxVarintLen64]byte
}

// New returns a Sorter spilling to temp files in dir (""  means the system
// temp dir) once buffered records exceed memLimit bytes.
func New(dir string, memLimit int, cmp Compare) *Sorter {
	if memLimit < 1<<16 {
		memLimit = 1 << 16
	}
	return &Sorter{dir: dir, limit: memLimit, cmp: cmp}
}

// Spilled reports how many runs have been written to disk.
func (s *Sorter) Spilled() int { return len(s.runs) }

// Add copies rec into the sorter.
func (s *Sorter) Add(rec []byte) error {
	if len(s.buf)+len(rec)+recOverhead*(len(s.offs)+1) > s.limit && len(s.offs) > 0 {
		if err := s.spill(); err != nil {
			return err
		}
	}
	s.offs = append(s.offs, recOff{off: len(s.buf), n: len(rec)})
	s.buf = append(s.buf, rec...)
	return nil
}

// sortBuffered orders the in-memory records (stable, so equal records keep
// insertion order).
func (s *Sorter) sortBuffered() {
	sort.SliceStable(s.offs, func(i, j int) bool {
		a, b := s.offs[i], s.offs[j]
		return s.cmp(s.buf[a.off:a.off+a.n], s.buf[b.off:b.off+b.n]) < 0
	})
}

// spill sorts the buffered records and writes them as one framed run.
func (s *Sorter) spill() error {
	s.sortBuffered()
	f, err := os.CreateTemp(s.dir, "extsort-*.run")
	if err != nil {
		return fmt.Errorf("extsort: spill: %w", err)
	}
	if s.spillBuf == nil {
		s.spillBuf = bufio.NewWriterSize(f, 256<<10)
	} else {
		s.spillBuf.Reset(f)
	}
	for _, o := range s.offs {
		n := binary.PutUvarint(s.varint[:], uint64(o.n))
		if _, err := s.spillBuf.Write(s.varint[:n]); err != nil {
			f.Close()
			return fmt.Errorf("extsort: spill: %w", err)
		}
		if _, err := s.spillBuf.Write(s.buf[o.off : o.off+o.n]); err != nil {
			f.Close()
			return fmt.Errorf("extsort: spill: %w", err)
		}
	}
	if err := s.spillBuf.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("extsort: spill: %w", err)
	}
	s.runs = append(s.runs, f)
	s.buf = s.buf[:0]
	s.offs = s.offs[:0]
	return nil
}

// Sort finishes accumulation and returns an iterator over all records in
// cmp order. The Sorter must not be Added to afterwards; Close releases
// the temp files once iteration is done.
func (s *Sorter) Sort() (*Iterator, error) {
	if len(s.runs) == 0 {
		s.sortBuffered()
		return &Iterator{mem: s, memIdx: -1}, nil
	}
	// Uniform merge: flush the in-memory tail as a final run.
	if len(s.offs) > 0 {
		if err := s.spill(); err != nil {
			return nil, err
		}
	}
	it := &Iterator{mem: nil}
	for i, f := range s.runs {
		if _, err := f.Seek(0, io.SeekStart); err != nil {
			return nil, fmt.Errorf("extsort: merge: %w", err)
		}
		it.srcs = append(it.srcs, runReader{
			idx: i,
			br:  bufio.NewReaderSize(f, 256<<10),
		})
	}
	// Prime every run and heapify.
	live := it.srcs[:0]
	for i := range it.srcs {
		r := it.srcs[i]
		ok, err := r.next()
		if err != nil {
			return nil, err
		}
		if ok {
			live = append(live, r)
		}
	}
	it.srcs = live
	it.cmp = s.cmp
	for i := len(it.srcs)/2 - 1; i >= 0; i-- {
		it.siftDown(i)
	}
	return it, nil
}

// Close removes all temp files. Safe to call multiple times.
func (s *Sorter) Close() error {
	var first error
	for _, f := range s.runs {
		name := f.Name()
		if err := f.Close(); err != nil && first == nil {
			first = err
		}
		if err := os.Remove(name); err != nil && first == nil {
			first = err
		}
	}
	s.runs = nil
	s.buf, s.offs = nil, nil
	return first
}

// runReader streams one spilled run.
type runReader struct {
	idx int
	br  *bufio.Reader
	cur []byte
	buf []byte
}

// next loads the run's next record into cur; ok=false at end of run.
func (r *runReader) next() (bool, error) {
	n, err := binary.ReadUvarint(r.br)
	if err == io.EOF {
		return false, nil
	}
	if err != nil {
		return false, fmt.Errorf("extsort: run read: %w", err)
	}
	if n > 1<<31 {
		return false, fmt.Errorf("extsort: corrupt run: record length %d", n)
	}
	if cap(r.buf) < int(n) {
		r.buf = make([]byte, n)
	}
	r.buf = r.buf[:n]
	if _, err := io.ReadFull(r.br, r.buf); err != nil {
		return false, fmt.Errorf("extsort: run read: %w", err)
	}
	r.cur = r.buf
	return true, nil
}

// Iterator yields the sorted records. Bytes() is valid until the next
// Next call.
type Iterator struct {
	// In-memory mode: walk mem.offs directly.
	mem    *Sorter
	memIdx int

	// Merge mode: min-heap of live runs, ordered by (cmp, run index) so
	// the merge is deterministic and stable across equal records.
	srcs    []runReader
	cmp     Compare
	cur     []byte
	started bool
	err     error
}

// Next advances to the next record; false at end of data or on error.
func (it *Iterator) Next() bool {
	if it.err != nil {
		return false
	}
	if it.mem != nil {
		it.memIdx++
		if it.memIdx >= len(it.mem.offs) {
			return false
		}
		o := it.mem.offs[it.memIdx]
		it.cur = it.mem.buf[o.off : o.off+o.n]
		return true
	}
	if len(it.srcs) == 0 {
		return false
	}
	if it.started {
		// Advance the run that yielded the previous record.
		ok, err := it.srcs[0].next()
		if err != nil {
			it.err = err
			return false
		}
		if !ok {
			last := len(it.srcs) - 1
			it.srcs[0] = it.srcs[last]
			it.srcs = it.srcs[:last]
			if len(it.srcs) == 0 {
				return false
			}
		}
		it.siftDown(0)
	}
	it.started = true
	it.cur = it.srcs[0].cur
	return true
}

// Bytes returns the current record.
func (it *Iterator) Bytes() []byte { return it.cur }

// Err returns the first iteration error, if any.
func (it *Iterator) Err() error { return it.err }

// less orders heap entries by record compare, then run index (earlier run
// first, preserving insertion order for equal records).
func (it *Iterator) less(i, j int) bool {
	if c := it.cmp(it.srcs[i].cur, it.srcs[j].cur); c != 0 {
		return c < 0
	}
	return it.srcs[i].idx < it.srcs[j].idx
}

func (it *Iterator) siftDown(i int) {
	n := len(it.srcs)
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && it.less(l, small) {
			small = l
		}
		if r < n && it.less(r, small) {
			small = r
		}
		if small == i {
			return
		}
		it.srcs[i], it.srcs[small] = it.srcs[small], it.srcs[i]
		i = small
	}
}
