package mcmgpu_test

import (
	"fmt"
	"log"

	"mcmgpu"
)

// Running one workload on the paper's proposed design and its baseline.
func Example() {
	spec := mcmgpu.MustWorkload("CoMD")
	base, err := mcmgpu.RunScaled(mcmgpu.BaselineMCM(), spec, 0.25)
	if err != nil {
		log.Fatal(err)
	}
	opt, err := mcmgpu.RunScaled(mcmgpu.OptimizedMCM(), spec, 0.25)
	if err != nil {
		log.Fatal(err)
	}
	if mcmgpu.Speedup(base, opt) > 1 {
		fmt.Println("the optimized MCM-GPU is faster")
	}
	// Output: the optimized MCM-GPU is faster
}

// Building a custom machine: the baseline MCM-GPU with first-touch
// placement only, to isolate one mechanism.
func Example_customConfig() {
	cfg := mcmgpu.BaselineMCM()
	cfg.Placement = mcmgpu.PlaceFirstTouch
	cfg.Name = "mcm+ft-only"

	res, err := mcmgpu.RunScaled(cfg, mcmgpu.MustWorkload("CFD"), 0.25)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Config)
	// Output: mcm+ft-only
}

// Regenerating one of the paper's figures at reduced scale.
func Example_experiment() {
	tbl, err := mcmgpu.Fig4(mcmgpu.Options{Scale: 0.1, MaxPerCategory: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(len(tbl.Rows), "link-bandwidth settings")
	// Output: 5 link-bandwidth settings
}

// The Section 3.3.1 closed-form link sizing model.
func ExampleAnalyticModel() {
	m := mcmgpu.PaperAnalyticExample()
	fmt.Printf("required link: %.0f GB/s\n", m.RequiredLinkGBps())
	// Output: required link: 3072 GB/s
}
