package mcmgpu

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"sort"
	"testing"
)

// updateGolden regenerates testdata/golden.json instead of diffing against
// it: `go test -run TestGoldenResults -update-golden .`, or set
// UPDATE_GOLDEN=1 for environments where test flags are awkward (CI, make).
var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/golden.json from the current simulator output")

const goldenPath = "testdata/golden.json"

// goldenTable is one experiment's snapshot. The Table type is already plain
// exported data, but the snapshot keys it by experiment id so the diff can
// name what moved.
type goldenTable struct {
	ID    string     `json:"id"`
	Title string     `json:"title"`
	Note  string     `json:"note,omitempty"`
	Head  []string   `json:"headers"`
	Rows  [][]string `json:"rows"`
}

// goldenOptions is the fixed reduced scale every golden run uses. Small
// enough to keep the full experiment sweep in single-digit seconds, and
// audited: a conservation-law violation fails the harness before any diff.
func goldenOptions(t *testing.T) Options {
	return Options{
		Scale:          0.05,
		MaxPerCategory: 1,
		Workers:        4,
		Audit:          true,
		Warnf: func(format string, args ...interface{}) {
			t.Helper()
			t.Errorf("golden run warning: "+format, args...)
		},
	}
}

// goldenRun executes every experiment at the golden scale and returns the
// snapshots sorted by id.
func goldenRun(t *testing.T) []goldenTable {
	t.Helper()
	drivers := Experiments()
	ids := make([]string, 0, len(drivers))
	for id := range drivers {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	opt := goldenOptions(t)
	out := make([]goldenTable, 0, len(ids))
	for _, id := range ids {
		tab, err := drivers[id](opt)
		if err != nil {
			t.Fatalf("experiment %s: %v", id, err)
		}
		out = append(out, goldenTable{
			ID: id, Title: tab.Title, Note: tab.Note, Head: tab.Headers, Rows: tab.Rows,
		})
	}
	return out
}

// TestGoldenResults is the repository's end-to-end regression net: every
// experiment driver's full table output at a fixed reduced scale, diffed
// field by field against the committed snapshot. Any change to the model
// that moves any number in any table — intended or not — shows up here as a
// named (experiment, row, column) difference. Intended changes regenerate
// the snapshot with -update-golden (or UPDATE_GOLDEN=1) and commit the diff,
// which makes model-output changes reviewable in the PR like any other code.
func TestGoldenResults(t *testing.T) {
	if testing.Short() {
		t.Skip("golden regression simulates every experiment; skipped in -short")
	}
	got := goldenRun(t)

	if *updateGolden || os.Getenv("UPDATE_GOLDEN") == "1" {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s with %d experiment snapshots", goldenPath, len(got))
		return
	}

	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden snapshot (regenerate with -update-golden): %v", err)
	}
	var want []goldenTable
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatalf("corrupt %s: %v", goldenPath, err)
	}

	wantByID := make(map[string]goldenTable, len(want))
	for _, w := range want {
		wantByID[w.ID] = w
	}
	gotByID := make(map[string]goldenTable, len(got))
	for _, g := range got {
		gotByID[g.ID] = g
	}
	for _, w := range want {
		if _, ok := gotByID[w.ID]; !ok {
			t.Errorf("experiment %s present in the snapshot but no longer produced", w.ID)
		}
	}
	for _, g := range got {
		w, ok := wantByID[g.ID]
		if !ok {
			t.Errorf("new experiment %s has no snapshot (regenerate with -update-golden)", g.ID)
			continue
		}
		diffTable(t, g, w)
	}
}

// diffTable reports every field-level difference between a produced table
// and its snapshot, named precisely enough to judge the change from the test
// log alone.
func diffTable(t *testing.T, got, want goldenTable) {
	t.Helper()
	id := got.ID
	if got.Title != want.Title {
		t.Errorf("%s: title = %q, want %q", id, got.Title, want.Title)
	}
	if got.Note != want.Note {
		t.Errorf("%s: note = %q, want %q", id, got.Note, want.Note)
	}
	if len(got.Head) != len(want.Head) {
		t.Errorf("%s: %d columns, want %d", id, len(got.Head), len(want.Head))
	} else {
		for c := range got.Head {
			if got.Head[c] != want.Head[c] {
				t.Errorf("%s: header[%d] = %q, want %q", id, c, got.Head[c], want.Head[c])
			}
		}
	}
	if len(got.Rows) != len(want.Rows) {
		t.Errorf("%s: %d rows, want %d", id, len(got.Rows), len(want.Rows))
		return
	}
	for r := range got.Rows {
		if len(got.Rows[r]) != len(want.Rows[r]) {
			t.Errorf("%s: row %d has %d cells, want %d", id, r, len(got.Rows[r]), len(want.Rows[r]))
			continue
		}
		for c := range got.Rows[r] {
			if got.Rows[r][c] != want.Rows[r][c] {
				t.Errorf("%s: row %d (%s), column %q: %q, want %q",
					id, r, rowLabel(got.Rows[r]), colLabel(got.Head, c), got.Rows[r][c], want.Rows[r][c])
			}
		}
	}
}

func rowLabel(row []string) string {
	if len(row) == 0 {
		return "?"
	}
	return row[0]
}

func colLabel(head []string, c int) string {
	if c < len(head) {
		return head[c]
	}
	return "?"
}
