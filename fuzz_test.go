package mcmgpu

import (
	"testing"

	"mcmgpu/internal/config"
	"mcmgpu/internal/core"
	"mcmgpu/internal/faultinject"
	"mcmgpu/internal/workload"
)

// FuzzFaultSpec fuzzes the MCMGPU_FAULT plan parser: any input must either
// produce a descriptive error and the zero (disabled) plan, or a plan whose
// String form parses back to exactly the same plan — and never panic. The
// parser guards every CLI's startup, so a crash here is a crash before any
// simulation runs.
func FuzzFaultSpec(f *testing.F) {
	f.Add("")
	f.Add("panic@1000")
	f.Add("stall@0")
	f.Add("spin@50000:GEMM")
	f.Add("corrupt@42")
	f.Add("corrupt-counter.line-reads@1000")
	f.Add("corrupt-counter.clamp@5000:CFD")
	f.Add("corrupt-counter.bogus@10")
	f.Add("panic@@:")
	f.Add("panic@18446744073709551615")
	f.Fuzz(func(t *testing.T, s string) {
		p, err := faultinject.Parse(s)
		if err != nil {
			if p != (faultinject.Plan{}) {
				t.Fatalf("Parse(%q) errored (%v) but returned non-zero plan %+v", s, err, p)
			}
			return
		}
		if s == "" {
			if p.Enabled() {
				t.Fatalf("Parse(\"\") returned an enabled plan %+v", p)
			}
			return
		}
		rt, err := faultinject.Parse(p.String())
		if err != nil {
			t.Fatalf("round trip of %q failed: Parse(%q): %v", s, p.String(), err)
		}
		if rt != p {
			t.Fatalf("round trip of %q diverged: %+v -> %q -> %+v", s, p, p.String(), rt)
		}
	})
}

// fuzzSpec is the tiny fixed workload FuzzConfigValidate drives through any
// machine that validates: small enough to stay fast per fuzz exec, with
// writes and multiple CTAs so every memory path is exercised.
func fuzzSpec() *workload.Spec {
	return &workload.Spec{
		Name: "fuzz-probe", Category: workload.MemoryIntensive, Pattern: workload.PatStreaming,
		CTAs: 8, WarpsPerCTA: 2, MemOpsPerWarp: 4, ComputePerMem: 2,
		KernelIters: 1, FootprintLines: 256, WriteFraction: 0.3, LinesPerOp: 1, Seed: 1,
	}
}

// FuzzConfigValidate fuzzes the configuration validator against the machine
// constructor: for an arbitrary Config, Validate must never panic, and a
// Config that Validate accepts must build (core.New) and run a small bounded
// workload without panicking. Every panic in construction — cache geometry,
// topology routing, address translation — must therefore be guarded by a
// Validate error first; historically lines-not-divisible-by-ways, disabled
// L1/L2, out-of-range enums and NaN rates all slipped through.
func FuzzConfigValidate(f *testing.F) {
	base := config.BaselineMCM()
	f.Add(base.Modules, base.SMsPerModule, base.PartitionsPerModule, base.WarpsPerSM, base.IssuePerSM,
		base.L1.SizeBytes, base.L1.Ways, base.L15.SizeBytes, base.L15.Ways, base.L2.SizeBytes, base.L2.Ways,
		base.PageBytes, base.DRAMGBps, base.XbarGBps, base.L2BWMult, base.Link.GBps,
		int(base.Topology), int(base.Scheduler), int(base.Placement), int(base.L15Alloc),
		base.Link.ReqHeaderBytes, base.Link.RespHeaderBytes)
	// 768-byte L1: 6 lines over 4 ways divides into a power-of-two set count
	// but not into whole ways — the classic cache.New panic.
	f.Add(4, 16, 2, 64, 2.0,
		768, 4, 0, 8, 1<<20, 16,
		64*1024, 768.0, 2048.0, 2.0, 768.0,
		1, 0, 0, 0, 32, 32)
	// Single module, no NoC, L1.5 disabled.
	f.Add(1, 32, 4, 64, 4.0,
		128*1024, 4, 0, 0, 2<<20, 16,
		64*1024, 768.0, 2048.0, 2.0, 0.0,
		0, 0, 0, 0, 32, 32)
	f.Fuzz(func(t *testing.T,
		modules, sms, parts, warps int, issue float64,
		l1Size, l1Ways, l15Size, l15Ways, l2Size, l2Ways int,
		pageBytes int, dram, xbar, l2bw, link float64,
		topo, sched, place, alloc int,
		reqHdr, respHdr int) {
		cfg := config.BaselineMCM()
		cfg.Name = "fuzz"
		cfg.Modules, cfg.SMsPerModule, cfg.PartitionsPerModule = modules, sms, parts
		cfg.WarpsPerSM, cfg.IssuePerSM = warps, issue
		cfg.L1.SizeBytes, cfg.L1.Ways = l1Size, l1Ways
		cfg.L15.SizeBytes, cfg.L15.Ways = l15Size, l15Ways
		cfg.L2.SizeBytes, cfg.L2.Ways = l2Size, l2Ways
		cfg.PageBytes = pageBytes
		cfg.DRAMGBps, cfg.XbarGBps, cfg.L2BWMult, cfg.Link.GBps = dram, xbar, l2bw, link
		cfg.Topology = config.TopologyKind(topo)
		cfg.Scheduler = config.SchedulerKind(sched)
		cfg.Placement = config.PlacementKind(place)
		cfg.L15Alloc = config.AllocPolicy(alloc)
		cfg.Link.ReqHeaderBytes, cfg.Link.RespHeaderBytes = reqHdr, respHdr

		if err := cfg.Validate(); err != nil {
			return // rejected is fine; panicking is not
		}

		// Validated, but possibly enormous: cap the machines we actually
		// build so the fuzzer probes logic, not the allocator.
		const maxCacheBytes = 64 << 20
		if cfg.TotalSMs() > 256 || cfg.TotalPartitions() > 64 || cfg.WarpsPerSM > 1024 ||
			cfg.L1.SizeBytes > maxCacheBytes || cfg.L15.SizeBytes > maxCacheBytes ||
			cfg.L2.SizeBytes > maxCacheBytes || cfg.PageBytes > 16<<20 {
			t.Skip("validated but too large to build under fuzzing")
		}

		m, err := core.New(cfg)
		if err != nil {
			t.Fatalf("Validate accepted the config but core.New rejected it: %v", err)
		}
		// Audited bounded run: construction succeeding is not enough — the
		// routing, translation and scheduling paths panic lazily. The event
		// budget bounds pathological-but-valid geometries (e.g. bandwidths
		// so small every transfer takes eons of simulated time).
		_, err = m.RunWith(fuzzSpec(), core.RunOptions{
			Audit:      true,
			MaxEvents:  200_000,
			CheckEvery: 256,
		})
		if err != nil {
			var se *core.SimError
			if !errorsAs(err, &se) {
				t.Fatalf("run failed with a non-SimError: %v", err)
			}
			if se.Kind == core.KindInvariant {
				t.Fatalf("validated config broke a conservation law: %v", err)
			}
		}
	})
}

// errorsAs avoids importing errors solely for the fuzz target.
func errorsAs[T any](err error, target *T) bool {
	for err != nil {
		if t, ok := err.(T); ok {
			*target = t
			return true
		}
		switch x := err.(type) {
		case interface{ Unwrap() error }:
			err = x.Unwrap()
		default:
			return false
		}
	}
	return false
}
