// Command mcmsim runs one workload on one simulated GPU system and prints
// its statistics. It is the low-level entry point; cmd/experiments
// regenerates the paper's tables and figures.
//
// Usage:
//
//	mcmsim -system mcm-baseline -workload Stream
//	mcmsim -system mcm-optimized -workload all -scale 0.5
//	mcmsim -config machine.json -workload CoMD -json
//	mcmsim -dump-config mcm-optimized      # write a preset as JSON
//	mcmsim -list
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"mcmgpu/internal/config"
	"mcmgpu/internal/core"
	"mcmgpu/internal/engine"
	"mcmgpu/internal/faultinject"
	"mcmgpu/internal/metrics"
	"mcmgpu/internal/metricstream"
	"mcmgpu/internal/prof"
	"mcmgpu/internal/report"
	"mcmgpu/internal/trace"
	"mcmgpu/internal/workload"
)

// systems maps CLI names to configuration presets.
var systems = map[string]func() *config.Config{
	"mcm-baseline":       config.BaselineMCM,
	"mcm-optimized":      config.OptimizedMCM,
	"mcm-optimized-16mb": config.OptimizedMCM16,
	"mono-128":           config.LargestBuildableMonolithic,
	"mono-256":           config.UnbuildableMonolithic,
	"multi-gpu":          config.MultiGPUBaseline,
	"multi-gpu-opt":      config.MultiGPUOptimized,
}

func main() {
	var (
		system  = flag.String("system", "mcm-baseline", "system preset to simulate")
		app     = flag.String("workload", "Stream", "workload name, a category (m-intensive, c-intensive, limited), or 'all'")
		scale   = flag.Float64("scale", 1.0, "work scale factor (trades fidelity for speed)")
		list    = flag.Bool("list", false, "list systems and workloads, then exit")
		linkBW  = flag.Float64("link", 0, "override inter-GPM link bandwidth in GB/s")
		v       = flag.Bool("v", false, "verbose per-run detail")
		char    = flag.Bool("characterize", false, "characterize the selected workloads' access streams instead of simulating")
		cfgF    = flag.String("config", "", "load the machine from a JSON file instead of -system")
		dump    = flag.String("dump-config", "", "print the named system preset as JSON and exit")
		asJSON  = flag.Bool("json", false, "emit results as JSON")
		cpuProf = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf = flag.String("memprofile", "", "write an allocation profile to this file on exit")

		timeout   = flag.Duration("timeout", 0, "wall-clock budget for the whole invocation (0 = none)")
		maxEvents = flag.Uint64("max-events", 0, "per-run event budget (0 = none)")
		maxCycles = flag.Uint64("max-cycles", 0, "per-run simulated-cycle budget (0 = none)")
		auditOn   = flag.Bool("audit", false, "check simulation invariants (conservation laws) during every run; MCMGPU_AUDIT=1 forces this on")
		keepGoing = flag.Bool("keep-going", false, "continue to the next workload after a failed run; exit 1 at the end")

		metricsF  = flag.String("metrics", "", "stream per-interval time-series samples to this file (NDJSON, or CSV when the path ends in .csv; a .gz suffix gzips either)")
		metricsIv = flag.Uint64("metrics-interval", uint64(metrics.DefaultInterval), "sampling interval in cycles for -metrics")
	)
	flag.Parse()

	stopProf, err := prof.Start(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mcmsim:", err)
		os.Exit(1)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, "mcmsim:", err)
		}
	}()

	if *dump != "" {
		mk, ok := systems[*dump]
		if !ok {
			fmt.Fprintf(os.Stderr, "mcmsim: unknown system %q\n", *dump)
			os.Exit(1)
		}
		if err := mk().WriteJSON(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "mcmsim:", err)
			os.Exit(1)
		}
		return
	}

	if *list {
		fmt.Println("systems:")
		for name := range systems {
			fmt.Printf("  %s\n", name)
		}
		fmt.Println("workloads:")
		for _, n := range workload.Names() {
			fmt.Printf("  %s\n", n)
		}
		return
	}

	var cfg *config.Config
	if *cfgF != "" {
		var err error
		if cfg, err = config.LoadFile(*cfgF); err != nil {
			fmt.Fprintln(os.Stderr, "mcmsim:", err)
			os.Exit(1)
		}
	} else {
		mk, ok := systems[*system]
		if !ok {
			fmt.Fprintf(os.Stderr, "mcmsim: unknown system %q\n", *system)
			os.Exit(1)
		}
		cfg = mk()
	}
	if *linkBW > 0 {
		cfg.Link.GBps = *linkBW
		cfg.Name = fmt.Sprintf("%s@%.0fGB/s", cfg.Name, *linkBW)
	}

	specs, err := selectWorkloads(*app)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mcmsim:", err)
		os.Exit(1)
	}

	if *char {
		if err := characterize(specs, *scale); err != nil {
			fmt.Fprintln(os.Stderr, "mcmsim:", err)
			os.Exit(1)
		}
		return
	}

	fault, err := faultinject.FromEnv()
	if err != nil {
		fmt.Fprintln(os.Stderr, "mcmsim:", err)
		os.Exit(1)
	}
	ropts := core.RunOptions{MaxEvents: *maxEvents, MaxCycles: *maxCycles, Audit: *auditOn}
	if *timeout > 0 {
		ropts.WallDeadline = time.Now().Add(*timeout)
	}

	// One recorder serves all sequential runs; each run's records carry its
	// own config/workload labels, so the streams concatenate cleanly.
	var rec *metrics.Recorder
	if *metricsF != "" {
		f, csv, err := metricstream.CreateOutput(*metricsF)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mcmsim:", err)
			os.Exit(1)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "mcmsim:", err)
				os.Exit(1)
			}
		}()
		rec = metrics.NewRecorder(f, engine.Cycle(*metricsIv), csv)
		ropts.Metrics = rec
	}

	failed := 0
	for _, spec := range specs {
		run := spec
		if *scale != 1.0 {
			run = spec.Scaled(*scale)
		}
		m, err := core.New(cfg.Clone())
		if err != nil {
			fmt.Fprintln(os.Stderr, "mcmsim:", err)
			os.Exit(1)
		}
		specOpts := ropts
		if fault.Matches(run.Name) {
			specOpts.Fault = fault
		}
		res, err := m.RunWith(run, specOpts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mcmsim:", err)
			if *keepGoing {
				failed++
				continue
			}
			os.Exit(1)
		}
		if *asJSON {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(res); err != nil {
				fmt.Fprintln(os.Stderr, "mcmsim:", err)
				os.Exit(1)
			}
			continue
		}
		fmt.Println(res)
		if *v {
			fmt.Printf("  instrs=%d memops=%d reads=%d writes=%d\n",
				res.WarpInstrs, res.MemOps, res.LineReads, res.LineWrites)
			// Hit rates render as a dash when a level was never accessed
			// (disabled L1.5, all-hit upper level), not as a fake 0%.
			fmt.Printf("  L1=%s L1.5=%s L2=%s dramBytes=%d dramUtil avg=%.2f peak=%.2f linkUtil=%.2f pages=%d\n",
				rate(res.L1HitRate, res.L1Accesses > 0),
				rate(res.L15HitRate, res.L15Accesses > 0),
				rate(res.L2HitRate, res.L2Accesses > 0),
				res.DRAMBytes, res.AvgDRAMUtil, res.PeakDRAMUtil, res.MaxLinkUtil, res.MappedPages)
			e := res.EnergyPJ
			fmt.Printf("  energy(pJ): chip=%.0f package=%.0f board=%.0f dram=%.0f total=%.0f\n",
				e.Chip, e.Package, e.Board, e.DRAM, e.Total)
		}
		if rec != nil {
			for _, tbl := range rec.Summary().Tables() {
				fmt.Println()
				if err := tbl.WriteText(os.Stdout); err != nil {
					fmt.Fprintln(os.Stderr, "mcmsim:", err)
					os.Exit(1)
				}
			}
		}
		if res.ClampedEvents > 0 {
			fmt.Fprintf(os.Stderr, "mcmsim: warning: %s clamped %d event(s) to the current cycle\n",
				run.Name, res.ClampedEvents)
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "mcmsim: %d of %d workloads failed\n", failed, len(specs))
		os.Exit(1)
	}
}

// rate renders a hit rate, or report.Dash when the level was never accessed
// — a disabled L1.5 shows "—" instead of a fake 0.000.
func rate(v float64, valid bool) string {
	if !valid {
		return report.Dash
	}
	return fmt.Sprintf("%.3f", v)
}

// characterize records one kernel launch of each workload and prints its
// access-stream statistics.
func characterize(specs []*workload.Spec, scale float64) error {
	t := report.New("Workload characterization (one kernel launch)",
		"Workload", "Category", "Pattern", "Ops", "Unique lines", "Footprint (MB)", "Write frac", "Reuse")
	for _, spec := range specs {
		run := spec
		if scale != 1.0 {
			run = spec.Scaled(scale)
		}
		tr, err := trace.Record(run)
		if err != nil {
			return err
		}
		s := tr.Summarize()
		t.AddRowF(spec.Name, spec.Category.String(), spec.Pattern.String(),
			s.Ops, s.UniqueLines, s.FootprintMB, s.WriteFraction, s.ReuseFactor)
	}
	return t.WriteText(os.Stdout)
}

// selectWorkloads resolves the -workload flag value to specs.
func selectWorkloads(sel string) ([]*workload.Spec, error) {
	switch strings.ToLower(sel) {
	case "all":
		return workload.Suite(), nil
	case "m-intensive":
		return workload.MIntensive(), nil
	case "c-intensive":
		return workload.CIntensive(), nil
	case "limited":
		return workload.Limited(), nil
	}
	s, err := workload.ByName(sel)
	if err != nil {
		return nil, err
	}
	return []*workload.Spec{s}, nil
}
