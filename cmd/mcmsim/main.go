// Command mcmsim runs one workload on one simulated GPU system and prints
// its statistics. It is the low-level entry point; cmd/experiments
// regenerates the paper's tables and figures.
//
// Usage:
//
//	mcmsim -system mcm-baseline -workload Stream
//	mcmsim -system mcm-optimized -workload all -scale 0.5
//	mcmsim -system mcm-tiled-region -workload GEMM2D-4K
//	mcmsim -config machine.json -workload CoMD -json
//	mcmsim -store /var/lib/mcmgpu -workload all   # reuse the durable run store
//	mcmsim -dump-config mcm-optimized      # write a preset as JSON
//	mcmsim -list
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"mcmgpu/internal/config"
	"mcmgpu/internal/core"
	"mcmgpu/internal/engine"
	"mcmgpu/internal/faultinject"
	"mcmgpu/internal/metrics"
	"mcmgpu/internal/metricstream"
	"mcmgpu/internal/prof"
	"mcmgpu/internal/report"
	"mcmgpu/internal/runner"
	"mcmgpu/internal/runstore"
	"mcmgpu/internal/trace"
	"mcmgpu/internal/workload"
)

// systems maps CLI names to configuration presets.
var systems = map[string]func() *config.Config{
	"mcm-baseline":       config.BaselineMCM,
	"mcm-optimized":      config.OptimizedMCM,
	"mcm-optimized-16mb": config.OptimizedMCM16,
	"mcm-tiled-region":   config.TiledRegionMCM,
	"mono-128":           config.LargestBuildableMonolithic,
	"mono-256":           config.UnbuildableMonolithic,
	"multi-gpu":          config.MultiGPUBaseline,
	"multi-gpu-opt":      config.MultiGPUOptimized,
}

func main() { os.Exit(run()) }

// run is main with an exit code instead of os.Exit calls, so every defer —
// in particular the gzip'd -metrics writer's Close, whose error is how a
// full disk announces a truncated stream — runs on every exit path.
func run() (code int) {
	var (
		system  = flag.String("system", "mcm-baseline", "system preset to simulate")
		app     = flag.String("workload", "Stream", "workload name, a category (m-intensive, c-intensive, limited), or 'all'")
		scale   = flag.Float64("scale", 1.0, "work scale factor (trades fidelity for speed)")
		list    = flag.Bool("list", false, "list systems and workloads, then exit")
		linkBW  = flag.Float64("link", 0, "override inter-GPM link bandwidth in GB/s")
		v       = flag.Bool("v", false, "verbose per-run detail")
		char    = flag.Bool("characterize", false, "characterize the selected workloads' access streams instead of simulating")
		cfgF    = flag.String("config", "", "load the machine from a JSON file instead of -system")
		dump    = flag.String("dump-config", "", "print the named system preset as JSON and exit")
		asJSON  = flag.Bool("json", false, "emit results as JSON")
		cpuProf = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf = flag.String("memprofile", "", "write an allocation profile to this file on exit")

		timeout   = flag.Duration("timeout", 0, "wall-clock budget for the whole invocation (0 = none)")
		maxEvents = flag.Uint64("max-events", 0, "per-run event budget (0 = none)")
		maxCycles = flag.Uint64("max-cycles", 0, "per-run simulated-cycle budget (0 = none)")
		auditOn   = flag.Bool("audit", false, "check simulation invariants (conservation laws) during every run; MCMGPU_AUDIT=1 forces this on")
		keepGoing = flag.Bool("keep-going", false, "continue to the next workload after a failed run; exit 1 at the end")
		storeDir  = flag.String("store", "", "durable run store directory: serve warm (config, workload, scale) cells from disk and persist fresh ones")

		metricsF  = flag.String("metrics", "", "stream per-interval time-series samples to this file (NDJSON, or CSV when the path ends in .csv; a .gz suffix gzips either)")
		metricsIv = flag.Uint64("metrics-interval", uint64(metrics.DefaultInterval), "sampling interval in cycles for -metrics")
	)
	flag.Parse()

	fail := func(err error) int {
		fmt.Fprintln(os.Stderr, "mcmsim:", err)
		return 1
	}
	warnf := func(format string, args ...interface{}) {
		fmt.Fprintf(os.Stderr, "mcmsim: "+format+"\n", args...)
	}

	stopProf, err := prof.Start(*cpuProf, *memProf)
	if err != nil {
		return fail(err)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, "mcmsim:", err)
			code = 1
		}
	}()

	if *dump != "" {
		mk, ok := systems[*dump]
		if !ok {
			return fail(fmt.Errorf("unknown system %q", *dump))
		}
		if err := mk().WriteJSON(os.Stdout); err != nil {
			return fail(err)
		}
		return 0
	}

	if *list {
		fmt.Println("systems:")
		for name := range systems {
			fmt.Printf("  %s\n", name)
		}
		fmt.Println("workloads:")
		for _, n := range workload.Names() {
			fmt.Printf("  %s\n", n)
		}
		return 0
	}

	var cfg *config.Config
	if *cfgF != "" {
		if cfg, err = config.LoadFile(*cfgF); err != nil {
			return fail(err)
		}
	} else {
		mk, ok := systems[*system]
		if !ok {
			return fail(fmt.Errorf("unknown system %q", *system))
		}
		cfg = mk()
	}
	if *linkBW > 0 {
		cfg.Link.GBps = *linkBW
		cfg.Name = fmt.Sprintf("%s@%.0fGB/s", cfg.Name, *linkBW)
	}

	specs, err := selectWorkloads(*app)
	if err != nil {
		return fail(err)
	}

	if *char {
		if err := characterize(specs, *scale); err != nil {
			return fail(err)
		}
		return 0
	}

	fault, err := faultinject.FromEnv()
	if err != nil {
		return fail(err)
	}
	ropts := core.RunOptions{MaxEvents: *maxEvents, MaxCycles: *maxCycles, Audit: *auditOn}
	if *timeout > 0 {
		ropts.WallDeadline = time.Now().Add(*timeout)
	}

	var store *runstore.Store
	if *storeDir != "" {
		// An unopenable store degrades to plain compute: durability is an
		// optimization, the simulation still runs.
		if store, err = runstore.Open(*storeDir, runstore.WithLogf(warnf), runstore.WithFault(fault)); err != nil {
			warnf("store unavailable, computing without it: %v", err)
			store = nil
		}
	}

	// One recorder serves all sequential runs; each run's records carry its
	// own config/workload labels, so the streams concatenate cleanly. With a
	// store attached, each run instead samples through its own recorder into
	// a tee (output + capture buffer), so the stream can be persisted per
	// run and replayed on store hits; the CSV header is then written once up
	// front, exactly as the parallel runner's flush phase does.
	var (
		rec        *metrics.Recorder
		metricsW   io.WriteCloser
		metricsCSV bool
	)
	if *metricsF != "" {
		f, csv, err := metricstream.CreateOutput(*metricsF)
		if err != nil {
			return fail(err)
		}
		metricsW, metricsCSV = f, csv
		defer func() {
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "mcmsim:", err)
				code = 1
			}
		}()
		if store == nil {
			rec = metrics.NewRecorder(f, engine.Cycle(*metricsIv), csv)
			ropts.Metrics = rec
		} else if csv {
			if _, err := io.WriteString(f, metrics.CSVHeader+"\n"); err != nil {
				return fail(err)
			}
		}
	}

	// keyRunner derives store keys exactly the way the parallel runner and
	// mcmserve do, so all three share warm cells.
	keyRunner := &runner.Runner{Limits: ropts0(ropts), Fault: fault}
	if store != nil && metricsW != nil {
		keyRunner.Metrics = &runner.MetricsOptions{Interval: *metricsIv, W: io.Discard, CSV: metricsCSV}
	}

	failed := 0
	for _, spec := range specs {
		runSpec := spec
		if *scale != 1.0 {
			runSpec = spec.Scaled(*scale)
		}
		job := runner.Job{Config: cfg, Spec: spec, Scale: *scale}
		var key string
		if store != nil {
			key = keyRunner.StoreKey(job)
			res, stream, ok, err := store.Get(key)
			if err != nil {
				warnf("store read failed, computing: %v", err)
			}
			if ok {
				if metricsW != nil && len(stream) > 0 {
					if _, err := metricsW.Write(stream); err != nil {
						return fail(err)
					}
				}
				if err := printResult(res, *asJSON, *v); err != nil {
					return fail(err)
				}
				if metricsW != nil {
					warnf("%s on %s: served from store; summary tables skipped (stream replayed, sampling not re-run)",
						runSpec.Name, cfg.Name)
				}
				warnClamped(res, runSpec.Name)
				continue
			}
		}

		m, err := core.New(cfg.Clone())
		if err != nil {
			return fail(err)
		}
		specOpts := ropts
		if fault.Matches(runSpec.Name) {
			specOpts.Fault = fault
		}
		var capture *bytes.Buffer
		runRec := rec
		if store != nil && metricsW != nil {
			capture = &bytes.Buffer{}
			runRec = metrics.NewRecorder(io.MultiWriter(metricsW, capture), engine.Cycle(*metricsIv), metricsCSV)
			runRec.OmitCSVHeader()
			specOpts.Metrics = runRec
		}
		res, err := m.RunWith(runSpec, specOpts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mcmsim:", err)
			if *keepGoing {
				failed++
				continue
			}
			return 1
		}
		if store != nil {
			var stream []byte
			if capture != nil {
				stream = capture.Bytes()
			}
			_ = store.Put(key, res, stream) // best-effort; failures are logged by the store
		}
		if err := printResult(res, *asJSON, *v); err != nil {
			return fail(err)
		}
		if runRec != nil {
			for _, tbl := range runRec.Summary().Tables() {
				fmt.Println()
				if err := tbl.WriteText(os.Stdout); err != nil {
					return fail(err)
				}
			}
		}
		warnClamped(res, runSpec.Name)
	}
	if store != nil {
		fmt.Fprintf(os.Stderr, "mcmsim: store: %v\n", store.Stats())
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "mcmsim: %d of %d workloads failed\n", failed, len(specs))
		return 1
	}
	return 0
}

// ropts0 strips the per-run sampler from the options used for key
// derivation (the runner models sampling through its own MetricsOptions).
func ropts0(o core.RunOptions) core.RunOptions {
	o.Metrics = nil
	return o
}

// printResult renders one run the way mcmsim always has: JSON with -json,
// one-line summary plus optional -v detail otherwise.
func printResult(res *core.Result, asJSON, verbose bool) error {
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(res)
	}
	fmt.Println(res)
	if verbose {
		fmt.Printf("  instrs=%d memops=%d reads=%d writes=%d\n",
			res.WarpInstrs, res.MemOps, res.LineReads, res.LineWrites)
		// Hit rates render as a dash when a level was never accessed
		// (disabled L1.5, all-hit upper level), not as a fake 0%.
		fmt.Printf("  L1=%s L1.5=%s L2=%s dramBytes=%d dramUtil avg=%.2f peak=%.2f linkUtil=%.2f pages=%d\n",
			rate(res.L1HitRate, res.L1Accesses > 0),
			rate(res.L15HitRate, res.L15Accesses > 0),
			rate(res.L2HitRate, res.L2Accesses > 0),
			res.DRAMBytes, res.AvgDRAMUtil, res.PeakDRAMUtil, res.MaxLinkUtil, res.MappedPages)
		e := res.EnergyPJ
		fmt.Printf("  energy(pJ): chip=%.0f package=%.0f board=%.0f dram=%.0f total=%.0f\n",
			e.Chip, e.Package, e.Board, e.DRAM, e.Total)
	}
	return nil
}

func warnClamped(res *core.Result, name string) {
	if res.ClampedEvents > 0 {
		fmt.Fprintf(os.Stderr, "mcmsim: warning: %s clamped %d event(s) to the current cycle\n",
			name, res.ClampedEvents)
	}
}

// rate renders a hit rate, or report.Dash when the level was never accessed
// — a disabled L1.5 shows "—" instead of a fake 0.000.
func rate(v float64, valid bool) string {
	if !valid {
		return report.Dash
	}
	return fmt.Sprintf("%.3f", v)
}

// characterize records one kernel launch of each workload and prints its
// access-stream statistics.
func characterize(specs []*workload.Spec, scale float64) error {
	t := report.New("Workload characterization (one kernel launch)",
		"Workload", "Category", "Pattern", "Ops", "Unique lines", "Footprint (MB)", "Write frac", "Reuse")
	for _, spec := range specs {
		run := spec
		if scale != 1.0 {
			run = spec.Scaled(scale)
		}
		tr, err := trace.Record(run)
		if err != nil {
			return err
		}
		s := tr.Summarize()
		t.AddRowF(spec.Name, spec.Category.String(), spec.Pattern.String(),
			s.Ops, s.UniqueLines, s.FootprintMB, s.WriteFraction, s.ReuseFactor)
	}
	return t.WriteText(os.Stdout)
}

// selectWorkloads resolves the -workload flag value to specs.
func selectWorkloads(sel string) ([]*workload.Spec, error) {
	switch strings.ToLower(sel) {
	case "all":
		return workload.Suite(), nil
	case "m-intensive":
		return workload.MIntensive(), nil
	case "c-intensive":
		return workload.CIntensive(), nil
	case "limited":
		return workload.Limited(), nil
	}
	s, err := workload.ByName(sel)
	if err != nil {
		return nil, err
	}
	return []*workload.Spec{s}, nil
}
