// Command experiments regenerates the tables and figures of the paper's
// evaluation section. Each experiment prints the same rows or series the
// paper reports, with a note quoting the paper's published result.
//
// Usage:
//
//	experiments -exp fig4                # one experiment
//	experiments -exp all -scale 0.5      # everything, half-size workloads
//	experiments -exp fig15 -csv          # CSV for plotting
//	experiments -exp all -store /var/lib/mcmgpu   # reuse prior runs from disk
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"mcmgpu"
	"mcmgpu/internal/faultinject"
	"mcmgpu/internal/metricstream"
	"mcmgpu/internal/prof"
	"mcmgpu/internal/report"
)

// renderBars draws one bar chart per numeric column of the table, labeled
// by the first column.
func renderBars(t *mcmgpu.Table) error {
	drew := false
	for col := 1; col < len(t.Headers); col++ {
		numeric := len(t.Rows) > 0
		for _, row := range t.Rows {
			if _, err := strconv.ParseFloat(row[col], 64); err != nil {
				numeric = false
				break
			}
		}
		if !numeric {
			continue
		}
		b, err := report.BarsFromTable(t, 0, col, "")
		if err != nil {
			continue
		}
		b.Title = fmt.Sprintf("%s — %s", t.Title, t.Headers[col])
		if err := b.WriteText(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
		drew = true
	}
	if !drew {
		// Nothing numeric to draw; fall back to the table.
		return t.WriteText(os.Stdout)
	}
	return nil
}

func main() { os.Exit(run()) }

// run is main with an exit code instead of os.Exit calls, so every defer —
// the profile stopper and the gzip'd -metrics writer in particular — gets
// to Close, and a Close failure (the way a full disk reports a truncated
// stream) fails the run loudly.
func run() (code int) {
	var (
		exp       = flag.String("exp", "headline", "experiment id (table1..4, analytic, fig2..fig17, headline, tension, all)")
		scale     = flag.Float64("scale", 1.0, "workload scale factor")
		max       = flag.Int("max", 0, "limit workloads per category (0 = all)")
		jobs      = flag.Int("j", 0, "parallel simulation jobs (0 = GOMAXPROCS, 1 = sequential)")
		nocache   = flag.Bool("nocache", false, "disable the memoized run cache")
		csv       = flag.Bool("csv", false, "emit CSV instead of text")
		bars      = flag.Bool("bars", false, "render numeric columns as ASCII bar charts")
		list      = flag.Bool("list", false, "list experiment ids")
		timeout   = flag.Duration("timeout", 0, "wall-clock budget for the whole invocation (0 = none)")
		maxEvents = flag.Uint64("max-events", 0, "per-simulation event budget (0 = none)")
		auditOn   = flag.Bool("audit", false, "check simulation invariants (conservation laws) during every job; MCMGPU_AUDIT=1 forces this on")
		keepGoing = flag.Bool("keep-going", false, "render failed cells as ERR instead of aborting; exit 1 at the end if any failed")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf   = flag.String("memprofile", "", "write an allocation profile to this file on exit")
		metricsF  = flag.String("metrics", "", "stream per-interval time-series samples of every simulation to this file (NDJSON, or CSV when the path ends in .csv; a .gz suffix gzips either)")
		metricsIv = flag.Uint64("metrics-interval", 0, "sampling interval in cycles for -metrics (0 = default)")
		storeDir  = flag.String("store", "", "durable run store directory: serve warm cells from disk and persist fresh ones")
	)
	flag.Parse()

	fail := func(err error) int {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		return 1
	}
	warnf := func(format string, args ...interface{}) {
		fmt.Fprintf(os.Stderr, "experiments: "+format+"\n", args...)
	}

	stopProf, err := prof.Start(*cpuProf, *memProf)
	if err != nil {
		return fail(err)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			code = 1
		}
	}()

	drivers := mcmgpu.Experiments()
	ids := make([]string, 0, len(drivers))
	for id := range drivers {
		ids = append(ids, id)
	}
	sort.Strings(ids)

	if *list {
		for _, id := range ids {
			fmt.Println(id)
		}
		return 0
	}

	fault, err := faultinject.FromEnv()
	if err != nil {
		return fail(err)
	}
	opt := mcmgpu.Options{
		Scale:          *scale,
		MaxPerCategory: *max,
		Workers:        *jobs,
		NoCache:        *nocache,
		MaxEvents:      *maxEvents,
		Audit:          *auditOn,
		KeepGoing:      *keepGoing,
		Fault:          fault,
	}
	if *timeout > 0 {
		opt.Deadline = time.Now().Add(*timeout)
	}
	if *storeDir != "" {
		// An unopenable store degrades to plain compute, never a failure.
		store, err := mcmgpu.OpenRunStore(*storeDir, warnf)
		if err != nil {
			warnf("store unavailable, computing without it: %v", err)
		} else {
			opt.Store = store
			defer func() {
				fmt.Fprintf(os.Stderr, "experiments: store: %v\n", store.Stats())
			}()
		}
	}
	if *metricsF != "" {
		f, mcsv, err := metricstream.CreateOutput(*metricsF)
		if err != nil {
			return fail(err)
		}
		defer func() {
			// Close reports what Write buffered: a full disk surfaces here.
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				code = 1
			}
		}()
		opt.Metrics = &mcmgpu.MetricsOptions{
			Interval: *metricsIv,
			W:        f,
			CSV:      mcsv,
		}
	}
	// Warnings go to stderr (deduplicated) so the table output on stdout
	// stays byte-identical across -j settings and reruns of cached cells.
	warned := map[string]bool{}
	failedCells := false
	opt.Warnf = func(format string, args ...interface{}) {
		msg := fmt.Sprintf(format, args...)
		if warned[msg] {
			return
		}
		warned[msg] = true
		if strings.HasPrefix(msg, "cell failed") {
			failedCells = true
		}
		fmt.Fprintln(os.Stderr, "experiments: warning:", msg)
	}

	var run []string
	if *exp == "all" {
		run = ids
	} else {
		if _, ok := drivers[*exp]; !ok {
			fmt.Fprintf(os.Stderr, "experiments: unknown id %q (have %v)\n", *exp, ids)
			return 1
		}
		run = []string{*exp}
	}

	failedExps := 0
	for _, id := range run {
		start := time.Now()
		t, err := drivers[id](opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", id, err)
			if *keepGoing {
				failedExps++
				continue
			}
			return 1
		}
		if *csv {
			if err := t.WriteCSV(os.Stdout); err != nil {
				return fail(err)
			}
		} else if *bars {
			if err := renderBars(t); err != nil {
				return fail(err)
			}
			fmt.Printf("[%s in %v]\n\n", id, time.Since(start).Round(time.Millisecond))
		} else {
			if err := t.WriteText(os.Stdout); err != nil {
				return fail(err)
			}
			fmt.Printf("[%s in %v]\n\n", id, time.Since(start).Round(time.Millisecond))
		}
	}
	if !*nocache {
		// Stats go to stderr so table output stays byte-identical across
		// -j settings and redirects.
		s := mcmgpu.RunCacheStats()
		fmt.Fprintf(os.Stderr, "run cache: %d simulations, %d hits, %d entries\n",
			s.Simulations(), s.Hits, s.Entries)
	}
	if failedCells || failedExps > 0 {
		fmt.Fprintf(os.Stderr, "experiments: completed with failures (%d experiment(s) aborted)\n", failedExps)
		return 1
	}
	return code
}
