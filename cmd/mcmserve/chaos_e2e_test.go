package main

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"mcmgpu/internal/chaosproxy"
	"mcmgpu/internal/faultinject"
	"mcmgpu/internal/runner"
	"mcmgpu/internal/runstore/client"
)

// TestChaosEndToEnd is the execution plane's survival proof: a pool over
// three backends sharing one store — one killed right after accepting its
// shard, one reachable only through a chaos proxy injecting the full net-*
// fault family — still produces results byte-identical to a clean local
// run, with every distinct cell simulated exactly once across the fleet
// and every armed fault provably fired.
func TestChaosEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-backend chaos e2e in -short mode")
	}
	dir := t.TempDir()

	// Backend A: healthy. Backend B: healthy but fronted by the chaos
	// proxy. Backend C: accepts submissions but has no workers, and its
	// HTTP listener is killed shortly after its first accepted batch — the
	// pool must fail C's shard over to A and B.
	sA := newServer(mustOpenStore(t, dir), 2, 64, t.Logf)
	tsA := httptest.NewServer(sA.mux)
	defer tsA.Close()

	sB := newServer(mustOpenStore(t, dir), 2, 64, t.Logf)
	tsB := httptest.NewServer(sB.mux)
	defer tsB.Close()

	// Each plan targets its own endpoint so the fault windows are
	// positions in independent request sequences — deterministic no matter
	// how submissions, watches, and fetches interleave:
	//   - B's first submission answers 429 (client honors Retry-After),
	//   - B's first watch stream is severed, the second truncated mid-NDJSON,
	//   - B's first result fetch answers 503, the retry eats a latency spike.
	plans, err := faultinject.ParseList(
		"net-429@0#1:/v1/batches," +
			"net-drop@0#1:/watch," +
			"net-truncate@1#1:/watch," +
			"net-5xx@0#1:/result," +
			"net-latency@1#1:/result")
	if err != nil {
		t.Fatal(err)
	}
	proxy, err := chaosproxy.New(tsB.URL, plans)
	if err != nil {
		t.Fatal(err)
	}
	proxy.Logf = t.Logf
	defer proxy.Close()
	tsProxy := httptest.NewServer(proxy)
	defer tsProxy.Close()

	sC := newServer(mustOpenStore(t, dir), 0, 64, t.Logf)
	var (
		tsC      *httptest.Server
		killOnce sync.Once
	)
	tsC = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sC.mux.ServeHTTP(w, r)
		if r.Method == http.MethodPost && strings.HasPrefix(r.URL.Path, "/v1/batches") {
			killOnce.Do(func() {
				go func() {
					time.Sleep(50 * time.Millisecond)
					tsC.CloseClientConnections()
					tsC.Close()
				}()
			})
		}
	}))
	defer tsC.Close()

	m := testManifest(t, "Stream", "CFD", "GEMM", "CoMD", "SSSP", "BFS")
	pool := client.NewPool(
		[]string{tsA.URL, tsProxy.URL, tsC.URL},
		&client.Client{
			Retries:          3,
			Backoff:          5 * time.Millisecond,
			WatchIdleTimeout: 5 * time.Second,
			Logf:             t.Logf,
		})
	pool.ProbeTimeout = 500 * time.Millisecond
	pool.ProbeInterval = 100 * time.Millisecond

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	results, statuses, err := pool.Run(ctx, m)
	if err != nil {
		t.Fatalf("pool run under chaos: %v", err)
	}
	for i, js := range statuses {
		if js.State != client.StateDone || results[i] == nil {
			t.Fatalf("job %d (%s): %+v, want done with result", i, m.Jobs[i].Workload, js)
		}
	}

	// Byte-identical to a clean local run of the same manifest.
	var jobs []runner.Job
	for _, jr := range m.Jobs {
		j, err := parseJob(jr)
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	local, err := (&runner.Runner{Workers: 2, Cache: runner.NewCache()}).Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range jobs {
		want, _ := json.Marshal(local[i])
		got, _ := json.Marshal(results[i])
		if string(want) != string(got) {
			t.Fatalf("job %d (%s): chaos-run result differs from local run\nlocal:  %s\nremote: %s",
				i, m.Jobs[i].Workload, want, got)
		}
	}

	// Zero duplicated work: across all three backends, exactly one
	// simulation and one store write per distinct cell.
	sims := sA.cache.Stats().Simulations() + sB.cache.Stats().Simulations() + sC.cache.Stats().Simulations()
	if sims != uint64(len(jobs)) {
		t.Fatalf("fleet ran %d simulations for %d distinct cells", sims, len(jobs))
	}
	puts := sA.store.Stats().Puts + sB.store.Stats().Puts + sC.store.Stats().Puts
	if puts != uint64(len(jobs)) {
		t.Fatalf("fleet persisted %d results for %d distinct cells", puts, len(jobs))
	}

	// The damage was real: the dead backend forced a failover, and every
	// armed fault kind fired at least once (anti-vacuity).
	ps := pool.Stats()
	if ps.Failovers == 0 || ps.Resubmits == 0 {
		t.Fatalf("killed backend caused no failover: %+v", ps)
	}
	st := proxy.Stats()
	for _, kind := range []string{"net-429", "net-drop", "net-truncate", "net-5xx", "net-latency"} {
		if st.Injected[kind] == 0 {
			t.Fatalf("fault %s armed but never injected (vacuous): %+v", kind, st)
		}
	}
	t.Logf("chaos e2e: pool stats %+v, proxy stats %+v", ps, st)
}
