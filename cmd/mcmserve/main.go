// Command mcmserve is simulation-as-a-service in front of the durable run
// store: clients POST batched sweep manifests, the server deduplicates
// identical cells across all clients (via the content-addressed store plus
// the in-process single-flight cache), simulates what is genuinely new, and
// serves warm cells instantly.
//
// Robustness contract:
//
//   - Every result is written atomically and SHA-256 verified on read; a
//     torn or corrupted artifact is quarantined and recomputed, never
//     served (see internal/runstore).
//   - An unreadable store degrades to compute: jobs still run, the client
//     never sees a 500 because a disk failed.
//   - The job queue is bounded; a full queue answers 429 with a
//     Retry-After derived from the actual backlog rather than accepting
//     unbounded memory.
//   - GET /readyz is liveness-distinct: 503 (with Retry-After) while
//     draining or while the queue is saturated, so pools and load
//     balancers stop routing to a server that is leaving; /healthz keeps
//     answering 200.
//   - SIGTERM flips /readyz first, then drains gracefully: in-flight jobs
//     finish, queued jobs persist to <store>/pending.json (resumed by the
//     next server), and the process exits 0.
//   - Deterministic job failures (panic, budget, invariant — the classes
//     a retry anywhere would reproduce) burn an attempt and re-run up to
//     -poison-attempts, then the job is poisoned: quarantined in
//     <store>/poisoned.json, shared by every server on the store, and
//     resubmissions answer instantly with the structured failure instead
//     of burning another backend.
//
// Usage:
//
//	mcmserve -store /var/lib/mcmgpu -addr :8037
//	mcmsim -dump-config mcm-baseline > sys.json
//	curl -s -X POST localhost:8037/v1/batches -d \
//	  '{"jobs":[{"system":'"$(cat sys.json)"',"workload":"Stream","scale":0.1}]}'
//	curl -s localhost:8037/v1/batches/b000001/watch   # live NDJSON progress
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"mcmgpu/internal/faultinject"
	"mcmgpu/internal/runstore"
)

func main() {
	var (
		addr     = flag.String("addr", ":8037", "listen address")
		storeDir = flag.String("store", "", "durable run store directory (empty = memory-only, results die with the process)")
		workers  = flag.Int("j", 0, "parallel simulation workers (0 = GOMAXPROCS)")
		queueCap = flag.Int("queue", 256, "maximum queued jobs; a full queue answers 429")
		poisonK  = flag.Int("poison-attempts", 0, "deterministic failures a job may accumulate before quarantine (0 = default 3)")
	)
	flag.Parse()

	logf := func(format string, args ...interface{}) {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
	}

	// The fault plan (MCMGPU_FAULT) arms the whole stack consistently:
	// store faults reach the store tier, engine faults reach every worker
	// runner AND job-identity derivation, so a faulted cell can never
	// collide with an unfaulted one.
	plan, err := faultinject.FromEnv()
	if err != nil {
		logf("mcmserve: %v", err)
		os.Exit(2)
	}
	if plan.IsNet() {
		logf("mcmserve: net fault plans belong on a chaosproxy, not the server; unset MCMGPU_FAULT")
		os.Exit(2)
	}

	var store *runstore.Store
	if *storeDir != "" {
		store, err = runstore.Open(*storeDir, runstore.WithLogf(logf), runstore.WithFault(plan))
		if err != nil {
			// Degrade, don't die: an unopenable store costs durability,
			// not service. Results are still computed and deduplicated
			// in-process.
			logf("mcmserve: store unavailable, degrading to memory-only: %v", err)
			store = nil
		}
	}

	n := *workers
	if n <= 0 {
		n = defaultWorkers()
	}
	s := newServerOpts(serverOptions{
		Store:          store,
		Workers:        n,
		QueueCap:       *queueCap,
		Logf:           logf,
		Fault:          plan,
		PoisonAttempts: *poisonK,
	})
	httpSrv := &http.Server{Addr: *addr, Handler: s.mux}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	done := make(chan struct{})
	go func() {
		sig := <-sigc
		logf("mcmserve: %v: draining (in-flight jobs finish, queued jobs persist)", sig)
		s.drain()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		httpSrv.Shutdown(ctx)
		close(done)
	}()

	logf("mcmserve: listening on %s (store %s, %d workers, queue %d)",
		*addr, storeDesc(store), n, *queueCap)
	if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		logf("mcmserve: %v", err)
		os.Exit(1)
	}
	<-done
}

func storeDesc(store *runstore.Store) string {
	if store == nil {
		return "none (memory-only)"
	}
	return store.Dir()
}

func defaultWorkers() int { return runtime.GOMAXPROCS(0) }
