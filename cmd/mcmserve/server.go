package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"mcmgpu/internal/config"
	"mcmgpu/internal/core"
	"mcmgpu/internal/faultinject"
	"mcmgpu/internal/runner"
	"mcmgpu/internal/runstore"
	"mcmgpu/internal/runstore/client"
	"mcmgpu/internal/workload"
)

// maxManifestBytes bounds a submission body; a manifest is configuration,
// not data, so 16 MB is generous.
const maxManifestBytes = 16 << 20

// pendingFile is where a draining server persists its queued jobs, inside
// the store directory (queued work is durable exactly when results are).
const pendingFile = "pending.json"

// poisonedFile is where quarantined jobs persist, next to pending.json: a
// job that failed deterministically on every allowed attempt must stay
// quarantined across restarts, or every new server would burn its attempt
// budget rediscovering the same poison.
const poisonedFile = "poisoned.json"

// defaultPoisonAttempts is how many deterministic failures a job gets
// before quarantine. Transient failures (cancellation, wall deadline)
// never count.
const defaultPoisonAttempts = 3

// watchKeepalive is how often a watch stream resends the latest snapshot
// even without a state change, so a client's idle watchdog can tell a
// quiet batch from a dead connection.
const watchKeepalive = 2 * time.Second

// poisonRecord is one quarantined job as persisted in poisoned.json.
type poisonRecord struct {
	ID       string `json:"id"`
	Workload string `json:"workload"`
	Config   string `json:"config"`
	Error    string `json:"error"`
	Kind     string `json:"kind"`
	Attempts int    `json:"attempts"`
}

// pendingJob is one queued job persisted across a drain: the original wire
// request plus the manifest-level bounds that participate in its identity.
type pendingJob struct {
	Req       client.JobRequest `json:"req"`
	MaxEvents uint64            `json:"max_events,omitempty"`
	MaxCycles uint64            `json:"max_cycles,omitempty"`
	Audit     bool              `json:"audit,omitempty"`
}

// svcJob is the server's record of one deduplicated job. All fields after
// the immutable identity block are guarded by server.mu.
type svcJob struct {
	id     string
	key    string
	req    client.JobRequest
	job    runner.Job
	limits core.RunOptions

	state  string
	source string
	errMsg string
	// errKind classifies a failure (runner.ErrClass); attempts counts how
	// many times a worker ran the job; poisoned marks a job quarantined
	// after exhausting its attempt budget on deterministic failures.
	errKind  string
	attempts int
	poisoned bool
	res      *core.Result
	// refs counts live batches referencing the job; canceling a batch
	// decrements it and the job itself is canceled at zero, so one
	// client's cancel can never kill a cell another client still wants.
	refs   int
	ctx    context.Context
	cancel context.CancelFunc
}

func (j *svcJob) statusLocked() client.JobStatus {
	return client.JobStatus{
		ID:       j.id,
		State:    j.state,
		Source:   j.source,
		Error:    j.errMsg,
		Workload: j.job.Spec.Name,
		Config:   j.job.Config.Name,
		ErrKind:  j.errKind,
		Attempts: j.attempts,
		Poisoned: j.poisoned,
	}
}

type svcBatch struct {
	id       string
	jobIDs   []string
	canceled bool
}

type server struct {
	store    *runstore.Store // nil = degraded, memory-only service
	cache    *runner.Cache
	queueCap int
	workers  int
	// fault is the server's armed fault plan (engine or store family). It
	// participates in store-key derivation AND in every worker's runner,
	// so job identity always reflects the faults the job actually runs
	// under.
	fault faultinject.Plan
	// poisonK is the attempt budget before quarantine.
	poisonK int
	logf    func(format string, args ...interface{})

	mu       sync.Mutex
	cond     *sync.Cond // signals queue activity and stopping
	queue    []*svcJob  // FIFO of jobs waiting for a worker
	jobs     map[string]*svcJob
	batches  map[string]*svcBatch
	poisoned map[string]poisonRecord // quarantined job IDs, loaded from disk
	inflight int                     // jobs a worker is currently running
	batchSeq int
	draining bool
	stopping bool

	wg  sync.WaitGroup
	mux *http.ServeMux
}

// serverOptions configures newServerOpts; the zero value of every
// optional field means its default.
type serverOptions struct {
	Store    *runstore.Store
	Workers  int
	QueueCap int
	Logf     func(string, ...interface{})
	// Fault is the fault plan armed into every worker's runner and into
	// store-key derivation (engine faults shape job identity).
	Fault faultinject.Plan
	// PoisonAttempts is the deterministic-failure budget before a job is
	// quarantined (default 3).
	PoisonAttempts int
}

// newServer keeps the original compact constructor; tests and call sites
// that need the robustness knobs use newServerOpts.
func newServer(store *runstore.Store, workers, queueCap int, logf func(string, ...interface{})) *server {
	return newServerOpts(serverOptions{Store: store, Workers: workers, QueueCap: queueCap, Logf: logf})
}

func newServerOpts(o serverOptions) *server {
	if o.Logf == nil {
		o.Logf = func(string, ...interface{}) {}
	}
	if o.QueueCap <= 0 {
		o.QueueCap = 256
	}
	if o.PoisonAttempts <= 0 {
		o.PoisonAttempts = defaultPoisonAttempts
	}
	s := &server{
		store:    o.Store,
		cache:    runner.NewCache(),
		queueCap: o.QueueCap,
		workers:  o.Workers,
		fault:    o.Fault,
		poisonK:  o.PoisonAttempts,
		logf:     o.Logf,
		jobs:     map[string]*svcJob{},
		batches:  map[string]*svcBatch{},
		poisoned: map[string]poisonRecord{},
	}
	s.cond = sync.NewCond(&s.mu)
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/batches", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/batches/{id}", s.handleBatch)
	s.mux.HandleFunc("GET /v1/batches/{id}/watch", s.handleWatch)
	s.mux.HandleFunc("POST /v1/batches/{id}/cancel", s.handleCancelBatch)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	s.mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	s.mux.HandleFunc("POST /v1/jobs/{id}/cancel", s.handleCancelJob)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /readyz", s.handleReady)
	s.mux.HandleFunc("GET /statsz", s.handleStats)
	s.loadPoisoned()
	if o.Workers > 0 {
		s.startWorkers(o.Workers)
	}
	s.recoverPending()
	return s
}

func (s *server) startWorkers(n int) {
	for i := 0; i < n; i++ {
		s.wg.Add(1)
		go s.worker()
	}
}

// storeKey derives the durable identity of a parsed job under its limits —
// the same key the local CLIs' runners use, so a cell simulated by sweep on
// a laptop is a store hit here and vice versa. The server's fault plan is
// part of the key exactly as it is part of the worker runner, so faulted
// and unfaulted runs of one cell can never collide.
func (s *server) storeKey(j runner.Job, limits core.RunOptions) string {
	return (&runner.Runner{Limits: limits, Fault: s.fault}).StoreKey(j)
}

// parseJob validates one wire request into a runnable job.
func parseJob(req client.JobRequest) (runner.Job, error) {
	if len(req.System) == 0 {
		return runner.Job{}, errors.New("missing system configuration")
	}
	cfg, err := config.ReadJSON(bytes.NewReader(req.System))
	if err != nil {
		return runner.Job{}, fmt.Errorf("bad system configuration: %w", err)
	}
	spec, err := workload.ByName(req.Workload)
	if err != nil {
		return runner.Job{}, err
	}
	return runner.Job{Config: cfg, Spec: spec, Scale: req.Scale}, nil
}

func httpError(w http.ResponseWriter, code int, format string, args ...interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(client.ErrorBody{Error: fmt.Sprintf(format, args...)})
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

// submit is the transport-independent submission path, shared by the HTTP
// handler and pending-queue recovery. It deduplicates jobs against live
// records and the store, enqueues the rest atomically (all or nothing
// against the queue bound), and returns the new batch's status.
func (s *server) submit(m client.Manifest) (*client.BatchStatus, int, error) {
	if len(m.Jobs) == 0 {
		return nil, http.StatusBadRequest, errors.New("manifest has no jobs")
	}
	limits := core.RunOptions{MaxEvents: m.MaxEvents, MaxCycles: m.MaxCycles, Audit: m.Audit}

	type parsed struct {
		req      client.JobRequest
		job      runner.Job
		key, id  string
		storeHit bool
		res      *core.Result
	}
	items := make([]parsed, len(m.Jobs))
	for i, req := range m.Jobs {
		job, err := parseJob(req)
		if err != nil {
			return nil, http.StatusBadRequest, fmt.Errorf("job %d: %w", i, err)
		}
		key := s.storeKey(job, limits)
		items[i] = parsed{req: req, job: job, key: key, id: runstore.KeyID(key)}
	}
	// Probe the store outside the lock: warm cells become instantly-done
	// jobs with no queue traffic. A store error here degrades to a queue
	// slot (the worker recomputes), never to a failed submission.
	if s.store != nil {
		for i := range items {
			if res, _, ok, err := s.store.Get(items[i].key); err == nil && ok {
				items[i].storeHit = true
				items[i].res = res
			}
		}
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return nil, http.StatusServiceUnavailable, errors.New("server is draining")
	}
	need := 0
	counted := map[string]bool{}
	for _, it := range items {
		if it.storeHit || counted[it.id] || s.poisonedLocked(it.id) != nil {
			continue
		}
		if j, ok := s.jobs[it.id]; ok && j.state != client.StateCanceled {
			continue
		}
		counted[it.id] = true
		need++
	}
	if len(s.queue)+need > s.queueCap {
		return nil, http.StatusTooManyRequests,
			fmt.Errorf("queue full (%d queued, %d new jobs, cap %d)", len(s.queue), need, s.queueCap)
	}

	s.batchSeq++
	b := &svcBatch{id: fmt.Sprintf("b%06d", s.batchSeq)}
	bs := &client.BatchStatus{ID: b.id, Done: true}
	seen := map[string]bool{}
	for _, it := range items {
		j, live := s.jobs[it.id]
		switch {
		case live && j.state != client.StateCanceled:
			// Deduplicated onto an existing record (possibly from another
			// client's batch).
		case s.poisonedLocked(it.id) != nil:
			// Quarantined: resubmission returns the recorded structured
			// failure instantly instead of burning another attempt budget.
			rec := s.poisonedLocked(it.id)
			j = &svcJob{
				id: it.id, key: it.key, req: it.req, job: it.job, limits: limits,
				state: client.StateFailed, errMsg: rec.Error, errKind: rec.Kind,
				attempts: rec.Attempts, poisoned: true,
			}
			s.jobs[it.id] = j
		case it.storeHit:
			j = &svcJob{
				id: it.id, key: it.key, req: it.req, job: it.job, limits: limits,
				state: client.StateDone, source: client.SourceStore, res: it.res,
			}
			s.jobs[it.id] = j
		default:
			ctx, cancel := context.WithCancel(context.Background())
			j = &svcJob{
				id: it.id, key: it.key, req: it.req, job: it.job, limits: limits,
				state: client.StateQueued, ctx: ctx, cancel: cancel,
			}
			s.jobs[it.id] = j
			s.queue = append(s.queue, j)
			s.cond.Signal()
		}
		if !seen[it.id] {
			seen[it.id] = true
			if !jobDone(j.state) {
				j.refs++
			}
		}
		b.jobIDs = append(b.jobIDs, it.id)
		bs.Jobs = append(bs.Jobs, j.statusLocked())
		if !jobDone(j.state) {
			bs.Done = false
		}
	}
	s.batches[b.id] = b
	return bs, http.StatusOK, nil
}

func jobDone(state string) bool {
	return state == client.StateDone || state == client.StateFailed || state == client.StateCanceled
}

func (s *server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var m client.Manifest
	body := http.MaxBytesReader(w, r.Body, maxManifestBytes)
	if err := json.NewDecoder(body).Decode(&m); err != nil {
		httpError(w, http.StatusBadRequest, "bad manifest: %v", err)
		return
	}
	bs, code, err := s.submit(m)
	if err != nil {
		if code == http.StatusTooManyRequests {
			w.Header().Set("Retry-After", fmt.Sprintf("%d", s.retryAfter()))
		}
		httpError(w, code, "%v", err)
		return
	}
	writeJSON(w, bs)
}

// retryAfter estimates seconds until queue pressure clears: the backlog
// (queued + in-flight jobs) over the worker count, assuming roughly a
// job per worker-second, floored at 1 and capped at 30. A hard-coded
// constant here made every rejected client retry in lockstep regardless
// of how deep the backlog actually was.
func (s *server) retryAfter() int {
	s.mu.Lock()
	backlog := len(s.queue) + s.inflight
	s.mu.Unlock()
	w := s.workers
	if w <= 0 {
		w = 1
	}
	ra := 1 + backlog/w
	if ra > 30 {
		ra = 30
	}
	return ra
}

// worker pulls jobs off the queue until the server stops. In-flight jobs
// always finish: stopping only prevents taking new work.
func (s *server) worker() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		for len(s.queue) == 0 && !s.stopping {
			s.cond.Wait()
		}
		if s.stopping {
			s.mu.Unlock()
			return
		}
		j := s.queue[0]
		s.queue = s.queue[1:]
		if j.state != client.StateQueued {
			s.mu.Unlock() // canceled while queued
			continue
		}
		j.state = client.StateRunning
		s.inflight++
		s.mu.Unlock()
		s.runOne(j)
	}
}

// runOne executes one job through the store-backed runner: a cell another
// client (or a past process) already computed is a store or cache hit, a
// fresh cell is simulated and persisted, and store failures degrade to
// compute inside the runner tier — a job never fails because the disk did.
func (s *server) runOne(j *svcJob) {
	source := client.SourceCompute
	if s.store != nil {
		// Re-probe: the cell may have been filled between submit and now.
		if res, _, ok, err := s.store.Get(j.key); err == nil && ok {
			s.finish(j, res, nil, client.SourceStore)
			return
		}
	}
	limits := j.limits
	limits.Ctx = j.ctx
	rr := &runner.Runner{
		Workers: 1,
		Cache:   s.cache,
		Store:   s.store,
		Limits:  limits,
		Fault:   s.fault,
	}
	results, err := rr.Run([]runner.Job{j.job})
	if err != nil {
		s.finish(j, nil, err, "")
		return
	}
	s.finish(j, results[0], nil, source)
}

// finish records a job's outcome. Failures are partitioned by error
// class: cancellation and wall-time failures are environmental and
// terminal as-is; deterministic failures (panic, budget, invariant) burn
// one attempt and re-enqueue until the budget is exhausted, at which
// point the job is poisoned — quarantined in memory and on disk so no
// server ever runs it again.
func (s *server) finish(j *svcJob, res *core.Result, err error, source string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.inflight > 0 {
		s.inflight--
	}
	switch {
	case err == nil:
		j.state = client.StateDone
		j.source = source
		j.res = res
	case j.ctx != nil && j.ctx.Err() != nil:
		j.state = client.StateCanceled
		j.errKind = string(runner.ClassCanceled)
	default:
		class := runner.Classify(err)
		j.errKind = string(class)
		j.errMsg = err.Error()
		if !class.Deterministic() {
			// Transient: a retry under different wall-time conditions could
			// succeed, but the job's budget was the client's choice — fail
			// the job, never poison it.
			j.state = client.StateFailed
			break
		}
		j.attempts++
		if j.attempts < s.poisonK && !s.stopping {
			// The in-process cache memoizes deterministic errors, so these
			// retries are near-instant; the budget exists to catch
			// environment-dependent "deterministic" failures (a bug in the
			// classifier, a fault plan keyed on attempt count) without
			// retrying a genuinely poisoned cell forever.
			j.state = client.StateQueued
			s.queue = append(s.queue, j)
			s.cond.Signal()
			s.logf("mcmserve: job %s (%s on %s) attempt %d/%d failed (%s), requeued: %v",
				j.id, j.job.Spec.Name, j.job.Config.Name, j.attempts, s.poisonK, j.errKind, err)
			return
		}
		j.state = client.StateFailed
		j.poisoned = true
		s.quarantineLocked(j)
	}
	s.logf("mcmserve: job %s (%s on %s) %s", j.id, j.job.Spec.Name, j.job.Config.Name, j.state)
}

// poisonedLocked returns the quarantine record for a job ID, nil if none.
func (s *server) poisonedLocked(id string) *poisonRecord {
	if rec, ok := s.poisoned[id]; ok {
		return &rec
	}
	return nil
}

// quarantineLocked records a poisoned job in memory and persists the
// quarantine set next to pending.json, so the poison survives restarts.
func (s *server) quarantineLocked(j *svcJob) {
	rec := poisonRecord{
		ID:       j.id,
		Workload: j.job.Spec.Name,
		Config:   j.job.Config.Name,
		Error:    j.errMsg,
		Kind:     j.errKind,
		Attempts: j.attempts,
	}
	s.poisoned[j.id] = rec
	s.logf("mcmserve: job %s (%s on %s) poisoned after %d attempts: %s",
		j.id, rec.Workload, rec.Config, rec.Attempts, rec.Error)
	if s.store == nil {
		return
	}
	recs := make([]poisonRecord, 0, len(s.poisoned))
	for _, r := range s.poisoned {
		recs = append(recs, r)
	}
	sort.Slice(recs, func(a, b int) bool { return recs[a].ID < recs[b].ID })
	if err := writeFileAtomic(filepath.Join(s.store.Dir(), poisonedFile), recs); err != nil {
		s.logf("mcmserve: persisting quarantine failed: %v", err)
	}
}

// loadPoisoned restores the quarantine set a predecessor persisted. The
// file is kept (not consumed): quarantine is state, not a work queue.
func (s *server) loadPoisoned() {
	if s.store == nil {
		return
	}
	data, err := os.ReadFile(filepath.Join(s.store.Dir(), poisonedFile))
	if err != nil {
		return
	}
	var recs []poisonRecord
	if err := json.Unmarshal(data, &recs); err != nil {
		s.logf("mcmserve: unreadable %s (ignored): %v", poisonedFile, err)
		return
	}
	for _, r := range recs {
		s.poisoned[r.ID] = r
	}
	if len(recs) > 0 {
		s.logf("mcmserve: %d quarantined job(s) loaded from %s", len(recs), poisonedFile)
	}
}

func (s *server) batchStatusLocked(b *svcBatch) *client.BatchStatus {
	bs := &client.BatchStatus{ID: b.id, Done: true}
	for _, id := range b.jobIDs {
		j := s.jobs[id]
		bs.Jobs = append(bs.Jobs, j.statusLocked())
		if !jobDone(j.state) {
			bs.Done = false
		}
	}
	return bs
}

func (s *server) handleBatch(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	b, ok := s.batches[r.PathValue("id")]
	if !ok {
		s.mu.Unlock()
		httpError(w, http.StatusNotFound, "no such batch")
		return
	}
	bs := s.batchStatusLocked(b)
	s.mu.Unlock()
	writeJSON(w, bs)
}

// handleWatch streams batch status as NDJSON: one snapshot per state
// change, a keepalive resend of the latest snapshot every couple of
// seconds while nothing changes, and a final snapshot when the batch is
// done. The keepalive is what lets a client-side idle watchdog tell a
// quiet batch from a dead connection. curl .../watch renders a live view.
func (s *server) handleWatch(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	flusher, _ := w.(http.Flusher)
	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	var last []byte
	var lastSent time.Time
	for {
		s.mu.Lock()
		b, ok := s.batches[id]
		if !ok {
			s.mu.Unlock()
			httpError(w, http.StatusNotFound, "no such batch")
			return
		}
		bs := s.batchStatusLocked(b)
		s.mu.Unlock()
		cur, _ := json.Marshal(bs)
		if !bytes.Equal(cur, last) || time.Since(lastSent) >= watchKeepalive {
			last = cur
			lastSent = time.Now()
			if err := enc.Encode(bs); err != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
		if bs.Done {
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-time.After(100 * time.Millisecond):
		}
	}
}

func (s *server) handleJob(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	j, ok := s.jobs[r.PathValue("id")]
	if !ok {
		s.mu.Unlock()
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	js := j.statusLocked()
	s.mu.Unlock()
	writeJSON(w, js)
}

// handleResult serves a done job's result — from memory when this process
// ran it, from the store otherwise (which is how a restarted server serves
// results for jobs submitted to its predecessor).
func (s *server) handleResult(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	j, ok := s.jobs[id]
	var (
		res   *core.Result
		state string
	)
	if ok {
		state = j.state
		res = j.res
	}
	s.mu.Unlock()
	if ok && state != client.StateDone {
		httpError(w, http.StatusConflict, "job is %s", state)
		return
	}
	if res == nil && s.store != nil {
		var err error
		res, _, ok, err = s.store.GetByID(id)
		if err != nil {
			// Environmental store failure: the result may exist but is
			// unreadable right now. 503 so the client's retry loop gets
			// another chance instead of treating it as gone.
			httpError(w, http.StatusServiceUnavailable, "store unavailable: %v", err)
			return
		}
		if !ok {
			res = nil
		}
	}
	if res == nil {
		httpError(w, http.StatusNotFound, "no result for job")
		return
	}
	writeJSON(w, res)
}

func (s *server) handleCancelJob(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	j, ok := s.jobs[r.PathValue("id")]
	if !ok {
		s.mu.Unlock()
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	s.cancelJobLocked(j)
	js := j.statusLocked()
	s.mu.Unlock()
	writeJSON(w, js)
}

// cancelJobLocked cancels a non-terminal job: queued jobs flip to canceled
// (workers skip them), running jobs get their context canceled and the
// worker records the terminal state.
func (s *server) cancelJobLocked(j *svcJob) {
	switch j.state {
	case client.StateQueued:
		j.state = client.StateCanceled
		if j.cancel != nil {
			j.cancel()
		}
	case client.StateRunning:
		if j.cancel != nil {
			j.cancel()
		}
	}
}

func (s *server) handleCancelBatch(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	b, ok := s.batches[r.PathValue("id")]
	if !ok {
		s.mu.Unlock()
		httpError(w, http.StatusNotFound, "no such batch")
		return
	}
	if !b.canceled {
		b.canceled = true
		seen := map[string]bool{}
		for _, id := range b.jobIDs {
			if seen[id] {
				continue
			}
			seen[id] = true
			j := s.jobs[id]
			if jobDone(j.state) {
				continue
			}
			if j.refs > 0 {
				j.refs--
			}
			if j.refs == 0 {
				s.cancelJobLocked(j)
			}
		}
	}
	bs := s.batchStatusLocked(b)
	s.mu.Unlock()
	writeJSON(w, bs)
}

func (s *server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	writeJSON(w, map[string]interface{}{"status": "ok", "draining": draining})
}

// handleReady is the load-balancer signal, distinct from liveness: a
// draining or queue-saturated server answers 503 (with a Retry-After
// matched to its backlog) while still passing /healthz, so a pool routes
// new work elsewhere without declaring the process dead. SIGTERM flips
// this before the drain starts, giving clients the whole drain window to
// move.
func (s *server) handleReady(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	saturated := len(s.queue) >= s.queueCap
	s.mu.Unlock()
	switch {
	case draining:
		w.Header().Set("Retry-After", fmt.Sprintf("%d", s.retryAfter()))
		httpError(w, http.StatusServiceUnavailable, "draining")
	case saturated:
		w.Header().Set("Retry-After", fmt.Sprintf("%d", s.retryAfter()))
		httpError(w, http.StatusServiceUnavailable, "queue saturated")
	default:
		writeJSON(w, map[string]interface{}{"status": "ready"})
	}
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	depth := len(s.queue)
	jobs := len(s.jobs)
	batches := len(s.batches)
	s.mu.Unlock()
	out := map[string]interface{}{
		"cache":       s.cache.Stats(),
		"queue_depth": depth,
		"jobs":        jobs,
		"batches":     batches,
	}
	if s.store != nil {
		out["store"] = s.store.Stats()
	} else {
		out["store"] = nil
	}
	writeJSON(w, out)
}

// drain is the graceful-shutdown path: refuse new submissions, let
// in-flight jobs finish, and persist still-queued jobs next to the store
// so a restarted server resumes them. Returns the number of jobs
// persisted.
func (s *server) drain() int {
	s.mu.Lock()
	s.draining = true
	s.stopping = true
	s.cond.Broadcast()
	s.mu.Unlock()
	s.wg.Wait() // in-flight jobs finish

	s.mu.Lock()
	var pending []pendingJob
	for _, j := range s.queue {
		if j.state != client.StateQueued {
			continue
		}
		pending = append(pending, pendingJob{
			Req:       j.req,
			MaxEvents: j.limits.MaxEvents,
			MaxCycles: j.limits.MaxCycles,
			Audit:     j.limits.Audit,
		})
	}
	s.queue = nil
	s.mu.Unlock()

	if len(pending) == 0 {
		return 0
	}
	if s.store == nil {
		s.logf("mcmserve: no store directory; dropping %d queued job(s) on drain", len(pending))
		return 0
	}
	if err := writeFileAtomic(filepath.Join(s.store.Dir(), pendingFile), pending); err != nil {
		s.logf("mcmserve: persisting queued jobs failed: %v", err)
		return 0
	}
	s.logf("mcmserve: persisted %d queued job(s) for the next server", len(pending))
	return len(pending)
}

func writeFileAtomic(path string, v interface{}) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// recoverPending resumes jobs a predecessor persisted on drain. Grouped by
// identical bounds into recovery batches so budgets survive the restart.
func (s *server) recoverPending() {
	if s.store == nil {
		return
	}
	path := filepath.Join(s.store.Dir(), pendingFile)
	data, err := os.ReadFile(path)
	if err != nil {
		return
	}
	os.Remove(path) // consumed; a later drain rewrites it
	var pending []pendingJob
	if err := json.Unmarshal(data, &pending); err != nil {
		s.logf("mcmserve: unreadable %s (ignored): %v", pendingFile, err)
		return
	}
	groups := map[string]*client.Manifest{}
	for _, p := range pending {
		gk := fmt.Sprintf("%d|%d|%v", p.MaxEvents, p.MaxCycles, p.Audit)
		m, ok := groups[gk]
		if !ok {
			m = &client.Manifest{MaxEvents: p.MaxEvents, MaxCycles: p.MaxCycles, Audit: p.Audit}
			groups[gk] = m
		}
		m.Jobs = append(m.Jobs, p.Req)
	}
	n := 0
	for _, m := range groups {
		if _, _, err := s.submit(*m); err != nil {
			s.logf("mcmserve: recovering queued jobs failed: %v", err)
			continue
		}
		n += len(m.Jobs)
	}
	if n > 0 {
		s.logf("mcmserve: recovered %d queued job(s) from the previous server", n)
	}
}
