package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"mcmgpu/internal/config"
	"mcmgpu/internal/faultinject"
	"mcmgpu/internal/runstore"
	"mcmgpu/internal/runstore/client"
)

// testManifest builds a small manifest over the baseline MCM at a reduced
// scale: cheap enough for unit tests, real enough to exercise the whole
// submit → simulate → persist → serve pipeline.
func testManifest(t *testing.T, workloads ...string) client.Manifest {
	t.Helper()
	var sys bytes.Buffer
	if err := config.BaselineMCM().WriteJSON(&sys); err != nil {
		t.Fatal(err)
	}
	var m client.Manifest
	for _, wl := range workloads {
		m.Jobs = append(m.Jobs, client.JobRequest{
			System:   json.RawMessage(sys.String()),
			Workload: wl,
			Scale:    0.05,
		})
	}
	return m
}

func testClient(t *testing.T, s *server) (*client.Client, func()) {
	t.Helper()
	ts := httptest.NewServer(s.mux)
	c := &client.Client{
		BaseURL: ts.URL,
		Retries: 2,
		Backoff: 5 * time.Millisecond,
		Logf:    t.Logf,
	}
	return c, ts.Close
}

func mustOpenStore(t *testing.T, dir string) *runstore.Store {
	t.Helper()
	st, err := runstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestSubmitComputeThenWarm is the service's dedupe contract end to end:
// a cold submit computes, an identical resubmit to the same process is
// instantly done, and a fresh server over the same store serves the whole
// batch as store hits with zero new simulations.
func TestSubmitComputeThenWarm(t *testing.T) {
	dir := t.TempDir()
	s := newServer(mustOpenStore(t, dir), 2, 16, t.Logf)
	c, stop := testClient(t, s)
	defer stop()

	m := testManifest(t, "Stream", "CFD")
	results, statuses, err := c.Run(context.Background(), m)
	if err != nil {
		t.Fatal(err)
	}
	for i, js := range statuses {
		if js.State != client.StateDone || js.Source != client.SourceCompute {
			t.Fatalf("cold job %d: %+v, want done/compute", i, js)
		}
		if results[i] == nil {
			t.Fatalf("cold job %d has no result", i)
		}
	}
	puts := s.store.Stats().Puts
	if puts != 2 {
		t.Fatalf("cold run persisted %d results, want 2", puts)
	}

	// Same process, identical manifest: already-done records, no queue
	// traffic, no new store writes.
	bs, err := c.Submit(context.Background(), m)
	if err != nil {
		t.Fatal(err)
	}
	if !bs.Done {
		t.Fatalf("resubmit to the same process was not instantly done: %+v", bs)
	}
	if got := s.store.Stats().Puts; got != puts {
		t.Fatalf("resubmit wrote %d new store entries", got-puts)
	}

	// A restarted server (fresh process state, same store): every cell is
	// a store hit, zero simulations.
	s2 := newServer(mustOpenStore(t, dir), 2, 16, t.Logf)
	c2, stop2 := testClient(t, s2)
	defer stop2()
	warm, warmStatuses, err := c2.Run(context.Background(), m)
	if err != nil {
		t.Fatal(err)
	}
	for i, js := range warmStatuses {
		if js.State != client.StateDone || js.Source != client.SourceStore {
			t.Fatalf("warm job %d: %+v, want done/store", i, js)
		}
		if !reflect.DeepEqual(warm[i], results[i]) {
			t.Fatalf("warm job %d result differs from cold compute", i)
		}
	}
	if st := s2.store.Stats(); st.Puts != 0 || st.Hits == 0 {
		t.Fatalf("restarted server did not serve from the store: %+v", st)
	}
	if sims := s2.cache.Stats().Simulations(); sims != 0 {
		t.Fatalf("restarted server ran %d simulations on a warm store", sims)
	}
}

// TestResultAcrossRestart serves a result by content-derived job ID from a
// server that never saw the submission — the GetByID path.
func TestResultAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	s := newServer(mustOpenStore(t, dir), 1, 16, t.Logf)
	c, stop := testClient(t, s)

	results, statuses, err := c.Run(context.Background(), testManifest(t, "Stream"))
	if err != nil {
		t.Fatal(err)
	}
	stop()
	id := statuses[0].ID

	s2 := newServer(mustOpenStore(t, dir), 1, 16, t.Logf)
	c2, stop2 := testClient(t, s2)
	defer stop2()
	got, err := c2.Result(context.Background(), id)
	if err != nil {
		t.Fatalf("restarted server cannot serve result %s: %v", id, err)
	}
	if !reflect.DeepEqual(got, results[0]) {
		t.Fatal("result served across restart differs from the original")
	}
}

// TestQueueFullRejects asserts the bounded queue answers 429 without
// accepting any of the batch — atomically, so a retried submission cannot
// double-enqueue half a manifest.
func TestQueueFullRejects(t *testing.T) {
	s := newServer(nil, 0, 1, t.Logf) // no workers: nothing drains the queue
	_, code, err := s.submit(testManifest(t, "Stream", "CFD"))
	if err == nil || code != http.StatusTooManyRequests {
		t.Fatalf("overfull submit: code %d err %v, want 429", code, err)
	}
	s.mu.Lock()
	depth := len(s.queue)
	s.mu.Unlock()
	if depth != 0 {
		t.Fatalf("rejected batch left %d jobs in the queue", depth)
	}
	if _, code, err := s.submit(testManifest(t, "Stream")); err != nil || code != http.StatusOK {
		t.Fatalf("within-bound submit failed: code %d err %v", code, err)
	}
}

// TestSubmitValidation rejects malformed manifests with 400s.
func TestSubmitValidation(t *testing.T) {
	s := newServer(nil, 0, 16, t.Logf)
	if _, code, _ := s.submit(client.Manifest{}); code != http.StatusBadRequest {
		t.Fatalf("empty manifest: code %d, want 400", code)
	}
	m := testManifest(t, "no-such-workload")
	if _, code, _ := s.submit(m); code != http.StatusBadRequest {
		t.Fatalf("unknown workload: code %d, want 400", code)
	}
	m = testManifest(t, "Stream")
	m.Jobs[0].System = json.RawMessage(`{"modules": -3`)
	if _, code, _ := s.submit(m); code != http.StatusBadRequest {
		t.Fatalf("bad config JSON: code %d, want 400", code)
	}
}

// TestCancelQueuedJob cancels a job before any worker takes it.
func TestCancelQueuedJob(t *testing.T) {
	s := newServer(nil, 0, 16, t.Logf)
	c, stop := testClient(t, s)
	defer stop()
	bs, err := c.Submit(context.Background(), testManifest(t, "Stream"))
	if err != nil {
		t.Fatal(err)
	}
	id := bs.Jobs[0].ID
	if err := c.CancelJob(context.Background(), id); err != nil {
		t.Fatal(err)
	}
	js, err := c.Job(context.Background(), id)
	if err != nil {
		t.Fatal(err)
	}
	if js.State != client.StateCanceled {
		t.Fatalf("canceled job is %q", js.State)
	}
	final, err := c.Batch(context.Background(), bs.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !final.Done {
		t.Fatal("batch with only a canceled job is not done")
	}
	// A worker starting later must skip the canceled job, not run it.
	s.startWorkers(1)
	time.Sleep(50 * time.Millisecond)
	if js, _ := c.Job(context.Background(), id); js.State != client.StateCanceled {
		t.Fatalf("worker resurrected a canceled job: %q", js.State)
	}
}

// TestBatchCancelRefcounting: a job referenced by two batches survives one
// batch's cancellation and dies with the second — one client's cancel can
// never kill a cell another client still wants.
func TestBatchCancelRefcounting(t *testing.T) {
	s := newServer(nil, 0, 16, t.Logf)
	c, stop := testClient(t, s)
	defer stop()
	m := testManifest(t, "Stream")
	b1, err := c.Submit(context.Background(), m)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := c.Submit(context.Background(), m)
	if err != nil {
		t.Fatal(err)
	}
	id := b1.Jobs[0].ID
	if b2.Jobs[0].ID != id {
		t.Fatalf("identical submissions got different IDs: %s vs %s", id, b2.Jobs[0].ID)
	}
	if err := c.CancelBatch(context.Background(), b1.ID); err != nil {
		t.Fatal(err)
	}
	if js, _ := c.Job(context.Background(), id); js.State != client.StateQueued {
		t.Fatalf("job canceled while another batch still references it: %q", js.State)
	}
	if err := c.CancelBatch(context.Background(), b2.ID); err != nil {
		t.Fatal(err)
	}
	if js, _ := c.Job(context.Background(), id); js.State != client.StateCanceled {
		t.Fatalf("job not canceled after losing its last reference: %q", js.State)
	}
}

// TestDrainPersistsQueueAndRecovers is the graceful-drain contract: queued
// jobs survive a drain as pending.json and the next server over the same
// store resumes and completes them.
func TestDrainPersistsQueueAndRecovers(t *testing.T) {
	dir := t.TempDir()
	s := newServer(mustOpenStore(t, dir), 0, 16, t.Logf) // no workers: jobs stay queued
	bs, code, err := s.submit(testManifest(t, "Stream", "CFD"))
	if err != nil {
		t.Fatalf("submit: code %d err %v", code, err)
	}
	if n := s.drain(); n != 2 {
		t.Fatalf("drain persisted %d jobs, want 2", n)
	}
	if _, err := os.Stat(filepath.Join(dir, pendingFile)); err != nil {
		t.Fatalf("no pending.json after drain: %v", err)
	}
	// Draining servers refuse new work.
	if _, code, _ := s.submit(testManifest(t, "GEMM")); code != http.StatusServiceUnavailable {
		t.Fatalf("draining server accepted a submit (code %d)", code)
	}

	s2 := newServer(mustOpenStore(t, dir), 2, 16, t.Logf)
	c2, stop := testClient(t, s2)
	defer stop()
	deadline := time.Now().Add(30 * time.Second)
	for _, js := range bs.Jobs {
		for {
			cur, err := c2.Job(context.Background(), js.ID)
			if err != nil {
				t.Fatalf("recovered server lost job %s: %v", js.ID, err)
			}
			if cur.Done() {
				if cur.State != client.StateDone {
					t.Fatalf("recovered job %s finished %q: %s", js.ID, cur.State, cur.Error)
				}
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("recovered job %s never finished (state %q)", js.ID, cur.State)
			}
			time.Sleep(20 * time.Millisecond)
		}
		if _, err := c2.Result(context.Background(), js.ID); err != nil {
			t.Fatalf("recovered job %s has no result: %v", js.ID, err)
		}
	}
	if _, err := os.Stat(filepath.Join(dir, pendingFile)); !os.IsNotExist(err) {
		t.Fatal("pending.json not consumed by recovery")
	}
}

// TestDegradedMemoryOnly: with no store at all the service still computes
// and serves results — durability is lost, availability is not.
func TestDegradedMemoryOnly(t *testing.T) {
	s := newServer(nil, 1, 16, t.Logf)
	c, stop := testClient(t, s)
	defer stop()
	results, statuses, err := c.Run(context.Background(), testManifest(t, "Stream"))
	if err != nil {
		t.Fatal(err)
	}
	if statuses[0].State != client.StateDone || statuses[0].Source != client.SourceCompute {
		t.Fatalf("degraded job: %+v", statuses[0])
	}
	if results[0] == nil {
		t.Fatal("degraded job has no result")
	}
}

// TestWatchStreamsProgress: the watch endpoint emits NDJSON snapshots and
// terminates with a done batch.
func TestWatchStreamsProgress(t *testing.T) {
	s := newServer(nil, 1, 16, t.Logf)
	ts := httptest.NewServer(s.mux)
	defer ts.Close()
	c := &client.Client{BaseURL: ts.URL, Backoff: 5 * time.Millisecond, Logf: t.Logf}
	bs, err := c.Submit(context.Background(), testManifest(t, "Stream"))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/v1/batches/" + bs.ID + "/watch")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	dec := json.NewDecoder(resp.Body)
	var last client.BatchStatus
	n := 0
	for dec.More() {
		if err := dec.Decode(&last); err != nil {
			t.Fatal(err)
		}
		n++
	}
	if n == 0 {
		t.Fatal("watch emitted no snapshots")
	}
	if !last.Done || last.Jobs[0].State != client.StateDone {
		t.Fatalf("final watch snapshot not done: %+v", last)
	}
}

// TestReadyzDistinctFromHealthz: a draining or saturated server fails
// readiness (with a Retry-After) while still passing liveness — the
// signal a pool uses to route around it without declaring it dead.
func TestReadyzDistinctFromHealthz(t *testing.T) {
	s := newServer(nil, 0, 1, t.Logf) // cap 1, no workers: easy to saturate
	ts := httptest.NewServer(s.mux)
	defer ts.Close()

	get := func(path string) *http.Response {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}
	if resp := get("/readyz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("idle readyz = %d, want 200", resp.StatusCode)
	}

	// Saturate the queue: one queued job against cap 1.
	if _, code, err := s.submit(testManifest(t, "Stream")); err != nil || code != http.StatusOK {
		t.Fatalf("submit: code %d err %v", code, err)
	}
	resp := get("/readyz")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("saturated readyz = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("saturated readyz has no Retry-After")
	}
	if resp := get("/healthz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("saturated healthz = %d, want 200 (alive, just busy)", resp.StatusCode)
	}

	// Draining flips readiness too (fresh server so drain has no queue).
	s2 := newServer(nil, 0, 16, t.Logf)
	ts2 := httptest.NewServer(s2.mux)
	defer ts2.Close()
	s2.drain()
	resp2, err := http.Get(ts2.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining readyz = %d, want 503", resp2.StatusCode)
	}
	resp2, err = http.Get(ts2.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("draining healthz = %d, want 200", resp2.StatusCode)
	}
}

// TestRetryAfterDerivedFromBacklog: the 429 Retry-After grows with the
// backlog instead of the old hard-coded 1 second.
func TestRetryAfterDerivedFromBacklog(t *testing.T) {
	s := newServer(nil, 0, 2, t.Logf) // no workers: 1-worker estimate, 2-deep queue
	ts := httptest.NewServer(s.mux)
	defer ts.Close()
	if _, code, err := s.submit(testManifest(t, "Stream", "CFD")); err != nil || code != http.StatusOK {
		t.Fatalf("submit: code %d err %v", code, err)
	}
	m := testManifest(t, "GEMM")
	data, _ := json.Marshal(m)
	resp, err := http.Post(ts.URL+"/v1/batches", "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-cap submit = %d, want 429", resp.StatusCode)
	}
	// Backlog 2, estimated 1 worker → 1 + 2/1 = 3 seconds.
	if ra := resp.Header.Get("Retry-After"); ra != "3" {
		t.Fatalf("Retry-After = %q, want 3 (derived from backlog)", ra)
	}
}

// TestPoisonQuarantineLifecycle is the poisoned-job contract end to end:
// a deterministically failing cell burns its attempt budget, is
// quarantined with a structured error, persists across a restart, and a
// resubmission to the successor fails instantly instead of rerunning.
func TestPoisonQuarantineLifecycle(t *testing.T) {
	dir := t.TempDir()
	plan, err := faultinject.Parse("panic@0:Stream")
	if err != nil {
		t.Fatal(err)
	}
	s := newServerOpts(serverOptions{
		Store: mustOpenStore(t, dir), Workers: 1, QueueCap: 16,
		Logf: t.Logf, Fault: plan, PoisonAttempts: 2,
	})
	c, stop := testClient(t, s)
	defer stop()

	m := testManifest(t, "Stream", "CFD")
	_, statuses, err := c.Run(context.Background(), m)
	if err != nil {
		t.Fatal(err)
	}
	poisonedJob, healthy := statuses[0], statuses[1]
	if poisonedJob.State != client.StateFailed || !poisonedJob.Poisoned {
		t.Fatalf("faulted job: %+v, want failed+poisoned", poisonedJob)
	}
	if poisonedJob.Attempts != 2 {
		t.Fatalf("poisoned after %d attempts, want exactly the budget (2)", poisonedJob.Attempts)
	}
	if poisonedJob.ErrKind != "panic" {
		t.Fatalf("poisoned ErrKind = %q, want panic", poisonedJob.ErrKind)
	}
	if healthy.State != client.StateDone {
		t.Fatalf("unfaulted job: %+v, want done (poison must not spread)", healthy)
	}
	if _, err := os.Stat(filepath.Join(dir, poisonedFile)); err != nil {
		t.Fatalf("no %s after quarantine: %v", poisonedFile, err)
	}

	// A restarted server inherits the quarantine: the resubmission is
	// instantly terminal with the recorded structured failure — no queue
	// traffic, no fresh attempts.
	s2 := newServerOpts(serverOptions{
		Store: mustOpenStore(t, dir), Workers: 1, QueueCap: 16,
		Logf: t.Logf, Fault: plan, PoisonAttempts: 2,
	})
	c2, stop2 := testClient(t, s2)
	defer stop2()
	bs, err := c2.Submit(context.Background(), testManifest(t, "Stream"))
	if err != nil {
		t.Fatal(err)
	}
	if !bs.Done {
		t.Fatalf("poisoned resubmit not instantly done: %+v", bs)
	}
	js := bs.Jobs[0]
	if js.State != client.StateFailed || !js.Poisoned || js.Attempts != 2 || js.Error == "" {
		t.Fatalf("poisoned resubmit: %+v, want instant structured failure", js)
	}
}

// TestWatchKeepalive: a stream over an unchanging batch still emits
// periodic snapshots, so a client idle watchdog can tell quiet from dead.
func TestWatchKeepalive(t *testing.T) {
	s := newServer(nil, 0, 16, t.Logf) // no workers: the batch never changes
	ts := httptest.NewServer(s.mux)
	defer ts.Close()
	bs, code, err := s.submit(testManifest(t, "Stream"))
	if err != nil {
		t.Fatalf("submit: code %d err %v", code, err)
	}
	_ = code
	ctx, cancel := context.WithTimeout(context.Background(), 2*watchKeepalive+time.Second)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/v1/batches/"+bs.ID+"/watch", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	dec := json.NewDecoder(resp.Body)
	n := 0
	for n < 2 {
		var snap client.BatchStatus
		if err := dec.Decode(&snap); err != nil {
			break
		}
		n++
	}
	if n < 2 {
		t.Fatalf("unchanging batch sent %d snapshots in %v, want >= 2 keepalives", n, 2*watchKeepalive+time.Second)
	}
}
