package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"mcmgpu/internal/config"
	"mcmgpu/internal/runstore"
	"mcmgpu/internal/runstore/client"
)

// testManifest builds a small manifest over the baseline MCM at a reduced
// scale: cheap enough for unit tests, real enough to exercise the whole
// submit → simulate → persist → serve pipeline.
func testManifest(t *testing.T, workloads ...string) client.Manifest {
	t.Helper()
	var sys bytes.Buffer
	if err := config.BaselineMCM().WriteJSON(&sys); err != nil {
		t.Fatal(err)
	}
	var m client.Manifest
	for _, wl := range workloads {
		m.Jobs = append(m.Jobs, client.JobRequest{
			System:   json.RawMessage(sys.String()),
			Workload: wl,
			Scale:    0.05,
		})
	}
	return m
}

func testClient(t *testing.T, s *server) (*client.Client, func()) {
	t.Helper()
	ts := httptest.NewServer(s.mux)
	c := &client.Client{
		BaseURL: ts.URL,
		Retries: 2,
		Backoff: 5 * time.Millisecond,
		Logf:    t.Logf,
	}
	return c, ts.Close
}

func mustOpenStore(t *testing.T, dir string) *runstore.Store {
	t.Helper()
	st, err := runstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestSubmitComputeThenWarm is the service's dedupe contract end to end:
// a cold submit computes, an identical resubmit to the same process is
// instantly done, and a fresh server over the same store serves the whole
// batch as store hits with zero new simulations.
func TestSubmitComputeThenWarm(t *testing.T) {
	dir := t.TempDir()
	s := newServer(mustOpenStore(t, dir), 2, 16, t.Logf)
	c, stop := testClient(t, s)
	defer stop()

	m := testManifest(t, "Stream", "CFD")
	results, statuses, err := c.Run(m)
	if err != nil {
		t.Fatal(err)
	}
	for i, js := range statuses {
		if js.State != client.StateDone || js.Source != client.SourceCompute {
			t.Fatalf("cold job %d: %+v, want done/compute", i, js)
		}
		if results[i] == nil {
			t.Fatalf("cold job %d has no result", i)
		}
	}
	puts := s.store.Stats().Puts
	if puts != 2 {
		t.Fatalf("cold run persisted %d results, want 2", puts)
	}

	// Same process, identical manifest: already-done records, no queue
	// traffic, no new store writes.
	bs, err := c.Submit(m)
	if err != nil {
		t.Fatal(err)
	}
	if !bs.Done {
		t.Fatalf("resubmit to the same process was not instantly done: %+v", bs)
	}
	if got := s.store.Stats().Puts; got != puts {
		t.Fatalf("resubmit wrote %d new store entries", got-puts)
	}

	// A restarted server (fresh process state, same store): every cell is
	// a store hit, zero simulations.
	s2 := newServer(mustOpenStore(t, dir), 2, 16, t.Logf)
	c2, stop2 := testClient(t, s2)
	defer stop2()
	warm, warmStatuses, err := c2.Run(m)
	if err != nil {
		t.Fatal(err)
	}
	for i, js := range warmStatuses {
		if js.State != client.StateDone || js.Source != client.SourceStore {
			t.Fatalf("warm job %d: %+v, want done/store", i, js)
		}
		if !reflect.DeepEqual(warm[i], results[i]) {
			t.Fatalf("warm job %d result differs from cold compute", i)
		}
	}
	if st := s2.store.Stats(); st.Puts != 0 || st.Hits == 0 {
		t.Fatalf("restarted server did not serve from the store: %+v", st)
	}
	if sims := s2.cache.Stats().Simulations(); sims != 0 {
		t.Fatalf("restarted server ran %d simulations on a warm store", sims)
	}
}

// TestResultAcrossRestart serves a result by content-derived job ID from a
// server that never saw the submission — the GetByID path.
func TestResultAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	s := newServer(mustOpenStore(t, dir), 1, 16, t.Logf)
	c, stop := testClient(t, s)

	results, statuses, err := c.Run(testManifest(t, "Stream"))
	if err != nil {
		t.Fatal(err)
	}
	stop()
	id := statuses[0].ID

	s2 := newServer(mustOpenStore(t, dir), 1, 16, t.Logf)
	c2, stop2 := testClient(t, s2)
	defer stop2()
	got, err := c2.Result(id)
	if err != nil {
		t.Fatalf("restarted server cannot serve result %s: %v", id, err)
	}
	if !reflect.DeepEqual(got, results[0]) {
		t.Fatal("result served across restart differs from the original")
	}
}

// TestQueueFullRejects asserts the bounded queue answers 429 without
// accepting any of the batch — atomically, so a retried submission cannot
// double-enqueue half a manifest.
func TestQueueFullRejects(t *testing.T) {
	s := newServer(nil, 0, 1, t.Logf) // no workers: nothing drains the queue
	_, code, err := s.submit(testManifest(t, "Stream", "CFD"))
	if err == nil || code != http.StatusTooManyRequests {
		t.Fatalf("overfull submit: code %d err %v, want 429", code, err)
	}
	s.mu.Lock()
	depth := len(s.queue)
	s.mu.Unlock()
	if depth != 0 {
		t.Fatalf("rejected batch left %d jobs in the queue", depth)
	}
	if _, code, err := s.submit(testManifest(t, "Stream")); err != nil || code != http.StatusOK {
		t.Fatalf("within-bound submit failed: code %d err %v", code, err)
	}
}

// TestSubmitValidation rejects malformed manifests with 400s.
func TestSubmitValidation(t *testing.T) {
	s := newServer(nil, 0, 16, t.Logf)
	if _, code, _ := s.submit(client.Manifest{}); code != http.StatusBadRequest {
		t.Fatalf("empty manifest: code %d, want 400", code)
	}
	m := testManifest(t, "no-such-workload")
	if _, code, _ := s.submit(m); code != http.StatusBadRequest {
		t.Fatalf("unknown workload: code %d, want 400", code)
	}
	m = testManifest(t, "Stream")
	m.Jobs[0].System = json.RawMessage(`{"modules": -3`)
	if _, code, _ := s.submit(m); code != http.StatusBadRequest {
		t.Fatalf("bad config JSON: code %d, want 400", code)
	}
}

// TestCancelQueuedJob cancels a job before any worker takes it.
func TestCancelQueuedJob(t *testing.T) {
	s := newServer(nil, 0, 16, t.Logf)
	c, stop := testClient(t, s)
	defer stop()
	bs, err := c.Submit(testManifest(t, "Stream"))
	if err != nil {
		t.Fatal(err)
	}
	id := bs.Jobs[0].ID
	if err := c.CancelJob(id); err != nil {
		t.Fatal(err)
	}
	js, err := c.Job(id)
	if err != nil {
		t.Fatal(err)
	}
	if js.State != client.StateCanceled {
		t.Fatalf("canceled job is %q", js.State)
	}
	final, err := c.Batch(bs.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !final.Done {
		t.Fatal("batch with only a canceled job is not done")
	}
	// A worker starting later must skip the canceled job, not run it.
	s.startWorkers(1)
	time.Sleep(50 * time.Millisecond)
	if js, _ := c.Job(id); js.State != client.StateCanceled {
		t.Fatalf("worker resurrected a canceled job: %q", js.State)
	}
}

// TestBatchCancelRefcounting: a job referenced by two batches survives one
// batch's cancellation and dies with the second — one client's cancel can
// never kill a cell another client still wants.
func TestBatchCancelRefcounting(t *testing.T) {
	s := newServer(nil, 0, 16, t.Logf)
	c, stop := testClient(t, s)
	defer stop()
	m := testManifest(t, "Stream")
	b1, err := c.Submit(m)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := c.Submit(m)
	if err != nil {
		t.Fatal(err)
	}
	id := b1.Jobs[0].ID
	if b2.Jobs[0].ID != id {
		t.Fatalf("identical submissions got different IDs: %s vs %s", id, b2.Jobs[0].ID)
	}
	if err := c.CancelBatch(b1.ID); err != nil {
		t.Fatal(err)
	}
	if js, _ := c.Job(id); js.State != client.StateQueued {
		t.Fatalf("job canceled while another batch still references it: %q", js.State)
	}
	if err := c.CancelBatch(b2.ID); err != nil {
		t.Fatal(err)
	}
	if js, _ := c.Job(id); js.State != client.StateCanceled {
		t.Fatalf("job not canceled after losing its last reference: %q", js.State)
	}
}

// TestDrainPersistsQueueAndRecovers is the graceful-drain contract: queued
// jobs survive a drain as pending.json and the next server over the same
// store resumes and completes them.
func TestDrainPersistsQueueAndRecovers(t *testing.T) {
	dir := t.TempDir()
	s := newServer(mustOpenStore(t, dir), 0, 16, t.Logf) // no workers: jobs stay queued
	bs, code, err := s.submit(testManifest(t, "Stream", "CFD"))
	if err != nil {
		t.Fatalf("submit: code %d err %v", code, err)
	}
	if n := s.drain(); n != 2 {
		t.Fatalf("drain persisted %d jobs, want 2", n)
	}
	if _, err := os.Stat(filepath.Join(dir, pendingFile)); err != nil {
		t.Fatalf("no pending.json after drain: %v", err)
	}
	// Draining servers refuse new work.
	if _, code, _ := s.submit(testManifest(t, "GEMM")); code != http.StatusServiceUnavailable {
		t.Fatalf("draining server accepted a submit (code %d)", code)
	}

	s2 := newServer(mustOpenStore(t, dir), 2, 16, t.Logf)
	c2, stop := testClient(t, s2)
	defer stop()
	deadline := time.Now().Add(30 * time.Second)
	for _, js := range bs.Jobs {
		for {
			cur, err := c2.Job(js.ID)
			if err != nil {
				t.Fatalf("recovered server lost job %s: %v", js.ID, err)
			}
			if cur.Done() {
				if cur.State != client.StateDone {
					t.Fatalf("recovered job %s finished %q: %s", js.ID, cur.State, cur.Error)
				}
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("recovered job %s never finished (state %q)", js.ID, cur.State)
			}
			time.Sleep(20 * time.Millisecond)
		}
		if _, err := c2.Result(js.ID); err != nil {
			t.Fatalf("recovered job %s has no result: %v", js.ID, err)
		}
	}
	if _, err := os.Stat(filepath.Join(dir, pendingFile)); !os.IsNotExist(err) {
		t.Fatal("pending.json not consumed by recovery")
	}
}

// TestDegradedMemoryOnly: with no store at all the service still computes
// and serves results — durability is lost, availability is not.
func TestDegradedMemoryOnly(t *testing.T) {
	s := newServer(nil, 1, 16, t.Logf)
	c, stop := testClient(t, s)
	defer stop()
	results, statuses, err := c.Run(testManifest(t, "Stream"))
	if err != nil {
		t.Fatal(err)
	}
	if statuses[0].State != client.StateDone || statuses[0].Source != client.SourceCompute {
		t.Fatalf("degraded job: %+v", statuses[0])
	}
	if results[0] == nil {
		t.Fatal("degraded job has no result")
	}
}

// TestWatchStreamsProgress: the watch endpoint emits NDJSON snapshots and
// terminates with a done batch.
func TestWatchStreamsProgress(t *testing.T) {
	s := newServer(nil, 1, 16, t.Logf)
	ts := httptest.NewServer(s.mux)
	defer ts.Close()
	c := &client.Client{BaseURL: ts.URL, Backoff: 5 * time.Millisecond, Logf: t.Logf}
	bs, err := c.Submit(testManifest(t, "Stream"))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/v1/batches/" + bs.ID + "/watch")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	dec := json.NewDecoder(resp.Body)
	var last client.BatchStatus
	n := 0
	for dec.More() {
		if err := dec.Decode(&last); err != nil {
			t.Fatal(err)
		}
		n++
	}
	if n == 0 {
		t.Fatal("watch emitted no snapshots")
	}
	if !last.Done || last.Jobs[0].State != client.StateDone {
		t.Fatalf("final watch snapshot not done: %+v", last)
	}
}
