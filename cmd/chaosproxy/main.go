// Command chaosproxy fronts one mcmserve backend with a deterministic
// fault-injecting reverse proxy (internal/chaosproxy): dropped connections,
// responses truncated mid-NDJSON, synthetic 5xx/429 bursts, latency spikes,
// and black-holed requests, armed via the net-* family of the
// internal/faultinject plan grammar. It exists to prove the client-side
// failover machinery against real network damage — in CI smoke tests and in
// staging drills — without touching the backend itself.
//
// Faults fire on exact windows of matching requests (kind@N#M, optionally
// path-filtered with :substr), so a drill knows precisely which requests
// were damaged; on exit the proxy prints how many requests were forwarded
// clean and how many had each fault kind injected, making a vacuous drill
// (a fault armed but never fired) visible.
//
// Usage:
//
//	chaosproxy -backend http://127.0.0.1:8037 -addr :8038 \
//	  -faults 'net-drop@1#2,net-truncate@4#1:/watch,net-5xx@7#3,net-429@11#1'
//	sweep -server http://good:8037,http://127.0.0.1:8038   # pool rides through
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"

	"mcmgpu/internal/chaosproxy"
	"mcmgpu/internal/faultinject"
)

func main() {
	var (
		addr    = flag.String("addr", ":8038", "listen address")
		backend = flag.String("backend", "", "backend base URL to forward to (required)")
		faults  = flag.String("faults", "", "comma-separated net-* fault plans, kind@N[#M][:path-filter] (empty = forward everything clean)")
	)
	flag.Parse()

	logf := func(format string, args ...interface{}) {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
	}
	if *backend == "" {
		logf("chaosproxy: -backend is required")
		os.Exit(2)
	}
	plans, err := faultinject.ParseList(*faults)
	if err != nil {
		logf("chaosproxy: %v", err)
		os.Exit(2)
	}
	p, err := chaosproxy.New(*backend, plans)
	if err != nil {
		logf("chaosproxy: %v", err)
		os.Exit(2)
	}
	p.Logf = logf

	srv := &http.Server{Addr: *addr, Handler: p}
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	done := make(chan struct{})
	go func() {
		<-sigc
		// Release black-holed requests first so Close is not held hostage
		// by a connection the proxy itself is strangling.
		p.Close()
		srv.Close()
		close(done)
	}()

	logf("chaosproxy: %s -> %s (%d fault plans armed)", *addr, *backend, len(plans))
	if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		logf("chaosproxy: %v", err)
		os.Exit(1)
	}
	<-done
	st := p.Stats()
	logf("chaosproxy: forwarded %d requests clean", st.Forwarded)
	for kind, n := range st.Injected {
		logf("chaosproxy: injected %s into %d requests", kind, n)
	}
}
