// Command sweep runs a two-dimensional design-space sweep over inter-GPM
// link bandwidth and L1.5 capacity — the two hardware levers Sections 3.3
// and 5.1 of the paper negotiate — and emits a CSV grid of geomean speedups
// over the baseline MCM-GPU. It answers the practical question the paper's
// conclusion implies: how much link bandwidth can architectural locality
// buy back?
//
// The sweep is two-phase. Phase 1 scores every grid cell with the
// closed-form analytic estimator (internal/analytic) — microseconds per
// cell, no engine events. Phase 2 re-simulates only the cells that matter:
// the analytic Pareto frontier over (link bandwidth cost, predicted
// speedup), topped up with the best-scoring remainder to a budget set by
// -phase2-frac (default 25% of the grid) or -refine. Estimated-only cells
// render with a "~" prefix so a reader can always tell a prediction from a
// measurement; -analytic-only skips phase 2 entirely and -phase2-frac 1
// restores the legacy simulate-everything behavior.
//
// Phase 2 is submitted as one job list to the parallel runner (baseline
// suite first), so simulations fan out across -j workers and the memoized
// run cache deduplicates repeats. Output is byte-identical for any -j.
// With -store DIR the runner gains a durable tier: cells any prior process
// simulated are served from disk, fresh ones are persisted. With -server
// URL phase 2 is executed remotely by a shared mcmserve instance instead;
// a comma-separated URL list forms a fault-tolerant pool — jobs shard
// across ready backends, a dead or draining backend's shard fails over
// (idempotent by content-derived job identity), per-backend circuit
// breakers route around repeat offenders, and straggling result fetches
// are hedged to a second backend. SIGINT/SIGTERM cancels the sweep
// promptly, local or remote, including mid-backoff sleeps.
//
// Usage:
//
//	sweep                                # two-phase, default grid
//	sweep -analytic-only                 # phase 1 only: no engine events
//	sweep -refine 4                      # simulate the frontier + top cells, >= 4 total
//	sweep -phase2-frac 1 -scale 0.5      # legacy full simulation
//	sweep -store /var/lib/mcmgpu         # durable cross-process result reuse
//	sweep -server http://mcmserve:8037   # run phase 2 on the shared service
//	sweep -server http://a:8037,http://b:8037,http://c:8037   # fault-tolerant pool
//	sweep -workloads m-intensive -csv out.csv -bench-json BENCH_sweep.json
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"mcmgpu/internal/analytic"
	"mcmgpu/internal/config"
	"mcmgpu/internal/core"
	"mcmgpu/internal/faultinject"
	"mcmgpu/internal/metricstream"
	"mcmgpu/internal/report"
	"mcmgpu/internal/runner"
	"mcmgpu/internal/runstore"
	"mcmgpu/internal/runstore/client"
	"mcmgpu/internal/stats"
	"mcmgpu/internal/workload"
)

func main() { os.Exit(run()) }

// run is main with an exit code instead of os.Exit calls, so every defer —
// the gzip'd -metrics writer and the -csv file in particular — gets to
// Close, and a Close failure (the way a full disk reports a truncated
// stream) fails the run loudly.
func run() (code int) {
	var (
		links     = flag.String("links", "384,768,1536,3072", "comma-separated inter-GPM link bandwidths (GB/s)")
		l15s      = flag.String("l15", "0,8,16", "comma-separated total L1.5 capacities (MB, 0 = none)")
		wl        = flag.String("workloads", "all", "workload selection (all, m-intensive, c-intensive, limited)")
		scale     = flag.Float64("scale", 1.0, "workload scale factor")
		opts      = flag.Bool("optimized", true, "apply distributed scheduling + first touch at every grid point")
		tiled     = flag.Bool("tiled", false, "apply tiled 2-D scheduling + region-aware placement at every grid point instead of -optimized (the dense-workload pairing; see -workloads dense)")
		jobs      = flag.Int("j", 0, "parallel simulation jobs (0 = GOMAXPROCS, 1 = sequential)")
		nocache   = flag.Bool("nocache", false, "disable the memoized run and estimate caches")
		csvOut    = flag.String("csv", "", "write CSV to this file instead of stdout")
		timeout   = flag.Duration("timeout", 0, "wall-clock budget for the whole sweep (0 = none)")
		maxEvents = flag.Uint64("max-events", 0, "per-simulation event budget (0 = none)")
		auditOn   = flag.Bool("audit", false, "check simulation invariants (conservation laws) during every job; MCMGPU_AUDIT=1 forces this on")
		keepGoing = flag.Bool("keep-going", false, "render failed grid cells as ERR instead of aborting; exit 1 at the end if any failed")
		metricsF  = flag.String("metrics", "", "stream per-interval time-series samples of every simulation to this file (NDJSON, or CSV when the path ends in .csv; a .gz suffix gzips either)")
		metricsIv = flag.Uint64("metrics-interval", 0, "sampling interval in cycles for -metrics (0 = default)")
		anOnly    = flag.Bool("analytic-only", false, "phase 1 only: score the whole grid analytically, run no simulations")
		refine    = flag.Int("refine", 0, "number of cells to re-simulate in phase 2 (0 = use -phase2-frac); frontier cells are simulated first")
		p2Frac    = flag.Float64("phase2-frac", 0.25, "fraction of grid cells to re-simulate in phase 2 (1 = simulate everything)")
		benchJSON = flag.String("bench-json", "", "write phase throughput numbers (cells/sec analytic vs cycle-level) to this JSON file")
		storeDir  = flag.String("store", "", "durable run store directory: serve warm cells from disk and persist fresh ones")
		server    = flag.String("server", "", "comma-separated mcmserve URLs: run phase 2 remotely; more than one URL forms a fault-tolerant pool")
	)
	flag.Parse()

	// One context covers the whole sweep: SIGINT/SIGTERM cancels in-flight
	// simulations (local or remote) AND any retry-backoff sleep the client
	// is in — a canceled sweep exits promptly, it does not finish a nap.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	fail := func(err error) int {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		return 1
	}
	warnf := func(format string, args ...interface{}) {
		fmt.Fprintf(os.Stderr, "sweep: "+format+"\n", args...)
	}

	linkVals, err := parseFloats(*links)
	if err != nil {
		return fail(err)
	}
	l15Vals, err := parseInts(*l15s)
	if err != nil {
		return fail(err)
	}
	specs, err := selectWorkloads(*wl)
	if err != nil {
		return fail(err)
	}
	if *p2Frac < 0 || *p2Frac > 1 || math.IsNaN(*p2Frac) {
		return fail(fmt.Errorf("-phase2-frac %v out of range [0,1]", *p2Frac))
	}
	if *refine < 0 {
		return fail(fmt.Errorf("-refine %d must be >= 0", *refine))
	}

	cfgs := buildGrid(l15Vals, linkVals, *opts, *tiled)
	base := config.BaselineMCM()

	fault, err := faultinject.FromEnv()
	if err != nil {
		return fail(err)
	}
	if *server != "" {
		// The remote server cannot reproduce local-only run shaping, so
		// refuse combinations that would silently change results.
		if *metricsF != "" {
			return fail(errors.New("-server does not support -metrics (the service does not sample); drop one"))
		}
		if fault.Enabled() && !fault.IsStore() {
			return fail(errors.New("-server cannot apply a local simulation fault plan; unset MCMGPU_FAULT or run locally"))
		}
	}
	limits := core.RunOptions{Ctx: ctx, MaxEvents: *maxEvents, Audit: *auditOn}
	if *timeout > 0 {
		limits.WallDeadline = time.Now().Add(*timeout)
	}
	r := &runner.Runner{
		Workers:  *jobs,
		FailFast: !*keepGoing,
		Limits:   limits,
		Fault:    fault,
	}
	if !*nocache {
		r.Cache = runner.Shared()
		r.EstCache = runner.SharedEstimates()
	}
	if *storeDir != "" {
		// An unopenable store degrades to plain compute, never a failure.
		store, err := runstore.Open(*storeDir, runstore.WithLogf(warnf), runstore.WithFault(fault))
		if err != nil {
			warnf("store unavailable, computing without it: %v", err)
		} else {
			r.Store = store
			defer func() {
				fmt.Fprintf(os.Stderr, "sweep: store: %v\n", store.Stats())
			}()
		}
	}
	if *metricsF != "" {
		f, csv, err := metricstream.CreateOutput(*metricsF)
		if err != nil {
			return fail(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "sweep:", err)
				code = 1
			}
		}()
		r.Metrics = &runner.MetricsOptions{
			Interval: *metricsIv,
			W:        f,
			CSV:      csv,
		}
	}

	// Phase 1: score the whole grid analytically. The baseline suite rides
	// in the same estimate list so predicted speedups and predicted cell
	// scores come from one pass.
	p1Start := time.Now()
	scores, estSpeedups, err := scoreGrid(r, base, cfgs, specs, *scale)
	if err != nil {
		return fail(err)
	}
	p1Dur := time.Since(p1Start)
	fmt.Fprintf(os.Stderr, "sweep: phase 1 scored %d cells analytically in %v\n",
		len(cfgs), p1Dur.Round(time.Microsecond))

	// Select phase 2: the analytic Pareto frontier over (link cost,
	// predicted speedup) plus the best-scoring remainder up to the budget.
	costs := make([]float64, len(cfgs))
	for i := range cfgs {
		costs[i] = linkVals[i%len(linkVals)]
	}
	frontier := paretoFrontier(costs, scores, frontierTol)
	budget := phase2Budget(len(cfgs), *refine, *p2Frac)
	simulate := selectCells(scores, frontier, budget)
	if *anOnly {
		simulate = nil
	}

	// Phase 2: one flat job list — baseline suite first, then each selected
	// cell's suite — through the event engine, honoring the same limits,
	// fault plan, audit, and metrics settings cmd/experiments applies.
	var (
		simSpeedups = map[int][]float64{}
		failedCells = false
		p2Dur       time.Duration
	)
	if len(simulate) > 0 {
		var jobList []runner.Job
		addSuite := func(cfg *config.Config) {
			for _, s := range specs {
				jobList = append(jobList, runner.Job{Config: cfg, Spec: s, Scale: *scale})
			}
		}
		addSuite(base)
		for _, ci := range simulate {
			addSuite(cfgs[ci])
		}
		p2Start := time.Now()
		var (
			results []*core.Result
			err     error
		)
		if *server != "" {
			results, err = runRemote(ctx, *server, jobList, *maxEvents, *auditOn, warnf)
		} else {
			results, err = r.Run(jobList)
		}
		p2Dur = time.Since(p2Start)
		if err != nil {
			var jerrs runner.JobErrors
			if !*keepGoing || !errors.As(err, &jerrs) {
				return fail(err)
			}
			failedCells = true
			for _, je := range jerrs {
				fmt.Fprintln(os.Stderr, "sweep: warning: cell failed:", je)
			}
		}
		n := len(specs)
		baseRes := results[:n]
		for k, ci := range simulate {
			rs := results[(k+1)*n : (k+2)*n]
			var sp []float64
			for i := range specs {
				// A nil result is a failed job in -keep-going mode; skip
				// the workload for this grid point.
				if rs[i] == nil || baseRes[i] == nil {
					continue
				}
				sp = append(sp, rs[i].SpeedupOver(baseRes[i]))
			}
			simSpeedups[ci] = sp
		}
	}
	fmt.Fprintf(os.Stderr, "sweep: phase 2 simulated %d/%d cells (%.1f%%)\n",
		len(simulate), len(cfgs), 100*float64(len(simulate))/float64(len(cfgs)))

	out := os.Stdout
	if *csvOut != "" {
		f, err := os.Create(*csvOut)
		if err != nil {
			return fail(err)
		}
		defer func() {
			// Close reports what Write buffered: a full disk surfaces here.
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "sweep:", err)
				code = 1
			}
		}()
		out = f
	}
	if !renderGrid(out, l15Vals, linkVals, estSpeedups, simSpeedups) {
		failedCells = true
	}

	if *benchJSON != "" {
		if err := writeBench(*benchJSON, benchReport{
			GridCells:      len(cfgs),
			Workloads:      len(specs),
			SimulatedCells: len(simulate),
			AnalyticOnly:   *anOnly,
			Phase1Seconds:  p1Dur.Seconds(),
			Phase2Seconds:  p2Dur.Seconds(),
		}); err != nil {
			return fail(err)
		}
	}
	if failedCells {
		fmt.Fprintln(os.Stderr, "sweep: completed with failed cells")
		return 1
	}
	return code
}

// runRemote executes the phase 2 job list on one or more shared mcmserve
// backends (comma-separated URLs) through a fault-tolerant pool. Job
// identity is content-derived on the server, so resubmitting a shard after
// a backend dies is idempotent, and cells any client already ran come back
// from the service's durable store without a simulation. Failed or
// canceled jobs map to nil result slots plus a runner.JobErrors — exactly
// what the local r.Run contract gives -keep-going; a poisoned job's error
// names the cell and its exhausted attempt budget so the operator knows
// retrying elsewhere is pointless.
func runRemote(ctx context.Context, servers string, jobList []runner.Job, maxEvents uint64, audit bool, warnf func(string, ...interface{})) ([]*core.Result, error) {
	m := client.Manifest{
		MaxEvents: maxEvents,
		Audit:     audit,
	}
	for _, j := range jobList {
		var buf bytes.Buffer
		if err := j.Config.WriteJSON(&buf); err != nil {
			return nil, fmt.Errorf("encode config %s: %w", j.Config.Name, err)
		}
		m.Jobs = append(m.Jobs, client.JobRequest{
			System:   json.RawMessage(buf.Bytes()),
			Workload: j.Spec.Name,
			Scale:    j.Scale,
		})
	}
	var urls []string
	for _, u := range strings.Split(servers, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, u)
		}
	}
	if len(urls) == 0 {
		return nil, errors.New("-server has no URLs")
	}
	pool := client.NewPool(urls, &client.Client{Logf: warnf})
	results, statuses, err := pool.Run(ctx, m)
	if ps := pool.Stats(); ps.Failovers+ps.Resubmits+ps.Hedged > 0 {
		warnf("pool: %d backend failovers, %d resubmitted jobs, %d hedged result fetches",
			ps.Failovers, ps.Resubmits, ps.Hedged)
	}
	if err != nil {
		return nil, err
	}
	var jerrs runner.JobErrors
	for i, st := range statuses {
		if st.State == client.StateDone {
			continue
		}
		msg := st.Error
		if msg == "" {
			msg = st.State
		}
		if st.Poisoned {
			msg = fmt.Sprintf("poisoned after %d deterministic failures: %s", st.Attempts, msg)
		}
		jerrs = append(jerrs, &runner.JobError{
			Index:    i,
			Workload: jobList[i].Spec.Name,
			Config:   jobList[i].Config.Name,
			Err:      fmt.Errorf("remote job %s: %s", st.ID, msg),
		})
	}
	if len(jerrs) > 0 {
		return results, jerrs
	}
	return results, nil
}

// buildGrid builds every grid-point configuration, row-major over
// (l15, link), so cell index ci maps to row ci/len(links), col ci%len(links).
func buildGrid(l15Vals []int, linkVals []float64, optimized, tiled bool) []*config.Config {
	var cfgs []*config.Config
	for _, mb := range l15Vals {
		for _, link := range linkVals {
			cfg := config.MCMWithLink(link)
			if mb > 0 {
				keep := cfg.Link.GBps
				cfg = config.WithL15(cfg, mb*config.MB, config.AllocRemoteOnly)
				cfg.Link.GBps = keep
			}
			switch {
			case tiled:
				cfg.Scheduler = config.SchedTiled2D
				cfg.Placement = config.PlaceRegionAware
			case optimized:
				cfg.Scheduler = config.SchedDistributed
				cfg.Placement = config.PlaceFirstTouch
			}
			cfg.Name = fmt.Sprintf("sweep-l15%dMB-link%g", mb, link)
			cfgs = append(cfgs, cfg)
		}
	}
	return cfgs
}

// scoreGrid runs the analytic phase: one estimate list covering the
// baseline suite plus every cell's suite. It returns the per-cell geomean
// predicted speedup (the phase 2 selection score) and the per-cell
// per-workload predicted speedups (what -analytic-only and unsimulated
// cells render).
func scoreGrid(r *runner.Runner, base *config.Config, cfgs []*config.Config, specs []*workload.Spec, scale float64) ([]float64, [][]float64, error) {
	var jobList []runner.Job
	addSuite := func(cfg *config.Config) {
		for _, s := range specs {
			jobList = append(jobList, runner.Job{Config: cfg, Spec: s, Scale: scale})
		}
	}
	addSuite(base)
	for _, cfg := range cfgs {
		addSuite(cfg)
	}
	ests, err := r.Estimates(jobList)
	if err != nil {
		return nil, nil, err
	}
	n := len(specs)
	baseEst := ests[:n]
	scores := make([]float64, len(cfgs))
	speedups := make([][]float64, len(cfgs))
	for ci := range cfgs {
		cell := ests[(ci+1)*n : (ci+2)*n]
		sp := make([]float64, n)
		for i := range specs {
			sp[i] = estSpeedup(cell[i], baseEst[i])
		}
		speedups[ci] = sp
		g, gerr := stats.GeoMean(sp)
		if gerr != nil {
			return nil, nil, fmt.Errorf("cell %s: %w", cfgs[ci].Name, gerr)
		}
		scores[ci] = g
	}
	return scores, speedups, nil
}

// estSpeedup is the analytic analogue of core.Result.SpeedupOver: predicted
// baseline cycles over predicted cell cycles.
func estSpeedup(cell, base *analytic.Estimate) float64 {
	if cell == nil || base == nil || cell.Cycles <= 0 {
		return 0
	}
	return base.Cycles / cell.Cycles
}

// frontierTol is the relative score improvement below which a costlier cell
// does not earn a frontier spot. The paper's own saturation argument
// motivates it: link bandwidth past the balance point "yields no additional
// performance", so a sub-1% speedup bump at double the link cost is
// saturation noise, not a design point. The same tolerance applies to
// analytic and simulated scores, so the two frontiers are compared like for
// like.
const frontierTol = 0.012

// paretoFrontier returns the indices of the staircase Pareto frontier over
// (minimize cost, maximize score), sorted by ascending cost: a cell is on
// the frontier iff it beats every cheaper-or-equal cell's score by more
// than the relative tolerance. Ties keep the lowest index, so the frontier
// is deterministic for any input order.
func paretoFrontier(costs, scores []float64, tol float64) []int {
	idx := make([]int, len(costs))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		if costs[idx[a]] != costs[idx[b]] {
			return costs[idx[a]] < costs[idx[b]]
		}
		return scores[idx[a]] > scores[idx[b]]
	})
	var frontier []int
	best := math.Inf(-1)
	for k, i := range idx {
		// Within one cost tier only the best score survives; the sort put
		// it first in the tier.
		if k > 0 && costs[idx[k-1]] == costs[i] {
			continue
		}
		if scores[i] > best*(1+tol) {
			frontier = append(frontier, i)
			best = scores[i]
		}
	}
	return frontier
}

// phase2Budget resolves how many cells phase 2 simulates: -refine when
// given, otherwise ceil(frac*cells), clamped to the grid. The budget is a
// hard cap — it is how the "engine events for at most this share of the
// grid" guarantee is kept — so an unusually wide analytic frontier is
// simulated best-cells-first rather than inflating the budget.
func phase2Budget(cells, refine int, frac float64) int {
	budget := int(math.Ceil(frac * float64(cells)))
	if refine > 0 {
		budget = refine
	}
	if budget > cells {
		budget = cells
	}
	return budget
}

// selectCells picks the phase 2 cells: frontier cells first (best score
// first), then the best-scoring remainder, until the budget is spent. The
// result is sorted by cell index so the phase 2 job list — and therefore
// the output — is deterministic.
func selectCells(scores []float64, frontier []int, budget int) []int {
	onFrontier := map[int]bool{}
	for _, i := range frontier {
		onFrontier[i] = true
	}
	ranked := append([]int(nil), frontier...)
	sort.SliceStable(ranked, func(a, b int) bool { return scores[ranked[a]] > scores[ranked[b]] })
	rest := make([]int, 0, len(scores))
	for i := range scores {
		if !onFrontier[i] {
			rest = append(rest, i)
		}
	}
	sort.SliceStable(rest, func(a, b int) bool { return scores[rest[a]] > scores[rest[b]] })
	ranked = append(ranked, rest...)
	if budget < len(ranked) {
		ranked = ranked[:budget]
	}
	out := append([]int(nil), ranked...)
	sort.Ints(out)
	return out
}

// renderGrid writes the CSV. Simulated cells print their measured geomean
// speedup; estimated-only cells print the predicted one with a "~" prefix;
// a simulated cell whose every workload failed (-keep-going) prints ERR.
// Returns false when any cell rendered ERR.
func renderGrid(out io.Writer, l15Vals []int, linkVals []float64, est [][]float64, sim map[int][]float64) bool {
	ok := true
	fmt.Fprintf(out, "l15MB\\linkGBps")
	for _, l := range linkVals {
		fmt.Fprintf(out, ",%g", l)
	}
	fmt.Fprintln(out)
	for row, mb := range l15Vals {
		fmt.Fprintf(out, "%d", mb)
		for col := range linkVals {
			ci := row*len(linkVals) + col
			if sp, simulated := sim[ci]; simulated {
				g, gerr := stats.GeoMean(sp)
				if gerr != nil || len(sp) == 0 {
					fmt.Fprintf(out, ",%s", report.ErrCell)
					ok = false
					continue
				}
				fmt.Fprintf(out, ",%.4f", g)
				continue
			}
			g, gerr := stats.GeoMean(est[ci])
			if gerr != nil {
				fmt.Fprintf(out, ",%s", report.ErrCell)
				ok = false
				continue
			}
			fmt.Fprintf(out, ",~%.4f", g)
		}
		fmt.Fprintln(out)
	}
	return ok
}

// benchReport is the -bench-json payload: enough to recompute the
// analytic-vs-cycle-level throughput ratio the fast path exists for.
type benchReport struct {
	GridCells      int     `json:"grid_cells"`
	Workloads      int     `json:"workloads"`
	SimulatedCells int     `json:"simulated_cells"`
	AnalyticOnly   bool    `json:"analytic_only"`
	Phase1Seconds  float64 `json:"phase1_seconds"`
	Phase2Seconds  float64 `json:"phase2_seconds"`
	// Derived rates, cells per second; ThroughputRatio is analytic over
	// cycle-level (0 when phase 2 did not run).
	AnalyticCellsPerSec float64 `json:"analytic_cells_per_sec"`
	SimCellsPerSec      float64 `json:"sim_cells_per_sec"`
	ThroughputRatio     float64 `json:"throughput_ratio"`
}

func writeBench(path string, b benchReport) error {
	if b.Phase1Seconds > 0 {
		b.AnalyticCellsPerSec = float64(b.GridCells) / b.Phase1Seconds
	}
	if b.Phase2Seconds > 0 && b.SimulatedCells > 0 {
		b.SimCellsPerSec = float64(b.SimulatedCells) / b.Phase2Seconds
		if b.SimCellsPerSec > 0 {
			b.ThroughputRatio = b.AnalyticCellsPerSec / b.SimCellsPerSec
		}
	}
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func selectWorkloads(sel string) ([]*workload.Spec, error) {
	switch strings.ToLower(sel) {
	case "all":
		return workload.Suite(), nil
	case "m-intensive":
		return workload.MIntensive(), nil
	case "c-intensive":
		return workload.CIntensive(), nil
	case "limited":
		return workload.Limited(), nil
	case "dense":
		return workload.Dense(), nil
	}
	s, err := workload.ByName(sel)
	if err != nil {
		return nil, err
	}
	return []*workload.Spec{s}, nil
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, fmt.Errorf("bad value %q: %w", part, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad value %q: %w", part, err)
		}
		out = append(out, v)
	}
	return out, nil
}
