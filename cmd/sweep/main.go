// Command sweep runs a two-dimensional design-space sweep over inter-GPM
// link bandwidth and L1.5 capacity — the two hardware levers Sections 3.3
// and 5.1 of the paper negotiate — and emits a CSV grid of geomean speedups
// over the baseline MCM-GPU. It answers the practical question the paper's
// conclusion implies: how much link bandwidth can architectural locality
// buy back?
//
// The whole grid (baseline suite plus every grid point × workload) is
// submitted as one job list to the parallel runner, so simulations fan out
// across -j workers regardless of which grid point they belong to, and the
// memoized run cache deduplicates any grid point that coincides with the
// baseline. Output is byte-identical for any -j value.
//
// Usage:
//
//	sweep                                # default grid, all workloads
//	sweep -links 384,768,1536 -l15 0,8,16 -scale 0.5 -j 8
//	sweep -workloads m-intensive -csv out.csv
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"mcmgpu/internal/config"
	"mcmgpu/internal/core"
	"mcmgpu/internal/faultinject"
	"mcmgpu/internal/report"
	"mcmgpu/internal/runner"
	"mcmgpu/internal/stats"
	"mcmgpu/internal/workload"
)

func main() {
	var (
		links     = flag.String("links", "384,768,1536,3072", "comma-separated inter-GPM link bandwidths (GB/s)")
		l15s      = flag.String("l15", "0,8,16", "comma-separated total L1.5 capacities (MB, 0 = none)")
		wl        = flag.String("workloads", "all", "workload selection (all, m-intensive, c-intensive, limited)")
		scale     = flag.Float64("scale", 1.0, "workload scale factor")
		opts      = flag.Bool("optimized", true, "apply distributed scheduling + first touch at every grid point")
		jobs      = flag.Int("j", 0, "parallel simulation jobs (0 = GOMAXPROCS, 1 = sequential)")
		nocache   = flag.Bool("nocache", false, "disable the memoized run cache")
		csvOut    = flag.String("csv", "", "write CSV to this file instead of stdout")
		timeout   = flag.Duration("timeout", 0, "wall-clock budget for the whole sweep (0 = none)")
		maxEvents = flag.Uint64("max-events", 0, "per-simulation event budget (0 = none)")
		auditOn   = flag.Bool("audit", false, "check simulation invariants (conservation laws) during every job; MCMGPU_AUDIT=1 forces this on")
		keepGoing = flag.Bool("keep-going", false, "render failed grid cells as ERR instead of aborting; exit 1 at the end if any failed")
		metricsF  = flag.String("metrics", "", "stream per-interval time-series samples of every simulation to this file (NDJSON, or CSV when the path ends in .csv)")
		metricsIv = flag.Uint64("metrics-interval", 0, "sampling interval in cycles for -metrics (0 = default)")
	)
	flag.Parse()

	linkVals, err := parseFloats(*links)
	if err != nil {
		fail(err)
	}
	l15Vals, err := parseInts(*l15s)
	if err != nil {
		fail(err)
	}
	specs, err := selectWorkloads(*wl)
	if err != nil {
		fail(err)
	}

	// Build every grid-point configuration up front, row-major over
	// (l15, link), so the whole sweep can run as one job list.
	var cfgs []*config.Config
	for _, mb := range l15Vals {
		for _, link := range linkVals {
			cfg := config.MCMWithLink(link)
			if mb > 0 {
				keep := cfg.Link.GBps
				cfg = config.WithL15(cfg, mb*config.MB, config.AllocRemoteOnly)
				cfg.Link.GBps = keep
			}
			if *opts {
				cfg.Scheduler = config.SchedDistributed
				cfg.Placement = config.PlaceFirstTouch
			}
			cfg.Name = fmt.Sprintf("sweep-l15%dMB-link%g", mb, link)
			cfgs = append(cfgs, cfg)
		}
	}

	// One flat job list: the baseline suite first, then each grid point's
	// suite. Results come back in job order, so slicing by suite size
	// recovers the grid deterministically.
	var jobList []runner.Job
	addSuite := func(cfg *config.Config) {
		for _, s := range specs {
			jobList = append(jobList, runner.Job{Config: cfg, Spec: s, Scale: *scale})
		}
	}
	base := config.BaselineMCM()
	addSuite(base)
	for _, cfg := range cfgs {
		addSuite(cfg)
	}

	fault, err := faultinject.FromEnv()
	if err != nil {
		fail(err)
	}
	limits := core.RunOptions{MaxEvents: *maxEvents, Audit: *auditOn}
	if *timeout > 0 {
		limits.WallDeadline = time.Now().Add(*timeout)
	}
	r := &runner.Runner{
		Workers:  *jobs,
		FailFast: !*keepGoing,
		Limits:   limits,
		Fault:    fault,
	}
	if !*nocache {
		r.Cache = runner.Shared()
	}
	if *metricsF != "" {
		f, err := os.Create(*metricsF)
		if err != nil {
			fail(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fail(err)
			}
		}()
		r.Metrics = &runner.MetricsOptions{
			Interval: *metricsIv,
			W:        f,
			CSV:      strings.HasSuffix(*metricsF, ".csv"),
		}
	}
	results, err := r.Run(jobList)
	failedCells := false
	if err != nil {
		var jerrs runner.JobErrors
		if !*keepGoing || !errors.As(err, &jerrs) {
			fail(err)
		}
		failedCells = true
		for _, je := range jerrs {
			fmt.Fprintln(os.Stderr, "sweep: warning: cell failed:", je)
		}
	}
	n := len(specs)
	baseRes := results[:n]
	pointRes := func(i int) []*core.Result { return results[(i+1)*n : (i+2)*n] }

	out := os.Stdout
	if *csvOut != "" {
		f, err := os.Create(*csvOut)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		out = f
	}

	fmt.Fprintf(out, "l15MB\\linkGBps")
	for _, l := range linkVals {
		fmt.Fprintf(out, ",%g", l)
	}
	fmt.Fprintln(out)

	for row, mb := range l15Vals {
		fmt.Fprintf(out, "%d", mb)
		for col := range linkVals {
			rs := pointRes(row*len(linkVals) + col)
			var sp []float64
			for i := range specs {
				// A nil result is a failed job in -keep-going mode; skip
				// the workload for this grid point.
				if rs[i] == nil || baseRes[i] == nil {
					continue
				}
				sp = append(sp, rs[i].SpeedupOver(baseRes[i]))
			}
			g, gerr := stats.GeoMean(sp)
			if gerr != nil || len(sp) == 0 {
				fmt.Fprintf(out, ",%s", report.ErrCell)
				failedCells = true
				continue
			}
			fmt.Fprintf(out, ",%.4f", g)
		}
		fmt.Fprintln(out)
	}
	if failedCells {
		fmt.Fprintln(os.Stderr, "sweep: completed with failed cells")
		os.Exit(1)
	}
}

func selectWorkloads(sel string) ([]*workload.Spec, error) {
	switch strings.ToLower(sel) {
	case "all":
		return workload.Suite(), nil
	case "m-intensive":
		return workload.MIntensive(), nil
	case "c-intensive":
		return workload.CIntensive(), nil
	case "limited":
		return workload.Limited(), nil
	}
	s, err := workload.ByName(sel)
	if err != nil {
		return nil, err
	}
	return []*workload.Spec{s}, nil
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, fmt.Errorf("bad value %q: %w", part, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad value %q: %w", part, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "sweep:", err)
	os.Exit(1)
}
