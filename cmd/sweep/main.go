// Command sweep runs a two-dimensional design-space sweep over inter-GPM
// link bandwidth and L1.5 capacity — the two hardware levers Sections 3.3
// and 5.1 of the paper negotiate — and emits a CSV grid of geomean speedups
// over the baseline MCM-GPU. It answers the practical question the paper's
// conclusion implies: how much link bandwidth can architectural locality
// buy back?
//
// Usage:
//
//	sweep                                # default grid, all workloads
//	sweep -links 384,768,1536 -l15 0,8,16 -scale 0.5
//	sweep -workloads m-intensive -csv out.csv
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"mcmgpu"
	"mcmgpu/internal/config"
	"mcmgpu/internal/stats"
	"mcmgpu/internal/workload"
)

func main() {
	var (
		links  = flag.String("links", "384,768,1536,3072", "comma-separated inter-GPM link bandwidths (GB/s)")
		l15s   = flag.String("l15", "0,8,16", "comma-separated total L1.5 capacities (MB, 0 = none)")
		wl     = flag.String("workloads", "all", "workload selection (all, m-intensive, c-intensive, limited)")
		scale  = flag.Float64("scale", 1.0, "workload scale factor")
		opts   = flag.Bool("optimized", true, "apply distributed scheduling + first touch at every grid point")
		csvOut = flag.String("csv", "", "write CSV to this file instead of stdout")
	)
	flag.Parse()

	linkVals, err := parseFloats(*links)
	if err != nil {
		fail(err)
	}
	l15Vals, err := parseInts(*l15s)
	if err != nil {
		fail(err)
	}
	specs, err := selectWorkloads(*wl)
	if err != nil {
		fail(err)
	}

	base, err := runAll(config.BaselineMCM(), specs, *scale)
	if err != nil {
		fail(err)
	}

	out := os.Stdout
	if *csvOut != "" {
		f, err := os.Create(*csvOut)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		out = f
	}

	fmt.Fprintf(out, "l15MB\\linkGBps")
	for _, l := range linkVals {
		fmt.Fprintf(out, ",%g", l)
	}
	fmt.Fprintln(out)

	for _, mb := range l15Vals {
		fmt.Fprintf(out, "%d", mb)
		for _, link := range linkVals {
			cfg := config.MCMWithLink(link)
			if mb > 0 {
				keep := cfg.Link.GBps
				cfg = config.WithL15(cfg, mb*config.MB, config.AllocRemoteOnly)
				cfg.Link.GBps = keep
			}
			if *opts {
				cfg.Scheduler = config.SchedDistributed
				cfg.Placement = config.PlaceFirstTouch
			}
			cfg.Name = fmt.Sprintf("sweep-l15%dMB-link%g", mb, link)
			rs, err := runAll(cfg, specs, *scale)
			if err != nil {
				fail(err)
			}
			var sp []float64
			for name, r := range rs {
				sp = append(sp, r.SpeedupOver(base[name]))
			}
			fmt.Fprintf(out, ",%.4f", stats.GeoMean(sp))
		}
		fmt.Fprintln(out)
	}
}

func runAll(cfg *config.Config, specs []*workload.Spec, scale float64) (map[string]*mcmgpu.Result, error) {
	out := make(map[string]*mcmgpu.Result, len(specs))
	for _, s := range specs {
		r, err := mcmgpu.RunScaled(cfg.Clone(), s, scale)
		if err != nil {
			return nil, fmt.Errorf("%s on %s: %w", s.Name, cfg.Name, err)
		}
		out[s.Name] = r
	}
	return out, nil
}

func selectWorkloads(sel string) ([]*workload.Spec, error) {
	switch strings.ToLower(sel) {
	case "all":
		return workload.Suite(), nil
	case "m-intensive":
		return workload.MIntensive(), nil
	case "c-intensive":
		return workload.CIntensive(), nil
	case "limited":
		return workload.Limited(), nil
	}
	s, err := workload.ByName(sel)
	if err != nil {
		return nil, err
	}
	return []*workload.Spec{s}, nil
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, fmt.Errorf("sweep: bad value %q: %w", part, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("sweep: bad value %q: %w", part, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "sweep:", err)
	os.Exit(1)
}
