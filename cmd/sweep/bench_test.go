package main

import (
	"testing"

	"mcmgpu/internal/config"
	"mcmgpu/internal/runner"
	"mcmgpu/internal/workload"
)

// The two sweep benchmarks measure the same default grid end to end, cold
// caches each iteration, so their ratio is the wall-clock win of the
// two-phase fast path over legacy full simulation.

func benchGrid() ([]*config.Config, []float64, []*workload.Spec) {
	linkVals := []float64{384, 768, 1536, 3072}
	l15Vals := []int{0, 8, 16}
	cfgs := buildGrid(l15Vals, linkVals, true, false)
	costs := make([]float64, len(cfgs))
	for i := range cfgs {
		costs[i] = linkVals[i%len(linkVals)]
	}
	return cfgs, costs, workload.Suite()
}

func simulateCells(b *testing.B, r *runner.Runner, base *config.Config, cfgs []*config.Config, cells []int, specs []*workload.Spec) {
	b.Helper()
	var jobs []runner.Job
	for _, s := range specs {
		jobs = append(jobs, runner.Job{Config: base, Spec: s, Scale: 0.05})
	}
	for _, ci := range cells {
		for _, s := range specs {
			jobs = append(jobs, runner.Job{Config: cfgs[ci], Spec: s, Scale: 0.05})
		}
	}
	if _, err := r.Run(jobs); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkSweepFull simulates every grid cell, the legacy -phase2-frac 1
// behavior.
func BenchmarkSweepFull(b *testing.B) {
	cfgs, _, specs := benchGrid()
	base := config.BaselineMCM()
	all := make([]int, len(cfgs))
	for i := range all {
		all[i] = i
	}
	for i := 0; i < b.N; i++ {
		r := &runner.Runner{Cache: runner.NewCache()}
		simulateCells(b, r, base, cfgs, all, specs)
	}
}

// BenchmarkSweepTwoPhase scores the grid analytically, then simulates only
// the frontier-first 25% selection — the default sweep behavior.
func BenchmarkSweepTwoPhase(b *testing.B) {
	cfgs, costs, specs := benchGrid()
	base := config.BaselineMCM()
	for i := 0; i < b.N; i++ {
		r := &runner.Runner{Cache: runner.NewCache(), EstCache: runner.NewEstCache()}
		scores, _, err := scoreGrid(r, base, cfgs, specs, 0.05)
		if err != nil {
			b.Fatal(err)
		}
		frontier := paretoFrontier(costs, scores, frontierTol)
		selected := selectCells(scores, frontier, phase2Budget(len(cfgs), 0, 0.25))
		simulateCells(b, r, base, cfgs, selected, specs)
	}
}
