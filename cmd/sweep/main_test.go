package main

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"mcmgpu/internal/config"
	"mcmgpu/internal/runner"
	"mcmgpu/internal/stats"
	"mcmgpu/internal/workload"
)

func TestParetoFrontier(t *testing.T) {
	cases := []struct {
		name   string
		costs  []float64
		scores []float64
		tol    float64
		want   []int
	}{
		{
			name:  "staircase keeps strict improvements",
			costs: []float64{1, 2, 3}, scores: []float64{1.0, 1.2, 1.5},
			want: []int{0, 1, 2},
		},
		{
			name:  "dominated cell dropped",
			costs: []float64{1, 2, 3}, scores: []float64{1.0, 0.9, 1.5},
			want: []int{0, 2},
		},
		{
			name:  "within a cost tier only the best survives",
			costs: []float64{1, 1, 2}, scores: []float64{1.0, 1.4, 1.6},
			want: []int{1, 2},
		},
		{
			name:  "tolerance rejects saturation noise",
			costs: []float64{1, 2}, scores: []float64{1.000, 1.005},
			tol:  0.012,
			want: []int{0},
		},
		{
			name:  "tie keeps the lowest index",
			costs: []float64{1, 1}, scores: []float64{1.5, 1.5},
			want: []int{0},
		},
		{name: "empty", costs: nil, scores: nil, want: nil},
	}
	for _, tc := range cases {
		if got := paretoFrontier(tc.costs, tc.scores, tc.tol); !reflect.DeepEqual(got, tc.want) {
			t.Errorf("%s: frontier = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestPhase2Budget(t *testing.T) {
	cases := []struct {
		cells, refine int
		frac          float64
		want          int
	}{
		{12, 0, 0.25, 3},
		{12, 0, 1, 12},
		{12, 5, 0.25, 5}, // -refine overrides the fraction
		{12, 99, 0.25, 12} /* clamped to the grid */, {10, 0, 0.0, 0},
		{7, 0, 0.25, 2}, // ceil
	}
	for _, tc := range cases {
		if got := phase2Budget(tc.cells, tc.refine, tc.frac); got != tc.want {
			t.Errorf("phase2Budget(%d, %d, %g) = %d, want %d",
				tc.cells, tc.refine, tc.frac, got, tc.want)
		}
	}
}

func TestSelectCells(t *testing.T) {
	scores := []float64{1.0, 1.5, 1.2, 1.4, 1.1}
	frontier := []int{0, 2}
	// Frontier first (best frontier score first), then best remainder.
	if got := selectCells(scores, frontier, 3); !reflect.DeepEqual(got, []int{0, 1, 2}) {
		t.Errorf("budget 3: %v", got)
	}
	// Budget caps the frontier itself, dropping its lowest score.
	if got := selectCells(scores, frontier, 1); !reflect.DeepEqual(got, []int{2}) {
		t.Errorf("budget 1: %v", got)
	}
	if got := selectCells(scores, frontier, 0); len(got) != 0 {
		t.Errorf("budget 0: %v", got)
	}
	if got := selectCells(scores, frontier, 99); !reflect.DeepEqual(got, []int{0, 1, 2, 3, 4}) {
		t.Errorf("budget 99: %v", got)
	}
}

func TestRenderGridMarksEstimates(t *testing.T) {
	l15 := []int{0, 8}
	links := []float64{384, 768}
	est := [][]float64{{1.0, 1.0}, {1.1, 1.1}, {1.2, 1.2}, {1.3, 1.3}}
	sim := map[int][]float64{
		1: {1.15, 1.15}, // simulated cell
		2: {},           // simulated cell whose jobs all failed
	}
	var b strings.Builder
	if ok := renderGrid(&b, l15, links, est, sim); ok {
		t.Error("renderGrid returned ok despite an ERR cell")
	}
	want := "l15MB\\linkGBps,384,768\n" +
		"0,~1.0000,1.1500\n" +
		"8,ERR,~1.3000\n"
	if b.String() != want {
		t.Errorf("grid:\n%q\nwant:\n%q", b.String(), want)
	}
}

func TestWriteBench(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	err := writeBench(path, benchReport{
		GridCells:      12,
		Workloads:      3,
		SimulatedCells: 3,
		Phase1Seconds:  0.004,
		Phase2Seconds:  6,
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var got benchReport
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if got.AnalyticCellsPerSec != 3000 || got.SimCellsPerSec != 0.5 {
		t.Fatalf("rates: %+v", got)
	}
	if math.Abs(got.ThroughputRatio-6000) > 1e-9 {
		t.Fatalf("ratio = %v, want 6000", got.ThroughputRatio)
	}
}

// TestTwoPhaseReproducesFrontier is the acceptance check for the two-phase
// sweep: on the default grid, phase 1's analytic scores plus a 25% phase 2
// budget select cells whose simulated values yield the same Pareto frontier
// full simulation finds, while dispatching engine events for at most 25% of
// grid cells.
func TestTwoPhaseReproducesFrontier(t *testing.T) {
	if testing.Short() {
		t.Skip("full-grid simulation in -short mode")
	}
	const scale = 0.05
	linkVals := []float64{384, 768, 1536, 3072}
	l15Vals := []int{0, 8, 16}
	specs := workload.Suite()
	cfgs := buildGrid(l15Vals, linkVals, true, false)
	base := config.BaselineMCM()
	costs := make([]float64, len(cfgs))
	for i := range cfgs {
		costs[i] = linkVals[i%len(linkVals)]
	}
	r := &runner.Runner{Cache: runner.Shared(), EstCache: runner.SharedEstimates()}

	// Reference: full simulation of every grid cell.
	var jobs []runner.Job
	for _, s := range specs {
		jobs = append(jobs, runner.Job{Config: base, Spec: s, Scale: scale})
	}
	for _, cfg := range cfgs {
		for _, s := range specs {
			jobs = append(jobs, runner.Job{Config: cfg, Spec: s, Scale: scale})
		}
	}
	results, err := r.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	n := len(specs)
	fullScores := make([]float64, len(cfgs))
	for ci := range cfgs {
		var sp []float64
		for i := 0; i < n; i++ {
			sp = append(sp, results[(ci+1)*n+i].SpeedupOver(results[i]))
		}
		g, gerr := stats.GeoMean(sp)
		if gerr != nil {
			t.Fatal(gerr)
		}
		fullScores[ci] = g
	}
	wantFrontier := paretoFrontier(costs, fullScores, frontierTol)
	if len(wantFrontier) == 0 {
		t.Fatal("full-simulation frontier is empty")
	}

	// Two-phase: analytic scores, frontier-first selection, 25% budget.
	scores, _, err := scoreGrid(r, base, cfgs, specs, scale)
	if err != nil {
		t.Fatal(err)
	}
	frontier := paretoFrontier(costs, scores, frontierTol)
	budget := phase2Budget(len(cfgs), 0, 0.25)
	selected := selectCells(scores, frontier, budget)
	if 4*len(selected) > len(cfgs) {
		t.Fatalf("phase 2 selected %d/%d cells, above the 25%% budget", len(selected), len(cfgs))
	}

	// Final output values: measured for selected cells (the engine is
	// deterministic, so the reference results are what phase 2 would
	// produce), estimated otherwise.
	final := append([]float64(nil), scores...)
	for _, ci := range selected {
		final[ci] = fullScores[ci]
	}
	gotFrontier := paretoFrontier(costs, final, frontierTol)
	if !reflect.DeepEqual(gotFrontier, wantFrontier) {
		name := func(is []int) []string {
			var out []string
			for _, i := range is {
				out = append(out, cfgs[i].Name)
			}
			return out
		}
		t.Errorf("two-phase frontier %v != full-simulation frontier %v",
			name(gotFrontier), name(wantFrontier))
	}
}
