package main

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"

	"mcmgpu/internal/metricstream"
)

// The -naive path is a deliberately independent reference implementation:
// encoding/json and encoding/csv for parsing, a plain Go map for grouping,
// a line-at-a-time reader for scanning. It shares only the stats
// primitives, key encoding, and output rendering with the fast path, so a
// byte-identical diff between the two modes cross-checks the zero-alloc
// parser, the chunk-parallel scanner, and the external sort-merge at once.

type naiveResource struct {
	Name  string  `json:"name"`
	Kind  string  `json:"kind"`
	GPM   int     `json:"gpm"`
	Busy  float64 `json:"busy"`
	Units uint64  `json:"units"`
	Util  float64 `json:"util"`
}

type naiveCache struct {
	Level  string `json:"level"`
	GPM    int    `json:"gpm"`
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
}

type naiveRecord struct {
	Type      string          `json:"type"`
	Config    string          `json:"config"`
	Workload  string          `json:"workload"`
	Seq       int             `json:"seq"`
	Kernel    int             `json:"kernel"`
	Start     uint64          `json:"start"`
	End       uint64          `json:"end"`
	Events    uint64          `json:"events"`
	LiveCTAs  int             `json:"liveCTAs"`
	Loads     int             `json:"loads"`
	Stores    int             `json:"stores"`
	Resources []naiveResource `json:"resources"`
	Caches    []naiveCache    `json:"caches"`
}

// naiveAgg aggregates with a plain map keyed by the same encoded key bytes
// as the fast path (as strings), using the same stats primitives and the
// same observation tags.
type naiveAgg struct {
	opts   *options
	groups map[string]*groupAgg
	rows   int64
}

func runNaive(opts *options, inputs []*input, out *bufio.Writer) (int64, error) {
	na := &naiveAgg{opts: opts, groups: map[string]*groupAgg{}}
	for _, in := range inputs {
		if err := na.scanInput(in); err != nil {
			return na.rows, err
		}
	}
	keys := make([]string, 0, len(na.groups))
	for k := range na.groups {
		keys = append(keys, k)
	}
	sort.Strings(keys) // byte order, same as the fast path's key sort
	writeHeader(out, opts.dims)
	var scratch []float64
	for _, k := range keys {
		scratch = emitGroup(out, opts.dims, opts.mode, []byte(k), na.groups[k], scratch)
	}
	return na.rows, nil
}

func (na *naiveAgg) scanInput(in *input) error {
	var r io.Reader = bufio.NewReaderSize(in.f, 256<<10)
	if magic, _ := r.(*bufio.Reader).Peek(2); string(magic) == "\x1f\x8b" {
		gz, err := gzip.NewReader(r)
		if err != nil {
			return fmt.Errorf("%s: %w", in.path, err)
		}
		r = gz
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 64<<20)
	sc.Split(func(data []byte, atEOF bool) (int, []byte, error) {
		if j := bytes.IndexByte(data, '\n'); j >= 0 {
			return j + 1, data[:j], nil
		}
		if atEOF && len(data) > 0 {
			return len(data), data, nil
		}
		return 0, nil, nil
	})
	format := in.format
	var off int64
	for sc.Scan() {
		line := sc.Bytes()
		lineOff := off
		off += int64(len(line)) + 1
		if len(line) == 0 {
			continue
		}
		if format == metricstream.FormatAuto {
			if line[0] == '{' {
				format = metricstream.FormatNDJSON
			} else {
				format = metricstream.FormatCSV
			}
		}
		var err error
		if format == metricstream.FormatNDJSON {
			err = na.ndjsonLine(line, lineOff, in.base)
		} else {
			err = na.csvLine(line, lineOff, in.base)
		}
		if err != nil {
			return fmt.Errorf("%s: offset %d: %w", in.path, lineOff, err)
		}
	}
	return sc.Err()
}

func (na *naiveAgg) add(key string, o observation) {
	g := na.groups[key]
	if g == nil {
		g = &groupAgg{}
		na.groups[key] = g
	}
	g.add(na.opts.mode, na.opts.k, o)
	na.rows++
}

// naiveKey builds the same encoded key bytes as the fast path.
func naiveKey(dims []int, config, workload string, kernel, gpm int, kind, name string, metric byte) string {
	var b []byte
	for _, d := range dims {
		switch d {
		case dimConfig:
			b = append(b, config...)
		case dimWorkload:
			b = append(b, workload...)
		case dimKernel:
			b = appendPadded(b, kernel)
		case dimGPM:
			b = appendPadded(b, gpm)
		case dimKind:
			b = append(b, kind...)
		case dimName:
			b = append(b, name...)
		}
		b = append(b, keySep)
	}
	return string(append(b, metric))
}

func (na *naiveAgg) keep(typ string) bool {
	switch na.opts.filter {
	case recSamples:
		return typ == "sample"
	case recKernels:
		return typ == "kernel"
	}
	return true
}

func (na *naiveAgg) ndjsonLine(line []byte, lineOff int64, base uint64) error {
	var rec naiveRecord
	if err := json.Unmarshal(line, &rec); err != nil {
		return err
	}
	if rec.Type != "sample" && rec.Type != "kernel" {
		return fmt.Errorf("unknown record type %q", rec.Type)
	}
	if !na.keep(rec.Type) {
		return nil
	}
	sub := uint64(0)
	for _, r := range rec.Resources {
		key := naiveKey(na.opts.dims, rec.Config, rec.Workload, rec.Kernel, r.GPM, r.Kind, r.Name, metricUtil)
		na.add(key, observation{
			tag:   base | (uint64(lineOff) + sub),
			v:     r.Util,
			busy:  r.Busy,
			units: r.Units,
		})
		sub++
	}
	for _, c := range rec.Caches {
		key := naiveKey(na.opts.dims, rec.Config, rec.Workload, rec.Kernel, c.GPM, "cache", c.Level, metricHitrate)
		na.add(key, observation{
			tag:    base | (uint64(lineOff) + sub),
			v:      hitrate(c.Hits, c.Misses),
			hits:   c.Hits,
			misses: c.Misses,
		})
		sub++
	}
	return nil
}

func naiveInt(s string) (int, error) {
	if s == "" {
		return 0, nil
	}
	v, err := strconv.ParseInt(s, 10, 64)
	return int(v), err
}

func naiveUint(s string) (uint64, error) {
	if s == "" {
		return 0, nil
	}
	return strconv.ParseUint(s, 10, 64)
}

func naiveFloat(s string) (float64, error) {
	if s == "" {
		return 0, nil
	}
	return strconv.ParseFloat(s, 64)
}

func (na *naiveAgg) csvLine(line []byte, lineOff int64, base uint64) error {
	if bytes.HasPrefix(line, []byte("type,")) {
		return nil // header
	}
	cr := csv.NewReader(bytes.NewReader(line))
	fields, err := cr.Read()
	if err != nil {
		return err
	}
	if len(fields) != 19 {
		return fmt.Errorf("row has %d columns, want 19", len(fields))
	}
	typ := fields[0]
	if typ != "sample" && typ != "kernel" {
		return fmt.Errorf("unknown record type %q", typ)
	}
	if !na.keep(typ) {
		return nil
	}
	config, workload := fields[1], fields[2]
	kernel, err := naiveInt(fields[4])
	if err != nil {
		return err
	}
	kind := fields[11]
	gpm, err := naiveInt(fields[12])
	if err != nil {
		return err
	}
	name := fields[13]
	if kind == "cache" {
		hits, err := naiveUint(fields[17])
		if err != nil {
			return err
		}
		misses, err := naiveUint(fields[18])
		if err != nil {
			return err
		}
		key := naiveKey(na.opts.dims, config, workload, kernel, gpm, kind, name, metricHitrate)
		na.add(key, observation{
			tag:    base | uint64(lineOff),
			v:      hitrate(hits, misses),
			hits:   hits,
			misses: misses,
		})
		return nil
	}
	busy, err := naiveFloat(fields[14])
	if err != nil {
		return err
	}
	units, err := naiveUint(fields[15])
	if err != nil {
		return err
	}
	util, err := naiveFloat(fields[16])
	if err != nil {
		return err
	}
	key := naiveKey(na.opts.dims, config, workload, kernel, gpm, kind, name, metricUtil)
	na.add(key, observation{
		tag:   base | uint64(lineOff),
		v:     util,
		busy:  busy,
		units: units,
	})
	return nil
}
