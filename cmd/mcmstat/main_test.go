package main

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mcmgpu/internal/engine"
	"mcmgpu/internal/metrics"
)

// genStream writes a synthetic multi-run metrics stream: several
// (config, workload) runs, multiple kernels, resources across kinds and
// GPMs, cache counters, and irregular utilization — enough variety to
// exercise every group dimension.
func genStream(t testing.TB, path string, csv bool, runs, ticks int) {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rng := rand.New(rand.NewSource(77))
	rec := metrics.NewRecorder(f, 256, csv)
	for r := 0; r < runs; r++ {
		cfg := fmt.Sprintf("cfg-%d", r%3)
		wl := fmt.Sprintf("wl \"q\" %d", r%2)
		rec.Begin(cfg, wl)
		var probes []*engine.Resource
		var caches []*genCache
		for g := 0; g < 2; g++ {
			for _, kind := range []string{"link", "xbar", "dram"} {
				res := engine.NewResource(fmt.Sprintf("%s-%d", kind, g), float64(1+rng.Intn(4)))
				rec.AddResource(kind, g, res.Name(), res)
				probes = append(probes, res)
			}
			cache := &genCache{}
			rec.AddCaches("l2", g, []metrics.CacheCounters{cache})
			caches = append(caches, cache)
		}
		live := rng.Intn(100)
		rec.SetStateProbe(func() metrics.State { return metrics.State{LiveCTAs: live} })
		now := engine.Cycle(0)
		events := uint64(0)
		for i := 0; i < ticks; i++ {
			now += 256
			events += uint64(rng.Intn(5000))
			p := probes[rng.Intn(len(probes))]
			p.Reserve(now, uint64(rng.Intn(400)))
			c := caches[rng.Intn(len(caches))]
			hits := uint64(rng.Intn(20))
			c.acc += hits + uint64(rng.Intn(30))
			c.hits += hits
			rec.Tick(now, events)
			if i > 0 && i%7 == 0 {
				rec.KernelBoundary(now, events)
			}
		}
		rec.Finish(now+300, events+10)
		if err := rec.Err(); err != nil {
			t.Fatal(err)
		}
	}
}

type genCache struct{ hits, acc uint64 }

func (c *genCache) Hits() uint64     { return c.hits }
func (c *genCache) Accesses() uint64 { return c.acc }

// runStat invokes the CLI in-process, capturing stdout.
func runStat(t *testing.T, args ...string) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := run(args, &buf); err != nil {
		t.Fatalf("mcmstat %v: %v", args, err)
	}
	return buf.Bytes()
}

func mustEqual(t *testing.T, a, b []byte, what string) {
	t.Helper()
	if !bytes.Equal(a, b) {
		al := strings.Split(string(a), "\n")
		bl := strings.Split(string(b), "\n")
		for i := range al {
			if i >= len(bl) || al[i] != bl[i] {
				t.Fatalf("%s: outputs diverge at line %d:\n  a: %s\n  b: %s", what, i+1, al[i], safeIdx(bl, i))
			}
		}
		t.Fatalf("%s: outputs differ in length: %d vs %d lines", what, len(al), len(bl))
	}
}

func safeIdx(ls []string, i int) string {
	if i < len(ls) {
		return ls[i]
	}
	return "<missing>"
}

// TestFastMatchesNaive: the production path equals the reference
// implementation byte for byte, on both formats and several groupings.
func TestFastMatchesNaive(t *testing.T) {
	dir := t.TempDir()
	nd := filepath.Join(dir, "s.ndjson")
	cs := filepath.Join(dir, "s.csv")
	genStream(t, nd, false, 4, 60)
	genStream(t, cs, true, 4, 60)
	groups := []string{"kind", "config,workload,kernel,gpm,kind,name", "name,gpm", "workload"}
	for _, in := range []string{nd, cs} {
		for _, g := range groups {
			fast := runStat(t, "-group", g, in)
			naive := runStat(t, "-group", g, "-naive", in)
			mustEqual(t, fast, naive, fmt.Sprintf("%s group=%s", filepath.Base(in), g))
			if bytes.Count(fast, []byte("\n")) < 2 {
				t.Fatalf("suspiciously small output for group=%s:\n%s", g, fast)
			}
		}
	}
}

// TestWorkerCountInvariance: -j does not change a single output byte.
func TestWorkerCountInvariance(t *testing.T) {
	dir := t.TempDir()
	nd := filepath.Join(dir, "s.ndjson")
	genStream(t, nd, false, 5, 80)
	base := runStat(t, "-group", "config,kind,name", "-j", "1", nd)
	for _, j := range []string{"2", "3", "8"} {
		got := runStat(t, "-group", "config,kind,name", "-j", j, nd)
		mustEqual(t, base, got, "-j "+j)
	}
}

// TestSpillEquality: a tiny -mem forces the external sort-merge path, whose
// output must equal the all-in-memory run byte for byte. The bench report
// proves spilling actually happened.
func TestSpillEquality(t *testing.T) {
	dir := t.TempDir()
	nd := filepath.Join(dir, "s.ndjson")
	genStream(t, nd, false, 6, 200)
	benchPath := filepath.Join(dir, "bench.json")
	inMem := runStat(t, "-group", "config,workload,kernel,gpm,kind,name", nd)
	spilled := runStat(t, "-group", "config,workload,kernel,gpm,kind,name",
		"-mem", "64k", "-tmp", dir, "-bench-json", benchPath, nd)
	mustEqual(t, inMem, spilled, "spill vs in-memory")

	raw, err := os.ReadFile(benchPath)
	if err != nil {
		t.Fatal(err)
	}
	var report struct {
		Rows        int64   `json:"rows"`
		RowsPerSec  float64 `json:"rows_per_sec"`
		SpilledRuns int     `json:"spilled_runs"`
	}
	if err := json.Unmarshal(raw, &report); err != nil {
		t.Fatalf("bench json %s: %v", raw, err)
	}
	if report.SpilledRuns == 0 {
		t.Fatal("spill test vacuous: -mem 64k did not trigger the external sort")
	}
	if report.Rows == 0 || report.RowsPerSec <= 0 {
		t.Fatalf("bench report incomplete: %s", raw)
	}
	if left, _ := filepath.Glob(filepath.Join(dir, "extsort-*")); len(left) != 0 {
		t.Fatalf("spill files left behind: %v", left)
	}
}

// TestSpillExactMode: -exact survives spilling with identical output too.
func TestSpillExactMode(t *testing.T) {
	dir := t.TempDir()
	nd := filepath.Join(dir, "s.ndjson")
	genStream(t, nd, false, 4, 150)
	inMem := runStat(t, "-group", "kind,name", "-exact", nd)
	spilled := runStat(t, "-group", "kind,name", "-exact", "-mem", "64k", "-tmp", dir, nd)
	mustEqual(t, inMem, spilled, "exact spill vs in-memory")
	naive := runStat(t, "-group", "kind,name", "-exact", "-naive", nd)
	mustEqual(t, inMem, naive, "exact fast vs naive")
}

// TestGzipInput: a gzipped stream produces the same bytes as its plain
// twin (offset-derived tags survive compression).
func TestGzipInput(t *testing.T) {
	dir := t.TempDir()
	nd := filepath.Join(dir, "s.ndjson")
	genStream(t, nd, false, 3, 60)
	raw, err := os.ReadFile(nd)
	if err != nil {
		t.Fatal(err)
	}
	gz := filepath.Join(dir, "s.ndjson.gz")
	gf, err := os.Create(gz)
	if err != nil {
		t.Fatal(err)
	}
	zw := gzip.NewWriter(gf)
	if _, err := zw.Write(raw); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := gf.Close(); err != nil {
		t.Fatal(err)
	}
	plain := runStat(t, "-group", "kind,gpm", nd)
	zipped := runStat(t, "-group", "kind,gpm", gz)
	mustEqual(t, plain, zipped, "gzip vs plain")
}

// TestMultiInput: several inputs aggregate together, and fast equals naive
// on the combined stream.
func TestMultiInput(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.ndjson")
	b := filepath.Join(dir, "b.csv")
	genStream(t, a, false, 2, 40)
	genStream(t, b, true, 2, 40)
	fast := runStat(t, "-group", "config,kind", a, b)
	naive := runStat(t, "-group", "config,kind", "-naive", a, b)
	mustEqual(t, fast, naive, "multi-input")
}

// TestRecordsFilter: kernel and both modes match naive and differ from
// sample-only.
func TestRecordsFilter(t *testing.T) {
	dir := t.TempDir()
	nd := filepath.Join(dir, "s.ndjson")
	genStream(t, nd, false, 3, 60)
	sample := runStat(t, "-group", "kind", nd)
	for _, recs := range []string{"kernel", "both"} {
		fast := runStat(t, "-group", "kind", "-records", recs, nd)
		naive := runStat(t, "-group", "kind", "-records", recs, "-naive", nd)
		mustEqual(t, fast, naive, "-records "+recs)
		if bytes.Equal(fast, sample) {
			t.Fatalf("-records %s output identical to sample-only; filter inert", recs)
		}
	}
}

// TestP2Mode: the sequential P² estimator runs, is deterministic, and its
// estimates sit inside [min, max].
func TestP2Mode(t *testing.T) {
	dir := t.TempDir()
	nd := filepath.Join(dir, "s.ndjson")
	genStream(t, nd, false, 3, 100)
	a := runStat(t, "-group", "kind", "-q", "p2", nd)
	b := runStat(t, "-group", "kind", "-q", "p2", nd)
	mustEqual(t, a, b, "p2 determinism")
	lines := strings.Split(strings.TrimSpace(string(a)), "\n")
	if len(lines) < 2 {
		t.Fatalf("no p2 output rows:\n%s", a)
	}
	for _, line := range lines[1:] {
		f := strings.Split(line, ",")
		// kind,metric,n,min,mean,max,p95,p99,...
		var min, max, p95, p99 float64
		fmt.Sscanf(f[3], "%g", &min)
		fmt.Sscanf(f[5], "%g", &max)
		fmt.Sscanf(f[6], "%g", &p95)
		fmt.Sscanf(f[7], "%g", &p99)
		if p95 < min || p95 > max || p99 < min || p99 > max {
			t.Fatalf("p2 quantiles outside [min,max]: %s", line)
		}
	}
}

// TestP2MixedInputs: -q p2 over a mix of chunkable (plain regular file)
// and sequential (gzip) inputs must route everything through one
// sequential context — P² state cannot merge, so a split scan would
// silently drop one side's estimator state while still counting its rows.
func TestP2MixedInputs(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.ndjson")
	b := filepath.Join(dir, "b.ndjson")
	genStream(t, a, false, 2, 60)
	genStream(t, b, false, 3, 80)
	raw, err := os.ReadFile(b)
	if err != nil {
		t.Fatal(err)
	}
	bgz := filepath.Join(dir, "b.ndjson.gz")
	gf, err := os.Create(bgz)
	if err != nil {
		t.Fatal(err)
	}
	zw := gzip.NewWriter(gf)
	if _, err := zw.Write(raw); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := gf.Close(); err != nil {
		t.Fatal(err)
	}
	fast := runStat(t, "-group", "kind", "-q", "p2", a, bgz)
	naive := runStat(t, "-group", "kind", "-q", "p2", "-naive", a, bgz)
	mustEqual(t, fast, naive, "p2 mixed plain+gzip vs naive")
}

// TestLeadingBlankLineSniff: format auto-detection must look at the first
// non-empty line, so an NDJSON file with leading blank lines parses the
// same through the chunked fast path, the naive path, and its gzipped
// (Scanner-path) twin.
func TestLeadingBlankLineSniff(t *testing.T) {
	dir := t.TempDir()
	nd := filepath.Join(dir, "s.ndjson")
	genStream(t, nd, false, 2, 40)
	raw, err := os.ReadFile(nd)
	if err != nil {
		t.Fatal(err)
	}
	blank := filepath.Join(dir, "blank.ndjson")
	if err := os.WriteFile(blank, append([]byte("\n\n"), raw...), 0o644); err != nil {
		t.Fatal(err)
	}
	fast := runStat(t, "-group", "kind,gpm", blank)
	naive := runStat(t, "-group", "kind,gpm", "-naive", blank)
	mustEqual(t, fast, naive, "leading-blank-line fast vs naive")
	gz := filepath.Join(dir, "blank.ndjson.gz")
	gf, err := os.Create(gz)
	if err != nil {
		t.Fatal(err)
	}
	zw := gzip.NewWriter(gf)
	if _, err := zw.Write(append([]byte("\n\n"), raw...)); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := gf.Close(); err != nil {
		t.Fatal(err)
	}
	zipped := runStat(t, "-group", "kind,gpm", gz)
	mustEqual(t, fast, zipped, "leading-blank-line plain vs gzip")
}

// TestP2CannotSpill: exceeding -mem under -q p2 is an error, not silent
// wrong output.
func TestP2CannotSpill(t *testing.T) {
	dir := t.TempDir()
	nd := filepath.Join(dir, "s.ndjson")
	genStream(t, nd, false, 6, 200)
	err := run([]string{"-group", "config,workload,kernel,gpm,kind,name", "-q", "p2", "-mem", "64k", nd}, &bytes.Buffer{})
	if err == nil || !strings.Contains(err.Error(), "cannot spill") {
		t.Fatalf("expected cannot-spill error, got %v", err)
	}
}

// TestOutputFile: -o writes the same bytes as stdout, and .gz compresses.
func TestOutputFile(t *testing.T) {
	dir := t.TempDir()
	nd := filepath.Join(dir, "s.ndjson")
	genStream(t, nd, false, 2, 40)
	want := runStat(t, "-group", "kind", nd)
	outGz := filepath.Join(dir, "out.csv.gz")
	runStat(t, "-group", "kind", "-o", outGz, nd)
	raw, err := os.ReadFile(outGz)
	if err != nil {
		t.Fatal(err)
	}
	zr, err := gzip.NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	if _, err := got.ReadFrom(zr); err != nil {
		t.Fatal(err)
	}
	mustEqual(t, want, got.Bytes(), "-o .gz vs stdout")
}

// TestBadInputs: flag and stream errors surface as errors.
func TestBadInputs(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.ndjson")
	if err := os.WriteFile(bad, []byte("{\"type\":\"sample\",oops\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	cases := [][]string{
		{"-group", "bogus", bad},
		{"-records", "nope", bad},
		{"-q", "nope", bad},
		{"-exact", "-q", "p2", bad},
		{"-mem", "x", bad},
		{filepath.Join(dir, "missing.ndjson")},
		{bad},
	}
	for _, args := range cases {
		if err := run(args, &bytes.Buffer{}); err == nil {
			t.Errorf("run(%v) unexpectedly succeeded", args)
		}
	}
}
