// Command mcmstat is an out-of-core analytics aggregator for the metrics
// streams the simulator CLIs emit (-metrics): it scans NDJSON or CSV
// streams — plain or gzipped, files or stdin — and reports
// min/mean/max/p95/p99 statistics per group (any subset of
// config/workload/kernel/gpm/kind/name) for resource utilization and cache
// hit rates.
//
// Large inputs scan in parallel over a fixed 1 MiB chunk grid; group
// tables that outgrow -mem spill through an external sort-merge
// (internal/extsort). Output is byte-identical for any -j, any spill
// partitioning, and the -naive reference implementation, because every
// aggregate merge is exact and commutative (see DESIGN.md §9).
//
// Usage:
//
//	mcmstat -group config,kind sweep.ndjson.gz
//	mcmsim -metrics - | mcmstat -group kind,gpm
package main

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mcmgpu/internal/extsort"
	"mcmgpu/internal/metricstream"
)

type options struct {
	dims   []int
	filter recordFilter
	mode   aggMode
	k      int
	mem    int
	tmp    string
	j      int
	out    string
	format metricstream.Format
	naive  bool
	bench  string
	inputs []string
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mcmstat:", err)
		os.Exit(1)
	}
}

func parseFlags(args []string) (*options, error) {
	fs := flag.NewFlagSet("mcmstat", flag.ContinueOnError)
	group := fs.String("group", "kind", "comma-separated group-by dimensions: any of config,workload,kernel,gpm,kind,name")
	records := fs.String("records", "sample", "record types to aggregate: sample, kernel, or both")
	q := fs.String("q", "sample", "quantile estimator: sample (deterministic reservoir) or p2 (streaming P², sequential only)")
	exact := fs.Bool("exact", false, "keep every value for exact quantiles (more memory, may spill)")
	k := fs.Int("k", 4096, "reservoir size per group for -q sample")
	mem := fs.String("mem", "256m", "memory bound for group tables before spilling to disk (suffix k/m/g)")
	tmp := fs.String("tmp", "", "directory for spill files (default: system temp)")
	j := fs.Int("j", runtime.GOMAXPROCS(0), "parallel scan workers (output is identical for any value)")
	out := fs.String("o", "-", "output path (- for stdout; .gz compresses)")
	format := fs.String("format", "auto", "input format: auto, ndjson, or csv")
	naive := fs.Bool("naive", false, "use the slow reference implementation (for verification)")
	bench := fs.String("bench-json", "", "write a throughput report (rows, bytes, rows_per_sec) to this file")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}

	opts := &options{k: *k, tmp: *tmp, j: *j, out: *out, naive: *naive, bench: *bench}
	seen := map[string]bool{}
	for _, name := range strings.Split(*group, ",") {
		name = strings.TrimSpace(name)
		if name == "" || seen[name] {
			continue
		}
		seen[name] = true
		found := -1
		for d, dn := range dimNames {
			if dn == name {
				found = d
			}
		}
		if found < 0 {
			return nil, fmt.Errorf("unknown -group dimension %q (have %s)", name, strings.Join(dimNames[:], ","))
		}
		opts.dims = append(opts.dims, found)
	}
	if len(opts.dims) == 0 {
		return nil, fmt.Errorf("-group selects no dimensions")
	}
	sort.Ints(opts.dims) // canonical key order

	switch *records {
	case "sample":
		opts.filter = recSamples
	case "kernel":
		opts.filter = recKernels
	case "both":
		opts.filter = recBoth
	default:
		return nil, fmt.Errorf("bad -records %q (want sample, kernel, or both)", *records)
	}

	switch {
	case *exact && *q == "p2":
		return nil, fmt.Errorf("-exact and -q p2 are mutually exclusive")
	case *exact:
		opts.mode = modeExact
	case *q == "p2":
		opts.mode = modeP2
	case *q == "sample":
		opts.mode = modeReservoir
	default:
		return nil, fmt.Errorf("bad -q %q (want sample or p2)", *q)
	}
	if opts.k < 16 {
		return nil, fmt.Errorf("-k %d too small (min 16)", opts.k)
	}

	var err error
	if opts.mem, err = parseMem(*mem); err != nil {
		return nil, err
	}
	if opts.j < 1 {
		opts.j = 1
	}
	if opts.mode == modeP2 {
		opts.j = 1 // P² is order-dependent: strictly sequential
	}

	switch *format {
	case "auto":
		opts.format = metricstream.FormatAuto
	case "ndjson":
		opts.format = metricstream.FormatNDJSON
	case "csv":
		opts.format = metricstream.FormatCSV
	default:
		return nil, fmt.Errorf("bad -format %q (want auto, ndjson, or csv)", *format)
	}

	opts.inputs = fs.Args()
	if len(opts.inputs) == 0 {
		opts.inputs = []string{"-"}
	}
	return opts, nil
}

// parseMem parses a byte count with an optional k/m/g suffix.
func parseMem(s string) (int, error) {
	mult := 1
	low := strings.ToLower(strings.TrimSpace(s))
	switch {
	case strings.HasSuffix(low, "k"):
		mult, low = 1<<10, low[:len(low)-1]
	case strings.HasSuffix(low, "m"):
		mult, low = 1<<20, low[:len(low)-1]
	case strings.HasSuffix(low, "g"):
		mult, low = 1<<30, low[:len(low)-1]
	}
	v, err := strconv.Atoi(low)
	if err != nil || v <= 0 {
		return 0, fmt.Errorf("bad -mem %q", s)
	}
	return v * mult, nil
}

// openInputs opens and classifies every input: regular plain files scan in
// parallel; gzipped files and stdin scan sequentially.
func openInputs(opts *options) ([]*input, func(), error) {
	var ins []*input
	closeAll := func() {
		for _, in := range ins {
			if in.f != os.Stdin {
				in.f.Close()
			}
		}
	}
	for i, path := range opts.inputs {
		in := &input{path: path, base: uint64(i) << fileBaseShift, format: opts.format}
		if path == "-" {
			in.path, in.f, in.seq = "stdin", os.Stdin, true
			ins = append(ins, in)
			continue
		}
		f, err := os.Open(path)
		if err != nil {
			closeAll()
			return nil, nil, err
		}
		in.f = f
		st, err := f.Stat()
		if err != nil {
			closeAll()
			return nil, nil, err
		}
		if !st.Mode().IsRegular() {
			in.seq = true
			ins = append(ins, in)
			continue
		}
		in.size = st.Size()
		var head [2]byte
		if n, _ := f.ReadAt(head[:], 0); n == 2 && head[0] == 0x1f && head[1] == 0x8b {
			in.seq = true // gzip: sequential decompress
			ins = append(ins, in)
			continue
		}
		if in.format == metricstream.FormatAuto && in.size > 0 {
			if in.format, err = sniffFormat(f, in.size); err != nil {
				closeAll()
				return nil, nil, fmt.Errorf("%s: %w", path, err)
			}
		}
		ins = append(ins, in)
	}
	return ins, closeAll, nil
}

// sniffFormat detects NDJSON vs CSV from the first byte of the first
// non-empty line — the same rule the sequential Scanner applies — so a
// leading blank line classifies a chunk-scanned file exactly like its
// gzipped twin. A file of blank lines only stays FormatAuto (it parses to
// zero rows either way).
func sniffFormat(f *os.File, size int64) (metricstream.Format, error) {
	var buf [4096]byte
	for off := int64(0); off < size; {
		n, err := f.ReadAt(buf[:], off)
		for _, c := range buf[:n] {
			if c == '\n' {
				continue
			}
			if c == '{' {
				return metricstream.FormatNDJSON, nil
			}
			return metricstream.FormatCSV, nil
		}
		if err == io.EOF || n == 0 {
			break
		}
		if err != nil {
			return metricstream.FormatAuto, err
		}
		off += int64(n)
	}
	return metricstream.FormatAuto, nil
}

func run(args []string, stdout io.Writer) error {
	opts, err := parseFlags(args)
	if err != nil {
		return err
	}
	inputs, closeInputs, err := openInputs(opts)
	if err != nil {
		return err
	}
	defer closeInputs()

	// Output destination.
	var outW io.Writer = stdout
	var outC io.Closer
	if opts.out != "-" {
		w, _, err := metricstream.CreateOutput(opts.out)
		if err != nil {
			return err
		}
		outW, outC = w, w
	}
	out := bufio.NewWriterSize(outW, 256<<10)

	start := time.Now()
	var rows, inBytes int64
	for _, in := range inputs {
		inBytes += in.size
	}

	var spilled int
	if opts.naive {
		rows, err = runNaive(opts, inputs, out)
	} else {
		rows, spilled, err = runFast(opts, inputs, out)
	}
	if err != nil {
		return err
	}
	if err := out.Flush(); err != nil {
		return err
	}
	if outC != nil {
		if err := outC.Close(); err != nil {
			return err
		}
	}
	elapsed := time.Since(start)

	rps := float64(rows) / elapsed.Seconds()
	fmt.Fprintf(os.Stderr, "mcmstat: %d rows in %.3fs (%.0f rows/s, %d inputs, %d spilled runs)\n",
		rows, elapsed.Seconds(), rps, len(inputs), spilled)
	if opts.bench != "" {
		report := fmt.Sprintf(
			`{"rows":%d,"input_bytes":%d,"seconds":%.6f,"rows_per_sec":%.0f,"j":%d,"naive":%v,"spilled_runs":%d}`+"\n",
			rows, inBytes, elapsed.Seconds(), rps, opts.j, opts.naive, spilled)
		if err := os.WriteFile(opts.bench, []byte(report), 0o644); err != nil {
			return err
		}
	}
	return nil
}

// runFast is the production path: chunk-parallel scan, open-addressing
// aggregation, external sort-merge on overflow.
func runFast(opts *options, inputs []*input, out *bufio.Writer) (int64, int, error) {
	var sp *spiller
	if opts.mode != modeP2 {
		sp = &spiller{sorter: extsort.New(opts.tmp, opts.mem/2, spillCompare)}
		defer sp.sorter.Close()
	}

	// One scanning context per worker plus one for sequential inputs; the
	// table half of -mem splits across them. P² state is order-dependent
	// and cannot merge (groupAgg.merge has no P² case), so under -q p2
	// every input — even a chunkable regular file — scans through the
	// single sequential context, in command-line order.
	var chunks []chunk
	var seqIns []*input
	for _, in := range inputs {
		if in.seq || opts.mode == modeP2 {
			seqIns = append(seqIns, in)
			continue
		}
		for off := int64(0); off < in.size; off += chunkSize {
			end := off + chunkSize
			if end > in.size {
				end = in.size
			}
			chunks = append(chunks, chunk{in: in, start: off, end: end})
		}
	}
	nWorkers := opts.j
	if len(chunks) == 0 {
		nWorkers = 0
	}
	nCtx := nWorkers
	if len(seqIns) > 0 {
		nCtx++
	}
	if nCtx == 0 {
		nCtx = 1 // every input empty: keep one context so emit still runs
	}
	budget := opts.mem / 2 / nCtx
	if budget < 1<<16 {
		budget = 1 << 16
	}
	ctxs := make([]*aggCtx, 0, nCtx)
	for i := 0; i < nCtx; i++ {
		ctxs = append(ctxs, newAggCtx(opts.dims, opts.filter, opts.mode, opts.k, budget, sp))
	}

	// Parallel chunk scan: the chunk grid is fixed; only assignment varies
	// with -j, and merges are commutative, so output does not depend on -j.
	var next atomic.Int64
	var wg sync.WaitGroup
	errs := make([]error, nWorkers)
	for w := 0; w < nWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := ctxs[w]
			for {
				i := next.Add(1) - 1
				if i >= int64(len(chunks)) {
					return
				}
				if err := c.processChunk(chunks[i]); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	var seqErr error
	if len(seqIns) > 0 {
		c := ctxs[nWorkers]
		for _, in := range seqIns {
			if _, err := c.processSequential(in); err != nil {
				seqErr = err
				break
			}
		}
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return 0, 0, err
		}
	}
	if seqErr != nil {
		return 0, 0, seqErr
	}

	var rows int64
	for _, c := range ctxs {
		rows += c.rows
	}

	if sp != nil && sp.used {
		// Out-of-core: every table joins the external merge.
		for _, c := range ctxs {
			var err error
			if c.spillSc, err = sp.flush(c.tbl, c.spillSc); err != nil {
				return rows, 0, err
			}
		}
		return rows, sp.sorter.Spilled(), emitSpilled(opts, sp.sorter, out)
	}
	return rows, 0, emitTables(opts, ctxs, out)
}

// emitTables merges the per-worker tables in memory and writes groups in
// key order.
func emitTables(opts *options, ctxs []*aggCtx, out *bufio.Writer) error {
	dst := ctxs[0].tbl
	for _, c := range ctxs[1:] {
		t := c.tbl
		for i := range t.entries {
			e := &t.entries[i]
			dst.mergeIn(t.key(e), &e.agg)
		}
	}
	order := make([]int, len(dst.entries))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ea, eb := &dst.entries[order[a]], &dst.entries[order[b]]
		return bytes.Compare(dst.key(ea), dst.key(eb)) < 0
	})
	writeHeader(out, opts.dims)
	var scratch []float64
	for _, i := range order {
		e := &dst.entries[i]
		scratch = emitGroup(out, opts.dims, opts.mode, dst.key(e), &e.agg, scratch)
	}
	return nil
}

// emitSpilled streams the external merge, combining consecutive equal keys.
func emitSpilled(opts *options, sorter *extsort.Sorter, out *bufio.Writer) error {
	it, err := sorter.Sort()
	if err != nil {
		return err
	}
	writeHeader(out, opts.dims)
	var curKey []byte
	var cur groupAgg
	var g groupAgg
	have := false
	var scratch []float64
	for it.Next() {
		b := it.Bytes()
		klen, n := binary.Uvarint(b)
		if n <= 0 || int(klen) > len(b)-n {
			return fmt.Errorf("corrupt spilled record")
		}
		key, state := b[n:n+int(klen)], b[n+int(klen):]
		if err := parseState(state, opts.mode, opts.k, &g); err != nil {
			return err
		}
		if have && bytes.Equal(key, curKey) {
			cur.merge(opts.mode, &g)
			continue
		}
		if have {
			scratch = emitGroup(out, opts.dims, opts.mode, curKey, &cur, scratch)
		}
		curKey = append(curKey[:0], key...)
		cur = g
		g = groupAgg{}
		have = true
	}
	if it.Err() != nil {
		return it.Err()
	}
	if have {
		emitGroup(out, opts.dims, opts.mode, curKey, &cur, scratch)
	}
	return nil
}

// mergeIn folds a foreign (key, aggregate) pair into the table.
func (t *table) mergeIn(key []byte, g *groupAgg) {
	h := fnv1a(key)
	mask := uint64(len(t.slots) - 1)
	i := h & mask
	for {
		s := t.slots[i]
		if s == 0 {
			t.entries = append(t.entries, tEntry{
				keyOff: uint32(len(t.arena)),
				keyLen: uint32(len(key)),
				hash:   h,
				agg:    *g,
			})
			t.arena = append(t.arena, key...)
			t.slots[i] = int32(len(t.entries))
			if len(t.entries)*4 >= len(t.slots)*3 {
				t.grow()
			}
			return
		}
		e := &t.entries[s-1]
		if e.hash == h && string(t.key(e)) == string(key) {
			e.agg.merge(t.mode, g)
			return
		}
		i = (i + 1) & mask
	}
}

// writeHeader emits the output CSV header for the selected dimensions.
func writeHeader(out *bufio.Writer, dims []int) {
	for _, d := range dims {
		out.WriteString(dimNames[d])
		out.WriteByte(',')
	}
	out.WriteString("metric,n,min,mean,max,p95,p99,sum_busy,sum_units,sum_hits,sum_misses\n")
}

// writeCSVField writes one output field with RFC-4180 quoting.
func writeCSVField(out *bufio.Writer, v []byte) {
	if !bytes.ContainsAny(v, ",\"\n") {
		out.Write(v)
		return
	}
	out.WriteByte('"')
	for _, c := range v {
		if c == '"' {
			out.WriteByte('"')
		}
		out.WriteByte(c)
	}
	out.WriteByte('"')
}

// emitGroup writes one output row. Both the fast and naive paths call this
// with identical (key, aggregate) pairs, so their outputs are identical
// bytes.
func emitGroup(out *bufio.Writer, dims []int, mode aggMode, key []byte, g *groupAgg, scratch []float64) []float64 {
	rest := key
	for _, d := range dims {
		j := bytes.IndexByte(rest, keySep)
		if j < 0 {
			j = len(rest) // malformed key; emit what is there
		}
		val := rest[:j]
		if j < len(rest) {
			rest = rest[j+1:]
		} else {
			rest = nil
		}
		if d == dimKernel || d == dimGPM {
			val = unpad(val)
		}
		writeCSVField(out, val)
		out.WriteByte(',')
	}
	metric := byte(metricUtil)
	if len(rest) > 0 {
		metric = rest[0]
	}
	out.WriteString(metricName(metric))

	p95, p99, scratch := g.quantiles(mode, scratch)
	var num [32]byte
	writeUint := func(v uint64) {
		out.WriteByte(',')
		out.Write(strconv.AppendUint(num[:0], v, 10))
	}
	writeFloat := func(v float64) {
		out.WriteByte(',')
		out.Write(strconv.AppendFloat(num[:0], v, 'g', -1, 64))
	}
	writeUint(g.n)
	writeFloat(g.min)
	writeFloat(g.sum.Sum() / float64(g.n))
	writeFloat(g.max)
	writeFloat(p95)
	writeFloat(p99)
	writeFloat(g.sumBusy.Sum())
	writeUint(g.units)
	writeUint(g.hits)
	writeUint(g.misses)
	out.WriteByte('\n')
	return scratch
}
